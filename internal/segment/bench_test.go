package segment

import (
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// BenchmarkLiveIndex compares query latency over one immutable index
// against a 4-segment live store at equal corpus size. The acceptance
// bar for the subsystem is segmented ≤ 2× single: the fan-out costs a
// goroutine per shard and a final heap merge, but shard scoring runs
// concurrently, so the gap stays small.
//
//	go test ./internal/segment -bench BenchmarkLiveIndex -benchtime 2s
func BenchmarkLiveIndex(b *testing.B) {
	const numDocs = 2000
	an := textproc.NewAnalyzer()
	c, _, err := corpus.Synthesize(corpus.GenSpec{Seed: 42, NumDocs: numDocs}, an)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = queryFrom(c.Docs[(i*31)%numDocs], i%40, 4)
	}

	b.Run("single", func(b *testing.B) {
		// The static path: one index, one engine.
		refCorpus, err := corpus.Build(cloneDocs(c.Docs), an, textproc.PruneSpec{})
		if err != nil {
			b.Fatal(err)
		}
		idx, err := index.Build(refCorpus)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := vsm.NewEngine(idx, an, vsm.Cosine)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := eng.Search(queries[i%len(queries)], 10); len(res) == 0 {
				b.Fatal("no results")
			}
		}
	})

	b.Run("segmented4", func(b *testing.B) {
		st, err := Open(Config{
			Analyzer:          an,
			SealThreshold:     numDocs / 4,
			DisableCompaction: true, // hold the 4-segment layout fixed
		})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Add(cloneDocs(c.Docs)...); err != nil {
			b.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			b.Fatal(err)
		}
		if got := st.NumSegments(); got != 4 {
			b.Fatalf("layout has %d segments, want 4", got)
		}
		var stats vsm.ExecStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			terms := an.Analyze(queries[i%len(queries)])
			if res := st.SearchTermsExec(terms, 10, vsm.ExecMaxScore, &stats); len(res) == 0 {
				b.Fatal("no results")
			}
		}
		b.ReportMetric(float64(stats.DocsScored)/float64(b.N), "docs_scored/op")
	})

	b.Run("segmented4-exhaustive", func(b *testing.B) {
		// The same 4-segment layout forced onto the exhaustive scorer:
		// the gap against "segmented4" (MaxScore by default) is the live
		// store's pruning win.
		st, err := Open(Config{
			Analyzer:          an,
			SealThreshold:     numDocs / 4,
			DisableCompaction: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Add(cloneDocs(c.Docs)...); err != nil {
			b.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			b.Fatal(err)
		}
		var stats vsm.ExecStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			terms := an.Analyze(queries[i%len(queries)])
			if res := st.SearchTermsExec(terms, 10, vsm.ExecExhaustive, &stats); len(res) == 0 {
				b.Fatal("no results")
			}
		}
		b.ReportMetric(float64(stats.DocsScored)/float64(b.N), "docs_scored/op")
	})

	b.Run("segmented4-parallel", func(b *testing.B) {
		// Concurrent searchers against the live store — the serving shape
		// searchd actually runs.
		st, err := Open(Config{
			Analyzer:          an,
			SealThreshold:     numDocs / 4,
			DisableCompaction: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Add(cloneDocs(c.Docs)...); err != nil {
			b.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				st.Search(queries[i%len(queries)], 10)
				i++
			}
		})
	})
}

// BenchmarkLiveIndexIngest measures steady-state ingestion with sealing
// enabled (compaction off, so the cost measured is analyze+index only).
func BenchmarkLiveIndexIngest(b *testing.B) {
	an := textproc.NewAnalyzer()
	c, _, err := corpus.Synthesize(corpus.GenSpec{Seed: 43, NumDocs: 512}, an)
	if err != nil {
		b.Fatal(err)
	}
	st, err := Open(Config{Analyzer: an, SealThreshold: 256, DisableCompaction: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Add(c.Docs[i%len(c.Docs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// saveTraversalFixture builds a 4-segment store over a synthetic
// corpus, saves it, and returns the directory plus analyzed queries —
// the shared substrate of the traversal benchmarks below.
func saveTraversalFixture(b *testing.B, an *textproc.Analyzer) (string, [][]string) {
	b.Helper()
	const numDocs = 2000
	c, _, err := corpus.Synthesize(corpus.GenSpec{Seed: 42, NumDocs: numDocs}, an)
	if err != nil {
		b.Fatal(err)
	}
	st, err := Open(Config{Analyzer: an, SealThreshold: numDocs / 4, DisableCompaction: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Add(cloneDocs(c.Docs)...); err != nil {
		b.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := st.Save(dir); err != nil {
		b.Fatal(err)
	}
	queries := make([][]string, 64)
	for i := range queries {
		queries[i] = an.Analyze(queryFrom(c.Docs[(i*31)%numDocs], i%40, 4))
	}
	return dir, queries
}

// traversalLoop runs the query battery under the exhaustive scorer —
// every posting of every queried list is decoded, so the measured cost
// is dominated by postings traversal, which is exactly what differs
// between heap-resident, mapped, and block-cached stores.
func traversalLoop(b *testing.B, st *Store, queries [][]string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := st.SearchTermsExec(queries[i%len(queries)], 10, vsm.ExecExhaustive, nil); len(res) == 0 {
			b.Fatal("no results")
		}
	}
	b.StopTimer()
	if s := st.ComputeStats(); s.NumDocs > 0 {
		b.ReportMetric(s.ResidentPerDoc, "resident_bytes/doc")
	}
}

// BenchmarkTraversalCold measures query traversal over a mapped store
// with no block cache: every block decodes straight from the mapped
// file image on every query. (CI cannot drop the OS page cache, so
// "cold" means cold decode state, not cold pages.) The committed
// resident_bytes/doc row is the disk-residency claim the benchjson
// gate enforces: near zero, because postings stay out of the heap.
func BenchmarkTraversalCold(b *testing.B) {
	an := textproc.NewAnalyzer()
	dir, queries := saveTraversalFixture(b, an)
	st, err := Load(dir, Config{Analyzer: an, DisableCompaction: true, Mapped: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	traversalLoop(b, st, queries)
}

// BenchmarkTraversalWarm compares the heap-resident store against the
// mapped store with a primed block cache on the same saved directory.
// The acceptance bar for the mapped subsystem is warm mapped ≤ 1.15×
// heap: decode work is identical, the cache absorbs repeat decodes,
// and the remaining gap is cache lookups and mapped-payload reads.
func BenchmarkTraversalWarm(b *testing.B) {
	an := textproc.NewAnalyzer()
	dir, queries := saveTraversalFixture(b, an)
	b.Run("heap", func(b *testing.B) {
		st, err := Load(dir, Config{Analyzer: an, DisableCompaction: true})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		traversalLoop(b, st, queries)
	})
	b.Run("mapped-cached", func(b *testing.B) {
		// The cache's slot ring is pinned at allocation (that is the
		// point: bounded, predictable residency), so capacity is sized
		// to the hot working set, not generously — a cache larger than
		// the postings it fronts would just be the heap store with
		// extra steps.
		st, err := Load(dir, Config{Analyzer: an, DisableCompaction: true, Mapped: true, CacheBytes: 256 << 10})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		// Prime: one pass over the battery fills the cache.
		for _, q := range queries {
			st.SearchTermsExec(q, 10, vsm.ExecExhaustive, nil)
		}
		traversalLoop(b, st, queries)
		if cs, ok := st.CacheStats(); ok && cs.Hits+cs.Misses > 0 {
			b.ReportMetric(float64(cs.Hits)/float64(cs.Hits+cs.Misses), "cache_hit_ratio")
		}
	})
}

func cloneDocs(docs []corpus.Document) []corpus.Document {
	out := make([]corpus.Document, len(docs))
	copy(out, docs)
	return out
}
