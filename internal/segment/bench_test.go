package segment

import (
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// BenchmarkLiveIndex compares query latency over one immutable index
// against a 4-segment live store at equal corpus size. The acceptance
// bar for the subsystem is segmented ≤ 2× single: the fan-out costs a
// goroutine per shard and a final heap merge, but shard scoring runs
// concurrently, so the gap stays small.
//
//	go test ./internal/segment -bench BenchmarkLiveIndex -benchtime 2s
func BenchmarkLiveIndex(b *testing.B) {
	const numDocs = 2000
	an := textproc.NewAnalyzer()
	c, _, err := corpus.Synthesize(corpus.GenSpec{Seed: 42, NumDocs: numDocs}, an)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = queryFrom(c.Docs[(i*31)%numDocs], i%40, 4)
	}

	b.Run("single", func(b *testing.B) {
		// The static path: one index, one engine.
		refCorpus, err := corpus.Build(cloneDocs(c.Docs), an, textproc.PruneSpec{})
		if err != nil {
			b.Fatal(err)
		}
		idx, err := index.Build(refCorpus)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := vsm.NewEngine(idx, an, vsm.Cosine)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := eng.Search(queries[i%len(queries)], 10); len(res) == 0 {
				b.Fatal("no results")
			}
		}
	})

	b.Run("segmented4", func(b *testing.B) {
		st, err := Open(Config{
			Analyzer:          an,
			SealThreshold:     numDocs / 4,
			DisableCompaction: true, // hold the 4-segment layout fixed
		})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Add(cloneDocs(c.Docs)...); err != nil {
			b.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			b.Fatal(err)
		}
		if got := st.NumSegments(); got != 4 {
			b.Fatalf("layout has %d segments, want 4", got)
		}
		var stats vsm.ExecStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			terms := an.Analyze(queries[i%len(queries)])
			if res := st.SearchTermsExec(terms, 10, vsm.ExecMaxScore, &stats); len(res) == 0 {
				b.Fatal("no results")
			}
		}
		b.ReportMetric(float64(stats.DocsScored)/float64(b.N), "docs_scored/op")
	})

	b.Run("segmented4-exhaustive", func(b *testing.B) {
		// The same 4-segment layout forced onto the exhaustive scorer:
		// the gap against "segmented4" (MaxScore by default) is the live
		// store's pruning win.
		st, err := Open(Config{
			Analyzer:          an,
			SealThreshold:     numDocs / 4,
			DisableCompaction: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Add(cloneDocs(c.Docs)...); err != nil {
			b.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			b.Fatal(err)
		}
		var stats vsm.ExecStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			terms := an.Analyze(queries[i%len(queries)])
			if res := st.SearchTermsExec(terms, 10, vsm.ExecExhaustive, &stats); len(res) == 0 {
				b.Fatal("no results")
			}
		}
		b.ReportMetric(float64(stats.DocsScored)/float64(b.N), "docs_scored/op")
	})

	b.Run("segmented4-parallel", func(b *testing.B) {
		// Concurrent searchers against the live store — the serving shape
		// searchd actually runs.
		st, err := Open(Config{
			Analyzer:          an,
			SealThreshold:     numDocs / 4,
			DisableCompaction: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Add(cloneDocs(c.Docs)...); err != nil {
			b.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				st.Search(queries[i%len(queries)], 10)
				i++
			}
		})
	})
}

// BenchmarkLiveIndexIngest measures steady-state ingestion with sealing
// enabled (compaction off, so the cost measured is analyze+index only).
func BenchmarkLiveIndexIngest(b *testing.B) {
	an := textproc.NewAnalyzer()
	c, _, err := corpus.Synthesize(corpus.GenSpec{Seed: 43, NumDocs: 512}, an)
	if err != nil {
		b.Fatal(err)
	}
	st, err := Open(Config{Analyzer: an, SealThreshold: 256, DisableCompaction: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Add(c.Docs[i%len(c.Docs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func cloneDocs(docs []corpus.Document) []corpus.Document {
	out := make([]corpus.Document, len(docs))
	copy(out, docs)
	return out
}
