package segment

import (
	"math"
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// TestMergeEquivalenceProperty is the subsystem's correctness anchor:
// for random interleavings of adds, deletes, flushes, and compactions,
// searching the segmented store must return exactly the documents — and
// the same scores to within 1e-9 — as a from-scratch index.Build over
// the surviving documents. This holds because every shard scores with
// global live statistics and tombstones are filtered before ranking.
func TestMergeEquivalenceProperty(t *testing.T) {
	for _, scoring := range []vsm.Scoring{vsm.Cosine, vsm.BM25} {
		scoring := scoring
		t.Run(scoring.String(), func(t *testing.T) {
			for trial := int64(0); trial < 4; trial++ {
				runEquivalenceTrial(t, scoring, trial)
			}
		})
	}
}

func runEquivalenceTrial(t *testing.T, scoring vsm.Scoring, trial int64) {
	t.Helper()
	an := textproc.NewAnalyzer()
	docs := synthDocs(t, 70, 100+trial)
	rng := rand.New(rand.NewSource(7000 + trial))

	st, err := Open(Config{
		Scoring:  scoring,
		Analyzer: an,
		// Tiny threshold and no auto-compaction: the interleaving itself
		// controls the segment layout, including explicit compactions.
		SealThreshold:     5 + int(trial),
		CompactFanout:     3,
		DisableCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// alive[gid] = original document, insertion-ordered by gid.
	type entry struct {
		gid corpus.DocID
		doc corpus.Document
	}
	var alive []entry
	deleteRandom := func() {
		if len(alive) == 0 {
			return
		}
		i := rng.Intn(len(alive))
		if err := st.Delete(alive[i].gid); err != nil {
			t.Fatalf("trial %d: delete %d: %v", trial, alive[i].gid, err)
		}
		alive = append(alive[:i], alive[i+1:]...)
	}

	for _, doc := range docs {
		ids, err := st.Add(doc)
		if err != nil {
			t.Fatalf("trial %d: add: %v", trial, err)
		}
		alive = append(alive, entry{gid: ids[0], doc: doc})
		for rng.Float64() < 0.3 {
			deleteRandom()
		}
		switch rng.Intn(12) {
		case 0:
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}
		case 1:
			// One background-policy step, synchronously.
			if _, err := st.compactOnce(st.cfg.CompactFanout); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := st.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(alive) < 10 {
		t.Fatalf("trial %d: only %d survivors, interleaving degenerate", trial, len(alive))
	}

	// Reference: a from-scratch build over the survivors, in global-ID
	// order, with the same analyzer and no pruning.
	refDocs := make([]corpus.Document, len(alive))
	gidToRef := make(map[corpus.DocID]corpus.DocID, len(alive))
	for i, e := range alive {
		refDocs[i] = corpus.Document{Title: e.doc.Title, Text: e.doc.Text}
		gidToRef[e.gid] = corpus.DocID(i)
	}
	refCorpus, err := corpus.Build(refDocs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	refIdx, err := index.Build(refCorpus)
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := vsm.NewEngine(refIdx, an, scoring)
	if err != nil {
		t.Fatal(err)
	}

	queries := make([]string, 0, 18)
	for i := 0; i < 16; i++ {
		// Mix queries drawn from survivors and from deleted docs; the
		// latter exercise terms whose live df dropped (possibly to 0).
		queries = append(queries, queryFrom(docs[rng.Intn(len(docs))], rng.Intn(25), 3+rng.Intn(4)))
	}
	queries = append(queries, "zzzzunseenterm", "")

	for _, q := range queries {
		// Full-retrieval comparison: every matching survivor, no top-k
		// boundary, so document sets and per-document scores must agree.
		all := len(alive) + 5
		got := st.Search(q, all)
		want := refEng.Search(q, all)
		if len(got) != len(want) {
			t.Fatalf("trial %d query %q: store returned %d docs, reference %d",
				trial, q, len(got), len(want))
		}
		gotScores := make(map[corpus.DocID]float64, len(got))
		for _, r := range got {
			ref, ok := gidToRef[r.Doc]
			if !ok {
				t.Fatalf("trial %d query %q: store returned dead/unknown doc %d", trial, q, r.Doc)
			}
			gotScores[ref] = r.Score
		}
		for _, r := range want {
			gs, ok := gotScores[r.Doc]
			if !ok {
				t.Fatalf("trial %d query %q: reference doc %d missing from store results",
					trial, q, r.Doc)
			}
			if math.Abs(gs-r.Score) > 1e-9 {
				t.Fatalf("trial %d query %q doc %d: store score %.12f, reference %.12f",
					trial, q, r.Doc, gs, r.Score)
			}
		}
		// Top-k path: the k best scores must match the reference's, even
		// if exact FP ties order differently across shards.
		const k = 5
		gotK := st.Search(q, k)
		wantK := refEng.Search(q, k)
		if len(gotK) != len(wantK) {
			t.Fatalf("trial %d query %q: top-%d sizes differ: %d vs %d",
				trial, q, k, len(gotK), len(wantK))
		}
		for i := range gotK {
			if math.Abs(gotK[i].Score-wantK[i].Score) > 1e-9 {
				t.Fatalf("trial %d query %q rank %d: score %.12f vs reference %.12f",
					trial, q, i, gotK[i].Score, wantK[i].Score)
			}
		}
	}
}

// TestEquivalenceSurvivesReload runs a smaller interleaving, saves,
// reloads, and checks the reloaded store still matches the reference
// build — persistence must not perturb scoring.
func TestEquivalenceSurvivesReload(t *testing.T) {
	an := textproc.NewAnalyzer()
	docs := synthDocs(t, 40, 11)
	rng := rand.New(rand.NewSource(77))
	st, err := Open(Config{Analyzer: an, SealThreshold: 6, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	var alive []corpus.Document
	var gids []corpus.DocID
	for _, doc := range docs {
		ids, err := st.Add(doc)
		if err != nil {
			t.Fatal(err)
		}
		alive = append(alive, doc)
		gids = append(gids, ids[0])
		if rng.Float64() < 0.25 && len(alive) > 1 {
			i := rng.Intn(len(alive))
			if err := st.Delete(gids[i]); err != nil {
				t.Fatal(err)
			}
			alive = append(alive[:i], alive[i+1:]...)
			gids = append(gids[:i], gids[i+1:]...)
		}
	}
	dir := t.TempDir()
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	st.Close()
	ld, err := Load(dir, Config{Analyzer: an, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()

	refDocs := make([]corpus.Document, len(alive))
	for i, d := range alive {
		refDocs[i] = corpus.Document{Title: d.Title, Text: d.Text}
	}
	refCorpus, err := corpus.Build(refDocs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	refIdx, err := index.Build(refCorpus)
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := vsm.NewEngine(refIdx, an, vsm.Cosine)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q := queryFrom(docs[rng.Intn(len(docs))], rng.Intn(20), 4)
		got := ld.Search(q, len(alive))
		want := refEng.Search(q, len(alive))
		if len(got) != len(want) {
			t.Fatalf("query %q: %d vs %d results", q, len(got), len(want))
		}
		for j := range got {
			if math.Abs(got[j].Score-want[j].Score) > 1e-9 {
				t.Fatalf("query %q rank %d: %.12f vs %.12f", q, j, got[j].Score, want[j].Score)
			}
		}
	}
}
