package segment

import (
	"math"
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// TestStoreMaxScoreMatchesExhaustive asserts that pruned execution —
// MaxScore and block-max WAND — through the segmented store: memtable
// (term-level bounds only) plus sealed segments (exact block bounds
// from seal), with tombstones filtered before scoring in every shard,
// returns exactly the documents and order of exhaustive execution,
// scores within 1e-9, for both scoring functions and k from selective
// to full-collection.
func TestStoreMaxScoreMatchesExhaustive(t *testing.T) {
	for _, scoring := range []vsm.Scoring{vsm.Cosine, vsm.BM25} {
		scoring := scoring
		t.Run(scoring.String(), func(t *testing.T) {
			for trial := int64(0); trial < 3; trial++ {
				runStoreDAATTrial(t, scoring, trial)
			}
		})
	}
}

func runStoreDAATTrial(t *testing.T, scoring vsm.Scoring, trial int64) {
	t.Helper()
	an := textproc.NewAnalyzer()
	docs := synthDocs(t, 90, 500+trial)
	rng := rand.New(rand.NewSource(9100 + trial))
	st, err := Open(Config{
		Scoring:           scoring,
		Analyzer:          an,
		SealThreshold:     7 + int(trial),
		DisableCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var gids []corpus.DocID
	for _, doc := range docs {
		ids, err := st.Add(doc)
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, ids[0])
		if rng.Float64() < 0.2 && len(gids) > 1 {
			i := rng.Intn(len(gids))
			if err := st.Delete(gids[i]); err != nil {
				t.Fatal(err)
			}
			gids = append(gids[:i], gids[i+1:]...)
		}
		if rng.Intn(15) == 0 {
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(25) == 0 {
			if err := st.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}

	for qi := 0; qi < 14; qi++ {
		q := queryFrom(docs[rng.Intn(len(docs))], rng.Intn(25), 2+rng.Intn(4))
		terms := an.Analyze(q)
		for _, k := range []int{1, 10, 100} {
			var ex vsm.ExecStats
			oracle := st.SearchTermsExec(terms, k, vsm.ExecExhaustive, &ex)
			for _, mode := range []vsm.ExecMode{vsm.ExecMaxScore, vsm.ExecBlockMax} {
				var ms vsm.ExecStats
				pruned := st.SearchTermsExec(terms, k, mode, &ms)
				if len(pruned) != len(oracle) {
					t.Fatalf("trial %d q%d k=%d %s: %d results vs oracle %d",
						trial, qi, k, mode, len(pruned), len(oracle))
				}
				for i := range pruned {
					if pruned[i].Doc != oracle[i].Doc {
						t.Fatalf("trial %d q%d k=%d %s rank %d: doc %d vs oracle %d\npruned: %v\noracle: %v",
							trial, qi, k, mode, i, pruned[i].Doc, oracle[i].Doc, pruned, oracle)
					}
					if math.Abs(pruned[i].Score-oracle[i].Score) > 1e-9 {
						t.Fatalf("trial %d q%d k=%d %s rank %d: score %.15f vs oracle %.15f",
							trial, qi, k, mode, i, pruned[i].Score, oracle[i].Score)
					}
				}
			}
		}
	}
}

// TestStoreExecModeSurvivesReload checks that a store saved and
// reloaded (v3 TPIX segments, block bounds persisted) still prunes —
// under MaxScore and block-max WAND alike — and still agrees with its
// own exhaustive oracle.
func TestStoreExecModeSurvivesReload(t *testing.T) {
	an := textproc.NewAnalyzer()
	docs := synthDocs(t, 60, 777)
	st, err := Open(Config{Analyzer: an, SealThreshold: 10, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Add(docs...); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	st.Close()
	ld, err := Load(dir, Config{Analyzer: an, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	rng := rand.New(rand.NewSource(3))
	for qi := 0; qi < 8; qi++ {
		terms := an.Analyze(queryFrom(docs[rng.Intn(len(docs))], qi, 3))
		oracle := ld.SearchTermsExec(terms, 10, vsm.ExecExhaustive, nil)
		for _, mode := range []vsm.ExecMode{vsm.ExecMaxScore, vsm.ExecBlockMax} {
			var ms vsm.ExecStats
			pruned := ld.SearchTermsExec(terms, 10, mode, &ms)
			if len(pruned) != len(oracle) {
				t.Fatalf("q%d %s: %d vs %d results", qi, mode, len(pruned), len(oracle))
			}
			for i := range pruned {
				if pruned[i].Doc != oracle[i].Doc || math.Abs(pruned[i].Score-oracle[i].Score) > 1e-9 {
					t.Fatalf("q%d %s rank %d: (%d, %.12f) vs (%d, %.12f)", qi, mode, i,
						pruned[i].Doc, pruned[i].Score, oracle[i].Doc, oracle[i].Score)
				}
			}
		}
	}
}
