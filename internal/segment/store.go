package segment

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/telemetry"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// ErrNotFound reports a delete or lookup of a document that does not
// exist or was already deleted.
var ErrNotFound = errors.New("segment: no such live document")

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("segment: store is closed")

// Config configures a Store. The zero value is usable: cosine scoring,
// default analyzer, 256-document memtable, fanout-4 compaction.
type Config struct {
	// Scoring selects the ranking function, as in vsm.
	Scoring vsm.Scoring
	// ExecMode is the default query-execution strategy for every shard
	// engine (vsm.ExecAuto runs pruned execution — block-max WAND or
	// MaxScore; per-query overrides go through
	// SearchTermsExec/SearchMode).
	ExecMode vsm.ExecMode
	// Analyzer is the shared text pipeline; nil means the default.
	Analyzer *textproc.Analyzer
	// SealThreshold is the memtable document count that triggers an
	// automatic seal into a level-0 segment. Zero means 256.
	SealThreshold int
	// CompactFanout is the length of a same-level run of segments that
	// triggers a background merge into the next level. Zero means 4.
	CompactFanout int
	// CompactInterval is the background compactor's poll interval, a
	// safety net behind the explicit post-seal triggers. Zero means 2s.
	CompactInterval time.Duration
	// DisableCompaction turns the background compactor off (tests and
	// benchmarks that need a deterministic segment layout). Explicit
	// Compact calls still work.
	DisableCompaction bool
	// Mapped opens sealed segments disk-resident at Load time
	// (index.OpenMapped): postings payloads stay views into the mapped
	// TPIX files and page in on traversal instead of living on the
	// heap. Segments sealed or compacted after load are in-memory
	// until the next Save/Load cycle. Search results are bit-identical
	// to the in-memory open path — the property tests assert it.
	Mapped bool
	// CacheBytes, when positive, allocates a pinned decoded-block
	// cache of that capacity (see index.BlockCache), shared by every
	// segment in the store — loaded mapped segments and segments
	// sealed or compacted afterward alike, since heap-held blocks
	// still pay a decode per traversal. Ignored unless Mapped is set.
	CacheBytes int64
	// Logf, when non-nil, receives diagnostics from the background
	// compactor — without it a persistently failing compaction would
	// retry invisibly forever. searchd passes log.Printf.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Analyzer == nil {
		c.Analyzer = textproc.NewAnalyzer()
	}
	if c.SealThreshold == 0 {
		c.SealThreshold = 256
	}
	if c.CompactFanout == 0 {
		c.CompactFanout = 4
	}
	if c.CompactInterval == 0 {
		c.CompactInterval = 2 * time.Second
	}
	return c
}

// Store is a live, segmented search index: Add and Delete mutate it
// while Search serves concurrently. It implements vsm.Searcher, so
// anything that can query a vsm.Engine can query a Store.
type Store struct {
	cfg Config
	an  *textproc.Analyzer

	mu    sync.RWMutex
	vocab *textproc.Vocab // shared, append-only dictionary
	mem   *memtable
	segs  []*seg // stack order: ascending global-ID ranges

	nextID   corpus.DocID
	gen      int64 // persistence generation of the last Save/Load
	liveDocs int
	liveLen  int
	// df[id] counts live documents containing term id — the global
	// document frequency every shard scores with.
	df []int32

	// compactMu serializes stack restructuring between the background
	// compactor and explicit Compact calls. Always acquired before mu.
	compactMu sync.Mutex
	// saveMu serializes Save calls so concurrent saves cannot interleave
	// generations. Always acquired before mu.
	saveMu    sync.Mutex
	compactCh chan struct{}
	closeCh   chan struct{}
	wg        sync.WaitGroup
	closed    bool

	// cache is the shared decoded-block cache mapped segments attach to
	// (nil unless Mapped && CacheBytes > 0). Created once at newStore;
	// never replaced, so it is safe to read without st.mu.
	cache *index.BlockCache
	// bloomSkips counts ⟨shard, request⟩ pairs pruned by the per-segment
	// term bloom filters without running the shard engine.
	bloomSkips atomic.Uint64

	// metrics, when non-nil, carries the pre-resolved telemetry handles
	// the query path updates (see EnableMetrics). Set before serving.
	metrics *storeMetrics
	// compactRuns/compactNanos count completed compaction runs and
	// their total wall time; maintained by compactRun, read at scrape
	// time. Atomics so the compactor never contends with scrapes.
	compactRuns  atomic.Uint64
	compactNanos atomic.Int64
}

// Open creates an empty store and starts its background compactor.
func Open(cfg Config) (*Store, error) {
	st, err := newStore(cfg)
	if err != nil {
		return nil, err
	}
	st.start()
	return st, nil
}

func newStore(cfg Config) (*Store, error) {
	if cfg.SealThreshold < 0 || cfg.CompactFanout < 0 || cfg.CacheBytes < 0 {
		return nil, fmt.Errorf("segment: negative config")
	}
	cfg = cfg.withDefaults()
	st := &Store{
		cfg:       cfg,
		an:        cfg.Analyzer,
		vocab:     textproc.NewVocab(),
		compactCh: make(chan struct{}, 1),
		closeCh:   make(chan struct{}),
	}
	if cfg.Mapped {
		st.cache = index.NewBlockCache(cfg.CacheBytes)
	}
	mt, err := newMemtable(st)
	if err != nil {
		return nil, err
	}
	st.mem = mt
	return st, nil
}

func (st *Store) start() {
	if st.cfg.DisableCompaction {
		return
	}
	st.wg.Add(1)
	go st.compactLoop()
}

// Close rejects further mutations and stops the background compactor.
// It does not persist anything itself; Save still works afterwards, and
// Close-then-Save is the graceful-shutdown order — once Close returns,
// no new document can be acknowledged and then miss the final save.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	close(st.closeCh)
	st.mu.Unlock()
	st.wg.Wait()
	return nil
}

// Add ingests documents, assigning each a fresh global ID. The memtable
// seals automatically at the configured threshold. Safe to call
// concurrently with Search.
func (st *Store) Add(docs ...corpus.Document) ([]corpus.DocID, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, ErrClosed
	}
	ids := make([]corpus.DocID, len(docs))
	var sealErr error
	for i, doc := range docs {
		gid := st.nextID
		st.nextID++
		bag := st.mem.add(doc, gid)
		st.growDF()
		seen := make(map[textproc.TermID]struct{}, len(bag))
		for _, id := range bag {
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				st.df[id]++
			}
		}
		st.liveDocs++
		st.liveLen += len(bag)
		ids[i] = gid
		if len(st.mem.docs) >= st.cfg.SealThreshold {
			if err := st.sealLocked(); err != nil {
				sealErr = err
				break
			}
		}
	}
	st.mu.Unlock()
	if sealErr != nil {
		return nil, sealErr
	}
	st.kickCompactor()
	return ids, nil
}

// Delete tombstones a live document by global ID. Postings stay in
// place until compaction drops them; global statistics are adjusted
// immediately so scoring reflects the deletion at once.
func (st *Store) Delete(gid corpus.DocID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	doc, ok := st.tombstoneLocked(gid)
	if !ok {
		return ErrNotFound
	}
	terms := st.an.Analyze(doc.Text)
	seen := make(map[textproc.TermID]struct{}, len(terms))
	for _, term := range terms {
		id := st.vocab.ID(term)
		if id == textproc.InvalidTerm {
			continue // cannot happen for a doc this store analyzed
		}
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			st.df[id]--
		}
	}
	st.liveDocs--
	st.liveLen -= len(terms)
	return nil
}

// tombstoneLocked marks gid dead in whichever shard owns it, returning
// the document for stats maintenance.
func (st *Store) tombstoneLocked(gid corpus.DocID) (corpus.Document, bool) {
	if local, ok := st.mem.locate(gid); ok {
		if st.mem.dead[local] {
			return corpus.Document{}, false
		}
		st.mem.dead[local] = true
		st.mem.live--
		return st.mem.docs[local], true
	}
	for _, sg := range st.segs {
		if local, ok := sg.locate(gid); ok {
			if sg.dead[local] {
				return corpus.Document{}, false
			}
			sg.dead[local] = true
			sg.live--
			return sg.docs[local], true
		}
	}
	return corpus.Document{}, false
}

// Doc returns a live document by global ID.
func (st *Store) Doc(gid corpus.DocID) (corpus.Document, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if local, ok := st.mem.locate(gid); ok && !st.mem.dead[local] {
		return st.mem.docs[local], true
	}
	for _, sg := range st.segs {
		if local, ok := sg.locate(gid); ok && !sg.dead[local] {
			return sg.docs[local], true
		}
	}
	return corpus.Document{}, false
}

// growDF extends the df array to the current vocabulary size.
func (st *Store) growDF() {
	for len(st.df) < st.vocab.Size() {
		st.df = append(st.df, 0)
	}
}

// docFreqLocked reads a term's live document frequency. Caller holds
// st.mu (either mode).
func (st *Store) docFreqLocked(id textproc.TermID) int {
	if id < 0 || int(id) >= len(st.df) {
		return 0
	}
	return int(st.df[id])
}

// sealLocked freezes the memtable into a level-0 segment and starts a
// fresh one. Caller holds the write lock.
func (st *Store) sealLocked() error {
	sg, err := st.mem.seal()
	if err != nil {
		return err
	}
	if sg != nil {
		// Freshly sealed segments join the shared block cache right away
		// (AttachCache no-ops on a nil cache): their blocks are heap-held
		// but still cost a decode per traversal.
		sg.idx.AttachCache(st.cache)
		st.segs = append(st.segs, sg)
	}
	mt, err := newMemtable(st)
	if err != nil {
		return err
	}
	st.mem = mt
	return nil
}

// Flush seals the current memtable (if non-empty) into a segment and
// nudges the compactor — searchd calls this on graceful shutdown so no
// buffered document is lost by Save.
func (st *Store) Flush() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return ErrClosed
	}
	err := st.sealLocked()
	st.mu.Unlock()
	if err != nil {
		return err
	}
	st.kickCompactor()
	return nil
}

// SearchRequest executes one structured request across all shards —
// the primary query entry point since the query-API redesign. The
// request's Keep filter composes with the per-shard tombstone filter;
// stats accumulate across shards; the context cancels mid-execution
// between postings blocks. Implements vsm.RequestSearcher together
// with SearchBatch.
func (st *Store) SearchRequest(ctx context.Context, req vsm.Request) (vsm.Response, error) {
	resps, err := st.SearchBatch(ctx, []vsm.Request{req})
	if err != nil {
		return vsm.Response{}, err
	}
	return resps[0], nil
}

// SearchBatch executes a batch of requests — typically one obfuscation
// cycle — against every shard with a single fan-out: one goroutine per
// shard runs the whole batch (sharing term resolution and postings
// buffers inside the shard engine), then each member's per-shard top-k
// lists merge into its global top-k. Each member's result is identical
// to running it alone; the property tests assert it.
func (st *Store) SearchBatch(ctx context.Context, reqs []vsm.Request) ([]vsm.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	resps := make([]vsm.Response, len(reqs))
	bt := batchTimer{enabled: st.metrics != nil}
	for i := range reqs {
		if reqs[i].Trace {
			bt.enabled = true
			resps[i].Trace = &telemetry.PhaseTrace{}
		}
	}
	bt.start()
	// Analyze raw queries once, before taking the lock. Tracing is
	// handled at the store level (finishBatch), so the per-shard copies
	// drop the Trace flag — shard-local phase times are partial and
	// concurrent, not something a caller can interpret.
	prepared := make([]vsm.Request, len(reqs))
	for i, req := range reqs {
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("segment: batch member %d: %w", i, err)
		}
		if req.Terms == nil {
			req.Terms = st.an.Analyze(req.Query)
		}
		req.Trace = false
		prepared[i] = req
	}
	bt.mark(&bt.resolve)

	st.mu.RLock()
	defer st.mu.RUnlock()

	shards := st.shardsLocked()
	if len(shards) == 0 {
		return resps, nil
	}

	// Bloom prefilter: a sealed segment whose term bloom contains none
	// of a request's terms provably cannot contribute a hit, so the
	// shard never runs that member. nil include means "run every
	// member" (the common case, and always the memtable); a non-nil
	// subset lists the member ordinals that survived. False positives
	// only cost the lookup that was going to happen anyway; false
	// negatives cannot occur, so results are unchanged.
	include := make([][]int, len(shards))
	for i := range shards {
		bl := shards[i].bloom
		if bl == nil {
			continue
		}
		sel := make([]int, 0, len(prepared))
		for j := range prepared {
			if bloomMayMatch(bl, prepared[j].Terms) {
				sel = append(sel, j)
			}
		}
		if len(sel) == len(prepared) {
			continue
		}
		st.bloomSkips.Add(uint64(len(prepared) - len(sel)))
		include[i] = sel
	}

	type shardOut struct {
		resps []vsm.Response
		err   error
	}
	outs := make([]shardOut, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		if include[i] != nil && len(include[i]) == 0 {
			continue // every member bloom-skipped; outs[i].resps stays nil
		}
		wg.Add(1)
		go func(i int, sh shard, inc []int) {
			defer wg.Done()
			dead := sh.dead
			keep := func(d corpus.DocID) bool { return !dead[d] }
			prep := func(req vsm.Request) vsm.Request {
				userKeep := req.Keep
				if userKeep == nil {
					req.Keep = keep
				} else {
					ids := sh.ids
					req.Keep = func(d corpus.DocID) bool {
						return !dead[d] && userKeep(ids[d])
					}
				}
				return req
			}
			var local []vsm.Request
			if inc == nil {
				local = make([]vsm.Request, len(prepared))
				for j, req := range prepared {
					local[j] = prep(req)
				}
			} else {
				local = make([]vsm.Request, len(inc))
				for k, j := range inc {
					local[k] = prep(prepared[j])
				}
			}
			rs, err := sh.eng.SearchBatch(ctx, local)
			if err != nil {
				outs[i].err = err
				return
			}
			for j := range rs {
				for h := range rs[j].Hits {
					rs[j].Hits[h].Doc = sh.ids[rs[j].Hits[h].Doc]
				}
			}
			if inc == nil {
				outs[i].resps = rs
			} else {
				// Scatter the subset back into member order; skipped
				// members keep a zero Response (no hits, no work).
				full := make([]vsm.Response, len(prepared))
				for k, j := range inc {
					full[j] = rs[k]
				}
				outs[i].resps = full
			}
		}(i, shards[i], include[i])
	}
	wg.Wait()
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
	}
	bt.mark(&bt.traverse)
	lists := make([][]vsm.Result, len(shards))
	for j := range reqs {
		for i := range outs {
			if outs[i].resps == nil {
				lists[i] = nil
				continue
			}
			lists[i] = outs[i].resps[j].Hits
			resps[j].Stats.Add(outs[i].resps[j].Stats)
		}
		resps[j].Hits = vsm.MergeTopK(lists, prepared[j].K)
	}
	bt.mark(&bt.merge)
	st.finishBatch(&bt, prepared, resps)
	return resps, nil
}

// shard is one searchable slice of the store: a sealed segment or the
// memtable, with its engine, global-ID mapping, tombstone bits and —
// for sealed segments — the term bloom filter queries prefilter on.
type shard struct {
	eng   *vsm.Engine
	ids   []corpus.DocID
	dead  []bool
	bloom *index.TermBloom // nil for the memtable: no prefilter
}

// shardsLocked snapshots the live shards. Caller holds st.mu (either
// mode).
func (st *Store) shardsLocked() []shard {
	shards := make([]shard, 0, len(st.segs)+1)
	for _, sg := range st.segs {
		if sg.live > 0 {
			shards = append(shards, shard{eng: sg.eng, ids: sg.ids, dead: sg.dead, bloom: sg.idx.Bloom()})
		}
	}
	if st.mem.live > 0 {
		shards = append(shards, shard{eng: st.mem.eng, ids: st.mem.ids, dead: st.mem.dead})
	}
	return shards
}

// bloomMayMatch reports whether any query term may occur in a segment
// according to its bloom filter. False means provably no term occurs —
// the segment cannot contribute a hit for this request.
func bloomMayMatch(bl *index.TermBloom, terms []string) bool {
	for _, t := range terms {
		if bl.MayContain(t) {
			return true
		}
	}
	return false
}

// Search analyzes the raw query and returns the global top-k across all
// shards. Implements vsm.Searcher. Legacy wrapper; new code should use
// SearchRequest.
func (st *Store) Search(query string, k int) []vsm.Result {
	return st.SearchTerms(st.an.Analyze(query), k)
}

// SearchTerms fans the analyzed query out to every shard concurrently —
// one goroutine per sealed segment plus the memtable — then merges the
// per-shard top-k lists with a bounded min-heap. Tombstoned documents
// are filtered inside each shard before they are scored, and every
// shard scores with the store's global statistics, so the merged
// ranking equals a single-index search over the surviving documents.
// Legacy wrapper; new code should use SearchRequest.
func (st *Store) SearchTerms(terms []string, k int) []vsm.Result {
	return st.SearchTermsExec(terms, k, vsm.ExecAuto, nil)
}

// SearchMode analyzes and runs a query under an explicit execution
// mode, overriding the store's configured default. Legacy wrapper; new
// code should use SearchRequest with Request.Mode.
func (st *Store) SearchMode(query string, k int, mode vsm.ExecMode) []vsm.Result {
	return st.SearchTermsExec(st.an.Analyze(query), k, mode, nil)
}

// SearchTermsExec is the uncancellable full-control query entry point:
// analyzed terms, an explicit execution mode (vsm.ExecAuto defers to
// the configured default), and an optional work-counter sink that
// accumulates across shards. Every shard prunes against its own local
// top-k threshold, so the merged result is identical to exhaustive
// execution. Legacy wrapper over SearchRequest.
func (st *Store) SearchTermsExec(terms []string, k int, mode vsm.ExecMode, stats *vsm.ExecStats) []vsm.Result {
	if k <= 0 || len(terms) == 0 {
		return nil
	}
	resp, err := st.SearchRequest(context.Background(), vsm.Request{Terms: terms, K: k, Mode: mode})
	if err != nil {
		return nil
	}
	if stats != nil {
		stats.Add(resp.Stats)
	}
	return resp.Hits
}

// Scoring returns the store's effective scoring function. After Load
// this is the manifest's saved scoring, which overrides the config —
// callers should report this value, not the one they asked for.
func (st *Store) Scoring() vsm.Scoring { return st.cfg.Scoring }

// LocalStats exports this store's live collection statistics keyed by
// term string — the shard side of the cluster's global-statistics
// exchange. Shards have independent vocabularies, so document
// frequencies cross the wire as strings; the router sums the per-shard
// tables into the merged N/df/avgdl it injects into every request.
// Terms whose live df dropped to zero are omitted.
func (st *Store) LocalStats() (docs int, totalLen int64, df map[string]int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	df = make(map[string]int, len(st.df))
	for id, n := range st.df {
		if n > 0 {
			df[st.vocab.Term(textproc.TermID(id))] = int(n)
		}
	}
	return st.liveDocs, int64(st.liveLen), df
}

// NumDocs returns the number of live documents.
func (st *Store) NumDocs() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.liveDocs
}

// NumSegments returns the number of sealed segments.
func (st *Store) NumSegments() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.segs)
}

// Stats summarizes the store's shape.
type Stats struct {
	LiveDocs     int   `json:"live_docs"`
	MemtableDocs int   `json:"memtable_docs"`
	Segments     int   `json:"segments"`
	Tombstones   int   `json:"tombstones"`
	Levels       []int `json:"levels"` // segment count per level
	VocabSize    int   `json:"vocab_size"`
	NextID       int64 `json:"next_id"`
}

// Stats returns a snapshot of the store's shape.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := Stats{
		LiveDocs:     st.liveDocs,
		MemtableDocs: len(st.mem.docs),
		Segments:     len(st.segs),
		VocabSize:    st.vocab.Size(),
		NextID:       int64(st.nextID),
	}
	s.Tombstones = len(st.mem.docs) - st.mem.live
	for _, sg := range st.segs {
		s.Tombstones += len(sg.ids) - sg.live
		for len(s.Levels) <= sg.level {
			s.Levels = append(s.Levels, 0)
		}
		s.Levels[sg.level]++
	}
	return s
}

// ComputeStats aggregates index-shape statistics across all sealed
// segments and the memtable, for the /stats endpoint. SizeBytes is the
// sum of the segments' serialized sizes (the memtable, unserialized, is
// excluded). PostingsBytes counts the sealed segments' exact compressed
// footprint plus the memtable's uncompressed lists at their in-memory
// cost of 8 bytes per ⟨int32 doc, int32 tf⟩ posting. ResidentBytes
// drops the mapped segments' page-cache-backed payloads and adds the
// block cache's pinned allocation, so it reports what the store
// actually holds on the heap.
func (st *Store) ComputeStats() index.Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := index.Stats{NumDocs: st.liveDocs, NumTerms: st.vocab.Size()}
	for _, sg := range st.segs {
		part := sg.idx.ComputeStats()
		s.NumPostings += part.NumPostings
		if part.MaxListLen > s.MaxListLen {
			s.MaxListLen = part.MaxListLen
		}
		s.SizeBytes += part.SizeBytes
		s.PostingsBytes += part.PostingsBytes
		s.ResidentBytes += part.ResidentBytes
	}
	for _, pl := range st.mem.post {
		s.NumPostings += len(pl)
		if len(pl) > s.MaxListLen {
			s.MaxListLen = len(pl)
		}
		s.PostingsBytes += 8 * int64(len(pl))
		s.ResidentBytes += 8 * int64(len(pl))
	}
	s.ResidentBytes += st.cache.Stats().Bytes
	if s.NumTerms > 0 {
		s.MeanListLen = float64(s.NumPostings) / float64(s.NumTerms)
	}
	if s.NumDocs > 0 {
		s.BytesPerDoc = float64(s.PostingsBytes) / float64(s.NumDocs)
		s.ResidentPerDoc = float64(s.ResidentBytes) / float64(s.NumDocs)
	}
	if s.NumPostings > 0 && s.SizeBytes > 0 {
		bytesPerPosting := float64(s.SizeBytes) / float64(s.NumPostings)
		s.PaddedPIRBytes = int64(bytesPerPosting * float64(s.MaxListLen) * float64(s.NumTerms))
	}
	return s
}

// CacheStats snapshots the shared block cache's counters; ok is false
// when no cache is configured (not Mapped, or CacheBytes == 0).
func (st *Store) CacheStats() (index.CacheStats, bool) {
	if st.cache == nil {
		return index.CacheStats{}, false
	}
	return st.cache.Stats(), true
}

// BloomSkips returns how many ⟨shard, request⟩ pairs the per-segment
// bloom filters have pruned since the store opened.
func (st *Store) BloomSkips() uint64 { return st.bloomSkips.Load() }

var _ vsm.Searcher = (*Store)(nil)
