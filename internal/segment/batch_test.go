package segment

import (
	"context"
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// TestStoreSearchBatchMatchesSingle asserts the store's batch path —
// one fan-out per batch, each shard running the whole cycle, per-member
// merge — returns, member for member, exactly what SearchRequest
// returns alone: same documents, same order, same float64 scores, same
// aggregated stats for explicit modes. Exercised over a store with
// memtable + sealed segments + tombstones, both scorings, mixed modes.
func TestStoreSearchBatchMatchesSingle(t *testing.T) {
	ctx := context.Background()
	for _, scoring := range []vsm.Scoring{vsm.Cosine, vsm.BM25} {
		scoring := scoring
		t.Run(scoring.String(), func(t *testing.T) {
			an := textproc.NewAnalyzer()
			docs := synthDocs(t, 80, 640)
			rng := rand.New(rand.NewSource(9300))
			st, err := Open(Config{
				Scoring:           scoring,
				Analyzer:          an,
				SealThreshold:     9,
				DisableCompaction: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			var gids []corpus.DocID
			for _, doc := range docs {
				ids, err := st.Add(doc)
				if err != nil {
					t.Fatal(err)
				}
				gids = append(gids, ids[0])
				if rng.Float64() < 0.15 && len(gids) > 1 {
					i := rng.Intn(len(gids))
					if err := st.Delete(gids[i]); err != nil {
						t.Fatal(err)
					}
					gids = append(gids[:i], gids[i+1:]...)
				}
			}

			modes := []vsm.ExecMode{vsm.ExecAuto, vsm.ExecAuto, vsm.ExecMaxScore, vsm.ExecBlockMax, vsm.ExecExhaustive, vsm.ExecAuto}
			reqs := make([]vsm.Request, 0, 8)
			for qi := 0; qi < 8; qi++ {
				q := queryFrom(docs[rng.Intn(len(docs))], rng.Intn(25), 2+rng.Intn(4))
				reqs = append(reqs, vsm.Request{
					Query: q,
					K:     []int{1, 10, 50}[qi%3],
					Mode:  modes[qi%len(modes)],
				})
			}
			batch, err := st.SearchBatch(ctx, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(reqs) {
				t.Fatalf("%d responses for %d requests", len(batch), len(reqs))
			}
			for i, req := range reqs {
				single, err := st.SearchRequest(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				if len(batch[i].Hits) != len(single.Hits) {
					t.Fatalf("member %d: batch %d hits, single %d", i, len(batch[i].Hits), len(single.Hits))
				}
				for j := range single.Hits {
					if batch[i].Hits[j] != single.Hits[j] {
						t.Fatalf("member %d rank %d: batch %+v vs single %+v", i, j, batch[i].Hits[j], single.Hits[j])
					}
				}
				// The legacy surface must agree too.
				legacy := st.SearchTermsExec(an.Analyze(req.Query), req.K, req.Mode, nil)
				for j := range legacy {
					if batch[i].Hits[j] != legacy[j] {
						t.Fatalf("member %d rank %d: batch %+v vs legacy %+v", i, j, batch[i].Hits[j], legacy[j])
					}
				}
			}
		})
	}
}

// TestStoreSearchCancellation pins context propagation through the
// shard fan-out: an already-canceled context fails the batch with the
// context's error.
func TestStoreSearchCancellation(t *testing.T) {
	an := textproc.NewAnalyzer()
	st, err := Open(Config{Analyzer: an, SealThreshold: 16, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	docs := synthDocs(t, 40, 888)
	if _, err := st.Add(docs...); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := queryFrom(docs[0], 0, 3)
	if _, err := st.SearchRequest(ctx, vsm.Request{Query: q, K: 10}); err != context.Canceled {
		t.Errorf("canceled store request returned %v, want context.Canceled", err)
	}
	if _, err := st.SearchBatch(ctx, []vsm.Request{{Query: q, K: 10}, {Query: q, K: 5}}); err != context.Canceled {
		t.Errorf("canceled store batch returned %v, want context.Canceled", err)
	}
	// Validation errors surface before execution.
	if _, err := st.SearchBatch(context.Background(), []vsm.Request{{Query: q, K: 0}}); err == nil {
		t.Error("k = 0 store batch member must error")
	}
}
