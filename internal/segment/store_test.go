package segment

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// synthDocs returns n synthetic documents with raw text.
func synthDocs(t testing.TB, n int, seed int64) []corpus.Document {
	t.Helper()
	c, _, err := corpus.Synthesize(corpus.GenSpec{
		Seed: seed, NumDocs: n, NumTopics: 6, DocLenMin: 30, DocLenMax: 60,
	}, textproc.NewAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	return c.Docs
}

// queryFrom builds a query from consecutive words of a document.
func queryFrom(doc corpus.Document, start, n int) string {
	fields := splitWords(doc.Text)
	if len(fields) == 0 {
		return ""
	}
	start %= len(fields)
	end := start + n
	if end > len(fields) {
		end = len(fields)
	}
	out := ""
	for _, w := range fields[start:end] {
		out += w + " "
	}
	return out
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' || r == '\n' || r == '\t' || r == '.' || r == ',' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func TestStoreAddSearchDelete(t *testing.T) {
	docs := synthDocs(t, 30, 1)
	st, err := Open(Config{SealThreshold: 8, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ids, err := st.Add(docs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 30 {
		t.Fatalf("got %d ids", len(ids))
	}
	for i, id := range ids {
		if int(id) != i {
			t.Fatalf("ids not dense: %v", ids[:i+1])
		}
	}
	if st.NumDocs() != 30 {
		t.Fatalf("NumDocs = %d", st.NumDocs())
	}
	if st.NumSegments() < 3 {
		t.Fatalf("expected ≥3 sealed segments at threshold 8, got %d", st.NumSegments())
	}

	q := queryFrom(docs[5], 3, 5)
	res := st.Search(q, 10)
	if len(res) == 0 {
		t.Fatalf("no results for %q", q)
	}
	found := false
	for _, r := range res {
		if r.Doc == ids[5] {
			found = true
		}
	}
	if !found {
		t.Fatalf("doc 5 not retrieved by its own words %q: %v", q, res)
	}

	if err := st.Delete(ids[5]); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(ids[5]); err != ErrNotFound {
		t.Fatalf("double delete: got %v, want ErrNotFound", err)
	}
	if st.NumDocs() != 29 {
		t.Fatalf("NumDocs after delete = %d", st.NumDocs())
	}
	for _, r := range st.Search(q, 30) {
		if r.Doc == ids[5] {
			t.Fatal("tombstoned doc still retrieved")
		}
	}
	if _, ok := st.Doc(ids[5]); ok {
		t.Fatal("tombstoned doc still visible via Doc")
	}
	if d, ok := st.Doc(ids[6]); !ok || d.Title != docs[6].Title {
		t.Fatalf("Doc(%d) = %+v, %v", ids[6], d, ok)
	}
}

func TestStoreCompactPreservesResults(t *testing.T) {
	docs := synthDocs(t, 40, 2)
	st, err := Open(Config{SealThreshold: 6, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ids, err := st.Add(docs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Delete(ids[i*3]); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		queries = append(queries, queryFrom(docs[i*4+1], i, 5))
	}
	before := make([][]vsm.Result, len(queries))
	for i, q := range queries {
		before[i] = st.Search(q, 15)
	}

	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := st.NumSegments(); got != 1 {
		t.Fatalf("segments after full compaction = %d, want 1", got)
	}
	stats := st.Stats()
	if stats.Tombstones != 0 {
		t.Fatalf("tombstones after compaction = %d, want 0", stats.Tombstones)
	}
	for i, q := range queries {
		after := st.Search(q, 15)
		if len(after) != len(before[i]) {
			t.Fatalf("query %q: %d results after compaction, %d before", q, len(after), len(before[i]))
		}
		for j := range after {
			if after[j].Doc != before[i][j].Doc {
				t.Fatalf("query %q rank %d: doc %d after, %d before", q, j, after[j].Doc, before[i][j].Doc)
			}
			if diff := after[j].Score - before[i][j].Score; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("query %q rank %d: score drifted by %g", q, j, diff)
			}
		}
	}
}

func TestBackgroundCompaction(t *testing.T) {
	docs := synthDocs(t, 32, 3)
	st, err := Open(Config{SealThreshold: 4, CompactFanout: 2, CompactInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Add(docs...); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st.NumSegments() <= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor never converged: %+v", st.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.NumDocs() != 32 {
		t.Fatalf("NumDocs = %d after compaction", st.NumDocs())
	}
	res := st.Search(queryFrom(docs[9], 2, 5), 5)
	if len(res) == 0 {
		t.Fatal("no results after background compaction")
	}
}

func TestStorePersistenceRoundTrip(t *testing.T) {
	docs := synthDocs(t, 25, 4)
	dir := t.TempDir()
	st, err := Open(Config{Scoring: vsm.BM25, SealThreshold: 7, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := st.Add(docs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{2, 11, 19} {
		if err := st.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		queryFrom(docs[3], 0, 5),
		queryFrom(docs[12], 4, 4),
		queryFrom(docs[24], 1, 6),
	}
	want := make([][]vsm.Result, len(queries))
	for i, q := range queries {
		want[i] = st.Search(q, 12)
	}
	wantStats := st.Stats()
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ld, err := Load(dir, Config{DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	if got := ld.NumDocs(); got != wantStats.LiveDocs {
		t.Fatalf("loaded NumDocs = %d, want %d", got, wantStats.LiveDocs)
	}
	if got := ld.Stats().NextID; got != wantStats.NextID {
		t.Fatalf("loaded NextID = %d, want %d", got, wantStats.NextID)
	}
	for i, q := range queries {
		got := ld.Search(q, 12)
		if len(got) != len(want[i]) {
			t.Fatalf("query %q: %d results loaded, want %d", q, len(got), len(want[i]))
		}
		for j := range got {
			if got[j].Doc != want[i][j].Doc {
				t.Fatalf("query %q rank %d: doc %d loaded, want %d", q, j, got[j].Doc, want[i][j].Doc)
			}
			if diff := got[j].Score - want[i][j].Score; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("query %q rank %d: score drifted by %g", q, j, diff)
			}
		}
	}
	// The loaded store stays live: adding and deleting keep working and
	// IDs continue from the manifest's next_id.
	nid, err := ld.Add(corpus.Document{Title: "new", Text: docs[0].Text})
	if err != nil {
		t.Fatal(err)
	}
	if nid[0] != corpus.DocID(wantStats.NextID) {
		t.Fatalf("post-load ID = %d, want %d", nid[0], wantStats.NextID)
	}
	if err := ld.Delete(nid[0]); err != nil {
		t.Fatal(err)
	}
}

func TestStoreConcurrentUse(t *testing.T) {
	docs := synthDocs(t, 200, 5)
	st, err := Open(Config{SealThreshold: 16, CompactFanout: 2, CompactInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Add(docs[:50]...); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for _, d := range docs[50:] {
			if _, err := st.Add(d); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 300; i++ {
			q := queryFrom(docs[rng.Intn(len(docs))], rng.Intn(20), 4)
			st.Search(q, 10)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			// Deleting an ID that may not exist yet is fine — ErrNotFound.
			_ = st.Delete(corpus.DocID(i * 3))
		}
	}()
	wg.Wait()
	stats := st.Stats()
	if stats.LiveDocs+stats.Tombstones == 0 {
		t.Fatalf("implausible stats %+v", stats)
	}
}

func TestStoreClosedOps(t *testing.T) {
	st, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := st.Add(corpus.Document{Text: "x"}); err != ErrClosed {
		t.Fatalf("Add on closed store: %v", err)
	}
	if err := st.Delete(0); err != ErrClosed {
		t.Fatalf("Delete on closed store: %v", err)
	}
	if err := st.Flush(); err != ErrClosed {
		t.Fatalf("Flush on closed store: %v", err)
	}
}

func TestStoreEmptySearch(t *testing.T) {
	st, err := Open(Config{DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if res := st.Search("anything", 10); res != nil {
		t.Fatalf("search on empty store = %v", res)
	}
	if _, ok := st.Doc(0); ok {
		t.Fatal("Doc on empty store")
	}
	if err := st.Delete(0); err != ErrNotFound {
		t.Fatalf("Delete on empty store: %v", err)
	}
}

func TestComputeStatsAggregates(t *testing.T) {
	docs := synthDocs(t, 20, 6)
	st, err := Open(Config{SealThreshold: 6, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Add(docs...); err != nil {
		t.Fatal(err)
	}
	s := st.ComputeStats()
	if s.NumDocs != 20 || s.NumTerms == 0 || s.NumPostings == 0 || s.MaxListLen == 0 {
		t.Fatalf("implausible aggregate stats %+v", s)
	}
}

func TestFindRun(t *testing.T) {
	mk := func(levels ...int) []*seg {
		out := make([]*seg, len(levels))
		for i, l := range levels {
			out[i] = &seg{level: l}
		}
		return out
	}
	cases := []struct {
		levels     []int
		fanout     int
		start, end int
	}{
		{[]int{0, 0, 0, 0}, 4, 0, 4},
		{[]int{1, 0, 0}, 2, 1, 3},
		{[]int{2, 1, 0}, 2, -1, -1},
		{[]int{2, 1, 1, 0, 0}, 2, 1, 3},
		{nil, 2, -1, -1},
	}
	for i, c := range cases {
		s, e := findRun(mk(c.levels...), c.fanout)
		if s != c.start || e != c.end {
			t.Errorf("case %d (%v): got [%d,%d), want [%d,%d)", i, c.levels, s, e, c.start, c.end)
		}
	}
}

func ExampleStore() {
	st, _ := Open(Config{SealThreshold: 2, DisableCompaction: true})
	defer st.Close()
	ids, _ := st.Add(
		corpus.Document{Title: "a", Text: "reactor cooling systems for submarines"},
		corpus.Document{Title: "b", Text: "helicopter rotor maintenance manual"},
		corpus.Document{Title: "c", Text: "submarine reactor fuel handling"},
	)
	for _, r := range st.Search("rotor maintenance", 10) {
		doc, _ := st.Doc(r.Doc)
		fmt.Println("before delete:", doc.Title)
	}
	_ = st.Delete(ids[1])
	fmt.Println("after delete:", len(st.Search("rotor maintenance", 10)), "hits,", st.NumDocs(), "live docs")
	// Output:
	// before delete: b
	// after delete: 0 hits, 2 live docs
}

// TestSaveIsCrashSafe asserts the generation discipline: a second Save
// must not disturb the files the current manifest references until the
// new manifest is in place, and stale generations are cleaned up after.
func TestSaveIsCrashSafe(t *testing.T) {
	docs := synthDocs(t, 20, 8)
	dir := t.TempDir()
	st, err := Open(Config{SealThreshold: 5, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Add(docs[:10]...); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	gen1, err := filepath.Glob(filepath.Join(dir, "seg-000001-*"))
	if err != nil || len(gen1) == 0 {
		t.Fatalf("generation-1 files: %v, %v", gen1, err)
	}
	// Mutate (including a compaction that shrinks the stack) and save
	// again: generation 2 replaces generation 1 atomically.
	if _, err := st.Add(docs[10:]...); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "seg-*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range left {
		if !strings.Contains(f, "seg-000002-") {
			t.Fatalf("stale generation file survived: %s (all: %v)", f, left)
		}
	}
	ld, err := Load(dir, Config{DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	if ld.NumDocs() != 20 {
		t.Fatalf("loaded %d docs, want 20", ld.NumDocs())
	}
}
