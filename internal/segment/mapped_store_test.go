package segment

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

func corpusDoc(title, text string) corpus.Document {
	return corpus.Document{Title: title, Text: text}
}

// saveMappedFixture builds a store with sealed segments and tombstones,
// saves it, and returns the directory plus the documents and analyzer
// used, so callers can reload it under different open modes.
func saveMappedFixture(t *testing.T, scoring vsm.Scoring, seed int64) (string, []string, *textproc.Analyzer) {
	t.Helper()
	an := textproc.NewAnalyzer()
	docs := synthDocs(t, 60, seed)
	st, err := Open(Config{Analyzer: an, Scoring: scoring, SealThreshold: 9, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := st.Add(docs...)
	if err != nil {
		t.Fatal(err)
	}
	// Tombstone a spread of documents so the deletion filter is live in
	// every open mode.
	for i := 3; i < len(ids); i += 11 {
		if err := st.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	st.Close()
	rng := rand.New(rand.NewSource(seed))
	var queries []string
	for qi := 0; qi < 12; qi++ {
		queries = append(queries, queryFrom(docs[rng.Intn(len(docs))], rng.Intn(25), 3+rng.Intn(3)))
	}
	queries = append(queries, "zzzzunseenterm", "")
	return dir, queries, an
}

// TestMappedStoreBitIdentical is the mapped open path's end-to-end
// guarantee: a store loaded with Mapped (with and without a block
// cache) returns bit-identical results — same documents, same float64
// scores, no tolerance — to the same directory loaded in-memory,
// across scorers, exec modes, k values, and tombstoned documents.
func TestMappedStoreBitIdentical(t *testing.T) {
	for _, scoring := range []vsm.Scoring{vsm.Cosine, vsm.BM25} {
		dir, queries, an := saveMappedFixture(t, scoring, 40+int64(scoring))

		mem, err := Load(dir, Config{Analyzer: an, DisableCompaction: true})
		if err != nil {
			t.Fatal(err)
		}
		defer mem.Close()
		mapped, err := Load(dir, Config{Analyzer: an, DisableCompaction: true, Mapped: true})
		if err != nil {
			t.Fatal(err)
		}
		defer mapped.Close()
		cached, err := Load(dir, Config{Analyzer: an, DisableCompaction: true, Mapped: true, CacheBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		defer cached.Close()

		for qi, q := range queries {
			terms := an.Analyze(q)
			for _, mode := range []vsm.ExecMode{vsm.ExecExhaustive, vsm.ExecMaxScore, vsm.ExecBlockMax} {
				for _, k := range []int{5, 20} {
					want := mem.SearchTermsExec(terms, k, mode, nil)
					// Two passes over the cached store: the second is served
					// (partly) from the block cache and must not drift.
					for _, st := range []*Store{mapped, cached, cached} {
						got := st.SearchTermsExec(terms, k, mode, nil)
						if len(got) != len(want) {
							t.Fatalf("scoring %v q%d %v k=%d: %d results vs %d in-memory",
								scoring, qi, mode, k, len(got), len(want))
						}
						for i := range got {
							if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
								t.Fatalf("scoring %v q%d %v k=%d rank %d: (%d,%v) vs in-memory (%d,%v)",
									scoring, qi, mode, k, i, got[i].Doc, got[i].Score, want[i].Doc, want[i].Score)
							}
						}
					}
				}
			}
		}

		// The cached store must expose cache telemetry; the plain stores
		// must not.
		if _, ok := mem.CacheStats(); ok {
			t.Fatal("in-memory store reports a block cache")
		}
		cs, ok := cached.CacheStats()
		if !ok {
			t.Fatal("Mapped+CacheBytes store has no cache stats")
		}
		if cs.Hits == 0 || cs.Misses == 0 {
			t.Fatalf("cache never exercised: %+v", cs)
		}
		// Residency: the in-memory store holds every posting on the heap;
		// the mapped store's payloads are disk views, so its resident
		// figure must be strictly smaller (possibly zero). The cached
		// store additionally accounts its pinned slots.
		ms, is, chs := mapped.ComputeStats(), mem.ComputeStats(), cached.ComputeStats()
		if is.ResidentBytes <= 0 {
			t.Fatalf("in-memory residency unreported: %d", is.ResidentBytes)
		}
		if ms.ResidentBytes < 0 || ms.ResidentBytes >= is.ResidentBytes {
			t.Fatalf("mapped store resident %d, in-memory %d", ms.ResidentBytes, is.ResidentBytes)
		}
		if chs.ResidentBytes <= ms.ResidentBytes {
			t.Fatalf("cached store resident %d does not account cache slots (mapped %d)",
				chs.ResidentBytes, ms.ResidentBytes)
		}
	}
}

// TestMappedCacheSurvivesCompaction guards against the cache going
// permanently dead after a compaction: retired parts must have their
// entries purged, but the merged segment (and segments sealed after
// load) must attach to the same cache, so post-compaction queries
// repopulate it and hit. Searches run concurrently with the compaction
// to exercise the atomic cache detach under the race detector.
func TestMappedCacheSurvivesCompaction(t *testing.T) {
	dir, queries, an := saveMappedFixture(t, vsm.Cosine, 99)
	mem, err := Load(dir, Config{Analyzer: an, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	cached, err := Load(dir, Config{Analyzer: an, DisableCompaction: true, Mapped: true, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()

	// Grow both stores identically past load, then seal: the new
	// segment must join the cache too (attach-on-seal).
	extra := synthDocs(t, 12, 77)
	for _, st := range []*Store{mem, cached} {
		if _, err := st.Add(extra...); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Warm the cache, then merge everything down while searches are in
	// flight against the pre-compaction stack.
	for _, q := range queries {
		cached.Search(q, 10)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, q := range queries {
					cached.Search(q, 10)
				}
			}
		}()
	}
	if err := cached.Compact(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	before, ok := cached.CacheStats()
	if !ok {
		t.Fatal("cache telemetry lost after compaction")
	}
	// Post-compaction queries must still be bit-identical to the
	// (uncompacted) in-memory oracle, and must flow through the cache:
	// the first pass repopulates, the second hits.
	for qi, q := range queries {
		terms := an.Analyze(q)
		want := mem.SearchTermsExec(terms, 10, vsm.ExecExhaustive, nil)
		for pass := 0; pass < 2; pass++ {
			got := cached.SearchTermsExec(terms, 10, vsm.ExecExhaustive, nil)
			if len(got) != len(want) {
				t.Fatalf("q%d pass %d: %d results vs %d in-memory", qi, pass, len(got), len(want))
			}
			for i := range got {
				if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
					t.Fatalf("q%d pass %d rank %d: (%d,%v) vs in-memory (%d,%v)",
						qi, pass, i, got[i].Doc, got[i].Score, want[i].Doc, want[i].Score)
				}
			}
		}
	}
	after, _ := cached.CacheStats()
	if after.Entries == 0 {
		t.Fatalf("cache dead after compaction: %+v", after)
	}
	if after.Hits <= before.Hits {
		t.Fatalf("merged segment never hit the cache: before %+v after %+v", before, after)
	}
}

// TestMappedStoreRejectsCorruptSegment damages a saved segment file and
// requires the mapped Load to fail cleanly: truncation and header
// corruption must surface as errors at open, never as a panic or a
// silently wrong store.
func TestMappedStoreRejectsCorruptSegment(t *testing.T) {
	dir, _, an := saveMappedFixture(t, vsm.Cosine, 7)
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.tpix"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files saved (err=%v)", err)
	}
	orig, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(segs[0], orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mutations := map[string][]byte{
		"truncated":     orig[:len(orig)/2],
		"empty":         {},
		"magic flipped": append([]byte{'X'}, orig[1:]...),
	}
	for name, mut := range mutations {
		if err := os.WriteFile(segs[0], mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir, Config{Analyzer: an, Mapped: true}); err == nil {
			t.Fatalf("%s segment accepted by mapped Load", name)
		}
		if _, err := Load(dir, Config{Analyzer: an}); err == nil {
			t.Fatalf("%s segment accepted by in-memory Load", name)
		}
	}
	restore()
	st, err := Load(dir, Config{Analyzer: an, Mapped: true})
	if err != nil {
		t.Fatalf("restored directory must load: %v", err)
	}
	st.Close()
}

// TestBloomSkipsSegments builds two sealed segments with (partially)
// disjoint vocabularies. The first segment is sealed before the second
// batch's terms enter the dictionary, so its persisted bloom cannot
// contain them: querying a second-batch-only term must skip the first
// segment — observable via BloomSkips — while returning exactly the
// results the full scan would.
func TestBloomSkipsSegments(t *testing.T) {
	an := textproc.NewAnalyzer()
	st, err := Open(Config{Analyzer: an, SealThreshold: 1 << 30, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Add(
		corpusDoc("d0", "apache helicopter army weapons deployment"),
		corpusDoc("d1", "apache webserver configuration modules"),
	); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil { // seals segment 0: vocab has no finance terms yet
		t.Fatal(err)
	}
	if _, err := st.Add(
		corpusDoc("d2", "stock market investors trading volume"),
		corpusDoc("d3", "market portfolio dividend yield investors"),
	); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.BloomSkips() != 0 {
		t.Fatalf("skips before any query: %d", st.BloomSkips())
	}
	// "dividend" exists only in the second batch; segment 0's bloom was
	// built from a vocabulary that predates it.
	res := st.Search("dividend yield", 10)
	if len(res) != 1 {
		t.Fatalf("dividend yield returned %d docs, want 1", len(res))
	}
	skips := st.BloomSkips()
	if skips == 0 {
		t.Fatal("query with terms absent from segment 0 did not skip it")
	}
	// A term present in both segments' vocabularies must not skip and
	// must still retrieve across segments.
	if got := st.Search("apache", 10); len(got) != 2 {
		t.Fatalf("apache returned %d docs, want 2", len(got))
	}
	if st.BloomSkips() != skips {
		t.Fatalf("apache query skipped a segment: %d -> %d", skips, st.BloomSkips())
	}
	// Unknown terms skip every sealed segment and return nothing.
	if got := st.Search("zzzzunseenterm", 10); len(got) != 0 {
		t.Fatalf("unseen term returned %d docs", len(got))
	}
	if st.BloomSkips() <= skips {
		t.Fatal("unseen-term query did not skip sealed segments")
	}
}
