// Package segment implements the live-index subsystem: an LSM-inspired
// layering of a mutable in-memory memtable under a stack of immutable
// sealed segments, each wrapping an index.Index. Documents are added to
// the memtable; at a size threshold the memtable is sealed into a new
// level-0 segment; a background compactor merges same-level runs of
// segments into the next level; deletes set tombstone bits without
// touching postings. Searches fan out across all segments (and the
// memtable) concurrently and merge per-shard top-k results with a heap,
// scoring every shard against *global* live collection statistics
// (N, df, avgdl) so results are identical — to floating-point noise —
// to a from-scratch index.Build over the surviving documents.
//
// Shard queries execute document-at-a-time with top-k pruning by
// default (block-max WAND for cosine, MaxScore otherwise): sealed
// segments carry exact per-term and per-block impact bounds from
// index.Build, the memtable maintains incremental (never-shrinking)
// term-level bounds as documents arrive — its block bounds are
// computed exactly on seal, when the lists stop growing — and
// tombstones are filtered before a document is scored.
// Config.ExecMode pins a strategy store-wide; SearchTermsExec
// overrides it per query.
//
// The store persists as one TPIX file per sealed segment plus a JSON
// manifest, so a restart recovers without re-analyzing any text.
package segment

import (
	"math"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// seg is one immutable sealed segment. Its postings and engine never
// change after sealing; only the tombstone bits (dead) mutate, under
// the store's write lock.
type seg struct {
	level int
	// ids maps segment-local document IDs (dense from 0) to the store's
	// global IDs, in ascending order.
	ids []corpus.DocID
	// docs holds the raw documents, aligned with ids; Document.ID is the
	// global ID. Retained for /doc lookups, delete-time stats
	// maintenance, and persistence.
	docs []corpus.Document
	idx  *index.Index
	eng  *vsm.Engine
	dead []bool
	live int
}

// locate binary-searches the segment for a global doc ID, returning the
// local ID.
func (s *seg) locate(gid corpus.DocID) (corpus.DocID, bool) {
	return locateID(s.ids, gid)
}

// locateID binary-searches an ascending global-ID slice, returning the
// position as a shard-local doc ID. Shared by segments and the
// memtable.
func locateID(ids []corpus.DocID, gid corpus.DocID) (corpus.DocID, bool) {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < gid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ids) && ids[lo] == gid {
		return corpus.DocID(lo), true
	}
	return 0, false
}

// localSource is the shard-local half of a liveSource: postings
// iterators, per-document facts, and the per-term max-impact bounds
// that fuel MaxScore pruning. Both *index.Index (sealed segments:
// decode-on-traversal iterators over block-compressed lists, exact
// bounds computed at Build) and *memtable (plain slice iterators over
// its uncompressed growing lists, incrementally maintained bounds
// recomputed exactly on seal) satisfy it.
type localSource interface {
	NumTerms() int
	IterInto(id textproc.TermID, it *index.Iterator)
	DocLen(d corpus.DocID) int
	MaxTF(id textproc.TermID) int32
	MaxCosImpact(id textproc.TermID) float64
	MaxBM25Impact(id textproc.TermID) float64
}

// liveSource adapts one shard to the vsm.Source contract by delegating
// postings to the shard while reading collection statistics — document
// count, document frequency, idf, average length — from the store's
// live counters, which span every shard and exclude tombstoned
// documents. This is what makes per-shard scoring add up to exactly the
// single-index result: a query term's weight is the same in every
// shard, even in shards that have never seen the term.
//
// All methods read store fields without locking: the engine only calls
// them while the store's mutex is held (read-held during Search,
// write-held during seal), which excludes every writer.
type liveSource struct {
	st    *Store
	local localSource
	// norms holds precomputed lnc document norms for sealed shards; nil
	// for the memtable, whose norms grow with it (localNorms).
	norms []float64
}

// localNorms is implemented by shards that maintain their own norms
// (the memtable).
type localNorms interface {
	DocNorm(d corpus.DocID) float64
}

func (s *liveSource) Vocab() *textproc.Vocab { return s.st.vocab }
func (s *liveSource) NumDocs() int           { return s.st.liveDocs }
func (s *liveSource) NumTerms() int          { return s.local.NumTerms() }

func (s *liveSource) IterInto(id textproc.TermID, it *index.Iterator) {
	s.local.IterInto(id, it)
}

func (s *liveSource) DocFreq(id textproc.TermID) int { return s.st.docFreqLocked(id) }

func (s *liveSource) IDF(id textproc.TermID) float64 {
	df := s.st.docFreqLocked(id)
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(s.st.liveDocs)/float64(df))
}

func (s *liveSource) DocLen(d corpus.DocID) int { return s.local.DocLen(d) }

// Max-impact delegation: bounds are shard-local facts (a term's best
// posting in this shard), so per-shard pruning against the global
// top-k threshold stays sound. Implements vsm.ImpactSource.

func (s *liveSource) MaxTF(id textproc.TermID) int32          { return s.local.MaxTF(id) }
func (s *liveSource) MaxCosImpact(id textproc.TermID) float64 { return s.local.MaxCosImpact(id) }
func (s *liveSource) MaxBM25Impact(id textproc.TermID) float64 {
	return s.local.MaxBM25Impact(id)
}

// localBlocks is implemented by shards whose postings carry per-block
// impact bounds (*index.Index — i.e. every sealed segment, whose
// blocks are computed exactly by index.Build on seal and by Merge on
// compaction). The memtable does not: its lists grow in place, so its
// iterators fall back to term-level bounds.
type localBlocks interface {
	BlockIterInto(id textproc.TermID, it *index.Iterator)
}

// BlockIterInto implements vsm.BlockSource: sealed shards hand out
// iterators with per-block bounds; the memtable degrades to a plain
// iterator, which block-max WAND treats as a single block bounded by
// the term-level maxima.
func (s *liveSource) BlockIterInto(id textproc.TermID, it *index.Iterator) {
	if lb, ok := s.local.(localBlocks); ok {
		lb.BlockIterInto(id, it)
		return
	}
	s.local.IterInto(id, it)
}

// HasBlocks reports whether this shard's iterators carry real block
// bounds (sealed segments yes, memtable no), so ExecAuto routes the
// memtable through MaxScore instead of degraded WAND while an
// explicit ExecBlockMax still executes — correctly — either way.
func (s *liveSource) HasBlocks() bool {
	_, ok := s.local.(localBlocks)
	return ok
}

// localHeads is implemented by shards whose postings carry an
// impact-ordered head (*index.Index — computed on seal and on
// compaction). The memtable does not; its queries simply run unprimed.
type localHeads interface {
	HeadOrder(id textproc.TermID) []int32
	BlockMaxes(id textproc.TermID) []index.BlockMax
}

// HeadOrder implements the vsm head-source extension: sealed shards
// hand out their lists' impact-ordered heads for threshold priming;
// the memtable has none.
func (s *liveSource) HeadOrder(id textproc.TermID) []int32 {
	if lh, ok := s.local.(localHeads); ok {
		return lh.HeadOrder(id)
	}
	return nil
}

// BlockMaxes exposes the shard's per-block impact bounds alongside
// HeadOrder (priming reads bounds by head ordinal without positioning
// an iterator). Nil over the memtable.
func (s *liveSource) BlockMaxes(id textproc.TermID) []index.BlockMax {
	if lh, ok := s.local.(localHeads); ok {
		return lh.BlockMaxes(id)
	}
	return nil
}

func (s *liveSource) AvgDocLen() float64 {
	if s.st.liveDocs == 0 {
		return 0
	}
	return float64(s.st.liveLen) / float64(s.st.liveDocs)
}

// DocNorm implements vsm.NormSource so engine construction never scans
// a live source.
func (s *liveSource) DocNorm(d corpus.DocID) float64 {
	if s.norms != nil {
		if int(d) < len(s.norms) {
			return s.norms[d]
		}
		return 0
	}
	return s.local.(localNorms).DocNorm(d)
}
