package segment

import (
	"fmt"
	"time"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/vsm"
)

// compactLoop is the background compactor: a single goroutine woken by
// seals (kickCompactor) and a periodic tick, merging until no run
// qualifies. Being the only goroutine that restructures the segment
// stack keeps the install step simple.
func (st *Store) compactLoop() {
	defer st.wg.Done()
	tick := time.NewTicker(st.cfg.CompactInterval)
	defer tick.Stop()
	for {
		select {
		case <-st.closeCh:
			return
		case <-st.compactCh:
		case <-tick.C:
		}
		for {
			merged, err := st.compactOnce(st.cfg.CompactFanout)
			if err != nil {
				if st.cfg.Logf != nil {
					st.cfg.Logf("segment: background compaction: %v", err)
				}
				break
			}
			if !merged {
				break
			}
		}
	}
}

// kickCompactor nudges the background compactor without blocking.
func (st *Store) kickCompactor() {
	select {
	case st.compactCh <- struct{}{}:
	default:
	}
}

// Compact synchronously merges every sealed segment (after flushing the
// memtable) into a single segment — a full compaction, used by tests,
// benchmarks, and operators who want a maximally-packed store.
func (st *Store) Compact() error {
	if err := st.Flush(); err != nil {
		return err
	}
	st.compactMu.Lock()
	defer st.compactMu.Unlock()
	for {
		st.mu.RLock()
		n := len(st.segs)
		st.mu.RUnlock()
		if n <= 1 {
			return nil
		}
		if _, err := st.compactRun(0, n); err != nil {
			return err
		}
	}
}

// compactOnce finds one qualifying run — a contiguous stretch of ≥
// fanout same-level segments, or any fully-tombstoned segment — and
// compacts it. Returns whether anything was done.
func (st *Store) compactOnce(fanout int) (bool, error) {
	st.compactMu.Lock()
	defer st.compactMu.Unlock()
	st.mu.Lock()
	// Fully-dead segments are dropped outright; no merge needed.
	for i, sg := range st.segs {
		if sg.live == 0 {
			st.segs = append(st.segs[:i:i], st.segs[i+1:]...)
			sg.idx.DropCache()
			st.mu.Unlock()
			return true, nil
		}
	}
	start, end := findRun(st.segs, fanout)
	st.mu.Unlock()
	if start < 0 {
		return false, nil
	}
	_, err := st.compactRun(start, end)
	return err == nil, err
}

// findRun locates the first maximal run of same-level segments of
// length ≥ fanout. Returns start = -1 when none qualifies.
func findRun(segs []*seg, fanout int) (int, int) {
	i := 0
	for i < len(segs) {
		j := i + 1
		for j < len(segs) && segs[j].level == segs[i].level {
			j++
		}
		if j-i >= fanout {
			return i, j
		}
		i = j
	}
	return -1, -1
}

// compactRun merges segments [start, end) of the current stack into one
// segment at level max(levels)+1. The merge itself — the expensive part
// — runs without the store lock against a tombstone snapshot; the
// install step revalidates under the write lock and re-applies any
// deletes that landed mid-merge.
func (st *Store) compactRun(start, end int) (*seg, error) {
	began := time.Now()
	st.mu.RLock()
	if start < 0 || end > len(st.segs) || end-start < 2 {
		st.mu.RUnlock()
		return nil, fmt.Errorf("segment: compact run [%d,%d) out of range", start, end)
	}
	parts := make([]*seg, end-start)
	copy(parts, st.segs[start:end])
	deadSnap := make([][]bool, len(parts))
	level := 0
	for i, sg := range parts {
		snap := make([]bool, len(sg.dead))
		copy(snap, sg.dead)
		deadSnap[i] = snap
		if sg.level > level {
			level = sg.level
		}
	}
	st.mu.RUnlock()

	// Merge postings outside the lock: searches keep running against
	// the old stack the whole time.
	idxs := make([]*index.Index, len(parts))
	keeps := make([]func(corpus.DocID) bool, len(parts))
	for i, sg := range parts {
		idxs[i] = sg.idx
		snap := deadSnap[i]
		keeps[i] = func(d corpus.DocID) bool { return !snap[d] }
	}
	merged, remap, err := index.Merge(idxs, keeps)
	if err != nil {
		return nil, err
	}
	ids := make([]corpus.DocID, 0, merged.NumDocs())
	docs := make([]corpus.Document, 0, merged.NumDocs())
	for i, sg := range parts {
		for d, nd := range remap[i] {
			if nd != index.DroppedDoc {
				ids = append(ids, sg.ids[d])
				docs = append(docs, sg.docs[d])
			}
		}
	}
	norms := vsm.DocNorms(merged)
	eng, err := vsm.NewEngineOver(&liveSource{st: st, local: merged, norms: norms}, st.an, st.cfg.Scoring)
	if err != nil {
		return nil, err
	}
	eng.SetExecMode(st.cfg.ExecMode)
	out := &seg{
		level: level + 1,
		ids:   ids,
		docs:  docs,
		idx:   merged,
		eng:   eng,
		dead:  make([]bool, merged.NumDocs()),
		live:  merged.NumDocs(),
	}
	// The merged segment takes the retired parts' place in the cache:
	// heap-resident blocks still pay the decode on every traversal, so
	// the cache earns its keep regardless of where the payload lives.
	merged.AttachCache(st.cache)

	st.mu.Lock()
	err = func() error {
		// Only this goroutine restructures the stack (single compactor;
		// Compact serializes with it through the same lock ordering), and
		// seals only append, so the run is still at [start, end). Verify
		// anyway — bail out rather than corrupt the stack.
		if end > len(st.segs) {
			return fmt.Errorf("segment: stack changed during compaction")
		}
		for i, sg := range parts {
			if st.segs[start+i] != sg {
				return fmt.Errorf("segment: stack changed during compaction")
			}
		}
		// Deletes that landed while merging: the doc survived into the
		// merged segment but is now dead. Stats were already adjusted by
		// Delete; only the tombstone bit must carry over.
		for i, sg := range parts {
			for d := range sg.dead {
				if sg.dead[d] && !deadSnap[i][d] {
					if nd := remap[i][d]; nd != index.DroppedDoc {
						out.dead[nd] = true
						out.live--
					}
				}
			}
		}
		stack := make([]*seg, 0, len(st.segs)-(end-start)+1)
		stack = append(stack, st.segs[:start]...)
		stack = append(stack, out)
		stack = append(stack, st.segs[end:]...)
		st.segs = stack
		// Purge the retired parts' block-cache entries. Do NOT unmap them:
		// a Save snapshot may still be serializing these indexes without
		// the store lock — the mapping finalizer reclaims them once no
		// reference remains.
		for _, sg := range parts {
			sg.idx.DropCache()
		}
		return nil
	}()
	st.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// Populate-on-compact: the retired parts' entries just freed their
	// slots, and the merge already paid to read every surviving posting —
	// refill the free capacity with the merged segment's blocks so the
	// first queries after a compaction hit a warm cache instead of
	// re-decoding. Outside the lock: warming is pure cache population and
	// searches may proceed against the new stack meanwhile.
	merged.WarmCache()
	st.compactRuns.Add(1)
	st.compactNanos.Add(time.Since(began).Nanoseconds())
	return out, nil
}
