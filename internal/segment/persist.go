package segment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// On-disk layout of a saved store:
//
//	MANIFEST.json             — segment list, global-ID maps, tombstones
//	seg-000001-00000.tpix     — one TPIX-codec index per sealed segment
//	seg-000001-00000.docs.json — the segment's raw documents
//
// The memtable is sealed into a segment by Save, so a saved store is
// always fully on disk. Loading reads the TPIX files back — postings
// and dictionaries round-trip, so no document is ever re-analyzed —
// and replays each segment's dictionary into the shared vocabulary,
// which is sound because the shared dictionary is append-only: every
// segment's dictionary is a prefix of every later segment's.
//
// Crash safety: every Save writes under a fresh generation number (the
// first filename component), never touching the previous generation's
// files, and renames the new manifest into place before deleting
// anything. A crash at any point leaves the prior manifest and its
// complete file set intact; orphans from an interrupted save are
// cleaned up by the next successful one.

const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 1
)

type manifest struct {
	Version  int           `json:"version"`
	Gen      int64         `json:"gen"`
	NextID   corpus.DocID  `json:"next_id"`
	Scoring  int           `json:"scoring"`
	Segments []manifestSeg `json:"segments"`
}

type manifestSeg struct {
	File  string         `json:"file"`
	Docs  string         `json:"docs"`
	Level int            `json:"level"`
	IDs   []corpus.DocID `json:"ids"`
	Dead  []int          `json:"dead,omitempty"` // local IDs tombstoned
}

// Save writes a point-in-time snapshot of the store to dir, creating
// it if needed: the memtable is sealed and the segment stack plus
// tombstones captured under the write lock, then all file writing —
// the expensive, fsync-heavy part — happens with no store lock held,
// so searches and mutations proceed while the snapshot lands on disk.
// Mutations after the snapshot simply belong to the next save.
//
// Segment files go under a fresh generation prefix and the manifest is
// renamed into place before the previous generation is deleted, so a
// crash at any point leaves a loadable directory.
//
// Save also works on a closed store: the graceful-shutdown order is
// Close first (reject further mutations, stop the compactor), then
// Save, so nothing acknowledged to a client can miss the snapshot.
func (st *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("segment: save: %w", err)
	}
	st.saveMu.Lock()
	defer st.saveMu.Unlock()

	st.mu.Lock()
	if err := st.sealLocked(); err != nil {
		st.mu.Unlock()
		return err
	}
	gen := st.gen + 1
	segs := make([]*seg, len(st.segs))
	copy(segs, st.segs)
	deadSnap := make([][]int, len(segs))
	for i, sg := range segs {
		for d, dead := range sg.dead {
			if dead {
				deadSnap[i] = append(deadSnap[i], d)
			}
		}
	}
	m := manifest{Version: manifestVersion, Gen: gen, NextID: st.nextID, Scoring: int(st.cfg.Scoring)}
	st.mu.Unlock()

	// From here on only immutable segment state (postings, docs, ids,
	// cloned dictionaries) and the snapshot copies are touched.
	for i, sg := range segs {
		ms := manifestSeg{
			File:  fmt.Sprintf("seg-%06d-%05d.tpix", gen, i),
			Docs:  fmt.Sprintf("seg-%06d-%05d.docs.json", gen, i),
			Level: sg.level,
			IDs:   sg.ids,
			Dead:  deadSnap[i],
		}
		if err := writeSegFiles(dir, ms, sg); err != nil {
			return err
		}
		m.Segments = append(m.Segments, ms)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("segment: save manifest: %w", err)
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(m); err != nil {
		f.Close()
		return fmt.Errorf("segment: save manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("segment: save manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("segment: save manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("segment: save manifest: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("segment: save manifest: %w", err)
	}
	st.mu.Lock()
	st.gen = gen
	st.mu.Unlock()
	// Only now is the old generation garbage; removal failure leaves
	// harmless orphans, not a broken store.
	return removeStaleSegFiles(dir, m)
}

func writeSegFiles(dir string, ms manifestSeg, sg *seg) error {
	write := func(name string, fill func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("segment: save %s: %w", name, err)
		}
		if err := fill(f); err != nil {
			f.Close()
			return fmt.Errorf("segment: save %s: %w", name, err)
		}
		// The manifest rename must never become durable before the data
		// it references.
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("segment: save %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("segment: save %s: %w", name, err)
		}
		return nil
	}
	if err := write(ms.File, func(f *os.File) error {
		_, err := sg.idx.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	return write(ms.Docs, func(f *os.File) error {
		return json.NewEncoder(f).Encode(sg.docs)
	})
}

// syncDir makes a completed rename in dir durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// removeStaleSegFiles deletes seg-* files not referenced by the
// just-renamed manifest: the previous generation, plus orphans from
// any interrupted save.
func removeStaleSegFiles(dir string, m manifest) error {
	wanted := make(map[string]bool, 2*len(m.Segments))
	for _, ms := range m.Segments {
		wanted[ms.File] = true
		wanted[ms.Docs] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("segment: save: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "seg-") && !wanted[name] {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("segment: save: %w", err)
			}
		}
	}
	return nil
}

// Load reopens a store saved in dir: segments are read back through the
// TPIX codec (no re-analysis), the shared dictionary is replayed from
// the segment dictionaries, and live statistics are rebuilt by a single
// postings scan. The background compactor starts once loading finishes.
// The saved scoring function overrides cfg.Scoring.
func Load(dir string, cfg Config) (*Store, error) {
	mf, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("segment: load: %w", err)
	}
	var m manifest
	err = json.NewDecoder(mf).Decode(&m)
	mf.Close()
	if err != nil {
		return nil, fmt.Errorf("segment: load manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("segment: load: unsupported manifest version %d", m.Version)
	}
	cfg.Scoring = vsm.Scoring(m.Scoring)
	st, err := newStore(cfg)
	if err != nil {
		return nil, err
	}
	for _, ms := range m.Segments {
		sg, err := st.loadSeg(dir, ms)
		if err != nil {
			return nil, err
		}
		st.segs = append(st.segs, sg)
	}
	st.nextID = m.NextID
	st.gen = m.Gen
	st.rebuildStatsLocked()
	// Attach the block cache only now: norm computation and the stats
	// rebuild above traverse every list once, and letting those scans
	// through the cache would just churn it before the first query.
	for _, sg := range st.segs {
		sg.idx.AttachCache(st.cache)
	}
	st.start()
	return st, nil
}

func (st *Store) loadSeg(dir string, ms manifestSeg) (*seg, error) {
	var idx *index.Index
	var err error
	if st.cfg.Mapped {
		// Disk-resident open: postings payloads stay views into the
		// mapped file; only metadata is decoded onto the heap.
		idx, err = index.OpenMapped(filepath.Join(dir, ms.File))
		if err != nil {
			return nil, fmt.Errorf("segment: load %s: %w", ms.File, err)
		}
	} else {
		f, oerr := os.Open(filepath.Join(dir, ms.File))
		if oerr != nil {
			return nil, fmt.Errorf("segment: load %s: %w", ms.File, oerr)
		}
		idx, err = index.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("segment: load %s: %w", ms.File, err)
		}
	}
	// Replay this segment's dictionary into the shared vocabulary. The
	// append-only invariant means term t here must intern at ID t; a
	// mismatch means the files are not one store's segments.
	for t := 0; t < idx.NumTerms(); t++ {
		term := idx.Vocab().Term(textproc.TermID(t))
		if got := st.vocab.Add(term); got != textproc.TermID(t) {
			return nil, fmt.Errorf("segment: load %s: dictionary mismatch at term %d (%q)", ms.File, t, term)
		}
	}
	df, err := os.Open(filepath.Join(dir, ms.Docs))
	if err != nil {
		return nil, fmt.Errorf("segment: load %s: %w", ms.Docs, err)
	}
	var docs []corpus.Document
	err = json.NewDecoder(df).Decode(&docs)
	df.Close()
	if err != nil {
		return nil, fmt.Errorf("segment: load %s: %w", ms.Docs, err)
	}
	if len(docs) != idx.NumDocs() || len(ms.IDs) != idx.NumDocs() {
		return nil, fmt.Errorf("segment: load %s: %d docs, %d ids, index has %d",
			ms.File, len(docs), len(ms.IDs), idx.NumDocs())
	}
	dead := make([]bool, idx.NumDocs())
	live := idx.NumDocs()
	for _, d := range ms.Dead {
		if d < 0 || d >= len(dead) {
			return nil, fmt.Errorf("segment: load %s: tombstone %d out of range", ms.File, d)
		}
		if !dead[d] {
			dead[d] = true
			live--
		}
	}
	norms := vsm.DocNorms(idx)
	eng, err := vsm.NewEngineOver(&liveSource{st: st, local: idx, norms: norms}, st.an, st.cfg.Scoring)
	if err != nil {
		return nil, err
	}
	eng.SetExecMode(st.cfg.ExecMode)
	return &seg{level: ms.Level, ids: ms.IDs, docs: docs, idx: idx, eng: eng, dead: dead, live: live}, nil
}

// rebuildStatsLocked recomputes liveDocs, liveLen, and per-term df from
// the loaded segments with one postings scan — no text analysis.
func (st *Store) rebuildStatsLocked() {
	st.growDF()
	for _, sg := range st.segs {
		st.liveDocs += sg.live
		for d := 0; d < sg.idx.NumDocs(); d++ {
			if !sg.dead[d] {
				st.liveLen += sg.idx.DocLen(corpus.DocID(d))
			}
		}
		for t := 0; t < sg.idx.NumTerms(); t++ {
			for it := sg.idx.Iter(textproc.TermID(t)); it.Valid(); it.Next() {
				if !sg.dead[it.Doc()] {
					st.df[t]++
				}
			}
		}
	}
}
