package segment

import (
	"time"

	"toppriv/internal/telemetry"
	"toppriv/internal/vsm"
)

// storeMetrics holds the telemetry handles an instrumented store
// updates. Query-path children are resolved once here; the gauges are
// scrape-time functions over the store's own snapshots, so the store
// never pushes shape updates.
//
// The store publishes into the same metric families as vsm.Engine
// (toppriv_query_seconds and friends) under mode="store", so
// dashboards are backend-agnostic; its shard engines are deliberately
// NOT instrumented — one store query fans out to every shard, and
// per-shard observations would both double-count the work totals and
// pollute the latency distribution with partial times.
type storeMetrics struct {
	ring    *telemetry.TraceRing
	lat     *telemetry.Histogram
	queries *telemetry.Counter

	docsScored    *telemetry.Counter
	docsPruned    *telemetry.Counter
	docsFiltered  *telemetry.Counter
	postings      *telemetry.Counter
	blockSkips    *telemetry.Counter
	seekProbes    *telemetry.Counter
	blocksDecoded *telemetry.Counter
}

// EnableMetrics wires the store to a telemetry registry and an
// optional trace ring. It registers the store-level query latency
// histogram and work-counter aggregates, gauges over the store's
// shape (segments, memtable, tombstones, postings footprint), and the
// compaction counters. Call once, before serving: the handle is read
// without synchronization on the query path.
func (st *Store) EnableMetrics(reg *telemetry.Registry, ring *telemetry.TraceRing) {
	if reg == nil {
		return
	}
	scorer := st.cfg.Scoring.String()
	m := &storeMetrics{ring: ring}
	m.lat = reg.HistogramVec(vsm.MetricQuerySeconds,
		"Query latency by scorer and effective execution mode.",
		telemetry.DefaultLatencyBuckets, "scorer", "mode").With(scorer, "store")
	m.queries = reg.CounterVec(vsm.MetricQueriesTotal,
		"Queries executed by scorer and effective execution mode.",
		"scorer", "mode").With(scorer, "store")
	m.docsScored = reg.Counter("toppriv_docs_scored_total",
		"Documents fully scored across all queries.")
	m.docsPruned = reg.Counter("toppriv_docs_pruned_total",
		"Candidate documents abandoned on a bound check before full scoring.")
	m.docsFiltered = reg.Counter("toppriv_docs_filtered_total",
		"Documents rejected by the keep predicate (tombstones) before scoring.")
	m.postings = reg.Counter("toppriv_postings_total",
		"Postings visited by exhaustive traversals.")
	m.blockSkips = reg.Counter("toppriv_block_skips_total",
		"Pivots discarded by block-max WAND on the per-block bound alone.")
	m.seekProbes = reg.Counter("toppriv_seek_probes_total",
		"Document comparisons made by iterator seeks.")
	m.blocksDecoded = reg.Counter("toppriv_blocks_decoded_total",
		"Compressed postings blocks decoded.")

	reg.GaugeFunc("toppriv_segments",
		"Sealed segments in the store.",
		func() float64 { return float64(st.Stats().Segments) })
	reg.GaugeFunc("toppriv_memtable_docs",
		"Documents buffered in the unsealed memtable.",
		func() float64 { return float64(st.Stats().MemtableDocs) })
	reg.GaugeFunc("toppriv_live_docs",
		"Live (non-tombstoned) documents across all shards.",
		func() float64 { return float64(st.Stats().LiveDocs) })
	reg.GaugeFunc("toppriv_tombstones",
		"Tombstoned documents awaiting compaction.",
		func() float64 { return float64(st.Stats().Tombstones) })
	reg.GaugeFunc("toppriv_postings_bytes",
		"Compressed postings footprint in bytes (memtable lists at in-memory cost).",
		func() float64 { return float64(st.ComputeStats().PostingsBytes) })
	reg.GaugeFunc("toppriv_postings_bytes_per_doc",
		"Postings bytes per live document.",
		func() float64 { return st.ComputeStats().BytesPerDoc })
	reg.CounterFunc("toppriv_compactions_total",
		"Completed compaction runs (background and explicit).",
		func() float64 { return float64(st.compactRuns.Load()) })
	reg.CounterFunc("toppriv_compaction_seconds_total",
		"Total wall time spent in completed compaction runs.",
		func() float64 { return float64(st.compactNanos.Load()) / 1e9 })
	reg.GaugeFunc("toppriv_resident_bytes",
		"Heap-resident postings footprint: PostingsBytes minus mapped payloads plus the pinned block cache.",
		func() float64 { return float64(st.ComputeStats().ResidentBytes) })
	reg.CounterFunc("toppriv_bloom_skips_total",
		"Shard-request pairs pruned by per-segment term bloom filters.",
		func() float64 { return float64(st.bloomSkips.Load()) })
	if c := st.cache; c != nil {
		reg.CounterFunc("toppriv_blockcache_hits_total",
			"Decoded-block cache hits.",
			func() float64 { return float64(c.Stats().Hits) })
		reg.CounterFunc("toppriv_blockcache_misses_total",
			"Decoded-block cache misses.",
			func() float64 { return float64(c.Stats().Misses) })
		reg.CounterFunc("toppriv_blockcache_evictions_total",
			"Decoded-block cache CLOCK evictions.",
			func() float64 { return float64(c.Stats().Evictions) })
		reg.GaugeFunc("toppriv_blockcache_bytes",
			"Pinned allocation of the decoded-block cache.",
			func() float64 { return float64(c.Stats().Bytes) })
	}
	st.metrics = m
}

// batchTimer times the store-level phases of one SearchBatch: resolve
// (query analysis), traverse (the shard fan-out, which subsumes each
// shard's fetch and traversal), and merge (per-member top-k merging).
type batchTimer struct {
	enabled                  bool
	began                    time.Time
	last                     time.Time
	resolve, traverse, merge int64
}

func (bt *batchTimer) start() {
	if bt.enabled {
		bt.began = time.Now()
		bt.last = bt.began
	}
}

func (bt *batchTimer) mark(d *int64) {
	if !bt.enabled {
		return
	}
	now := time.Now()
	*d += now.Sub(bt.last).Nanoseconds()
	bt.last = now
}

// finishBatch closes out one instrumented store batch: it aggregates
// the members' work counters into one store-level trace, observes the
// latency histogram once, records the trace in the ring, and copies it
// to every member that asked for an inline trace. Shard-level phase
// attribution is intentionally absent — the shards run concurrently,
// so their phases do not sum to anything meaningful at this level.
func (st *Store) finishBatch(bt *batchTimer, reqs []vsm.Request, resps []vsm.Response) {
	if !bt.enabled {
		return
	}
	t := telemetry.PhaseTrace{
		Scorer:     st.cfg.Scoring.String(),
		Mode:       "store",
		Batch:      len(reqs),
		ResolveNS:  bt.resolve,
		TraverseNS: bt.traverse,
		MergeNS:    bt.merge,
		TotalNS:    time.Since(bt.began).Nanoseconds(),
	}
	var agg vsm.ExecStats
	for i := range resps {
		t.Terms += len(reqs[i].Terms)
		agg.Add(resps[i].Stats)
	}
	if len(reqs) == 1 {
		t.K = reqs[0].K
	}
	t.DocsScored = agg.DocsScored
	t.DocsPruned = agg.DocsPruned
	t.Postings = agg.Postings
	t.BlockSkips = agg.BlockSkips
	t.SeekProbes = agg.SeekProbes
	t.BlocksDecoded = agg.BlocksDecoded
	if m := st.metrics; m != nil {
		m.lat.ObserveSeconds(t.TotalNS)
		m.queries.Add(uint64(len(reqs)))
		m.docsScored.Add(uint64(agg.DocsScored))
		m.docsPruned.Add(uint64(agg.DocsPruned))
		m.docsFiltered.Add(uint64(agg.DocsFiltered))
		m.postings.Add(uint64(agg.Postings))
		m.blockSkips.Add(uint64(agg.BlockSkips))
		m.seekProbes.Add(uint64(agg.SeekProbes))
		m.blocksDecoded.Add(uint64(agg.BlocksDecoded))
		if m.ring != nil {
			t.Seq = m.ring.Record(t)
		}
	}
	for i := range resps {
		if resps[i].Trace != nil {
			*resps[i].Trace = t
		}
	}
}
