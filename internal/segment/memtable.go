package segment

import (
	"fmt"
	"math"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// memtable is the mutable head of the store: an incremental in-memory
// inverted index over the most recently added documents. It keeps the
// analyzed bags so sealing can build a real index.Index without
// re-analyzing, and maintains per-document lnc norms incrementally so
// its engine never needs a construction-time scan. All mutation happens
// under the store's write lock; reads under the read lock.
type memtable struct {
	st     *Store
	ids    []corpus.DocID
	docs   []corpus.Document
	bags   [][]textproc.TermID
	docLen []int
	norm   []float64
	dead   []bool
	live   int
	post   map[textproc.TermID][]index.Posting
	// Incremental per-term max-impact bounds for top-k pruning.
	// They only grow as documents arrive (never shrink on tombstone),
	// which keeps them valid upper bounds; sealing rebuilds the shard
	// through index.Build, which recomputes them exactly and adds the
	// per-block bounds a growing list cannot maintain (block-max
	// execution over the memtable treats each list as one block).
	maxTF  map[textproc.TermID]int32
	maxCos map[textproc.TermID]float64
	eng    *vsm.Engine
}

func newMemtable(st *Store) (*memtable, error) {
	mt := &memtable{
		st:     st,
		post:   make(map[textproc.TermID][]index.Posting),
		maxTF:  make(map[textproc.TermID]int32),
		maxCos: make(map[textproc.TermID]float64),
	}
	eng, err := vsm.NewEngineOver(&liveSource{st: st, local: mt}, st.an, st.cfg.Scoring)
	if err != nil {
		return nil, fmt.Errorf("segment: memtable engine: %w", err)
	}
	eng.SetExecMode(st.cfg.ExecMode)
	mt.eng = eng
	return mt, nil
}

// add analyzes one document into the shared vocabulary and indexes it
// at the next local ID. Returns the analyzed bag for the store's
// statistics bookkeeping.
func (mt *memtable) add(doc corpus.Document, gid corpus.DocID) []textproc.TermID {
	bag := corpus.AnalyzeInto(doc, mt.st.an, mt.st.vocab)
	local := corpus.DocID(len(mt.docs))
	doc.ID = gid
	mt.ids = append(mt.ids, gid)
	mt.docs = append(mt.docs, doc)
	mt.bags = append(mt.bags, bag)
	mt.docLen = append(mt.docLen, len(bag))
	mt.dead = append(mt.dead, false)
	mt.live++

	counts := make(map[textproc.TermID]int32, len(bag))
	for _, id := range bag {
		counts[id]++
	}
	normSq := 0.0
	for id, tf := range counts {
		// Appending per document keeps each list ascending by local ID.
		mt.post[id] = append(mt.post[id], index.Posting{Doc: local, TF: tf})
		w := 1 + math.Log(float64(tf))
		normSq += w * w
	}
	norm := math.Sqrt(normSq)
	mt.norm = append(mt.norm, norm)
	for id, tf := range counts {
		if tf > mt.maxTF[id] {
			mt.maxTF[id] = tf
		}
		if c := (1 + math.Log(float64(tf))) / norm; c > mt.maxCos[id] {
			mt.maxCos[id] = c
		}
	}
	return bag
}

// localSource implementation.

func (mt *memtable) NumTerms() int { return mt.st.vocab.Size() }

// IterInto hands out a plain slice iterator over the term's growing
// list — the memtable keeps its postings uncompressed (they mutate in
// place); compression happens on seal, when index.Build lays the
// frozen lists out block-compressed.
func (mt *memtable) IterInto(id textproc.TermID, it *index.Iterator) {
	it.ResetList(mt.post[id], nil)
}

func (mt *memtable) DocLen(d corpus.DocID) int {
	if d < 0 || int(d) >= len(mt.docLen) {
		return 0
	}
	return mt.docLen[d]
}

// DocNorm implements localNorms.
func (mt *memtable) DocNorm(d corpus.DocID) float64 {
	if d < 0 || int(d) >= len(mt.norm) {
		return 0
	}
	return mt.norm[d]
}

// Max-impact bounds (localSource). Unknown terms report zero, which
// makes their query terms contribute nothing to pruning thresholds.

func (mt *memtable) MaxTF(id textproc.TermID) int32          { return mt.maxTF[id] }
func (mt *memtable) MaxCosImpact(id textproc.TermID) float64 { return mt.maxCos[id] }
func (mt *memtable) MaxBM25Impact(id textproc.TermID) float64 {
	if tf := mt.maxTF[id]; tf > 0 {
		return index.BM25TFBound(tf)
	}
	return 0
}

// locate binary-searches for a global ID (ids are ascending).
func (mt *memtable) locate(gid corpus.DocID) (corpus.DocID, bool) {
	return locateID(mt.ids, gid)
}

// seal freezes the memtable into a level-0 segment, building a real
// index over the buffered bags (no re-analysis). Returns nil when
// empty. Caller holds the store's write lock.
func (mt *memtable) seal() (*seg, error) {
	if len(mt.docs) == 0 {
		return nil, nil
	}
	// Seal against a clone of the dictionary: the sealed index must be
	// readable by the background compactor without locks, while the
	// shared dictionary keeps growing under the store's write lock.
	c := &corpus.Corpus{Docs: mt.docs, Vocab: mt.st.vocab.Clone(), Bags: mt.bags}
	idx, err := index.Build(c)
	if err != nil {
		return nil, fmt.Errorf("segment: seal: %w", err)
	}
	norms := vsm.DocNorms(idx)
	eng, err := vsm.NewEngineOver(&liveSource{st: mt.st, local: idx, norms: norms}, mt.st.an, mt.st.cfg.Scoring)
	if err != nil {
		return nil, fmt.Errorf("segment: seal engine: %w", err)
	}
	eng.SetExecMode(mt.st.cfg.ExecMode)
	return &seg{
		level: 0,
		ids:   mt.ids,
		docs:  mt.docs,
		idx:   idx,
		eng:   eng,
		dead:  mt.dead,
		live:  mt.live,
	}, nil
}
