package segment

import (
	"fmt"
	"math"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// memtable is the mutable head of the store: an incremental in-memory
// inverted index over the most recently added documents. It keeps the
// analyzed bags so sealing can build a real index.Index without
// re-analyzing, and maintains per-document lnc norms incrementally so
// its engine never needs a construction-time scan. All mutation happens
// under the store's write lock; reads under the read lock.
type memtable struct {
	st     *Store
	ids    []corpus.DocID
	docs   []corpus.Document
	bags   [][]textproc.TermID
	docLen []int
	norm   []float64
	dead   []bool
	live   int
	post   map[textproc.TermID][]index.Posting
	eng    *vsm.Engine
}

func newMemtable(st *Store) (*memtable, error) {
	mt := &memtable{st: st, post: make(map[textproc.TermID][]index.Posting)}
	eng, err := vsm.NewEngineOver(&liveSource{st: st, local: mt}, st.an, st.cfg.Scoring)
	if err != nil {
		return nil, fmt.Errorf("segment: memtable engine: %w", err)
	}
	mt.eng = eng
	return mt, nil
}

// add analyzes one document into the shared vocabulary and indexes it
// at the next local ID. Returns the analyzed bag for the store's
// statistics bookkeeping.
func (mt *memtable) add(doc corpus.Document, gid corpus.DocID) []textproc.TermID {
	bag := corpus.AnalyzeInto(doc, mt.st.an, mt.st.vocab)
	local := corpus.DocID(len(mt.docs))
	doc.ID = gid
	mt.ids = append(mt.ids, gid)
	mt.docs = append(mt.docs, doc)
	mt.bags = append(mt.bags, bag)
	mt.docLen = append(mt.docLen, len(bag))
	mt.dead = append(mt.dead, false)
	mt.live++

	counts := make(map[textproc.TermID]int32, len(bag))
	for _, id := range bag {
		counts[id]++
	}
	normSq := 0.0
	for id, tf := range counts {
		// Appending per document keeps each list ascending by local ID.
		mt.post[id] = append(mt.post[id], index.Posting{Doc: local, TF: tf})
		w := 1 + math.Log(float64(tf))
		normSq += w * w
	}
	mt.norm = append(mt.norm, math.Sqrt(normSq))
	return bag
}

// localSource implementation.

func (mt *memtable) NumTerms() int { return mt.st.vocab.Size() }

func (mt *memtable) Postings(id textproc.TermID) index.PostingList {
	return mt.post[id]
}

func (mt *memtable) DocLen(d corpus.DocID) int {
	if d < 0 || int(d) >= len(mt.docLen) {
		return 0
	}
	return mt.docLen[d]
}

// DocNorm implements localNorms.
func (mt *memtable) DocNorm(d corpus.DocID) float64 {
	if d < 0 || int(d) >= len(mt.norm) {
		return 0
	}
	return mt.norm[d]
}

// locate binary-searches for a global ID (ids are ascending).
func (mt *memtable) locate(gid corpus.DocID) (corpus.DocID, bool) {
	return locateID(mt.ids, gid)
}

// seal freezes the memtable into a level-0 segment, building a real
// index over the buffered bags (no re-analysis). Returns nil when
// empty. Caller holds the store's write lock.
func (mt *memtable) seal() (*seg, error) {
	if len(mt.docs) == 0 {
		return nil, nil
	}
	// Seal against a clone of the dictionary: the sealed index must be
	// readable by the background compactor without locks, while the
	// shared dictionary keeps growing under the store's write lock.
	c := &corpus.Corpus{Docs: mt.docs, Vocab: mt.st.vocab.Clone(), Bags: mt.bags}
	idx, err := index.Build(c)
	if err != nil {
		return nil, fmt.Errorf("segment: seal: %w", err)
	}
	norms := vsm.DocNorms(idx)
	eng, err := vsm.NewEngineOver(&liveSource{st: mt.st, local: idx, norms: norms}, mt.st.an, mt.st.cfg.Scoring)
	if err != nil {
		return nil, fmt.Errorf("segment: seal engine: %w", err)
	}
	return &seg{
		level: 0,
		ids:   mt.ids,
		docs:  mt.docs,
		idx:   idx,
		eng:   eng,
		dead:  mt.dead,
		live:  mt.live,
	}, nil
}
