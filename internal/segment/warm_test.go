package segment

import (
	"testing"

	"toppriv/internal/vsm"
)

// TestCompactionWarmsCache asserts the populate-on-compact path: a full
// compaction must leave the block cache pre-filled with the merged
// segment's blocks — without a single query having run — and a
// subsequent query pass must be served entirely from those warm entries
// (zero additional misses) while remaining bit-identical to the
// in-memory oracle.
func TestCompactionWarmsCache(t *testing.T) {
	dir, queries, an := saveMappedFixture(t, vsm.BM25, 17)
	mem, err := Load(dir, Config{Analyzer: an, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	cached, err := Load(dir, Config{Analyzer: an, DisableCompaction: true, Mapped: true, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()

	for _, st := range []*Store{mem, cached} {
		if err := st.Compact(); err != nil {
			t.Fatal(err)
		}
	}

	warm, ok := cached.CacheStats()
	if !ok {
		t.Fatal("cached store lost cache telemetry")
	}
	if warm.Entries == 0 {
		t.Fatalf("compaction did not warm the cache: %+v", warm)
	}
	if warm.Evictions != 0 {
		t.Fatalf("warming evicted live entries: %+v", warm)
	}

	// The fixture is far smaller than the cache, so warming covered every
	// block of the merged segment: the whole query pass must hit.
	for qi, q := range queries {
		terms := an.Analyze(q)
		for _, mode := range []vsm.ExecMode{vsm.ExecExhaustive, vsm.ExecMaxScore, vsm.ExecBlockMax} {
			want := mem.SearchTermsExec(terms, 10, mode, nil)
			got := cached.SearchTermsExec(terms, 10, mode, nil)
			if len(got) != len(want) {
				t.Fatalf("q%d %v: %d results vs %d in-memory", qi, mode, len(got), len(want))
			}
			for i := range got {
				if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
					t.Fatalf("q%d %v rank %d: (%d,%v) vs in-memory (%d,%v)",
						qi, mode, i, got[i].Doc, got[i].Score, want[i].Doc, want[i].Score)
				}
			}
		}
	}
	after, _ := cached.CacheStats()
	if after.Misses != warm.Misses {
		t.Fatalf("post-compaction queries missed a warmed cache: %+v -> %+v", warm, after)
	}
	if after.Hits == warm.Hits {
		t.Fatal("post-compaction queries never touched the cache")
	}
}
