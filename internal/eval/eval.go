// Package eval implements standard IR effectiveness metrics —
// precision@k, recall@k, average precision (MAP) and nDCG — together
// with synthetic relevance judgments (qrels) derived from the
// generative corpus. The paper's §II criticism of query-substitution
// schemes is about "precision-recall characteristics"; this package
// turns that into measured numbers (see experiment.RetrievalQuality
// for the fidelity variant and the tests here for metric correctness).
package eval

import (
	"fmt"
	"math"
	"sort"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// Qrels maps each query to its set of relevant document IDs.
type Qrels map[int]map[corpus.DocID]bool

// SyntheticQrels derives relevance judgments from the generative ground
// truth. Relevance models a TREC-style *specific information need*, not
// mere topical aboutness: document d is relevant to query q when
//
//   - the mass d's true topic mixture places on q's target topics is at
//     least minAffinity (the document is about the subject), and
//   - d contains at least minTermFrac of q's analyzed terms (the
//     document addresses this particular need, not just the area).
//
// The lexical condition is what lets the metrics distinguish schemes
// that submit the genuine query from schemes that substitute a merely
// on-topic one.
func SyntheticQrels(c *corpus.Corpus, queries []corpus.QuerySpec, minAffinity, minTermFrac float64, an *textproc.Analyzer) (Qrels, error) {
	if c == nil {
		return nil, fmt.Errorf("eval: nil corpus")
	}
	if minAffinity <= 0 || minAffinity >= 1 {
		return nil, fmt.Errorf("eval: minAffinity = %v, need (0,1)", minAffinity)
	}
	if minTermFrac < 0 || minTermFrac > 1 {
		return nil, fmt.Errorf("eval: minTermFrac = %v, need [0,1]", minTermFrac)
	}
	if an == nil {
		an = textproc.NewAnalyzer()
	}
	// Per-document term sets for the lexical condition.
	docTerms := make([]map[textproc.TermID]bool, len(c.Bags))
	for d, bag := range c.Bags {
		set := make(map[textproc.TermID]bool, len(bag))
		for _, id := range bag {
			set[id] = true
		}
		docTerms[d] = set
	}
	qrels := make(Qrels, len(queries))
	for _, q := range queries {
		var qids []textproc.TermID
		for _, w := range q.Terms {
			if term, ok := an.AnalyzeTerm(w); ok {
				if id := c.Vocab.ID(term); id != textproc.InvalidTerm {
					qids = append(qids, id)
				}
			}
		}
		rel := make(map[corpus.DocID]bool)
		for d := range c.Docs {
			theta := c.Docs[d].TrueTopics
			if len(theta) == 0 {
				continue
			}
			mass := 0.0
			for _, t := range q.TargetTopics {
				if t >= 0 && t < len(theta) {
					mass += theta[t]
				}
			}
			if mass < minAffinity {
				continue
			}
			if minTermFrac > 0 && len(qids) > 0 {
				hits := 0
				for _, id := range qids {
					if docTerms[d][id] {
						hits++
					}
				}
				if float64(hits) < minTermFrac*float64(len(qids)) {
					continue
				}
			}
			rel[corpus.DocID(d)] = true
		}
		qrels[q.ID] = rel
	}
	return qrels, nil
}

// NumRelevant returns the relevant-set size for a query (0 if unknown).
func (q Qrels) NumRelevant(queryID int) int { return len(q[queryID]) }

// PrecisionAtK is |relevant ∩ top-k| / k. Rankings shorter than k are
// treated as padded with non-relevant results (standard trec_eval
// behaviour).
func PrecisionAtK(ranking []corpus.DocID, relevant map[corpus.DocID]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	hits := 0
	for i, d := range ranking {
		if i >= k {
			break
		}
		if relevant[d] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK is |relevant ∩ top-k| / |relevant|.
func RecallAtK(ranking []corpus.DocID, relevant map[corpus.DocID]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	for i, d := range ranking {
		if i >= k {
			break
		}
		if relevant[d] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// AveragePrecision is the mean of precision@rank over the ranks of the
// relevant documents retrieved, divided by |relevant| (so missing
// relevant documents count as zero).
func AveragePrecision(ranking []corpus.DocID, relevant map[corpus.DocID]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	sum := 0.0
	for i, d := range ranking {
		if relevant[d] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(relevant))
}

// NDCGAtK computes normalized discounted cumulative gain with binary
// relevance: DCG = Σ rel_i / log2(i+2), normalized by the ideal DCG.
func NDCGAtK(ranking []corpus.DocID, relevant map[corpus.DocID]bool, k int) float64 {
	if k <= 0 || len(relevant) == 0 {
		return 0
	}
	dcg := 0.0
	for i, d := range ranking {
		if i >= k {
			break
		}
		if relevant[d] {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := 0.0
	n := len(relevant)
	if n > k {
		n = k
	}
	for i := 0; i < n; i++ {
		ideal += 1 / math.Log2(float64(i)+2)
	}
	if ideal == 0 {
		return 0
	}
	return dcg / ideal
}

// RunMetrics aggregates a retrieval run over a workload.
type RunMetrics struct {
	PrecisionAt10 float64
	RecallAt10    float64
	MAP           float64
	NDCGAt10      float64
	Queries       int
}

// Evaluate averages the metrics over all queries with non-empty
// relevant sets, in deterministic (sorted query ID) order.
// rankings[queryID] is the run's result list.
func Evaluate(rankings map[int][]corpus.DocID, qrels Qrels) RunMetrics {
	var m RunMetrics
	qids := make([]int, 0, len(qrels))
	for qid := range qrels {
		qids = append(qids, qid)
	}
	sort.Ints(qids)
	for _, qid := range qids {
		relevant := qrels[qid]
		if len(relevant) == 0 {
			continue
		}
		ranking := rankings[qid]
		m.PrecisionAt10 += PrecisionAtK(ranking, relevant, 10)
		m.RecallAt10 += RecallAtK(ranking, relevant, 10)
		m.MAP += AveragePrecision(ranking, relevant)
		m.NDCGAt10 += NDCGAtK(ranking, relevant, 10)
		m.Queries++
	}
	if m.Queries > 0 {
		n := float64(m.Queries)
		m.PrecisionAt10 /= n
		m.RecallAt10 /= n
		m.MAP /= n
		m.NDCGAt10 /= n
	}
	return m
}
