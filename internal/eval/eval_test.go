package eval

import (
	"math"
	"testing"

	"toppriv/internal/corpus"
)

func rel(ids ...corpus.DocID) map[corpus.DocID]bool {
	m := make(map[corpus.DocID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestPrecisionAtK(t *testing.T) {
	ranking := []corpus.DocID{1, 2, 3, 4, 5}
	relevant := rel(1, 3, 9)
	almost(t, "P@1", PrecisionAtK(ranking, relevant, 1), 1)
	almost(t, "P@2", PrecisionAtK(ranking, relevant, 2), 0.5)
	almost(t, "P@5", PrecisionAtK(ranking, relevant, 5), 0.4)
	// Short ranking pads with non-relevant.
	almost(t, "P@10", PrecisionAtK(ranking, relevant, 10), 0.2)
	almost(t, "P@0", PrecisionAtK(ranking, relevant, 0), 0)
}

func TestRecallAtK(t *testing.T) {
	ranking := []corpus.DocID{1, 2, 3}
	relevant := rel(1, 3, 9)
	almost(t, "R@1", RecallAtK(ranking, relevant, 1), 1.0/3)
	almost(t, "R@3", RecallAtK(ranking, relevant, 3), 2.0/3)
	almost(t, "R empty", RecallAtK(ranking, nil, 3), 0)
}

func TestAveragePrecision(t *testing.T) {
	// Relevant at ranks 1 and 3 of {1,2,3}; |relevant| = 3.
	ranking := []corpus.DocID{1, 2, 3}
	relevant := rel(1, 3, 9)
	want := (1.0/1 + 2.0/3) / 3
	almost(t, "AP", AveragePrecision(ranking, relevant), want)
	// Perfect ranking.
	almost(t, "AP perfect", AveragePrecision([]corpus.DocID{1, 3, 9}, relevant), 1)
	almost(t, "AP empty", AveragePrecision(ranking, nil), 0)
}

func TestNDCG(t *testing.T) {
	relevant := rel(1, 2)
	// Ideal: both relevant at top.
	almost(t, "nDCG ideal", NDCGAtK([]corpus.DocID{1, 2, 3}, relevant, 3), 1)
	// Relevant at positions 2 and 3.
	dcg := 1/math.Log2(3) + 1/math.Log2(4)
	ideal := 1/math.Log2(2) + 1/math.Log2(3)
	almost(t, "nDCG shifted", NDCGAtK([]corpus.DocID{7, 1, 2}, relevant, 3), dcg/ideal)
	almost(t, "nDCG k0", NDCGAtK([]corpus.DocID{1}, relevant, 0), 0)
}

func TestSyntheticQrels(t *testing.T) {
	spec := corpus.GenSpec{Seed: 71, NumDocs: 150, NumTopics: 6, DocLenMin: 40, DocLenMax: 70}
	c, gt, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := corpus.Workload(gt, corpus.WorkloadSpec{Seed: 72, NumQueries: 20})
	if err != nil {
		t.Fatal(err)
	}
	qrels, err := SyntheticQrels(c, queries, 0.5, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(qrels) != 20 {
		t.Fatalf("qrels for %d queries", len(qrels))
	}
	someRelevant := 0
	for _, q := range queries {
		if qrels.NumRelevant(q.ID) > 0 {
			someRelevant++
		}
		// Every judged-relevant doc must indeed have >= 0.5 affinity.
		for d := range qrels[q.ID] {
			mass := 0.0
			for _, topic := range q.TargetTopics {
				mass += c.Docs[d].TrueTopics[topic]
			}
			if mass < 0.5 {
				t.Fatalf("doc %d judged relevant with affinity %v", d, mass)
			}
		}
	}
	if someRelevant < 10 {
		t.Errorf("only %d/20 queries have any relevant docs", someRelevant)
	}
	if _, err := SyntheticQrels(nil, queries, 0.5, 0.3, nil); err == nil {
		t.Error("nil corpus must error")
	}
	if _, err := SyntheticQrels(c, queries, 2, 0.3, nil); err == nil {
		t.Error("bad affinity must error")
	}
	if _, err := SyntheticQrels(c, queries, 0.5, 2, nil); err == nil {
		t.Error("bad term fraction must error")
	}
}

func TestEvaluateAggregates(t *testing.T) {
	qrels := Qrels{
		0: rel(1, 2),
		1: rel(5),
		2: {}, // no relevant docs: excluded
	}
	rankings := map[int][]corpus.DocID{
		0: {1, 2}, // perfect
		1: {9, 5}, // relevant at rank 2
	}
	m := Evaluate(rankings, qrels)
	if m.Queries != 2 {
		t.Fatalf("aggregated %d queries", m.Queries)
	}
	almost(t, "MAP", m.MAP, (1.0+0.5)/2)
	if m.PrecisionAt10 <= 0 || m.RecallAt10 <= 0 || m.NDCGAt10 <= 0 {
		t.Errorf("zero metrics: %+v", m)
	}
	empty := Evaluate(nil, Qrels{})
	if empty.Queries != 0 {
		t.Error("empty evaluation should have 0 queries")
	}
}
