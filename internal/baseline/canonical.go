package baseline

import (
	"fmt"
	"math/rand"

	"toppriv/internal/belief"
)

// Canonical implements the Murugesan–Clifton plausibly-deniable search
// baseline the paper surveys in §II: a static set of canonical queries
// is built offline, partitioned into groups whose members cover diverse
// topics; at runtime the user query is replaced by the most similar
// canonical query and submitted together with the rest of its group as
// cover.
//
// The original uses LSI + kd-tree nearest neighbours; here the topic
// model plays the semantic space (one canonical query per topic, formed
// from the topic's head words), which preserves the scheme's defining
// behaviours: (a) the genuine query never reaches the server, so
// precision/recall degrade — the drawback the paper highlights — and
// (b) each submission is a fixed-size group of diverse-topic queries.
type Canonical struct {
	eng *belief.Engine
	// GroupSize is the number of queries submitted per user query.
	GroupSize int
	// queries[t] is topic t's canonical query.
	queries [][]string
	// groups partitions topic indices into groups of GroupSize.
	groups [][]int
	// topicGroup[t] is the group containing topic t's canonical query.
	topicGroup []int
}

// NewCanonical builds the static canonical-query set. queryLen is the
// canonical query length in words; seed fixes the group partition.
func NewCanonical(eng *belief.Engine, groupSize, queryLen int, seed int64) (*Canonical, error) {
	if eng == nil {
		return nil, fmt.Errorf("baseline: nil belief engine")
	}
	m := eng.Model()
	if groupSize < 2 || groupSize > m.K {
		return nil, fmt.Errorf("baseline: groupSize = %d, need 2..%d", groupSize, m.K)
	}
	if queryLen < 1 {
		return nil, fmt.Errorf("baseline: queryLen = %d, need >= 1", queryLen)
	}
	c := &Canonical{
		eng:        eng,
		GroupSize:  groupSize,
		queries:    make([][]string, m.K),
		topicGroup: make([]int, m.K),
	}
	for t := 0; t < m.K; t++ {
		tws := m.TopWords(t, queryLen)
		q := make([]string, len(tws))
		for i, tw := range tws {
			q[i] = tw.Term
		}
		c.queries[t] = q
	}
	// Random partition into groups; topics in a group are distinct by
	// construction (each canonical query belongs to one topic).
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(m.K)
	for start := 0; start < len(perm); start += groupSize {
		end := start + groupSize
		if end > len(perm) {
			end = len(perm)
		}
		gi := len(c.groups)
		group := append([]int{}, perm[start:end]...)
		c.groups = append(c.groups, group)
		for _, t := range group {
			c.topicGroup[t] = gi
		}
	}
	return c, nil
}

// CanonicalQuery returns topic t's canonical query.
func (c *Canonical) CanonicalQuery(t int) []string {
	if t < 0 || t >= len(c.queries) {
		return nil
	}
	return c.queries[t]
}

// Substitute maps the user query to its nearest canonical query (by
// posterior topic mass) and returns that query's whole group, shuffled,
// with the index of the substituted query. The genuine terms are NOT
// submitted — the scheme's defining trait and weakness.
func (c *Canonical) Substitute(userTerms []string, rng *rand.Rand) (group [][]string, chosen int, err error) {
	if len(userTerms) == 0 {
		return nil, 0, fmt.Errorf("baseline: empty user query")
	}
	post := c.eng.Posterior(userTerms, rng)
	best := 0
	for t := 1; t < len(post); t++ {
		if post[t] > post[best] {
			best = t
		}
	}
	topics := c.groups[c.topicGroup[best]]
	group = make([][]string, len(topics))
	chosenPos := 0
	perm := rng.Perm(len(topics))
	for to, from := range perm {
		group[to] = c.queries[topics[from]]
		if topics[from] == best {
			chosenPos = to
		}
	}
	return group, chosenPos, nil
}
