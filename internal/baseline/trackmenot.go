package baseline

import (
	"fmt"
	"math/rand"

	"toppriv/internal/belief"
)

// TrackMeNot generates ghost queries the way the TrackMeNot browser
// extension does (paper §II): random term combinations with no topical
// structure. It exists as the contrast case for the adversary's
// coherence attack — its ghosts "often can be ruled out easily because
// their term combinations are not meaningful" — and as an ablation
// anchor for TopPriv's topic-cognizant generation.
type TrackMeNot struct {
	eng *belief.Engine
	// NumGhosts is the fixed number of ghost queries per user query.
	NumGhosts int
	// MinLen and MaxLen bound each ghost's length.
	MinLen, MaxLen int
}

// NewTrackMeNot builds the generator.
func NewTrackMeNot(eng *belief.Engine, numGhosts, minLen, maxLen int) (*TrackMeNot, error) {
	if eng == nil {
		return nil, fmt.Errorf("baseline: nil belief engine")
	}
	if numGhosts < 1 {
		return nil, fmt.Errorf("baseline: numGhosts = %d, need >= 1", numGhosts)
	}
	if minLen < 1 || maxLen < minLen {
		return nil, fmt.Errorf("baseline: bad ghost length bounds [%d, %d]", minLen, maxLen)
	}
	return &TrackMeNot{eng: eng, NumGhosts: numGhosts, MinLen: minLen, MaxLen: maxLen}, nil
}

// Cycle returns the user query mixed among NumGhosts random ghost
// queries, shuffled. The second return value is the user query's index.
func (tmn *TrackMeNot) Cycle(userTerms []string, rng *rand.Rand) ([][]string, int, error) {
	if len(userTerms) == 0 {
		return nil, 0, fmt.Errorf("baseline: empty user query")
	}
	m := tmn.eng.Model()
	queries := [][]string{userTerms}
	for g := 0; g < tmn.NumGhosts; g++ {
		n := tmn.MinLen + rng.Intn(tmn.MaxLen-tmn.MinLen+1)
		ghost := make([]string, 0, n)
		seen := make(map[int]struct{}, n)
		for len(ghost) < n && len(seen) < m.V {
			w := rng.Intn(m.V)
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			ghost = append(ghost, m.Terms[w])
		}
		queries = append(queries, ghost)
	}
	userIdx := 0
	perm := rng.Perm(len(queries))
	shuffled := make([][]string, len(queries))
	for to, from := range perm {
		shuffled[to] = queries[from]
		if from == 0 {
			userIdx = to
		}
	}
	return shuffled, userIdx, nil
}
