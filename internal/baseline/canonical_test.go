package baseline

import (
	"math/rand"
	"testing"
)

func TestNewCanonicalValidation(t *testing.T) {
	f := getFixture(t)
	if _, err := NewCanonical(nil, 3, 8, 1); err == nil {
		t.Error("nil engine must error")
	}
	if _, err := NewCanonical(f.eng, 1, 8, 1); err == nil {
		t.Error("groupSize < 2 must error")
	}
	if _, err := NewCanonical(f.eng, 100, 8, 1); err == nil {
		t.Error("groupSize > K must error")
	}
	if _, err := NewCanonical(f.eng, 3, 0, 1); err == nil {
		t.Error("queryLen < 1 must error")
	}
}

func TestCanonicalQueriesAreTopicHeads(t *testing.T) {
	f := getFixture(t)
	c, err := NewCanonical(f.eng, 4, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := f.eng.Model()
	for topic := 0; topic < m.K; topic++ {
		q := c.CanonicalQuery(topic)
		if len(q) != 6 {
			t.Fatalf("topic %d canonical query has %d words", topic, len(q))
		}
		head := map[string]bool{}
		for _, tw := range m.TopWords(topic, 6) {
			head[tw.Term] = true
		}
		for _, w := range q {
			if !head[w] {
				t.Fatalf("topic %d canonical word %q not in head", topic, w)
			}
		}
	}
	if c.CanonicalQuery(-1) != nil || c.CanonicalQuery(m.K) != nil {
		t.Error("out-of-range topics must return nil")
	}
}

func TestCanonicalSubstituteGroup(t *testing.T) {
	f := getFixture(t)
	c, err := NewCanonical(f.eng, 4, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := f.topicQuery(0, 10)
	group, chosen, err := c.Substitute(q, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(group) < 2 || len(group) > 4 {
		t.Fatalf("group size %d", len(group))
	}
	if chosen < 0 || chosen >= len(group) {
		t.Fatalf("chosen index %d out of range", chosen)
	}
	// The chosen canonical query should be topically close to the user
	// query: it must share at least one term with the query's topic head.
	qSet := map[string]bool{}
	for _, w := range q {
		qSet[w] = true
	}
	shared := 0
	for _, w := range group[chosen] {
		if qSet[w] {
			shared++
		}
	}
	if shared == 0 {
		t.Error("substituted canonical query shares no terms with a head-word query")
	}
	if _, _, err := c.Substitute(nil, rand.New(rand.NewSource(4))); err == nil {
		t.Error("empty query must error")
	}
}

func TestCanonicalGroupsPartitionTopics(t *testing.T) {
	f := getFixture(t)
	c, err := NewCanonical(f.eng, 3, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := f.eng.Model()
	seen := map[int]bool{}
	for _, group := range c.groups {
		for _, topic := range group {
			if seen[topic] {
				t.Fatalf("topic %d in two groups", topic)
			}
			seen[topic] = true
		}
	}
	if len(seen) != m.K {
		t.Errorf("groups cover %d topics, want %d", len(seen), m.K)
	}
}
