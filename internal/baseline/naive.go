package baseline

// NaiveDownload models the paper's §V-D comparison point: shipping the
// whole inverted index to the client so queries never leave the machine.
// It trades a large one-time transfer (and a re-engineered engine: the
// client must score documents itself) against TopPriv's smaller one-time
// LDA-model transfer.
type NaiveDownload struct {
	// IndexBytes is the serialized inverted-index size.
	IndexBytes int64
	// ModelBytes is the LDA model size TopPriv ships instead.
	ModelBytes int64
}

// Saving returns the fractional space saving of shipping the model
// instead of the index: 1 − model/index. The paper reports ~45% at WSJ
// scale, widening as the corpus grows (Figure 6).
func (n NaiveDownload) Saving() float64 {
	if n.IndexBytes == 0 {
		return 0
	}
	return 1 - float64(n.ModelBytes)/float64(n.IndexBytes)
}

// RequiresEngineChange reports whether the approach needs the search
// engine re-architected. Always true for the naive approach (relevance
// scoring moves to the client); recorded here so comparison tables can
// print it alongside the numbers.
func (n NaiveDownload) RequiresEngineChange() bool { return true }
