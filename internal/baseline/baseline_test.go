package baseline

import (
	"math/rand"
	"testing"

	"toppriv/internal/belief"
	"toppriv/internal/corpus"
	"toppriv/internal/lda"
	"toppriv/internal/textproc"
)

type fixture struct {
	eng *belief.Engine
	gt  *corpus.GroundTruth
	an  *textproc.Analyzer
}

var shared *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if shared != nil {
		return shared
	}
	spec := corpus.GenSpec{Seed: 51, NumDocs: 400, NumTopics: 8, DocLenMin: 60, DocLenMax: 100}
	c, gt, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := lda.Train(c, lda.TrainSpec{NumTopics: 8, Iterations: 100, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := lda.NewInferencer(m, lda.InferSpec{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := belief.NewEngine(inf)
	if err != nil {
		t.Fatal(err)
	}
	shared = &fixture{eng: eng, gt: gt, an: textproc.NewAnalyzer()}
	return shared
}

func (f *fixture) topicQuery(topic, n int) []string {
	var out []string
	for _, w := range f.gt.TopicWords[topic] {
		if term, ok := f.an.AnalyzeTerm(w); ok {
			out = append(out, term)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func TestNewPDXValidation(t *testing.T) {
	f := getFixture(t)
	if _, err := NewPDX(nil, 2, 0.05); err == nil {
		t.Error("nil engine must error")
	}
	if _, err := NewPDX(f.eng, 0.5, 0.05); err == nil {
		t.Error("expansion < 1 must error")
	}
	if _, err := NewPDX(f.eng, 2, 0); err == nil {
		t.Error("bad eps1 must error")
	}
}

func TestPDXExpansionFactor(t *testing.T) {
	f := getFixture(t)
	for _, exp := range []float64{2, 4, 8} {
		p, err := NewPDX(f.eng, exp, 0.04)
		if err != nil {
			t.Fatal(err)
		}
		q := f.topicQuery(0, 10)
		qe, err := p.Embellish(q, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		want := int(exp * float64(len(q)))
		// Decoy picking can occasionally fail to find a fresh word;
		// allow a small shortfall but not overshoot.
		if len(qe) > want || len(qe) < want-3 {
			t.Errorf("expansion %v: |qe| = %d, want ≈%d", exp, len(qe), want)
		}
	}
}

func TestPDXPreservesGenuineTerms(t *testing.T) {
	f := getFixture(t)
	p, _ := NewPDX(f.eng, 4, 0.04)
	q := f.topicQuery(1, 8)
	qe, err := p.Embellish(q, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, w := range qe {
		set[w] = true
	}
	for _, w := range q {
		if !set[w] {
			t.Errorf("genuine term %q lost in embellishment", w)
		}
	}
}

func TestPDXReducesExposure(t *testing.T) {
	f := getFixture(t)
	p, _ := NewPDX(f.eng, 8, 0.04)
	reduced := 0
	cases := 0
	for topic := 0; topic < 8; topic++ {
		q := f.topicQuery(topic, 12)
		rng := rand.New(rand.NewSource(int64(10 + topic)))
		soloBoost := f.eng.Boost(q, rng)
		u := belief.Intention(soloBoost, 0.04)
		if len(u) == 0 {
			continue
		}
		cases++
		qe, err := p.Embellish(q, rng)
		if err != nil {
			t.Fatal(err)
		}
		embBoost := f.eng.Boost(qe, rng)
		if belief.Exposure(embBoost, u) < belief.Exposure(soloBoost, u) {
			reduced++
		}
	}
	if cases == 0 {
		t.Fatal("no intentions detected")
	}
	if reduced < cases/2 {
		t.Errorf("PDX reduced exposure in only %d/%d cases", reduced, cases)
	}
}

func TestPDXExpansionOneIsIdentity(t *testing.T) {
	f := getFixture(t)
	p, _ := NewPDX(f.eng, 1, 0.04)
	q := f.topicQuery(2, 6)
	qe, err := p.Embellish(q, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(qe) != len(q) {
		t.Errorf("expansion 1 should add no decoys: %d vs %d", len(qe), len(q))
	}
}

func TestPDXEmptyQuery(t *testing.T) {
	f := getFixture(t)
	p, _ := NewPDX(f.eng, 2, 0.04)
	if _, err := p.Embellish(nil, rand.New(rand.NewSource(4))); err == nil {
		t.Error("empty query must error")
	}
}

func TestPDXDeterministic(t *testing.T) {
	f := getFixture(t)
	p, _ := NewPDX(f.eng, 4, 0.04)
	q := f.topicQuery(3, 8)
	a, _ := p.Embellish(q, rand.New(rand.NewSource(5)))
	b, _ := p.Embellish(q, rand.New(rand.NewSource(5)))
	if len(a) != len(b) {
		t.Fatal("nondeterministic embellishment")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic embellishment")
		}
	}
}

func TestTrackMeNotValidation(t *testing.T) {
	f := getFixture(t)
	if _, err := NewTrackMeNot(nil, 3, 2, 5); err == nil {
		t.Error("nil engine must error")
	}
	if _, err := NewTrackMeNot(f.eng, 0, 2, 5); err == nil {
		t.Error("zero ghosts must error")
	}
	if _, err := NewTrackMeNot(f.eng, 3, 5, 2); err == nil {
		t.Error("inverted bounds must error")
	}
}

func TestTrackMeNotCycle(t *testing.T) {
	f := getFixture(t)
	tmn, err := NewTrackMeNot(f.eng, 4, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	q := f.topicQuery(0, 6)
	cycle, userIdx, err := tmn.Cycle(q, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(cycle) != 5 {
		t.Fatalf("cycle length %d, want 5", len(cycle))
	}
	if userIdx < 0 || userIdx >= len(cycle) {
		t.Fatalf("userIdx %d out of range", userIdx)
	}
	for i, g := range cycle {
		if i == userIdx {
			continue
		}
		if len(g) < 3 || len(g) > 8 {
			t.Errorf("ghost %d length %d outside [3,8]", i, len(g))
		}
	}
	// User query preserved at its index.
	if cycle[userIdx][0] != q[0] {
		t.Error("user query not at userIdx")
	}
	if _, _, err := tmn.Cycle(nil, rand.New(rand.NewSource(7))); err == nil {
		t.Error("empty query must error")
	}
}

func TestNaiveDownload(t *testing.T) {
	n := NaiveDownload{IndexBytes: 1000, ModelBytes: 550}
	if got := n.Saving(); got < 0.44 || got > 0.46 {
		t.Errorf("Saving = %v, want 0.45", got)
	}
	if !n.RequiresEngineChange() {
		t.Error("naive approach requires engine change")
	}
	if (NaiveDownload{}).Saving() != 0 {
		t.Error("zero index size should yield 0 saving")
	}
}
