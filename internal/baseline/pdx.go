// Package baseline implements the comparison schemes of the paper's
// evaluation: PDX (query embellishment, Pang/Ding/Xiao VLDB'10 — the
// baseline of Figures 4 and 5), a TrackMeNot-style random ghost
// generator (§II), and the naive download-the-index cost model (§V-D).
package baseline

import (
	"fmt"
	"math/rand"

	"toppriv/internal/belief"
)

// PDX embellishes a user query with decoy terms pointing to plausible
// alternative topics. Decoys are matched to the genuine terms in
// specificity (corpus-wide word probability within a tolerance band)
// and semantic association (each decoy group is drawn coherently from
// one alternative topic's word distribution), following the description
// in §II/§V-C of the paper. The accompanying encrypted-scoring protocol
// of the original scheme is orthogonal to topical exposure and is not
// modeled.
type PDX struct {
	eng *belief.Engine
	// Expansion is the query expansion factor: |q_e| = Expansion × |q_u|.
	Expansion float64
	// Eps1 is the relevance threshold used to identify the topics the
	// decoys must avoid.
	Eps1 float64
	// Band is the multiplicative specificity tolerance when matching a
	// decoy's corpus probability to a genuine term's. Default 4.
	Band float64

	// wordProb caches Pr(w) = Σ_t Pr(w|t)·Pr(t).
	wordProb []float64
}

// NewPDX builds the embellisher. expansion must be >= 1.
func NewPDX(eng *belief.Engine, expansion, eps1 float64) (*PDX, error) {
	if eng == nil {
		return nil, fmt.Errorf("baseline: nil belief engine")
	}
	if expansion < 1 {
		return nil, fmt.Errorf("baseline: expansion %v, need >= 1", expansion)
	}
	if eps1 <= 0 || eps1 >= 1 {
		return nil, fmt.Errorf("baseline: eps1 = %v, need (0,1)", eps1)
	}
	m := eng.Model()
	wp := make([]float64, m.V)
	for t := 0; t < m.K; t++ {
		pt := m.Prior[t]
		row := m.Phi[t]
		for w := 0; w < m.V; w++ {
			wp[w] += row[w] * pt
		}
	}
	return &PDX{eng: eng, Expansion: expansion, Eps1: eps1, Band: 4, wordProb: wp}, nil
}

// Embellish returns the embellished query q_e: the genuine terms plus
// decoys, shuffled. The result preserves every genuine term (the
// original scheme's encrypted protocol scores only those).
func (p *PDX) Embellish(userTerms []string, rng *rand.Rand) ([]string, error) {
	if len(userTerms) == 0 {
		return nil, fmt.Errorf("baseline: empty user query")
	}
	m := p.eng.Model()
	nDecoys := int(p.Expansion*float64(len(userTerms))+0.5) - len(userTerms)
	if nDecoys <= 0 {
		out := append([]string{}, userTerms...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out, nil
	}

	// Identify the topics to avoid (the user intention at ε1).
	boost := p.eng.Boost(userTerms, rng)
	u := belief.Intention(boost, p.Eps1)
	avoid := make(map[int]bool, len(u))
	for _, t := range u {
		avoid[t] = true
	}
	// Alternative topics: roughly one per unit of expansion, at least one.
	nAlt := int(p.Expansion - 1)
	if nAlt < 1 {
		nAlt = 1
	}
	var alts []int
	for t := 0; t < m.K; t++ {
		if !avoid[t] {
			alts = append(alts, t)
		}
	}
	if len(alts) == 0 {
		// Degenerate: every topic is in U; fall back to all topics.
		for t := 0; t < m.K; t++ {
			alts = append(alts, t)
		}
	}
	rng.Shuffle(len(alts), func(i, j int) { alts[i], alts[j] = alts[j], alts[i] })
	if nAlt > len(alts) {
		nAlt = len(alts)
	}
	alts = alts[:nAlt]

	// Genuine-term specificity targets.
	targets := make([]float64, 0, len(userTerms))
	for _, term := range userTerms {
		if id := m.TermID(term); id >= 0 {
			targets = append(targets, p.wordProb[id])
		}
	}

	out := append([]string{}, userTerms...)
	seen := make(map[string]struct{}, len(out)+nDecoys)
	for _, w := range out {
		seen[w] = struct{}{}
	}
	for i := 0; i < nDecoys; i++ {
		topic := alts[i%len(alts)]
		w := p.pickDecoy(topic, targets, seen, rng)
		if w == "" {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, w)
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// pickDecoy draws from the topic's word distribution, preferring words
// whose corpus probability matches some genuine term's within the band.
func (p *PDX) pickDecoy(topic int, targets []float64, seen map[string]struct{}, rng *rand.Rand) string {
	m := p.eng.Model()
	dist := m.WordDistribution(topic)
	var fallback string
	for attempt := 0; attempt < 80; attempt++ {
		w := sampleIndex(dist, rng)
		term := m.Terms[w]
		if _, dup := seen[term]; dup {
			continue
		}
		if fallback == "" {
			fallback = term
		}
		if len(targets) == 0 {
			return term
		}
		wp := p.wordProb[w]
		target := targets[rng.Intn(len(targets))]
		if wp >= target/p.Band && wp <= target*p.Band {
			return term
		}
	}
	return fallback
}

// sampleIndex draws an index proportional to non-negative weights.
func sampleIndex(weights []float64, rng *rand.Rand) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
