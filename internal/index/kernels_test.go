package index

import (
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
)

// TestDecodeKernelsMatchGenericBits is the kernel ground-truth
// property test: for every frame width 1..32 — the unrolled kernels
// for the byte-rounded widths the encoder emits and the generic
// extractor for everything else — decodeGaps and decodeTFs must be
// bit-identical to packing random residuals with appendPackedBits and
// re-extracting them with the reference bit-loop unpackBits, across
// counts that include single values, partial final bytes/words, and
// full blocks, and across random min-gap/min-tf bases.
func TestDecodeKernelsMatchGenericBits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	counts := []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 127, BlockSize}
	for width := uint(1); width <= 32; width++ {
		for _, n := range counts {
			vals := make([]uint32, n)
			for i := range vals {
				vals[i] = rng.Uint32() & uint32(uint64(1)<<width-1)
			}
			packed := appendPackedBits(nil, vals, width)
			if len(packed) != packedLen(n, width) {
				t.Fatalf("width %d n %d: packed %d bytes, want %d", width, n, len(packed), packedLen(n, width))
			}
			ref := make([]uint32, n)
			unpackBits(packed, n, width, ref)
			for i := range ref {
				if ref[i] != vals[i] {
					t.Fatalf("width %d n %d: reference round-trip broke at %d", width, n, i)
				}
			}

			// Gap side: residuals chained into doc IDs from a random
			// base and min gap, against a scalar reference prefix sum.
			minGap := corpus.DocID(rng.Intn(1000) + 1)
			base := corpus.DocID(rng.Intn(1 << 20))
			got := make([]corpus.DocID, n)
			decodeGaps(packed, n, width, minGap, base, got)
			d := base
			for i := range vals {
				d += minGap + corpus.DocID(vals[i])
				if got[i] != d {
					t.Fatalf("width %d n %d minGap %d: gap[%d] = %d, want %d", width, n, minGap, i, got[i], d)
				}
			}

			// TF side: residuals offset by a random block minimum.
			minTF := int32(rng.Intn(1000) + 1)
			tfs := make([]int32, n)
			decodeTFs(packed, n, width, minTF, tfs)
			for i := range vals {
				if want := minTF + int32(vals[i]); tfs[i] != want {
					t.Fatalf("width %d n %d minTF %d: tf[%d] = %d, want %d", width, n, minTF, i, tfs[i], want)
				}
			}
		}
	}
}

// TestDecodeKernelTablesCoverEncoderWidths pins the dispatch tables to
// the widths the encoder actually emits: every byte-rounded gap width
// and every byte-rounded or 1-bit tf width must hit an unrolled
// kernel, so a generator regression that drops one degrades silently
// to the generic path — this test makes it loud.
func TestDecodeKernelTablesCoverEncoderWidths(t *testing.T) {
	for _, w := range []uint{8, 16, 24, 32} {
		if gapKernels[w] == nil {
			t.Errorf("no gap kernel for byte-rounded width %d", w)
		}
	}
	for _, w := range []uint{1, 8, 16, 24, 32} {
		if tfKernels[w] == nil {
			t.Errorf("no tf kernel for width %d", w)
		}
	}
}
