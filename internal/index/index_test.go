package index

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

func buildTestCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	docs := []corpus.Document{
		{Text: "apache helicopter army helicopter"},
		{Text: "stock market stock stock"},
		{Text: "apache stock"},
		{Text: "empty-doc-filler filler"},
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false))
	c, err := corpus.Build(docs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildPostings(t *testing.T) {
	c := buildTestCorpus(t)
	x, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if x.NumDocs() != 4 {
		t.Errorf("NumDocs = %d", x.NumDocs())
	}
	pl := x.PostingsByTerm("apache")
	if len(pl) != 2 {
		t.Fatalf("apache postings = %v", pl)
	}
	if pl[0].Doc != 0 || pl[0].TF != 1 {
		t.Errorf("apache doc0 posting = %+v", pl[0])
	}
	if pl[1].Doc != 2 || pl[1].TF != 1 {
		t.Errorf("apache doc2 posting = %+v", pl[1])
	}
	plStock := x.PostingsByTerm("stock")
	if len(plStock) != 2 || plStock[0].TF != 3 {
		t.Errorf("stock postings = %v", plStock)
	}
	plHeli := x.PostingsByTerm("helicopter")
	if len(plHeli) != 1 || plHeli[0].TF != 2 {
		t.Errorf("helicopter postings = %v", plHeli)
	}
}

func TestPostingsSorted(t *testing.T) {
	c := buildTestCorpus(t)
	x, _ := Build(c)
	for id := 0; id < x.NumTerms(); id++ {
		pl := x.Postings(textproc.TermID(id))
		for i := 1; i < len(pl); i++ {
			if pl[i-1].Doc >= pl[i].Doc {
				t.Fatalf("term %d postings not strictly sorted: %v", id, pl)
			}
		}
	}
}

func TestIDF(t *testing.T) {
	c := buildTestCorpus(t)
	x, _ := Build(c)
	apache := x.Vocab().ID("apache")
	heli := x.Vocab().ID("helicopter")
	if x.IDF(apache) >= x.IDF(heli) {
		t.Error("rarer term must have higher IDF")
	}
	want := math.Log(1 + 4.0/2.0)
	if got := x.IDF(apache); math.Abs(got-want) > 1e-12 {
		t.Errorf("IDF = %v, want %v", got, want)
	}
	if x.IDF(textproc.InvalidTerm) != 0 {
		t.Error("unknown term must have IDF 0")
	}
}

func TestDocLen(t *testing.T) {
	c := buildTestCorpus(t)
	x, _ := Build(c)
	if x.DocLen(0) != 4 {
		t.Errorf("DocLen(0) = %d, want 4", x.DocLen(0))
	}
	if x.DocLen(-1) != 0 || x.DocLen(1000) != 0 {
		t.Error("out-of-range DocLen should be 0")
	}
	if avg := x.AvgDocLen(); avg <= 0 {
		t.Errorf("AvgDocLen = %v", avg)
	}
}

func TestBuildNil(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("Build(nil) should error")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	spec := corpus.GenSpec{Seed: 11, NumDocs: 120, NumTopics: 6, DocLenMin: 30, DocLenMax: 60}
	c, _, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := x.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	y, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.NumDocs() != x.NumDocs() || y.NumTerms() != x.NumTerms() {
		t.Fatalf("shape mismatch after round trip")
	}
	for id := 0; id < x.NumTerms(); id++ {
		tid := textproc.TermID(id)
		if x.Vocab().Term(tid) != y.Vocab().Term(tid) {
			t.Fatalf("term %d mismatch", id)
		}
		a, b := x.Postings(tid), y.Postings(tid)
		if len(a) != len(b) {
			t.Fatalf("term %d list length mismatch", id)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("term %d posting %d mismatch: %+v vs %+v", id, i, a[i], b[i])
			}
		}
	}
	for d := 0; d < x.NumDocs(); d++ {
		if x.DocLen(corpus.DocID(d)) != y.DocLen(corpus.DocID(d)) {
			t.Fatalf("doc %d length mismatch", d)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("bad magic must be rejected")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must be rejected")
	}
	// Valid magic, wrong version.
	bad := append([]byte(codecMagic), 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad version must be rejected")
	}
	// Truncated stream after header.
	var buf bytes.Buffer
	c := buildCorpusForCodec(t)
	x, _ := Build(c)
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream must be rejected")
	}
}

func buildCorpusForCodec(t *testing.T) *corpus.Corpus {
	t.Helper()
	docs := []corpus.Document{
		{Text: "alpha beta gamma delta"},
		{Text: "alpha alpha beta"},
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false))
	c, err := corpus.Build(docs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStats(t *testing.T) {
	c := buildTestCorpus(t)
	x, _ := Build(c)
	s := x.ComputeStats()
	if s.NumDocs != 4 || s.NumTerms != x.NumTerms() {
		t.Errorf("stats shape: %+v", s)
	}
	if s.MaxListLen < 1 || s.MeanListLen <= 0 {
		t.Errorf("degenerate list stats: %+v", s)
	}
	if s.SizeBytes <= 0 {
		t.Errorf("SizeBytes = %d", s.SizeBytes)
	}
	if s.PaddedPIRBytes < s.SizeBytes {
		t.Errorf("PIR padding should not shrink the index: %+v", s)
	}
	if s.BlowupFactor() < 1 {
		t.Errorf("BlowupFactor = %v, want >= 1", s.BlowupFactor())
	}
}

func TestStatsPIRBlowupGrowsWithSkew(t *testing.T) {
	// A skewed corpus (one ubiquitous term) must show a much larger PIR
	// blowup than a uniform one — this is the paper's §II argument.
	uniformDocs := make([]corpus.Document, 50)
	skewDocs := make([]corpus.Document, 50)
	for i := range uniformDocs {
		uniformDocs[i] = corpus.Document{Text: wordFor(i)}
		skewDocs[i] = corpus.Document{Text: "common " + wordFor(i)}
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false))
	uc, _ := corpus.Build(uniformDocs, an, textproc.PruneSpec{})
	sc, _ := corpus.Build(skewDocs, an, textproc.PruneSpec{})
	ux, _ := Build(uc)
	sx, _ := Build(sc)
	if sx.ComputeStats().BlowupFactor() <= ux.ComputeStats().BlowupFactor() {
		t.Error("skewed corpus should have larger PIR blowup")
	}
}

func wordFor(i int) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	return "w" + string(letters[i%26]) + string(letters[(i/26)%26])
}

// Property: postings TF sums equal document lengths.
func TestPostingsMassConservation(t *testing.T) {
	f := func(seed int64) bool {
		spec := corpus.GenSpec{Seed: seed, NumDocs: 30, NumTopics: 4, DocLenMin: 10, DocLenMax: 30}
		c, _, err := corpus.Synthesize(spec, nil)
		if err != nil {
			return false
		}
		x, err := Build(c)
		if err != nil {
			return false
		}
		perDoc := make([]int32, x.NumDocs())
		for id := 0; id < x.NumTerms(); id++ {
			for _, p := range x.Postings(textproc.TermID(id)) {
				perDoc[p.Doc] += p.TF
			}
		}
		for d, sum := range perDoc {
			if int(sum) != x.DocLen(corpus.DocID(d)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPostingsByTermMissing(t *testing.T) {
	c := buildTestCorpus(t)
	x, _ := Build(c)
	if pl := x.PostingsByTerm("not-in-vocab"); pl != nil {
		t.Errorf("missing term should yield nil postings, got %v", pl)
	}
	if pl := x.Postings(textproc.TermID(1 << 20)); pl != nil {
		t.Error("out-of-range id should yield nil postings")
	}
}

// Property: the codec round-trips arbitrary synthesized corpora.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		spec := corpus.GenSpec{Seed: seed, NumDocs: 25, NumTopics: 3, DocLenMin: 10, DocLenMax: 25}
		c, _, err := corpus.Synthesize(spec, nil)
		if err != nil {
			return false
		}
		x, err := Build(c)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			return false
		}
		y, err := Read(&buf)
		if err != nil {
			return false
		}
		if y.NumDocs() != x.NumDocs() || y.NumTerms() != x.NumTerms() {
			return false
		}
		for id := 0; id < x.NumTerms(); id++ {
			a, b := x.Postings(textproc.TermID(id)), y.Postings(textproc.TermID(id))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestReadTruncatedDocLens(t *testing.T) {
	// Truncate specifically inside the trailing doc-length section.
	c := buildTestCorpus(t)
	x, _ := Build(c)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Error("truncated doc lengths must be rejected")
	}
}
