package index

import (
	"bytes"
	"math"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// postingsFromBytes derives a deterministic, valid postings list from
// arbitrary fuzz input: each byte pair becomes one posting's doc gap
// and tf. Gap magnitudes are stretched non-linearly so the fuzzer
// exercises every frame width from 0 to 32 bits.
func postingsFromBytes(data []byte) []Posting {
	var pl []Posting
	doc := corpus.DocID(-1)
	for i := 0; i+1 < len(data) && len(pl) < 4*BlockSize; i += 2 {
		gap := corpus.DocID(data[i]) + 1
		if data[i]&3 == 3 {
			gap <<= uint(data[i+1] % 20) // up to ~2^27 gaps
		}
		if int64(doc)+int64(gap) > math.MaxInt32/2 {
			break
		}
		doc += gap
		pl = append(pl, Posting{Doc: doc, TF: int32(data[i+1]%31) + 1})
	}
	return pl
}

// FuzzDecodePostings fuzzes the block codec from both ends: the input
// bytes are (a) interpreted as a postings list, encoded, and decoded
// back — the round trip must reproduce the list exactly through both
// the wire-validation path and the iterator — and (b) fed raw to the
// wire reader and to the full TPIX codec, which must reject corrupt
// or truncated input with an error, never a panic.
func FuzzDecodePostings(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 2, 3, 255, 30, 7, 0})
	// A well-formed encoding as a seed so mutations explore near-valid
	// block structures.
	seed := encodePostings([]Posting{{Doc: 0, TF: 1}, {Doc: 5, TF: 3}, {Doc: 1000, TF: 9}})
	f.Add(seed.data)
	f.Fuzz(func(t *testing.T, data []byte) {
		// (a) Round trip: encode(postings) then decode must be exact.
		pl := postingsFromBytes(data)
		cl := encodePostings(pl)
		lasts := make([]corpus.DocID, cl.numBlocks())
		for b := range lasts {
			lasts[b] = cl.blockLast(b)
		}
		numDocs := 0
		if n := len(pl); n > 0 {
			numDocs = int(pl[n-1].Doc) + 1
		}
		validated, err := newCompListFromWire(len(pl), cl.data, lasts, numDocs)
		if err != nil {
			t.Fatalf("valid encoding rejected: %v", err)
		}
		it := newCompIterator(&validated, nil, nil)
		for i, want := range pl {
			if !it.Valid() {
				t.Fatalf("iterator exhausted at %d/%d", i, len(pl))
			}
			if it.Doc() != want.Doc || it.TF() != want.TF {
				t.Fatalf("posting %d: got (%d,%d), want (%d,%d)", i, it.Doc(), it.TF(), want.Doc, want.TF)
			}
			it.Next()
		}
		if it.Valid() {
			t.Fatal("iterator valid past the end")
		}

		// (b) Arbitrary bytes as wire data: must error or succeed, never
		// panic. Plausible list lengths are tried so truncation at every
		// boundary is exercised.
		for _, n := range []int{1, 7, BlockSize, BlockSize + 1} {
			_, _ = newCompListFromWire(n, data, lasts[:0], 1<<20)
		}
		// And as a whole TPIX stream.
		_, _ = Read(bytes.NewReader(data))
	})
}

// FuzzReadTPIX mutates real current-format files — one small, one
// whose lists span blocks and carry impact-ordered heads, plus
// variants clipped and flipped near the head/tail boundary — and
// requires every Read outcome to be an error or a structurally valid
// index (postings traversable, heads satisfying the head invariants),
// never a panic.
func FuzzReadTPIX(f *testing.F) {
	x := buildTestIndex(f,
		"apache helicopter army weapons apache helicopter apache",
		"stock market investors trading volume stock",
		"apache webserver software configuration",
	)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	var mb bytes.Buffer
	if _, err := multiBlockIndex(f).WriteTo(&mb); err != nil {
		f.Fatal(err)
	}
	f.Add(mb.Bytes())
	// Mutations around the trailing quarter land in per-list block
	// metadata and head fields, steering the fuzzer onto the
	// head/tail boundary validation.
	f.Add(mb.Bytes()[:mb.Len()-mb.Len()/4])
	flipped := append([]byte(nil), mb.Bytes()...)
	for pos := len(flipped) - len(flipped)/4; pos < len(flipped); pos += 11 {
		flipped[pos] ^= 0x41
	}
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		y, err := Read(bytes.NewReader(data))
		if err != nil || y == nil {
			return
		}
		// Accepted indexes must be traversable end to end.
		for tid := 0; tid < y.NumTerms(); tid++ {
			it := y.Iter(textproc.TermID(tid))
			prev := corpus.DocID(-1)
			for it.Valid() {
				if it.Doc() <= prev || int(it.Doc()) >= y.NumDocs() || it.TF() < 1 {
					t.Fatalf("term %d: invalid posting (%d,%d) after prev %d", tid, it.Doc(), it.TF(), prev)
				}
				prev = it.Doc()
				it.Next()
			}
		}
		assertHeadInvariants(t, y)
	})
}

// TestV4CorruptBlocksRejected hand-corrupts specific fields of a
// current-format stream — block widths, counts, payload truncation,
// last-doc metadata — and requires Read to return an error for each,
// not panic and not accept. (Named for the v4 format that introduced
// block compression; the checks apply unchanged to v5.)
func TestV4CorruptBlocksRejected(t *testing.T) {
	x := buildTestIndex(t,
		"apache helicopter army weapons apache helicopter apache",
		"stock market investors trading volume stock",
		"apache webserver software configuration",
		"cooking recipes kitchen dinner helicopter",
	)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	if _, err := Read(bytes.NewReader(orig)); err != nil {
		t.Fatalf("pristine v4 must load: %v", err)
	}
	// Truncation at every prefix length must error.
	for cut := 0; cut < len(orig); cut += 7 {
		if _, err := Read(bytes.NewReader(orig[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
	// Single-byte corruption across the stream: every outcome must be
	// an error or a fully valid index (some flips only touch impact
	// floats, which carry no structural invariant) — never a panic.
	for pos := 8; pos < len(orig); pos++ {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0xFF
		y, err := Read(bytes.NewReader(mut))
		if err != nil || y == nil {
			continue
		}
		for tid := 0; tid < y.NumTerms(); tid++ {
			it := y.Iter(textproc.TermID(tid))
			prev := corpus.DocID(-1)
			for it.Valid() {
				if it.Doc() <= prev || int(it.Doc()) >= y.NumDocs() || it.TF() < 1 {
					t.Fatalf("byte %d flipped: accepted index has invalid posting", pos)
				}
				prev = it.Doc()
				it.Next()
			}
		}
	}
}
