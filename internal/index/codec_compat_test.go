package index

import (
	"bytes"
	"math"
	"os"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// TestReadV1Fixture loads the checked-in v1-format TPIX file (written
// by the pre-impact codec) and checks both the round-tripped postings
// and that the impact metadata was recomputed on load. The fixture
// pins the historical byte layout: if this test breaks, v1 files in
// the field stopped loading.
func TestReadV1Fixture(t *testing.T) {
	f, err := os.Open("testdata/v1.tpix")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x, err := Read(f)
	if err != nil {
		t.Fatalf("v1 fixture must load: %v", err)
	}
	if x.NumDocs() != 4 {
		t.Fatalf("fixture NumDocs = %d, want 4", x.NumDocs())
	}
	// The fixture was built from doc 0 = "apache helicopter army
	// weapons apache helicopter" (stemming off).
	pl := x.PostingsByTerm("apache")
	if len(pl) != 2 || pl[0].Doc != 0 || pl[0].TF != 2 {
		t.Fatalf("apache postings = %v", pl)
	}
	if got := x.MaxTF(x.Vocab().ID("apache")); got != 2 {
		t.Errorf("MaxTF(apache) = %d, want 2 (recomputed from v1 postings)", got)
	}
	for tid := 0; tid < x.NumTerms(); tid++ {
		id := textproc.TermID(tid)
		if x.DocFreq(id) > 0 && (x.MaxTF(id) <= 0 || x.MaxCosImpact(id) <= 0 || x.MaxBM25Impact(id) <= 0) {
			t.Errorf("term %q: v1 load left impact metadata empty", x.Vocab().Term(id))
		}
	}
}

// TestV2RoundTripPreservesImpacts writes a v2 file and reads it back:
// postings, lengths, and every per-term impact must survive exactly.
func TestV2RoundTripPreservesImpacts(t *testing.T) {
	x := buildTestIndex(t,
		"apache helicopter army weapons apache helicopter apache",
		"stock market investors trading volume stock",
		"apache webserver software configuration",
	)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.NumDocs() != x.NumDocs() || y.NumTerms() != x.NumTerms() {
		t.Fatalf("shape changed: %d/%d docs, %d/%d terms",
			y.NumDocs(), x.NumDocs(), y.NumTerms(), x.NumTerms())
	}
	for tid := 0; tid < x.NumTerms(); tid++ {
		id := textproc.TermID(tid)
		if got, want := y.MaxTF(id), x.MaxTF(id); got != want {
			t.Errorf("term %d: MaxTF %d != %d", tid, got, want)
		}
		// Bit-exact: the floats are persisted, not recomputed.
		if got, want := y.MaxCosImpact(id), x.MaxCosImpact(id); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("term %d: MaxCosImpact %v != %v", tid, got, want)
		}
		if got, want := y.MaxBM25Impact(id), x.MaxBM25Impact(id); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("term %d: MaxBM25Impact %v != %v", tid, got, want)
		}
	}
}

// TestMergeCarriesImpacts checks that a Merge with tombstones leaves
// metadata consistent with a fresh computation over the merged
// postings — in particular that dropping a list's argmax document
// lowers the recorded maxima.
func TestMergeCarriesImpacts(t *testing.T) {
	a := buildTestIndex(t,
		"apache apache apache apache army", // doc 0: the apache maxTF holder
		"apache army army",
	)
	b := buildTestIndex(t,
		"apache navy",
	)
	// Drop part a's doc 0; the merged apache maxTF must fall to 1.
	merged, _, err := Merge([]*Index{a, b}, []func(corpus.DocID) bool{
		func(d corpus.DocID) bool { return d != 0 },
		nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := merged.Vocab().ID("apache")
	if got := merged.MaxTF(id); got != 1 {
		t.Fatalf("merged MaxTF(apache) = %d, want 1 after dropping the tf=4 doc", got)
	}
	// Full consistency: metadata equals a recomputation over the
	// decoded merged postings.
	wantTF := append([]int32(nil), merged.maxTF...)
	wantCos := append([]float64(nil), merged.maxCos...)
	wantBM := append([]float64(nil), merged.maxBM...)
	raw := make([][]Posting, merged.NumTerms())
	for tid := range raw {
		raw[tid] = merged.Postings(textproc.TermID(tid))
	}
	merged.computeImpacts(raw)
	for tid := range wantTF {
		if merged.maxTF[tid] != wantTF[tid] ||
			math.Float64bits(merged.maxCos[tid]) != math.Float64bits(wantCos[tid]) ||
			math.Float64bits(merged.maxBM[tid]) != math.Float64bits(wantBM[tid]) {
			t.Fatalf("term %d: merge metadata differs from recomputation", tid)
		}
	}
}
