package index

import (
	"fmt"
	"math"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// buildCorpus analyzes docs with a fresh default analyzer, no pruning.
func buildCorpus(t *testing.T, texts []string) *corpus.Corpus {
	t.Helper()
	docs := make([]corpus.Document, len(texts))
	for i, txt := range texts {
		docs[i] = corpus.Document{Title: fmt.Sprintf("d%d", i), Text: txt}
	}
	c, err := corpus.Build(docs, textproc.NewAnalyzer(), textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMergeMatchesSinglePassBuild(t *testing.T) {
	left := []string{
		"submarine propulsion reactor cooling systems",
		"reactor fuel rods and cooling towers",
		"helicopter rotor blade maintenance",
	}
	right := []string{
		"cooling pumps for reactor loops",
		"sonar arrays aboard the submarine fleet",
	}
	cl := buildCorpus(t, left)
	cr := buildCorpus(t, right)
	il, err := Build(cl)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := Build(cr)
	if err != nil {
		t.Fatal(err)
	}

	merged, remap, err := Merge([]*Index{il, ir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	whole := buildCorpus(t, append(append([]string{}, left...), right...))
	want, err := Build(whole)
	if err != nil {
		t.Fatal(err)
	}

	if merged.NumDocs() != want.NumDocs() {
		t.Fatalf("merged NumDocs = %d, want %d", merged.NumDocs(), want.NumDocs())
	}
	if merged.AvgDocLen() != want.AvgDocLen() {
		t.Fatalf("merged AvgDocLen = %v, want %v", merged.AvgDocLen(), want.AvgDocLen())
	}
	// Renumbering is sequential: part order then local order.
	next := corpus.DocID(0)
	for _, dm := range remap {
		for _, nd := range dm {
			if nd != next {
				t.Fatalf("remap out of sequence: got %d, want %d", nd, next)
			}
			next++
		}
	}
	// Every term of the single-pass build must have identical postings
	// (doc frequency, tfs, and doc IDs) in the merged index.
	for id := 0; id < want.NumTerms(); id++ {
		term := want.Vocab().Term(textproc.TermID(id))
		mid := merged.Vocab().ID(term)
		if mid == textproc.InvalidTerm {
			t.Fatalf("term %q missing from merged vocab", term)
		}
		wp, mp := want.Postings(textproc.TermID(id)), merged.Postings(mid)
		if len(wp) != len(mp) {
			t.Fatalf("term %q: %d postings merged, want %d", term, len(mp), len(wp))
		}
		for i := range wp {
			if wp[i] != mp[i] {
				t.Fatalf("term %q posting %d: merged %+v, want %+v", term, i, mp[i], wp[i])
			}
		}
		if math.Abs(want.IDF(textproc.TermID(id))-merged.IDF(mid)) > 1e-12 {
			t.Fatalf("term %q IDF mismatch", term)
		}
	}
}

func TestMergeDropsTombstonedDocs(t *testing.T) {
	c := buildCorpus(t, []string{
		"alpha bravo charlie",
		"bravo delta echo",
		"charlie echo foxtrot",
	})
	idx, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	keep := []func(corpus.DocID) bool{func(d corpus.DocID) bool { return d != 1 }}
	merged, remap, err := Merge([]*Index{idx}, keep)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want 2", merged.NumDocs())
	}
	if remap[0][1] != DroppedDoc {
		t.Fatalf("doc 1 not dropped: %d", remap[0][1])
	}
	if remap[0][0] != 0 || remap[0][2] != 1 {
		t.Fatalf("unexpected remap %v", remap[0])
	}
	// Terms unique to the dropped doc keep their vocab slot but have no
	// postings left.
	an := textproc.NewAnalyzer()
	delta := an.Analyze("delta")[0]
	if id := merged.Vocab().ID(delta); id == textproc.InvalidTerm {
		t.Fatalf("term %q should stay interned", delta)
	} else if got := merged.DocFreq(id); got != 0 {
		t.Fatalf("dropped-doc term df = %d, want 0", got)
	}
}

func TestMergeErrors(t *testing.T) {
	if _, _, err := Merge(nil, nil); err == nil {
		t.Fatal("want error for zero parts")
	}
	c := buildCorpus(t, []string{"one two"})
	idx, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Merge([]*Index{idx}, make([]func(corpus.DocID) bool, 2)); err == nil {
		t.Fatal("want error for keep length mismatch")
	}
}
