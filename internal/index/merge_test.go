package index

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// buildCorpus analyzes docs with a fresh default analyzer, no pruning.
func buildCorpus(t *testing.T, texts []string) *corpus.Corpus {
	t.Helper()
	docs := make([]corpus.Document, len(texts))
	for i, txt := range texts {
		docs[i] = corpus.Document{Title: fmt.Sprintf("d%d", i), Text: txt}
	}
	c, err := corpus.Build(docs, textproc.NewAnalyzer(), textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMergeMatchesSinglePassBuild(t *testing.T) {
	left := []string{
		"submarine propulsion reactor cooling systems",
		"reactor fuel rods and cooling towers",
		"helicopter rotor blade maintenance",
	}
	right := []string{
		"cooling pumps for reactor loops",
		"sonar arrays aboard the submarine fleet",
	}
	cl := buildCorpus(t, left)
	cr := buildCorpus(t, right)
	il, err := Build(cl)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := Build(cr)
	if err != nil {
		t.Fatal(err)
	}

	merged, remap, err := Merge([]*Index{il, ir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	whole := buildCorpus(t, append(append([]string{}, left...), right...))
	want, err := Build(whole)
	if err != nil {
		t.Fatal(err)
	}

	if merged.NumDocs() != want.NumDocs() {
		t.Fatalf("merged NumDocs = %d, want %d", merged.NumDocs(), want.NumDocs())
	}
	if merged.AvgDocLen() != want.AvgDocLen() {
		t.Fatalf("merged AvgDocLen = %v, want %v", merged.AvgDocLen(), want.AvgDocLen())
	}
	// Renumbering is sequential: part order then local order.
	next := corpus.DocID(0)
	for _, dm := range remap {
		for _, nd := range dm {
			if nd != next {
				t.Fatalf("remap out of sequence: got %d, want %d", nd, next)
			}
			next++
		}
	}
	// Every term of the single-pass build must have identical postings
	// (doc frequency, tfs, and doc IDs) in the merged index.
	for id := 0; id < want.NumTerms(); id++ {
		term := want.Vocab().Term(textproc.TermID(id))
		mid := merged.Vocab().ID(term)
		if mid == textproc.InvalidTerm {
			t.Fatalf("term %q missing from merged vocab", term)
		}
		wp, mp := want.Postings(textproc.TermID(id)), merged.Postings(mid)
		if len(wp) != len(mp) {
			t.Fatalf("term %q: %d postings merged, want %d", term, len(mp), len(wp))
		}
		for i := range wp {
			if wp[i] != mp[i] {
				t.Fatalf("term %q posting %d: merged %+v, want %+v", term, i, mp[i], wp[i])
			}
		}
		if math.Abs(want.IDF(textproc.TermID(id))-merged.IDF(mid)) > 1e-12 {
			t.Fatalf("term %q IDF mismatch", term)
		}
	}
}

func TestMergeDropsTombstonedDocs(t *testing.T) {
	c := buildCorpus(t, []string{
		"alpha bravo charlie",
		"bravo delta echo",
		"charlie echo foxtrot",
	})
	idx, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	keep := []func(corpus.DocID) bool{func(d corpus.DocID) bool { return d != 1 }}
	merged, remap, err := Merge([]*Index{idx}, keep)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want 2", merged.NumDocs())
	}
	if remap[0][1] != DroppedDoc {
		t.Fatalf("doc 1 not dropped: %d", remap[0][1])
	}
	if remap[0][0] != 0 || remap[0][2] != 1 {
		t.Fatalf("unexpected remap %v", remap[0])
	}
	// Terms unique to the dropped doc keep their vocab slot but have no
	// postings left.
	an := textproc.NewAnalyzer()
	delta := an.Analyze("delta")[0]
	if id := merged.Vocab().ID(delta); id == textproc.InvalidTerm {
		t.Fatalf("term %q should stay interned", delta)
	} else if got := merged.DocFreq(id); got != 0 {
		t.Fatalf("dropped-doc term df = %d, want 0", got)
	}
}

func TestMergeErrors(t *testing.T) {
	if _, _, err := Merge(nil, nil); err == nil {
		t.Fatal("want error for zero parts")
	}
	c := buildCorpus(t, []string{"one two"})
	idx, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Merge([]*Index{idx}, make([]func(corpus.DocID) bool, 2)); err == nil {
		t.Fatal("want error for keep length mismatch")
	}
}

// sharedVocabParts builds nParts indexes over one shared append-only
// dictionary — the segment store's discipline, where every earlier
// part's vocabulary is a prefix of every later one's, so Merge takes
// its block-wise path. Lists for "common" span multiple blocks.
func sharedVocabParts(t *testing.T, sizes []int) ([]*Index, [][]string) {
	t.Helper()
	an := textproc.NewAnalyzer(textproc.WithStemming(false))
	vocab := textproc.NewVocab()
	parts := make([]*Index, len(sizes))
	texts := make([][]string, len(sizes))
	word := 0
	for p, size := range sizes {
		docs := make([]corpus.Document, size)
		bags := make([][]textproc.TermID, size)
		for d := 0; d < size; d++ {
			// Every doc shares "common"; every third doc shares
			// "periodic"; each doc has a unique term and a repeated one.
			txt := fmt.Sprintf("common unique%d unique%d", word, word)
			if d%3 == 0 {
				txt += " periodic periodic"
			}
			word++
			docs[d] = corpus.Document{Text: txt}
			bags[d] = corpus.AnalyzeInto(docs[d], an, vocab)
			texts[p] = append(texts[p], txt)
		}
		c := &corpus.Corpus{Docs: docs, Vocab: vocab.Clone(), Bags: bags}
		idx, err := Build(c)
		if err != nil {
			t.Fatal(err)
		}
		parts[p] = idx
	}
	return parts, texts
}

// assertMergedMatchesRebuild compares a merged index against a
// from-scratch Build over the same surviving documents: postings and
// document facts must match exactly, term-level impact metadata
// bit-for-bit (the block-wise path must not perturb a single ULP —
// its copied cosine bounds divide by norms accumulated in the same
// order a rebuild uses), and every per-block bound must exactly
// summarize the block it covers, whatever the block partitioning.
func assertMergedMatchesRebuild(t *testing.T, merged, want *Index) {
	t.Helper()
	if merged.NumDocs() != want.NumDocs() || merged.AvgDocLen() != want.AvgDocLen() {
		t.Fatalf("shape: %d/%d docs, avg %v/%v", merged.NumDocs(), want.NumDocs(), merged.AvgDocLen(), want.AvgDocLen())
	}
	for tid := 0; tid < want.NumTerms(); tid++ {
		term := want.Vocab().Term(textproc.TermID(tid))
		mid := merged.Vocab().ID(term)
		wp, mp := want.Postings(textproc.TermID(tid)), merged.Postings(mid)
		if len(wp) != len(mp) {
			t.Fatalf("term %q: %d vs %d postings", term, len(mp), len(wp))
		}
		for i := range wp {
			if wp[i] != mp[i] {
				t.Fatalf("term %q posting %d: %+v vs %+v", term, i, mp[i], wp[i])
			}
		}
		if merged.MaxTF(mid) != want.MaxTF(textproc.TermID(tid)) {
			t.Errorf("term %q: MaxTF %d vs %d", term, merged.MaxTF(mid), want.MaxTF(textproc.TermID(tid)))
		}
		if math.Float64bits(merged.MaxCosImpact(mid)) != math.Float64bits(want.MaxCosImpact(textproc.TermID(tid))) {
			t.Errorf("term %q: MaxCosImpact differs from rebuild", term)
		}
		if math.Float64bits(merged.MaxBM25Impact(mid)) != math.Float64bits(want.MaxBM25Impact(textproc.TermID(tid))) {
			t.Errorf("term %q: MaxBM25Impact differs from rebuild", term)
		}
		// Block bounds must exactly summarize their (possibly
		// irregular) blocks.
		it := merged.Iter(mid)
		bms := merged.BlockMaxes(mid)
		pos := 0
		for it.Valid() {
			bi := it.BlockIndex()
			docs, tfs := it.Window()
			var btf int32
			for j := range docs {
				if tfs[j] != mp[pos].TF || docs[j] != mp[pos].Doc {
					t.Fatalf("term %q: iterator diverged at %d", term, pos)
				}
				if tfs[j] > btf {
					btf = tfs[j]
				}
				pos++
			}
			if bms[bi].MaxTF != btf {
				t.Fatalf("term %q block %d: MaxTF %d, block holds %d", term, bi, bms[bi].MaxTF, btf)
			}
			if math.Float64bits(bms[bi].MaxBM) != math.Float64bits(BM25TFBound(btf)) {
				t.Fatalf("term %q block %d: MaxBM inconsistent", term, bi)
			}
			if !it.NextWindow() {
				break
			}
		}
		if pos != len(mp) {
			t.Fatalf("term %q: iterator yielded %d of %d postings", term, pos, len(mp))
		}
	}
}

// TestMergeBlockwiseClean merges three shared-dictionary parts with no
// tombstones — the pure block-copy path, first blocks rebased, interior
// partial blocks at the part seams — and requires exact agreement with
// a from-scratch rebuild, surviving a v4 codec round trip.
func TestMergeBlockwiseClean(t *testing.T) {
	parts, texts := sharedVocabParts(t, []int{300, 200, 140})
	merged, _, err := Merge(parts, nil)
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, tx := range texts {
		all = append(all, tx...)
	}
	want, err := Build(buildCorpusNoStem(t, all))
	if err != nil {
		t.Fatal(err)
	}
	assertMergedMatchesRebuild(t, merged, want)

	// The irregular block layout must survive serialization.
	var buf bytes.Buffer
	if _, err := merged.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertMergedMatchesRebuild(t, back, want)
}

// TestMergeBlockwiseWithTombstones mixes a dirty part (tombstoned
// documents force decode-filter-re-encode) between clean parts whose
// blocks are copied; results must still match a rebuild over the
// survivors exactly, including bit-identical term-level bounds.
func TestMergeBlockwiseWithTombstones(t *testing.T) {
	parts, texts := sharedVocabParts(t, []int{200, 170, 150})
	keep := []func(corpus.DocID) bool{
		nil,
		func(d corpus.DocID) bool { return d%4 != 1 },
		nil,
	}
	merged, remap, err := Merge(parts, keep)
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for p, tx := range texts {
		for d, txt := range tx {
			if keep[p] == nil || keep[p](corpus.DocID(d)) {
				all = append(all, txt)
			}
		}
	}
	want, err := Build(buildCorpusNoStem(t, all))
	if err != nil {
		t.Fatal(err)
	}
	assertMergedMatchesRebuild(t, merged, want)
	for d := 0; d < len(remap[1]); d++ {
		if (remap[1][d] == DroppedDoc) != (d%4 == 1) {
			t.Fatalf("part 1 doc %d: unexpected remap %d", d, remap[1][d])
		}
	}
}

// buildCorpusNoStem analyzes texts with stemming off (sharedVocabParts
// uses the same analyzer configuration).
func buildCorpusNoStem(t *testing.T, texts []string) *corpus.Corpus {
	t.Helper()
	docs := make([]corpus.Document, len(texts))
	for i, txt := range texts {
		docs[i] = corpus.Document{Text: txt}
	}
	c, err := corpus.Build(docs, textproc.NewAnalyzer(textproc.WithStemming(false)), textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}
