// Package index implements the inverted-index substrate of the search
// engine: per-term postings lists of ⟨doc, tf⟩ pairs (the ⟨p_ij, d_j⟩
// pairs of the paper's §II), tf-idf statistics, a compact on-disk codec,
// and the size accounting the paper uses in its PIR cost argument and
// in Figure 6.
package index

import (
	"fmt"
	"math"
	"sort"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// Posting records one document's occurrence count for a term.
type Posting struct {
	Doc corpus.DocID
	TF  int32
}

// PostingList is a term's postings, sorted by ascending DocID.
type PostingList []Posting

// Index is an immutable inverted index over a corpus. Build it with
// Build; it is then safe for concurrent readers.
type Index struct {
	vocab    *textproc.Vocab
	postings []PostingList // indexed by TermID
	docLen   []int         // analyzed length of each document
	numDocs  int
	totalLen int
}

// Build constructs the index from an analyzed corpus.
func Build(c *corpus.Corpus) (*Index, error) {
	if c == nil || c.Vocab == nil {
		return nil, fmt.Errorf("index: nil corpus")
	}
	idx := &Index{
		vocab:    c.Vocab,
		postings: make([]PostingList, c.Vocab.Size()),
		docLen:   make([]int, c.NumDocs()),
		numDocs:  c.NumDocs(),
	}
	for d, bag := range c.Bags {
		idx.docLen[d] = len(bag)
		idx.totalLen += len(bag)
		counts := make(map[textproc.TermID]int32, len(bag))
		for _, id := range bag {
			counts[id]++
		}
		for id, tf := range counts {
			idx.postings[id] = append(idx.postings[id], Posting{Doc: corpus.DocID(d), TF: tf})
		}
	}
	// Document order within each list follows map iteration above; sort
	// for deterministic layout and delta-encodable doc IDs.
	for id := range idx.postings {
		pl := idx.postings[id]
		sort.Slice(pl, func(i, j int) bool { return pl[i].Doc < pl[j].Doc })
	}
	return idx, nil
}

// Vocab returns the shared vocabulary.
func (x *Index) Vocab() *textproc.Vocab { return x.vocab }

// NumDocs returns the number of indexed documents.
func (x *Index) NumDocs() int { return x.numDocs }

// NumTerms returns the dictionary size.
func (x *Index) NumTerms() int { return len(x.postings) }

// Postings returns the postings list for a term ID. The returned slice
// is shared; callers must not modify it.
func (x *Index) Postings(id textproc.TermID) PostingList {
	if id < 0 || int(id) >= len(x.postings) {
		return nil
	}
	return x.postings[id]
}

// PostingsByTerm resolves a surface term and returns its postings.
func (x *Index) PostingsByTerm(term string) PostingList {
	return x.Postings(x.vocab.ID(term))
}

// DocFreq returns the document frequency of a term.
func (x *Index) DocFreq(id textproc.TermID) int {
	return len(x.Postings(id))
}

// IDF returns the smoothed inverse document frequency
// ln(1 + N/df). Terms absent from the dictionary get 0.
func (x *Index) IDF(id textproc.TermID) float64 {
	df := x.DocFreq(id)
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(x.numDocs)/float64(df))
}

// DocLen returns the analyzed token count of document d.
func (x *Index) DocLen(d corpus.DocID) int {
	if d < 0 || int(d) >= len(x.docLen) {
		return 0
	}
	return x.docLen[int(d)]
}

// AvgDocLen returns the mean analyzed document length.
func (x *Index) AvgDocLen() float64 {
	if x.numDocs == 0 {
		return 0
	}
	return float64(x.totalLen) / float64(x.numDocs)
}
