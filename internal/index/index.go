// Package index implements the inverted-index substrate of the search
// engine: per-term postings lists of ⟨doc, tf⟩ pairs (the ⟨p_ij, d_j⟩
// pairs of the paper's §II) held block-compressed in memory and on
// disk, tf-idf statistics, a compact on-disk codec, and the size
// accounting the paper uses in its PIR cost argument and in Figure 6.
package index

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// Posting records one document's occurrence count for a term — the
// decoded form of one postings entry. Inside an Index postings live
// block-compressed (see postings.go); Posting is the unit iterators
// decode and builders/mergers assemble.
type Posting struct {
	Doc corpus.DocID
	TF  int32
}

// PostingList is a term's postings, sorted by ascending DocID.
type PostingList []Posting

// Okapi BM25 parameters, shared with the scoring engine so the
// precomputed per-term impact bounds and the query-time scores use the
// same constants.
const (
	BM25K1 = 1.2
	BM25B  = 0.75
)

// BlockSize is the number of postings per compressed block and per
// max-impact block. Per-block bounds are what let document-at-a-time
// execution skip whole runs of postings (block-max WAND) instead of
// single documents, and block-wise compression is what lets a skipped
// run also skip its decode. 128 is the standard choice — big enough
// that block metadata is a rounding error next to the postings, small
// enough that the bounds stay tight and a decoded block fits in a
// kilobyte of iterator buffer.
const BlockSize = 128

// BlockMax is the impact summary of one block of postings: the same
// three bounds the term-level metadata carries (largest term
// frequency, largest lnc cosine partial, largest length-free BM25
// saturation factor), restricted to the block's documents.
type BlockMax struct {
	MaxTF  int32
	MaxCos float64
	MaxBM  float64
}

// BM25TFBound returns an upper bound on the Okapi tf-saturation factor
// tf·(k1+1)/(tf + k1·(1−b+b·dl/avgdl)) that holds for every document
// length and every collection average: the denominator is minimized at
// dl = 0. Being length-free makes the bound safe even when a segment's
// postings are scored against global collection statistics that differ
// from the segment's own.
func BM25TFBound(tf int32) float64 {
	t := float64(tf)
	return t * (BM25K1 + 1) / (t + BM25K1*(1-BM25B))
}

// Index is an immutable inverted index over a corpus. Build it with
// Build; it is then safe for concurrent readers.
type Index struct {
	vocab *textproc.Vocab
	// lists holds each term's block-compressed postings (indexed by
	// TermID). Traversal decodes block-at-a-time through Iter/BlockIter;
	// Postings materializes a list only for cold paths and tests.
	lists    []compList
	docLen   []int // analyzed length of each document
	numDocs  int
	totalLen int

	// Per-term max-impact metadata (indexed by TermID), the skipping
	// fuel of MaxScore-style top-k pruning: the largest term frequency
	// in the list, the largest lnc cosine partial (1+ln tf)/‖d‖ any
	// posting contributes, and the largest length-free BM25 saturation
	// factor. Computed by Build/Merge, persisted by the codec.
	maxTF  []int32
	maxCos []float64
	maxBM  []float64
	// blocks holds the same bounds per compressed block of each list
	// (aligned with the list's block structure; nil for empty lists) —
	// the skipping fuel of block-max WAND. The term-level maxima above
	// are exactly the maxima over a list's blocks. Persisted by the
	// codec, recomputed on v1/v2 loads.
	blocks [][]BlockMax
	// heads holds each list's impact-ordered head: the ordinals of its
	// up to maxHeadBlocks highest-impact blocks, strongest first (see
	// headOrder). The physical postings stay doc-ordered — the head is
	// a permutation view, so delta chains, byte-for-byte merges, and
	// doc-ordered traversal are untouched — and the query engine uses
	// it to decode the best blocks first and seed the top-k threshold
	// before doc-ordered traversal begins. Persisted by the v5 codec,
	// derived from the block bounds on legacy loads and merges.
	heads [][]int32

	// bloom is the per-segment term bloom filter (see bloom.go): read
	// from v6 files, derived lazily from the dictionary otherwise.
	// Access through Bloom.
	bloomOnce sync.Once
	bloom     *TermBloom

	// mapped, when non-nil, is the disk mapping whose pages back every
	// list's packed payload (OpenMapped). The index owns it; Close
	// releases it. Nil for built, merged, and stream-read indexes.
	mapped *mapping
	// cache, when non-nil, is the shared decoded-block cache iterators
	// of this index route block decodes through (AttachCache), with
	// cacheOwner namespacing this index's entries. Both are atomic
	// because the segment store detaches retired segments (DropCache)
	// while searches that snapshotted the old stack may still be
	// opening iterators — a stale pair is harmless (owner IDs are
	// never reused, so late inserts just age out), a torn one is not.
	cache      atomic.Pointer[BlockCache]
	cacheOwner atomic.Uint32
}

// maxHeadBlocks caps a list's impact-ordered head. Eight blocks — a
// thousand postings — is far more than threshold seeding ever decodes
// (the engine budgets a handful of blocks per query), while keeping
// the head under nine bytes per multi-block list; the codec rejects
// files claiming more.
const maxHeadBlocks = 8

// headOrder computes a list's impact-ordered head from its per-block
// bounds: the ordinals of up to maxHeadBlocks blocks by descending
// cosine block maximum, ties broken by ascending ordinal so the order
// is deterministic. Single-block lists carry no head — it would name
// the whole list. One scalar orders the head for both scorers: MaxBM
// is monotone in MaxTF and tracks MaxCos closely, and consumers
// re-check each entry's own bound for the scorer in play, so the
// choice affects priming quality, never safety.
func headOrder(bs []BlockMax) []int32 {
	if len(bs) < 2 {
		return nil
	}
	h := len(bs)
	if h > maxHeadBlocks {
		h = maxHeadBlocks
	}
	ord := make([]int32, len(bs))
	for i := range ord {
		ord[i] = int32(i)
	}
	// Partial selection sort: h is at most eight and this runs once per
	// list per build/merge/load, never on the query path.
	for i := 0; i < h; i++ {
		best := i
		for j := i + 1; j < len(ord); j++ {
			bj, bb := bs[ord[j]], bs[ord[best]]
			if bj.MaxCos > bb.MaxCos || (bj.MaxCos == bb.MaxCos && ord[j] < ord[best]) {
				best = j
			}
		}
		ord[i], ord[best] = ord[best], ord[i]
	}
	return ord[:h:h]
}

// Build constructs the index from an analyzed corpus.
func Build(c *corpus.Corpus) (*Index, error) {
	if c == nil || c.Vocab == nil {
		return nil, fmt.Errorf("index: nil corpus")
	}
	idx := &Index{
		vocab:   c.Vocab,
		docLen:  make([]int, c.NumDocs()),
		numDocs: c.NumDocs(),
	}
	raw := make([][]Posting, c.Vocab.Size())
	for d, bag := range c.Bags {
		idx.docLen[d] = len(bag)
		idx.totalLen += len(bag)
		counts := make(map[textproc.TermID]int32, len(bag))
		for _, id := range bag {
			counts[id]++
		}
		for id, tf := range counts {
			raw[id] = append(raw[id], Posting{Doc: corpus.DocID(d), TF: tf})
		}
	}
	// Document order within each list follows map iteration above; sort
	// for deterministic layout and delta-encodable doc IDs.
	for id := range raw {
		pl := raw[id]
		sort.Slice(pl, func(i, j int) bool { return pl[i].Doc < pl[j].Doc })
	}
	idx.computeImpacts(raw)
	idx.compressLists(raw)
	return idx, nil
}

// compressLists encodes the raw sorted lists into the block-compressed
// in-memory form. The raw slices are not retained.
func (x *Index) compressLists(raw [][]Posting) {
	x.lists = make([]compList, len(raw))
	for t, pl := range raw {
		x.lists[t] = encodePostings(pl)
	}
}

// computeImpacts derives the per-term and per-block max-impact
// metadata from the raw (uncompressed, sorted) postings in one pass:
// lnc document norms first (they need the whole index), then each
// list's blocks, then the term-level maxima as the maxima over blocks
// — which makes the two levels consistent by construction
// (bit-for-bit: they maximize over the same float values, and
// BM25TFBound is monotone in tf).
func (x *Index) computeImpacts(raw [][]Posting) {
	norms := make([]float64, x.numDocs)
	for _, pl := range raw {
		for _, p := range pl {
			w := 1 + math.Log(float64(p.TF))
			norms[p.Doc] += w * w
		}
	}
	for d := range norms {
		norms[d] = math.Sqrt(norms[d])
	}
	x.maxTF = make([]int32, len(raw))
	x.maxCos = make([]float64, len(raw))
	x.maxBM = make([]float64, len(raw))
	x.blocks = make([][]BlockMax, len(raw))
	x.heads = make([][]int32, len(raw))
	for t, pl := range raw {
		if len(pl) == 0 {
			continue
		}
		bs := make([]BlockMax, (len(pl)+BlockSize-1)/BlockSize)
		for b := range bs {
			start, end := b*BlockSize, (b+1)*BlockSize
			if end > len(pl) {
				end = len(pl)
			}
			bs[b] = blockMaxOf(pl[start:end], norms, nil)
		}
		x.blocks[t] = bs
		x.heads[t] = headOrder(bs)
		x.maxTF[t], x.maxCos[t], x.maxBM[t] = maxOverBlocks(bs)
	}
}

// blockMaxOf computes one block's impact bounds over its postings.
// When remap is non-nil, norms are indexed by remap of the posting's
// doc (the block-wise merge path, where postings already carry merged
// IDs but norms are per-part).
func blockMaxOf(pl []Posting, norms []float64, remap []corpus.DocID) BlockMax {
	var bm BlockMax
	for i, p := range pl {
		if p.TF > bm.MaxTF {
			bm.MaxTF = p.TF
		}
		d := p.Doc
		if remap != nil {
			d = remap[i]
		}
		if c := (1 + math.Log(float64(p.TF))) / norms[d]; c > bm.MaxCos {
			bm.MaxCos = c
		}
	}
	bm.MaxBM = BM25TFBound(bm.MaxTF)
	return bm
}

// maxOverBlocks folds a list's block bounds into its term-level maxima.
func maxOverBlocks(bs []BlockMax) (mtf int32, mcos, mbm float64) {
	for _, bm := range bs {
		if bm.MaxTF > mtf {
			mtf = bm.MaxTF
		}
		if bm.MaxCos > mcos {
			mcos = bm.MaxCos
		}
		if bm.MaxBM > mbm {
			mbm = bm.MaxBM
		}
	}
	return mtf, mcos, mbm
}

// Bloom returns the index's per-segment term bloom filter, deriving
// it from the dictionary on first use when the source file predates
// v6 (or the index was built in memory). Safe for concurrent readers.
func (x *Index) Bloom() *TermBloom {
	x.bloomOnce.Do(func() {
		if x.bloom == nil {
			x.bloom = buildVocabBloom(x.vocab)
		}
	})
	return x.bloom
}

// AttachCache routes this index's block decodes through a shared
// decoded-block cache. The owner ID is published before the cache
// pointer, so a concurrent reader that observes the cache always
// reads a valid owner; DropCache/Close detach and purge.
func (x *Index) AttachCache(c *BlockCache) {
	if c == nil {
		return
	}
	x.cacheOwner.Store(c.RegisterOwner())
	x.cache.Store(c)
}

// DropCache detaches the index from its block cache, purging the
// entries it owns. Safe concurrent with traversal: an in-flight
// iterator that captured the cache before the swap keeps using it
// correctly — its owner ID is retired, never reused, so anything it
// still inserts is unreachable and ages out of the CLOCK ring.
func (x *Index) DropCache() {
	if c := x.cache.Swap(nil); c != nil {
		c.DropOwner(x.cacheOwner.Load())
	}
}

// WarmCache pre-fills the attached block cache with this index's
// decoded blocks, longest lists first — the lists a query is most
// likely to touch — and returns the number of blocks inserted. Warming
// claims only free slots (it never evicts what live queries cached) and
// stops at the first full slot-ring, so it is safe to call eagerly:
// compaction uses it to hand the merged segment a warm cache instead of
// starting every post-compaction query from a cold one. No-op without
// an attached cache.
func (x *Index) WarmCache() int {
	c := x.cache.Load()
	if c == nil {
		return 0
	}
	owner := x.cacheOwner.Load()
	order := make([]int32, 0, len(x.lists))
	for id := range x.lists {
		if x.lists[id].n > 0 {
			order = append(order, int32(id))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := x.lists[order[i]].n, x.lists[order[j]].n
		if a != b {
			return a > b
		}
		return order[i] < order[j]
	})
	warmed := 0
	var docs [BlockSize]corpus.DocID
	var tfs [BlockSize]int32
	for _, id := range order {
		cl := &x.lists[id]
		for b := 0; b < cl.numBlocks(); b++ {
			h := cl.decodeBlockDocs(b, &docs)
			cl.decodeBlockTFs(h, &tfs)
			k := cacheKey{owner: owner, term: id, block: int32(b)}
			if !c.warmPut(k, &docs, &tfs, h.count) {
				return warmed
			}
			warmed++
		}
	}
	return warmed
}

// Mapped reports whether the index's postings payloads are views into
// a disk mapping (an OpenMapped index on a current-format file).
func (x *Index) Mapped() bool { return x.mapped != nil }

// Close releases the disk mapping behind an OpenMapped index and
// detaches its block cache. After Close every traversal touching a
// mapped payload is invalid — callers must ensure no readers remain
// (in-memory indexes have no mapping and Close is then cache-drop
// only). Safe on nil-mapping indexes and safe to call twice.
func (x *Index) Close() error {
	x.DropCache()
	m := x.mapped
	x.mapped = nil
	return m.Close()
}

// Vocab returns the shared vocabulary.
func (x *Index) Vocab() *textproc.Vocab { return x.vocab }

// NumDocs returns the number of indexed documents.
func (x *Index) NumDocs() int { return x.numDocs }

// NumTerms returns the dictionary size.
func (x *Index) NumTerms() int { return len(x.lists) }

// Postings decodes and returns the postings list for a term ID. Each
// call materializes a fresh slice — hot paths should traverse through
// Iter/BlockIter instead, which decode block-at-a-time without
// allocating.
func (x *Index) Postings(id textproc.TermID) PostingList {
	if id < 0 || int(id) >= len(x.lists) {
		return nil
	}
	cl := &x.lists[id]
	if cl.n == 0 {
		return nil
	}
	out := make(PostingList, 0, cl.n)
	it := newCompIterator(cl, nil, nil)
	for it.Valid() {
		docs, tfs := it.Window()
		for i := range docs {
			out = append(out, Posting{Doc: docs[i], TF: tfs[i]})
		}
		if !it.NextWindow() {
			break
		}
	}
	return out
}

// PostingsByTerm resolves a surface term and returns its postings
// (decoded; see Postings).
func (x *Index) PostingsByTerm(term string) PostingList {
	return x.Postings(x.vocab.ID(term))
}

// DocFreq returns the document frequency of a term.
func (x *Index) DocFreq(id textproc.TermID) int {
	if id < 0 || int(id) >= len(x.lists) {
		return 0
	}
	return int(x.lists[id].n)
}

// Iter returns a decode-on-traversal iterator over id's postings,
// carrying the per-block impact bounds. Absent terms yield an
// exhausted iterator. Query hot paths use IterInto instead, which
// repositions a pooled iterator without copying its buffers.
func (x *Index) Iter(id textproc.TermID) Iterator {
	if id < 0 || int(id) >= len(x.lists) {
		return Iterator{}
	}
	var it Iterator
	it.resetCompCached(&x.lists[id], x.blocks[id], x.heads[id], x.cache.Load(), x.cacheOwner.Load(), int32(id))
	return it
}

// iterUncached returns an iterator over id's postings that bypasses
// any attached block cache. Merge traversal uses it: a compaction
// reads every list of every part exactly once, so routing those
// decodes through the cache would evict the query working set with
// blocks that are about to be retired.
func (x *Index) iterUncached(id textproc.TermID) Iterator {
	if id < 0 || int(id) >= len(x.lists) {
		return Iterator{}
	}
	return newCompIterator(&x.lists[id], x.blocks[id], x.heads[id])
}

// IterInto repositions it over id's postings in place — the vsm
// Source contract. Only the first block's doc IDs are decoded; the
// iterator's kilobyte of buffer is neither cleared nor copied.
func (x *Index) IterInto(id textproc.TermID, it *Iterator) {
	if id < 0 || int(id) >= len(x.lists) {
		it.ResetList(nil, nil)
		return
	}
	it.resetCompCached(&x.lists[id], x.blocks[id], x.heads[id], x.cache.Load(), x.cacheOwner.Load(), int32(id))
}

// MaxTF returns the largest term frequency in id's postings list
// (0 for absent terms).
func (x *Index) MaxTF(id textproc.TermID) int32 {
	if id < 0 || int(id) >= len(x.maxTF) {
		return 0
	}
	return x.maxTF[id]
}

// MaxCosImpact returns the largest lnc cosine partial
// (1+ln tf)/‖d‖ any posting of id contributes — an upper bound on the
// term's per-document share of a normalized cosine score.
func (x *Index) MaxCosImpact(id textproc.TermID) float64 {
	if id < 0 || int(id) >= len(x.maxCos) {
		return 0
	}
	return x.maxCos[id]
}

// MaxBM25Impact returns an upper bound on the BM25 tf-saturation
// factor over id's postings, valid for any document length and any
// collection average (see BM25TFBound).
func (x *Index) MaxBM25Impact(id textproc.TermID) float64 {
	if id < 0 || int(id) >= len(x.maxBM) {
		return 0
	}
	return x.maxBM[id]
}

// BlockMaxes returns the per-block impact bounds of id's postings,
// aligned with the list's compressed-block structure (block b of the
// iterator carries bounds entry b). Nil for absent terms and empty
// lists. The returned slice is shared; callers must not modify it.
func (x *Index) BlockMaxes(id textproc.TermID) []BlockMax {
	if id < 0 || int(id) >= len(x.blocks) {
		return nil
	}
	return x.blocks[id]
}

// HeadOrder returns the impact-ordered head of id's postings list:
// block ordinals by descending cosine block bound (see headOrder).
// Nil for absent terms and lists of fewer than two blocks. The slice
// is shared; callers must not modify it.
func (x *Index) HeadOrder(id textproc.TermID) []int32 {
	if id < 0 || int(id) >= len(x.heads) {
		return nil
	}
	return x.heads[id]
}

// HasBlocks reports that this index hands out per-block bounds (it
// always does: Build, Merge, and every codec version populate them) —
// the vsm BlockSource capability probe.
func (x *Index) HasBlocks() bool { return true }

// BlockIter returns an iterator over id's postings that carries the
// per-block impact bounds, enabling block-level skipping in the
// query engine. Identical to Iter.
func (x *Index) BlockIter(id textproc.TermID) Iterator { return x.Iter(id) }

// BlockIterInto is the in-place BlockIter — the vsm BlockSource
// contract. Identical to IterInto (every index iterator carries
// block bounds).
func (x *Index) BlockIterInto(id textproc.TermID, it *Iterator) { x.IterInto(id, it) }

// IDF returns the smoothed inverse document frequency
// ln(1 + N/df). Terms absent from the dictionary get 0.
func (x *Index) IDF(id textproc.TermID) float64 {
	df := x.DocFreq(id)
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(x.numDocs)/float64(df))
}

// DocLen returns the analyzed token count of document d.
func (x *Index) DocLen(d corpus.DocID) int {
	if d < 0 || int(d) >= len(x.docLen) {
		return 0
	}
	return x.docLen[int(d)]
}

// AvgDocLen returns the mean analyzed document length.
func (x *Index) AvgDocLen() float64 {
	if x.numDocs == 0 {
		return 0
	}
	return float64(x.totalLen) / float64(x.numDocs)
}
