package index

import "toppriv/internal/corpus"

// Iterator is a cursor over one term's postings list — the traversal
// primitive of document-at-a-time (DAAT) query evaluation. A fresh
// iterator is positioned on the first posting; Valid reports whether
// the cursor is on a posting, and Next/SeekGE advance it. The zero
// value is an exhausted iterator over an empty list.
//
// Iterators are plain values over the shared (immutable) postings
// slice: cheap to create per query, safe for concurrent queries.
type Iterator struct {
	pl  PostingList
	pos int
}

// Iter returns an iterator positioned on the list's first posting.
func (pl PostingList) Iter() Iterator { return Iterator{pl: pl} }

// Valid reports whether the iterator is positioned on a posting.
func (it *Iterator) Valid() bool { return it.pos < len(it.pl) }

// Doc returns the current posting's document ID. Valid must be true.
func (it *Iterator) Doc() corpus.DocID { return it.pl[it.pos].Doc }

// TF returns the current posting's term frequency. Valid must be true.
func (it *Iterator) TF() int32 { return it.pl[it.pos].TF }

// Next advances to the following posting, reporting whether the
// iterator is still valid.
func (it *Iterator) Next() bool {
	it.pos++
	return it.pos < len(it.pl)
}

// SeekGE advances to the first posting with Doc >= d, reporting whether
// one exists. It never moves backwards; seeking to a document at or
// before the current position is a no-op. Galloping search keeps a full
// DAAT merge linear in the shortest list rather than the longest.
func (it *Iterator) SeekGE(d corpus.DocID) bool {
	n := len(it.pl)
	if it.pos >= n || it.pl[it.pos].Doc >= d {
		return it.pos < n
	}
	// Gallop: double the step from the current position until we
	// overshoot, then binary-search the bracketed window.
	lo, step := it.pos+1, 1
	hi := lo
	for hi < n && it.pl[hi].Doc < d {
		lo = hi + 1
		hi += step
		step <<= 1
	}
	if hi > n {
		hi = n
	}
	// Invariant: postings in [0, lo) have Doc < d; [hi, n) have Doc >= d.
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if it.pl[mid].Doc < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.pos = lo
	return lo < n
}
