package index

import "toppriv/internal/corpus"

// Iterator is a cursor over one term's postings list — the traversal
// primitive of document-at-a-time (DAAT) query evaluation. A fresh
// iterator is positioned on the first posting; Valid reports whether
// the cursor is on a posting, and Next/SeekGE advance it. The zero
// value is an exhausted iterator over an empty list.
//
// Iterators are plain values over the shared (immutable) postings
// slice: cheap to create per query, safe for concurrent queries.
//
// An iterator may additionally carry per-block max-impact bounds
// (IterBlocks, Index.BlockIter): BlockMax exposes the current block's
// bounds and SkipBlock jumps past its remaining postings, which is
// what lets block-max WAND discard BlockSize postings on one
// comparison instead of walking them.
type Iterator struct {
	pl     PostingList
	blocks []BlockMax
	pos    int
}

// Iter returns an iterator positioned on the list's first posting.
func (pl PostingList) Iter() Iterator { return Iterator{pl: pl} }

// IterBlocks returns an iterator that also carries per-block impact
// bounds; blocks must describe pl in BlockSize-posting blocks (as
// computed by Build/Merge). A nil blocks slice degrades to a plain
// iterator.
func (pl PostingList) IterBlocks(blocks []BlockMax) Iterator {
	return Iterator{pl: pl, blocks: blocks}
}

// HasBlocks reports whether the iterator carries per-block bounds.
func (it *Iterator) HasBlocks() bool { return it.blocks != nil }

// BlockMax returns the current block's impact bounds. Valid and
// HasBlocks must be true.
func (it *Iterator) BlockMax() BlockMax { return it.blocks[it.pos/BlockSize] }

// BlockIndex returns the ordinal of the current block (always 0
// without block metadata, where the whole list is one block) — a
// cheap cache key for bound computations derived from BlockMax.
func (it *Iterator) BlockIndex() int {
	if it.blocks == nil {
		return 0
	}
	return it.pos / BlockSize
}

// BlockLastDoc returns the last document of the current block — the
// horizon up to which BlockMax bounds every posting. Without block
// metadata the whole list is one block, so this is the list's final
// document. Valid must be true.
func (it *Iterator) BlockLastDoc() corpus.DocID {
	if it.blocks == nil {
		return it.pl[len(it.pl)-1].Doc
	}
	end := (it.pos/BlockSize + 1) * BlockSize
	if end > len(it.pl) {
		end = len(it.pl)
	}
	return it.pl[end-1].Doc
}

// SkipBlock advances past the remainder of the current block to the
// first posting of the next one (the end of the list when the
// iterator carries no block metadata), reporting whether the iterator
// is still valid. Valid must be true on entry.
func (it *Iterator) SkipBlock() bool {
	if it.blocks == nil {
		it.pos = len(it.pl)
		return false
	}
	it.pos = (it.pos/BlockSize + 1) * BlockSize
	if it.pos > len(it.pl) {
		it.pos = len(it.pl)
	}
	return it.pos < len(it.pl)
}

// Valid reports whether the iterator is positioned on a posting.
func (it *Iterator) Valid() bool { return it.pos < len(it.pl) }

// Doc returns the current posting's document ID. Valid must be true.
func (it *Iterator) Doc() corpus.DocID { return it.pl[it.pos].Doc }

// TF returns the current posting's term frequency. Valid must be true.
func (it *Iterator) TF() int32 { return it.pl[it.pos].TF }

// Next advances to the following posting, reporting whether the
// iterator is still valid.
func (it *Iterator) Next() bool {
	it.pos++
	return it.pos < len(it.pl)
}

// SeekGE advances to the first posting with Doc >= d, reporting whether
// one exists. It never moves backwards; seeking to a document at or
// before the current position is a no-op. Galloping search keeps a full
// DAAT merge linear in the shortest list rather than the longest.
func (it *Iterator) SeekGE(d corpus.DocID) bool {
	n := len(it.pl)
	if it.pos >= n || it.pl[it.pos].Doc >= d {
		return it.pos < n
	}
	// Gallop: double the step from the current position until we
	// overshoot, then binary-search the bracketed window.
	lo, step := it.pos+1, 1
	hi := lo
	for hi < n && it.pl[hi].Doc < d {
		lo = hi + 1
		hi += step
		step <<= 1
	}
	if hi > n {
		hi = n
	}
	// Invariant: postings in [0, lo) have Doc < d; [hi, n) have Doc >= d.
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if it.pl[mid].Doc < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.pos = lo
	return lo < n
}
