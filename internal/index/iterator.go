package index

import "toppriv/internal/corpus"

// Iterator is a cursor over one term's postings list — the traversal
// primitive of document-at-a-time (DAAT) query evaluation. A fresh
// iterator is positioned on the first posting; Valid reports whether
// the cursor is on a posting, and Next/SeekGE advance it. The zero
// value is an exhausted iterator over an empty list.
//
// Iterators come in two modes sharing one API: over a plain
// PostingList slice (the live memtable, tests) and over a compressed
// list (every *Index), where postings are decoded block-at-a-time
// into the iterator's own small buffer — doc IDs when a block is
// entered, term frequencies only if TF is actually read — so
// traversal never materializes []Posting and a skipped block is never
// decoded. The buffers live inside the struct; hot paths hold
// iterators in pooled slots and reposition them in place (Index
// IterInto, ResetList), so steady-state queries allocate nothing and
// never clear or copy the kilobyte of buffer.
//
// An iterator may additionally carry per-block max-impact bounds
// (IterBlocks, Index.BlockIter): BlockMax exposes the current block's
// bounds and SkipBlock jumps past its remaining postings, which is
// what lets block-max WAND discard BlockSize postings on one
// comparison instead of walking — or, in compressed mode, even
// decoding — them.
type Iterator struct {
	pl     PostingList // slice mode (nil in compressed mode)
	cl     *compList   // compressed mode (nil in slice mode)
	blocks []BlockMax
	head   []int32      // impact-ordered head ordinals (see Index.heads); may be nil
	pos    int          // global posting ordinal
	n      int          // total postings
	cur    corpus.DocID // current posting's doc; maintained by every move

	// Compressed-mode decode state: the current block, its parsed
	// header, and its decoded window. tfOK marks the tf half of the
	// window decoded.
	blk      int
	blkStart int
	blkLen   int
	tfOK     bool
	hdr      blockHeader
	// probes counts document comparisons made by SeekGE (block-level
	// and in-window) since the iterator was (re)positioned — the
	// evidence the seek-after-skip regression tests assert on.
	probes int
	// decodes counts compressed blocks whose doc IDs were actually
	// decoded since the iterator was (re)positioned — the complement of
	// probes in the cost model: together they show how much decode work
	// block skipping saved. Always 0 in slice mode. Cache hits fill the
	// window without decoding and are not counted.
	decodes int
	// cache, when non-nil, interposes the shared decoded-block cache on
	// loadBlock; ckey carries the owning index's namespace and the
	// list's term, with the block ordinal filled per lookup.
	cache  *BlockCache
	ckey   cacheKey
	docBuf [BlockSize]corpus.DocID
	tfBuf  [BlockSize]int32
}

// Iter returns an iterator positioned on the list's first posting.
func (pl PostingList) Iter() Iterator {
	it := Iterator{pl: pl, n: len(pl)}
	if it.n > 0 {
		it.cur = pl[0].Doc
	}
	return it
}

// IterBlocks returns an iterator that also carries per-block impact
// bounds; blocks must describe pl in BlockSize-posting blocks (as
// computed by Build/Merge). A nil blocks slice degrades to a plain
// iterator.
func (pl PostingList) IterBlocks(blocks []BlockMax) Iterator {
	it := pl.Iter()
	it.blocks = blocks
	return it
}

// ResetList repositions the iterator over a plain postings slice
// without touching the decode buffers — the in-place counterpart of
// Iter for pooled iterator slots.
func (it *Iterator) ResetList(pl PostingList, blocks []BlockMax) {
	it.pl, it.cl, it.blocks, it.head = pl, nil, blocks, nil
	it.cache = nil
	it.pos, it.n, it.probes, it.decodes = 0, len(pl), 0, 0
	if it.n > 0 {
		it.cur = pl[0].Doc
	}
}

// resetComp repositions the iterator over a compressed list, decoding
// only the first block's doc IDs. The in-place counterpart of
// newCompIterator.
func (it *Iterator) resetComp(cl *compList, blocks []BlockMax, head []int32) {
	it.resetCompCached(cl, blocks, head, nil, 0, 0)
}

// resetCompCached is resetComp with a decoded-block cache attached:
// block loads (including the first, here) consult the cache before
// decoding. Index.Iter/IterInto route through it so a cache-backed
// index transparently shares hot blocks across its iterators.
func (it *Iterator) resetCompCached(cl *compList, blocks []BlockMax, head []int32, c *BlockCache, owner uint32, term int32) {
	it.pl, it.cl, it.blocks, it.head = nil, cl, blocks, head
	it.cache = c
	it.ckey = cacheKey{owner: owner, term: term}
	it.pos, it.n, it.probes, it.decodes = 0, int(cl.n), 0, 0
	it.blk, it.blkStart, it.blkLen, it.tfOK = 0, 0, 0, false
	if it.n > 0 {
		it.loadBlock(0)
	}
}

// newCompIterator returns a decode-on-traversal iterator positioned on
// the first posting of a compressed list.
func newCompIterator(cl *compList, blocks []BlockMax, head []int32) Iterator {
	var it Iterator
	it.resetComp(cl, blocks, head)
	return it
}

// loadBlock decodes block b's doc IDs and positions the cursor on its
// first posting, reporting whether b exists. With a cache attached a
// hit fills both window halves (docs and tfs) from the cached copy
// without touching the packed payload — on a mapped index that is
// what keeps hot blocks from faulting their pages back in — and a
// miss decodes both halves eagerly and inserts them.
func (it *Iterator) loadBlock(b int) bool {
	if b >= it.cl.numBlocks() {
		it.pos = it.n
		return false
	}
	it.blk = b
	it.blkStart = it.cl.blockStart(b)
	if c := it.cache; c != nil {
		it.ckey.block = int32(b)
		if n, ok := c.get(it.ckey, &it.docBuf, &it.tfBuf); ok {
			it.blkLen = n
			it.tfOK = true
		} else {
			it.hdr = it.cl.decodeBlockDocs(b, &it.docBuf)
			it.decodes++
			it.blkLen = it.hdr.count
			it.cl.decodeBlockTFs(it.hdr, &it.tfBuf)
			it.tfOK = true
			c.put(it.ckey, &it.docBuf, &it.tfBuf, it.blkLen)
		}
	} else {
		it.hdr = it.cl.decodeBlockDocs(b, &it.docBuf)
		it.decodes++
		it.blkLen = it.hdr.count
		it.tfOK = false
	}
	it.pos = it.blkStart
	it.cur = it.docBuf[0]
	return true
}

// HasBlocks reports whether the iterator carries per-block bounds.
func (it *Iterator) HasBlocks() bool { return it.blocks != nil }

// HeadOrder returns the list's impact-ordered head: the ordinals of
// its highest-impact blocks, strongest first (see Index.HeadOrder).
// Nil when the list carries no head — single-block lists, slice mode.
// The slice is shared; callers must not modify it.
func (it *Iterator) HeadOrder() []int32 { return it.head }

// BlockMaxAt returns block b's impact bounds without moving the
// cursor. HasBlocks must be true and b a valid block ordinal.
func (it *Iterator) BlockMaxAt(b int) BlockMax { return it.blocks[b] }

// EnterBlock positions the cursor on the first posting of block b —
// random block access for impact-ordered consumers working through
// HeadOrder — reporting whether b exists. Only meaningful in
// compressed mode; unlike SeekGE it may move backwards, so a caller
// mixing EnterBlock with doc-ordered traversal must reposition (or
// SeekGE forward) afterwards.
func (it *Iterator) EnterBlock(b int) bool {
	if it.cl == nil || b < 0 {
		return false
	}
	return it.loadBlock(b)
}

// Len returns the total number of postings in the underlying list.
func (it *Iterator) Len() int { return it.n }

// LastDoc returns the last document of the whole list — available
// without decoding in compressed mode. The list must be non-empty.
func (it *Iterator) LastDoc() corpus.DocID {
	if it.cl != nil {
		return it.cl.lastDoc
	}
	return it.pl[it.n-1].Doc
}

// BlockMax returns the current block's impact bounds. Valid and
// HasBlocks must be true.
func (it *Iterator) BlockMax() BlockMax { return it.blocks[it.BlockIndex()] }

// BlockIndex returns the ordinal of the current block (always 0
// without block metadata, where the whole list is one block) — a
// cheap cache key for bound computations derived from BlockMax.
func (it *Iterator) BlockIndex() int {
	if it.cl != nil {
		return it.blk
	}
	if it.blocks == nil {
		return 0
	}
	return it.pos / BlockSize
}

// BlockLastDoc returns the last document of the current block — the
// horizon up to which BlockMax bounds every posting, read from block
// metadata without any decoding. Without block metadata the whole
// list is one block, so this is the list's final document. Valid must
// be true.
func (it *Iterator) BlockLastDoc() corpus.DocID {
	if it.cl != nil {
		return it.cl.blockLast(it.blk)
	}
	if it.blocks == nil {
		return it.pl[len(it.pl)-1].Doc
	}
	end := (it.pos/BlockSize + 1) * BlockSize
	if end > len(it.pl) {
		end = len(it.pl)
	}
	return it.pl[end-1].Doc
}

// SkipBlock advances past the remainder of the current block to the
// first posting of the next one (the end of the list when the
// iterator carries no block metadata), reporting whether the iterator
// is still valid. The skipped remainder is never decoded. Valid must
// be true on entry.
func (it *Iterator) SkipBlock() bool {
	if it.cl != nil {
		return it.loadBlock(it.blk + 1)
	}
	if it.blocks == nil {
		it.pos = len(it.pl)
		return false
	}
	it.pos = (it.pos/BlockSize + 1) * BlockSize
	if it.pos >= len(it.pl) {
		it.pos = len(it.pl)
		return false
	}
	it.cur = it.pl[it.pos].Doc
	return true
}

// Valid reports whether the iterator is positioned on a posting.
func (it *Iterator) Valid() bool { return it.pos < it.n }

// Doc returns the current posting's document ID. Valid must be true.
func (it *Iterator) Doc() corpus.DocID { return it.cur }

// TF returns the current posting's term frequency. Valid must be true.
// In compressed mode the first TF read of a block decodes the block's
// tf payload; blocks that are only seeked across never pay it.
func (it *Iterator) TF() int32 {
	if it.cl != nil {
		if !it.tfOK {
			it.cl.decodeBlockTFs(it.hdr, &it.tfBuf)
			it.tfOK = true
		}
		return it.tfBuf[it.pos-it.blkStart]
	}
	return it.pl[it.pos].TF
}

// Next advances to the following posting, reporting whether the
// iterator is still valid.
func (it *Iterator) Next() bool {
	it.pos++
	if it.cl == nil {
		if it.pos >= it.n {
			return false
		}
		it.cur = it.pl[it.pos].Doc
		return true
	}
	if i := it.pos - it.blkStart; i < it.blkLen {
		it.cur = it.docBuf[i]
		return true
	}
	return it.loadBlock(it.blk + 1)
}

// Window returns the postings from the cursor through the end of the
// current decoded block as parallel doc/tf slices — the bulk surface
// the exhaustive and batch traversals consume, one tight loop per
// block instead of three method calls per posting. In slice mode the
// next run of up to BlockSize postings is staged through the same
// buffers. The slices are valid until the iterator moves; advance
// with NextWindow. Valid must be true.
func (it *Iterator) Window() (docs []corpus.DocID, tfs []int32) {
	if it.cl != nil {
		if !it.tfOK {
			it.cl.decodeBlockTFs(it.hdr, &it.tfBuf)
			it.tfOK = true
		}
		lo, hi := it.pos-it.blkStart, it.blkLen
		return it.docBuf[lo:hi], it.tfBuf[lo:hi]
	}
	end := it.pos + BlockSize
	if end > it.n {
		end = it.n
	}
	m := end - it.pos
	for i, p := range it.pl[it.pos:end] {
		it.docBuf[i] = p.Doc
		it.tfBuf[i] = p.TF
	}
	return it.docBuf[:m], it.tfBuf[:m]
}

// NextWindow advances past the postings Window returned, reporting
// whether any remain.
func (it *Iterator) NextWindow() bool {
	if it.cl != nil {
		return it.loadBlock(it.blk + 1)
	}
	it.pos += BlockSize
	if it.pos >= it.n {
		it.pos = it.n
		return false
	}
	it.cur = it.pl[it.pos].Doc
	return true
}

// SeekProbes returns the cumulative number of document comparisons
// SeekGE has made on this iterator — the cost model the
// seek-after-skip regression tests pin down.
func (it *Iterator) SeekProbes() int { return it.probes }

// BlocksDecoded returns how many compressed blocks this iterator
// decoded since it was (re)positioned — 0 in slice mode, where nothing
// is compressed. Blocks that SeekGE or SkipBlock passed over without
// decoding are not counted, so comparing against ceil(Len/BlockSize)
// measures how much decode work pruning actually saved.
func (it *Iterator) BlocksDecoded() int { return it.decodes }

// SeekGE advances to the first posting with Doc >= d, reporting whether
// one exists. It never moves backwards; seeking to a document at or
// before the current position is a no-op. In compressed mode the
// search resumes from the current block: the target block is found by
// galloping over the per-block last-doc metadata starting at the
// cursor's block — so a seek shortly after a skip stays O(1) block
// probes plus one in-block search, and the blocks in between are
// never decoded. In slice mode galloping search from the current
// position keeps a full DAAT merge linear in the shortest list rather
// than the longest.
func (it *Iterator) SeekGE(d corpus.DocID) bool {
	if it.cl != nil {
		return it.seekGEComp(d)
	}
	n := len(it.pl)
	if it.pos >= n {
		return false
	}
	it.probes++
	if it.cur >= d {
		return true
	}
	// Gallop: double the step from the current position until we
	// overshoot, then binary-search the bracketed window.
	lo, step := it.pos+1, 1
	hi := lo
	for hi < n && it.pl[hi].Doc < d {
		it.probes++
		lo = hi + 1
		hi += step
		step <<= 1
	}
	if hi > n {
		hi = n
	}
	// Invariant: postings in [0, lo) have Doc < d; [hi, n) have Doc >= d.
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		it.probes++
		if it.pl[mid].Doc < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.pos = lo
	if lo < n {
		it.cur = it.pl[lo].Doc
		return true
	}
	return false
}

// seekGEComp is the compressed-mode SeekGE: block-level search over
// the last-doc metadata from the current block, then one in-window
// search of the single decoded target block.
func (it *Iterator) seekGEComp(d corpus.DocID) bool {
	if it.pos >= it.n {
		return false
	}
	it.probes++
	if it.cur >= d {
		return true
	}
	it.probes++
	if it.cl.blockLast(it.blk) < d {
		// Target is past this block: gallop across the block last-doc
		// metadata starting at the next block, then binary-search the
		// bracketed range. No block in between is decoded.
		nb := it.cl.numBlocks()
		lo, step := it.blk+1, 1
		hi := lo
		for hi < nb && it.cl.blockLast(hi) < d {
			it.probes++
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > nb {
			hi = nb
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			it.probes++
			if it.cl.blockLast(mid) < d {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= nb {
			// Exhaust for good: park the block state past the end so a
			// later Next/NextWindow/SkipBlock cannot reload a mid-list
			// block and resurrect the cursor (slice mode stays
			// exhausted forever; the modes must agree).
			it.pos, it.blk, it.blkStart, it.blkLen = it.n, nb, it.n, 0
			return false
		}
		it.loadBlock(lo)
		it.probes++
		if it.cur >= d {
			return true // block entry already positioned the cursor
		}
	}
	// In-window gallop from the cursor (block entry resets it to the
	// block start), then binary search.
	win := it.docBuf[:it.blkLen]
	lo, step := it.pos-it.blkStart+1, 1
	hi := lo
	for hi < len(win) && win[hi] < d {
		it.probes++
		lo = hi + 1
		hi += step
		step <<= 1
	}
	if hi > len(win) {
		hi = len(win)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		it.probes++
		if win[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// The block's last doc is >= d, so lo always lands inside the
	// window.
	it.pos = it.blkStart + lo
	it.cur = win[lo]
	return true
}
