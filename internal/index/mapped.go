package index

import "fmt"

// OpenMapped opens a sealed TPIX file as a disk-resident index: the
// file is memory-mapped (on Linux; elsewhere it is read into the heap
// — see mmap_fallback.go) and decoded through the zero-copy slice
// reader, so every list's packed payload is a view into the mapping
// and pages in on traversal instead of living on the heap. Header,
// dictionary, skip metadata, impact bounds, heads and bloom are
// eagerly decoded and validated exactly as Read does; only the
// per-posting payload verification is skipped (see the codec format
// comment). The returned index is safe for concurrent readers; Close
// releases the mapping once no readers remain.
//
// Pre-v4 files are not memory images — they are fully decoded into
// heap lists and the mapping is released before returning, so
// OpenMapped degrades to Read (plus upgrade) on legacy input.
func OpenMapped(path string) (*Index, error) {
	m, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("index: open mapped: %w", err)
	}
	// The eager metadata walk touches the whole file front to back;
	// tell the kernel so readahead batches the faults, then switch to
	// random for traversal's skippy access pattern.
	m.adviseSequential()
	sr := &sliceReader{data: m.data}
	x, version, err := readIndex(sr, false)
	if err != nil {
		m.Close()
		return nil, err
	}
	if sr.off != len(sr.data) {
		m.Close()
		return nil, fmt.Errorf("index: %d trailing bytes after index image", len(sr.data)-sr.off)
	}
	if version >= codecVersionV4 {
		x.mapped = m
		m.adviseRandom()
	} else {
		// Legacy postings were re-encoded into fresh heap lists above;
		// nothing references the mapping.
		m.Close()
	}
	return x, nil
}
