package index

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"toppriv/internal/textproc"
)

// multiBlockIndex builds an index whose "common" postings list spans
// several compressed blocks with distinct block maxima — including an
// impact spike far from block 0 — so the impact-ordered head is a
// non-trivial permutation. Single-block terms ("sparse", the unique
// fillers) ride along to pin the nil-head path in the same stream.
func multiBlockIndex(t testing.TB) *Index {
	t.Helper()
	texts := make([]string, 300)
	for i := range texts {
		var sb strings.Builder
		// tf cycles 1..5 with a spike late in the list, so the
		// highest-impact block is not the first one.
		tf := i%5 + 1
		if i == 290 {
			tf = 40
		}
		for j := 0; j < tf; j++ {
			sb.WriteString("common ")
		}
		fmt.Fprintf(&sb, "unique%d", i)
		if i%3 == 0 {
			sb.WriteString(" sparse")
		}
		texts[i] = sb.String()
	}
	return buildTestIndex(t, texts...)
}

// assertHeadInvariants checks the structural head invariants the v5
// reader enforces for every term: at most maxHeadBlocks entries,
// every ordinal a valid block index, and no duplicates (a duplicate
// would double-count a block's postings during threshold priming).
// Impact ordering is deliberately not checked here — it depends on
// the float block maxima, which carry no structural invariant a
// corrupted-but-accepted stream must preserve; use
// assertHeadImpactOrdered on pristine indexes.
func assertHeadInvariants(t *testing.T, x *Index) {
	t.Helper()
	for tid := 0; tid < x.NumTerms(); tid++ {
		id := textproc.TermID(tid)
		head := x.HeadOrder(id)
		bs := x.BlockMaxes(id)
		if len(head) > maxHeadBlocks {
			t.Fatalf("term %d: head has %d entries, max %d", tid, len(head), maxHeadBlocks)
		}
		if len(bs) < 2 && head != nil {
			t.Fatalf("term %d: %d-block list has non-nil head %v", tid, len(bs), head)
		}
		for i, ord := range head {
			if ord < 0 || int(ord) >= len(bs) {
				t.Fatalf("term %d: head ordinal %d out of range [0,%d)", tid, ord, len(bs))
			}
			for j := 0; j < i; j++ {
				if head[j] == ord {
					t.Fatalf("term %d: duplicate head ordinal %d", tid, ord)
				}
			}
		}
	}
}

// assertHeadImpactOrdered requires every head's block maxima to be
// non-increasing — the property priming relies on to stop after a
// budget of blocks. Only meaningful on trusted (freshly built or
// cleanly round-tripped) indexes.
func assertHeadImpactOrdered(t *testing.T, x *Index) {
	t.Helper()
	for tid := 0; tid < x.NumTerms(); tid++ {
		id := textproc.TermID(tid)
		head := x.HeadOrder(id)
		bs := x.BlockMaxes(id)
		for i := 1; i < len(head); i++ {
			if bs[head[i]].MaxCos > bs[head[i-1]].MaxCos {
				t.Fatalf("term %d: head not impact-ordered at entry %d", tid, i)
			}
		}
	}
}

// TestBuildComputesHeads pins the head a fresh build derives for a
// list that genuinely spans blocks: it must exist, satisfy every
// structural invariant, and lead with the argmax block — which the
// corpus arranges to not be block 0, so a head that degenerates to
// doc order fails loudly.
func TestBuildComputesHeads(t *testing.T) {
	x := multiBlockIndex(t)
	assertHeadInvariants(t, x)
	assertHeadImpactOrdered(t, x)

	id := x.Vocab().ID("common")
	bs := x.BlockMaxes(id)
	if len(bs) < 2 {
		t.Fatalf("common spans %d blocks, want >= 2", len(bs))
	}
	head := x.HeadOrder(id)
	if len(head) == 0 {
		t.Fatal("multi-block list has no head")
	}
	best := 0
	for b := range bs {
		if bs[b].MaxCos > bs[best].MaxCos {
			best = b
		}
	}
	if int(head[0]) != best {
		t.Fatalf("head[0] = %d, argmax block = %d", head[0], best)
	}
	if best == 0 {
		t.Fatal("corpus regression: argmax block is block 0, head ordering untested")
	}

	if h := x.HeadOrder(x.Vocab().ID("unique0")); h != nil {
		t.Fatalf("single-block list has head %v", h)
	}
}

// TestV5RoundTripPreservesHeads writes a multi-block index and reads
// it back: the persisted heads must match the built ones exactly, and
// the iterator must expose the same view.
func TestV5RoundTripPreservesHeads(t *testing.T) {
	x := multiBlockIndex(t)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertImpactsMatchFresh(t, y, x)
	assertHeadInvariants(t, y)
	assertHeadImpactOrdered(t, y)

	id := y.Vocab().ID("common")
	it := y.Iter(id)
	ho := it.HeadOrder()
	want := y.HeadOrder(id)
	if len(ho) != len(want) {
		t.Fatalf("iterator head %v, index head %v", ho, want)
	}
	for i := range want {
		if ho[i] != want[i] {
			t.Fatalf("iterator head %v, index head %v", ho, want)
		}
	}
}

// TestV5RejectsCorruptHeads writes streams whose head field violates
// each invariant in turn — the writer is driven off a tampered
// in-memory index, so the rest of the stream stays perfectly valid —
// and requires Read to reject every one.
func TestV5RejectsCorruptHeads(t *testing.T) {
	cases := []struct {
		name string
		head []int32
	}{
		{"duplicate ordinal", []int32{1, 1}},
		{"out-of-range ordinal", []int32{99}},
		{"overlong head", make([]int32, maxHeadBlocks+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := multiBlockIndex(t)
			x.heads[x.Vocab().ID("common")] = tc.head
			var buf bytes.Buffer
			if _, err := x.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if _, err := Read(&buf); err == nil {
				t.Fatal("corrupt head accepted")
			}
		})
	}
}

// TestV5CorruptStreamRejected sweeps a multi-block v5 stream — the
// first format with a head/tail boundary inside each list — with
// truncations and single-byte flips: every outcome must be an error or
// a fully valid index whose heads still satisfy the structural
// invariants, never a panic and never a silently broken head.
func TestV5CorruptStreamRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("byte-flip sweep is slow")
	}
	x := multiBlockIndex(t)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	if _, err := Read(bytes.NewReader(orig)); err != nil {
		t.Fatalf("pristine v5 must load: %v", err)
	}
	for cut := 0; cut < len(orig); cut += 13 {
		if _, err := Read(bytes.NewReader(orig[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
	for pos := 8; pos < len(orig); pos += 3 {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0xFF
		y, err := Read(bytes.NewReader(mut))
		if err != nil || y == nil {
			continue
		}
		assertHeadInvariants(t, y)
	}
}
