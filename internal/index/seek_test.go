package index

import (
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
)

// compressedRandomList builds a compressed list of n random postings
// plus the decoded reference.
func compressedRandomList(rng *rand.Rand, n int) (compList, PostingList) {
	pl := randomList(rng, n)
	return encodePostings(pl), pl
}

// TestCompIteratorMatchesSlice walks a compressed iterator against the
// slice reference through every primitive: Next, SeekGE at random
// targets, SkipBlock, and Window consumption.
func TestCompIteratorMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 3, BlockSize - 1, BlockSize, BlockSize + 1, 2 * BlockSize, 5*BlockSize + 17} {
		cl, pl := compressedRandomList(rng, n)
		// Full Next walk.
		it := newCompIterator(&cl, nil, nil)
		for i, p := range pl {
			if !it.Valid() || it.Doc() != p.Doc || it.TF() != p.TF {
				t.Fatalf("n=%d next-walk posting %d mismatch", n, i)
			}
			it.Next()
		}
		if it.Valid() {
			t.Fatalf("n=%d: iterator valid past end", n)
		}
		// Window walk.
		it = newCompIterator(&cl, nil, nil)
		i := 0
		for it.Valid() {
			docs, tfs := it.Window()
			for j := range docs {
				if docs[j] != pl[i].Doc || tfs[j] != pl[i].TF {
					t.Fatalf("n=%d window posting %d mismatch", n, i)
				}
				i++
			}
			if !it.NextWindow() {
				break
			}
		}
		if i != n {
			t.Fatalf("n=%d: windows yielded %d postings", n, i)
		}
		// Random interleaved seeks vs linear scan.
		it = newCompIterator(&cl, nil, nil)
		pos := 0
		for step := 0; step < 60 && pos < n; step++ {
			target := corpus.DocID(rng.Intn(int(pl[n-1].Doc) + 3))
			ok := it.SeekGE(target)
			for pos < n && pl[pos].Doc < target {
				pos++
			}
			if ok != (pos < n) {
				t.Fatalf("n=%d SeekGE(%d): ok=%v scan=%v", n, target, ok, pos < n)
			}
			if !ok {
				break
			}
			if it.Doc() != pl[pos].Doc || it.TF() != pl[pos].TF {
				t.Fatalf("n=%d SeekGE(%d) landed on %d, scan %d", n, target, it.Doc(), pl[pos].Doc)
			}
			if rng.Intn(3) == 0 {
				it.Next()
				pos++
			}
		}
	}
}

// TestSeekAfterSkipProbeCounts is the regression test for the
// seek-after-skip cost: after SkipBlock, a SeekGE to a document inside
// the next few blocks must resume its search from the current block —
// a bounded number of probes per seek, independent of how far into the
// list the cursor is. A search that restarted from the list head would
// grow with the cursor position and trip the budget.
func TestSeekAfterSkipProbeCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const nBlocks = 64
	cl, pl := compressedRandomList(rng, nBlocks*BlockSize)
	blocks := make([]BlockMax, nBlocks)
	it := newCompIterator(&cl, blocks, nil)
	seeks := 0
	for it.Valid() {
		if !it.SkipBlock() {
			break
		}
		// Seek to the middle of the block just entered: the target is
		// at most one block ahead of the cursor.
		mid := pl[it.BlockIndex()*BlockSize+BlockSize/2].Doc
		before := it.SeekProbes()
		if !it.SeekGE(mid) {
			t.Fatal("mid-block seek fell off the list")
		}
		probes := it.SeekProbes() - before
		// Bounded by the in-window binary search (log2 128 = 7) plus a
		// constant number of current-position and block-metadata
		// probes. 16 is generous; restarting from the list head would
		// cost ~log2(position) block probes and grow past it.
		if probes > 16 {
			t.Fatalf("seek-after-skip #%d took %d probes (budget 16) — search no longer resumes from the current block", seeks, probes)
		}
		seeks++
	}
	if seeks < nBlocks/2 {
		t.Fatalf("only %d seek-after-skip iterations exercised", seeks)
	}
}

// BenchmarkSeekAfterSkip is the wall-clock form of the probe-count
// regression test: a SkipBlock→SeekGE stride over a long compressed
// list, the access pattern block-max WAND produces. probes/op is
// reported so the bench record catches cost-model regressions too.
func BenchmarkSeekAfterSkip(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	const nBlocks = 256
	cl, pl := compressedRandomList(rng, nBlocks*BlockSize)
	blocks := make([]BlockMax, nBlocks)
	b.ReportAllocs()
	b.ResetTimer()
	probes := 0
	for i := 0; i < b.N; i++ {
		it := newCompIterator(&cl, blocks, nil)
		for it.Valid() {
			if !it.SkipBlock() {
				break
			}
			bi := it.BlockIndex()
			if !it.SeekGE(pl[bi*BlockSize+BlockSize/2].Doc) {
				break
			}
		}
		probes = it.SeekProbes()
	}
	b.ReportMetric(float64(probes)/nBlocks, "probes/seek")
}

// BenchmarkDecodeTraversal measures raw block-decode throughput: a
// full Window walk over a long compressed list (every doc and tf
// decoded), and a skip walk that touches only block metadata — the
// gap between them is the decode work block-max WAND saves on long
// lists.
func BenchmarkDecodeTraversal(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	const nBlocks = 256
	cl, pl := compressedRandomList(rng, nBlocks*BlockSize)
	blocks := make([]BlockMax, nBlocks)
	b.Run("full", func(b *testing.B) {
		b.SetBytes(int64(cl.n) * 8)
		sum := int64(0)
		for i := 0; i < b.N; i++ {
			it := newCompIterator(&cl, blocks, nil)
			for it.Valid() {
				docs, tfs := it.Window()
				for j := range docs {
					sum += int64(docs[j]) + int64(tfs[j])
				}
				if !it.NextWindow() {
					break
				}
			}
		}
		_ = sum
	})
	b.Run("skip", func(b *testing.B) {
		// Stride-4 seeks: three of every four blocks are crossed on
		// their last-doc metadata alone and never decoded.
		b.SetBytes(int64(cl.n) * 8)
		for i := 0; i < b.N; i++ {
			it := newCompIterator(&cl, blocks, nil)
			for it.Valid() {
				next := (it.BlockIndex() + 4) * BlockSize
				if next >= int(cl.n) {
					break
				}
				if !it.SeekGE(pl[next].Doc) {
					break
				}
			}
		}
	})
}

// TestSkipBlockAlignedListLength pins the boundary where a slice-mode
// list's length is an exact multiple of BlockSize: skipping out of the
// final block must exhaust cleanly (it used to read one past the end).
func TestSkipBlockAlignedListLength(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, nb := range []int{1, 2, 3} {
		pl := randomList(rng, nb*BlockSize)
		blocks := make([]BlockMax, nb)
		it := pl.IterBlocks(blocks)
		for b := 0; b < nb-1; b++ {
			if !it.SkipBlock() {
				t.Fatalf("nb=%d: exhausted after %d skips", nb, b+1)
			}
		}
		if it.SkipBlock() {
			t.Fatalf("nb=%d: skip out of the final block must exhaust", nb)
		}
		if it.Valid() {
			t.Fatalf("nb=%d: iterator valid after exhausting skip", nb)
		}
	}
}

// TestCompIteratorStaysExhausted: once any operation exhausts a
// compressed iterator — including a SeekGE past the last document
// from an early block — every further operation must keep it
// exhausted, exactly like slice mode. A stale block pointer used to
// let Next reload a mid-list block and walk the cursor backwards.
func TestCompIteratorStaysExhausted(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	cl, pl := compressedRandomList(rng, 4*BlockSize)
	it := newCompIterator(&cl, nil, nil)
	if it.SeekGE(pl[len(pl)-1].Doc + 1) {
		t.Fatal("seek past the last doc must exhaust")
	}
	for step := 0; step < 3; step++ {
		if it.Next() || it.Valid() {
			t.Fatalf("step %d: Next resurrected an exhausted iterator", step)
		}
	}
	if it.NextWindow() || it.SeekGE(0) || it.Valid() {
		t.Fatal("exhausted iterator came back to life")
	}
}
