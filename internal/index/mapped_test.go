package index

import (
	"os"
	"path/filepath"
	"testing"

	"toppriv/internal/textproc"
)

// writeTempTPIX serializes x into a fresh temp file and returns its
// path.
func writeTempTPIX(t *testing.T, x *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seg.tpix")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenMappedMatchesRead is the mapped path's core guarantee: an
// index opened through OpenMapped is indistinguishable — postings,
// impact metadata, heads, bloom — from the same file read through
// Read. Only the residency differs.
func TestOpenMappedMatchesRead(t *testing.T) {
	for _, x := range []*Index{fixtureIndex(t), multiBlockIndex(t)} {
		path := writeTempTPIX(t, x)
		m, err := OpenMapped(path)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Mapped() {
			t.Fatal("current-format OpenMapped must report Mapped")
		}
		assertImpactsMatchFresh(t, m, x)
		if !m.Bloom().MayContain(x.Vocab().Term(0)) {
			t.Fatal("mapped bloom lost a dictionary term")
		}
		ms, xs := m.ComputeStats(), x.ComputeStats()
		if ms.PostingsBytes != xs.PostingsBytes {
			t.Fatalf("PostingsBytes %d vs %d", ms.PostingsBytes, xs.PostingsBytes)
		}
		if ms.ResidentBytes > ms.PostingsBytes {
			t.Fatalf("ResidentBytes %d exceeds PostingsBytes %d", ms.ResidentBytes, ms.PostingsBytes)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal("second Close must be a no-op, got", err)
		}
	}
}

// TestOpenMappedLegacy feeds a v3 (pre-memory-image) file through
// OpenMapped: legacy postings are re-encoded onto the heap, the
// mapping is released, and the result must equal a fresh build.
func TestOpenMappedLegacy(t *testing.T) {
	x := fixtureIndex(t)
	path := filepath.Join(t.TempDir(), "v3.tpix")
	if err := os.WriteFile(path, writeLegacy(t, codecVersionV3, x), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mapped() {
		t.Fatal("legacy file must not stay mapped: its lists are heap re-encodings")
	}
	assertImpactsMatchFresh(t, m, x)
}

// TestOpenMappedRejectsCorrupt mirrors TestV4CorruptBlocksRejected for
// the mapped open path. Structural damage — truncation anywhere,
// flips in headers, skip metadata, heads, bloom — must error, never
// panic. Flips inside packed payload bytes MAY be accepted (the mapped
// path skips per-posting verification by design); accepted indexes
// must still traverse without panicking and yield exactly the declared
// posting count per list, because block headers and offsets are always
// validated.
func TestOpenMappedRejectsCorrupt(t *testing.T) {
	x := buildTestIndex(t,
		"apache helicopter army weapons apache helicopter apache",
		"stock market investors trading volume stock",
		"apache webserver software configuration",
		"cooking recipes kitchen dinner helicopter",
	)
	path := writeTempTPIX(t, x)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(data []byte) string {
		p := filepath.Join(dir, "mut.tpix")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := OpenMapped(write(orig)); err != nil {
		t.Fatalf("pristine file must open mapped: %v", err)
	}
	// Truncation at every sampled prefix must error.
	for cut := 0; cut < len(orig); cut += 7 {
		if _, err := OpenMapped(write(orig[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
	// Trailing garbage must error too — a mapped image is consumed
	// exactly; leftover bytes mean the file is not one index.
	if _, err := OpenMapped(write(append(append([]byte(nil), orig...), 0xAB, 0xCD))); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Single-byte flips: error or a traversable index with the declared
	// posting counts.
	for pos := 8; pos < len(orig); pos++ {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0xFF
		y, err := OpenMapped(write(mut))
		if err != nil || y == nil {
			continue
		}
		for tid := 0; tid < y.NumTerms(); tid++ {
			n := 0
			for it := y.Iter(textproc.TermID(tid)); it.Valid(); it.Next() {
				_ = it.Doc()
				_ = it.TF()
				n++
			}
			if n != y.DocFreq(textproc.TermID(tid)) {
				t.Fatalf("byte %d flipped: term %d yields %d postings, declared %d",
					pos, tid, n, y.DocFreq(textproc.TermID(tid)))
			}
		}
	}
}

// TestOpenMappedMissingFile: opening a nonexistent path errors cleanly.
func TestOpenMappedMissingFile(t *testing.T) {
	if _, err := OpenMapped(filepath.Join(t.TempDir(), "nope.tpix")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestOpenMappedIterators traverses every list of a mapped multi-block
// index — forward and via SeekTo — and requires exact agreement with
// the decoded reference, proving decode-on-traversal works unchanged
// over mapped payload views.
func TestOpenMappedIterators(t *testing.T) {
	x := multiBlockIndex(t)
	m, err := OpenMapped(writeTempTPIX(t, x))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for tid := 0; tid < x.NumTerms(); tid++ {
		want := x.Postings(textproc.TermID(tid))
		it := m.Iter(textproc.TermID(tid))
		for i, p := range want {
			if !it.Valid() || it.Doc() != p.Doc || it.TF() != p.TF {
				t.Fatalf("term %d posting %d: got (%d,%d,%v), want %v",
					tid, i, it.Doc(), it.TF(), it.Valid(), p)
			}
			it.Next()
		}
		if it.Valid() {
			t.Fatalf("term %d: iterator runs past the end", tid)
		}
		// Seek to every other posting from a fresh iterator.
		for i := 0; i < len(want); i += 2 {
			it := m.Iter(textproc.TermID(tid))
			if !it.SeekGE(want[i].Doc) || it.Doc() != want[i].Doc {
				t.Fatalf("term %d: SeekGE(%d) landed on (%d,%v)", tid, want[i].Doc, it.Doc(), it.Valid())
			}
		}
	}
}
