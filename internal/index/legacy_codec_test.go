package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// writeLegacy serializes x in a historical TPIX layout: version 1
// (postings only), version 2 (postings plus term-level impact
// metadata, no blocks), version 3 (postings plus per-block impact
// metadata, uncompressed varint-delta lists), version 4
// (block-compressed lists plus per-block metadata, no impact-ordered
// head), or version 5 (v4 plus persisted heads, no trailing term
// bloom). It exists so the upgrade paths can be tested against freshly
// produced legacy bytes, and so the checked-in fixtures can be
// regenerated (TestRegenerateLegacyFixtures).
func writeLegacy(t *testing.T, version uint32, x *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	vb := make([]byte, binary.MaxVarintLen64)
	wu := func(v uint64) {
		n := binary.PutUvarint(vb, v)
		w.Write(vb[:n])
	}
	wf := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		w.Write(b[:])
	}
	w.WriteString(codecMagic)
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], version)
	w.Write(ver[:])
	wu(uint64(x.numDocs))
	wu(uint64(x.NumTerms()))
	for id := 0; id < x.NumTerms(); id++ {
		term := x.vocab.Term(textproc.TermID(id))
		wu(uint64(len(term)))
		w.WriteString(term)
		pl := x.Postings(textproc.TermID(id))
		wu(uint64(len(pl)))
		if version == codecVersionV4 || version == codecVersionV5 {
			// v4/v5 list layout: raw block bytes plus per-block last-doc
			// deltas and impact triples; v5 adds the persisted head.
			if len(pl) == 0 {
				continue
			}
			cl := &x.lists[id]
			wu(uint64(len(cl.data)))
			w.Write(cl.data)
			prevLast := corpus.DocID(-1)
			for b, bm := range x.blocks[id] {
				last := cl.blockLast(b)
				wu(uint64(last - prevLast))
				prevLast = last
				wu(uint64(bm.MaxTF))
				wf(bm.MaxCos)
				wf(bm.MaxBM)
			}
			if version == codecVersionV5 {
				head := x.heads[id]
				wu(uint64(len(head)))
				for _, ord := range head {
					wu(uint64(ord))
				}
			}
			continue
		}
		prev := corpus.DocID(0)
		for _, p := range pl {
			wu(uint64(p.Doc - prev))
			prev = p.Doc
			wu(uint64(p.TF))
		}
		if version == codecVersionV2 {
			wu(uint64(x.maxTF[id]))
			wf(x.maxCos[id])
			wf(x.maxBM[id])
		}
		if version == codecVersionV3 {
			for _, bm := range x.BlockMaxes(textproc.TermID(id)) {
				wu(uint64(bm.MaxTF))
				wf(bm.MaxCos)
				wf(bm.MaxBM)
			}
		}
	}
	for _, dl := range x.docLen {
		wu(uint64(dl))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fixtureIndex is the corpus behind testdata/v2.tpix (stemming off,
// matching buildTestIndex).
func fixtureIndex(t *testing.T) *Index {
	t.Helper()
	return buildTestIndex(t,
		"apache helicopter army weapons apache helicopter apache",
		"stock market investors trading volume stock",
		"apache webserver software configuration",
		"cooking recipes kitchen dinner helicopter",
	)
}

// TestRegenerateLegacyFixtures rewrites testdata/v2.tpix through
// testdata/v5.tpix when TPIX_WRITE_FIXTURES is set; normally it only
// checks the checked-in bytes still match what writeLegacy produces
// for the fixture corpus. (testdata/v1.tpix predates this helper and
// is left untouched — it pins the historical writer's bytes, not this
// reconstruction.)
func TestRegenerateLegacyFixtures(t *testing.T) {
	for _, fx := range []struct {
		version uint32
		path    string
	}{
		{codecVersionV2, "testdata/v2.tpix"},
		{codecVersionV3, "testdata/v3.tpix"},
		{codecVersionV4, "testdata/v4.tpix"},
		{codecVersionV5, "testdata/v5.tpix"},
	} {
		want := writeLegacy(t, fx.version, fixtureIndex(t))
		if os.Getenv("TPIX_WRITE_FIXTURES") != "" {
			if err := os.WriteFile(fx.path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", fx.path, len(want))
			continue
		}
		got, err := os.ReadFile(fx.path)
		if err != nil {
			t.Fatalf("%v (run with TPIX_WRITE_FIXTURES=1 to generate)", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s drifted from writeLegacy output (%d vs %d bytes)", fx.path, len(got), len(want))
		}
	}
}

// TestReadV2Fixture loads the checked-in v2-format TPIX file and
// checks the postings round-trip and that both term-level and
// per-block impact metadata are available after load — the v2→v3
// upgrade path. If this breaks, v2 files in the field stopped loading.
func TestReadV2Fixture(t *testing.T) {
	f, err := os.Open("testdata/v2.tpix")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x, err := Read(f)
	if err != nil {
		t.Fatalf("v2 fixture must load: %v", err)
	}
	if x.NumDocs() != 4 {
		t.Fatalf("fixture NumDocs = %d, want 4", x.NumDocs())
	}
	pl := x.PostingsByTerm("apache")
	if len(pl) != 2 || pl[0].Doc != 0 || pl[0].TF != 3 || pl[1].Doc != 2 || pl[1].TF != 1 {
		t.Fatalf("apache postings = %v", pl)
	}
	assertImpactsMatchFresh(t, x, fixtureIndex(t))
}

// TestLegacyUpgradeRoundTrip writes v1 through v5 bytes for a fresh
// index, reads them back, and requires the upgraded in-memory form —
// postings, term-level impacts, per-block bounds, and impact-ordered
// heads — to match the original bit-for-bit; then a v6 round-trip of
// the upgraded index must preserve everything again.
func TestLegacyUpgradeRoundTrip(t *testing.T) {
	for _, x := range []*Index{fixtureIndex(t), multiBlockIndex(t)} {
		for _, version := range []uint32{codecVersionV1, codecVersionV2, codecVersionV3, codecVersionV4, codecVersionV5} {
			y, err := Read(bytes.NewReader(writeLegacy(t, version, x)))
			if err != nil {
				t.Fatalf("v%d: %v", version, err)
			}
			assertImpactsMatchFresh(t, y, x)
			var buf bytes.Buffer
			if _, err := y.WriteTo(&buf); err != nil {
				t.Fatalf("v%d→v6 write: %v", version, err)
			}
			z, err := Read(&buf)
			if err != nil {
				t.Fatalf("v%d→v6 read: %v", version, err)
			}
			assertImpactsMatchFresh(t, z, x)
		}
	}
}

// TestReadV4Fixture loads the checked-in v4-format TPIX file
// (block-compressed lists and per-block metadata, no head table) and
// checks the postings load and the impact-ordered heads are derived on
// upgrade exactly as a fresh build computes them — the v4→v5 path. If
// this breaks, v4 files in the field stopped loading.
func TestReadV4Fixture(t *testing.T) {
	f, err := os.Open("testdata/v4.tpix")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x, err := Read(f)
	if err != nil {
		t.Fatalf("v4 fixture must load: %v", err)
	}
	if x.NumDocs() != 4 {
		t.Fatalf("fixture NumDocs = %d, want 4", x.NumDocs())
	}
	pl := x.PostingsByTerm("apache")
	if len(pl) != 2 || pl[0].Doc != 0 || pl[0].TF != 3 || pl[1].Doc != 2 || pl[1].TF != 1 {
		t.Fatalf("apache postings = %v", pl)
	}
	assertImpactsMatchFresh(t, x, fixtureIndex(t))
}

// TestReadV5Fixture loads the checked-in v5-format TPIX file
// (block-compressed lists, per-block metadata, persisted heads, no
// trailing bloom) and checks postings and impact metadata survive and
// the term bloom is derived from the dictionary on demand — the v5→v6
// path. If this breaks, v5 files in the field stopped loading.
func TestReadV5Fixture(t *testing.T) {
	f, err := os.Open("testdata/v5.tpix")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x, err := Read(f)
	if err != nil {
		t.Fatalf("v5 fixture must load: %v", err)
	}
	if x.NumDocs() != 4 {
		t.Fatalf("fixture NumDocs = %d, want 4", x.NumDocs())
	}
	pl := x.PostingsByTerm("apache")
	if len(pl) != 2 || pl[0].Doc != 0 || pl[0].TF != 3 || pl[1].Doc != 2 || pl[1].TF != 1 {
		t.Fatalf("apache postings = %v", pl)
	}
	assertImpactsMatchFresh(t, x, fixtureIndex(t))
	if !x.Bloom().MayContain("apache") {
		t.Fatal("derived bloom must contain every dictionary term")
	}
}

// TestReadV3Fixture loads the checked-in v3-format TPIX file
// (uncompressed varint-delta postings plus per-block impact metadata)
// and checks the postings and metadata survive the upgrade to the
// block-compressed in-memory form — the v3→v4 path. If this breaks,
// v3 files in the field stopped loading.
func TestReadV3Fixture(t *testing.T) {
	f, err := os.Open("testdata/v3.tpix")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x, err := Read(f)
	if err != nil {
		t.Fatalf("v3 fixture must load: %v", err)
	}
	if x.NumDocs() != 4 {
		t.Fatalf("fixture NumDocs = %d, want 4", x.NumDocs())
	}
	pl := x.PostingsByTerm("apache")
	if len(pl) != 2 || pl[0].Doc != 0 || pl[0].TF != 3 || pl[1].Doc != 2 || pl[1].TF != 1 {
		t.Fatalf("apache postings = %v", pl)
	}
	assertImpactsMatchFresh(t, x, fixtureIndex(t))
}

// assertImpactsMatchFresh compares got's postings and impact metadata
// — term-level and per-block — against a freshly built reference.
func assertImpactsMatchFresh(t *testing.T, got, want *Index) {
	t.Helper()
	if got.NumDocs() != want.NumDocs() || got.NumTerms() != want.NumTerms() {
		t.Fatalf("shape: %d/%d docs, %d/%d terms",
			got.NumDocs(), want.NumDocs(), got.NumTerms(), want.NumTerms())
	}
	for tid := 0; tid < want.NumTerms(); tid++ {
		term := want.Vocab().Term(textproc.TermID(tid))
		gid := got.Vocab().ID(term)
		wpl, gpl := want.Postings(textproc.TermID(tid)), got.Postings(gid)
		if len(wpl) != len(gpl) {
			t.Fatalf("term %q: %d vs %d postings", term, len(gpl), len(wpl))
		}
		for i := range wpl {
			if wpl[i] != gpl[i] {
				t.Fatalf("term %q posting %d: %v vs %v", term, i, gpl[i], wpl[i])
			}
		}
		if got.MaxTF(gid) != want.MaxTF(textproc.TermID(tid)) {
			t.Errorf("term %q: MaxTF %d vs %d", term, got.MaxTF(gid), want.MaxTF(textproc.TermID(tid)))
		}
		if math.Float64bits(got.MaxCosImpact(gid)) != math.Float64bits(want.MaxCosImpact(textproc.TermID(tid))) {
			t.Errorf("term %q: MaxCosImpact differs", term)
		}
		if math.Float64bits(got.MaxBM25Impact(gid)) != math.Float64bits(want.MaxBM25Impact(textproc.TermID(tid))) {
			t.Errorf("term %q: MaxBM25Impact differs", term)
		}
		gb, wb := got.BlockMaxes(gid), want.BlockMaxes(textproc.TermID(tid))
		if len(gb) != len(wb) {
			t.Fatalf("term %q: %d vs %d blocks", term, len(gb), len(wb))
		}
		for b := range wb {
			if gb[b].MaxTF != wb[b].MaxTF ||
				math.Float64bits(gb[b].MaxCos) != math.Float64bits(wb[b].MaxCos) ||
				math.Float64bits(gb[b].MaxBM) != math.Float64bits(wb[b].MaxBM) {
				t.Errorf("term %q block %d: %+v vs %+v", term, b, gb[b], wb[b])
			}
		}
		gh, wh := got.HeadOrder(gid), want.HeadOrder(textproc.TermID(tid))
		if len(gh) != len(wh) {
			t.Fatalf("term %q: head %v vs %v", term, gh, wh)
		}
		for i := range wh {
			if gh[i] != wh[i] {
				t.Errorf("term %q head entry %d: %d vs %d", term, i, gh[i], wh[i])
			}
		}
	}
}
