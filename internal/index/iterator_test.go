package index

import (
	"math"
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

func buildTestIndex(t *testing.T, texts ...string) *Index {
	t.Helper()
	docs := make([]corpus.Document, len(texts))
	for i, text := range texts {
		docs[i] = corpus.Document{Text: text}
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false))
	c, err := corpus.Build(docs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func randomList(rng *rand.Rand, n int) PostingList {
	pl := make(PostingList, 0, n)
	doc := corpus.DocID(0)
	for i := 0; i < n; i++ {
		doc += corpus.DocID(1 + rng.Intn(7))
		pl = append(pl, Posting{Doc: doc, TF: int32(1 + rng.Intn(5))})
	}
	return pl
}

func TestIteratorNextWalksWholeList(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pl := randomList(rng, 40)
	it := pl.Iter()
	for i, p := range pl {
		if !it.Valid() {
			t.Fatalf("iterator exhausted at %d/%d", i, len(pl))
		}
		if it.Doc() != p.Doc || it.TF() != p.TF {
			t.Fatalf("posting %d: got (%d,%d), want (%d,%d)", i, it.Doc(), it.TF(), p.Doc, p.TF)
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("iterator valid past the end")
	}
}

func TestIteratorEmptyList(t *testing.T) {
	it := PostingList(nil).Iter()
	if it.Valid() {
		t.Fatal("empty list iterator should be invalid")
	}
	if it.SeekGE(0) {
		t.Fatal("SeekGE on empty list should report false")
	}
	if it.Next() {
		t.Fatal("Next on empty list should report false")
	}
}

// TestIteratorSeekGEMatchesLinearScan cross-checks SeekGE (gallop +
// binary search) against a straightforward linear scan, including
// seeks backwards (no-ops), to present docs, to gaps, and past the end.
func TestIteratorSeekGEMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		pl := randomList(rng, 1+rng.Intn(60))
		it := pl.Iter()
		pos := 0
		for step := 0; step < 30; step++ {
			target := corpus.DocID(rng.Intn(int(pl[len(pl)-1].Doc) + 3))
			ok := it.SeekGE(target)
			// Reference: advance pos, never backwards.
			for pos < len(pl) && pl[pos].Doc < target {
				pos++
			}
			if ok != (pos < len(pl)) {
				t.Fatalf("trial %d: SeekGE(%d) = %v, scan says %v", trial, target, ok, pos < len(pl))
			}
			if ok && it.Doc() != pl[pos].Doc {
				t.Fatalf("trial %d: SeekGE(%d) landed on %d, scan on %d", trial, target, it.Doc(), pl[pos].Doc)
			}
			if !ok {
				break
			}
			// Occasionally interleave Next with seeks.
			if rng.Intn(3) == 0 {
				it.Next()
				pos++
			}
		}
	}
}

// TestImpactMetadata verifies Build's per-term maxima against a brute
// recomputation from postings and document norms.
func TestImpactMetadata(t *testing.T) {
	idx := buildTestIndex(t,
		"apache helicopter army weapons apache helicopter apache",
		"stock market investors trading volume stock",
		"apache webserver software configuration",
		"cooking recipes kitchen dinner helicopter",
	)
	norms := make([]float64, idx.NumDocs())
	for tid := 0; tid < idx.NumTerms(); tid++ {
		for _, p := range idx.postings[tid] {
			w := 1 + math.Log(float64(p.TF))
			norms[p.Doc] += w * w
		}
	}
	for d := range norms {
		norms[d] = math.Sqrt(norms[d])
	}
	for tid := 0; tid < idx.NumTerms(); tid++ {
		var wantTF int32
		wantCos := 0.0
		for _, p := range idx.postings[tid] {
			if p.TF > wantTF {
				wantTF = p.TF
			}
			if c := (1 + math.Log(float64(p.TF))) / norms[p.Doc]; c > wantCos {
				wantCos = c
			}
		}
		id := textproc.TermID(tid)
		if got := idx.MaxTF(id); got != wantTF {
			t.Errorf("term %d: MaxTF = %d, want %d", tid, got, wantTF)
		}
		if got := idx.MaxCosImpact(id); math.Abs(got-wantCos) > 1e-15 {
			t.Errorf("term %d: MaxCosImpact = %v, want %v", tid, got, wantCos)
		}
		if got, want := idx.MaxBM25Impact(id), BM25TFBound(wantTF); math.Abs(got-want) > 1e-15 {
			t.Errorf("term %d: MaxBM25Impact = %v, want %v", tid, got, want)
		}
	}
	// Out-of-range IDs answer zero, like Postings.
	if idx.MaxTF(-1) != 0 || idx.MaxCosImpact(-1) != 0 || idx.MaxBM25Impact(9999) != 0 {
		t.Error("out-of-range term IDs must report zero impact")
	}
}

// TestBM25TFBoundDominates checks the length-free bound against the
// true saturation factor across tf, dl, and avgdl combinations.
func TestBM25TFBoundDominates(t *testing.T) {
	for tf := int32(1); tf <= 40; tf += 3 {
		bound := BM25TFBound(tf)
		for _, dl := range []float64{1, 10, 100, 1000} {
			for _, avg := range []float64{5, 50, 500} {
				sat := float64(tf) * (BM25K1 + 1) / (float64(tf) + BM25K1*(1-BM25B+BM25B*dl/avg))
				if sat > bound+1e-12 {
					t.Fatalf("tf=%d dl=%v avg=%v: sat %v exceeds bound %v", tf, dl, avg, sat, bound)
				}
			}
		}
	}
}
