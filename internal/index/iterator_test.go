package index

import (
	"math"
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

func buildTestIndex(t testing.TB, texts ...string) *Index {
	t.Helper()
	docs := make([]corpus.Document, len(texts))
	for i, text := range texts {
		docs[i] = corpus.Document{Text: text}
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false))
	c, err := corpus.Build(docs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func randomList(rng *rand.Rand, n int) PostingList {
	pl := make(PostingList, 0, n)
	doc := corpus.DocID(0)
	for i := 0; i < n; i++ {
		doc += corpus.DocID(1 + rng.Intn(7))
		pl = append(pl, Posting{Doc: doc, TF: int32(1 + rng.Intn(5))})
	}
	return pl
}

func TestIteratorNextWalksWholeList(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pl := randomList(rng, 40)
	it := pl.Iter()
	for i, p := range pl {
		if !it.Valid() {
			t.Fatalf("iterator exhausted at %d/%d", i, len(pl))
		}
		if it.Doc() != p.Doc || it.TF() != p.TF {
			t.Fatalf("posting %d: got (%d,%d), want (%d,%d)", i, it.Doc(), it.TF(), p.Doc, p.TF)
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("iterator valid past the end")
	}
}

func TestIteratorEmptyList(t *testing.T) {
	it := PostingList(nil).Iter()
	if it.Valid() {
		t.Fatal("empty list iterator should be invalid")
	}
	if it.SeekGE(0) {
		t.Fatal("SeekGE on empty list should report false")
	}
	if it.Next() {
		t.Fatal("Next on empty list should report false")
	}
}

// TestIteratorSeekGEMatchesLinearScan cross-checks SeekGE (gallop +
// binary search) against a straightforward linear scan, including
// seeks backwards (no-ops), to present docs, to gaps, and past the end.
func TestIteratorSeekGEMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		pl := randomList(rng, 1+rng.Intn(60))
		it := pl.Iter()
		pos := 0
		for step := 0; step < 30; step++ {
			target := corpus.DocID(rng.Intn(int(pl[len(pl)-1].Doc) + 3))
			ok := it.SeekGE(target)
			// Reference: advance pos, never backwards.
			for pos < len(pl) && pl[pos].Doc < target {
				pos++
			}
			if ok != (pos < len(pl)) {
				t.Fatalf("trial %d: SeekGE(%d) = %v, scan says %v", trial, target, ok, pos < len(pl))
			}
			if ok && it.Doc() != pl[pos].Doc {
				t.Fatalf("trial %d: SeekGE(%d) landed on %d, scan on %d", trial, target, it.Doc(), pl[pos].Doc)
			}
			if !ok {
				break
			}
			// Occasionally interleave Next with seeks.
			if rng.Intn(3) == 0 {
				it.Next()
				pos++
			}
		}
	}
}

// blockedList builds a posting list of n postings with its per-block
// maxima computed the brute way (uniform norms keep MaxCos simple to
// cross-check; the engine-facing block math is covered by the vsm
// property tests).
func blockedList(rng *rand.Rand, n int) (PostingList, []BlockMax) {
	pl := randomList(rng, n)
	var blocks []BlockMax
	for start := 0; start < len(pl); start += BlockSize {
		end := start + BlockSize
		if end > len(pl) {
			end = len(pl)
		}
		var bm BlockMax
		for _, p := range pl[start:end] {
			if p.TF > bm.MaxTF {
				bm.MaxTF = p.TF
			}
		}
		bm.MaxBM = BM25TFBound(bm.MaxTF)
		blocks = append(blocks, bm)
	}
	return pl, blocks
}

// TestIteratorSeekGEBlockBoundaries pins SeekGE behaviour at the exact
// edges of the block structure: targets equal to the first and last
// document of each block, a list whose length is an exact multiple of
// BlockSize (no partial final block), a list with a one-posting final
// partial block, and a single-block list.
func TestIteratorSeekGEBlockBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, BlockSize - 1, BlockSize, BlockSize + 1, 2 * BlockSize, 2*BlockSize + 1, 3*BlockSize - 1} {
		pl, blocks := blockedList(rng, n)
		wantBlocks := (n + BlockSize - 1) / BlockSize
		if len(blocks) != wantBlocks {
			t.Fatalf("n=%d: %d blocks, want %d", n, len(blocks), wantBlocks)
		}
		for b := 0; b < wantBlocks; b++ {
			first := pl[b*BlockSize].Doc
			lastPos := (b+1)*BlockSize - 1
			if lastPos >= n {
				lastPos = n - 1
			}
			last := pl[lastPos].Doc
			for _, target := range []corpus.DocID{first, last, first - 1, last + 1} {
				it := pl.IterBlocks(blocks)
				ok := it.SeekGE(target)
				pos := 0
				for pos < n && pl[pos].Doc < target {
					pos++
				}
				if ok != (pos < n) {
					t.Fatalf("n=%d block %d: SeekGE(%d) = %v, scan says %v", n, b, target, ok, pos < n)
				}
				if ok && it.Doc() != pl[pos].Doc {
					t.Fatalf("n=%d block %d: SeekGE(%d) landed on %d, scan on %d", n, b, target, it.Doc(), pl[pos].Doc)
				}
				if ok && it.BlockMax() != blocks[pos/BlockSize] {
					t.Fatalf("n=%d: BlockMax at pos %d wrong", n, pos)
				}
			}
			// Seeking to exactly the last doc of a block then advancing
			// must cross into the next block (or exhaust).
			it := pl.IterBlocks(blocks)
			it.SeekGE(last)
			hadNext := it.Next()
			if want := lastPos+1 < n; hadNext != want {
				t.Fatalf("n=%d block %d: Next past block-last = %v, want %v", n, b, hadNext, want)
			}
		}
	}
}

// TestIteratorSkipBlock checks SkipBlock against the block layout:
// each skip lands on the next block's first posting, the final skip
// exhausts, and a blockless iterator treats the whole list as one
// block.
func TestIteratorSkipBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pl, blocks := blockedList(rng, 2*BlockSize+17)
	it := pl.IterBlocks(blocks)
	if !it.HasBlocks() {
		t.Fatal("IterBlocks iterator must report HasBlocks")
	}
	for b := 0; b < len(blocks); b++ {
		if got, want := it.BlockMax(), blocks[b]; got != want {
			t.Fatalf("block %d: BlockMax = %+v, want %+v", b, got, want)
		}
		lastPos := (b+1)*BlockSize - 1
		if lastPos >= len(pl) {
			lastPos = len(pl) - 1
		}
		if got, want := it.BlockLastDoc(), pl[lastPos].Doc; got != want {
			t.Fatalf("block %d: BlockLastDoc = %d, want %d", b, got, want)
		}
		ok := it.SkipBlock()
		if want := b+1 < len(blocks); ok != want {
			t.Fatalf("block %d: SkipBlock = %v, want %v", b, ok, want)
		}
		if ok && it.Doc() != pl[(b+1)*BlockSize].Doc {
			t.Fatalf("block %d: SkipBlock landed on doc %d, want %d", b, it.Doc(), pl[(b+1)*BlockSize].Doc)
		}
	}
	// Mid-block skip: position inside block 0, skip must still land on
	// block 1's first posting.
	it = pl.IterBlocks(blocks)
	it.SeekGE(pl[BlockSize/2].Doc)
	if !it.SkipBlock() || it.Doc() != pl[BlockSize].Doc {
		t.Fatalf("mid-block SkipBlock landed on %d, want %d", it.Doc(), pl[BlockSize].Doc)
	}
	// Blockless iterator: one implicit block spanning the list.
	plain := pl.Iter()
	if plain.HasBlocks() {
		t.Fatal("plain iterator must not report blocks")
	}
	if got, want := plain.BlockLastDoc(), pl[len(pl)-1].Doc; got != want {
		t.Fatalf("plain BlockLastDoc = %d, want %d", got, want)
	}
	if plain.SkipBlock() || plain.Valid() {
		t.Fatal("plain SkipBlock must exhaust the iterator")
	}
}

// TestBuildBlockMaxes cross-checks Build's per-block metadata against
// a brute recomputation over each block's postings, and the term-level
// maxima against the maxima over blocks.
func TestBuildBlockMaxes(t *testing.T) {
	idx := buildTestIndex(t,
		"apache helicopter army weapons apache helicopter apache",
		"stock market investors trading volume stock",
		"apache webserver software configuration",
		"cooking recipes kitchen dinner helicopter",
	)
	norms := make([]float64, idx.NumDocs())
	for tid := 0; tid < idx.NumTerms(); tid++ {
		for _, p := range idx.Postings(textproc.TermID(tid)) {
			w := 1 + math.Log(float64(p.TF))
			norms[p.Doc] += w * w
		}
	}
	for d := range norms {
		norms[d] = math.Sqrt(norms[d])
	}
	for tid := 0; tid < idx.NumTerms(); tid++ {
		id := textproc.TermID(tid)
		pl := idx.Postings(id)
		blocks := idx.BlockMaxes(id)
		if want := (len(pl) + BlockSize - 1) / BlockSize; len(blocks) != want {
			t.Fatalf("term %d: %d blocks for %d postings", tid, len(blocks), len(pl))
		}
		var mtf int32
		mcos := 0.0
		for b, bm := range blocks {
			start, end := b*BlockSize, (b+1)*BlockSize
			if end > len(pl) {
				end = len(pl)
			}
			var wantTF int32
			wantCos := 0.0
			for _, p := range pl[start:end] {
				if p.TF > wantTF {
					wantTF = p.TF
				}
				if c := (1 + math.Log(float64(p.TF))) / norms[p.Doc]; c > wantCos {
					wantCos = c
				}
			}
			if bm.MaxTF != wantTF {
				t.Errorf("term %d block %d: MaxTF = %d, want %d", tid, b, bm.MaxTF, wantTF)
			}
			if math.Abs(bm.MaxCos-wantCos) > 1e-15 {
				t.Errorf("term %d block %d: MaxCos = %v, want %v", tid, b, bm.MaxCos, wantCos)
			}
			if got, want := bm.MaxBM, BM25TFBound(wantTF); math.Abs(got-want) > 1e-15 {
				t.Errorf("term %d block %d: MaxBM = %v, want %v", tid, b, got, want)
			}
			if bm.MaxTF > mtf {
				mtf = bm.MaxTF
			}
			if bm.MaxCos > mcos {
				mcos = bm.MaxCos
			}
		}
		if idx.MaxTF(id) != mtf {
			t.Errorf("term %d: term-level MaxTF %d != max over blocks %d", tid, idx.MaxTF(id), mtf)
		}
		if idx.MaxCosImpact(id) != mcos {
			t.Errorf("term %d: term-level MaxCos != max over blocks", tid)
		}
	}
	if idx.BlockMaxes(-1) != nil || idx.BlockMaxes(9999) != nil {
		t.Error("out-of-range term IDs must report nil blocks")
	}
}

// TestImpactMetadata verifies Build's per-term maxima against a brute
// recomputation from postings and document norms.
func TestImpactMetadata(t *testing.T) {
	idx := buildTestIndex(t,
		"apache helicopter army weapons apache helicopter apache",
		"stock market investors trading volume stock",
		"apache webserver software configuration",
		"cooking recipes kitchen dinner helicopter",
	)
	norms := make([]float64, idx.NumDocs())
	for tid := 0; tid < idx.NumTerms(); tid++ {
		for _, p := range idx.Postings(textproc.TermID(tid)) {
			w := 1 + math.Log(float64(p.TF))
			norms[p.Doc] += w * w
		}
	}
	for d := range norms {
		norms[d] = math.Sqrt(norms[d])
	}
	for tid := 0; tid < idx.NumTerms(); tid++ {
		var wantTF int32
		wantCos := 0.0
		for _, p := range idx.Postings(textproc.TermID(tid)) {
			if p.TF > wantTF {
				wantTF = p.TF
			}
			if c := (1 + math.Log(float64(p.TF))) / norms[p.Doc]; c > wantCos {
				wantCos = c
			}
		}
		id := textproc.TermID(tid)
		if got := idx.MaxTF(id); got != wantTF {
			t.Errorf("term %d: MaxTF = %d, want %d", tid, got, wantTF)
		}
		if got := idx.MaxCosImpact(id); math.Abs(got-wantCos) > 1e-15 {
			t.Errorf("term %d: MaxCosImpact = %v, want %v", tid, got, wantCos)
		}
		if got, want := idx.MaxBM25Impact(id), BM25TFBound(wantTF); math.Abs(got-want) > 1e-15 {
			t.Errorf("term %d: MaxBM25Impact = %v, want %v", tid, got, want)
		}
	}
	// Out-of-range IDs answer zero, like Postings.
	if idx.MaxTF(-1) != 0 || idx.MaxCosImpact(-1) != 0 || idx.MaxBM25Impact(9999) != 0 {
		t.Error("out-of-range term IDs must report zero impact")
	}
}

// TestBM25TFBoundDominates checks the length-free bound against the
// true saturation factor across tf, dl, and avgdl combinations.
func TestBM25TFBoundDominates(t *testing.T) {
	for tf := int32(1); tf <= 40; tf += 3 {
		bound := BM25TFBound(tf)
		for _, dl := range []float64{1, 10, 100, 1000} {
			for _, avg := range []float64{5, 50, 500} {
				sat := float64(tf) * (BM25K1 + 1) / (float64(tf) + BM25K1*(1-BM25B+BM25B*dl/avg))
				if sat > bound+1e-12 {
					t.Fatalf("tf=%d dl=%v avg=%v: sat %v exceeds bound %v", tf, dl, avg, sat, bound)
				}
			}
		}
	}
}
