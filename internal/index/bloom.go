package index

import (
	"encoding/binary"
	"fmt"

	"toppriv/internal/textproc"
)

// TermBloom is a per-segment bloom filter over the dictionary's
// surface terms. The segment store probes it before fanning a query
// out to a sealed segment: a segment whose bloom rejects every term of
// a request cannot contribute a hit (an absent term has no postings,
// and DAAT evaluation only ever scores documents that appear in some
// queried list), so the whole shard probe is skipped. False positives
// only cost a wasted probe, never a wrong result.
//
// Sizing is fixed at build time: bloomBitsPerTerm bits per dictionary
// entry with bloomHashes probes per term, giving a theoretical false
// positive rate under 1% — segment skipping keeps nearly all of its
// benefit while the filter stays ~1.25 bytes per term, a rounding
// error next to the dictionary itself. Hashing is FNV-1a 64 split
// into a double-hashing pair, so the filter is deterministic across
// builds and platforms and the TPIX v6 codec can persist it verbatim.
const (
	bloomBitsPerTerm = 10
	bloomHashes      = 7
	// maxBloomHashes caps the persisted probe count: more probes than
	// this buys nothing and signals a corrupt header.
	maxBloomHashes = 16
)

// TermBloom's zero value (and any filter with no bits) rejects every
// term — correct for an empty dictionary.
type TermBloom struct {
	k    uint32
	bits []uint64
}

// NewTermBloom returns a filter sized for n terms.
func NewTermBloom(n int) *TermBloom {
	if n <= 0 {
		return &TermBloom{}
	}
	words := (n*bloomBitsPerTerm + 63) / 64
	return &TermBloom{k: bloomHashes, bits: make([]uint64, words)}
}

// buildVocabBloom derives a segment bloom from a dictionary — what
// Build-time sealing produces and what legacy (pre-v6) TPIX loads
// reconstruct.
func buildVocabBloom(v *textproc.Vocab) *TermBloom {
	b := NewTermBloom(v.Size())
	for t := 0; t < v.Size(); t++ {
		b.Add(v.Term(textproc.TermID(t)))
	}
	return b
}

// fnv64a is FNV-1a 64 over the term bytes (inlined rather than
// hash/fnv so Add and MayContain stay allocation-free).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Add records a term.
func (b *TermBloom) Add(term string) {
	if len(b.bits) == 0 {
		return
	}
	h := fnv64a(term)
	h1, h2 := h, h>>32|1 // odd second hash so probe strides never collapse
	m := uint64(len(b.bits)) * 64
	for i := uint64(0); i < uint64(b.k); i++ {
		bit := (h1 + i*h2) % m
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// MayContain reports whether term was possibly added. False means
// definitely absent; true may be a false positive. Nil and empty
// filters reject everything.
func (b *TermBloom) MayContain(term string) bool {
	if b == nil || len(b.bits) == 0 {
		return false
	}
	h := fnv64a(term)
	h1, h2 := h, h>>32|1
	m := uint64(len(b.bits)) * 64
	for i := uint64(0); i < uint64(b.k); i++ {
		bit := (h1 + i*h2) % m
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// SizeBytes returns the filter's bit-array footprint.
func (b *TermBloom) SizeBytes() int64 {
	if b == nil {
		return 0
	}
	return 8 * int64(len(b.bits))
}

// readBloomWire reads the v6 trailing bloom section: uvarint probe
// count, uvarint word count, then the bit words little-endian. The
// word count is validated against the dictionary size so a corrupt
// header cannot demand an implausible allocation, and an empty filter
// is only accepted for an empty dictionary (a sealed segment with
// terms always persists a real filter).
func readBloomWire(r tpixReader, numTerms uint64) (*TermBloom, error) {
	k, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("index: bloom probes: %w", err)
	}
	words, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("index: bloom words: %w", err)
	}
	if k == 0 || words == 0 {
		if k != 0 || words != 0 || numTerms > 0 {
			return nil, fmt.Errorf("index: empty bloom (k=%d, words=%d) for %d terms", k, words, numTerms)
		}
		return &TermBloom{}, nil
	}
	if k > maxBloomHashes {
		return nil, fmt.Errorf("index: bloom probe count %d exceeds %d", k, maxBloomHashes)
	}
	if max := 4 * (numTerms*bloomBitsPerTerm/64 + 64); words > max {
		return nil, fmt.Errorf("index: bloom word count %d implausible for %d terms", words, numTerms)
	}
	buf, err := r.Bytes(8 * words)
	if err != nil {
		return nil, fmt.Errorf("index: bloom bits: %w", err)
	}
	bits := make([]uint64, words)
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return &TermBloom{k: uint32(k), bits: bits}, nil
}
