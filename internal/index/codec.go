package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// The on-disk format is deliberately simple and compact:
//
//	magic "TPIX" | uint32 version
//	uvarint numDocs
//	uvarint numTerms
//	per term: uvarint(len(term)) term-bytes
//	          uvarint(listLen)
//	          v4/v5: uvarint(dataLen) followed by the block-compressed
//	              postings bytes exactly as held in memory (see
//	              postings.go for the per-block layout), then per
//	              block: uvarint lastDoc-delta (from the previous
//	              block's last doc; +1 offset so the first block's
//	              value is lastDoc+1), uvarint blockMaxTF,
//	              float64 blockMaxCos | float64 blockMaxBM25
//	          v5 only: uvarint headLen, then headLen uvarint block
//	              ordinals — the impact-ordered head (see headOrder)
//	          v1–v3: postings as (uvarint docID-delta, uvarint tf)
//	          v2 only: uvarint maxTF
//	                   float64 maxCosImpact | float64 maxBM25Impact
//	          v3 only: per ceil(listLen/BlockSize) blocks:
//	                   uvarint blockMaxTF
//	                   float64 blockMaxCos | float64 blockMaxBM25
//	per doc:  uvarint docLen
//
// Versions 4 and 5 write the block-compressed postings verbatim — the
// file is a memory image of the lists plus the per-block skip metadata
// (last docs; byte offsets and start ordinals are rebuilt by walking
// the self-describing block headers) and impact bounds, so writing
// does no re-encoding and loading does no re-compression. Version 5
// additionally persists each list's impact-ordered head. Loading
// fully validates every block (structure and payload) and every head
// (length cap, ordinal range, no duplicates — a duplicate would make
// threshold priming double-count a document, turning the prune bound
// unsound) and rejects corrupt or truncated input with an error,
// never a panic. Version 4 files load with heads derived from the
// persisted block bounds, exactly as a fresh build computes them.
//
// Versions 1–3 still load: their varint-delta postings are read into
// raw lists and compressed on the fly. Version 3 carries per-block
// impact metadata (BlockSize-aligned, matching what compression
// produces for a fresh list) which is retained; versions 1 and 2
// recompute all impact metadata from the postings after reading,
// which yields exactly the values Build would have produced.

const codecMagic = "TPIX"
const (
	codecVersion   = 5
	codecVersionV4 = 4
	codecVersionV3 = 3
	codecVersionV2 = 2
	codecVersionV1 = 1
)

// WriteTo serializes the index. It returns the number of bytes written.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	buf := make([]byte, binary.MaxVarintLen64)
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		_, err := cw.Write(buf[:n])
		return err
	}
	writeFloat := func(v float64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		_, err := cw.Write(b[:])
		return err
	}
	if _, err := cw.Write([]byte(codecMagic)); err != nil {
		return cw.n, err
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], codecVersion)
	if _, err := cw.Write(ver[:]); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(x.numDocs)); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(len(x.lists))); err != nil {
		return cw.n, err
	}
	for id := range x.lists {
		term := x.vocab.Term(textproc.TermID(id))
		if err := writeUvarint(uint64(len(term))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write([]byte(term)); err != nil {
			return cw.n, err
		}
		cl := &x.lists[id]
		if err := writeUvarint(uint64(cl.n)); err != nil {
			return cw.n, err
		}
		if cl.n == 0 {
			continue
		}
		if err := writeUvarint(uint64(len(cl.data))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(cl.data); err != nil {
			return cw.n, err
		}
		prevLast := corpus.DocID(-1)
		for b, bm := range x.blocks[id] {
			last := cl.blockLast(b)
			if err := writeUvarint(uint64(last - prevLast)); err != nil {
				return cw.n, err
			}
			prevLast = last
			if err := writeUvarint(uint64(bm.MaxTF)); err != nil {
				return cw.n, err
			}
			if err := writeFloat(bm.MaxCos); err != nil {
				return cw.n, err
			}
			if err := writeFloat(bm.MaxBM); err != nil {
				return cw.n, err
			}
		}
		head := x.heads[id]
		if err := writeUvarint(uint64(len(head))); err != nil {
			return cw.n, err
		}
		for _, ord := range head {
			if err := writeUvarint(uint64(ord)); err != nil {
				return cw.n, err
			}
		}
	}
	for _, dl := range x.docLen {
		if err := writeUvarint(uint64(dl)); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// Read deserializes an index written by WriteTo (any TPIX version).
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: read magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	var ver [4]byte
	if _, err := io.ReadFull(br, ver[:]); err != nil {
		return nil, fmt.Errorf("index: read version: %w", err)
	}
	version := binary.LittleEndian.Uint32(ver[:])
	switch version {
	case codecVersion, codecVersionV4, codecVersionV3, codecVersionV2, codecVersionV1:
	default:
		return nil, fmt.Errorf("index: unsupported version %d", version)
	}
	numDocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: read numDocs: %w", err)
	}
	if numDocs > math.MaxInt32 {
		return nil, fmt.Errorf("index: numDocs %d out of range", numDocs)
	}
	numTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: read numTerms: %w", err)
	}
	x := &Index{
		vocab:   textproc.NewVocab(),
		numDocs: int(numDocs),
	}
	// Pre-sizing from untrusted counts is capped: a corrupt header
	// must not allocate gigabytes before the (bounded) stream runs
	// out. Slices grow organically past the cap.
	const preallocCap = 1 << 16
	prealloc := int(numTerms)
	if prealloc > preallocCap {
		prealloc = preallocCap
	}
	// Legacy versions accumulate raw lists to compress after reading.
	var raw [][]Posting
	if version >= codecVersionV4 {
		x.lists = make([]compList, 0, prealloc)
	} else {
		raw = make([][]Posting, 0, prealloc)
	}
	termBuf := make([]byte, 0, 64)
	for t := uint64(0); t < numTerms; t++ {
		tl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: term %d length: %w", t, err)
		}
		if tl > 1<<20 {
			return nil, fmt.Errorf("index: term %d length %d out of range", t, tl)
		}
		if cap(termBuf) < int(tl) {
			termBuf = make([]byte, tl)
		}
		termBuf = termBuf[:tl]
		if _, err := io.ReadFull(br, termBuf); err != nil {
			return nil, fmt.Errorf("index: term %d bytes: %w", t, err)
		}
		x.vocab.Add(string(termBuf))
		ll, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: term %d list length: %w", t, err)
		}
		if ll > numDocs {
			// A list holds at most one posting per document.
			return nil, fmt.Errorf("index: term %d list length %d exceeds %d docs", t, ll, numDocs)
		}
		if version >= codecVersionV4 {
			if err := x.readCompList(br, t, ll, int(numDocs), version); err != nil {
				return nil, err
			}
			continue
		}
		plPrealloc := int(ll)
		if plPrealloc > preallocCap {
			plPrealloc = preallocCap
		}
		pl := make([]Posting, 0, plPrealloc)
		prev := uint64(0)
		for i := uint64(0); i < ll; i++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: term %d posting %d: %w", t, i, err)
			}
			prev += delta
			if prev >= numDocs || (i > 0 && delta == 0) {
				return nil, fmt.Errorf("index: term %d posting %d: doc %d out of range", t, i, prev)
			}
			tf, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: term %d tf %d: %w", t, i, err)
			}
			if tf == 0 || tf > math.MaxInt32 {
				return nil, fmt.Errorf("index: term %d posting %d: tf %d out of range", t, i, tf)
			}
			pl = append(pl, Posting{Doc: corpus.DocID(prev), TF: int32(tf)})
		}
		raw = append(raw, pl)
		switch version {
		case codecVersionV2:
			// v2 carried term-level metadata but no blocks. The blocks
			// must be recomputed from the postings anyway (below), and
			// that recomputation reproduces the term-level values
			// bit-for-bit, so the stored trio is only validated for
			// presence, not retained.
			if _, err := binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("index: term %d maxTF: %w", t, err)
			}
			if _, err := readFloat(br); err != nil {
				return nil, fmt.Errorf("index: term %d maxCos: %w", t, err)
			}
			if _, err := readFloat(br); err != nil {
				return nil, fmt.Errorf("index: term %d maxBM25: %w", t, err)
			}
		case codecVersionV3:
			var bs []BlockMax
			for b := uint64(0); b < (ll+BlockSize-1)/BlockSize; b++ {
				bm, err := readBlockMax(br)
				if err != nil {
					return nil, fmt.Errorf("index: term %d block %d: %w", t, b, err)
				}
				bs = append(bs, bm)
			}
			x.blocks = append(x.blocks, bs)
			x.heads = append(x.heads, headOrder(bs))
			mtf, mcos, mbm := maxOverBlocks(bs)
			x.maxTF = append(x.maxTF, mtf)
			x.maxCos = append(x.maxCos, mcos)
			x.maxBM = append(x.maxBM, mbm)
		}
	}
	dlPrealloc := int(numDocs)
	if dlPrealloc > preallocCap {
		dlPrealloc = preallocCap
	}
	x.docLen = make([]int, 0, dlPrealloc)
	for d := uint64(0); d < numDocs; d++ {
		dl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: doc %d length: %w", d, err)
		}
		x.docLen = append(x.docLen, int(dl))
		x.totalLen += int(dl)
	}
	switch version {
	case codecVersion, codecVersionV4:
		// Block-compressed lists and metadata were read directly.
	case codecVersionV3:
		x.compressLists(raw)
	default:
		// v1 files carry no impact metadata and v2 files no per-block
		// bounds; derive both from the postings so loaded indexes
		// prune identically to built ones.
		x.computeImpacts(raw)
		x.compressLists(raw)
	}
	return x, nil
}

// readCompList reads one term's block-compressed list and per-block
// metadata (the shared v4/v5 list layout), validating the blocks fully
// before accepting them. For v5 it also reads and validates the
// persisted impact-ordered head; for v4 the head is derived from the
// block bounds, exactly as a fresh build would compute it.
func (x *Index) readCompList(br *bufio.Reader, t, ll uint64, numDocs int, version uint32) error {
	if ll == 0 {
		x.lists = append(x.lists, compList{})
		x.blocks = append(x.blocks, nil)
		x.heads = append(x.heads, nil)
		x.maxTF = append(x.maxTF, 0)
		x.maxCos = append(x.maxCos, 0)
		x.maxBM = append(x.maxBM, 0)
		return nil
	}
	dataLen, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("index: term %d data length: %w", t, err)
	}
	// Every posting costs at least a bit somewhere and every block at
	// least ~5 bytes; 16 bytes per posting is a generous ceiling that
	// rejects corrupt lengths early, and reading in bounded chunks
	// keeps even an accepted-but-lying length from allocating past
	// what the stream actually holds.
	if dataLen > 16*ll+64 {
		return fmt.Errorf("index: term %d data length %d implausible for %d postings", t, dataLen, ll)
	}
	const chunk = 1 << 20
	pre := dataLen
	if pre > chunk {
		pre = chunk
	}
	data := make([]byte, 0, pre)
	for remaining := dataLen; remaining > 0; {
		step := remaining
		if step > chunk {
			step = chunk
		}
		off := len(data)
		data = append(data, make([]byte, step)...)
		if _, err := io.ReadFull(br, data[off:]); err != nil {
			return fmt.Errorf("index: term %d data: %w", t, err)
		}
		remaining -= step
	}
	// The block count is structural: walk the self-describing headers.
	offs, _, err := walkBlocks(data, int(ll))
	if err != nil {
		return fmt.Errorf("index: term %d: %w", t, err)
	}
	nb := len(offs) - 1
	lasts := make([]corpus.DocID, nb)
	bs := make([]BlockMax, nb)
	prevLast := int64(-1)
	for b := 0; b < nb; b++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("index: term %d block %d last doc: %w", t, b, err)
		}
		prevLast += int64(delta)
		if delta == 0 || prevLast > math.MaxInt32 {
			return fmt.Errorf("index: term %d block %d last doc out of range", t, b)
		}
		lasts[b] = corpus.DocID(prevLast)
		if bs[b], err = readBlockMax(br); err != nil {
			return fmt.Errorf("index: term %d block %d: %w", t, b, err)
		}
	}
	var head []int32
	if version >= codecVersion {
		if head, err = readHead(br, t, nb); err != nil {
			return err
		}
	} else {
		head = headOrder(bs)
	}
	cl, err := newCompListFromWire(int(ll), data, lasts, numDocs)
	if err != nil {
		return fmt.Errorf("index: term %d: %w", t, err)
	}
	x.lists = append(x.lists, cl)
	x.blocks = append(x.blocks, bs)
	x.heads = append(x.heads, head)
	mtf, mcos, mbm := maxOverBlocks(bs)
	x.maxTF = append(x.maxTF, mtf)
	x.maxCos = append(x.maxCos, mcos)
	x.maxBM = append(x.maxBM, mbm)
	return nil
}

// readHead reads and validates one list's persisted impact-ordered
// head: at most maxHeadBlocks ordinals, each a distinct valid block of
// the nb-block list. Duplicate or out-of-range ordinals are rejected —
// a head is only an ordering hint for threshold priming, but a
// duplicate entry would let priming count one document's contribution
// twice, overstating the primed threshold and silently dropping true
// results.
func readHead(br *bufio.Reader, t uint64, nb int) ([]int32, error) {
	hl, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: term %d head length: %w", t, err)
	}
	if hl > maxHeadBlocks {
		return nil, fmt.Errorf("index: term %d head length %d exceeds %d", t, hl, maxHeadBlocks)
	}
	if hl == 0 {
		return nil, nil
	}
	head := make([]int32, hl)
	for i := range head {
		ord, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: term %d head entry %d: %w", t, i, err)
		}
		if ord >= uint64(nb) {
			return nil, fmt.Errorf("index: term %d head entry %d: block %d out of range (%d blocks)", t, i, ord, nb)
		}
		head[i] = int32(ord)
		for j := 0; j < i; j++ {
			if head[j] == head[i] {
				return nil, fmt.Errorf("index: term %d head entry %d: duplicate block %d", t, i, ord)
			}
		}
	}
	return head, nil
}

// readBlockMax reads one persisted per-block impact triple.
func readBlockMax(br *bufio.Reader) (BlockMax, error) {
	btf, err := binary.ReadUvarint(br)
	if err != nil {
		return BlockMax{}, fmt.Errorf("maxTF: %w", err)
	}
	bcos, err := readFloat(br)
	if err != nil {
		return BlockMax{}, fmt.Errorf("maxCos: %w", err)
	}
	bbm, err := readFloat(br)
	if err != nil {
		return BlockMax{}, fmt.Errorf("maxBM25: %w", err)
	}
	return BlockMax{MaxTF: int32(btf), MaxCos: bcos, MaxBM: bbm}, nil
}

// readFloat reads one little-endian IEEE-754 float64.
func readFloat(r io.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

// SizeBytes returns the serialized size of the index without writing it
// anywhere (used by Figure 6 and the PIR table).
func (x *Index) SizeBytes() int64 {
	n, err := x.WriteTo(io.Discard)
	if err != nil {
		// io.Discard cannot fail; keep the invariant visible.
		panic(fmt.Sprintf("index: SizeBytes: %v", err))
	}
	return n
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
