package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// The on-disk format is deliberately simple and compact:
//
//	magic "TPIX" | uint32 version
//	uvarint numDocs
//	uvarint numTerms
//	per term: uvarint(len(term)) term-bytes
//	          uvarint(listLen)
//	          v4/v5: uvarint(dataLen) followed by the block-compressed
//	              postings bytes exactly as held in memory (see
//	              postings.go for the per-block layout), then per
//	              block: uvarint lastDoc-delta (from the previous
//	              block's last doc; +1 offset so the first block's
//	              value is lastDoc+1), uvarint blockMaxTF,
//	              float64 blockMaxCos | float64 blockMaxBM25
//	          v5 only: uvarint headLen, then headLen uvarint block
//	              ordinals — the impact-ordered head (see headOrder)
//	          v1–v3: postings as (uvarint docID-delta, uvarint tf)
//	          v2 only: uvarint maxTF
//	                   float64 maxCosImpact | float64 maxBM25Impact
//	          v3 only: per ceil(listLen/BlockSize) blocks:
//	                   uvarint blockMaxTF
//	                   float64 blockMaxCos | float64 blockMaxBM25
//	per doc:  uvarint docLen
//	v6 only:  uvarint bloomHashes, uvarint bloomWords,
//	          bloomWords × uint64 bloom bit words (little-endian) —
//	          the per-segment term bloom (see bloom.go)
//
// Versions 4–6 write the block-compressed postings verbatim — the
// file is a memory image of the lists plus the per-block skip metadata
// (last docs; byte offsets and start ordinals are rebuilt by walking
// the self-describing block headers) and impact bounds, so writing
// does no re-encoding and loading does no re-compression. Version 5
// additionally persists each list's impact-ordered head, and version 6
// a trailing per-segment term bloom filter. Loading through Read
// fully validates every block (structure and payload) and every head
// (length cap, ordinal range, no duplicates — a duplicate would make
// threshold priming double-count a document, turning the prune bound
// unsound) and rejects corrupt or truncated input with an error,
// never a panic. Version 4 files load with heads derived from the
// persisted block bounds, exactly as a fresh build computes them;
// pre-v6 files derive the bloom from the dictionary on demand.
//
// OpenMapped (mapped.go) reads the same format through a zero-copy
// slice reader over the mapped file: all header, dictionary, skip and
// impact metadata is eagerly decoded and validated exactly as above,
// but the packed block payloads stay as views into the mapping and
// skip the per-posting decode validation — faulting every payload
// page at open would defeat disk residency. Payload decoding is
// bounds-checked at traversal time, so a corrupt payload yields wrong
// postings values, never memory unsafety.
//
// Versions 1–3 still load: their varint-delta postings are read into
// raw lists and compressed on the fly. Version 3 carries per-block
// impact metadata (BlockSize-aligned, matching what compression
// produces for a fresh list) which is retained; versions 1 and 2
// recompute all impact metadata from the postings after reading,
// which yields exactly the values Build would have produced.

const codecMagic = "TPIX"
const (
	codecVersion   = 6
	codecVersionV5 = 5
	codecVersionV4 = 4
	codecVersionV3 = 3
	codecVersionV2 = 2
	codecVersionV1 = 1
)

// tpixReader is the byte source the codec decodes from: a buffered
// stream (Read) or an in-memory image (OpenMapped). Bytes returns the
// next n bytes — the slice-backed reader hands out zero-copy views of
// the image, the stream reader allocates in bounded chunks so a lying
// length cannot allocate past what the stream actually holds.
type tpixReader interface {
	io.ByteReader
	io.Reader
	Bytes(n uint64) ([]byte, error)
}

// streamReader adapts a bufio.Reader to tpixReader.
type streamReader struct {
	*bufio.Reader
}

func (r streamReader) Bytes(n uint64) ([]byte, error) {
	const chunk = 1 << 20
	pre := n
	if pre > chunk {
		pre = chunk
	}
	data := make([]byte, 0, pre)
	for remaining := n; remaining > 0; {
		step := remaining
		if step > chunk {
			step = chunk
		}
		off := len(data)
		data = append(data, make([]byte, step)...)
		if _, err := io.ReadFull(r.Reader, data[off:]); err != nil {
			return nil, err
		}
		remaining -= step
	}
	return data, nil
}

// sliceReader reads from one in-memory image — the mapped file. Bytes
// returns subslices of the image, so block payloads in the decoded
// index are views into the mapping, not copies.
type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) ReadByte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *sliceReader) Bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.data)-r.off) {
		return nil, io.ErrUnexpectedEOF
	}
	s := r.data[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return s, nil
}

// WriteTo serializes the index. It returns the number of bytes written.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	buf := make([]byte, binary.MaxVarintLen64)
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		_, err := cw.Write(buf[:n])
		return err
	}
	writeFloat := func(v float64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		_, err := cw.Write(b[:])
		return err
	}
	if _, err := cw.Write([]byte(codecMagic)); err != nil {
		return cw.n, err
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], codecVersion)
	if _, err := cw.Write(ver[:]); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(x.numDocs)); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(len(x.lists))); err != nil {
		return cw.n, err
	}
	for id := range x.lists {
		term := x.vocab.Term(textproc.TermID(id))
		if err := writeUvarint(uint64(len(term))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write([]byte(term)); err != nil {
			return cw.n, err
		}
		cl := &x.lists[id]
		if err := writeUvarint(uint64(cl.n)); err != nil {
			return cw.n, err
		}
		if cl.n == 0 {
			continue
		}
		if err := writeUvarint(uint64(len(cl.data))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(cl.data); err != nil {
			return cw.n, err
		}
		prevLast := corpus.DocID(-1)
		for b, bm := range x.blocks[id] {
			last := cl.blockLast(b)
			if err := writeUvarint(uint64(last - prevLast)); err != nil {
				return cw.n, err
			}
			prevLast = last
			if err := writeUvarint(uint64(bm.MaxTF)); err != nil {
				return cw.n, err
			}
			if err := writeFloat(bm.MaxCos); err != nil {
				return cw.n, err
			}
			if err := writeFloat(bm.MaxBM); err != nil {
				return cw.n, err
			}
		}
		head := x.heads[id]
		if err := writeUvarint(uint64(len(head))); err != nil {
			return cw.n, err
		}
		for _, ord := range head {
			if err := writeUvarint(uint64(ord)); err != nil {
				return cw.n, err
			}
		}
	}
	for _, dl := range x.docLen {
		if err := writeUvarint(uint64(dl)); err != nil {
			return cw.n, err
		}
	}
	bl := x.Bloom()
	if err := writeUvarint(uint64(bl.k)); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(len(bl.bits))); err != nil {
		return cw.n, err
	}
	var wb [8]byte
	for _, word := range bl.bits {
		binary.LittleEndian.PutUint64(wb[:], word)
		if _, err := cw.Write(wb[:]); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// Read deserializes an index written by WriteTo (any TPIX version),
// fully validating every block payload.
func Read(r io.Reader) (*Index, error) {
	x, _, err := readIndex(streamReader{bufio.NewReader(r)}, true)
	return x, err
}

// readIndex decodes one TPIX image from r. verifyPayload selects full
// per-posting validation of the packed block payloads (the stream
// path) versus structural-only validation of headers, skip metadata,
// heads and bloom (the mapped path — see the format comment above).
// It returns the decoded index and the file's version.
func readIndex(r tpixReader, verifyPayload bool) (*Index, uint32, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, 0, fmt.Errorf("index: read magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, 0, fmt.Errorf("index: bad magic %q", magic)
	}
	var ver [4]byte
	if _, err := io.ReadFull(r, ver[:]); err != nil {
		return nil, 0, fmt.Errorf("index: read version: %w", err)
	}
	version := binary.LittleEndian.Uint32(ver[:])
	switch version {
	case codecVersion, codecVersionV5, codecVersionV4, codecVersionV3, codecVersionV2, codecVersionV1:
	default:
		return nil, 0, fmt.Errorf("index: unsupported version %d", version)
	}
	numDocs, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, 0, fmt.Errorf("index: read numDocs: %w", err)
	}
	if numDocs > math.MaxInt32 {
		return nil, 0, fmt.Errorf("index: numDocs %d out of range", numDocs)
	}
	numTerms, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, 0, fmt.Errorf("index: read numTerms: %w", err)
	}
	x := &Index{
		vocab:   textproc.NewVocab(),
		numDocs: int(numDocs),
	}
	// Pre-sizing from untrusted counts is capped: a corrupt header
	// must not allocate gigabytes before the (bounded) stream runs
	// out. Slices grow organically past the cap.
	const preallocCap = 1 << 16
	prealloc := int(numTerms)
	if prealloc > preallocCap {
		prealloc = preallocCap
	}
	// Legacy versions accumulate raw lists to compress after reading.
	var raw [][]Posting
	if version >= codecVersionV4 {
		x.lists = make([]compList, 0, prealloc)
	} else {
		raw = make([][]Posting, 0, prealloc)
	}
	termBuf := make([]byte, 0, 64)
	for t := uint64(0); t < numTerms; t++ {
		tl, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, 0, fmt.Errorf("index: term %d length: %w", t, err)
		}
		if tl > 1<<20 {
			return nil, 0, fmt.Errorf("index: term %d length %d out of range", t, tl)
		}
		if cap(termBuf) < int(tl) {
			termBuf = make([]byte, tl)
		}
		termBuf = termBuf[:tl]
		if _, err := io.ReadFull(r, termBuf); err != nil {
			return nil, 0, fmt.Errorf("index: term %d bytes: %w", t, err)
		}
		x.vocab.Add(string(termBuf))
		ll, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, 0, fmt.Errorf("index: term %d list length: %w", t, err)
		}
		if ll > numDocs {
			// A list holds at most one posting per document.
			return nil, 0, fmt.Errorf("index: term %d list length %d exceeds %d docs", t, ll, numDocs)
		}
		if version >= codecVersionV4 {
			if err := x.readCompList(r, t, ll, int(numDocs), version, verifyPayload); err != nil {
				return nil, 0, err
			}
			continue
		}
		plPrealloc := int(ll)
		if plPrealloc > preallocCap {
			plPrealloc = preallocCap
		}
		pl := make([]Posting, 0, plPrealloc)
		prev := uint64(0)
		for i := uint64(0); i < ll; i++ {
			delta, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, 0, fmt.Errorf("index: term %d posting %d: %w", t, i, err)
			}
			prev += delta
			if prev >= numDocs || (i > 0 && delta == 0) {
				return nil, 0, fmt.Errorf("index: term %d posting %d: doc %d out of range", t, i, prev)
			}
			tf, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, 0, fmt.Errorf("index: term %d tf %d: %w", t, i, err)
			}
			if tf == 0 || tf > math.MaxInt32 {
				return nil, 0, fmt.Errorf("index: term %d posting %d: tf %d out of range", t, i, tf)
			}
			pl = append(pl, Posting{Doc: corpus.DocID(prev), TF: int32(tf)})
		}
		raw = append(raw, pl)
		switch version {
		case codecVersionV2:
			// v2 carried term-level metadata but no blocks. The blocks
			// must be recomputed from the postings anyway (below), and
			// that recomputation reproduces the term-level values
			// bit-for-bit, so the stored trio is only validated for
			// presence, not retained.
			if _, err := binary.ReadUvarint(r); err != nil {
				return nil, 0, fmt.Errorf("index: term %d maxTF: %w", t, err)
			}
			if _, err := readFloat(r); err != nil {
				return nil, 0, fmt.Errorf("index: term %d maxCos: %w", t, err)
			}
			if _, err := readFloat(r); err != nil {
				return nil, 0, fmt.Errorf("index: term %d maxBM25: %w", t, err)
			}
		case codecVersionV3:
			var bs []BlockMax
			for b := uint64(0); b < (ll+BlockSize-1)/BlockSize; b++ {
				bm, err := readBlockMax(r)
				if err != nil {
					return nil, 0, fmt.Errorf("index: term %d block %d: %w", t, b, err)
				}
				bs = append(bs, bm)
			}
			x.blocks = append(x.blocks, bs)
			x.heads = append(x.heads, headOrder(bs))
			mtf, mcos, mbm := maxOverBlocks(bs)
			x.maxTF = append(x.maxTF, mtf)
			x.maxCos = append(x.maxCos, mcos)
			x.maxBM = append(x.maxBM, mbm)
		}
	}
	dlPrealloc := int(numDocs)
	if dlPrealloc > preallocCap {
		dlPrealloc = preallocCap
	}
	x.docLen = make([]int, 0, dlPrealloc)
	for d := uint64(0); d < numDocs; d++ {
		dl, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, 0, fmt.Errorf("index: doc %d length: %w", d, err)
		}
		x.docLen = append(x.docLen, int(dl))
		x.totalLen += int(dl)
	}
	if version >= codecVersion {
		if x.bloom, err = readBloomWire(r, numTerms); err != nil {
			return nil, 0, err
		}
	}
	switch version {
	case codecVersion, codecVersionV5, codecVersionV4:
		// Block-compressed lists and metadata were read directly.
	case codecVersionV3:
		x.compressLists(raw)
	default:
		// v1 files carry no impact metadata and v2 files no per-block
		// bounds; derive both from the postings so loaded indexes
		// prune identically to built ones.
		x.computeImpacts(raw)
		x.compressLists(raw)
	}
	return x, version, nil
}

// readCompList reads one term's block-compressed list and per-block
// metadata (the shared v4–v6 list layout). For v5+ it also reads and
// validates the persisted impact-ordered head; for v4 the head is
// derived from the block bounds, exactly as a fresh build would
// compute it. verifyPayload additionally decodes every block to check
// the packed postings themselves (see readIndex).
func (x *Index) readCompList(r tpixReader, t, ll uint64, numDocs int, version uint32, verifyPayload bool) error {
	if ll == 0 {
		x.lists = append(x.lists, compList{})
		x.blocks = append(x.blocks, nil)
		x.heads = append(x.heads, nil)
		x.maxTF = append(x.maxTF, 0)
		x.maxCos = append(x.maxCos, 0)
		x.maxBM = append(x.maxBM, 0)
		return nil
	}
	dataLen, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("index: term %d data length: %w", t, err)
	}
	// Every posting costs at least a bit somewhere and every block at
	// least ~5 bytes; 16 bytes per posting is a generous ceiling that
	// rejects corrupt lengths early, and the reader's Bytes keeps even
	// an accepted-but-lying length from allocating past what the
	// source actually holds.
	if dataLen > 16*ll+64 {
		return fmt.Errorf("index: term %d data length %d implausible for %d postings", t, dataLen, ll)
	}
	data, err := r.Bytes(dataLen)
	if err != nil {
		return fmt.Errorf("index: term %d data: %w", t, err)
	}
	// The block count is structural: walk the self-describing headers.
	offs, _, err := walkBlocks(data, int(ll))
	if err != nil {
		return fmt.Errorf("index: term %d: %w", t, err)
	}
	nb := len(offs) - 1
	lasts := make([]corpus.DocID, nb)
	bs := make([]BlockMax, nb)
	prevLast := int64(-1)
	for b := 0; b < nb; b++ {
		delta, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("index: term %d block %d last doc: %w", t, b, err)
		}
		prevLast += int64(delta)
		if delta == 0 || prevLast >= int64(numDocs) {
			return fmt.Errorf("index: term %d block %d last doc out of range", t, b)
		}
		lasts[b] = corpus.DocID(prevLast)
		if bs[b], err = readBlockMax(r); err != nil {
			return fmt.Errorf("index: term %d block %d: %w", t, b, err)
		}
	}
	var head []int32
	if version >= codecVersionV5 {
		if head, err = readHead(r, t, nb); err != nil {
			return err
		}
	} else {
		head = headOrder(bs)
	}
	cl, err := newCompListWire(int(ll), data, lasts, numDocs, verifyPayload)
	if err != nil {
		return fmt.Errorf("index: term %d: %w", t, err)
	}
	x.lists = append(x.lists, cl)
	x.blocks = append(x.blocks, bs)
	x.heads = append(x.heads, head)
	mtf, mcos, mbm := maxOverBlocks(bs)
	x.maxTF = append(x.maxTF, mtf)
	x.maxCos = append(x.maxCos, mcos)
	x.maxBM = append(x.maxBM, mbm)
	return nil
}

// readHead reads and validates one list's persisted impact-ordered
// head: at most maxHeadBlocks ordinals, each a distinct valid block of
// the nb-block list. Duplicate or out-of-range ordinals are rejected —
// a head is only an ordering hint for threshold priming, but a
// duplicate entry would let priming count one document's contribution
// twice, overstating the primed threshold and silently dropping true
// results.
func readHead(r tpixReader, t uint64, nb int) ([]int32, error) {
	hl, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("index: term %d head length: %w", t, err)
	}
	if hl > maxHeadBlocks {
		return nil, fmt.Errorf("index: term %d head length %d exceeds %d", t, hl, maxHeadBlocks)
	}
	if hl == 0 {
		return nil, nil
	}
	head := make([]int32, hl)
	for i := range head {
		ord, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("index: term %d head entry %d: %w", t, i, err)
		}
		if ord >= uint64(nb) {
			return nil, fmt.Errorf("index: term %d head entry %d: block %d out of range (%d blocks)", t, i, ord, nb)
		}
		head[i] = int32(ord)
		for j := 0; j < i; j++ {
			if head[j] == head[i] {
				return nil, fmt.Errorf("index: term %d head entry %d: duplicate block %d", t, i, ord)
			}
		}
	}
	return head, nil
}

// readBlockMax reads one persisted per-block impact triple.
func readBlockMax(r tpixReader) (BlockMax, error) {
	btf, err := binary.ReadUvarint(r)
	if err != nil {
		return BlockMax{}, fmt.Errorf("maxTF: %w", err)
	}
	bcos, err := readFloat(r)
	if err != nil {
		return BlockMax{}, fmt.Errorf("maxCos: %w", err)
	}
	bbm, err := readFloat(r)
	if err != nil {
		return BlockMax{}, fmt.Errorf("maxBM25: %w", err)
	}
	return BlockMax{MaxTF: int32(btf), MaxCos: bcos, MaxBM: bbm}, nil
}

// readFloat reads one little-endian IEEE-754 float64.
func readFloat(r io.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

// SizeBytes returns the serialized size of the index without writing it
// anywhere (used by Figure 6 and the PIR table).
func (x *Index) SizeBytes() int64 {
	n, err := x.WriteTo(io.Discard)
	if err != nil {
		// io.Discard cannot fail; keep the invariant visible.
		panic(fmt.Sprintf("index: SizeBytes: %v", err))
	}
	return n
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
