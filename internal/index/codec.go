package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// The on-disk format is deliberately simple and compact:
//
//	magic "TPIX" | uint32 version
//	uvarint numDocs
//	uvarint numTerms
//	per term: uvarint(len(term)) term-bytes
//	          uvarint(listLen)
//	          postings as (uvarint docID-delta, uvarint tf)
//	          v2 only: uvarint maxTF
//	                   float64 maxCosImpact | float64 maxBM25Impact
//	          v3 only: per ceil(listLen/BlockSize) blocks:
//	                   uvarint blockMaxTF
//	                   float64 blockMaxCos | float64 blockMaxBM25
//	per doc:  uvarint docLen
//
// Doc IDs are delta-encoded within each list, mirroring production
// inverted-index layouts, so SizeBytes reflects a realistic index
// footprint for the Figure 6 comparison against the LDA model size.
//
// Version 3 persists the per-block max-impact metadata that fuels
// block-max WAND; the term-level maxima are derived on load as the
// maxima over each list's blocks (bit-identical to what Build
// computed, since both maximize over the same values). The block
// count is derived from listLen, so it is never stored. Version 2
// files (term-level metadata only) and version 1 files (no metadata)
// still load: their impact metadata — block- and term-level — is
// recomputed from the postings after reading, which yields exactly
// the values Build would have produced.

const codecMagic = "TPIX"
const (
	codecVersion   = 3
	codecVersionV2 = 2
	codecVersionV1 = 1
)

// WriteTo serializes the index. It returns the number of bytes written.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	buf := make([]byte, binary.MaxVarintLen64)
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		_, err := cw.Write(buf[:n])
		return err
	}
	writeFloat := func(v float64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		_, err := cw.Write(b[:])
		return err
	}
	if _, err := cw.Write([]byte(codecMagic)); err != nil {
		return cw.n, err
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], codecVersion)
	if _, err := cw.Write(ver[:]); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(x.numDocs)); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(len(x.postings))); err != nil {
		return cw.n, err
	}
	for id := range x.postings {
		term := x.vocab.Term(textproc.TermID(id))
		if err := writeUvarint(uint64(len(term))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write([]byte(term)); err != nil {
			return cw.n, err
		}
		pl := x.postings[id]
		if err := writeUvarint(uint64(len(pl))); err != nil {
			return cw.n, err
		}
		prev := corpus.DocID(0)
		for _, p := range pl {
			if err := writeUvarint(uint64(p.Doc - prev)); err != nil {
				return cw.n, err
			}
			prev = p.Doc
			if err := writeUvarint(uint64(p.TF)); err != nil {
				return cw.n, err
			}
		}
		for _, bm := range x.blocks[id] {
			if err := writeUvarint(uint64(bm.MaxTF)); err != nil {
				return cw.n, err
			}
			if err := writeFloat(bm.MaxCos); err != nil {
				return cw.n, err
			}
			if err := writeFloat(bm.MaxBM); err != nil {
				return cw.n, err
			}
		}
	}
	for _, dl := range x.docLen {
		if err := writeUvarint(uint64(dl)); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// Read deserializes an index written by WriteTo.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: read magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	var ver [4]byte
	if _, err := io.ReadFull(br, ver[:]); err != nil {
		return nil, fmt.Errorf("index: read version: %w", err)
	}
	version := binary.LittleEndian.Uint32(ver[:])
	if version != codecVersion && version != codecVersionV2 && version != codecVersionV1 {
		return nil, fmt.Errorf("index: unsupported version %d", version)
	}
	numDocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: read numDocs: %w", err)
	}
	numTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: read numTerms: %w", err)
	}
	x := &Index{
		vocab:    textproc.NewVocab(),
		postings: make([]PostingList, 0, numTerms),
		numDocs:  int(numDocs),
	}
	termBuf := make([]byte, 0, 64)
	for t := uint64(0); t < numTerms; t++ {
		tl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: term %d length: %w", t, err)
		}
		if cap(termBuf) < int(tl) {
			termBuf = make([]byte, tl)
		}
		termBuf = termBuf[:tl]
		if _, err := io.ReadFull(br, termBuf); err != nil {
			return nil, fmt.Errorf("index: term %d bytes: %w", t, err)
		}
		x.vocab.Add(string(termBuf))
		ll, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: term %d list length: %w", t, err)
		}
		pl := make(PostingList, ll)
		prev := uint64(0)
		for i := range pl {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: term %d posting %d: %w", t, i, err)
			}
			prev += delta
			tf, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: term %d tf %d: %w", t, i, err)
			}
			pl[i] = Posting{Doc: corpus.DocID(prev), TF: int32(tf)}
		}
		x.postings = append(x.postings, pl)
		switch version {
		case codecVersionV2:
			// v2 carried term-level metadata but no blocks. The blocks
			// must be recomputed from the postings anyway (below), and
			// that recomputation reproduces the term-level values
			// bit-for-bit, so the stored trio is only validated for
			// presence, not retained.
			if _, err := binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("index: term %d maxTF: %w", t, err)
			}
			if _, err := readFloat(br); err != nil {
				return nil, fmt.Errorf("index: term %d maxCos: %w", t, err)
			}
			if _, err := readFloat(br); err != nil {
				return nil, fmt.Errorf("index: term %d maxBM25: %w", t, err)
			}
		case codecVersion:
			var bs []BlockMax
			if ll > 0 {
				bs = make([]BlockMax, (ll+BlockSize-1)/BlockSize)
			}
			var mtf int32
			mcos, mbm := 0.0, 0.0
			for b := range bs {
				btf, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("index: term %d block %d maxTF: %w", t, b, err)
				}
				bcos, err := readFloat(br)
				if err != nil {
					return nil, fmt.Errorf("index: term %d block %d maxCos: %w", t, b, err)
				}
				bbm, err := readFloat(br)
				if err != nil {
					return nil, fmt.Errorf("index: term %d block %d maxBM25: %w", t, b, err)
				}
				bs[b] = BlockMax{MaxTF: int32(btf), MaxCos: bcos, MaxBM: bbm}
				if bs[b].MaxTF > mtf {
					mtf = bs[b].MaxTF
				}
				if bcos > mcos {
					mcos = bcos
				}
				if bbm > mbm {
					mbm = bbm
				}
			}
			x.blocks = append(x.blocks, bs)
			x.maxTF = append(x.maxTF, mtf)
			x.maxCos = append(x.maxCos, mcos)
			x.maxBM = append(x.maxBM, mbm)
		}
	}
	x.docLen = make([]int, numDocs)
	for d := range x.docLen {
		dl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: doc %d length: %w", d, err)
		}
		x.docLen[d] = int(dl)
		x.totalLen += int(dl)
	}
	if version < codecVersion {
		// v1 files carry no impact metadata and v2 files no per-block
		// bounds; derive both from the postings so loaded indexes
		// prune identically to built ones.
		x.computeImpacts()
	}
	return x, nil
}

// readFloat reads one little-endian IEEE-754 float64.
func readFloat(r io.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

// SizeBytes returns the serialized size of the index without writing it
// anywhere (used by Figure 6 and the PIR table).
func (x *Index) SizeBytes() int64 {
	n, err := x.WriteTo(io.Discard)
	if err != nil {
		// io.Discard cannot fail; keep the invariant visible.
		panic(fmt.Sprintf("index: SizeBytes: %v", err))
	}
	return n
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
