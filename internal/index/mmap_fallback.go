//go:build !linux

package index

import "os"

// The portable fallback for platforms without the syscall.Mmap /
// syscall.Madvise surface this package uses (notably windows): the
// file is read into the heap in one pread-style pass. OpenMapped then
// behaves exactly like Read — identical results, no disk residency —
// which keeps cross-compiled builds green and the open-mode plumbing
// platform-independent.
type mapping struct {
	data []byte
}

func mapFile(path string) (*mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &mapping{data: data}, nil
}

// Close releases the buffer. Idempotent; safe on nil.
func (m *mapping) Close() error {
	if m != nil {
		m.data = nil
	}
	return nil
}

// heapBacked reports that the fallback's bytes are ordinary heap
// memory — resident-bytes accounting must count them.
func (m *mapping) heapBacked() bool { return m != nil && m.data != nil }

func (m *mapping) adviseSequential() {}

func (m *mapping) adviseRandom() {}
