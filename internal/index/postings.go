package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"toppriv/internal/corpus"
)

// Block-compressed postings: the in-memory (and, via the v4 codec,
// on-disk) representation of a postings list. Each run of up to
// BlockSize postings is stored as one frame-of-reference block —
// delta-encoded doc IDs and term frequencies, both reduced by a
// per-block minimum and bit-packed at a per-block width — so a list
// costs a few bits per posting instead of the 8 bytes of a raw
// Posting, and traversal decodes one block at a time into a small
// per-iterator buffer instead of materializing []Posting.
//
// Wire layout of one block (identical in memory and in the v4 file):
//
//	uvarint baseDelta   firstDoc − prevLast (prevLast = −1 before the
//	                    first block, so baseDelta ≥ 1). First so a
//	                    block-wise merge can rebase a copied run by
//	                    rewriting one varint.
//	uvarint count       postings in the block (1..BlockSize)
//	byte    gapBits     bit width of the packed gap residuals (≤ 31)
//	byte    tfBits      bit width of the packed tf residuals (≤ 31)
//	uvarint minGap−1    smallest doc gap (present only when count > 1)
//	uvarint minTF−1     smallest term frequency in the block
//	packed  count−1 gap residuals (gap_i − minGap), gapBits each, LSB-first
//	packed  count tf residuals (tf_i − minTF), tfBits each
//
// Blocks produced by Build and seal are BlockSize-aligned; a
// block-wise Merge may append shorter interior blocks (one partial
// block per source run), which every consumer supports because block
// boundaries are carried as explicit start ordinals, never derived by
// division.
//
// Decoding dispatches on the frame width: the byte-rounded widths the
// encoder emits go through unrolled width-specialized kernels
// (kernels_gen.go, produced by gen_kernels.go), everything else —
// only foreign writers produce non-byte widths — through the generic
// bit extractors below.

//go:generate go run gen_kernels.go

// compList is one term's compressed postings plus the per-block skip
// metadata (byte offsets, start ordinals, last doc IDs) that lets
// SeekGE and block-max WAND jump across blocks without decoding them.
// Lists of at most BlockSize postings — the overwhelmingly common case
// — keep offs/starts/lasts nil and answer block queries from n,
// len(data), and lastDoc, so a short list costs exactly one data
// allocation.
type compList struct {
	n       int32
	lastDoc corpus.DocID
	data    []byte
	// Multi-block lists only (nil otherwise):
	offs   []uint32       // numBlocks+1 byte offsets into data
	starts []int32        // numBlocks+1 posting ordinals (starts[numBlocks] = n)
	lasts  []corpus.DocID // last doc ID of each block
}

// numBlocks returns the block count.
func (cl *compList) numBlocks() int {
	if cl.offs == nil {
		if cl.n == 0 {
			return 0
		}
		return 1
	}
	return len(cl.offs) - 1
}

// blockData returns the raw bytes of block b.
func (cl *compList) blockData(b int) []byte {
	if cl.offs == nil {
		return cl.data
	}
	return cl.data[cl.offs[b]:cl.offs[b+1]]
}

// blockStart returns the ordinal of block b's first posting.
func (cl *compList) blockStart(b int) int {
	if cl.starts == nil {
		return 0
	}
	return int(cl.starts[b])
}

// blockLen returns the posting count of block b.
func (cl *compList) blockLen(b int) int {
	if cl.starts == nil {
		return int(cl.n)
	}
	return int(cl.starts[b+1] - cl.starts[b])
}

// blockLast returns the last doc ID of block b.
func (cl *compList) blockLast(b int) corpus.DocID {
	if cl.lasts == nil {
		return cl.lastDoc
	}
	return cl.lasts[b]
}

// memBytes is the exact in-memory footprint of the postings
// representation: packed data plus the skip metadata arrays. This is
// what Stats.PostingsBytes sums.
func (cl *compList) memBytes() int64 {
	return int64(len(cl.data)) +
		4*int64(len(cl.offs)) + 4*int64(len(cl.starts)) + 4*int64(len(cl.lasts))
}

// appendUvarint appends v as a uvarint.
func appendUvarint(data []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return append(data, buf[:binary.PutUvarint(buf[:], v)]...)
}

// appendPackedBits appends count values at the given width (≤ 31),
// LSB-first within each byte.
func appendPackedBits(data []byte, vals []uint32, width uint) []byte {
	if width == 0 {
		return data
	}
	var acc uint64
	var nbits uint
	for _, v := range vals {
		acc |= uint64(v) << nbits
		nbits += width
		for nbits >= 8 {
			data = append(data, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		data = append(data, byte(acc))
	}
	return data
}

// unpackBits decodes count width-bit values from data into out.
// len(data) must cover count*width bits; width ≤ 31.
func unpackBits(data []byte, count int, width uint, out []uint32) {
	if width == 0 {
		for i := 0; i < count; i++ {
			out[i] = 0
		}
		return
	}
	mask := uint32(1)<<width - 1
	var acc uint64
	var nbits uint
	pos := 0
	for i := 0; i < count; i++ {
		for nbits < width {
			acc |= uint64(data[pos]) << nbits
			pos++
			nbits += 8
		}
		out[i] = uint32(acc) & mask
		acc >>= width
		nbits -= width
	}
}

// packedLen returns the byte length of count width-bit values.
func packedLen(count int, width uint) int {
	return (count*int(width) + 7) / 8
}

// appendBlock encodes one block of up to BlockSize postings (sorted,
// strictly ascending docs, tfs ≥ 1) after a predecessor whose last doc
// was prevLast (−1 at list start).
func appendBlock(data []byte, prevLast corpus.DocID, pl []Posting) []byte {
	n := len(pl)
	var gaps [BlockSize]uint32
	minGap := uint32(math.MaxUint32)
	prev := pl[0].Doc
	for i := 1; i < n; i++ {
		g := uint32(pl[i].Doc - prev)
		gaps[i-1] = g
		if g < minGap {
			minGap = g
		}
		prev = pl[i].Doc
	}
	var tfs [BlockSize]uint32
	minTF := uint32(math.MaxUint32)
	for i := 0; i < n; i++ {
		tf := uint32(pl[i].TF)
		tfs[i] = tf
		if tf < minTF {
			minTF = tf
		}
	}
	var gapBits, tfBits uint
	for i := 0; i < n-1; i++ {
		gaps[i] -= minGap
		if w := uint(bits.Len32(gaps[i])); w > gapBits {
			gapBits = w
		}
	}
	for i := 0; i < n; i++ {
		tfs[i] -= minTF
		if w := uint(bits.Len32(tfs[i])); w > tfBits {
			tfBits = w
		}
	}
	// Round widths up to whole bytes: the format carries arbitrary bit
	// widths, but byte-aligned frames decode with plain loads instead
	// of shift-and-mask extraction — roughly 3× faster on the block
	// decode that every traversal pays — for a fraction of a byte per
	// posting. One-bit tf frames (ubiquitous tf=1 blocks with a rare
	// 2) stay bit-packed: at one bit the extraction is trivial and the
	// byte-rounding cost is 8×.
	gapBits = (gapBits + 7) &^ 7
	if tfBits > 1 {
		tfBits = (tfBits + 7) &^ 7
	}
	data = appendUvarint(data, uint64(pl[0].Doc-prevLast))
	data = appendUvarint(data, uint64(n))
	data = append(data, byte(gapBits), byte(tfBits))
	if n > 1 {
		data = appendUvarint(data, uint64(minGap-1))
	}
	data = appendUvarint(data, uint64(minTF-1))
	data = appendPackedBits(data, gaps[:n-1], gapBits)
	return appendPackedBits(data, tfs[:n], tfBits)
}

// encodePostings compresses a sorted postings list into
// BlockSize-aligned blocks.
func encodePostings(pl []Posting) compList {
	if len(pl) == 0 {
		return compList{}
	}
	cl := compList{n: int32(len(pl)), lastDoc: pl[len(pl)-1].Doc}
	nb := (len(pl) + BlockSize - 1) / BlockSize
	if nb > 1 {
		cl.offs = make([]uint32, 0, nb+1)
		cl.starts = make([]int32, 0, nb+1)
		cl.lasts = make([]corpus.DocID, 0, nb)
	}
	prevLast := corpus.DocID(-1)
	var data []byte
	for start := 0; start < len(pl); start += BlockSize {
		end := start + BlockSize
		if end > len(pl) {
			end = len(pl)
		}
		if nb > 1 {
			cl.offs = append(cl.offs, uint32(len(data)))
			cl.starts = append(cl.starts, int32(start))
			cl.lasts = append(cl.lasts, pl[end-1].Doc)
		}
		data = appendBlock(data, prevLast, pl[start:end])
		prevLast = pl[end-1].Doc
	}
	if nb > 1 {
		cl.offs = append(cl.offs, uint32(len(data)))
		cl.starts = append(cl.starts, int32(len(pl)))
	}
	cl.data = data
	return cl
}

// blockHeader is a parsed block header with absolute payload offsets.
type blockHeader struct {
	baseDelta uint64
	count     int
	gapBits   uint
	tfBits    uint
	minGap    uint64
	minTF     uint64
	gapsOff   int // offset of the packed gaps within data
	tfsOff    int
	end       int // offset just past the block
}

// parseBlockHeader parses the block starting at data[off:], validating
// every field and that the payload fits in data.
func parseBlockHeader(data []byte, off int) (blockHeader, error) {
	var h blockHeader
	rd := func() (uint64, error) {
		v, k := binary.Uvarint(data[off:])
		if k <= 0 {
			return 0, fmt.Errorf("index: block header: bad varint at %d", off)
		}
		off += k
		return v, nil
	}
	var err error
	if h.baseDelta, err = rd(); err != nil {
		return h, err
	}
	if h.baseDelta == 0 {
		return h, fmt.Errorf("index: block header: zero base delta")
	}
	cnt, err := rd()
	if err != nil {
		return h, err
	}
	if cnt == 0 || cnt > BlockSize {
		return h, fmt.Errorf("index: block header: count %d out of range", cnt)
	}
	h.count = int(cnt)
	if off+2 > len(data) {
		return h, fmt.Errorf("index: block header: truncated widths")
	}
	h.gapBits, h.tfBits = uint(data[off]), uint(data[off+1])
	off += 2
	if h.gapBits > 32 || h.tfBits > 32 {
		return h, fmt.Errorf("index: block header: widths %d/%d out of range", h.gapBits, h.tfBits)
	}
	if h.count > 1 {
		mg, err := rd()
		if err != nil {
			return h, err
		}
		h.minGap = mg + 1
	}
	mt, err := rd()
	if err != nil {
		return h, err
	}
	h.minTF = mt + 1
	h.gapsOff = off
	h.tfsOff = off + packedLen(h.count-1, h.gapBits)
	h.end = h.tfsOff + packedLen(h.count, h.tfBits)
	if h.end > len(data) {
		return h, fmt.Errorf("index: block payload: %d bytes past end", h.end-len(data))
	}
	return h, nil
}

// mustParseHeader parses block b's header; the list must be valid
// (built by encodePostings or validated on load).
func (cl *compList) mustParseHeader(b int) blockHeader {
	h, err := parseBlockHeader(cl.data, cl.byteOff(b))
	if err != nil {
		panic("index: corrupt validated postings block: " + err.Error())
	}
	return h
}

// decodeBlockDocs parses block b's header and decodes its doc IDs
// into out — one fused word-at-a-time unpack-and-prefix-sum pass. The
// returned header lets the caller decode the tf half later without
// reparsing.
func (cl *compList) decodeBlockDocs(b int, out *[BlockSize]corpus.DocID) blockHeader {
	prevLast := corpus.DocID(-1)
	if b > 0 {
		prevLast = cl.blockLast(b - 1)
	}
	h := cl.mustParseHeader(b)
	d := prevLast + corpus.DocID(h.baseDelta)
	out[0] = d
	n := h.count - 1
	if n == 0 {
		return h
	}
	minGap := corpus.DocID(h.minGap)
	if h.gapBits == 0 {
		for i := 1; i <= n; i++ {
			d += minGap
			out[i] = d
		}
		return h
	}
	decodeGaps(cl.data[h.gapsOff:h.tfsOff], n, h.gapBits, minGap, d, out[1:1+n])
	return h
}

// decodeGaps decodes n width-bit gap residuals (width 1..32) into out
// as running doc IDs chained from d: the byte-rounded widths the
// encoder emits dispatch to an unrolled kernel, everything else to the
// generic extractor.
func decodeGaps(src []byte, n int, width uint, minGap, d corpus.DocID, out []corpus.DocID) {
	if k := gapKernels[width]; k != nil {
		k(src, n, minGap, d, out)
		return
	}
	unpackGapsGeneric(src, n, width, minGap, d, out)
}

// unpackGapsGeneric extracts n width-bit gap residuals by absolute bit
// position — one unaligned word load per value; width ≤ 32 plus a
// sub-byte shift ≤ 7 always fits in 64 bits — fusing in the prefix sum
// with direct slice writes. Only the final values whose load would run
// past the payload fall back to a byte gather.
func unpackGapsGeneric(src []byte, n int, width uint, minGap, d corpus.DocID, out []corpus.DocID) {
	mask := uint32(uint64(1)<<width - 1)
	bulk := len(src) - 8
	bitPos := 0
	out = out[:n]
	for i := range out {
		byteIdx := bitPos >> 3
		var v uint32
		if byteIdx <= bulk {
			v = uint32(binary.LittleEndian.Uint64(src[byteIdx:])>>(uint(bitPos)&7)) & mask
		} else {
			v = uint32(gatherTail(src, byteIdx)>>(uint(bitPos)&7)) & mask
		}
		bitPos += int(width)
		d += minGap + corpus.DocID(v)
		out[i] = d
	}
}

// unpackTFsGeneric is unpackGapsGeneric's tf-side twin: direct slice
// writes offset by the block minimum, no prefix sum.
func unpackTFsGeneric(src []byte, n int, width uint, minTF int32, out []int32) {
	mask := uint32(uint64(1)<<width - 1)
	bulk := len(src) - 8
	bitPos := 0
	out = out[:n]
	for i := range out {
		byteIdx := bitPos >> 3
		var v uint32
		if byteIdx <= bulk {
			v = uint32(binary.LittleEndian.Uint64(src[byteIdx:])>>(uint(bitPos)&7)) & mask
		} else {
			v = uint32(gatherTail(src, byteIdx)>>(uint(bitPos)&7)) & mask
		}
		bitPos += int(width)
		out[i] = minTF + int32(v)
	}
}

// gatherTail assembles src[byteIdx:] into one little-endian word — the
// end-of-payload fallback for the generic extractors' unaligned loads.
func gatherTail(src []byte, byteIdx int) uint64 {
	var w uint64
	for k, shift := byteIdx, uint(0); k < len(src); k++ {
		w |= uint64(src[k]) << shift
		shift += 8
	}
	return w
}

// decodeBlockTFs decodes the tf half of a block whose header was
// already parsed by decodeBlockDocs.
func (cl *compList) decodeBlockTFs(h blockHeader, out *[BlockSize]int32) {
	minTF := int32(h.minTF)
	if h.tfBits == 0 {
		for i := 0; i < h.count; i++ {
			out[i] = minTF
		}
		return
	}
	decodeTFs(cl.data[h.tfsOff:h.end], h.count, h.tfBits, minTF, out[:h.count])
}

// decodeTFs decodes n width-bit tf residuals (width 1..32) into out,
// offset by the block minimum — kernel dispatch with generic fallback,
// mirroring decodeGaps.
func decodeTFs(src []byte, n int, width uint, minTF int32, out []int32) {
	if k := tfKernels[width]; k != nil {
		k(src, n, minTF, out)
		return
	}
	unpackTFsGeneric(src, n, width, minTF, out)
}

// byteOff returns the byte offset of block b in data.
func (cl *compList) byteOff(b int) int {
	if cl.offs == nil {
		return 0
	}
	return int(cl.offs[b])
}

// newCompListFromWire reconstructs a list from its wire data: walks
// the block headers to derive offsets and start ordinals, attaches the
// separately stored per-block last docs, then fully decodes every
// block once to verify the structure — strictly ascending doc IDs
// inside [0, numDocs), positive frequencies, agreement with the stored
// last docs — so corrupt or truncated input is rejected here with an
// error and iterators over accepted lists can decode unchecked.
func newCompListFromWire(n int, data []byte, lasts []corpus.DocID, numDocs int) (compList, error) {
	return newCompListWire(n, data, lasts, numDocs, true)
}

// newCompListWire is newCompListFromWire with the payload decode pass
// optional: the mapped open path (OpenMapped) accepts lists on
// structural checks alone — walking every self-describing block header
// and the skip metadata — without faulting in and decoding every
// payload page. Block headers, offsets and counts are still fully
// validated here, so decoding stays in-bounds; a corrupt payload can
// only yield wrong posting values (a trade the mapped path documents:
// segment files are written and fsynced by this process).
func newCompListWire(n int, data []byte, lasts []corpus.DocID, numDocs int, verifyPayload bool) (compList, error) {
	if n == 0 {
		if len(data) != 0 || len(lasts) != 0 {
			return compList{}, fmt.Errorf("index: empty list with %d data bytes", len(data))
		}
		return compList{}, nil
	}
	offs, starts, err := walkBlocks(data, n)
	if err != nil {
		return compList{}, err
	}
	nb := len(offs) - 1
	if len(lasts) != nb {
		return compList{}, fmt.Errorf("index: %d block-last entries for %d blocks", len(lasts), nb)
	}
	cl := compList{n: int32(n), data: data, lastDoc: lasts[nb-1]}
	if nb > 1 {
		cl.offs, cl.starts, cl.lasts = offs, starts, lasts
	}
	if !verifyPayload {
		return cl, nil
	}
	prevLast := corpus.DocID(-1)
	for b := 0; b < nb; b++ {
		h, err := parseBlockHeader(data, int(offs[b]))
		if err != nil {
			return compList{}, err
		}
		var resid [BlockSize]uint32
		unpackBits(data[h.gapsOff:h.tfsOff], h.count-1, h.gapBits, resid[:])
		d := int64(prevLast) + int64(h.baseDelta)
		for i := 0; i < h.count; i++ {
			if i > 0 {
				d += int64(h.minGap) + int64(resid[i-1])
			}
			if d >= int64(numDocs) || d > math.MaxInt32 {
				return compList{}, fmt.Errorf("index: block %d doc %d out of range", b, d)
			}
		}
		if corpus.DocID(d) != lasts[b] {
			return compList{}, fmt.Errorf("index: block %d last doc %d, metadata says %d", b, d, lasts[b])
		}
		unpackBits(data[h.tfsOff:h.end], h.count, h.tfBits, resid[:])
		for i := 0; i < h.count; i++ {
			if h.minTF+uint64(resid[i]) > math.MaxInt32 {
				return compList{}, fmt.Errorf("index: block %d tf overflow", b)
			}
		}
		prevLast = lasts[b]
	}
	return cl, nil
}

// walkBlocks scans the block headers (no payload decode) of a list of
// n postings, returning per-block byte offsets and start ordinals,
// both with an end sentinel.
func walkBlocks(data []byte, n int) (offs []uint32, starts []int32, err error) {
	off, start := 0, 0
	for start < n {
		h, err := parseBlockHeader(data, off)
		if err != nil {
			return nil, nil, err
		}
		if start+h.count > n {
			return nil, nil, fmt.Errorf("index: blocks hold more than %d postings", n)
		}
		offs = append(offs, uint32(off))
		starts = append(starts, int32(start))
		off, start = h.end, start+h.count
	}
	if off != len(data) {
		return nil, nil, fmt.Errorf("index: %d trailing bytes after last block", len(data)-off)
	}
	return append(offs, uint32(off)), append(starts, int32(n)), nil
}
