//go:build linux

package index

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// mapping is a read-only memory mapping of one TPIX file. A finalizer
// backstops Close: the segment store retires parts by dropping all
// references (a snapshot taken for Save may still be reading them, so
// an eager munmap would be unsound there), and the mapping is then
// unmapped when the collector proves nothing can touch its pages.
type mapping struct {
	data   []byte
	mmaped bool
}

// mapFile maps path read-only with MADV_RANDOM-ready pages.
func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return &mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("file size %d exceeds address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap %s: %w", path, err)
	}
	m := &mapping{data: data, mmaped: true}
	runtime.SetFinalizer(m, (*mapping).Close)
	return m, nil
}

// Close unmaps. Idempotent; safe on nil.
func (m *mapping) Close() error {
	if m == nil || !m.mmaped {
		return nil
	}
	m.mmaped = false
	data := m.data
	m.data = nil
	runtime.SetFinalizer(m, nil)
	return syscall.Munmap(data)
}

// heapBacked reports whether the mapping's bytes occupy heap memory
// (the portable fallback) rather than evictable page-cache pages.
func (m *mapping) heapBacked() bool { return m != nil && !m.mmaped && m.data != nil }

// adviseSequential hints the kernel that the mapping is about to be
// read front to back (the open-time metadata walk).
func (m *mapping) adviseSequential() {
	if m != nil && m.mmaped {
		_ = syscall.Madvise(m.data, syscall.MADV_SEQUENTIAL)
	}
}

// adviseRandom hints the kernel that access is now skippy block
// traversal, disabling readahead so a seek-heavy query faults in only
// the blocks it decodes.
func (m *mapping) adviseRandom() {
	if m != nil && m.mmaped {
		_ = syscall.Madvise(m.data, syscall.MADV_RANDOM)
	}
}
