package index

import (
	"sync"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// TestBlockCacheSizing: capacity maps to slots, zero and negative
// capacities yield a nil (valid, inert) cache.
func TestBlockCacheSizing(t *testing.T) {
	if NewBlockCache(0) != nil || NewBlockCache(-1) != nil {
		t.Fatal("non-positive capacity must yield a nil cache")
	}
	c := NewBlockCache(1) // under one slot's cost: still one slot
	if s := c.Stats(); s.Slots != 1 {
		t.Fatalf("minimum cache has %d slots, want 1", s.Slots)
	}
	c = NewBlockCache(10 * slotCostBytes)
	if s := c.Stats(); s.Slots != 10 || s.Bytes != 10*slotCostBytes {
		t.Fatalf("slots=%d bytes=%d, want 10/%d", s.Slots, s.Bytes, 10*slotCostBytes)
	}
	var nilCache *BlockCache
	if s := nilCache.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
}

// TestBlockCacheHitMissEviction exercises the CLOCK ring directly:
// misses fill slots, refills hit, and overflow evicts without losing
// the newest entries' integrity.
func TestBlockCacheHitMissEviction(t *testing.T) {
	c := NewBlockCache(2 * slotCostBytes) // exactly two slots
	owner := c.RegisterOwner()
	var docs [BlockSize]corpus.DocID
	var tfs [BlockSize]int32
	fill := func(seed corpus.DocID) (*[BlockSize]corpus.DocID, *[BlockSize]int32) {
		var d [BlockSize]corpus.DocID
		var f [BlockSize]int32
		for i := range d {
			d[i] = seed + corpus.DocID(i)
			f[i] = int32(seed%7) + 1
		}
		return &d, &f
	}
	key := func(b int32) cacheKey { return cacheKey{owner: owner, term: 1, block: b} }

	if _, ok := c.get(key(0), &docs, &tfs); ok {
		t.Fatal("empty cache reported a hit")
	}
	d0, f0 := fill(100)
	c.put(key(0), d0, f0, BlockSize)
	n, ok := c.get(key(0), &docs, &tfs)
	if !ok || n != BlockSize || docs[0] != 100 || docs[BlockSize-1] != 100+BlockSize-1 || tfs[0] != f0[0] {
		t.Fatalf("hit returned n=%d ok=%v docs[0]=%d", n, ok, docs[0])
	}
	// Duplicate put is a benign no-op.
	c.put(key(0), d0, f0, BlockSize)
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("duplicate put grew entries to %d", s.Entries)
	}
	// Fill the second slot, then a third insert must evict.
	d1, f1 := fill(500)
	c.put(key(1), d1, f1, 7)
	d2, f2 := fill(900)
	c.put(key(2), d2, f2, BlockSize)
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("after overflow: evictions=%d entries=%d", s.Evictions, s.Entries)
	}
	// The newest entry must be present and intact (partial block: only
	// n postings are copied back).
	if n, ok := c.get(key(2), &docs, &tfs); !ok || n != BlockSize || docs[0] != 900 {
		t.Fatalf("newest entry lost: n=%d ok=%v", n, ok)
	}
	if s := c.Stats(); s.Hits < 2 || s.Misses < 1 {
		t.Fatalf("counters hits=%d misses=%d", s.Hits, s.Misses)
	}
}

// TestBlockCacheDropOwner: dropping one owner's namespace purges its
// entries and leaves the other owner's untouched.
func TestBlockCacheDropOwner(t *testing.T) {
	c := NewBlockCache(8 * slotCostBytes)
	a, b := c.RegisterOwner(), c.RegisterOwner()
	if a == b {
		t.Fatal("owners must be distinct")
	}
	var d [BlockSize]corpus.DocID
	var f [BlockSize]int32
	d[0] = 42
	c.put(cacheKey{owner: a, term: 1, block: 0}, &d, &f, 1)
	c.put(cacheKey{owner: b, term: 1, block: 0}, &d, &f, 1)
	c.DropOwner(a)
	if _, ok := c.get(cacheKey{owner: a, term: 1, block: 0}, &d, &f); ok {
		t.Fatal("dropped owner's entry still served")
	}
	if _, ok := c.get(cacheKey{owner: b, term: 1, block: 0}, &d, &f); !ok {
		t.Fatal("surviving owner's entry purged")
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("entries=%d after drop, want 1", s.Entries)
	}
}

// TestCachedIteratorEquivalence attaches a cache to a multi-block
// index and traverses every list twice — a cold pass that fills the
// cache and a warm pass served from it. Both must reproduce
// Postings() exactly, and the warm pass must actually hit.
func TestCachedIteratorEquivalence(t *testing.T) {
	x := multiBlockIndex(t)
	c := NewBlockCache(1 << 20)
	x.AttachCache(c)
	defer x.DropCache()
	for pass := 0; pass < 2; pass++ {
		for tid := 0; tid < x.NumTerms(); tid++ {
			want := x.Postings(textproc.TermID(tid))
			it := x.Iter(textproc.TermID(tid))
			for i, p := range want {
				if !it.Valid() || it.Doc() != p.Doc || it.TF() != p.TF {
					t.Fatalf("pass %d term %d posting %d: got (%d,%d,%v), want %v",
						pass, tid, i, it.Doc(), it.TF(), it.Valid(), p)
				}
				it.Next()
			}
			if it.Valid() {
				t.Fatalf("pass %d term %d: iterator past the end", pass, tid)
			}
		}
	}
	s := c.Stats()
	if s.Hits == 0 {
		t.Fatal("warm pass never hit the cache")
	}
	if s.Misses == 0 {
		t.Fatal("cold pass never missed (cache not consulted?)")
	}
	// Seeks through the cached path must agree too.
	for tid := 0; tid < x.NumTerms(); tid++ {
		want := x.Postings(textproc.TermID(tid))
		for i := 0; i < len(want); i += 3 {
			it := x.Iter(textproc.TermID(tid))
			if !it.SeekGE(want[i].Doc) || it.Doc() != want[i].Doc {
				t.Fatalf("term %d: cached SeekGE(%d) landed on (%d,%v)",
					tid, want[i].Doc, it.Doc(), it.Valid())
			}
		}
	}
}

// TestCachedIteratorTinyCache forces constant eviction (one slot) and
// still requires exact traversal — correctness must not depend on
// residency.
func TestCachedIteratorTinyCache(t *testing.T) {
	x := multiBlockIndex(t)
	c := NewBlockCache(1)
	x.AttachCache(c)
	defer x.DropCache()
	for tid := 0; tid < x.NumTerms(); tid++ {
		want := x.Postings(textproc.TermID(tid))
		it := x.Iter(textproc.TermID(tid))
		for i, p := range want {
			if !it.Valid() || it.Doc() != p.Doc || it.TF() != p.TF {
				t.Fatalf("term %d posting %d mismatch under eviction churn", tid, i)
			}
			it.Next()
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("one-slot cache over a multi-block index must evict")
	}
}

// TestBlockCacheConcurrent hammers one shared cache from many
// goroutines across two attached indexes — the race detector build in
// CI turns any locking hole into a failure.
func TestBlockCacheConcurrent(t *testing.T) {
	x := multiBlockIndex(t)
	y := multiBlockIndex(t)
	// Big enough to hold both indexes' blocks: cyclic traversal over a
	// working set larger than the ring is CLOCK's zero-hit worst case,
	// which would make the hit assertion below flaky-by-interleaving.
	c := NewBlockCache(2 << 20)
	x.AttachCache(c)
	y.AttachCache(c)
	defer x.DropCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ix := x
			if g%2 == 1 {
				ix = y
			}
			for rep := 0; rep < 20; rep++ {
				for tid := 0; tid < ix.NumTerms(); tid++ {
					n := 0
					for it := ix.Iter(textproc.TermID(tid)); it.Valid(); it.Next() {
						n++
					}
					if n != ix.DocFreq(textproc.TermID(tid)) {
						t.Errorf("goroutine %d: term %d count %d", g, tid, n)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	y.DropCache()
	if s := c.Stats(); s.Hits == 0 {
		t.Fatal("concurrent traversals never hit")
	}
}
