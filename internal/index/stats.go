package index

// Stats summarizes the index shape. The paper uses exactly these
// numbers in its PIR impracticality argument (§II): the WSJ index
// averages 186.7 postings per list but the longest list holds 127,848,
// so PIR padding blows the database up from 259 MB to 178 GB.
type Stats struct {
	NumDocs     int
	NumTerms    int
	NumPostings int
	// MeanListLen is the average postings-list length.
	MeanListLen float64
	// MaxListLen is the longest postings list.
	MaxListLen int
	// SizeBytes is the serialized index size.
	SizeBytes int64
	// PostingsBytes is the exact in-memory footprint of the
	// block-compressed postings: packed data plus the per-block skip
	// metadata (offsets, start ordinals, last docs). Impact bounds and
	// the dictionary are excluded — this is the number to compare
	// against 8·NumPostings, the cost of the uncompressed
	// ⟨int32 doc, int32 tf⟩ representation.
	PostingsBytes int64
	// BytesPerDoc is PostingsBytes per indexed document — the
	// index_bytes/doc metric the bench suite records and CI gates.
	BytesPerDoc float64
	// ResidentBytes is the heap-resident portion of PostingsBytes: for
	// a mapped index (OpenMapped on Linux) the packed payloads live on
	// evictable page-cache pages and only the skip metadata counts;
	// everywhere else it equals PostingsBytes. The store adds its
	// block-cache allocation on top.
	ResidentBytes int64
	// ResidentPerDoc is ResidentBytes per indexed document — the
	// resident_bytes/doc metric the bench suite records and CI gates.
	ResidentPerDoc float64
	// PaddedPIRBytes estimates the index size if every list were padded
	// to MaxListLen, as PIR requires (every retrieval unit equal-sized).
	PaddedPIRBytes int64
}

// ComputeStats scans the index once and serializes it once.
func (x *Index) ComputeStats() Stats {
	s := Stats{NumDocs: x.numDocs, NumTerms: len(x.lists)}
	var mappedPayload int64
	for t := range x.lists {
		cl := &x.lists[t]
		s.NumPostings += int(cl.n)
		if int(cl.n) > s.MaxListLen {
			s.MaxListLen = int(cl.n)
		}
		s.PostingsBytes += cl.memBytes()
		mappedPayload += int64(len(cl.data))
	}
	s.ResidentBytes = s.PostingsBytes
	if x.mapped != nil && !x.mapped.heapBacked() {
		// Payload bytes are views into the mapping; only the skip
		// metadata arrays are heap-resident.
		s.ResidentBytes -= mappedPayload
	}
	if s.NumTerms > 0 {
		s.MeanListLen = float64(s.NumPostings) / float64(s.NumTerms)
	}
	if s.NumDocs > 0 {
		s.BytesPerDoc = float64(s.PostingsBytes) / float64(s.NumDocs)
		s.ResidentPerDoc = float64(s.ResidentBytes) / float64(s.NumDocs)
	}
	s.SizeBytes = x.SizeBytes()
	// A posting is one ⟨doc,tf⟩ pair; estimate the padded size using the
	// actual mean bytes per stored posting, scaled to MaxListLen lists.
	if s.NumPostings > 0 {
		bytesPerPosting := float64(s.SizeBytes) / float64(s.NumPostings)
		s.PaddedPIRBytes = int64(bytesPerPosting * float64(s.MaxListLen) * float64(s.NumTerms))
	}
	return s
}

// BlowupFactor returns PaddedPIRBytes / SizeBytes, the cost multiplier
// PIR padding imposes.
func (s Stats) BlowupFactor() float64 {
	if s.SizeBytes == 0 {
		return 0
	}
	return float64(s.PaddedPIRBytes) / float64(s.SizeBytes)
}
