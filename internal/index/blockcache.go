package index

import (
	"sync"
	"sync/atomic"

	"toppriv/internal/corpus"
)

// BlockCache is a shared, capacity-pinned cache of decoded postings
// blocks, keyed by ⟨owner index, term, block ordinal⟩. Its purpose is
// disk residency: a mapped index decodes straight from page-cache
// backed payload bytes, and caching the decoded frames keeps a hot
// list's blocks from paying the unpack (and, under memory pressure,
// the page fault) on every traversal.
//
// The slot array is allocated once at construction and never grows —
// the cache's memory budget is pinned, which is what lets the store
// report an honest resident-bytes figure. Eviction is CLOCK: a hand
// sweeps the slot ring clearing reference bits until it finds an
// unreferenced victim, giving LRU-like behavior with one byte of
// state per slot and no per-hit list surgery. All operations are
// safe for concurrent use; hit/miss/eviction counters are atomic.
type BlockCache struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	mu        sync.Mutex
	slots     []cacheSlot
	index     map[cacheKey]int32
	hand      int
	free      int
	nextOwner uint32
}

// cacheKey names one decoded block. The owner field namespaces
// entries per attached index (see Index.AttachCache), so a retired
// segment's entries can be purged without touching its neighbors'.
type cacheKey struct {
	owner uint32
	term  int32
	block int32
}

type cacheSlot struct {
	key  cacheKey
	used bool
	ref  bool
	n    int32
	docs [BlockSize]corpus.DocID
	tfs  [BlockSize]int32
}

// slotCostBytes is the accounted resident cost of one slot: the two
// decoded BlockSize frames (4 bytes per doc, 4 per tf) plus slot and
// map-entry bookkeeping.
const slotCostBytes = 8*BlockSize + 80

// NewBlockCache returns a cache holding at most capBytes of decoded
// blocks (at least one slot). Returns nil for capBytes <= 0 — a nil
// cache is valid everywhere a cache is optional.
func NewBlockCache(capBytes int64) *BlockCache {
	if capBytes <= 0 {
		return nil
	}
	n := int(capBytes / slotCostBytes)
	if n < 1 {
		n = 1
	}
	return &BlockCache{
		slots: make([]cacheSlot, n),
		index: make(map[cacheKey]int32, n),
		free:  n,
	}
}

// RegisterOwner allocates a fresh namespace for an index attaching to
// the cache.
func (c *BlockCache) RegisterOwner() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextOwner++
	return c.nextOwner
}

// DropOwner purges every entry of one namespace — called when an
// index detaches (segment retired by compaction, index closed).
func (c *BlockCache) DropOwner(owner uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, s := range c.index {
		if k.owner == owner {
			c.slots[s].used = false
			c.slots[s].ref = false
			c.free++
			delete(c.index, k)
		}
	}
}

// get copies the cached block into the caller's frames, returning its
// posting count and whether it was present.
func (c *BlockCache) get(k cacheKey, docs *[BlockSize]corpus.DocID, tfs *[BlockSize]int32) (int, bool) {
	c.mu.Lock()
	s, ok := c.index[k]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return 0, false
	}
	slot := &c.slots[s]
	slot.ref = true
	n := int(slot.n)
	copy(docs[:n], slot.docs[:n])
	copy(tfs[:n], slot.tfs[:n])
	c.mu.Unlock()
	c.hits.Add(1)
	return n, true
}

// put inserts a decoded block, evicting the CLOCK victim when full.
// A concurrent insert of the same key wins benignly.
func (c *BlockCache) put(k cacheKey, docs *[BlockSize]corpus.DocID, tfs *[BlockSize]int32, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.index[k]; ok {
		return
	}
	var s int
	for {
		slot := &c.slots[c.hand]
		s = c.hand
		c.hand++
		if c.hand == len(c.slots) {
			c.hand = 0
		}
		if !slot.used {
			c.free--
			break
		}
		if !slot.ref {
			delete(c.index, slot.key)
			c.evictions.Add(1)
			break
		}
		// Referenced since the last sweep: spare it this pass. Every
		// probe clears a bit, so at most two sweeps find a victim.
		slot.ref = false
	}
	slot := &c.slots[s]
	slot.key = k
	slot.used = true
	slot.ref = true
	slot.n = int32(n)
	copy(slot.docs[:n], docs[:n])
	copy(slot.tfs[:n], tfs[:n])
	c.index[k] = int32(s)
}

// warmPut inserts a decoded block into a free slot, or reports false
// when none remains. Warming never evicts: a compaction pre-filling the
// cache with the merged segment's blocks must not displace entries that
// live queries put there, so it only claims capacity nothing else is
// using. A concurrent insert of the same key wins benignly.
func (c *BlockCache) warmPut(k cacheKey, docs *[BlockSize]corpus.DocID, tfs *[BlockSize]int32, n int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.index[k]; ok {
		return true
	}
	if c.free == 0 {
		return false
	}
	// Sweep from the CLOCK hand without moving it: the hand's position
	// encodes eviction fairness for real puts and warming must not
	// perturb it.
	s := c.hand
	for c.slots[s].used {
		s++
		if s == len(c.slots) {
			s = 0
		}
	}
	slot := &c.slots[s]
	slot.key = k
	slot.used = true
	slot.ref = true
	slot.n = int32(n)
	copy(slot.docs[:n], docs[:n])
	copy(slot.tfs[:n], tfs[:n])
	c.index[k] = int32(s)
	c.free--
	return true
}

// CacheStats is a point-in-time snapshot of cache effectiveness and
// footprint, surfaced through GET /stats and the telemetry registry.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Entries is the number of blocks currently cached; Slots the
	// pinned capacity in blocks.
	Entries int `json:"entries"`
	Slots   int `json:"slots"`
	// Bytes is the pinned resident cost of the slot array — allocated
	// up front, independent of fill.
	Bytes int64 `json:"bytes"`
}

// Stats snapshots the cache counters.
func (c *BlockCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	entries, slots := len(c.index), len(c.slots)
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Slots:     slots,
		Bytes:     int64(slots) * slotCostBytes,
	}
}
