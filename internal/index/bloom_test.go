package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"toppriv/internal/textproc"
)

// TestBloomNoFalseNegatives is the filter's one hard guarantee: every
// term added — here, every dictionary term of a built index — must
// probe positive. A false negative would make the segment store skip a
// segment that holds real postings, silently dropping results.
func TestBloomNoFalseNegatives(t *testing.T) {
	x := multiBlockIndex(t)
	bl := x.Bloom()
	for id := 0; id < x.NumTerms(); id++ {
		term := x.Vocab().Term(textproc.TermID(id))
		if !bl.MayContain(term) {
			t.Fatalf("term %q added but MayContain = false", term)
		}
	}
}

// TestBloomFalsePositiveRate checks the sizing constants deliver
// roughly the designed rate: 10 bits and 7 probes per term is ~0.8%
// theoretical, so 5% over 2000 absent probes is a loose, stable bound.
func TestBloomFalsePositiveRate(t *testing.T) {
	const n = 1000
	bl := NewTermBloom(n)
	for i := 0; i < n; i++ {
		bl.Add(fmt.Sprintf("present-%d", i))
	}
	fp := 0
	const probes = 2000
	for i := 0; i < probes; i++ {
		if bl.MayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.3f exceeds 0.05 (%d/%d)", rate, fp, probes)
	}
}

// TestBloomEmptyRejectsEverything: the zero value, a nil filter, and a
// filter sized for zero terms all reject every probe.
func TestBloomEmptyRejectsEverything(t *testing.T) {
	var zero TermBloom
	var nilBloom *TermBloom
	for _, bl := range []*TermBloom{&zero, nilBloom, NewTermBloom(0)} {
		if bl.MayContain("anything") {
			t.Fatal("empty filter must reject")
		}
	}
	if NewTermBloom(0).SizeBytes() != 0 || nilBloom.SizeBytes() != 0 {
		t.Fatal("empty filter must report zero size")
	}
}

// TestBloomWireRoundTrip writes an index (v6 appends the bloom tail)
// and reads it back: the persisted filter must match the built one
// bit-for-bit, so segment skipping behaves identically before and
// after a save/load cycle.
func TestBloomWireRoundTrip(t *testing.T) {
	for _, x := range []*Index{fixtureIndex(t), multiBlockIndex(t)} {
		want := x.Bloom()
		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		y, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got := y.Bloom()
		if got.k != want.k || len(got.bits) != len(want.bits) {
			t.Fatalf("shape: k=%d/%d words=%d/%d", got.k, want.k, len(got.bits), len(want.bits))
		}
		for i := range want.bits {
			if got.bits[i] != want.bits[i] {
				t.Fatalf("bloom word %d differs after round trip", i)
			}
		}
	}
}

// bloomWire serializes a filter in the v6 trailing-section layout.
func bloomWire(k uint64, words []uint64) []byte {
	var buf []byte
	vb := make([]byte, binary.MaxVarintLen64)
	buf = append(buf, vb[:binary.PutUvarint(vb, k)]...)
	buf = append(buf, vb[:binary.PutUvarint(vb, uint64(len(words)))]...)
	for _, w := range words {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], w)
		buf = append(buf, b[:]...)
	}
	return buf
}

// TestBloomWireCorruptRejected drives readBloomWire with malformed
// trailing sections: every case must error, never allocate wildly or
// accept a filter that could yield false negatives.
func TestBloomWireCorruptRejected(t *testing.T) {
	cases := []struct {
		name     string
		numTerms uint64
		wire     []byte
	}{
		{"truncated at probes", 4, nil},
		{"truncated at words", 4, bloomWire(7, nil)[:1]},
		{"truncated bits", 4, bloomWire(7, []uint64{1, 2})[:10]},
		{"zero probes with terms", 4, bloomWire(0, nil)},
		{"zero probes nonzero words", 0, bloomWire(0, []uint64{1})},
		{"nonzero probes zero words", 4, bloomWire(7, nil)},
		{"probe count too high", 4, bloomWire(maxBloomHashes+1, []uint64{1})},
		{"implausible word count", 4, append(bloomWire(7, nil)[:1], bloomWire(1<<40, nil)[1:]...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := readBloomWire(&sliceReader{data: tc.wire}, tc.numTerms); err == nil {
				t.Fatalf("corrupt bloom wire accepted (%d bytes, %d terms)", len(tc.wire), tc.numTerms)
			}
		})
	}
	// The one legal empty form: no probes, no words, no terms.
	bl, err := readBloomWire(&sliceReader{data: bloomWire(0, nil)}, 0)
	if err != nil {
		t.Fatalf("empty bloom for empty dictionary must load: %v", err)
	}
	if bl.MayContain("x") {
		t.Fatal("empty bloom must reject")
	}
}

// FuzzBloomFilter feeds newline-separated term lists through the
// filter: even-indexed terms are added, and the invariants checked are
// (1) no added term ever probes negative, and (2) the wire form reread
// through readBloomWire reproduces the exact bit array.
func FuzzBloomFilter(f *testing.F) {
	f.Add([]byte("apache\nhelicopter\nstock\nmarket\ntrading"))
	f.Add([]byte("a\n\nb\n\nc"))
	f.Add([]byte(""))
	f.Add([]byte("\xff\x00\xfe\nterm"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		terms := strings.Split(string(data), "\n")
		bl := NewTermBloom(len(terms))
		var added []string
		for i, term := range terms {
			if i%2 == 0 {
				bl.Add(term)
				added = append(added, term)
			}
		}
		for _, term := range added {
			if !bl.MayContain(term) {
				t.Fatalf("false negative for added term %q", term)
			}
		}
		reread, err := readBloomWire(&sliceReader{data: bloomWire(uint64(bl.k), bl.bits)}, uint64(len(terms)))
		if err != nil {
			if len(bl.bits) != 0 {
				t.Fatalf("wire round trip of real filter failed: %v", err)
			}
			return
		}
		if reread.k != bl.k || len(reread.bits) != len(bl.bits) {
			t.Fatalf("wire shape changed: k=%d/%d words=%d/%d", reread.k, bl.k, len(reread.bits), len(bl.bits))
		}
		for i := range bl.bits {
			if reread.bits[i] != bl.bits[i] {
				t.Fatalf("bloom word %d changed across wire", i)
			}
		}
	})
}
