package index

import (
	"encoding/binary"
	"fmt"
	"math"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// DroppedDoc marks a document eliminated by a Merge (a tombstoned doc
// that did not survive into the merged index).
const DroppedDoc corpus.DocID = -1

// Merge combines several indexes into one over their surviving
// documents, working entirely at the postings level — no text is
// re-analyzed. keep[i], when non-nil, reports whether local document d
// of parts[i] survives; a nil predicate (or a nil keep slice) keeps
// every document of that part.
//
// Surviving documents are renumbered densely in part order, then
// ascending local ID within each part. The returned remap has one slice
// per part mapping local ID → merged ID, with DroppedDoc for eliminated
// documents. Vocabularies are unioned in part order; when every part
// shares prefix-compatible vocabularies (the segment store's shared
// dictionary), term IDs are preserved verbatim.
//
// Because parts are concatenated in order, their lists never
// interleave in a merged list, so merging is block-wise: a part with
// no dropped documents contributes its compressed blocks byte-for-byte
// (only the first block's base varint is rewritten to the new document
// offset — delta coding is shift-invariant) together with its block
// impact bounds, decoding nothing. Only parts with tombstoned
// documents are decoded, filtered, and re-encoded. The fast path
// requires every part's term IDs to survive the vocabulary union
// verbatim; otherwise Merge falls back to a full decode-and-rebuild,
// which produces exactly what Build over the surviving documents
// would.
func Merge(parts []*Index, keep []func(corpus.DocID) bool) (*Index, [][]corpus.DocID, error) {
	if len(parts) == 0 {
		return nil, nil, fmt.Errorf("index: merge of zero parts")
	}
	if keep != nil && len(keep) != len(parts) {
		return nil, nil, fmt.Errorf("index: merge: %d parts but %d keep predicates", len(parts), len(keep))
	}

	// Union the vocabularies and record, per part, local → merged term
	// IDs, noting whether every part keeps its IDs (the block-wise
	// precondition: per-part document norms then accumulate term
	// contributions in the same order a merged recomputation would, so
	// copied cosine bounds stay bit-identical).
	vocab := textproc.NewVocab()
	termMap := make([][]textproc.TermID, len(parts))
	identity := true
	for i, part := range parts {
		tm := make([]textproc.TermID, part.NumTerms())
		for t := 0; t < part.NumTerms(); t++ {
			tm[t] = vocab.Add(part.vocab.Term(textproc.TermID(t)))
			if int(tm[t]) != t {
				identity = false
			}
		}
		termMap[i] = tm
	}

	// Renumber surviving documents densely.
	remap := make([][]corpus.DocID, len(parts))
	dirty := make([]bool, len(parts))
	merged := &Index{vocab: vocab}
	for i, part := range parts {
		pred := func(corpus.DocID) bool { return true }
		if keep != nil && keep[i] != nil {
			pred = keep[i]
		}
		dm := make([]corpus.DocID, part.NumDocs())
		for d := 0; d < part.NumDocs(); d++ {
			if !pred(corpus.DocID(d)) {
				dm[d] = DroppedDoc
				dirty[i] = true
				continue
			}
			dm[d] = corpus.DocID(merged.numDocs)
			merged.numDocs++
			dl := part.DocLen(corpus.DocID(d))
			merged.docLen = append(merged.docLen, dl)
			merged.totalLen += dl
		}
		remap[i] = dm
	}

	if identity {
		mergeBlockwise(merged, parts, remap, dirty)
	} else {
		mergeRebuild(merged, parts, termMap, remap)
	}
	return merged, remap, nil
}

// mergeRebuild is the general path: decode every list, concatenate the
// remapped survivors, and recompute all impact metadata — exactly what
// Build over the surviving documents produces.
func mergeRebuild(merged *Index, parts []*Index, termMap [][]textproc.TermID, remap [][]corpus.DocID) {
	raw := make([][]Posting, merged.vocab.Size())
	// Processing parts in order keeps every list sorted: merged IDs of
	// part i all precede part i+1's, and each source list is already
	// ascending.
	for i, part := range parts {
		dm := remap[i]
		for t := 0; t < part.NumTerms(); t++ {
			it := part.iterUncached(textproc.TermID(t))
			if !it.Valid() {
				continue
			}
			mt := termMap[i][t]
			dst := raw[mt]
			for {
				docs, tfs := it.Window()
				for j, d := range docs {
					if nd := dm[d]; nd != DroppedDoc {
						dst = append(dst, Posting{Doc: nd, TF: tfs[j]})
					}
				}
				if !it.NextWindow() {
					break
				}
			}
			raw[mt] = dst
		}
	}
	// Max-impact metadata does not merge by taking maxima: dropped
	// documents may have carried a list's maximum, and block layouts
	// change with the surviving postings. Recompute from the merged
	// lists.
	merged.computeImpacts(raw)
	merged.compressLists(raw)
}

// mergeBlockwise is the identity-vocabulary path: per merged list,
// clean parts contribute their compressed blocks verbatim (first block
// rebased) and their impact bounds unchanged, while dirty parts are
// decoded, filtered, and re-encoded with bounds from that part's own
// document norms. Interior blocks may therefore be shorter than
// BlockSize (one partial block per source run), which the iterator
// supports natively. Term-level maxima are folded from the assembled
// blocks; they equal what a recomputation over the merged postings
// yields, because every copied cosine bound divides by a norm that is
// bit-identical in part and merged index (a surviving document keeps
// all its postings, visited in the same term order).
func mergeBlockwise(merged *Index, parts []*Index, remap [][]corpus.DocID, dirty []bool) {
	nTerms := merged.vocab.Size()
	merged.lists = make([]compList, nTerms)
	merged.blocks = make([][]BlockMax, nTerms)
	merged.heads = make([][]int32, nTerms)
	merged.maxTF = make([]int32, nTerms)
	merged.maxCos = make([]float64, nTerms)
	merged.maxBM = make([]float64, nTerms)

	// Per-part document norms, needed only where re-encoding happens.
	norms := make([][]float64, len(parts))
	for i, part := range parts {
		if dirty[i] {
			norms[i] = partNorms(part)
		}
	}

	var mb mergedListBuilder
	var decoded []Posting       // dirty-part scratch: filtered postings, merged IDs
	var origDocs []corpus.DocID // parallel original local IDs for norm lookup
	for t := 0; t < nTerms; t++ {
		mb.reset()
		for i, part := range parts {
			if t >= part.NumTerms() {
				continue
			}
			cl := &part.lists[t]
			if cl.n == 0 {
				continue
			}
			if !dirty[i] {
				// dm is a pure shift for a clean part: merged IDs are
				// dense and ascend with local IDs.
				shift := remap[i][0]
				mb.appendClean(cl, part.blocks[t], shift)
				continue
			}
			decoded, origDocs = decoded[:0], origDocs[:0]
			it := newCompIterator(cl, nil, nil)
			dm := remap[i]
			for it.Valid() {
				docs, tfs := it.Window()
				for j, d := range docs {
					if nd := dm[d]; nd != DroppedDoc {
						decoded = append(decoded, Posting{Doc: nd, TF: tfs[j]})
						origDocs = append(origDocs, d)
					}
				}
				if !it.NextWindow() {
					break
				}
			}
			mb.appendReencoded(decoded, origDocs, norms[i])
		}
		merged.lists[t], merged.blocks[t] = mb.finish()
		merged.heads[t] = headOrder(merged.blocks[t])
		merged.maxTF[t], merged.maxCos[t], merged.maxBM[t] = maxOverBlocks(merged.blocks[t])
	}
}

// partNorms computes one part's lnc document norms from its own
// postings — identical values to what a merged recomputation assigns
// its surviving documents, since a kept document's postings and their
// term order are unchanged by concatenating parts.
func partNorms(part *Index) []float64 {
	norms := make([]float64, part.NumDocs())
	for t := 0; t < part.NumTerms(); t++ {
		it := part.iterUncached(textproc.TermID(t))
		for it.Valid() {
			docs, tfs := it.Window()
			for j, d := range docs {
				w := 1 + math.Log(float64(tfs[j]))
				norms[d] += w * w
			}
			if !it.NextWindow() {
				break
			}
		}
	}
	for d := range norms {
		norms[d] = math.Sqrt(norms[d])
	}
	return norms
}

// mergedListBuilder assembles one merged compressed list from
// per-part block runs.
type mergedListBuilder struct {
	data     []byte
	offs     []uint32
	starts   []int32
	lasts    []corpus.DocID
	blocks   []BlockMax
	n        int
	prevLast corpus.DocID
}

func (mb *mergedListBuilder) reset() {
	mb.data = mb.data[:0]
	mb.offs = mb.offs[:0]
	mb.starts = mb.starts[:0]
	mb.lasts = mb.lasts[:0]
	mb.blocks = nil // handed to the merged index; never reused
	mb.n = 0
	mb.prevLast = -1
}

// appendClean copies a part's whole compressed list, shifting its
// document space by rewriting only the first block's base varint.
func (mb *mergedListBuilder) appendClean(cl *compList, bms []BlockMax, shift corpus.DocID) {
	// The stored base delta of block 0 is firstDoc − (−1); recover
	// firstDoc, shift it, and re-delta against the merged predecessor.
	b0 := cl.blockData(0)
	baseDelta, k := binary.Uvarint(b0)
	firstDoc := corpus.DocID(baseDelta) - 1 + shift
	mb.beginBlock()
	mb.data = appendUvarint(mb.data, uint64(firstDoc-mb.prevLast))
	mb.data = append(mb.data, b0[k:]...)
	mb.endBlock(cl.blockLast(0)+shift, cl.blockLen(0))
	for b := 1; b < cl.numBlocks(); b++ {
		mb.beginBlock()
		mb.data = append(mb.data, cl.blockData(b)...)
		mb.endBlock(cl.blockLast(b)+shift, cl.blockLen(b))
	}
	mb.blocks = append(mb.blocks, bms...)
}

// appendReencoded compresses filtered postings (already carrying
// merged doc IDs) into fresh BlockSize-aligned blocks, computing their
// impact bounds from the source part's norms via the parallel
// original-ID slice.
func (mb *mergedListBuilder) appendReencoded(pl []Posting, origDocs []corpus.DocID, norms []float64) {
	for start := 0; start < len(pl); start += BlockSize {
		end := start + BlockSize
		if end > len(pl) {
			end = len(pl)
		}
		mb.beginBlock()
		mb.data = appendBlock(mb.data, mb.prevLast, pl[start:end])
		mb.endBlock(pl[end-1].Doc, end-start)
		mb.blocks = append(mb.blocks, blockMaxOf(pl[start:end], norms, origDocs[start:end]))
	}
}

func (mb *mergedListBuilder) beginBlock() {
	mb.offs = append(mb.offs, uint32(len(mb.data)))
	mb.starts = append(mb.starts, int32(mb.n))
}

func (mb *mergedListBuilder) endBlock(last corpus.DocID, count int) {
	mb.lasts = append(mb.lasts, last)
	mb.n += count
	mb.prevLast = last
}

// finish snapshots the assembled list. The data and metadata are
// copied out so the builder's scratch can be reused for the next term;
// single-block lists drop the skip arrays entirely.
func (mb *mergedListBuilder) finish() (compList, []BlockMax) {
	if mb.n == 0 {
		return compList{}, nil
	}
	cl := compList{
		n:       int32(mb.n),
		lastDoc: mb.prevLast,
		data:    append([]byte(nil), mb.data...),
	}
	if nb := len(mb.lasts); nb > 1 {
		cl.offs = append(append([]uint32(nil), mb.offs...), uint32(len(mb.data)))
		cl.starts = append(append([]int32(nil), mb.starts...), int32(mb.n))
		cl.lasts = append([]corpus.DocID(nil), mb.lasts...)
	}
	return cl, mb.blocks
}
