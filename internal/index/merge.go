package index

import (
	"fmt"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// DroppedDoc marks a document eliminated by a Merge (a tombstoned doc
// that did not survive into the merged index).
const DroppedDoc corpus.DocID = -1

// Merge combines several indexes into one over their surviving
// documents, working entirely at the postings level — no text is
// re-analyzed. keep[i], when non-nil, reports whether local document d
// of parts[i] survives; a nil predicate (or a nil keep slice) keeps
// every document of that part.
//
// Surviving documents are renumbered densely in part order, then
// ascending local ID within each part. The returned remap has one slice
// per part mapping local ID → merged ID, with DroppedDoc for eliminated
// documents. Vocabularies are unioned in part order; when every part
// shares prefix-compatible vocabularies (the segment store's shared
// dictionary), term IDs are preserved verbatim.
func Merge(parts []*Index, keep []func(corpus.DocID) bool) (*Index, [][]corpus.DocID, error) {
	if len(parts) == 0 {
		return nil, nil, fmt.Errorf("index: merge of zero parts")
	}
	if keep != nil && len(keep) != len(parts) {
		return nil, nil, fmt.Errorf("index: merge: %d parts but %d keep predicates", len(parts), len(keep))
	}

	// Union the vocabularies and record, per part, local → merged term
	// IDs. Identical vocab objects short-circuit to an identity map.
	vocab := textproc.NewVocab()
	termMap := make([][]textproc.TermID, len(parts))
	for i, part := range parts {
		tm := make([]textproc.TermID, part.NumTerms())
		for t := 0; t < part.NumTerms(); t++ {
			tm[t] = vocab.Add(part.vocab.Term(textproc.TermID(t)))
		}
		termMap[i] = tm
	}

	// Renumber surviving documents densely.
	remap := make([][]corpus.DocID, len(parts))
	merged := &Index{vocab: vocab, postings: make([]PostingList, vocab.Size())}
	for i, part := range parts {
		pred := func(corpus.DocID) bool { return true }
		if keep != nil && keep[i] != nil {
			pred = keep[i]
		}
		dm := make([]corpus.DocID, part.NumDocs())
		for d := 0; d < part.NumDocs(); d++ {
			if !pred(corpus.DocID(d)) {
				dm[d] = DroppedDoc
				continue
			}
			dm[d] = corpus.DocID(merged.numDocs)
			merged.numDocs++
			dl := part.DocLen(corpus.DocID(d))
			merged.docLen = append(merged.docLen, dl)
			merged.totalLen += dl
		}
		remap[i] = dm
	}

	// Concatenate remapped postings. Processing parts in order keeps
	// every list sorted: merged IDs of part i all precede part i+1's,
	// and each source list is already ascending.
	for i, part := range parts {
		dm := remap[i]
		for t := 0; t < part.NumTerms(); t++ {
			src := part.postings[t]
			if len(src) == 0 {
				continue
			}
			mt := termMap[i][t]
			dst := merged.postings[mt]
			for _, p := range src {
				if nd := dm[p.Doc]; nd != DroppedDoc {
					dst = append(dst, Posting{Doc: nd, TF: p.TF})
				}
			}
			merged.postings[mt] = dst
		}
	}
	// Max-impact metadata does not merge by taking maxima: dropped
	// documents may have carried a list's maximum, and norms change
	// with the surviving postings. Recompute from the merged lists.
	merged.computeImpacts()
	return merged, remap, nil
}
