package adversary

import (
	"math"
	"math/rand"
	"sort"

	"toppriv/internal/belief"
	"toppriv/internal/core"
)

// Distinguisher is the natural escalation of §IV-D's probe attack: the
// adversary holds the ghost-generation implementation (granted by the
// threat model), so he can manufacture unlimited *labeled* training
// data — ghosts from the generator, "genuine" queries from his own
// query distribution — and train a classifier to tell them apart on
// per-query features:
//
//	f0  coherence: largest fraction of terms inside one topic head
//	f1  mean within-topic rank of the query's terms (ghost words come
//	    from topic heads; genuine queries carry deeper, more specific
//	    terms)
//	f2  out-of-vocabulary fraction (genuine queries contain designators
//	    like "m-1" that no topic head contains)
//	f3  log query length
//
// Features are modelled per class with Gaussian naive Bayes. The
// evaluation in the tests reports how well this does against TopPriv —
// an honest measurement the paper does not include.
type Distinguisher struct {
	Eng *belief.Engine
	// TopN is the topic-head size used by the features. Default 40.
	TopN int

	heads     []map[string]int // term -> rank within topic head
	trained   bool
	ghostMean [nFeatures]float64
	ghostVar  [nFeatures]float64
	userMean  [nFeatures]float64
	userVar   [nFeatures]float64
}

const nFeatures = 4

// Name identifies the attack.
func (a *Distinguisher) Name() string { return "learned-distinguisher" }

func (a *Distinguisher) init() {
	if a.heads != nil {
		return
	}
	if a.TopN == 0 {
		a.TopN = 40
	}
	m := a.Eng.Model()
	a.heads = make([]map[string]int, m.K)
	for t := 0; t < m.K; t++ {
		head := make(map[string]int, a.TopN)
		for rank, tw := range m.TopWords(t, a.TopN) {
			head[tw.Term] = rank
		}
		a.heads[t] = head
	}
}

// features extracts the per-query feature vector.
func (a *Distinguisher) features(query []string) [nFeatures]float64 {
	a.init()
	var f [nFeatures]float64
	if len(query) == 0 {
		return f
	}
	m := a.Eng.Model()
	bestCoherence := 0
	for _, head := range a.heads {
		hits := 0
		for _, w := range query {
			if _, ok := head[w]; ok {
				hits++
			}
		}
		if hits > bestCoherence {
			bestCoherence = hits
		}
	}
	f[0] = float64(bestCoherence) / float64(len(query))

	rankSum, ranked := 0.0, 0
	oov := 0
	for _, w := range query {
		if m.TermID(w) < 0 {
			oov++
			continue
		}
		best := a.TopN // "deeper than any head"
		for _, head := range a.heads {
			if r, ok := head[w]; ok && r < best {
				best = r
			}
		}
		rankSum += float64(best)
		ranked++
	}
	if ranked > 0 {
		f[1] = rankSum / float64(ranked) / float64(a.TopN)
	} else {
		f[1] = 1
	}
	f[2] = float64(oov) / float64(len(query))
	f[3] = math.Log(float64(len(query)))
	return f
}

// Train fits the Gaussian class models. ghosts and genuine are labeled
// example queries; the adversary produces the former with his copy of
// the obfuscator and draws the latter from his model of user queries.
func (a *Distinguisher) Train(ghosts, genuine [][]string) {
	a.init()
	a.ghostMean, a.ghostVar = fitGaussian(a, ghosts)
	a.userMean, a.userVar = fitGaussian(a, genuine)
	a.trained = true
}

func fitGaussian(a *Distinguisher, queries [][]string) (mean, variance [nFeatures]float64) {
	if len(queries) == 0 {
		for i := range variance {
			variance[i] = 1
		}
		return
	}
	for _, q := range queries {
		f := a.features(q)
		for i := range f {
			mean[i] += f[i]
		}
	}
	n := float64(len(queries))
	for i := range mean {
		mean[i] /= n
	}
	for _, q := range queries {
		f := a.features(q)
		for i := range f {
			d := f[i] - mean[i]
			variance[i] += d * d
		}
	}
	for i := range variance {
		variance[i] = variance[i]/n + 1e-4 // variance floor for stability
	}
	return
}

// userScore returns the log-likelihood ratio log P(f|user) − log P(f|ghost);
// higher means more likely genuine.
func (a *Distinguisher) userScore(query []string) float64 {
	f := a.features(query)
	score := 0.0
	for i := range f {
		score += gaussLogPDF(f[i], a.userMean[i], a.userVar[i]) -
			gaussLogPDF(f[i], a.ghostMean[i], a.ghostVar[i])
	}
	return score
}

func gaussLogPDF(x, mean, variance float64) float64 {
	d := x - mean
	return -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
}

// GuessUser implements QueryGuesser: the cycle member with the highest
// genuine-likelihood score is the guess.
func (a *Distinguisher) GuessUser(cycle [][]string, rng *rand.Rand) int {
	if !a.trained {
		return rng.Intn(len(cycle))
	}
	scores := make([]float64, len(cycle))
	for i, q := range cycle {
		scores[i] = a.userScore(q)
	}
	order := make([]int, len(cycle))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return scores[order[i]] > scores[order[j]] })
	return order[0]
}

// TrainFromObfuscator builds a labeled training set the way a real
// adversary would: run the (public) obfuscator over his own probe
// queries and harvest the ghosts; the probes themselves are the
// genuine class.
func (a *Distinguisher) TrainFromObfuscator(obf *core.Obfuscator, probes [][]string, rng *rand.Rand) error {
	var ghosts, genuine [][]string
	for _, q := range probes {
		cyc, err := obf.Obfuscate(q, rng)
		if err != nil {
			return err
		}
		for i, member := range cyc.Queries {
			if i == cyc.UserIndex {
				continue
			}
			ghosts = append(ghosts, member)
		}
		genuine = append(genuine, q)
	}
	a.Train(ghosts, genuine)
	return nil
}
