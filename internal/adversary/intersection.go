package adversary

import (
	"math/rand"
	"sort"

	"toppriv/internal/belief"
)

// SessionTrial is a sequence of cycles observed from one user whose
// underlying interest is stable across queries.
type SessionTrial struct {
	Cycles        [][][]string
	TrueIntention []int
}

// IntersectionAttack exploits repetition across a user's query history:
// in each cycle it notes the TopM most boosted topics, then counts how
// often each topic recurs across cycles. A genuine interest the user
// keeps querying recurs in every cycle; independently drawn masking
// topics recur only ~1/υ of the time — unless the client keeps its
// decoy profile sticky (core.Session), in which case the decoys recur
// too and the frequencies are uninformative.
type IntersectionAttack struct {
	Eng *belief.Engine
	// TopM is how many top-boosted topics are noted per cycle. Default 3.
	TopM int
}

// Name identifies the attack in reports.
func (a *IntersectionAttack) Name() string { return "intersection" }

// GuessIntentionSession returns the sizeHint topics that recur most
// often across the session's cycles (ties broken by accumulated boost).
func (a *IntersectionAttack) GuessIntentionSession(cycles [][][]string, sizeHint int, rng *rand.Rand) []int {
	topM := a.TopM
	if topM == 0 {
		topM = 3
	}
	k := a.Eng.NumTopics()
	counts := make([]int, k)
	mass := make([]float64, k)
	for _, cycle := range cycles {
		boost := a.Eng.CycleBoost(cycle, rng)
		for _, t := range topBoosted(boost, topM) {
			counts[t]++
			mass[t] += boost[t]
		}
	}
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a2, b2 := order[i], order[j]
		if counts[a2] != counts[b2] {
			return counts[a2] > counts[b2]
		}
		if mass[a2] != mass[b2] {
			return mass[a2] > mass[b2]
		}
		return a2 < b2
	})
	if sizeHint > len(order) {
		sizeHint = len(order)
	}
	return order[:sizeHint]
}

// RecurrentTopics returns the topics that land in the per-cycle
// top-TopM boosted set in at least minFrac of the session's cycles —
// the adversary's *confusion set*. A recurring genuine interest is
// always in it; the privacy question is how many decoys keep it
// company. Against independent per-query obfuscation the set collapses
// to the genuine topics; against a sticky session the persistent decoys
// recur just as reliably and the set stays large.
func (a *IntersectionAttack) RecurrentTopics(cycles [][][]string, minFrac float64, rng *rand.Rand) []int {
	topM := a.TopM
	if topM == 0 {
		topM = 3
	}
	if len(cycles) == 0 {
		return nil
	}
	k := a.Eng.NumTopics()
	counts := make([]int, k)
	for _, cycle := range cycles {
		boost := a.Eng.CycleBoost(cycle, rng)
		for _, t := range topBoosted(boost, topM) {
			counts[t]++
		}
	}
	need := int(minFrac * float64(len(cycles)))
	if need < 1 {
		need = 1
	}
	var out []int
	for t, c := range counts {
		if c >= need {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// EvalSessionRecall returns the mean recall of the true intention over
// session trials.
func EvalSessionRecall(a *IntersectionAttack, trials []SessionTrial, rng *rand.Rand) float64 {
	total, n := 0.0, 0
	for _, tr := range trials {
		if len(tr.TrueIntention) == 0 || len(tr.Cycles) == 0 {
			continue
		}
		guess := a.GuessIntentionSession(tr.Cycles, len(tr.TrueIntention), rng)
		inGuess := make(map[int]bool, len(guess))
		for _, t := range guess {
			inGuess[t] = true
		}
		hits := 0
		for _, t := range tr.TrueIntention {
			if inGuess[t] {
				hits++
			}
		}
		total += float64(hits) / float64(len(tr.TrueIntention))
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
