// Package adversary simulates the attack strategies of §IV-D against
// query cycles, so that TopPriv's resilience claims can be validated
// empirically rather than argued only in prose:
//
//   - CoherenceAttack: discount ghost queries whose term combinations are
//     not semantically coherent (defeats TrackMeNot, not TopPriv).
//   - DiscountAttack: take the highest-exposure topics of B(t|C) as the
//     intention (fails because relevant topics rank low after masking).
//   - EliminationAttack: strip query words that rank highly for
//     high-exposure topics and re-infer (removes genuine terms too).
//   - ProbeAttack: replay the ghost-generation algorithm on each query in
//     the cycle and test whether it reproduces the others (fails because
//     masking topics and words are drawn randomly).
//
// The adversary here has everything the paper grants it: the corpus, the
// LDA model, and the ghost-generation implementation — but not the
// user's secret ε1/ε2.
package adversary

import (
	"math/rand"

	"toppriv/internal/belief"
	"toppriv/internal/core"
)

// Trial is one observed cycle together with the ground truth the
// adversary is trying to recover (known only to the evaluation harness).
type Trial struct {
	// Cycle is the query cycle as the search engine sees it.
	Cycle [][]string
	// UserIndex is the true position of the genuine query.
	UserIndex int
	// TrueIntention is the genuine U.
	TrueIntention []int
}

// QueryGuesser attacks try to identify the genuine query in a cycle.
type QueryGuesser interface {
	Name() string
	// GuessUser returns the index in cycle believed to be the user query.
	GuessUser(cycle [][]string, rng *rand.Rand) int
}

// IntentionGuesser attacks try to recover the topic set U.
type IntentionGuesser interface {
	Name() string
	// GuessIntention returns the adversary's guess at U. The evaluation
	// harness passes sizeHint = |U| (a generous concession: real
	// adversaries do not know ε1, hence not |U| either).
	GuessIntention(cycle [][]string, sizeHint int, rng *rand.Rand) []int
}

// --- Coherence attack ---------------------------------------------------

// CoherenceAttack scores each query's semantic coherence — the largest
// fraction of its terms that fall inside a single topic's head — and
// guesses the user query uniformly among the most coherent ones. It
// defeats random-ghost schemes because their ghosts score near zero.
type CoherenceAttack struct {
	Eng *belief.Engine
	// TopN is the topic-head size used to judge coherence. Default 40.
	TopN int
	// Threshold is the coherence level below which a query is dismissed
	// as a ghost. Default 0.3.
	Threshold float64

	heads []map[string]bool
}

// Name implements QueryGuesser.
func (a *CoherenceAttack) Name() string { return "coherence" }

func (a *CoherenceAttack) init() {
	if a.heads != nil {
		return
	}
	if a.TopN == 0 {
		a.TopN = 40
	}
	if a.Threshold == 0 {
		a.Threshold = 0.3
	}
	m := a.Eng.Model()
	a.heads = make([]map[string]bool, m.K)
	for t := 0; t < m.K; t++ {
		head := make(map[string]bool, a.TopN)
		for _, tw := range m.TopWords(t, a.TopN) {
			head[tw.Term] = true
		}
		a.heads[t] = head
	}
}

// Coherence returns the query's coherence score in [0, 1].
func (a *CoherenceAttack) Coherence(query []string) float64 {
	a.init()
	if len(query) == 0 {
		return 0
	}
	best := 0
	for _, head := range a.heads {
		hits := 0
		for _, w := range query {
			if head[w] {
				hits++
			}
		}
		if hits > best {
			best = hits
		}
	}
	return float64(best) / float64(len(query))
}

// GuessUser implements QueryGuesser.
func (a *CoherenceAttack) GuessUser(cycle [][]string, rng *rand.Rand) int {
	a.init()
	var survivors []int
	for i, q := range cycle {
		if a.Coherence(q) >= a.Threshold {
			survivors = append(survivors, i)
		}
	}
	if len(survivors) == 0 {
		return rng.Intn(len(cycle))
	}
	return survivors[rng.Intn(len(survivors))]
}

// --- Discount attack ----------------------------------------------------

// DiscountAttack guesses the intention as the sizeHint topics with the
// largest boost in the cycle posterior.
type DiscountAttack struct {
	Eng *belief.Engine
}

// Name implements IntentionGuesser.
func (a *DiscountAttack) Name() string { return "discount-high-exposure" }

// GuessIntention implements IntentionGuesser.
func (a *DiscountAttack) GuessIntention(cycle [][]string, sizeHint int, rng *rand.Rand) []int {
	boost := a.Eng.CycleBoost(cycle, rng)
	return topBoosted(boost, sizeHint)
}

// --- Elimination attack -------------------------------------------------

// EliminationAttack removes, from every query, the terms that rank in
// the head of the cycle's highest-boost topics (presumed decoys), then
// re-infers the truncated cycle and reads off the top boosted topics.
// §IV-D's point: the removed words include genuine terms (the same word
// ranks highly for several topics), so the recovered intention drifts.
type EliminationAttack struct {
	Eng *belief.Engine
	// StripTopics is how many high-boost topics to discount. Default 2.
	StripTopics int
	// TopN is the head size per stripped topic. Default 40.
	TopN int
}

// Name implements IntentionGuesser.
func (a *EliminationAttack) Name() string { return "eliminate-decoy-terms" }

// GuessIntention implements IntentionGuesser.
func (a *EliminationAttack) GuessIntention(cycle [][]string, sizeHint int, rng *rand.Rand) []int {
	strip := a.StripTopics
	if strip == 0 {
		strip = 2
	}
	topN := a.TopN
	if topN == 0 {
		topN = 40
	}
	boost := a.Eng.CycleBoost(cycle, rng)
	suspects := topBoosted(boost, strip)
	m := a.Eng.Model()
	banned := make(map[string]bool)
	for _, t := range suspects {
		for _, tw := range m.TopWords(t, topN) {
			banned[tw.Term] = true
		}
	}
	truncated := make([][]string, 0, len(cycle))
	for _, q := range cycle {
		var kept []string
		for _, w := range q {
			if !banned[w] {
				kept = append(kept, w)
			}
		}
		if len(kept) > 0 {
			truncated = append(truncated, kept)
		}
	}
	if len(truncated) == 0 {
		return topBoosted(boost, sizeHint)
	}
	reBoost := a.Eng.CycleBoost(truncated, rng)
	return topBoosted(reBoost, sizeHint)
}

// --- Probe attack -------------------------------------------------------

// ProbeAttack replays the obfuscator: treating each query q in the cycle
// as the candidate user query, it generates ghosts for q with the same
// implementation and measures how well they match the remaining queries
// (by best-pairing Jaccard similarity over term sets). The candidate
// whose synthetic ghosts best explain the rest is guessed as the user
// query. Randomness in masking-topic and word selection makes the
// replay non-reproducible, which is TopPriv's defense.
type ProbeAttack struct {
	Obf *core.Obfuscator
}

// Name implements QueryGuesser.
func (a *ProbeAttack) Name() string { return "probe-replay" }

// GuessUser implements QueryGuesser.
func (a *ProbeAttack) GuessUser(cycle [][]string, rng *rand.Rand) int {
	bestIdx := 0
	bestScore := -1.0
	for i, q := range cycle {
		cyc, err := a.Obf.Obfuscate(q, rng)
		if err != nil {
			continue
		}
		score := 0.0
		count := 0
		for j, other := range cycle {
			if j == i {
				continue
			}
			best := 0.0
			for gi, g := range cyc.Queries {
				if gi == cyc.UserIndex {
					continue
				}
				if s := jaccard(g, other); s > best {
					best = s
				}
			}
			score += best
			count++
		}
		if count > 0 {
			score /= float64(count)
		}
		if score > bestScore {
			bestScore = score
			bestIdx = i
		}
	}
	return bestIdx
}

// --- Evaluation ---------------------------------------------------------

// EvalQueryGuess returns the fraction of trials where the guesser
// identified the genuine query. Random guessing scores ~ E[1/υ].
func EvalQueryGuess(g QueryGuesser, trials []Trial, rng *rand.Rand) float64 {
	if len(trials) == 0 {
		return 0
	}
	hits := 0
	for _, tr := range trials {
		if g.GuessUser(tr.Cycle, rng) == tr.UserIndex {
			hits++
		}
	}
	return float64(hits) / float64(len(trials))
}

// EvalIntentionRecall returns the mean recall of the true intention
// across trials: |guess ∩ trueU| / |trueU|.
func EvalIntentionRecall(g IntentionGuesser, trials []Trial, rng *rand.Rand) float64 {
	total := 0.0
	n := 0
	for _, tr := range trials {
		if len(tr.TrueIntention) == 0 {
			continue
		}
		guess := g.GuessIntention(tr.Cycle, len(tr.TrueIntention), rng)
		inGuess := make(map[int]bool, len(guess))
		for _, t := range guess {
			inGuess[t] = true
		}
		hits := 0
		for _, t := range tr.TrueIntention {
			if inGuess[t] {
				hits++
			}
		}
		total += float64(hits) / float64(len(tr.TrueIntention))
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// RandomGuessBaseline returns the expected success rate of picking a
// query uniformly at random from each trial's cycle.
func RandomGuessBaseline(trials []Trial) float64 {
	if len(trials) == 0 {
		return 0
	}
	sum := 0.0
	for _, tr := range trials {
		sum += 1 / float64(len(tr.Cycle))
	}
	return sum / float64(len(trials))
}

// topBoosted returns the n indices with the largest boost values.
func topBoosted(boost []float64, n int) []int {
	idx := make([]int, len(boost))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: n is small.
	if n > len(idx) {
		n = len(idx)
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if boost[idx[j]] > boost[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:n]
}

// jaccard computes set similarity between two term slices.
func jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	setA := make(map[string]struct{}, len(a))
	for _, w := range a {
		setA[w] = struct{}{}
	}
	inter := 0
	setB := make(map[string]struct{}, len(b))
	for _, w := range b {
		if _, dup := setB[w]; dup {
			continue
		}
		setB[w] = struct{}{}
		if _, ok := setA[w]; ok {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
