package adversary

import (
	"math"
	"math/rand"
	"testing"

	"toppriv/internal/baseline"
	"toppriv/internal/belief"
	"toppriv/internal/core"
	"toppriv/internal/corpus"
	"toppriv/internal/lda"
	"toppriv/internal/textproc"
)

type fixture struct {
	eng *belief.Engine
	obf *core.Obfuscator
	gt  *corpus.GroundTruth
	an  *textproc.Analyzer
}

var shared *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if shared != nil {
		return shared
	}
	spec := corpus.GenSpec{Seed: 61, NumDocs: 400, NumTopics: 8, DocLenMin: 60, DocLenMax: 100}
	c, gt, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := lda.Train(c, lda.TrainSpec{NumTopics: 8, Iterations: 100, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := lda.NewInferencer(m, lda.InferSpec{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := belief.NewEngine(inf)
	if err != nil {
		t.Fatal(err)
	}
	obf, err := core.NewObfuscator(eng, core.Params{Eps1: 0.04, Eps2: 0.015})
	if err != nil {
		t.Fatal(err)
	}
	shared = &fixture{eng: eng, obf: obf, gt: gt, an: textproc.NewAnalyzer()}
	return shared
}

func (f *fixture) topicQuery(topic, n int) []string {
	var out []string
	for _, w := range f.gt.TopicWords[topic] {
		if term, ok := f.an.AnalyzeTerm(w); ok {
			out = append(out, term)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// topPrivTrials builds obfuscated cycles for every topic.
func topPrivTrials(t *testing.T, f *fixture, seed int64) []Trial {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var trials []Trial
	for topic := 0; topic < 8; topic++ {
		q := f.topicQuery(topic, 12)
		cyc, err := f.obf.Obfuscate(q, rng)
		if err != nil {
			t.Fatal(err)
		}
		if cyc.Len() < 2 || len(cyc.Intention) == 0 {
			continue
		}
		trials = append(trials, Trial{
			Cycle:         cyc.Queries,
			UserIndex:     cyc.UserIndex,
			TrueIntention: cyc.Intention,
		})
	}
	if len(trials) == 0 {
		t.Fatal("no usable trials generated")
	}
	return trials
}

func TestCoherenceAttackBeatsTrackMeNot(t *testing.T) {
	f := getFixture(t)
	tmn, err := baseline.NewTrackMeNot(f.eng, 4, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var trials []Trial
	for topic := 0; topic < 8; topic++ {
		q := f.topicQuery(topic, 10)
		cycle, userIdx, err := tmn.Cycle(q, rng)
		if err != nil {
			t.Fatal(err)
		}
		trials = append(trials, Trial{Cycle: cycle, UserIndex: userIdx})
	}
	attack := &CoherenceAttack{Eng: f.eng}
	rate := EvalQueryGuess(attack, trials, rand.New(rand.NewSource(2)))
	baselineRate := RandomGuessBaseline(trials)
	if rate <= baselineRate {
		t.Errorf("coherence attack on TrackMeNot: %v, random baseline %v — should beat it",
			rate, baselineRate)
	}
}

func TestCoherenceAttackFailsOnTopPriv(t *testing.T) {
	f := getFixture(t)
	trials := topPrivTrials(t, f, 3)
	attack := &CoherenceAttack{Eng: f.eng}
	rate := EvalQueryGuess(attack, trials, rand.New(rand.NewSource(4)))
	baselineRate := RandomGuessBaseline(trials)
	// TopPriv ghosts are coherent, so the attack collapses toward random
	// guessing. Allow slack for small trial counts.
	if rate > baselineRate+0.35 {
		t.Errorf("coherence attack on TopPriv succeeded too often: %v vs baseline %v",
			rate, baselineRate)
	}
}

func TestCoherenceScores(t *testing.T) {
	f := getFixture(t)
	attack := &CoherenceAttack{Eng: f.eng}
	coherent := f.topicQuery(0, 8)
	if c := attack.Coherence(coherent); c < 0.5 {
		t.Errorf("topical query coherence = %v, want >= 0.5", c)
	}
	if c := attack.Coherence(nil); c != 0 {
		t.Errorf("empty query coherence = %v", c)
	}
	// A mash of many topics' deep-tail words should score lower than the
	// focused query.
	var mash []string
	for topic := 0; topic < 8; topic++ {
		words := f.gt.TopicWords[topic]
		if term, ok := f.an.AnalyzeTerm(words[len(words)-1]); ok {
			mash = append(mash, term)
		}
	}
	if attack.Coherence(mash) >= attack.Coherence(coherent) {
		t.Error("incoherent mash scored >= focused query")
	}
}

func TestDiscountAttackRecallLow(t *testing.T) {
	f := getFixture(t)
	trials := topPrivTrials(t, f, 5)
	attack := &DiscountAttack{Eng: f.eng}
	recall := EvalIntentionRecall(attack, trials, rand.New(rand.NewSource(6)))
	// After masking, the genuine topics should usually not top the boost
	// ranking; demand the attack misses at least some of the time.
	if recall > 0.75 {
		t.Errorf("discount attack recall %v — masking is not hiding the intention", recall)
	}
}

func TestDiscountAttackOnUnprotectedQuery(t *testing.T) {
	// Sanity check: without ghosts, the high-boost topics ARE the
	// intention, so the same attack should score high. This confirms the
	// attack implementation is competent and the defense (not a weak
	// attack) explains the low recall above.
	f := getFixture(t)
	rng := rand.New(rand.NewSource(7))
	var trials []Trial
	for topic := 0; topic < 8; topic++ {
		q := f.topicQuery(topic, 12)
		boost := f.eng.Boost(q, rng)
		u := belief.Intention(boost, 0.04)
		if len(u) == 0 {
			continue
		}
		trials = append(trials, Trial{Cycle: [][]string{q}, UserIndex: 0, TrueIntention: u})
	}
	if len(trials) == 0 {
		t.Fatal("no trials")
	}
	attack := &DiscountAttack{Eng: f.eng}
	recall := EvalIntentionRecall(attack, trials, rand.New(rand.NewSource(8)))
	if recall < 0.6 {
		t.Errorf("discount attack on unprotected queries only %v recall — attack too weak to be meaningful", recall)
	}
}

func TestEliminationAttackDoesNotRecoverIntention(t *testing.T) {
	f := getFixture(t)
	trials := topPrivTrials(t, f, 9)
	attack := &EliminationAttack{Eng: f.eng}
	recall := EvalIntentionRecall(attack, trials, rand.New(rand.NewSource(10)))
	if recall > 0.75 {
		t.Errorf("elimination attack recall %v — should not reliably recover U", recall)
	}
}

func TestProbeAttackNearRandom(t *testing.T) {
	f := getFixture(t)
	trials := topPrivTrials(t, f, 11)
	attack := &ProbeAttack{Obf: f.obf}
	rate := EvalQueryGuess(attack, trials, rand.New(rand.NewSource(12)))
	baselineRate := RandomGuessBaseline(trials)
	if rate > baselineRate+0.4 {
		t.Errorf("probe attack rate %v vs baseline %v — replay should not pinpoint the user query",
			rate, baselineRate)
	}
}

func TestEvalHelpersEdgeCases(t *testing.T) {
	if EvalQueryGuess(&CoherenceAttack{Eng: getFixture(t).eng}, nil, rand.New(rand.NewSource(13))) != 0 {
		t.Error("no trials should score 0")
	}
	if RandomGuessBaseline(nil) != 0 {
		t.Error("empty baseline should be 0")
	}
	if EvalIntentionRecall(&DiscountAttack{Eng: getFixture(t).eng}, []Trial{{Cycle: [][]string{{"x"}}}}, rand.New(rand.NewSource(14))) != 0 {
		t.Error("trials without intention should score 0")
	}
}

func TestTopBoosted(t *testing.T) {
	boost := []float64{0.1, 0.9, 0.5, 0.7}
	got := topBoosted(boost, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("topBoosted = %v", got)
	}
	if got := topBoosted(boost, 10); len(got) != 4 {
		t.Errorf("oversized n should clamp: %v", got)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a"}, []string{"b"}, 0},
		{[]string{"a", "b", "c"}, []string{"b", "c", "d"}, 0.5},
		{nil, nil, 0},
		{[]string{"a", "a"}, []string{"a"}, 1},
	}
	for _, c := range cases {
		if got := jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("jaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
