package adversary

import (
	"math/rand"
	"testing"

	"toppriv/internal/core"
)

// buildSessions generates per-user query histories: each user has one
// stable interest topic and issues several distinct queries on it.
// sticky selects the session-level obfuscator (decoy profile reuse) vs
// independent per-query obfuscation.
func buildSessions(t *testing.T, f *fixture, sticky bool, seed int64) []SessionTrial {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var trials []SessionTrial
	for topic := 0; topic < 8; topic++ {
		var cycles [][][]string
		var trueU []int
		var sess *core.Session
		if sticky {
			var err error
			sess, err = core.NewSession(f.obf)
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 8; i++ {
			q := f.topicQuery(topic, 8+(i%6))
			var cyc *core.Cycle
			var err error
			if sticky {
				cyc, err = sess.Obfuscate(q, rng)
			} else {
				cyc, err = f.obf.Obfuscate(q, rng)
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(cyc.Intention) == 0 {
				continue
			}
			cycles = append(cycles, cyc.Queries)
			if len(trueU) == 0 {
				trueU = cyc.Intention
			}
		}
		if len(cycles) >= 4 {
			trials = append(trials, SessionTrial{Cycles: cycles, TrueIntention: trueU})
		}
	}
	if len(trials) == 0 {
		t.Fatal("no session trials generated")
	}
	return trials
}

func TestIntersectionAttackBeatsIndependentCycles(t *testing.T) {
	// Without sticky decoys, cross-cycle frequency analysis should
	// recover the recurring interest far better than single-cycle
	// discounting does.
	f := getFixture(t)
	attack := &IntersectionAttack{Eng: f.eng}
	independent := buildSessions(t, f, false, 900)
	recall := EvalSessionRecall(attack, independent, rand.New(rand.NewSource(901)))
	if recall < 0.5 {
		t.Errorf("intersection attack on independent cycles: recall %v, expected it to work", recall)
	}
}

func TestStickySessionsBluntIntersection(t *testing.T) {
	f := getFixture(t)
	attack := &IntersectionAttack{Eng: f.eng}
	independent := buildSessions(t, f, false, 902)
	sticky := buildSessions(t, f, true, 902)
	rIndep := EvalSessionRecall(attack, independent, rand.New(rand.NewSource(903)))
	rSticky := EvalSessionRecall(attack, sticky, rand.New(rand.NewSource(903)))
	if rSticky >= rIndep {
		t.Errorf("sticky sessions should blunt the attack: sticky %v vs independent %v", rSticky, rIndep)
	}
}

func TestIntersectionEdgeCases(t *testing.T) {
	f := getFixture(t)
	attack := &IntersectionAttack{Eng: f.eng}
	if got := EvalSessionRecall(attack, nil, rand.New(rand.NewSource(1))); got != 0 {
		t.Error("no trials should score 0")
	}
	empty := []SessionTrial{{Cycles: nil, TrueIntention: []int{1}}}
	if got := EvalSessionRecall(attack, empty, rand.New(rand.NewSource(2))); got != 0 {
		t.Error("empty sessions should score 0")
	}
	guess := attack.GuessIntentionSession(nil, 3, rand.New(rand.NewSource(3)))
	if len(guess) != 3 {
		t.Errorf("sizeHint not honored: %v", guess)
	}
}

func TestRecurrentTopicsConfusionSet(t *testing.T) {
	f := getFixture(t)
	attack := &IntersectionAttack{Eng: f.eng, TopM: 5}
	independent := buildSessions(t, f, false, 910)
	sticky := buildSessions(t, f, true, 910)
	rng := rand.New(rand.NewSource(911))
	// The genuine topic must be in the confusion set either way; sticky
	// sessions should yield a set at least as large on average.
	var szIndep, szSticky, n int
	for i := range independent {
		si := attack.RecurrentTopics(independent[i].Cycles, 0.8, rng)
		if !contains(si, independent[i].TrueIntention[0]) {
			t.Errorf("trial %d: genuine topic missing from independent confusion set %v", i, si)
		}
		szIndep += len(si)
		n++
	}
	for i := range sticky {
		ss := attack.RecurrentTopics(sticky[i].Cycles, 0.8, rng)
		szSticky += len(ss)
	}
	if n > 0 && szSticky < szIndep {
		t.Errorf("sticky confusion sets (%d total) should not be smaller than independent (%d)",
			szSticky, szIndep)
	}
	if got := attack.RecurrentTopics(nil, 0.8, rng); got != nil {
		t.Error("no cycles should return nil")
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
