package adversary

import (
	"math/rand"
	"testing"

	"toppriv/internal/core"
)

func TestDistinguisherUntrainedIsRandom(t *testing.T) {
	f := getFixture(t)
	a := &Distinguisher{Eng: f.eng}
	cycle := [][]string{f.topicQuery(0, 5), f.topicQuery(1, 5), f.topicQuery(2, 5)}
	rng := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		seen[a.GuessUser(cycle, rng)] = true
	}
	if len(seen) < 2 {
		t.Error("untrained distinguisher should guess randomly")
	}
}

func TestDistinguisherFeatures(t *testing.T) {
	f := getFixture(t)
	a := &Distinguisher{Eng: f.eng}
	// A topic-head query is maximally coherent with shallow ranks.
	coherent := a.features(f.topicQuery(0, 8))
	if coherent[0] < 0.5 {
		t.Errorf("head query coherence %v", coherent[0])
	}
	// An OOV-heavy query has high f2.
	oov := a.features([]string{"zzz-1", "qqq-2", "m-1"})
	if oov[2] < 0.9 {
		t.Errorf("OOV fraction %v, want ~1", oov[2])
	}
	// Empty query is all zeros, no panic.
	if a.features(nil) != [nFeatures]float64{} {
		t.Error("empty query features should be zero")
	}
}

func TestDistinguisherMeasuredAgainstTopPriv(t *testing.T) {
	// The honest measurement: train on obfuscator-generated ghosts and
	// probe queries, attack fresh cycles. We don't assert the attack
	// fails — we assert the measurement machinery works and record the
	// rate. (EXPERIMENTS.md discusses the observed value: the attack
	// beats random because workload queries carry deeper-ranked terms
	// than Φ-head ghosts, a known cost of topical ghost generation.)
	f := getFixture(t)
	rng := rand.New(rand.NewSource(2))
	var probes [][]string
	for topic := 0; topic < 8; topic++ {
		probes = append(probes, f.topicQuery(topic, 10))
	}
	a := &Distinguisher{Eng: f.eng}
	if err := a.TrainFromObfuscator(f.obf, probes, rng); err != nil {
		t.Fatal(err)
	}
	trials := topPrivTrials(t, f, 3)
	rate := EvalQueryGuess(a, trials, rand.New(rand.NewSource(4)))
	baseline := RandomGuessBaseline(trials)
	if rate < 0 || rate > 1 {
		t.Fatalf("rate %v out of range", rate)
	}
	t.Logf("distinguisher: %.0f%% vs random %.0f%% over %d trials",
		rate*100, baseline*100, len(trials))
}

func TestDistinguisherSeparatesObviousClasses(t *testing.T) {
	// Sanity: trained on clearly separable classes, it must classify a
	// held-out pair correctly.
	f := getFixture(t)
	a := &Distinguisher{Eng: f.eng}
	var ghosts, genuine [][]string
	for topic := 0; topic < 8; topic++ {
		ghosts = append(ghosts, f.topicQuery(topic, 10)) // coherent heads
		genuine = append(genuine, []string{"x-1", "y-2", "z-3"})
	}
	a.Train(ghosts, genuine)
	cycle := [][]string{
		f.topicQuery(3, 10),        // ghost-like
		{"m-1", "ah-64", "sq-333"}, // genuine-like (OOV designators)
	}
	if got := a.GuessUser(cycle, rand.New(rand.NewSource(5))); got != 1 {
		t.Errorf("distinguisher picked %d, want the OOV-heavy query", got)
	}
}

func TestMimicProfileBluntsDistinguisher(t *testing.T) {
	// The countermeasure measurement: with Params.MimicProfile the ghost
	// words match the genuine query's rank-depth profile, so the learned
	// distinguisher's advantage should shrink substantially.
	f := getFixture(t)
	var probes [][]string
	for topic := 0; topic < 8; topic++ {
		probes = append(probes, f.topicQuery(topic, 10))
	}

	measure := func(params core.Params, seed int64) float64 {
		obf, err := core.NewObfuscator(f.eng, params)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		a := &Distinguisher{Eng: f.eng}
		if err := a.TrainFromObfuscator(obf, probes, rng); err != nil {
			t.Fatal(err)
		}
		var trials []Trial
		for round := 0; round < 3; round++ {
			for topic := 0; topic < 8; topic++ {
				q := f.topicQuery(topic, 9+round)
				cyc, err := obf.Obfuscate(q, rng)
				if err != nil {
					t.Fatal(err)
				}
				if cyc.Len() < 2 || len(cyc.Intention) == 0 {
					continue
				}
				trials = append(trials, Trial{Cycle: cyc.Queries, UserIndex: cyc.UserIndex})
			}
		}
		if len(trials) == 0 {
			t.Fatal("no trials")
		}
		return EvalQueryGuess(a, trials, rand.New(rand.NewSource(seed+1)))
	}

	base := core.Params{Eps1: 0.04, Eps2: 0.015}
	mimic := base
	mimic.MimicProfile = true
	ratePlain := measure(base, 700)
	rateMimic := measure(mimic, 700)
	t.Logf("distinguisher success: plain sampling %.0f%%, mimic sampling %.0f%%",
		ratePlain*100, rateMimic*100)
	if rateMimic >= ratePlain {
		t.Errorf("mimic sampling did not reduce distinguisher success: %v vs %v",
			rateMimic, ratePlain)
	}
}

func TestMimicCyclesStillSuppress(t *testing.T) {
	// The countermeasure must not break the privacy guarantee itself.
	f := getFixture(t)
	obf, err := core.NewObfuscator(f.eng, core.Params{Eps1: 0.04, Eps2: 0.015, MimicProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(701))
	satisfied, total := 0, 0
	for topic := 0; topic < 8; topic++ {
		cyc, err := obf.Obfuscate(f.topicQuery(topic, 12), rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(cyc.Intention) == 0 {
			continue
		}
		total++
		if cyc.Satisfied {
			satisfied++
		}
	}
	if total == 0 {
		t.Fatal("no intentions")
	}
	if satisfied*2 < total {
		t.Errorf("mimic sampling satisfied (ε1,ε2) on only %d/%d queries", satisfied, total)
	}
}
