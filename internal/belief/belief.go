// Package belief implements the topical belief framework of §IV-A/B:
// prior belief Pr(t) (Eq. 1, owned by the LDA model), posterior belief
// Pr(t|q) via LDA inference, boost in belief B(t|q) = Pr(t|q) − Pr(t),
// the cycle posterior Pr(t|C) = (1/υ) Σ_{q∈C} Pr(t|q) (Eq. 2), the user
// intention U (Definition 2), and the exposure / mask-level / rank
// metrics of §V-A.
//
// Thresholds ε1 and ε2 are expressed as fractions (0.05 = 5%).
package belief

import (
	"fmt"
	"math/rand"
	"sort"

	"toppriv/internal/lda"
)

// Engine computes topical beliefs over a trained LDA model. Both the
// TopPriv client and the simulated adversary use one — the paper's
// threat model explicitly grants the adversary the topic model.
type Engine struct {
	inf *lda.Inferencer
}

// NewEngine wraps an inferencer.
func NewEngine(inf *lda.Inferencer) (*Engine, error) {
	if inf == nil {
		return nil, fmt.Errorf("belief: nil inferencer")
	}
	return &Engine{inf: inf}, nil
}

// Model returns the underlying LDA model.
func (e *Engine) Model() *lda.Model { return e.inf.Model() }

// NumTopics returns τ.
func (e *Engine) NumTopics() int { return e.inf.Model().K }

// Prior returns Pr(t) for all topics (shared slice; do not modify).
func (e *Engine) Prior() []float64 { return e.inf.Model().Prior }

// Posterior returns Pr(t|q) for a single query given as analyzed terms.
func (e *Engine) Posterior(terms []string, rng *rand.Rand) []float64 {
	return e.inf.PosteriorTerms(terms, rng)
}

// Boost returns B(t|q) = Pr(t|q) − Pr(t) for a single query.
func (e *Engine) Boost(terms []string, rng *rand.Rand) []float64 {
	return BoostOf(e.Posterior(terms, rng), e.Prior())
}

// CyclePosterior returns Pr(t|C) per Eq. 2: each query in the cycle is
// inferred independently and the posteriors averaged with equal weight
// (the adversary cannot tell the queries apart, so Pr(q) = 1/υ).
func (e *Engine) CyclePosterior(cycle [][]string, rng *rand.Rand) []float64 {
	k := e.NumTopics()
	out := make([]float64, k)
	if len(cycle) == 0 {
		copy(out, e.Prior())
		return out
	}
	for _, q := range cycle {
		post := e.Posterior(q, rng)
		for t := 0; t < k; t++ {
			out[t] += post[t]
		}
	}
	inv := 1 / float64(len(cycle))
	for t := 0; t < k; t++ {
		out[t] *= inv
	}
	return out
}

// CycleBoost returns B(t|C) for a cycle of queries.
func (e *Engine) CycleBoost(cycle [][]string, rng *rand.Rand) []float64 {
	return BoostOf(e.CyclePosterior(cycle, rng), e.Prior())
}

// BoostOf subtracts the prior from a posterior elementwise.
func BoostOf(posterior, prior []float64) []float64 {
	out := make([]float64, len(posterior))
	for t := range posterior {
		out[t] = posterior[t] - prior[t]
	}
	return out
}

// Intention returns U = {t : B(t|q) > eps1} (Definition 2), sorted by
// descending boost.
func Intention(boost []float64, eps1 float64) []int {
	var u []int
	for t, b := range boost {
		if b > eps1 {
			u = append(u, t)
		}
	}
	sort.Slice(u, func(i, j int) bool { return boost[u[i]] > boost[u[j]] })
	return u
}

// Exposure is max{B(t|·) : t ∈ U} — how visible the intention remains.
// An empty U yields 0 (nothing to expose).
func Exposure(boost []float64, u []int) float64 {
	mx := 0.0
	for i, t := range u {
		if i == 0 || boost[t] > mx {
			mx = boost[t]
		}
	}
	return mx
}

// MaskLevel is max{B(t|·) : t ∉ U} — how prominent the decoy topics are.
func MaskLevel(boost []float64, u []int) float64 {
	inU := make(map[int]bool, len(u))
	for _, t := range u {
		inU[t] = true
	}
	mx := 0.0
	first := true
	for t, b := range boost {
		if inU[t] {
			continue
		}
		if first || b > mx {
			mx = b
			first = false
		}
	}
	return mx
}

// MaxRank returns the best (smallest, 1-based) rank attained by any
// topic of U when all topics are ordered by descending boost — the
// quantity of Figure 3(f). It returns 0 when U is empty.
func MaxRank(boost []float64, u []int) int {
	if len(u) == 0 {
		return 0
	}
	order := make([]int, len(boost))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if boost[order[a]] != boost[order[b]] {
			return boost[order[a]] > boost[order[b]]
		}
		return order[a] < order[b]
	})
	inU := make(map[int]bool, len(u))
	for _, t := range u {
		inU[t] = true
	}
	for rank, t := range order {
		if inU[t] {
			return rank + 1
		}
	}
	return 0
}

// Satisfies reports whether a cycle boost meets the (ε1, ε2) guarantee
// of Definition 4 for the intention u: B(t|C) ≤ eps2 for every t ∈ U.
func Satisfies(cycleBoost []float64, u []int, eps2 float64) bool {
	for _, t := range u {
		if cycleBoost[t] > eps2 {
			return false
		}
	}
	return true
}
