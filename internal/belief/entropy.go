package belief

import (
	"math"
)

// This file quantifies the "reasonable doubt" the privacy model aims to
// create (§IV-A: suppressing topics below ε1 "creates reasonable doubt
// in the adversary whether they constitute the true intention"). The
// entropy of the adversary's posterior — and the KL divergence from the
// prior — measure how much a cycle actually tells him.

// Entropy returns the Shannon entropy (nats) of a probability
// distribution. Zero-probability entries contribute nothing.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// NormalizedEntropy returns Entropy(p) / ln(len(p)) in [0, 1]: 1 means
// the adversary learned nothing (uniform belief), 0 means certainty.
// Distributions of length < 2 return 0.
func NormalizedEntropy(p []float64) float64 {
	if len(p) < 2 {
		return 0
	}
	return Entropy(p) / math.Log(float64(len(p)))
}

// KLDivergence returns D(post ‖ prior) in nats — the information the
// observation carried about the topic distribution. Entries where the
// prior is zero but the posterior is not make the divergence infinite;
// with LDA's smoothed priors that cannot happen, but the guard keeps
// the function total.
func KLDivergence(post, prior []float64) float64 {
	d := 0.0
	for i := range post {
		if post[i] <= 0 {
			continue
		}
		if i >= len(prior) || prior[i] <= 0 {
			return math.Inf(1)
		}
		d += post[i] * math.Log(post[i]/prior[i])
	}
	return d
}

// InformationGain reports the KL divergence of the cycle posterior from
// the prior — how many nats the submitted cycle leaked about the
// topical belief. Comparing the gain of a protected cycle against the
// raw query's gain gives a single-number privacy summary.
func (e *Engine) InformationGain(posterior []float64) float64 {
	return KLDivergence(posterior, e.Prior())
}
