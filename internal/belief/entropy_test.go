package belief

import (
	"math"
	"math/rand"
	"testing"
)

func TestEntropyKnownValues(t *testing.T) {
	if got := Entropy([]float64{1}); got != 0 {
		t.Errorf("point mass entropy = %v", got)
	}
	uniform4 := []float64{0.25, 0.25, 0.25, 0.25}
	if got := Entropy(uniform4); math.Abs(got-math.Log(4)) > 1e-12 {
		t.Errorf("uniform entropy = %v, want ln 4", got)
	}
	if got := NormalizedEntropy(uniform4); math.Abs(got-1) > 1e-12 {
		t.Errorf("normalized uniform entropy = %v, want 1", got)
	}
	if got := NormalizedEntropy([]float64{1, 0, 0, 0}); got != 0 {
		t.Errorf("normalized point-mass entropy = %v, want 0", got)
	}
	if NormalizedEntropy([]float64{1}) != 0 {
		t.Error("length-1 distribution should normalize to 0")
	}
	// Zero entries contribute nothing.
	if got := Entropy([]float64{0.5, 0.5, 0}); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("entropy with zero entry = %v", got)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	if got := KLDivergence(p, p); math.Abs(got) > 1e-12 {
		t.Errorf("D(p||p) = %v, want 0", got)
	}
	q := []float64{0.9, 0.1}
	if got := KLDivergence(q, p); got <= 0 {
		t.Errorf("D(q||p) = %v, want > 0", got)
	}
	// Missing prior support → +Inf.
	if got := KLDivergence([]float64{0.5, 0.5}, []float64{1, 0}); !math.IsInf(got, 1) {
		t.Errorf("unsupported posterior should be +Inf, got %v", got)
	}
}

func TestInformationGainDropsUnderObfuscation(t *testing.T) {
	// The cycle posterior should carry much less information about the
	// topics than the raw query's posterior.
	e, gt := testEngine(t)
	rng := rand.New(rand.NewSource(501))
	genuine := analyzedHead(gt, 0, 12)
	rawGain := e.InformationGain(e.Posterior(genuine, rng))
	ghost1 := analyzedHead(gt, 2, 12)
	ghost2 := analyzedHead(gt, 4, 12)
	ghost3 := analyzedHead(gt, 5, 12)
	cycleGain := e.InformationGain(e.CyclePosterior([][]string{genuine, ghost1, ghost2, ghost3}, rng))
	if !(cycleGain < rawGain) {
		t.Errorf("cycle gain %v not below raw gain %v", cycleGain, rawGain)
	}
	// And the cycle posterior's entropy is higher (more doubt).
	rng2 := rand.New(rand.NewSource(501))
	rawH := NormalizedEntropy(e.Posterior(genuine, rng2))
	cycleH := NormalizedEntropy(e.CyclePosterior([][]string{genuine, ghost1, ghost2, ghost3}, rng2))
	if cycleH <= rawH {
		t.Errorf("cycle entropy %v not above raw %v", cycleH, rawH)
	}
}
