package belief

import (
	"math"
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/lda"
	"toppriv/internal/textproc"
)

func testEngine(t *testing.T) (*Engine, *corpus.GroundTruth) {
	t.Helper()
	spec := corpus.GenSpec{Seed: 21, NumDocs: 300, NumTopics: 6, DocLenMin: 50, DocLenMax: 90}
	c, gt, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := lda.Train(c, lda.TrainSpec{NumTopics: 6, Iterations: 80, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := lda.NewInferencer(m, lda.InferSpec{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(inf)
	if err != nil {
		t.Fatal(err)
	}
	return e, gt
}

// analyzedHead returns the analyzed form of a topic's head words.
func analyzedHead(gt *corpus.GroundTruth, topic, n int) []string {
	an := textproc.NewAnalyzer()
	var out []string
	for _, w := range gt.TopicWords[topic] {
		if term, ok := an.AnalyzeTerm(w); ok {
			out = append(out, term)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func TestNewEngineNil(t *testing.T) {
	if _, err := NewEngine(nil); err == nil {
		t.Error("nil inferencer must error")
	}
}

func TestBoostSumsToZero(t *testing.T) {
	e, gt := testEngine(t)
	rng := rand.New(rand.NewSource(1))
	boost := e.Boost(analyzedHead(gt, 0, 10), rng)
	sum := 0.0
	for _, b := range boost {
		sum += b
	}
	// Posterior and prior both sum to 1, so boosts sum to ~0.
	if math.Abs(sum) > 1e-9 {
		t.Errorf("boosts sum to %v, want 0", sum)
	}
}

func TestIntentionIdentifiesQueriedTopic(t *testing.T) {
	e, gt := testEngine(t)
	rng := rand.New(rand.NewSource(2))
	terms := analyzedHead(gt, 0, 14)
	boost := e.Boost(terms, rng)
	u := Intention(boost, 0.02)
	if len(u) == 0 {
		t.Fatal("focused query produced empty intention at eps1=2%")
	}
	// U is sorted by descending boost.
	for i := 1; i < len(u); i++ {
		if boost[u[i-1]] < boost[u[i]] {
			t.Fatal("Intention not sorted by boost")
		}
	}
	// Every member exceeds the threshold.
	for _, topic := range u {
		if boost[topic] <= 0.02 {
			t.Fatal("Intention contains sub-threshold topic")
		}
	}
}

func TestCyclePosteriorIsAverage(t *testing.T) {
	e, gt := testEngine(t)
	q1 := analyzedHead(gt, 0, 8)
	q2 := analyzedHead(gt, 1, 8)
	// Same RNG stream order as CyclePosterior uses.
	rngA := rand.New(rand.NewSource(3))
	p1 := e.Posterior(q1, rngA)
	p2 := e.Posterior(q2, rngA)
	rngB := rand.New(rand.NewSource(3))
	cp := e.CyclePosterior([][]string{q1, q2}, rngB)
	for t2 := range cp {
		want := (p1[t2] + p2[t2]) / 2
		if math.Abs(cp[t2]-want) > 1e-12 {
			t.Fatalf("Eq.2 violated at topic %d: %v vs %v", t2, cp[t2], want)
		}
	}
}

func TestCyclePosteriorEmpty(t *testing.T) {
	e, _ := testEngine(t)
	rng := rand.New(rand.NewSource(4))
	cp := e.CyclePosterior(nil, rng)
	prior := e.Prior()
	for i := range cp {
		if cp[i] != prior[i] {
			t.Fatal("empty cycle must return the prior")
		}
	}
}

func TestGhostQuerySuppressesBoost(t *testing.T) {
	// Mixing in a query on a different topic must reduce the genuine
	// topic's cycle boost relative to the solo query — the basic
	// mechanism TopPriv relies on.
	e, gt := testEngine(t)
	genuine := analyzedHead(gt, 0, 10)
	ghost := analyzedHead(gt, 2, 10)
	rng1 := rand.New(rand.NewSource(5))
	solo := e.Boost(genuine, rng1)
	u := Intention(solo, 0.01)
	if len(u) == 0 {
		t.Skip("no intention detected; corpus too noisy at this seed")
	}
	rng2 := rand.New(rand.NewSource(5))
	mixed := e.CycleBoost([][]string{genuine, ghost}, rng2)
	if Exposure(mixed, u) >= Exposure(solo, u) {
		t.Errorf("ghost query did not reduce exposure: solo %v mixed %v",
			Exposure(solo, u), Exposure(mixed, u))
	}
}

func TestMetricsSmall(t *testing.T) {
	boost := []float64{0.10, -0.02, 0.30, 0.05, -0.01}
	u := Intention(boost, 0.06)
	if len(u) != 2 || u[0] != 2 || u[1] != 0 {
		t.Fatalf("Intention = %v", u)
	}
	if got := Exposure(boost, u); got != 0.30 {
		t.Errorf("Exposure = %v", got)
	}
	if got := MaskLevel(boost, u); got != 0.05 {
		t.Errorf("MaskLevel = %v", got)
	}
	if got := MaxRank(boost, u); got != 1 {
		t.Errorf("MaxRank = %v", got)
	}
	if Exposure(boost, nil) != 0 {
		t.Error("empty-U exposure should be 0")
	}
	if MaxRank(boost, nil) != 0 {
		t.Error("empty-U MaxRank should be 0")
	}
}

func TestMaskLevelWithNegativeBoosts(t *testing.T) {
	// When all non-U topics have negative boost, MaskLevel must still
	// report their max (a negative number), not zero.
	boost := []float64{0.2, -0.05, -0.10}
	u := []int{0}
	if got := MaskLevel(boost, u); got != -0.05 {
		t.Errorf("MaskLevel = %v, want -0.05", got)
	}
}

func TestMaxRankBuriedTopic(t *testing.T) {
	boost := []float64{0.5, 0.4, 0.3, 0.01}
	u := []int{3}
	if got := MaxRank(boost, u); got != 4 {
		t.Errorf("MaxRank = %v, want 4", got)
	}
}

func TestSatisfies(t *testing.T) {
	cycle := []float64{0.005, 0.05, 0.002}
	u := []int{0, 2}
	if !Satisfies(cycle, u, 0.01) {
		t.Error("cycle within eps2 must satisfy")
	}
	if Satisfies(cycle, []int{1}, 0.01) {
		t.Error("exposed topic must fail")
	}
	if !Satisfies(cycle, nil, 0) {
		t.Error("empty U trivially satisfies")
	}
}

func TestBoostOfLengths(t *testing.T) {
	got := BoostOf([]float64{0.6, 0.4}, []float64{0.5, 0.5})
	if len(got) != 2 || math.Abs(got[0]-0.1) > 1e-15 || math.Abs(got[1]+0.1) > 1e-15 {
		t.Errorf("BoostOf = %v", got)
	}
}
