package textproc

// Analyzer is the full preprocessing pipeline: tokenize, drop stopwords,
// and optionally stem. It is the single entry point the index, the topic
// model and the query path all share, so that a query term and a
// document term always normalize identically.
type Analyzer struct {
	tokenizer *Tokenizer
	stops     StopSet
	stem      bool
}

// AnalyzerOption configures an Analyzer.
type AnalyzerOption func(*Analyzer)

// WithStemming enables or disables Porter stemming (default: enabled).
func WithStemming(on bool) AnalyzerOption {
	return func(a *Analyzer) { a.stem = on }
}

// WithStopSet replaces the default English stopword set.
func WithStopSet(s StopSet) AnalyzerOption {
	return func(a *Analyzer) { a.stops = s }
}

// WithTokenizer replaces the default tokenizer.
func WithTokenizer(t *Tokenizer) AnalyzerOption {
	return func(a *Analyzer) { a.tokenizer = t }
}

// NewAnalyzer returns an analyzer with the repository defaults:
// the standard tokenizer, the built-in English stop set, and stemming
// enabled.
func NewAnalyzer(opts ...AnalyzerOption) *Analyzer {
	a := &Analyzer{
		tokenizer: NewTokenizer(),
		stops:     DefaultStopSet(),
		stem:      true,
	}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// Analyze normalizes text into index terms.
func (a *Analyzer) Analyze(text string) []string {
	toks := a.tokenizer.Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, tok := range toks {
		if a.stops.Contains(tok.Term) {
			continue
		}
		term := tok.Term
		if a.stem {
			term = Stem(term)
		}
		if term == "" || a.stops.Contains(term) {
			continue
		}
		out = append(out, term)
	}
	return out
}

// AnalyzeTerm normalizes a single already-tokenized term (used when the
// synthetic corpus emits vocabulary words directly). It returns the
// normalized term and whether it survived the pipeline.
func (a *Analyzer) AnalyzeTerm(term string) (string, bool) {
	toks := a.tokenizer.Tokenize(term)
	if len(toks) != 1 {
		return "", false
	}
	t := toks[0].Term
	if a.stops.Contains(t) {
		return "", false
	}
	if a.stem {
		t = Stem(t)
	}
	if t == "" || a.stops.Contains(t) {
		return "", false
	}
	return t, true
}

// Stemming reports whether the analyzer stems terms.
func (a *Analyzer) Stemming() bool { return a.stem }
