package textproc

import (
	"reflect"
	"testing"
)

func TestAnalyzerPipeline(t *testing.T) {
	a := NewAnalyzer()
	got := a.Analyze("The helicopters were flying over the compound")
	// "the", "were", "over" are stopwords; remaining words are stemmed.
	want := []string{"helicopt", "fly", "compound"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Analyze = %v, want %v", got, want)
	}
}

func TestAnalyzerNoStem(t *testing.T) {
	a := NewAnalyzer(WithStemming(false))
	got := a.Analyze("running quickly")
	want := []string{"running", "quickly"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Analyze = %v, want %v", got, want)
	}
}

func TestAnalyzerCustomStops(t *testing.T) {
	a := NewAnalyzer(WithStemming(false), WithStopSet(NewStopSet("apache")))
	got := a.Analyze("apache helicopter")
	want := []string{"helicopter"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Analyze = %v, want %v", got, want)
	}
}

func TestAnalyzerQueryDocConsistency(t *testing.T) {
	// The core invariant the search engine depends on: a query term and
	// a document term with the same surface family normalize to the same
	// index term.
	a := NewAnalyzer()
	doc := a.Analyze("compression standards for imaging")
	query := a.Analyze("image compression standard")
	docSet := map[string]bool{}
	for _, term := range doc {
		docSet[term] = true
	}
	matches := 0
	for _, term := range query {
		if docSet[term] {
			matches++
		}
	}
	if matches < 2 {
		t.Errorf("query/doc normalization mismatch: doc=%v query=%v", doc, query)
	}
}

func TestAnalyzeTerm(t *testing.T) {
	a := NewAnalyzer()
	if _, ok := a.AnalyzeTerm("the"); ok {
		t.Error("stopword must not survive AnalyzeTerm")
	}
	if term, ok := a.AnalyzeTerm("Helicopters"); !ok || term != "helicopt" {
		t.Errorf("AnalyzeTerm = %q, %v", term, ok)
	}
	if _, ok := a.AnalyzeTerm("two words"); ok {
		t.Error("multi-token input must be rejected")
	}
	if _, ok := a.AnalyzeTerm("!"); ok {
		t.Error("punctuation must be rejected")
	}
}

func TestStopSetOps(t *testing.T) {
	s := DefaultStopSet()
	n := s.Len()
	if !s.Contains("the") {
		t.Error("default set must contain 'the'")
	}
	s.Add("zzz")
	if !s.Contains("zzz") || s.Len() != n+1 {
		t.Error("Add failed")
	}
	s.Remove("zzz", "the")
	if s.Contains("zzz") || s.Contains("the") {
		t.Error("Remove failed")
	}
	// The package-level default must be unaffected.
	if !DefaultStopSet().Contains("the") {
		t.Error("DefaultStopSet must return an independent copy")
	}
}
