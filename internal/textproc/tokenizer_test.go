package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Terms("The Quick, brown FOX!")
	want := []string{"the", "quick", "brown", "fox"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizeKeepsDesignators(t *testing.T) {
	tok := NewTokenizer()
	cases := map[string][]string{
		"AH-64 Apache helicopter": {"ah-64", "apache", "helicopter"},
		"abrams tank m-1":         {"abrams", "tank", "m-1"},
		"u.s. army":               {"u.s", "army"},
		"SQ-333 Changi airport":   {"sq-333", "changi", "airport"},
	}
	for in, want := range cases {
		if got := tok.Terms(in); !reflect.DeepEqual(got, want) {
			t.Errorf("Terms(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestTokenizeMinMaxLen(t *testing.T) {
	tok := &Tokenizer{MinLen: 3, MaxLen: 5}
	got := tok.Terms("a ab abc abcd abcde abcdef")
	want := []string{"abc", "abcd", "abcde"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizeNoJoin(t *testing.T) {
	tok := &Tokenizer{MinLen: 1, KeepJoined: false}
	got := tok.Terms("ah-64")
	want := []string{"ah", "64"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizePositions(t *testing.T) {
	tok := NewTokenizer()
	toks := tok.Tokenize("alpha beta gamma")
	for i, tk := range toks {
		if tk.Position != i {
			t.Errorf("token %d has position %d", i, tk.Position)
		}
	}
}

func TestTokenizeEmptyAndPunct(t *testing.T) {
	tok := NewTokenizer()
	for _, in := range []string{"", "   ", "!!! --- ...", "-", "."} {
		if got := tok.Terms(in); len(got) != 0 {
			t.Errorf("Terms(%q) = %v, want empty", in, got)
		}
	}
}

func TestTokenizeTrailingJoiner(t *testing.T) {
	tok := NewTokenizer()
	// "u.s." at end of sentence: trailing period must not survive.
	got := tok.Terms("made in the u.s. today")
	for _, term := range got {
		if strings.HasSuffix(term, ".") || strings.HasSuffix(term, "-") {
			t.Errorf("term %q has trailing joiner", term)
		}
	}
}

func TestTokenizeUnicode(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Terms("café RÉSUMÉ 日本語")
	want := []string{"café", "résumé", "日本語"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

// Property: every emitted term is lowercase and within length bounds.
func TestTokenizeProperty(t *testing.T) {
	tok := NewTokenizer()
	f := func(s string) bool {
		for _, term := range tok.Terms(s) {
			if term != strings.ToLower(term) {
				return false
			}
			n := len([]rune(term))
			if n < tok.MinLen || n > tok.MaxLen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tokenization is idempotent — re-tokenizing the emitted terms
// yields the same terms.
func TestTokenizeIdempotent(t *testing.T) {
	tok := NewTokenizer()
	f := func(s string) bool {
		first := tok.Terms(s)
		again := tok.Terms(strings.Join(first, " "))
		return reflect.DeepEqual(first, again)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
