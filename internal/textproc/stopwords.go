package textproc

// StopSet is a set of stopwords. Membership tests use the normalized
// (lowercase) surface form before stemming.
type StopSet map[string]struct{}

// defaultStopwords is a standard English stopword list (a superset of
// the SMART/Glasgow core) matching the "common words like 'the' and 'a'"
// removal step in §V-A of the paper.
var defaultStopwords = []string{
	"a", "about", "above", "after", "again", "against", "all", "also", "am",
	"an", "and", "any", "are", "aren't", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"can't", "cannot", "could", "couldn't", "did", "didn't", "do", "does",
	"doesn't", "doing", "don't", "down", "during", "each", "else", "ever",
	"few", "for", "from", "further", "get", "got", "had", "hadn't", "has",
	"hasn't", "have", "haven't", "having", "he", "he'd", "he'll", "he's",
	"her", "here", "here's", "hers", "herself", "him", "himself", "his",
	"how", "how's", "however", "i", "i'd", "i'll", "i'm", "i've", "if", "in",
	"into", "is", "isn't", "it", "it's", "its", "itself", "just", "let's",
	"like", "me", "more", "most", "mustn't", "my", "myself", "no", "nor",
	"not", "of", "off", "on", "once", "only", "or", "other", "ought", "our",
	"ours", "ourselves", "out", "over", "own", "per", "same", "shall",
	"shan't", "she", "she'd", "she'll", "she's", "should", "shouldn't",
	"since", "so", "some", "such", "than", "that", "that's", "the", "their",
	"theirs", "them", "themselves", "then", "there", "there's", "these",
	"they", "they'd", "they'll", "they're", "they've", "this", "those",
	"through", "to", "too", "under", "until", "up", "upon", "us", "very",
	"was", "wasn't", "we", "we'd", "we'll", "we're", "we've", "were",
	"weren't", "what", "what's", "when", "when's", "where", "where's",
	"which", "while", "who", "who's", "whom", "why", "why's", "will", "with",
	"within", "without", "won't", "would", "wouldn't", "yet", "you", "you'd",
	"you'll", "you're", "you've", "your", "yours", "yourself", "yourselves",
}

// DefaultStopSet returns a fresh copy of the built-in English stopword
// set. Callers may add or remove entries without affecting other users.
func DefaultStopSet() StopSet {
	s := make(StopSet, len(defaultStopwords))
	for _, w := range defaultStopwords {
		s[w] = struct{}{}
	}
	return s
}

// NewStopSet builds a stop set from the given words (normalized to
// lowercase by the caller).
func NewStopSet(words ...string) StopSet {
	s := make(StopSet, len(words))
	for _, w := range words {
		s[w] = struct{}{}
	}
	return s
}

// Contains reports whether w is a stopword.
func (s StopSet) Contains(w string) bool {
	_, ok := s[w]
	return ok
}

// Add inserts words into the set.
func (s StopSet) Add(words ...string) {
	for _, w := range words {
		s[w] = struct{}{}
	}
}

// Remove deletes words from the set.
func (s StopSet) Remove(words ...string) {
	for _, w := range words {
		delete(s, w)
	}
}

// Len returns the number of stopwords in the set.
func (s StopSet) Len() int { return len(s) }
