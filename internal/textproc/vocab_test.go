package textproc

import (
	"testing"
	"testing/quick"
)

func TestVocabAddAndLookup(t *testing.T) {
	v := NewVocab()
	a := v.Add("apache")
	b := v.Add("tank")
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if v.Add("apache") != a {
		t.Error("re-adding a term changed its ID")
	}
	if v.ID("apache") != a || v.ID("tank") != b {
		t.Error("ID lookup mismatch")
	}
	if v.ID("missing") != InvalidTerm {
		t.Error("missing term should return InvalidTerm")
	}
	if v.Term(a) != "apache" || v.Term(b) != "tank" {
		t.Error("Term lookup mismatch")
	}
	if v.Size() != 2 {
		t.Errorf("Size = %d, want 2", v.Size())
	}
}

func TestVocabObserveDoc(t *testing.T) {
	v := NewVocab()
	a := v.Add("alpha")
	b := v.Add("beta")
	v.ObserveDoc([]TermID{a, a, b})
	v.ObserveDoc([]TermID{a})
	if df := v.DocFreq(a); df != 2 {
		t.Errorf("DocFreq(a) = %d, want 2", df)
	}
	if df := v.DocFreq(b); df != 1 {
		t.Errorf("DocFreq(b) = %d, want 1", df)
	}
	if cf := v.CollFreq(a); cf != 3 {
		t.Errorf("CollFreq(a) = %d, want 3", cf)
	}
	if cf := v.CollFreq(b); cf != 1 {
		t.Errorf("CollFreq(b) = %d, want 1", cf)
	}
}

func TestVocabPrune(t *testing.T) {
	v := NewVocab()
	rare := v.Add("rare")
	common := v.Add("common")
	everywhere := v.Add("everywhere")
	for i := 0; i < 10; i++ {
		bag := []TermID{everywhere}
		if i < 5 {
			bag = append(bag, common)
		}
		if i == 0 {
			bag = append(bag, rare)
		}
		v.ObserveDoc(bag)
	}
	nv, remap, err := v.Prune(PruneSpec{MinDocFreq: 2, MaxDocRatio: 0.8, TotalDocs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if remap[rare] != InvalidTerm {
		t.Error("rare term should be pruned by MinDocFreq")
	}
	if remap[everywhere] != InvalidTerm {
		t.Error("ubiquitous term should be pruned by MaxDocRatio")
	}
	if remap[common] == InvalidTerm {
		t.Error("common term should survive")
	}
	if nv.Size() != 1 {
		t.Errorf("pruned vocab size = %d, want 1", nv.Size())
	}
	if nv.DocFreq(remap[common]) != 5 {
		t.Error("frequencies must carry over to the pruned vocab")
	}
}

func TestVocabPruneRatioRequiresTotal(t *testing.T) {
	v := NewVocab()
	v.Add("x")
	if _, _, err := v.Prune(PruneSpec{MaxDocRatio: 0.5}); err == nil {
		t.Error("expected error when MaxDocRatio set without TotalDocs")
	}
}

func TestVocabTopByCollFreq(t *testing.T) {
	v := NewVocab()
	a := v.Add("a")
	b := v.Add("b")
	c := v.Add("c")
	v.ObserveDoc([]TermID{b, b, b, c, c, a})
	top := v.TopByCollFreq(2)
	if len(top) != 2 || top[0] != b || top[1] != c {
		t.Errorf("TopByCollFreq = %v, want [b c] = [%d %d]", top, b, c)
	}
	all := v.TopByCollFreq(100)
	if len(all) != 3 {
		t.Errorf("TopByCollFreq(100) returned %d ids", len(all))
	}
}

// Property: Add is a bijection — IDs are dense and Term∘ID = identity.
func TestVocabBijectionProperty(t *testing.T) {
	f := func(words []string) bool {
		v := NewVocab()
		for _, w := range words {
			v.Add(w)
		}
		for i := 0; i < v.Size(); i++ {
			if v.ID(v.Term(TermID(i))) != TermID(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
