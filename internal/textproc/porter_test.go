package textproc

import (
	"testing"
	"testing/quick"
)

// Canonical examples from Porter's paper and the reference vocabulary.
func TestStemKnown(t *testing.T) {
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonAlpha(t *testing.T) {
	for _, w := range []string{"a", "is", "ah-64", "m-1", "u.s", "x9", ""} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

// Query/document consistency: the same topical word family collapses.
func TestStemFamiliesCollapse(t *testing.T) {
	families := [][]string{
		{"connect", "connected", "connecting", "connection", "connections"},
		{"helicopter", "helicopters"},
		{"compress", "compressed", "compressing"},
	}
	for _, fam := range families {
		base := Stem(fam[0])
		for _, w := range fam[1:] {
			if got := Stem(w); got != base {
				t.Errorf("Stem(%q) = %q, want %q (family %v)", w, got, base, fam)
			}
		}
	}
}

// Property: stemming never grows a word and is idempotent on its output
// for plain lowercase words.
func TestStemProperties(t *testing.T) {
	f := func(raw string) bool {
		// Build a plain lowercase ASCII word from the fuzz input.
		var b []byte
		for _, r := range raw {
			c := byte('a' + (int(r) % 26))
			b = append(b, c)
			if len(b) >= 20 {
				break
			}
		}
		w := string(b)
		s1 := Stem(w)
		if len(s1) > len(w) {
			return false
		}
		// Idempotence on stems is a property of Porter's algorithm for
		// the overwhelming majority of words; check double application
		// does not grow.
		s2 := Stem(s1)
		return len(s2) <= len(s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
