// Package textproc provides the text-processing substrate used by the
// search engine and the topic model: tokenization, stopword removal,
// Porter stemming, and vocabulary management.
//
// The pipeline mirrors the standard document-retrieval preprocessing the
// paper applies to the WSJ corpus (§V-A): lowercase, strip stopwords,
// and drop hapax terms before indexing or topic modeling.
package textproc

import (
	"strings"
	"unicode"
)

// Token is a single normalized term extracted from text.
type Token struct {
	// Term is the normalized (lowercased, possibly stemmed) surface form.
	Term string
	// Position is the 0-based token offset within the source text.
	Position int
}

// Tokenizer splits raw text into lowercase word tokens. A token is a
// maximal run of letters and digits; single hyphens and periods are kept
// when they join alphanumeric runs, so designators such as "ah-64",
// "m-1" and "u.s." survive as one token each (the paper's TREC queries
// depend on such high-specificity terms).
type Tokenizer struct {
	// MinLen drops tokens shorter than this many runes (after
	// normalization). Zero means keep everything.
	MinLen int
	// MaxLen drops tokens longer than this many runes. Zero means no
	// upper bound.
	MaxLen int
	// KeepJoined controls whether inner '-' and '.' join runs into one
	// token. Enabled by default via NewTokenizer.
	KeepJoined bool
}

// NewTokenizer returns a tokenizer with the defaults used throughout the
// repository: tokens of 2..40 runes, joined designators kept.
func NewTokenizer() *Tokenizer {
	return &Tokenizer{MinLen: 2, MaxLen: 40, KeepJoined: true}
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Tokenize splits text into tokens. The returned slice is freshly
// allocated on each call; the tokenizer itself is stateless and safe for
// concurrent use.
func (t *Tokenizer) Tokenize(text string) []Token {
	var out []Token
	var b strings.Builder
	pos := 0
	runes := []rune(text)
	flush := func() {
		if b.Len() == 0 {
			return
		}
		term := b.String()
		b.Reset()
		// Trim trailing joiners left by inputs like "u.s." at
		// end-of-sentence.
		term = strings.TrimRight(term, "-.")
		n := len([]rune(term))
		if n == 0 || (t.MinLen > 0 && n < t.MinLen) || (t.MaxLen > 0 && n > t.MaxLen) {
			return
		}
		out = append(out, Token{Term: term, Position: pos})
		pos++
	}
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		switch {
		case isWordRune(r):
			b.WriteRune(unicode.ToLower(r))
		case t.KeepJoined && (r == '-' || r == '.') && b.Len() > 0 &&
			i+1 < len(runes) && isWordRune(runes[i+1]):
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return out
}

// Terms is a convenience wrapper returning only the term strings.
func (t *Tokenizer) Terms(text string) []string {
	toks := t.Tokenize(text)
	terms := make([]string, len(toks))
	for i, tok := range toks {
		terms[i] = tok.Term
	}
	return terms
}
