package textproc

import (
	"fmt"
	"sort"
)

// TermID identifies a vocabulary term. IDs are dense, starting at 0, in
// insertion order.
type TermID int32

// InvalidTerm is returned by lookups that miss.
const InvalidTerm TermID = -1

// Vocab is a bidirectional term <-> ID mapping with per-term document
// and collection frequencies. It is the shared dictionary between the
// inverted index and the LDA model, so a term ID means the same thing
// in both (the paper's Pr(w|t) matrix and the postings dictionary are
// keyed identically).
//
// Vocab is not safe for concurrent mutation; build it single-threaded,
// then share it read-only.
type Vocab struct {
	terms []string
	ids   map[string]TermID
	// docFreq[id] counts the documents containing the term at least once.
	docFreq []int
	// collFreq[id] counts total occurrences across the collection.
	collFreq []int
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{ids: make(map[string]TermID)}
}

// Add interns the term, returning its ID. Frequencies are not touched;
// use Observe for counting.
func (v *Vocab) Add(term string) TermID {
	if id, ok := v.ids[term]; ok {
		return id
	}
	id := TermID(len(v.terms))
	v.terms = append(v.terms, term)
	v.ids[term] = id
	v.docFreq = append(v.docFreq, 0)
	v.collFreq = append(v.collFreq, 0)
	return id
}

// Clone returns an independent deep copy: same term → ID mapping and
// frequencies, sharing no mutable state with the original. A live
// index seals segments against a clone so later growth of the shared
// dictionary (which is append-only, so IDs never change meaning) can
// never race with background readers of the sealed segment.
func (v *Vocab) Clone() *Vocab {
	nv := &Vocab{
		terms:    append([]string(nil), v.terms...),
		ids:      make(map[string]TermID, len(v.ids)),
		docFreq:  append([]int(nil), v.docFreq...),
		collFreq: append([]int(nil), v.collFreq...),
	}
	for term, id := range v.ids {
		nv.ids[term] = id
	}
	return nv
}

// ID returns the term's ID, or InvalidTerm when absent.
func (v *Vocab) ID(term string) TermID {
	if id, ok := v.ids[term]; ok {
		return id
	}
	return InvalidTerm
}

// Term returns the surface form for id. It panics when id is out of
// range, matching slice semantics.
func (v *Vocab) Term(id TermID) string { return v.terms[id] }

// Size returns the number of distinct terms (ω in the paper).
func (v *Vocab) Size() int { return len(v.terms) }

// ObserveDoc records one document's bag of term IDs, updating document
// and collection frequencies. Duplicate IDs in the bag increment the
// collection frequency per occurrence but the document frequency once.
func (v *Vocab) ObserveDoc(bag []TermID) {
	seen := make(map[TermID]struct{}, len(bag))
	for _, id := range bag {
		v.collFreq[id]++
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			v.docFreq[id]++
		}
	}
}

// DocFreq returns the number of documents containing the term.
func (v *Vocab) DocFreq(id TermID) int { return v.docFreq[id] }

// CollFreq returns the total number of occurrences of the term.
func (v *Vocab) CollFreq(id TermID) int { return v.collFreq[id] }

// Terms returns a copy of all terms in ID order.
func (v *Vocab) Terms() []string {
	out := make([]string, len(v.terms))
	copy(out, v.terms)
	return out
}

// PruneSpec controls vocabulary pruning.
type PruneSpec struct {
	// MinDocFreq drops terms appearing in fewer documents. The paper
	// removes "words that appear only once", i.e. MinDocFreq = 2 on
	// collection frequency 1; we express it on document frequency, which
	// subsumes that case for our synthetic corpus.
	MinDocFreq int
	// MaxDocRatio drops terms appearing in more than this fraction of
	// documents (0 disables). Useful as a corpus-specific stopword pass.
	MaxDocRatio float64
	// TotalDocs is the number of documents observed; required when
	// MaxDocRatio > 0.
	TotalDocs int
}

// Prune returns a new vocabulary containing only the surviving terms and
// a remap slice: remap[oldID] = newID or InvalidTerm for dropped terms.
func (v *Vocab) Prune(spec PruneSpec) (*Vocab, []TermID, error) {
	if spec.MaxDocRatio > 0 && spec.TotalDocs <= 0 {
		return nil, nil, fmt.Errorf("textproc: PruneSpec.MaxDocRatio set but TotalDocs = %d", spec.TotalDocs)
	}
	nv := NewVocab()
	remap := make([]TermID, len(v.terms))
	for old, term := range v.terms {
		remap[old] = InvalidTerm
		df := v.docFreq[old]
		if spec.MinDocFreq > 0 && df < spec.MinDocFreq {
			continue
		}
		if spec.MaxDocRatio > 0 &&
			float64(df) > spec.MaxDocRatio*float64(spec.TotalDocs) {
			continue
		}
		id := nv.Add(term)
		nv.docFreq[id] = v.docFreq[old]
		nv.collFreq[id] = v.collFreq[old]
		remap[old] = id
	}
	return nv, remap, nil
}

// TopByCollFreq returns up to n term IDs sorted by descending collection
// frequency (ties broken by ID for determinism).
func (v *Vocab) TopByCollFreq(n int) []TermID {
	ids := make([]TermID, len(v.terms))
	for i := range ids {
		ids[i] = TermID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		fa, fb := v.collFreq[ids[a]], v.collFreq[ids[b]]
		if fa != fb {
			return fa > fb
		}
		return ids[a] < ids[b]
	})
	if n < len(ids) {
		ids = ids[:n]
	}
	return ids
}
