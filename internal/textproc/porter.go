package textproc

// Porter stemmer — a faithful implementation of M.F. Porter's 1980
// suffix-stripping algorithm ("An algorithm for suffix stripping",
// Program 14(3)). It operates on lowercase ASCII words; tokens that
// contain non-letters (digits, hyphens, periods — e.g. "ah-64") are
// returned unchanged, which is the behaviour the paper's
// high-specificity query terms require.

// Stem returns the Porter stem of word. Words of length <= 2 and words
// containing non-letter bytes are returned unchanged.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			return word
		}
	}
	s := stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

type stemmer struct {
	b []byte
}

// isCons reports whether the byte at index i acts as a consonant.
func (s *stemmer) isCons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isCons(i - 1)
	default:
		return true
	}
}

// measure computes m, the number of VC sequences in b[:end].
func (s *stemmer) measure(end int) int {
	m := 0
	i := 0
	// Skip initial consonants.
	for i < end && s.isCons(i) {
		i++
	}
	for i < end {
		// In a vowel run.
		for i < end && !s.isCons(i) {
			i++
		}
		if i >= end {
			break
		}
		m++
		for i < end && s.isCons(i) {
			i++
		}
	}
	return m
}

// hasVowel reports whether b[:end] contains a vowel.
func (s *stemmer) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !s.isCons(i) {
			return true
		}
	}
	return false
}

// doubleCons reports whether b[:end] ends with a double consonant.
func (s *stemmer) doubleCons(end int) bool {
	if end < 2 {
		return false
	}
	return s.b[end-1] == s.b[end-2] && s.isCons(end-1)
}

// cvc reports whether b[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x or y.
func (s *stemmer) cvc(end int) bool {
	if end < 3 {
		return false
	}
	if !s.isCons(end-1) || s.isCons(end-2) || !s.isCons(end-3) {
		return false
	}
	switch s.b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the current word ends with suf.
func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b)
	if len(suf) > n {
		return false
	}
	return string(s.b[n-len(suf):]) == suf
}

// replaceSuffix replaces suf (assumed present) with rep if the measure
// of the stem preceding suf is > m. Returns true when a replacement
// happened.
func (s *stemmer) replaceSuffix(suf, rep string, m int) bool {
	stemLen := len(s.b) - len(suf)
	if s.measure(stemLen) > m {
		s.b = append(s.b[:stemLen], rep...)
		return true
	}
	return false
}

func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.b = s.b[:len(s.b)-2]
	case s.hasSuffix("ies"):
		s.b = s.b[:len(s.b)-2]
	case s.hasSuffix("ss"):
		// no change
	case s.hasSuffix("s"):
		s.b = s.b[:len(s.b)-1]
	}
}

func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure(len(s.b)-3) > 0 {
			s.b = s.b[:len(s.b)-1]
		}
		return
	}
	cleanup := false
	if s.hasSuffix("ed") && s.hasVowel(len(s.b)-2) {
		s.b = s.b[:len(s.b)-2]
		cleanup = true
	} else if s.hasSuffix("ing") && s.hasVowel(len(s.b)-3) {
		s.b = s.b[:len(s.b)-3]
		cleanup = true
	}
	if !cleanup {
		return
	}
	switch {
	case s.hasSuffix("at"), s.hasSuffix("bl"), s.hasSuffix("iz"):
		s.b = append(s.b, 'e')
	case s.doubleCons(len(s.b)):
		last := s.b[len(s.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			s.b = s.b[:len(s.b)-1]
		}
	case s.measure(len(s.b)) == 1 && s.cvc(len(s.b)):
		s.b = append(s.b, 'e')
	}
}

func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.hasVowel(len(s.b)-1) {
		s.b[len(s.b)-1] = 'i'
	}
}

// step2 maps double suffixes to single ones when m(stem) > 0.
func (s *stemmer) step2() {
	pairs := []struct{ suf, rep string }{
		{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
		{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
		{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
		{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
		{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
		{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
		{"biliti", "ble"},
	}
	for _, p := range pairs {
		if s.hasSuffix(p.suf) {
			s.replaceSuffix(p.suf, p.rep, 0)
			return
		}
	}
}

func (s *stemmer) step3() {
	pairs := []struct{ suf, rep string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
		{"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, p := range pairs {
		if s.hasSuffix(p.suf) {
			s.replaceSuffix(p.suf, p.rep, 0)
			return
		}
	}
}

func (s *stemmer) step4() {
	sufs := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
		"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
	}
	for _, suf := range sufs {
		if !s.hasSuffix(suf) {
			continue
		}
		stemLen := len(s.b) - len(suf)
		if s.measure(stemLen) > 1 {
			s.b = s.b[:stemLen]
		}
		return
	}
	// "ion" requires the stem to end in s or t.
	if s.hasSuffix("ion") {
		stemLen := len(s.b) - 3
		if stemLen > 0 && (s.b[stemLen-1] == 's' || s.b[stemLen-1] == 't') &&
			s.measure(stemLen) > 1 {
			s.b = s.b[:stemLen]
		}
	}
}

func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	stemLen := len(s.b) - 1
	m := s.measure(stemLen)
	if m > 1 || (m == 1 && !s.cvc(stemLen)) {
		s.b = s.b[:stemLen]
	}
}

func (s *stemmer) step5b() {
	n := len(s.b)
	if n > 1 && s.b[n-1] == 'l' && s.doubleCons(n) && s.measure(n) > 1 {
		s.b = s.b[:n-1]
	}
}
