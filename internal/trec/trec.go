// Package trec parses the TREC data formats the paper's evaluation is
// built on: the SGML-style document markup used by the Wall Street
// Journal collection (TREC disks 1–2) and the TREC ad-hoc topic format
// (topics 51–200 are the paper's 150 queries).
//
// The repository's experiments run on a synthetic substitute corpus,
// but a user holding the licensed WSJ data can ingest it with this
// package and reproduce the paper on the original collection:
//
//	docs, err := trec.ParseDocuments(f)       // WSJ SGML
//	topics, err := trec.ParseTopics(tf)       // TREC topics
//	svc, err := toppriv.NewService(toppriv.ServiceSpec{Documents: docs})
package trec

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"toppriv/internal/corpus"
)

// ParseDocuments reads a TREC SGML document stream:
//
//	<DOC>
//	<DOCNO> WSJ870324-0001 </DOCNO>
//	<HL> headline </HL>
//	<TEXT>
//	body...
//	</TEXT>
//	</DOC>
//
// Only DOCNO, HL (headline) and TEXT are interpreted; all other tags
// inside a document are ignored. Multiple TEXT sections concatenate.
func ParseDocuments(r io.Reader) ([]corpus.Document, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var docs []corpus.Document
	var cur *corpus.Document
	var inText, inHL bool
	var text, hl strings.Builder
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Text()
		trimmed := strings.TrimSpace(raw)
		switch {
		case trimmed == "<DOC>":
			if cur != nil {
				return nil, fmt.Errorf("trec: line %d: nested <DOC>", line)
			}
			cur = &corpus.Document{}
			text.Reset()
			hl.Reset()
		case trimmed == "</DOC>":
			if cur == nil {
				return nil, fmt.Errorf("trec: line %d: </DOC> without <DOC>", line)
			}
			cur.Text = strings.TrimSpace(text.String())
			if cur.Title == "" {
				cur.Title = strings.TrimSpace(hl.String())
			}
			cur.ID = corpus.DocID(len(docs))
			docs = append(docs, *cur)
			cur = nil
			inText, inHL = false, false
		case cur == nil:
			continue // junk between documents
		case strings.HasPrefix(trimmed, "<DOCNO>"):
			val := strings.TrimPrefix(trimmed, "<DOCNO>")
			val = strings.TrimSuffix(val, "</DOCNO>")
			if cur.Title == "" {
				cur.Title = strings.TrimSpace(val)
			}
		case trimmed == "<TEXT>":
			inText = true
		case trimmed == "</TEXT>":
			inText = false
		case trimmed == "<HL>":
			inHL = true
		case trimmed == "</HL>":
			inHL = false
		case strings.HasPrefix(trimmed, "<HL>"):
			// single-line <HL> headline </HL>
			val := strings.TrimPrefix(trimmed, "<HL>")
			val = strings.TrimSuffix(val, "</HL>")
			hl.WriteString(val)
			hl.WriteByte(' ')
		case inHL:
			hl.WriteString(trimmed)
			hl.WriteByte(' ')
		case inText:
			text.WriteString(raw)
			text.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trec: scan: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("trec: unterminated <DOC>")
	}
	return docs, nil
}

// Topic is one TREC ad-hoc topic. The paper uses the Title field as the
// query (its demonstration query is topic 91's title).
type Topic struct {
	Number      int
	Title       string
	Description string
	Narrative   string
}

// Query returns the topic's title as a search query string.
func (t Topic) Query() string { return t.Title }

// ParseTopics reads the classic TREC topic format:
//
//	<top>
//	<num> Number: 091
//	<title> Topic: U.S. Army Acquisition of Advanced Weapons Systems
//	<desc> Description:
//	...free text...
//	<narr> Narrative:
//	...free text...
//	</top>
func ParseTopics(r io.Reader) ([]Topic, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var topics []Topic
	var cur *Topic
	section := ""
	var desc, narr strings.Builder
	flushSection := func() {
		if cur == nil {
			return
		}
		cur.Description = strings.TrimSpace(desc.String())
		cur.Narrative = strings.TrimSpace(narr.String())
	}
	line := 0
	for sc.Scan() {
		line++
		trimmed := strings.TrimSpace(sc.Text())
		switch {
		case trimmed == "<top>":
			if cur != nil {
				return nil, fmt.Errorf("trec: line %d: nested <top>", line)
			}
			cur = &Topic{}
			section = ""
			desc.Reset()
			narr.Reset()
		case trimmed == "</top>":
			if cur == nil {
				return nil, fmt.Errorf("trec: line %d: </top> without <top>", line)
			}
			flushSection()
			topics = append(topics, *cur)
			cur = nil
		case cur == nil:
			continue
		case strings.HasPrefix(trimmed, "<num>"):
			rest := strings.TrimPrefix(trimmed, "<num>")
			rest = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), "Number:"))
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				return nil, fmt.Errorf("trec: line %d: bad topic number %q", line, rest)
			}
			cur.Number = n
			section = ""
		case strings.HasPrefix(trimmed, "<title>"):
			rest := strings.TrimPrefix(trimmed, "<title>")
			rest = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), "Topic:"))
			cur.Title = rest
			section = "title"
		case strings.HasPrefix(trimmed, "<desc>"):
			section = "desc"
		case strings.HasPrefix(trimmed, "<narr>"):
			section = "narr"
		default:
			switch section {
			case "title":
				if trimmed != "" {
					if cur.Title != "" {
						cur.Title += " "
					}
					cur.Title += trimmed
				}
			case "desc":
				desc.WriteString(trimmed)
				desc.WriteByte(' ')
			case "narr":
				narr.WriteString(trimmed)
				narr.WriteByte(' ')
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trec: scan: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("trec: unterminated <top>")
	}
	return topics, nil
}
