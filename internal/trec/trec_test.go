package trec

import (
	"strings"
	"testing"
)

const sampleDocs = `
<DOC>
<DOCNO> WSJ870324-0001 </DOCNO>
<HL> Stocks Rally as Dow Gains 30 Points </HL>
<DD> 03/24/87 </DD>
<TEXT>
The Dow Jones industrial average rose 30 points in heavy trading.
Investors cheered the composite index.
</TEXT>
</DOC>
<DOC>
<DOCNO> WSJ870325-0002 </DOCNO>
<HL>
Army Orders More
Apache Helicopters
</HL>
<TEXT>
The Army said it will buy more AH-64 Apache helicopters.
</TEXT>
<TEXT>
Deliveries begin next year.
</TEXT>
</DOC>
`

func TestParseDocuments(t *testing.T) {
	docs, err := ParseDocuments(strings.NewReader(sampleDocs))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("got %d docs", len(docs))
	}
	if docs[0].ID != 0 || docs[1].ID != 1 {
		t.Error("doc IDs not dense")
	}
	if docs[0].Title != "WSJ870324-0001" {
		t.Errorf("doc 0 title %q (DOCNO should win when set first)", docs[0].Title)
	}
	if !strings.Contains(docs[0].Text, "Dow Jones industrial average") {
		t.Errorf("doc 0 text lost: %q", docs[0].Text)
	}
	if strings.Contains(docs[0].Text, "03/24/87") {
		t.Error("non-TEXT content leaked into the body")
	}
	// Multiple TEXT sections concatenate.
	if !strings.Contains(docs[1].Text, "AH-64") || !strings.Contains(docs[1].Text, "Deliveries begin") {
		t.Errorf("doc 1 text sections not concatenated: %q", docs[1].Text)
	}
}

func TestParseDocumentsErrors(t *testing.T) {
	cases := map[string]string{
		"nested":       "<DOC>\n<DOC>\n</DOC>\n</DOC>\n",
		"orphan close": "</DOC>\n<DOC>\n</DOC>\n",
		"unterminated": "<DOC>\n<TEXT>\nabc\n</TEXT>\n",
	}
	for name, in := range cases {
		if _, err := ParseDocuments(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// "orphan close" first line actually errors; also verify empty input is fine.
	docs, err := ParseDocuments(strings.NewReader(""))
	if err != nil || len(docs) != 0 {
		t.Errorf("empty input: %v, %d docs", err, len(docs))
	}
}

const sampleTopics = `
<top>
<num> Number: 091
<title> Topic:  U.S. Army Acquisition of Advanced Weapons Systems
<desc> Description:
Document will identify the U.S. Army's acquisition of advanced
weapons systems.
<narr> Narrative:
To be relevant, a document must identify one of the advanced
weapons systems.
</top>
<top>
<num> Number: 092
<title> Topic:  International Military Equipment Sales
<desc> Description:
Document will discuss a sale.
<narr> Narrative:
Relevant documents discuss sales.
</top>
`

func TestParseTopics(t *testing.T) {
	topics, err := ParseTopics(strings.NewReader(sampleTopics))
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 2 {
		t.Fatalf("got %d topics", len(topics))
	}
	t91 := topics[0]
	if t91.Number != 91 {
		t.Errorf("number = %d", t91.Number)
	}
	if t91.Title != "U.S. Army Acquisition of Advanced Weapons Systems" {
		t.Errorf("title = %q", t91.Title)
	}
	if !strings.Contains(t91.Description, "advanced weapons systems") {
		t.Errorf("description = %q", t91.Description)
	}
	if !strings.Contains(t91.Narrative, "To be relevant") {
		t.Errorf("narrative = %q", t91.Narrative)
	}
	if t91.Query() != t91.Title {
		t.Error("Query should return the title")
	}
	if topics[1].Number != 92 {
		t.Errorf("second topic number %d", topics[1].Number)
	}
}

func TestParseTopicsErrors(t *testing.T) {
	cases := map[string]string{
		"nested":       "<top>\n<top>\n</top>\n",
		"orphan close": "</top>\n",
		"bad number":   "<top>\n<num> Number: abc\n</top>\n",
		"unterminated": "<top>\n<num> Number: 51\n",
	}
	for name, in := range cases {
		if _, err := ParseTopics(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseTopicsMultilineTitle(t *testing.T) {
	in := "<top>\n<num> Number: 101\n<title> Topic: First Part\nSecond Part\n<desc> Description:\nx\n</top>\n"
	topics, err := ParseTopics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if topics[0].Title != "First Part Second Part" {
		t.Errorf("title = %q", topics[0].Title)
	}
}

// End-to-end: parsed documents flow into the standard corpus path.
func TestParsedDocsBuildCorpus(t *testing.T) {
	docs, err := ParseDocuments(strings.NewReader(sampleDocs))
	if err != nil {
		t.Fatal(err)
	}
	if docs[0].Text == "" || docs[1].Text == "" {
		t.Fatal("empty bodies")
	}
}
