package experiment

import (
	"math/rand"
	"testing"

	"toppriv/internal/belief"
	"toppriv/internal/core"
	"toppriv/internal/corpus"
	"toppriv/internal/lda"
)

// TestSampledTrainingStillProtects implements the paper's §V-A future
// work: train the LDA model on a representative subset (half the
// documents, the impactful 70% of the vocabulary) and verify TopPriv
// still suppresses the intention on the full workload.
func TestSampledTrainingStillProtects(t *testing.T) {
	env := getEnv(t)

	sampled, err := corpus.Sample(env.Corpus, corpus.SampleSpec{
		DocFraction:     0.5,
		TopWordFraction: 0.7,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := env.SortedKs()[len(env.SortedKs())/2]
	m, _, err := lda.Train(sampled, lda.TrainSpec{NumTopics: k, Iterations: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := lda.NewInferencer(m, lda.InferSpec{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := belief.NewEngine(inf)
	if err != nil {
		t.Fatal(err)
	}
	obf, err := core.NewObfuscator(eng, core.Params{Eps1: 0.04, Eps2: 0.015})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(4))
	satisfied, contributing := 0, 0
	for _, q := range env.AnalyzedQueries() {
		cyc, err := obf.Obfuscate(q, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(cyc.Intention) == 0 {
			continue
		}
		contributing++
		if cyc.Satisfied {
			satisfied++
		}
	}
	if contributing == 0 {
		t.Fatal("sampled model detected no intentions — too degraded to be useful")
	}
	if satisfied*2 < contributing {
		t.Errorf("sampled model satisfied (ε1,ε2) on only %d/%d queries", satisfied, contributing)
	}
	t.Logf("sampled training: %d/%d queries protected; model vocab %d (full %d)",
		satisfied, contributing, m.V, env.Corpus.VocabSize())
}
