package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"toppriv/internal/baseline"
	"toppriv/internal/belief"
	"toppriv/internal/core"
)

// PDXPoint is one aggregated PDX measurement (Figure 4): a model grid
// point at one (threshold, expansion) setting.
type PDXPoint struct {
	K         int
	Eps       float64 // ε1 = ε2 threshold used to define U
	Expansion float64 // query expansion factor
	Exposure  float64 // mean max{B(t|q_e): t∈U}
	Queries   int     // queries with non-empty U
}

// DefaultExpansions is the paper's Figure 4 grid.
func DefaultExpansions() []float64 { return []float64{2, 4, 8, 12, 16} }

// Fig4 reproduces Figure 4: PDX exposure across thresholds, expansion
// factors and LDA models.
func Fig4(env *Env, seed int64) ([]PDXPoint, error) {
	queries := env.AnalyzedQueries()
	var out []PDXPoint
	for _, k := range env.SortedKs() {
		eng := env.Engines[k]
		for _, exp := range DefaultExpansions() {
			for _, eps := range DefaultThresholdGrid() {
				pt, err := runPDXPoint(eng, k, eps, exp, queries, seed)
				if err != nil {
					return nil, err
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

func runPDXPoint(eng *belief.Engine, k int, eps, expansion float64, queries [][]string, seed int64) (PDXPoint, error) {
	pdx, err := baseline.NewPDX(eng, expansion, eps)
	if err != nil {
		return PDXPoint{}, fmt.Errorf("experiment: PDX K=%d: %w", k, err)
	}
	rng := rand.New(rand.NewSource(seed))
	pt := PDXPoint{K: k, Eps: eps, Expansion: expansion}
	var expSum float64
	for _, q := range queries {
		soloBoost := eng.Boost(q, rng)
		u := belief.Intention(soloBoost, eps)
		if len(u) == 0 {
			continue
		}
		qe, err := pdx.Embellish(q, rng)
		if err != nil {
			return PDXPoint{}, err
		}
		embBoost := eng.Boost(qe, rng)
		expSum += belief.Exposure(embBoost, u)
		pt.Queries++
	}
	if pt.Queries > 0 {
		pt.Exposure = expSum / float64(pt.Queries)
	}
	return pt, nil
}

// RatioPoint is one Figure 5 measurement: TopPriv exposure at cycle
// length υ divided by PDX exposure at expansion factor υ — equal total
// word budgets, per the paper's comparison design.
type RatioPoint struct {
	K       int
	Upsilon int
	TopPriv float64
	PDX     float64
	Ratio   float64
	Queries int
}

// DefaultUpsilons is the paper's Figure 5 grid.
func DefaultUpsilons() []int { return []int{2, 4, 8, 12} }

// Fig5 reproduces Figure 5. TopPriv runs with a hard cycle cap of υ and
// an aggressive ε2 so it uses the whole budget; PDX runs with
// expansion factor υ. Both use the paper's default ε1 = 5% to define U.
func Fig5(env *Env, seed int64) ([]RatioPoint, error) {
	const eps1 = 0.05
	queries := env.AnalyzedQueries()
	var out []RatioPoint
	for _, k := range env.SortedKs() {
		eng := env.Engines[k]
		for _, ups := range DefaultUpsilons() {
			obf, err := core.NewObfuscator(eng, core.Params{
				Eps1:     eps1,
				Eps2:     0.0001, // force the full ghost budget
				MaxCycle: ups,
			})
			if err != nil {
				return nil, err
			}
			pdx, err := baseline.NewPDX(eng, float64(ups), eps1)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			pt := RatioPoint{K: k, Upsilon: ups}
			var tpSum, pdxSum float64
			for _, q := range queries {
				cyc, err := obf.Obfuscate(q, rng)
				if err != nil {
					return nil, err
				}
				if len(cyc.Intention) == 0 {
					continue
				}
				qe, err := pdx.Embellish(q, rng)
				if err != nil {
					return nil, err
				}
				embBoost := eng.Boost(qe, rng)
				// Exposure is clamped at 0: a topic suppressed below its
				// prior reveals nothing, and with small K the prior (1/K)
				// is large enough that heavy embellishment can push the
				// boost negative — an artifact the paper's K >= 50 models
				// never reach. See EXPERIMENTS.md.
				tpSum += math.Max(cyc.Exposure, 0)
				pdxSum += math.Max(belief.Exposure(embBoost, cyc.Intention), 0)
				pt.Queries++
			}
			if pt.Queries > 0 {
				pt.TopPriv = tpSum / float64(pt.Queries)
				pt.PDX = pdxSum / float64(pt.Queries)
				if pt.PDX > 0 {
					pt.Ratio = pt.TopPriv / pt.PDX
				}
			}
			out = append(out, pt)
		}
	}
	return out, nil
}
