package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// testEnv builds one small laboratory shared by all experiment tests.
var sharedEnv *Env

func getEnv(t *testing.T) *Env {
	t.Helper()
	if sharedEnv != nil {
		return sharedEnv
	}
	env, err := NewEnv(EnvSpec{
		Seed:       81,
		NumDocs:    400,
		NumTopics:  8,
		Ks:         []int{4, 8, 12},
		NumQueries: 30,
		TrainIters: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	sharedEnv = env
	return env
}

func TestNewEnvShape(t *testing.T) {
	env := getEnv(t)
	if env.Corpus.NumDocs() != 400 {
		t.Errorf("NumDocs = %d", env.Corpus.NumDocs())
	}
	if len(env.Models) != 3 || len(env.Engines) != 3 {
		t.Fatalf("models/engines missing: %d/%d", len(env.Models), len(env.Engines))
	}
	for _, k := range []int{4, 8, 12} {
		if env.Models[k].K != k {
			t.Errorf("model K mismatch for %d", k)
		}
	}
	if got := env.SortedKs(); got[0] != 4 || got[2] != 12 {
		t.Errorf("SortedKs = %v", got)
	}
	if len(env.Queries) != 30 {
		t.Errorf("workload size %d", len(env.Queries))
	}
	if ModelName(8) != "LDA008" {
		t.Errorf("ModelName = %q", ModelName(8))
	}
}

func TestAnalyzedQueriesNonEmpty(t *testing.T) {
	env := getEnv(t)
	qs := env.AnalyzedQueries()
	if len(qs) < 25 {
		t.Fatalf("too many queries lost in analysis: %d of %d", len(qs), len(env.Queries))
	}
	for i, q := range qs {
		if len(q) == 0 {
			t.Fatalf("query %d empty after analysis", i)
		}
	}
}

func TestThresholdSweepFig2Shapes(t *testing.T) {
	env := getEnv(t)
	grid := []float64{0.01, 0.03}
	points, err := ThresholdSweep(env, 0.04, grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3*len(grid) {
		t.Fatalf("got %d points, want %d", len(points), 3*len(grid))
	}
	for _, p := range points {
		if p.Eps1 != 0.04 {
			t.Errorf("eps1 = %v, want fixed 0.04", p.Eps1)
		}
		if p.Upsilon < 1 {
			t.Errorf("upsilon = %v < 1", p.Upsilon)
		}
		if p.GenTime <= 0 {
			t.Errorf("gen time not measured")
		}
	}
}

func TestThresholdSweepFig3EqualThresholds(t *testing.T) {
	env := getEnv(t)
	grid := []float64{0.02, 0.04}
	points, err := ThresholdSweep(env, 0, grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Eps1 != p.Eps2 {
			t.Errorf("Fig3 point has eps1 %v != eps2 %v", p.Eps1, p.Eps2)
		}
	}
}

func TestThresholdSweepSkipsInfeasible(t *testing.T) {
	env := getEnv(t)
	// eps2 = 0.05 > eps1 = 0.02 is infeasible and must be skipped.
	points, err := ThresholdSweep(env, 0.02, []float64{0.01, 0.05}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Eps2 > p.Eps1 {
			t.Errorf("infeasible point emitted: %+v", p)
		}
	}
	if len(points) != 3 { // one feasible eps2 x three models
		t.Errorf("got %d points, want 3", len(points))
	}
}

func TestSweepExposureDropsWithGhosts(t *testing.T) {
	// Core Figure 2 shape: with obfuscation on, exposure should sit well
	// below the raw query's boost (which exceeds eps1 by construction of
	// contributing queries).
	env := getEnv(t)
	points, err := ThresholdSweep(env, 0.04, []float64{0.015}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Queries == 0 {
			continue
		}
		if p.Exposure >= p.Eps1 {
			t.Errorf("K=%d exposure %v not below eps1 %v", p.K, p.Exposure, p.Eps1)
		}
		if p.Mask <= p.Exposure {
			t.Errorf("K=%d mask %v does not dominate exposure %v", p.K, p.Mask, p.Exposure)
		}
	}
}

func TestFig4Shapes(t *testing.T) {
	env := getEnv(t)
	points, err := Fig4(env, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * len(DefaultExpansions()) * len(DefaultThresholdGrid())
	if len(points) != want {
		t.Fatalf("got %d PDX points, want %d", len(points), want)
	}
	// Larger expansion should not systematically raise exposure: compare
	// mean exposure at 2x vs 16x for the largest model.
	var lo, hi float64
	var nlo, nhi int
	for _, p := range points {
		if p.K != 12 || p.Queries == 0 {
			continue
		}
		switch p.Expansion {
		case 2:
			lo += p.Exposure
			nlo++
		case 16:
			hi += p.Exposure
			nhi++
		}
	}
	if nlo > 0 && nhi > 0 && hi/float64(nhi) > lo/float64(nlo)*1.2 {
		t.Errorf("16x expansion exposure (%v) well above 2x (%v)", hi/float64(nhi), lo/float64(nlo))
	}
}

func TestFig5RatioBelowOneAtSmallBudget(t *testing.T) {
	// Paper Figure 5: TopPriv beats PDX at equal word budgets. The unit
	// environment's models are far smaller than the paper's K >= 50, and
	// at large budgets heavy embellishment over-dilutes against a 1/K
	// prior (see EXPERIMENTS.md), so the paper-regime assertion is made
	// at υ = 2; the full-scale bench covers the default grid.
	env := getEnv(t)
	points, err := Fig5(env, 6)
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	for _, p := range points {
		if p.Queries == 0 || p.Upsilon != 2 || p.PDX == 0 {
			continue
		}
		sum += p.Ratio
		n++
	}
	if n == 0 {
		t.Fatal("no υ=2 ratio points with queries")
	}
	if mean := sum / float64(n); mean >= 1 {
		t.Errorf("mean TopPriv/PDX ratio at υ=2 is %v >= 1: TopPriv should win", mean)
	}
}

func TestFig6Sublinear(t *testing.T) {
	env := getEnv(t)
	points, err := Fig6(env, []float64{0.25, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d scale points", len(points))
	}
	small, large := points[0], points[1]
	if large.IndexBytes <= small.IndexBytes {
		t.Fatal("index must grow with corpus")
	}
	// Paper claim: index grows ~linearly, model sublinearly. With 4x the
	// documents, index should grow much faster than the model.
	idxGrowth := float64(large.IndexBytes) / float64(small.IndexBytes)
	modelGrowth := float64(large.ModelBytes) / float64(small.ModelBytes)
	if modelGrowth >= idxGrowth {
		t.Errorf("model growth %v >= index growth %v; expected sublinear model", modelGrowth, idxGrowth)
	}
	// Saving should improve (or at least not collapse) with scale.
	if large.Saving < small.Saving-0.05 {
		t.Errorf("saving shrank with scale: %v -> %v", small.Saving, large.Saving)
	}
}

func TestTable2ColumnsLookRight(t *testing.T) {
	env := getEnv(t)
	cols, err := Table2(env, []string{"finance", "technology"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 { // two themes + generic
		t.Fatalf("got %d columns", len(cols))
	}
	for _, c := range cols {
		if len(c.Words) != 10 {
			t.Errorf("column %q has %d words", c.Header, len(c.Words))
		}
	}
	if _, err := Table2(env, []string{"no-such-theme"}, 10); err == nil {
		t.Error("unknown theme must error")
	}
}

func TestTable3OneColumnPerModel(t *testing.T) {
	env := getEnv(t)
	cols, err := Table3(env, "medicine", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("got %d columns, want one per model", len(cols))
	}
}

func TestTable4TinyModel(t *testing.T) {
	env := getEnv(t)
	cols, err := Table4(env, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) < 2 {
		t.Fatalf("tiny model should still have >= 2 topics, got %d", len(cols))
	}
}

func TestPIRTable(t *testing.T) {
	env := getEnv(t)
	r := PIRTable(env)
	if r.MaxListLen <= int(r.MeanListLen) {
		t.Errorf("max list %d should exceed mean %v (skewed postings)", r.MaxListLen, r.MeanListLen)
	}
	if r.Blowup <= 1 {
		t.Errorf("PIR blowup %v should exceed 1", r.Blowup)
	}
}

func TestAttackTableRows(t *testing.T) {
	env := getEnv(t)
	rows, err := AttackTable(env, 0.04, 0.015, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	byKey := map[string]AttackRow{}
	for _, r := range rows {
		byKey[r.Attack+"/"+r.Scheme] = r
	}
	tmn := byKey["coherence/trackmenot"]
	tp := byKey["coherence/toppriv"]
	if tmn.Value <= tmn.Baseline {
		t.Errorf("coherence attack should beat random on TrackMeNot: %v vs %v", tmn.Value, tmn.Baseline)
	}
	if tp.Value > tp.Baseline+0.35 {
		t.Errorf("coherence attack should be near-random on TopPriv: %v vs %v", tp.Value, tp.Baseline)
	}
	// The learned distinguisher should do well against plain sampling and
	// collapse against mimic sampling.
	plain := byKey["learned-distinguisher/toppriv"]
	mimic := byKey["learned-distinguisher/toppriv+mimic"]
	if mimic.Value >= plain.Value {
		t.Errorf("mimic sampling should blunt the distinguisher: %v vs %v", mimic.Value, plain.Value)
	}
}

func TestPrinters(t *testing.T) {
	env := getEnv(t)
	points, err := ThresholdSweep(env, 0.04, []float64{0.02}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintPoints(&buf, "Figure 2", points)
	if !strings.Contains(buf.String(), "LDA004") {
		t.Error("PrintPoints missing model name")
	}
	buf.Reset()
	if err := WritePointsCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(points)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(points)+1)
	}
	buf.Reset()
	cols, _ := Table2(env, nil, 5)
	PrintTopicColumns(&buf, "Table II", cols)
	if !strings.Contains(buf.String(), "Table II") {
		t.Error("PrintTopicColumns missing title")
	}
	buf.Reset()
	PrintPIR(&buf, PIRTable(env))
	if !strings.Contains(buf.String(), "blowup") {
		t.Error("PrintPIR missing blowup")
	}
}

func TestGroupByK(t *testing.T) {
	points := []Point{
		{K: 8, Eps2: 0.03}, {K: 8, Eps2: 0.01}, {K: 4, Eps2: 0.02},
	}
	groups := GroupByK(points)
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	if groups[8][0].Eps2 != 0.01 {
		t.Error("series not sorted by eps2")
	}
}
