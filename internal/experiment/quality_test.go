package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestRetrievalQuality(t *testing.T) {
	env := getEnv(t)
	rows, err := RetrievalQuality(env, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byScheme := map[string]QualityRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	// TopPriv and PDX must preserve the genuine results exactly.
	if tp := byScheme["toppriv"]; tp.Overlap < 0.999 {
		t.Errorf("TopPriv fidelity %v, want 1.0 (exact results)", tp.Overlap)
	}
	if pdx := byScheme["pdx"]; pdx.Overlap < 0.999 {
		t.Errorf("PDX fidelity %v, want 1.0 under its protocol", pdx.Overlap)
	}
	// Canonical substitution must visibly degrade retrieval — the
	// paper's §II criticism of the approach.
	canon := byScheme["canonical-substitution"]
	if canon.Overlap > 0.9 {
		t.Errorf("canonical substitution fidelity %v — expected visible degradation", canon.Overlap)
	}
	if canon.Queries == 0 {
		t.Error("no queries measured")
	}
}

func TestPrintQuality(t *testing.T) {
	var buf bytes.Buffer
	PrintQuality(&buf, []QualityRow{{Scheme: "toppriv", Overlap: 1, Queries: 5}}, 10)
	if !strings.Contains(buf.String(), "toppriv") {
		t.Error("missing scheme in output")
	}
}

func TestAblations(t *testing.T) {
	env := getEnv(t)
	rows, err := Ablations(env, 0.04, 0.015, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		if r.Upsilon < 1 {
			t.Errorf("%s: upsilon %v < 1", r.Variant, r.Upsilon)
		}
		byName[r.Variant] = r
	}
	// Uniform (incoherent) ghost words should need at least as many
	// ghost queries as the topical default.
	if byName["uniform-words"].Upsilon < byName["toppriv"].Upsilon {
		t.Errorf("uniform words used fewer ghosts (%v) than topical (%v)",
			byName["uniform-words"].Upsilon, byName["toppriv"].Upsilon)
	}
	var buf bytes.Buffer
	PrintAblations(&buf, rows)
	if !strings.Contains(buf.String(), "no-backtrack") {
		t.Error("ablation printer missing variant")
	}
}

func TestEffectiveness(t *testing.T) {
	env := getEnv(t)
	rows, err := Effectiveness(env, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byScheme := map[string]EffectivenessRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	plain := byScheme["plain"].Metrics
	topp := byScheme["toppriv"].Metrics
	sub := byScheme["canonical-substitution"].Metrics
	if plain.Queries == 0 {
		t.Fatal("no queries evaluated")
	}
	if plain.MAP <= 0 || plain.NDCGAt10 <= 0 {
		t.Fatalf("engine ineffective on its own corpus: %+v", plain)
	}
	// TopPriv submits the genuine query verbatim: identical effectiveness.
	if topp.MAP != plain.MAP || topp.NDCGAt10 != plain.NDCGAt10 {
		t.Errorf("TopPriv effectiveness differs from plain: %+v vs %+v", topp, plain)
	}
	// Canonical substitution must lose measurable effectiveness.
	if sub.MAP >= plain.MAP {
		t.Errorf("canonical substitution MAP %v not below plain %v", sub.MAP, plain.MAP)
	}
	var buf bytes.Buffer
	PrintEffectiveness(&buf, rows)
	if !strings.Contains(buf.String(), "MAP") {
		t.Error("printer missing header")
	}
}
