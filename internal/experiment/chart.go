package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one line of an ASCII chart: a label and (x, y) points.
type Series struct {
	Label  string
	Points [][2]float64
}

// Chart renders aligned-text line charts so `cmd/experiments` output
// carries figure *shapes*, not just tables — handy for eyeballing the
// paper comparison in a terminal without a plotting stack.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	Series []Series
}

var chartMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range c.Series {
		for _, p := range s.Points {
			total++
			minX = math.Min(minX, p[0])
			maxX = math.Max(maxX, p[0])
			minY = math.Min(minY, p[1])
			maxY = math.Max(maxY, p[1])
		}
	}
	if total == 0 {
		return fmt.Errorf("experiment: chart %q has no points", c.Title)
	}
	if minY > 0 {
		minY = 0 // anchor at zero for magnitude plots
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := chartMarks[si%len(chartMarks)]
		pts := append([][2]float64{}, s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] })
		var prevCol, prevRow int
		for pi, p := range pts {
			col := int((p[0] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((p[1]-minY)/(maxY-minY)*float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mark
			// Sparse linear interpolation between consecutive points.
			if pi > 0 {
				steps := col - prevCol
				for step := 1; step < steps; step++ {
					ic := prevCol + step
					ir := prevRow + (row-prevRow)*step/steps
					if grid[ir][ic] == ' ' {
						grid[ir][ic] = '.'
					}
				}
			}
			prevCol, prevRow = col, row
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	yTop := fmt.Sprintf("%.3g", maxY)
	yBot := fmt.Sprintf("%.3g", minY)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r, rowBytes := range grid {
		label := strings.Repeat(" ", margin)
		if r == 0 {
			label = fmt.Sprintf("%*s", margin, yTop)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", margin, yBot)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(rowBytes)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*.3g%*.3g  (%s vs %s)\n",
		strings.Repeat(" ", margin), width/2, minX, width-width/2, maxX, c.YLabel, c.XLabel); err != nil {
		return err
	}
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", chartMarks[si%len(chartMarks)], s.Label))
	}
	_, err := fmt.Fprintf(w, "%s  legend: %s\n", strings.Repeat(" ", margin), strings.Join(legend, "  "))
	return err
}

// ExposureChart builds a Figure 2/3-style chart from sweep points: one
// series per model, exposure% against ε2%.
func ExposureChart(title string, points []Point) *Chart {
	chart := &Chart{Title: title, XLabel: "eps2 %", YLabel: "exposure %", Height: 12}
	groups := GroupByK(points)
	var ks []int
	for k := range groups {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		s := Series{Label: ModelName(k)}
		for _, p := range groups[k] {
			s.Points = append(s.Points, [2]float64{p.Eps2 * 100, p.Exposure * 100})
		}
		chart.Series = append(chart.Series, s)
	}
	return chart
}

// RatioChart builds the Figure 5 chart: ratio against υ per model.
func RatioChart(points []RatioPoint) *Chart {
	chart := &Chart{
		Title:  "Figure 5 shape: TopPriv/PDX exposure ratio vs cycle length",
		XLabel: "upsilon", YLabel: "ratio", Height: 12,
	}
	byK := map[int][]RatioPoint{}
	var ks []int
	for _, p := range points {
		if _, ok := byK[p.K]; !ok {
			ks = append(ks, p.K)
		}
		byK[p.K] = append(byK[p.K], p)
	}
	sort.Ints(ks)
	for _, k := range ks {
		s := Series{Label: ModelName(k)}
		for _, p := range byK[k] {
			if p.Queries == 0 || p.PDX == 0 {
				continue
			}
			// Drop the degenerate small-K points (PDX exposure clamped
			// near zero blows the ratio up; see EXPERIMENTS.md) so the
			// paper-shape region stays readable.
			if p.Ratio > 3 {
				continue
			}
			s.Points = append(s.Points, [2]float64{float64(p.Upsilon), p.Ratio})
		}
		if len(s.Points) > 0 {
			chart.Series = append(chart.Series, s)
		}
	}
	return chart
}
