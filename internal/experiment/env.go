// Package experiment is the evaluation harness: it reconstructs the
// paper's laboratory (corpus, workload, a grid of LDA models) and
// regenerates every table and figure of §V. See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results.
package experiment

import (
	"fmt"
	"sort"
	"sync"

	"toppriv/internal/belief"
	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/lda"
	"toppriv/internal/textproc"
)

// EnvSpec sizes the laboratory. The defaults reproduce the paper's
// setup at laptop scale: the WSJ corpus becomes a 2,000-document
// synthetic corpus over the full 24-theme catalogue, the TREC-1/2
// queries become 150 topical queries of 2–20 terms, and the LDA model
// grid LDA050…LDA300 (0.25×–1.5× of the corpus topic count) becomes
// LDA008…LDA048 around the 32-topic ground truth.
type EnvSpec struct {
	// Seed drives corpus, workload and training seeds (offset
	// internally so the streams differ).
	Seed int64
	// NumDocs is the corpus size. Default 2000.
	NumDocs int
	// NumTopics is the ground-truth topic count. Default 32 (the whole
	// 24-theme catalogue plus synthesized topics).
	NumTopics int
	// Ks is the LDA model grid. Default {8, 16, 24, 32, 40, 48} —
	// 0.25x to 1.5x of the ground truth, mirroring the paper's
	// LDA050…LDA300 around its ~200-topic default.
	Ks []int
	// NumQueries is the workload size. Default 150.
	NumQueries int
	// TrainIters is the Gibbs sweep count per model. Default 120.
	TrainIters int
}

func (s EnvSpec) withDefaults() EnvSpec {
	if s.NumDocs == 0 {
		s.NumDocs = 2000
	}
	if s.NumTopics == 0 {
		s.NumTopics = 32
	}
	if len(s.Ks) == 0 {
		s.Ks = []int{8, 16, 24, 32, 40, 48}
	}
	if s.NumQueries == 0 {
		s.NumQueries = 150
	}
	if s.TrainIters == 0 {
		s.TrainIters = 120
	}
	return s
}

// Env is a fully-built laboratory: one corpus + workload, and one LDA
// model / belief engine per grid point. Build it once, run many
// experiments against it.
type Env struct {
	Spec    EnvSpec
	Corpus  *corpus.Corpus
	GT      *corpus.GroundTruth
	Index   *index.Index
	Queries []corpus.QuerySpec
	An      *textproc.Analyzer
	// Models and Engines are keyed by K, in Spec.Ks order.
	Models  map[int]*lda.Model
	Engines map[int]*belief.Engine
}

// ModelName formats a grid point like the paper's model names
// ("LDA008" … "LDA048").
func ModelName(k int) string { return fmt.Sprintf("LDA%03d", k) }

// NewEnv synthesizes the corpus and workload and trains every model in
// the grid (in parallel — the models are independent).
func NewEnv(spec EnvSpec) (*Env, error) {
	spec = spec.withDefaults()
	an := textproc.NewAnalyzer()
	c, gt, err := corpus.Synthesize(corpus.GenSpec{
		Seed:      spec.Seed,
		NumDocs:   spec.NumDocs,
		NumTopics: spec.NumTopics,
	}, an)
	if err != nil {
		return nil, fmt.Errorf("experiment: corpus: %w", err)
	}
	idx, err := index.Build(c)
	if err != nil {
		return nil, fmt.Errorf("experiment: index: %w", err)
	}
	queries, err := corpus.Workload(gt, corpus.WorkloadSpec{
		Seed:       spec.Seed + 1,
		NumQueries: spec.NumQueries,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: workload: %w", err)
	}

	env := &Env{
		Spec:    spec,
		Corpus:  c,
		GT:      gt,
		Index:   idx,
		Queries: queries,
		An:      an,
		Models:  make(map[int]*lda.Model, len(spec.Ks)),
		Engines: make(map[int]*belief.Engine, len(spec.Ks)),
	}

	type trained struct {
		k   int
		m   *lda.Model
		err error
	}
	results := make(chan trained, len(spec.Ks))
	var wg sync.WaitGroup
	for _, k := range spec.Ks {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			m, _, err := lda.Train(c, lda.TrainSpec{
				NumTopics:  k,
				Iterations: spec.TrainIters,
				Seed:       spec.Seed + int64(k),
			})
			results <- trained{k: k, m: m, err: err}
		}(k)
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("experiment: train K=%d: %w", r.k, r.err)
		}
		env.Models[r.k] = r.m
		inf, err := lda.NewInferencer(r.m, lda.InferSpec{})
		if err != nil {
			return nil, fmt.Errorf("experiment: inferencer K=%d: %w", r.k, err)
		}
		eng, err := belief.NewEngine(inf)
		if err != nil {
			return nil, fmt.Errorf("experiment: engine K=%d: %w", r.k, err)
		}
		env.Engines[r.k] = eng
	}
	return env, nil
}

// AnalyzedQueries returns the workload with each query's raw terms
// passed through the analyzer (the form the engine and models consume).
// Queries that lose every term are dropped.
func (e *Env) AnalyzedQueries() [][]string {
	out := make([][]string, 0, len(e.Queries))
	for _, q := range e.Queries {
		var terms []string
		for _, w := range q.Terms {
			if term, ok := e.An.AnalyzeTerm(w); ok {
				terms = append(terms, term)
			}
		}
		if len(terms) > 0 {
			out = append(out, terms)
		}
	}
	return out
}

// SortedKs returns the model grid in ascending order.
func (e *Env) SortedKs() []int {
	ks := append([]int{}, e.Spec.Ks...)
	sort.Ints(ks)
	return ks
}
