package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"toppriv/internal/baseline"
	"toppriv/internal/core"
	"toppriv/internal/corpus"
	"toppriv/internal/eval"
	"toppriv/internal/vsm"
)

// EffectivenessRow reports standard IR metrics for one retrieval run
// against the synthetic relevance judgments.
type EffectivenessRow struct {
	Scheme  string
	Metrics eval.RunMetrics
}

// Effectiveness measures end-user retrieval effectiveness under each
// scheme against ground-truth qrels: the unprotected engine (ceiling),
// TopPriv (genuine query submitted verbatim in its cycle), and
// canonical substitution (the engine never sees the genuine query).
// This is the quantitative version of the paper's §II precision-recall
// criticism of query-substitution schemes.
func Effectiveness(env *Env, seed int64) ([]EffectivenessRow, error) {
	engine, err := vsm.NewEngine(env.Index, env.An, vsm.Cosine)
	if err != nil {
		return nil, err
	}
	qrels, err := eval.SyntheticQrels(env.Corpus, env.Queries, 0.4, 0.4, env.An)
	if err != nil {
		return nil, err
	}
	kMid := env.Spec.Ks[len(env.Spec.Ks)/2]
	eng := env.Engines[kMid]
	obf, err := core.NewObfuscator(eng, core.Params{Eps1: 0.05, Eps2: 0.01})
	if err != nil {
		return nil, err
	}
	canon, err := baseline.NewCanonical(eng, 4, 8, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	plain := make(map[int][]corpus.DocID)
	topp := make(map[int][]corpus.DocID)
	sub := make(map[int][]corpus.DocID)
	const k = 10
	for _, q := range env.Queries {
		var terms []string
		for _, w := range q.Terms {
			if term, ok := env.An.AnalyzeTerm(w); ok {
				terms = append(terms, term)
			}
		}
		if len(terms) == 0 {
			continue
		}
		plain[q.ID] = docIDs(engine.SearchTerms(terms, k))

		cyc, err := obf.Obfuscate(terms, rng)
		if err != nil {
			return nil, err
		}
		topp[q.ID] = docIDs(engine.SearchTerms(cyc.UserQuery(), k))

		group, chosen, err := canon.Substitute(terms, rng)
		if err != nil {
			return nil, err
		}
		sub[q.ID] = docIDs(engine.SearchTerms(group[chosen], k))
	}
	return []EffectivenessRow{
		{Scheme: "plain", Metrics: eval.Evaluate(plain, qrels)},
		{Scheme: "toppriv", Metrics: eval.Evaluate(topp, qrels)},
		{Scheme: "canonical-substitution", Metrics: eval.Evaluate(sub, qrels)},
	}, nil
}

func docIDs(results []vsm.Result) []corpus.DocID {
	out := make([]corpus.DocID, len(results))
	for i, r := range results {
		out[i] = r.Doc
	}
	return out
}

// PrintEffectiveness renders the metrics table.
func PrintEffectiveness(w io.Writer, rows []EffectivenessRow) {
	fmt.Fprintln(w, "== Retrieval effectiveness vs synthetic qrels ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tP@10\tR@10\tMAP\tnDCG@10\tqueries")
	for _, r := range rows {
		m := r.Metrics
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%d\n",
			r.Scheme, m.PrecisionAt10, m.RecallAt10, m.MAP, m.NDCGAt10, m.Queries)
	}
	tw.Flush()
}
