package experiment

import (
	"fmt"
	"math/rand"

	"toppriv/internal/adversary"
	"toppriv/internal/baseline"
	"toppriv/internal/core"
	"toppriv/internal/lda"
)

// TopicColumn is one displayed topic: a header plus its top words.
type TopicColumn struct {
	Header string
	Words  []string
}

// matchTopic returns the model topic whose top-n words overlap the
// analyzed seed set of ground-truth theme g the most.
func (e *Env) matchTopic(m *lda.Model, g, topN int) (best, hits int) {
	seeds := make(map[string]bool)
	for _, w := range e.GT.TopicWords[g] {
		if term, ok := e.An.AnalyzeTerm(w); ok {
			seeds[term] = true
		}
	}
	best = 0
	for t := 0; t < m.K; t++ {
		h := 0
		for _, tw := range m.TopWords(t, topN) {
			if seeds[tw.Term] {
				h++
			}
		}
		if h > hits {
			hits = h
			best = t
		}
	}
	return best, hits
}

// genericTopic returns the model topic with the largest overlap with the
// background (generic) vocabulary — the analogue of the paper's
// Table II "Topic 46" column of generic words.
func (e *Env) genericTopic(m *lda.Model, topN int) int {
	bg := make(map[string]bool)
	for _, w := range e.GT.BackgroundWords {
		if term, ok := e.An.AnalyzeTerm(w); ok {
			bg[term] = true
		}
	}
	best, hits := 0, -1
	for t := 0; t < m.K; t++ {
		h := 0
		for _, tw := range m.TopWords(t, topN) {
			if bg[tw.Term] {
				h++
			}
		}
		if h > hits {
			hits = h
			best = t
		}
	}
	return best
}

// Table2 reproduces Table II: top-20 words of sample topics in the
// default (mid-grid) model — four coherent theme-aligned topics plus
// one generic topic.
func Table2(env *Env, themes []string, topN int) ([]TopicColumn, error) {
	if topN == 0 {
		topN = 20
	}
	if len(themes) == 0 {
		themes = []string{"medicine", "technology", "finance", "education"}
	}
	k := env.Spec.Ks[len(env.Spec.Ks)/2]
	m, ok := env.Models[k]
	if !ok {
		return nil, fmt.Errorf("experiment: no model K=%d", k)
	}
	var cols []TopicColumn
	for _, theme := range themes {
		g := env.GT.TopicByName(theme)
		if g < 0 {
			return nil, fmt.Errorf("experiment: unknown theme %q", theme)
		}
		t, _ := env.matchTopic(m, g, topN)
		cols = append(cols, TopicColumn{
			Header: fmt.Sprintf("Topic %d (%s)", t, theme),
			Words:  topWordStrings(m, t, topN),
		})
	}
	gt := env.genericTopic(m, topN)
	cols = append(cols, TopicColumn{
		Header: fmt.Sprintf("Topic %d (generic)", gt),
		Words:  topWordStrings(m, gt, topN),
	})
	return cols, nil
}

// Table3 reproduces Table III: the same conceptual topic traced across
// every model in the grid (the paper uses the medicine/AIDS topic).
func Table3(env *Env, theme string, topN int) ([]TopicColumn, error) {
	if topN == 0 {
		topN = 20
	}
	if theme == "" {
		theme = "medicine"
	}
	g := env.GT.TopicByName(theme)
	if g < 0 {
		return nil, fmt.Errorf("experiment: unknown theme %q", theme)
	}
	var cols []TopicColumn
	for _, k := range env.SortedKs() {
		m := env.Models[k]
		t, hits := env.matchTopic(m, g, topN)
		cols = append(cols, TopicColumn{
			Header: fmt.Sprintf("%s t%d (%d seed hits)", ModelName(k), t, hits),
			Words:  topWordStrings(m, t, topN),
		})
	}
	return cols, nil
}

// Table4 reproduces Table IV: a model with far too few topics produces
// indistinct mixtures of generic words. The paper trains LDA005 against
// a ~125-topic corpus; we train K = max(2, G/12) against our G.
func Table4(env *Env, topN int) ([]TopicColumn, error) {
	if topN == 0 {
		topN = 20
	}
	k := env.Spec.NumTopics / 12
	if k < 2 {
		k = 2
	}
	m, _, err := lda.Train(env.Corpus, lda.TrainSpec{
		NumTopics:  k,
		Iterations: env.Spec.TrainIters,
		Seed:       env.Spec.Seed + 999,
	})
	if err != nil {
		return nil, err
	}
	var cols []TopicColumn
	for t := 0; t < m.K; t++ {
		cols = append(cols, TopicColumn{
			Header: fmt.Sprintf("Topic %d", t),
			Words:  topWordStrings(m, t, topN),
		})
	}
	return cols, nil
}

func topWordStrings(m *lda.Model, t, n int) []string {
	tws := m.TopWords(t, n)
	out := make([]string, len(tws))
	for i, tw := range tws {
		out[i] = tw.Term
	}
	return out
}

// PIRReport carries the §II PIR-impracticality numbers for our corpus:
// mean vs max postings length and the padded-database blowup.
type PIRReport struct {
	MeanListLen    float64
	MaxListLen     int
	IndexBytes     int64
	PaddedPIRBytes int64
	Blowup         float64
}

// PIRTable computes the report from the environment's index.
func PIRTable(env *Env) PIRReport {
	s := env.Index.ComputeStats()
	return PIRReport{
		MeanListLen:    s.MeanListLen,
		MaxListLen:     s.MaxListLen,
		IndexBytes:     s.SizeBytes,
		PaddedPIRBytes: s.PaddedPIRBytes,
		Blowup:         s.BlowupFactor(),
	}
}

// AttackRow is one line of the §IV-D resilience table.
type AttackRow struct {
	Attack string
	Scheme string // "toppriv" or "trackmenot"
	Metric string // "identify-user-query" or "intention-recall"
	Value  float64
	// Baseline is the random-guess reference where applicable (query
	// identification); 0 for recall metrics.
	Baseline float64
}

// AttackTable runs the four §IV-D attacks over workload cycles and
// reports their success, with a TrackMeNot contrast for the coherence
// attack.
func AttackTable(env *Env, eps1, eps2 float64, seed int64) ([]AttackRow, error) {
	k := env.Spec.Ks[len(env.Spec.Ks)/2]
	eng := env.Engines[k]
	obf, err := core.NewObfuscator(eng, core.Params{Eps1: eps1, Eps2: eps2})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var tpTrials []adversary.Trial
	for _, q := range env.AnalyzedQueries() {
		cyc, err := obf.Obfuscate(q, rng)
		if err != nil {
			return nil, err
		}
		if cyc.Len() < 2 || len(cyc.Intention) == 0 {
			continue
		}
		tpTrials = append(tpTrials, adversary.Trial{
			Cycle:         cyc.Queries,
			UserIndex:     cyc.UserIndex,
			TrueIntention: cyc.Intention,
		})
	}
	if len(tpTrials) == 0 {
		return nil, fmt.Errorf("experiment: no attackable cycles generated")
	}

	tmn, err := baseline.NewTrackMeNot(eng, 4, 6, 14)
	if err != nil {
		return nil, err
	}
	var tmnTrials []adversary.Trial
	for _, q := range env.AnalyzedQueries() {
		cycle, userIdx, err := tmn.Cycle(q, rng)
		if err != nil {
			return nil, err
		}
		tmnTrials = append(tmnTrials, adversary.Trial{Cycle: cycle, UserIndex: userIdx})
	}

	// Cycles generated with the mimic-profile countermeasure, for the
	// learned-distinguisher comparison.
	mimicObf, err := core.NewObfuscator(eng, core.Params{Eps1: eps1, Eps2: eps2, MimicProfile: true})
	if err != nil {
		return nil, err
	}
	var mimicTrials []adversary.Trial
	for _, q := range env.AnalyzedQueries() {
		cyc, err := mimicObf.Obfuscate(q, rng)
		if err != nil {
			return nil, err
		}
		if cyc.Len() < 2 || len(cyc.Intention) == 0 {
			continue
		}
		mimicTrials = append(mimicTrials, adversary.Trial{
			Cycle:     cyc.Queries,
			UserIndex: cyc.UserIndex,
		})
	}

	coh := &adversary.CoherenceAttack{Eng: eng}
	disc := &adversary.DiscountAttack{Eng: eng}
	elim := &adversary.EliminationAttack{Eng: eng}
	probe := &adversary.ProbeAttack{Obf: obf}
	evalRng := rand.New(rand.NewSource(seed + 1))

	// The learned distinguisher trains on ghosts it generates itself
	// with the public implementation, one per variant.
	probes := env.AnalyzedQueries()
	if len(probes) > 40 {
		probes = probes[:40]
	}
	distPlain := &adversary.Distinguisher{Eng: eng}
	if err := distPlain.TrainFromObfuscator(obf, probes, rng); err != nil {
		return nil, err
	}
	distMimic := &adversary.Distinguisher{Eng: eng}
	if err := distMimic.TrainFromObfuscator(mimicObf, probes, rng); err != nil {
		return nil, err
	}

	rows := []AttackRow{
		{
			Attack: coh.Name(), Scheme: "trackmenot", Metric: "identify-user-query",
			Value:    adversary.EvalQueryGuess(coh, tmnTrials, evalRng),
			Baseline: adversary.RandomGuessBaseline(tmnTrials),
		},
		{
			Attack: coh.Name(), Scheme: "toppriv", Metric: "identify-user-query",
			Value:    adversary.EvalQueryGuess(coh, tpTrials, evalRng),
			Baseline: adversary.RandomGuessBaseline(tpTrials),
		},
		{
			Attack: disc.Name(), Scheme: "toppriv", Metric: "intention-recall",
			Value: adversary.EvalIntentionRecall(disc, tpTrials, evalRng),
		},
		{
			Attack: elim.Name(), Scheme: "toppriv", Metric: "intention-recall",
			Value: adversary.EvalIntentionRecall(elim, tpTrials, evalRng),
		},
		{
			Attack: probe.Name(), Scheme: "toppriv", Metric: "identify-user-query",
			Value:    adversary.EvalQueryGuess(probe, tpTrials, evalRng),
			Baseline: adversary.RandomGuessBaseline(tpTrials),
		},
		{
			Attack: distPlain.Name(), Scheme: "toppriv", Metric: "identify-user-query",
			Value:    adversary.EvalQueryGuess(distPlain, tpTrials, evalRng),
			Baseline: adversary.RandomGuessBaseline(tpTrials),
		},
		{
			Attack: distMimic.Name(), Scheme: "toppriv+mimic", Metric: "identify-user-query",
			Value:    adversary.EvalQueryGuess(distMimic, mimicTrials, evalRng),
			Baseline: adversary.RandomGuessBaseline(mimicTrials),
		},
	}
	return rows, nil
}
