package experiment

import (
	"fmt"
	"io"
)

// CSV emitters for the non-sweep artifacts, so every figure's data can
// be re-plotted externally (WritePointsCSV in print.go covers the
// Figure 2/3 sweeps).

// WritePDXCSV emits Figure 4 data.
func WritePDXCSV(w io.Writer, points []PDXPoint) error {
	if _, err := fmt.Fprintln(w, "model,k,expansion,eps,exposure,queries"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s,%d,%g,%g,%g,%d\n",
			ModelName(p.K), p.K, p.Expansion, p.Eps, p.Exposure, p.Queries); err != nil {
			return err
		}
	}
	return nil
}

// WriteRatioCSV emits Figure 5 data.
func WriteRatioCSV(w io.Writer, points []RatioPoint) error {
	if _, err := fmt.Fprintln(w, "model,k,upsilon,toppriv,pdx,ratio,queries"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%g,%g,%g,%d\n",
			ModelName(p.K), p.K, p.Upsilon, p.TopPriv, p.PDX, p.Ratio, p.Queries); err != nil {
			return err
		}
	}
	return nil
}

// WriteScaleCSV emits Figure 6 data.
func WriteScaleCSV(w io.Writer, points []ScalePoint) error {
	if _, err := fmt.Fprintln(w, "docs,vocab,index_bytes,model_bytes,saving"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%g\n",
			p.NumDocs, p.VocabSize, p.IndexBytes, p.ModelBytes, p.Saving); err != nil {
			return err
		}
	}
	return nil
}

// WriteAttackCSV emits the resilience table.
func WriteAttackCSV(w io.Writer, rows []AttackRow) error {
	if _, err := fmt.Fprintln(w, "attack,scheme,metric,value,baseline"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%g,%g\n",
			r.Attack, r.Scheme, r.Metric, r.Value, r.Baseline); err != nil {
			return err
		}
	}
	return nil
}
