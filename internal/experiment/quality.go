package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"toppriv/internal/baseline"
	"toppriv/internal/core"
	"toppriv/internal/vsm"
)

// QualityRow reports how faithfully a protection scheme preserves the
// results of the genuine query: the mean overlap@k between the results
// the user sees under the scheme and the unprotected results. The
// paper's usability argument (§II, §IV-E): TopPriv and PDX preserve the
// exact results (their genuine terms reach the engine untouched), while
// Murugesan–Clifton canonical substitution "affects the precision-
// recall characteristics intended by the search engine designer".
type QualityRow struct {
	Scheme string
	// Overlap is mean |results ∩ plain| / k over the workload.
	Overlap float64
	// Queries is the number of workload queries measured.
	Queries int
}

// RetrievalQuality measures result fidelity for TopPriv, PDX (genuine
// terms only, modelling its encrypted protocol's effect) and canonical
// substitution, at the given result depth k.
func RetrievalQuality(env *Env, k int, seed int64) ([]QualityRow, error) {
	engine, err := vsm.NewEngine(env.Index, env.An, vsm.Cosine)
	if err != nil {
		return nil, err
	}
	kMid := env.Spec.Ks[len(env.Spec.Ks)/2]
	eng := env.Engines[kMid]
	obf, err := core.NewObfuscator(eng, core.Params{Eps1: 0.05, Eps2: 0.01})
	if err != nil {
		return nil, err
	}
	canon, err := baseline.NewCanonical(eng, 4, 8, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	queries := env.AnalyzedQueries()

	var topprivSum, pdxSum, canonSum float64
	n := 0
	for _, q := range queries {
		plain := engine.SearchTerms(q, k)
		if len(plain) == 0 {
			continue
		}
		n++
		plainSet := make(map[int]bool, len(plain))
		for _, r := range plain {
			plainSet[int(r.Doc)] = true
		}

		// TopPriv: the genuine query is submitted verbatim inside the
		// cycle; the client keeps exactly its results.
		cyc, err := obf.Obfuscate(q, rng)
		if err != nil {
			return nil, err
		}
		topprivSum += overlap(engine.SearchTerms(cyc.UserQuery(), k), plainSet)

		// PDX: with the scheme's homomorphic protocol the engine scores
		// only the genuine terms, so fidelity is that of the genuine
		// query — identical by construction.
		pdxSum += overlap(engine.SearchTerms(q, k), plainSet)

		// Canonical substitution: the engine sees the canonical query,
		// never the genuine one.
		group, chosen, err := canon.Substitute(q, rng)
		if err != nil {
			return nil, err
		}
		canonSum += overlap(engine.SearchTerms(group[chosen], k), plainSet)
	}
	if n == 0 {
		return nil, fmt.Errorf("experiment: no queries with results")
	}
	return []QualityRow{
		{Scheme: "toppriv", Overlap: topprivSum / float64(n), Queries: n},
		{Scheme: "pdx", Overlap: pdxSum / float64(n), Queries: n},
		{Scheme: "canonical-substitution", Overlap: canonSum / float64(n), Queries: n},
	}, nil
}

func overlap(results []vsm.Result, plainSet map[int]bool) float64 {
	if len(plainSet) == 0 {
		return 0
	}
	hits := 0
	for _, r := range results {
		if plainSet[int(r.Doc)] {
			hits++
		}
	}
	return float64(hits) / float64(len(plainSet))
}

// PrintQuality renders the fidelity table.
func PrintQuality(w io.Writer, rows []QualityRow, k int) {
	fmt.Fprintf(w, "== Retrieval fidelity: overlap@%d with unprotected results ==\n", k)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\toverlap\tqueries")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%d\n", r.Scheme, r.Overlap, r.Queries)
	}
	tw.Flush()
}
