package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// PrintPoints renders a threshold-sweep result (Figures 2/3) as one
// aligned table, grouped by model.
func PrintPoints(w io.Writer, title string, points []Point) {
	fmt.Fprintf(w, "== %s ==\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\teps1%\teps2%\texposure%\tmask%\tupsilon\tgen_ms\t|U|\tmax_rank\tsatisfied%")
	for _, p := range points {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.3f\t%.3f\t%.2f\t%.2f\t%.2f\t%.1f\t%.0f\n",
			ModelName(p.K), p.Eps1*100, p.Eps2*100,
			p.Exposure*100, p.Mask*100, p.Upsilon, p.GenTime*1000,
			p.USize, p.MaxRank, p.Satisfied*100)
	}
	tw.Flush()
}

// PrintPDXPoints renders Figure 4.
func PrintPDXPoints(w io.Writer, points []PDXPoint) {
	fmt.Fprintln(w, "== Figure 4: PDX exposure by expansion factor ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\texpansion\teps%\texposure%\tqueries")
	for _, p := range points {
		fmt.Fprintf(tw, "%s\t%.0fx\t%.1f\t%.3f\t%d\n",
			ModelName(p.K), p.Expansion, p.Eps*100, p.Exposure*100, p.Queries)
	}
	tw.Flush()
}

// PrintRatioPoints renders Figure 5.
func PrintRatioPoints(w io.Writer, points []RatioPoint) {
	fmt.Fprintln(w, "== Figure 5: exposure ratio TopPriv / PDX (equal word budgets) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tupsilon\ttoppriv%\tpdx%\tratio\tqueries")
	for _, p := range points {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\t%d\n",
			ModelName(p.K), p.Upsilon, p.TopPriv*100, p.PDX*100, p.Ratio, p.Queries)
	}
	tw.Flush()
}

// PrintScalePoints renders Figure 6.
func PrintScalePoints(w io.Writer, points []ScalePoint) {
	fmt.Fprintln(w, "== Figure 6: LDA model size vs inverted index size ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "docs\tvocab\tindex_KB\tmodel_KB\tsaving%")
	for _, p := range points {
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.1f\t%.1f\n",
			p.NumDocs, p.VocabSize,
			float64(p.IndexBytes)/1024, float64(p.ModelBytes)/1024, p.Saving*100)
	}
	tw.Flush()
}

// PrintTopicColumns renders a Table II/III/IV style topics table: one
// column per topic, words top-down.
func PrintTopicColumns(w io.Writer, title string, cols []TopicColumn) {
	fmt.Fprintf(w, "== %s ==\n", title)
	if len(cols) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	headers := make([]string, len(cols))
	depth := 0
	for i, c := range cols {
		headers[i] = c.Header
		if len(c.Words) > depth {
			depth = len(c.Words)
		}
	}
	fmt.Fprintln(tw, strings.Join(headers, "\t"))
	for r := 0; r < depth; r++ {
		row := make([]string, len(cols))
		for i, c := range cols {
			if r < len(c.Words) {
				row[i] = c.Words[r]
			}
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
}

// PrintPIR renders the §II PIR cost table.
func PrintPIR(w io.Writer, r PIRReport) {
	fmt.Fprintln(w, "== PIR impracticality (paper §II) ==")
	fmt.Fprintf(w, "mean postings list length:  %.1f\n", r.MeanListLen)
	fmt.Fprintf(w, "max postings list length:   %d\n", r.MaxListLen)
	fmt.Fprintf(w, "index size:                 %.1f KB\n", float64(r.IndexBytes)/1024)
	fmt.Fprintf(w, "PIR-padded size:            %.1f KB\n", float64(r.PaddedPIRBytes)/1024)
	fmt.Fprintf(w, "blowup factor:              %.1fx\n", r.Blowup)
}

// PrintAttacks renders the §IV-D resilience table.
func PrintAttacks(w io.Writer, rows []AttackRow) {
	fmt.Fprintln(w, "== Attack resilience (paper §IV-D) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "attack\tscheme\tmetric\tvalue\trandom_baseline")
	for _, r := range rows {
		base := "-"
		if r.Baseline != 0 {
			base = fmt.Sprintf("%.3f", r.Baseline)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.3f\t%s\n", r.Attack, r.Scheme, r.Metric, r.Value, base)
	}
	tw.Flush()
}

// WritePointsCSV emits the sweep points as CSV for external plotting.
func WritePointsCSV(w io.Writer, points []Point) error {
	if _, err := fmt.Fprintln(w, "model,k,eps1,eps2,exposure,mask,upsilon,gen_seconds,u_size,max_rank,satisfied"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
			ModelName(p.K), p.K, p.Eps1, p.Eps2, p.Exposure, p.Mask,
			p.Upsilon, p.GenTime, p.USize, p.MaxRank, p.Satisfied); err != nil {
			return err
		}
	}
	return nil
}

// GroupByK splits points into per-model series sorted by ε2 — the shape
// plotting libraries want.
func GroupByK(points []Point) map[int][]Point {
	out := make(map[int][]Point)
	for _, p := range points {
		out[p.K] = append(out[p.K], p)
	}
	for k := range out {
		series := out[k]
		sort.Slice(series, func(i, j int) bool { return series[i].Eps2 < series[j].Eps2 })
		out[k] = series
	}
	return out
}
