package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"toppriv/internal/belief"
	"toppriv/internal/core"
)

// Point is one aggregated measurement: a model grid point at one
// threshold setting, averaged over the workload. It carries every panel
// of Figures 2 and 3.
type Point struct {
	K        int     // LDA model size
	Eps1     float64 // relevance threshold ε1
	Eps2     float64 // exposure threshold ε2
	Exposure float64 // mean max{B(t|C): t∈U}   (Fig 2a/3a)
	Mask     float64 // mean max{B(t|C): t∉U}   (Fig 2b/3b)
	Upsilon  float64 // mean cycle length υ      (Fig 2c/3c)
	GenTime  float64 // mean generation seconds  (Fig 2d/3d)
	USize    float64 // mean |U|                 (Fig 3e)
	MaxRank  float64 // mean best rank of U      (Fig 3f)
	// Queries is how many workload queries registered a non-empty U and
	// therefore contributed to Exposure/MaxRank.
	Queries int
	// Satisfied is the fraction of contributing queries whose final
	// exposure met ε2.
	Satisfied float64
}

// ThresholdSweep runs TopPriv over the workload for every (model,
// threshold) combination. When eps1Fixed > 0, ε1 is pinned there and
// the grid varies ε2 (Figure 2); when eps1Fixed == 0, ε1 = ε2 at each
// grid value (Figure 3).
func ThresholdSweep(env *Env, eps1Fixed float64, grid []float64, seed int64) ([]Point, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("experiment: empty threshold grid")
	}
	queries := env.AnalyzedQueries()
	var out []Point
	for _, k := range env.SortedKs() {
		eng := env.Engines[k]
		for _, eps := range grid {
			eps1, eps2 := eps1Fixed, eps
			if eps1Fixed == 0 {
				eps1 = eps
			}
			if eps2 > eps1 {
				// The model requires ε2 ≤ ε1; skip infeasible points.
				continue
			}
			p, err := runPoint(eng, k, eps1, eps2, queries, seed)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// runPoint measures one (model, ε1, ε2) cell over the workload.
func runPoint(eng *belief.Engine, k int, eps1, eps2 float64, queries [][]string, seed int64) (Point, error) {
	obf, err := core.NewObfuscator(eng, core.Params{Eps1: eps1, Eps2: eps2})
	if err != nil {
		return Point{}, fmt.Errorf("experiment: K=%d eps=(%v,%v): %w", k, eps1, eps2, err)
	}
	rng := rand.New(rand.NewSource(seed))
	pt := Point{K: k, Eps1: eps1, Eps2: eps2}
	var expSum, maskSum, upsSum, genSum, uSum, rankSum float64
	satisfied := 0
	contributing := 0
	for _, q := range queries {
		start := time.Now()
		cyc, err := obf.Obfuscate(q, rng)
		if err != nil {
			return Point{}, err
		}
		genSum += time.Since(start).Seconds()
		upsSum += float64(cyc.Len())
		uSum += float64(len(cyc.Intention))
		maskSum += cyc.Mask
		if len(cyc.Intention) == 0 {
			continue
		}
		contributing++
		expSum += cyc.Exposure
		rankSum += float64(belief.MaxRank(cyc.Boost, cyc.Intention))
		if cyc.Satisfied {
			satisfied++
		}
	}
	n := float64(len(queries))
	pt.Upsilon = upsSum / n
	pt.GenTime = genSum / n
	pt.USize = uSum / n
	pt.Mask = maskSum / n
	pt.Queries = contributing
	if contributing > 0 {
		pt.Exposure = expSum / float64(contributing)
		pt.MaxRank = rankSum / float64(contributing)
		pt.Satisfied = float64(satisfied) / float64(contributing)
	}
	return pt, nil
}

// DefaultThresholdGrid is the paper's 0.5%–5% sweep.
func DefaultThresholdGrid() []float64 {
	return []float64{0.005, 0.01, 0.02, 0.03, 0.04, 0.05}
}

// Fig2 reproduces Figure 2: ε1 fixed at 5%, ε2 varying over the grid.
func Fig2(env *Env, seed int64) ([]Point, error) {
	return ThresholdSweep(env, 0.05, DefaultThresholdGrid(), seed)
}

// Fig3 reproduces Figure 3: ε1 = ε2 over the grid (adds the |U| and
// max-rank panels, which Points always carry).
func Fig3(env *Env, seed int64) ([]Point, error) {
	return ThresholdSweep(env, 0, DefaultThresholdGrid(), seed)
}
