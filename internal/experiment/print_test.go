package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestPrintPDXPoints(t *testing.T) {
	var buf bytes.Buffer
	PrintPDXPoints(&buf, []PDXPoint{
		{K: 8, Eps: 0.01, Expansion: 4, Exposure: 0.05, Queries: 40},
	})
	out := buf.String()
	if !strings.Contains(out, "LDA008") || !strings.Contains(out, "4x") {
		t.Errorf("missing fields:\n%s", out)
	}
}

func TestPrintRatioPoints(t *testing.T) {
	var buf bytes.Buffer
	PrintRatioPoints(&buf, []RatioPoint{
		{K: 16, Upsilon: 4, TopPriv: 0.02, PDX: 0.06, Ratio: 0.33, Queries: 50},
	})
	out := buf.String()
	if !strings.Contains(out, "LDA016") || !strings.Contains(out, "0.330") {
		t.Errorf("missing fields:\n%s", out)
	}
}

func TestPrintScalePoints(t *testing.T) {
	var buf bytes.Buffer
	PrintScalePoints(&buf, []ScalePoint{
		{NumDocs: 500, VocabSize: 1900, IndexBytes: 90 * 1024, ModelBytes: 500 * 1024, Saving: -4.5},
	})
	out := buf.String()
	if !strings.Contains(out, "500") || !strings.Contains(out, "1900") {
		t.Errorf("missing fields:\n%s", out)
	}
}

func TestPrintAttacksBaselineDash(t *testing.T) {
	var buf bytes.Buffer
	PrintAttacks(&buf, []AttackRow{
		{Attack: "discount", Scheme: "toppriv", Metric: "recall", Value: 0.1},
		{Attack: "coherence", Scheme: "toppriv", Metric: "identify", Value: 0.1, Baseline: 0.11},
	})
	out := buf.String()
	if !strings.Contains(out, "-") {
		t.Error("recall rows should print a dash baseline")
	}
	if !strings.Contains(out, "0.110") {
		t.Error("baseline value missing")
	}
}

func TestPrintTopicColumnsRagged(t *testing.T) {
	var buf bytes.Buffer
	PrintTopicColumns(&buf, "ragged", []TopicColumn{
		{Header: "a", Words: []string{"x", "y", "z"}},
		{Header: "b", Words: []string{"p"}},
	})
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + 3 word rows
	if len(lines) != 5 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Empty columns render without panicking.
	buf.Reset()
	PrintTopicColumns(&buf, "empty", nil)
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty table should still print its title")
	}
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePDXCSV(&buf, []PDXPoint{{K: 8, Expansion: 2, Eps: 0.01, Exposure: 0.05, Queries: 10}}); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Errorf("PDX CSV lines = %d", lines)
	}
	buf.Reset()
	if err := WriteRatioCSV(&buf, []RatioPoint{{K: 8, Upsilon: 2, Ratio: 0.5, Queries: 5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LDA008,8,2") {
		t.Errorf("ratio CSV content:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteScaleCSV(&buf, []ScalePoint{{NumDocs: 100, VocabSize: 50, IndexBytes: 10, ModelBytes: 20, Saving: -1}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "100,50,10,20,-1") {
		t.Errorf("scale CSV content:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteAttackCSV(&buf, []AttackRow{{Attack: "coherence", Scheme: "toppriv", Metric: "m", Value: 0.1, Baseline: 0.2}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "coherence,toppriv,m,0.1,0.2") {
		t.Errorf("attack CSV content:\n%s", buf.String())
	}
}
