package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title:  "test chart",
		XLabel: "x", YLabel: "y",
		Width: 40, Height: 8,
		Series: []Series{
			{Label: "up", Points: [][2]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}},
			{Label: "down", Points: [][2]float64{{0, 3}, {1, 2}, {2, 1}, {3, 0}}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test chart") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "o=down") {
		t.Errorf("legend missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 8 grid rows + axis + x labels + legend
	if len(lines) != 12 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("marks missing")
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	var buf bytes.Buffer
	if err := c.Render(&buf); err == nil {
		t.Error("empty chart must error")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Single point: x and y ranges collapse; render must not divide by 0.
	c := &Chart{Series: []Series{{Label: "pt", Points: [][2]float64{{1, 1}}}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestExposureChartFromPoints(t *testing.T) {
	points := []Point{
		{K: 8, Eps2: 0.01, Exposure: 0.008},
		{K: 8, Eps2: 0.05, Exposure: 0.04},
		{K: 16, Eps2: 0.01, Exposure: 0.006},
		{K: 16, Eps2: 0.05, Exposure: 0.039},
	}
	c := ExposureChart("fig", points)
	if len(c.Series) != 2 {
		t.Fatalf("got %d series", len(c.Series))
	}
	if c.Series[0].Label != "LDA008" || c.Series[1].Label != "LDA016" {
		t.Errorf("series order wrong: %v %v", c.Series[0].Label, c.Series[1].Label)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRatioChartSkipsEmpty(t *testing.T) {
	points := []RatioPoint{
		{K: 8, Upsilon: 2, Ratio: 0.6, PDX: 0.1, Queries: 10},
		{K: 8, Upsilon: 4, Ratio: 0.4, PDX: 0.1, Queries: 10},
		{K: 16, Upsilon: 2, Queries: 0}, // must be skipped
	}
	c := RatioChart(points)
	if len(c.Series) != 1 {
		t.Fatalf("got %d series, want 1", len(c.Series))
	}
}
