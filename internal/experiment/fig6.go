package experiment

import (
	"fmt"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/lda"
	"toppriv/internal/textproc"
)

// ScalePoint is one Figure 6 measurement: at a given corpus scale, the
// serialized inverted-index size versus the client-side LDA model size.
type ScalePoint struct {
	NumDocs    int
	VocabSize  int
	IndexBytes int64
	ModelBytes int64
	// Saving is the naive-download comparison of §V-D.
	Saving float64
}

// Fig6 reproduces Figure 6: grow the corpus and plot LDA-model size
// against inverted-index size. The index grows roughly linearly with
// the document count while the model's dominant structure (Φ, sized by
// the vocabulary) plateaus, so the curve is sublinear.
//
// Model size is independent of fit quality, so training runs only a few
// Gibbs sweeps per scale.
func Fig6(env *Env, fractions []float64) ([]ScalePoint, error) {
	if len(fractions) == 0 {
		// Sweep past the environment scale so the index's linear growth
		// visibly overtakes the model's plateau (the paper's crossover).
		fractions = []float64{0.25, 0.5, 1.0, 2.0, 4.0}
	}
	spec := env.Spec
	k := spec.Ks[len(spec.Ks)/2] // a mid-grid model, like the paper's LDA200
	an := textproc.NewAnalyzer()
	var out []ScalePoint
	for _, f := range fractions {
		nd := int(f * float64(spec.NumDocs))
		if nd < 10 {
			nd = 10
		}
		c, _, err := corpus.Synthesize(corpus.GenSpec{
			Seed:      spec.Seed,
			NumDocs:   nd,
			NumTopics: spec.NumTopics,
		}, an)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig6 scale %v: %w", f, err)
		}
		idx, err := index.Build(c)
		if err != nil {
			return nil, err
		}
		m, _, err := lda.Train(c, lda.TrainSpec{NumTopics: k, Iterations: 5, Seed: spec.Seed})
		if err != nil {
			return nil, err
		}
		pt := ScalePoint{
			NumDocs:    nd,
			VocabSize:  c.VocabSize(),
			IndexBytes: idx.SizeBytes(),
			ModelBytes: m.ClientSizeBytes(),
		}
		if pt.IndexBytes > 0 {
			pt.Saving = 1 - float64(pt.ModelBytes)/float64(pt.IndexBytes)
		}
		out = append(out, pt)
	}
	return out, nil
}
