package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"toppriv/internal/core"
)

// AblationRow measures one obfuscator variant over the workload —
// the design-choice studies of DESIGN.md §5.
type AblationRow struct {
	Variant  string
	Exposure float64 // mean exposure over contributing queries
	Upsilon  float64 // mean cycle length
	GenTime  float64 // mean per-query generation seconds
	Queries  int
}

// Ablations runs the standard variant set at the given thresholds on
// the mid-grid model: full TopPriv, no backtracking (Step 3c off),
// uniform ghost words (Step 3b bias off), and fixed-length ghosts.
func Ablations(env *Env, eps1, eps2 float64, seed int64) ([]AblationRow, error) {
	variants := []struct {
		name   string
		params core.Params
	}{
		{"toppriv", core.Params{Eps1: eps1, Eps2: eps2}},
		{"no-backtrack", core.Params{Eps1: eps1, Eps2: eps2, NoBacktrack: true}},
		{"uniform-words", core.Params{Eps1: eps1, Eps2: eps2, UniformWords: true}},
		{"fixed-len-4", core.Params{Eps1: eps1, Eps2: eps2, FixedGhostLen: 4}},
	}
	k := env.Spec.Ks[len(env.Spec.Ks)/2]
	eng := env.Engines[k]
	queries := env.AnalyzedQueries()
	var rows []AblationRow
	for _, v := range variants {
		obf, err := core.NewObfuscator(eng, v.params)
		if err != nil {
			return nil, fmt.Errorf("experiment: ablation %s: %w", v.name, err)
		}
		rng := rand.New(rand.NewSource(seed))
		row := AblationRow{Variant: v.name}
		var expSum, upsSum, genSum float64
		for _, q := range queries {
			start := time.Now()
			cyc, err := obf.Obfuscate(q, rng)
			if err != nil {
				return nil, err
			}
			genSum += time.Since(start).Seconds()
			upsSum += float64(cyc.Len())
			if len(cyc.Intention) == 0 {
				continue
			}
			expSum += cyc.Exposure
			row.Queries++
		}
		row.Upsilon = upsSum / float64(len(queries))
		row.GenTime = genSum / float64(len(queries))
		if row.Queries > 0 {
			row.Exposure = expSum / float64(row.Queries)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintAblations renders the variant table.
func PrintAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "== Ablations (DESIGN.md §5) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\texposure%\tupsilon\tgen_ms\tqueries")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.2f\t%.2f\t%d\n",
			r.Variant, r.Exposure*100, r.Upsilon, r.GenTime*1000, r.Queries)
	}
	tw.Flush()
}
