package telemetry

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// buildRegistry populates one of every family kind, including labeled
// children and awkward label values needing escaping.
func buildRegistry() *Registry {
	r := NewRegistry()
	r.Counter("t_requests_total", "Total requests.").Add(42)
	cv := r.CounterVec("t_errors_total", "Errors by endpoint.", "endpoint", "code")
	cv.With("/search", "400").Add(3)
	cv.With("/index", "500").Inc()
	cv.With(`/weird"path`, `5\00`).Add(7)
	r.Gauge("t_inflight", "In-flight requests.").Set(2.5)
	gv := r.GaugeVec("t_shard_docs", "Docs per shard.", "shard")
	gv.With("0").Set(1000)
	gv.With("1").Set(-3)
	r.GaugeFunc("t_staleness", "Model staleness\nmultiline help.", func() float64 { return 0.125 })
	r.CounterFunc("t_compactions_total", "Compaction runs.", func() float64 { return 9 })
	h := r.Histogram("t_latency_seconds", "Query latency.", DefaultLatencyBuckets)
	for _, v := range []float64{1e-6, 5e-5, 3e-4, 0.01, 0.5, 10} {
		h.Observe(v)
	}
	hv := r.HistogramVec("t_phase_seconds", "Phase latency.", []float64{0.001, 0.01, 0.1}, "phase")
	hv.With("resolve").Observe(0.0005)
	hv.With("traverse").Observe(0.05)
	hv.With("traverse").Observe(5) // above the last finite bound
	return r
}

// TestRoundTrip renders the registry and re-parses it, checking every
// family's name, type, help, labels and values survive the trip.
func TestRoundTrip(t *testing.T) {
	r := buildRegistry()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	fams, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, sb.String())
	}
	byName := map[string]ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	want := map[string]MetricType{
		"t_requests_total":    TypeCounter,
		"t_errors_total":      TypeCounter,
		"t_inflight":          TypeGauge,
		"t_shard_docs":        TypeGauge,
		"t_staleness":         TypeGauge,
		"t_compactions_total": TypeCounter,
		"t_latency_seconds":   TypeHistogram,
		"t_phase_seconds":     TypeHistogram,
	}
	if len(byName) != len(want) {
		t.Fatalf("parsed %d families, want %d: %v", len(byName), len(want), byName)
	}
	for name, typ := range want {
		f, ok := byName[name]
		if !ok {
			t.Fatalf("family %s missing from exposition", name)
		}
		if f.Type != typ {
			t.Errorf("%s: type %q, want %q", name, f.Type, typ)
		}
		if f.Help == "" {
			t.Errorf("%s: missing HELP", name)
		}
	}

	if f := byName["t_staleness"]; f.Help != "Model staleness\nmultiline help." {
		t.Errorf("multiline help mangled: %q", f.Help)
	}
	if got := byName["t_requests_total"].Samples[0].Value; got != 42 {
		t.Errorf("t_requests_total = %v, want 42", got)
	}
	if got := byName["t_compactions_total"].Samples[0].Value; got != 9 {
		t.Errorf("t_compactions_total = %v, want 9", got)
	}

	// Labeled counter children, including the escaped one.
	errs := map[string]float64{}
	for _, s := range byName["t_errors_total"].Samples {
		errs[s.Labels["endpoint"]+"|"+s.Labels["code"]] = s.Value
	}
	for key, val := range map[string]float64{
		"/search|400": 3, "/index|500": 1, `/weird"path|5\00`: 7,
	} {
		if errs[key] != val {
			t.Errorf("t_errors_total{%s} = %v, want %v (all: %v)", key, errs[key], val, errs)
		}
	}

	// Histogram structure: one +Inf bucket per series, sum/count match.
	hist := byName["t_latency_seconds"]
	var infCount, sum, count float64
	for _, s := range hist.Samples {
		switch {
		case s.Name == "t_latency_seconds_bucket" && s.Labels["le"] == "+Inf":
			infCount = s.Value
		case s.Name == "t_latency_seconds_sum":
			sum = s.Value
		case s.Name == "t_latency_seconds_count":
			count = s.Value
		}
	}
	if infCount != 6 || count != 6 {
		t.Errorf("latency histogram: +Inf bucket %v, count %v, want 6", infCount, count)
	}
	wantSum := 1e-6 + 5e-5 + 3e-4 + 0.01 + 0.5 + 10
	if math.Abs(sum-wantSum) > 1e-12 {
		t.Errorf("latency histogram sum = %v, want %v", sum, wantSum)
	}

	// An observation above the last finite bound shows up only in +Inf.
	for _, s := range byName["t_phase_seconds"].Samples {
		if s.Name != "t_phase_seconds_bucket" || s.Labels["phase"] != "traverse" {
			continue
		}
		switch s.Labels["le"] {
		case "0.1":
			if s.Value != 1 {
				t.Errorf("traverse le=0.1 bucket = %v, want 1", s.Value)
			}
		case "+Inf":
			if s.Value != 2 {
				t.Errorf("traverse +Inf bucket = %v, want 2", s.Value)
			}
		}
	}
}

// TestHistogramMonotonic is the bucket-monotonicity property test:
// random observations, then cumulative bucket counts must be
// non-decreasing in le, the +Inf bucket must equal the count, and the
// sum must be exact.
func TestHistogramMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		uppers := make([]float64, n)
		v := rng.Float64() * 1e-3
		for i := range uppers {
			v *= 1 + rng.Float64()*3
			uppers[i] = v
		}
		h := newHistogram(uppers)
		var wantSum float64
		obs := 1 + rng.Intn(500)
		for i := 0; i < obs; i++ {
			x := rng.Float64() * uppers[n-1] * 1.5 // some land above the top bound
			h.Observe(x)
			wantSum += x
		}
		counts, sum, total := h.snapshot()
		if total != uint64(obs) {
			t.Fatalf("trial %d: count %d, want %d", trial, total, obs)
		}
		if math.Abs(sum-wantSum) > 1e-9*math.Max(1, math.Abs(wantSum)) {
			t.Fatalf("trial %d: sum %v, want %v", trial, sum, wantSum)
		}
		cum := uint64(0)
		prev := uint64(0)
		for i := range counts {
			cum += counts[i]
			if cum < prev {
				t.Fatalf("trial %d: cumulative bucket %d decreased: %d < %d", trial, i, cum, prev)
			}
			prev = cum
		}
		if cum > total {
			t.Fatalf("trial %d: finite buckets %d exceed count %d", trial, cum, total)
		}
	}
}

// TestConcurrentUpdates hammers every metric kind from many goroutines
// while scraping concurrently; the final totals must be exact. Run
// under -race this also proves the implementation is data-race-free.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "c")
	g := r.Gauge("cc_gauge", "g")
	h := r.Histogram("cc_hist", "h", []float64{1, 2, 4})
	cv := r.CounterVec("cc_labeled_total", "lc", "w")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := cv.With("shared") // resolve races family lock
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
				child.Inc()
			}
		}(w)
	}
	// Concurrent scrapes must not race updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Errorf("WriteText during updates: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	const n = workers * perWorker
	if got := c.Value(); got != n {
		t.Errorf("counter = %d, want %d", got, n)
	}
	if got := g.Value(); got != n {
		t.Errorf("gauge = %v, want %d", got, n)
	}
	if got := h.Count(); got != n {
		t.Errorf("histogram count = %d, want %d", got, n)
	}
	// Each worker observes 0,1,2,3,4 cyclically: sum per 5 obs is 10.
	if got, want := h.Sum(), float64(n/5*10); got != want {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
	if got := cv.With("shared").Value(); got != n {
		t.Errorf("labeled counter = %d, want %d", got, n)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 6; i++ {
		seq := r.Record(PhaseTrace{Terms: i})
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring kept %d traces, want 4", len(snap))
	}
	for i, tr := range snap {
		if want := uint64(i + 3); tr.Seq != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d (oldest first)", i, tr.Seq, want)
		}
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering dup_total as gauge did not panic")
		}
	}()
	r.Gauge("dup_total", "x")
}
