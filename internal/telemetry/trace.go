package telemetry

import (
	"sync"
	"sync/atomic"
)

// PhaseTrace is the timed breakdown of one executed query. It
// deliberately carries no query text and no document identifiers —
// the query log is the adversary-visible surface in the paper's
// threat model, and traces must not become a second copy of it. Term
// count, k, mode and scorer describe the shape of the work, not its
// content.
type PhaseTrace struct {
	// Seq is the trace's position in the ring's lifetime, assigned at
	// Record time; 0 until recorded.
	Seq uint64 `json:"seq"`
	// Scorer and Mode identify the scoring function and the effective
	// execution strategy (after ExecAuto resolution).
	Scorer string `json:"scorer,omitempty"`
	Mode   string `json:"mode,omitempty"`
	// Terms is the number of query terms after analysis; K the result
	// budget. Batch is the member count for a cycle-level batch trace,
	// zero for single-query traces.
	Terms int `json:"terms"`
	K     int `json:"k"`
	Batch int `json:"batch,omitempty"`

	// Phase durations in nanoseconds. Resolve covers term→TermID
	// lookup and weighting, Fetch iterator/postings setup, Traverse
	// the main scoring loop, Merge heap drain and result
	// materialization. TotalNS is wall time for the whole call and can
	// slightly exceed the phase sum (inter-phase bookkeeping).
	ResolveNS  int64 `json:"resolve_ns"`
	FetchNS    int64 `json:"fetch_ns"`
	TraverseNS int64 `json:"traverse_ns"`
	MergeNS    int64 `json:"merge_ns"`
	TotalNS    int64 `json:"total_ns"`

	// Work counters, copied from ExecStats at completion.
	DocsScored    int `json:"docs_scored"`
	DocsPruned    int `json:"docs_pruned"`
	Postings      int `json:"postings"`
	BlockSkips    int `json:"block_skips,omitempty"`
	SeekProbes    int `json:"seek_probes,omitempty"`
	BlocksDecoded int `json:"blocks_decoded,omitempty"`
}

// DefaultTraceCap is how many completed traces the ring retains.
const DefaultTraceCap = 256

// TraceRing keeps the last-N completed phase traces. Record is a
// short critical section (sequence assignment plus one slot write);
// it is off the hot path proper — traces are recorded once per query,
// after the response is built.
type TraceRing struct {
	mu   sync.Mutex
	buf  []PhaseTrace
	next int
	full bool
	seq  atomic.Uint64
}

// NewTraceRing returns a ring holding up to cap traces. Non-positive
// cap falls back to DefaultTraceCap.
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceRing{buf: make([]PhaseTrace, capacity)}
}

// Record stamps the trace with the next sequence number and stores it,
// evicting the oldest entry once the ring is full. It returns the
// assigned sequence.
func (r *TraceRing) Record(t PhaseTrace) uint64 {
	seq := r.seq.Add(1)
	t.Seq = seq
	r.mu.Lock()
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
	return seq
}

// Snapshot returns the retained traces, oldest first.
func (r *TraceRing) Snapshot() []PhaseTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]PhaseTrace(nil), r.buf[:r.next]...)
	}
	out := make([]PhaseTrace, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len reports how many traces are currently retained.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}
