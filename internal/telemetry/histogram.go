package telemetry

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with exact sum and count.
// Observations are two atomic adds plus a CAS float-add for the sum;
// there is no lock on the observation path. Buckets are cumulative
// only at exposition time — internally each slot counts observations
// that fell in (uppers[i-1], uppers[i]].
type Histogram struct {
	uppers []float64 // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64
	total  atomic.Uint64 // observations above the last finite bound included
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(uppers []float64) *Histogram {
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic("telemetry: histogram buckets must be strictly ascending")
		}
	}
	return &Histogram{
		uppers: append([]float64(nil), uppers...),
		counts: make([]atomic.Uint64, len(uppers)),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search beats linear scan only past ~16 buckets; latency
	// histograms here have ~20, and most observations land in the low
	// buckets, so scan from the bottom.
	for i, upper := range h.uppers {
		if v <= upper {
			h.counts[i].Add(1)
			break
		}
	}
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
}

// ObserveSeconds records a duration given in nanoseconds, converted to
// seconds — the Prometheus base unit for time.
func (h *Histogram) ObserveSeconds(ns int64) {
	h.Observe(float64(ns) / 1e9)
}

// snapshot returns per-bucket (non-cumulative) counts, the exact sum,
// and the total observation count. Reads are atomic per word; a scrape
// racing an observation may see the bucket before the total or vice
// versa, which Prometheus tolerates (counts are monotone).
func (h *Histogram) snapshot() (counts []uint64, sum float64, total uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, math.Float64frombits(h.sum.Load()), h.total.Load()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the exact sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefaultLatencyBuckets is the shared bucket layout for query-latency
// histograms: exponential, 10µs to ~2.6s in ×1.9 steps (21 finite
// buckets). The low end resolves the ~30µs in-memory query path; the
// high end keeps p999 visible under pathological load without an
// unbounded tail.
var DefaultLatencyBuckets = ExponentialBuckets(10e-6, 1.9, 21)

// ExponentialBuckets returns n ascending bounds starting at start,
// each factor times the previous. start must be positive and factor
// greater than one.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: invalid exponential bucket spec")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}
