package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedSample is one exposition line: a metric name (including any
// _bucket/_sum/_count suffix), its labels, and the value.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one family reassembled from an exposition stream.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []ParsedSample
}

// ParseText parses a Prometheus text-format (v0.0.4) stream into
// families, in stream order. It understands exactly the subset
// WriteText emits — HELP/TYPE comments, escaped label values,
// +Inf/-Inf/NaN — which is also the subset real scrapers require. It
// exists so the round-trip property is testable without a Prometheus
// dependency, and doubles as the decoder behind topprivctl -metrics.
func ParseText(r io.Reader) ([]ParsedFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var fams []ParsedFamily
	byName := map[string]int{}
	// familyOf maps a sample name to its family name by stripping
	// histogram suffixes when the base family is known.
	familyOf := func(sample string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(sample, suf); ok {
				if i, found := byName[base]; found && fams[i].Type == TypeHistogram {
					return base
				}
			}
		}
		return sample
	}
	ensure := func(name string) *ParsedFamily {
		if i, ok := byName[name]; ok {
			return &fams[i]
		}
		byName[name] = len(fams)
		fams = append(fams, ParsedFamily{Name: name})
		return &fams[len(fams)-1]
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue // bare comment
			}
			switch fields[1] {
			case "HELP":
				f := ensure(fields[2])
				if len(fields) == 4 {
					f.Help = unescapeHelp(fields[3])
				}
			case "TYPE":
				if len(fields) >= 4 {
					f := ensure(fields[2])
					f.Type = MetricType(fields[3])
				}
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		f := ensure(familyOf(sample.Name))
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	brace := strings.IndexByte(line, '{')
	var rest string
	if brace < 0 {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		s.Name = line[:sp]
		rest = line[sp+1:]
	} else {
		s.Name = line[:brace]
		end, labels, err := parseLabels(line[brace+1:])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(line[brace+1+end:])
	}
	// Ignore an optional trailing timestamp (we never emit one, but be
	// lenient: value is the first whitespace-separated token).
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `name="value",...}` and returns the offset one
// past the closing brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 0
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("label without '=' in %q", s)
		}
		name := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		labels[name] = val.String()
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// FormatTable pretty-prints parsed families as aligned text, families
// sorted by name — the human-facing view behind topprivctl -metrics.
func FormatTable(fams []ParsedFamily, w io.Writer) error {
	sorted := append([]ParsedFamily(nil), fams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for i, f := range sorted {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s (%s) — %s\n", f.Name, f.Type, f.Help); err != nil {
			return err
		}
		for _, s := range f.Samples {
			label := formatLabels(s.Labels)
			if _, err := fmt.Fprintf(w, "  %-60s %s\n", s.Name+label, formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}
