// Package telemetry is the zero-dependency observability core: a
// lock-cheap metrics registry with Prometheus text-format (v0.0.4)
// exposition, and a per-query phase tracer with a capped in-memory
// ring. The paper's threat model (Pang, Xiao & Shen, ICDE 2012) keeps
// the engine unmodified and treats the query log as the
// adversary-visible surface, so operational telemetry is the
// operator's only legitimate window into a deployment — and it must
// not itself become a leak: nothing in this package ever records query
// text, only counts and durations.
//
// Hot-path cost is the design constraint. Counters and gauges are
// single atomic words; histograms are fixed-bucket atomic arrays with
// an exact CAS-summed total; label lookup happens once at wiring time
// (callers resolve a child and keep it), never per observation.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the exposition TYPE of a family.
type MetricType string

// The three family types the registry supports. Untyped and summary
// are deliberately absent: every metric this codebase publishes is one
// of these.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Counter is a monotonically increasing uint64. The zero value is
// unusable; obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are a programming error; they are
// clamped to zero rather than corrupting monotonicity.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 (stored as atomic bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one. Handy for in-flight gauges.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// child is one labeled series inside a family.
type child struct {
	labels []string // label values, aligned with family.labelNames
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // lazy value for *Func series, nil otherwise
}

// family is one named metric with a fixed label-name schema.
type family struct {
	name       string
	help       string
	typ        MetricType
	labelNames []string
	buckets    []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child
	order    []*child // insertion order, for stable exposition
}

// Registry holds metric families and renders them. All methods are
// safe for concurrent use; family creation takes a lock but series
// handles returned to callers are lock-free afterwards.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var nameOK = func(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// getFamily returns the family, creating it on first use. Re-registering
// with a conflicting type, label schema or bucket layout panics: that
// is a wiring bug, not a runtime condition.
func (r *Registry) getFamily(name, help string, typ MetricType, labelNames []string, buckets []float64) *family {
	if !nameOK(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labelNames) != len(labelNames) {
			panic("telemetry: conflicting re-registration of " + name)
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic("telemetry: conflicting label schema for " + name)
			}
		}
		if typ == TypeHistogram && len(f.buckets) != len(buckets) {
			panic("telemetry: conflicting bucket layout for " + name)
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		children:   make(map[string]*child),
	}
	r.families[name] = f
	r.order = append(r.order, f)
	return f
}

func childKey(values []string) string {
	return strings.Join(values, "\x00")
}

func (f *family) getChild(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labels: append([]string(nil), values...)}
	switch f.typ {
	case TypeCounter:
		c.c = &Counter{}
	case TypeGauge:
		c.g = &Gauge{}
	case TypeHistogram:
		c.h = newHistogram(f.buckets)
	}
	f.children[key] = c
	f.order = append(f.order, c)
	return c
}

// Counter returns the unlabeled counter with this name, creating it on
// first use. Subsequent calls return the same counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.getFamily(name, help, TypeCounter, nil, nil).getChild(nil).c
}

// CounterVec declares a labeled counter family; With resolves children.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.getFamily(name, help, TypeCounter, labelNames, nil)}
}

// Gauge returns the unlabeled gauge with this name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.getFamily(name, help, TypeGauge, nil, nil).getChild(nil).g
}

// GaugeVec declares a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.getFamily(name, help, TypeGauge, labelNames, nil)}
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Use it for values the owning component already maintains (segment
// counts, model staleness) so scrapes read fresh state without the
// component pushing updates.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.getFamily(name, help, TypeGauge, nil, nil)
	c := f.getChild(nil)
	f.mu.Lock()
	c.fn = fn
	f.mu.Unlock()
}

// CounterFunc registers a counter read at scrape time from fn — for
// components that keep their own atomics (e.g. compaction totals).
// fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.getFamily(name, help, TypeCounter, nil, nil)
	c := f.getChild(nil)
	f.mu.Lock()
	c.fn = fn
	f.mu.Unlock()
}

// Histogram returns the unlabeled histogram with this name.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.getFamily(name, help, TypeHistogram, nil, buckets).getChild(nil).h
}

// HistogramVec declares a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.getFamily(name, help, TypeHistogram, labelNames, buckets)}
}

// CounterVec is a labeled counter family handle.
type CounterVec struct{ f *family }

// With resolves (creating if absent) the child for these label values.
// Resolve once at wiring time and keep the handle; With takes the
// family lock.
func (v *CounterVec) With(values ...string) *Counter { return v.f.getChild(values).c }

// GaugeVec is a labeled gauge family handle.
type GaugeVec struct{ f *family }

// With resolves the child gauge for these label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.getChild(values).g }

// HistogramVec is a labeled histogram family handle.
type HistogramVec struct{ f *family }

// With resolves the child histogram for these label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.getChild(values).h }

// WriteText renders every family in Prometheus text format v0.0.4,
// families in registration order, series in creation order. It takes
// each family's lock only long enough to snapshot the child list;
// values are read from the live atomics.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		children := append([]*child(nil), f.order...)
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(string(f.typ))
		b.WriteByte('\n')
		for _, c := range children {
			switch f.typ {
			case TypeCounter:
				val := float64(c.c.Value())
				if c.fn != nil {
					val = c.fn()
				}
				writeSample(&b, f.name, f.labelNames, c.labels, "", "", val)
			case TypeGauge:
				val := c.g.Value()
				if c.fn != nil {
					val = c.fn()
				}
				writeSample(&b, f.name, f.labelNames, c.labels, "", "", val)
			case TypeHistogram:
				counts, sum, total := c.h.snapshot()
				cum := uint64(0)
				for i, upper := range c.h.uppers {
					cum += counts[i]
					writeSample(&b, f.name+"_bucket", f.labelNames, c.labels,
						"le", formatLe(upper), float64(cum))
				}
				writeSample(&b, f.name+"_bucket", f.labelNames, c.labels,
					"le", "+Inf", float64(total))
				writeSample(&b, f.name+"_sum", f.labelNames, c.labels, "", "", sum)
				writeSample(&b, f.name+"_count", f.labelNames, c.labels, "", "", float64(total))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSample appends one exposition line. extraName/extraValue carry
// the synthetic "le" label for histogram buckets.
func writeSample(b *strings.Builder, name string, labelNames, labelValues []string, extraName, extraValue string, val float64) {
	b.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ln)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labelValues[i]))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labelNames) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(val))
	b.WriteByte('\n')
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a bucket upper bound for the le label.
func formatLe(v float64) string { return formatValue(v) }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// SortedNames returns the registered family names in lexical order —
// used by tooling (topprivctl -metrics) for stable pretty-printing.
func (r *Registry) SortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.order))
	for _, f := range r.order {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
