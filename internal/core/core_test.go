package core

import (
	"math/rand"
	"reflect"
	"testing"

	"toppriv/internal/belief"
	"toppriv/internal/corpus"
	"toppriv/internal/lda"
	"toppriv/internal/textproc"
)

// fixture builds a corpus, LDA model and belief engine once per test
// binary; TopPriv tests only read from them.
type fixture struct {
	eng *belief.Engine
	gt  *corpus.GroundTruth
	an  *textproc.Analyzer
}

var sharedFixture *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if sharedFixture != nil {
		return sharedFixture
	}
	spec := corpus.GenSpec{Seed: 33, NumDocs: 400, NumTopics: 8, DocLenMin: 60, DocLenMax: 100}
	c, gt, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := lda.Train(c, lda.TrainSpec{NumTopics: 8, Iterations: 100, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := lda.NewInferencer(m, lda.InferSpec{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := belief.NewEngine(inf)
	if err != nil {
		t.Fatal(err)
	}
	sharedFixture = &fixture{eng: eng, gt: gt, an: textproc.NewAnalyzer()}
	return sharedFixture
}

// topicQuery returns an analyzed query drawn from a topic's head words.
func (f *fixture) topicQuery(topic, n int) []string {
	var out []string
	for _, w := range f.gt.TopicWords[topic] {
		if term, ok := f.an.AnalyzeTerm(w); ok {
			out = append(out, term)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func defaultObfuscator(t *testing.T, f *fixture) *Obfuscator {
	t.Helper()
	// Thresholds scaled for a K=8 model: with α = 50/K smoothing a query
	// can shift posteriors by at most |q|/(|q|+50).
	o, err := NewObfuscator(f.eng, Params{Eps1: 0.04, Eps2: 0.015})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestParamsValidation(t *testing.T) {
	f := getFixture(t)
	bad := []Params{
		{Eps1: 0, Eps2: 0},
		{Eps1: -0.1, Eps2: 0.01},
		{Eps1: 1.5, Eps2: 0.01},
		{Eps1: 0.05, Eps2: 0},
		{Eps1: 0.05, Eps2: 0.06}, // ε2 > ε1 violates the model
		{Eps1: 0.05, Eps2: 0.01, MinLenMult: 2, MaxLenMult: 1},
	}
	for i, p := range bad {
		if _, err := NewObfuscator(f.eng, p); err == nil {
			t.Errorf("params %d (%+v): expected validation error", i, p)
		}
	}
	if _, err := NewObfuscator(nil, DefaultParams()); err == nil {
		t.Error("nil engine must error")
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
}

func TestObfuscateEmptyQuery(t *testing.T) {
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	if _, err := o.Obfuscate(nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty query must error")
	}
}

func TestObfuscateSuppressesIntention(t *testing.T) {
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	suppressed := 0
	total := 0
	for topic := 0; topic < 8; topic++ {
		q := f.topicQuery(topic, 12)
		cyc, err := o.Obfuscate(q, rand.New(rand.NewSource(int64(topic))))
		if err != nil {
			t.Fatal(err)
		}
		if len(cyc.Intention) == 0 {
			continue // query did not register an intention at ε1
		}
		total++
		if cyc.Satisfied {
			suppressed++
			if cyc.Exposure > o.Params().Eps2 {
				t.Errorf("topic %d: Satisfied but exposure %v > eps2", topic, cyc.Exposure)
			}
		}
		if cyc.Len() < 2 {
			t.Errorf("topic %d: intention present but no ghosts injected", topic)
		}
	}
	if total == 0 {
		t.Fatal("no query registered an intention; fixture thresholds wrong")
	}
	if suppressed < total/2 {
		t.Errorf("only %d/%d intentions suppressed to eps2", suppressed, total)
	}
}

func TestObfuscateMaskDominatesExposure(t *testing.T) {
	// Paper Figure 2a/2b: irrelevant topics should be promoted above the
	// relevant ones in the cycle.
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	dominated := 0
	cases := 0
	for topic := 0; topic < 8; topic++ {
		q := f.topicQuery(topic, 12)
		cyc, err := o.Obfuscate(q, rand.New(rand.NewSource(100+int64(topic))))
		if err != nil {
			t.Fatal(err)
		}
		if len(cyc.Intention) == 0 || cyc.Len() < 2 {
			continue
		}
		cases++
		if cyc.Mask > cyc.Exposure {
			dominated++
		}
	}
	if cases > 0 && dominated < cases/2 {
		t.Errorf("mask dominates exposure in only %d/%d cases", dominated, cases)
	}
}

func TestObfuscateUserQueryPreserved(t *testing.T) {
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	q := f.topicQuery(3, 10)
	cyc, err := o.Obfuscate(q, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cyc.UserQuery(), q) {
		t.Error("user query mutated by obfuscation")
	}
	if cyc.UserIndex < 0 || cyc.UserIndex >= cyc.Len() {
		t.Errorf("UserIndex %d out of range", cyc.UserIndex)
	}
}

func TestObfuscateDeterministic(t *testing.T) {
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	q := f.topicQuery(1, 10)
	c1, _ := o.Obfuscate(q, rand.New(rand.NewSource(77)))
	c2, _ := o.Obfuscate(q, rand.New(rand.NewSource(77)))
	if !reflect.DeepEqual(c1.Queries, c2.Queries) {
		t.Error("same seed produced different cycles")
	}
	if c1.UserIndex != c2.UserIndex {
		t.Error("same seed produced different shuffles")
	}
}

func TestGhostsAvoidIntentionTopics(t *testing.T) {
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	for topic := 0; topic < 4; topic++ {
		q := f.topicQuery(topic, 12)
		cyc, err := o.Obfuscate(q, rand.New(rand.NewSource(int64(200+topic))))
		if err != nil {
			t.Fatal(err)
		}
		inU := map[int]bool{}
		for _, t2 := range cyc.Intention {
			inU[t2] = true
		}
		for _, tm := range cyc.MaskingTopics {
			if inU[tm] {
				t.Errorf("masking topic %d is in the intention U", tm)
			}
		}
		// Tm and X must be disjoint.
		for _, tm := range cyc.MaskingTopics {
			for _, tx := range cyc.RejectedTopics {
				if tm == tx {
					t.Errorf("topic %d in both Tm and X", tm)
				}
			}
		}
	}
}

func TestGhostLengthsWithinMultiples(t *testing.T) {
	f := getFixture(t)
	o, err := NewObfuscator(f.eng, Params{Eps1: 0.04, Eps2: 0.015, MinLenMult: 1, MaxLenMult: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := f.topicQuery(0, 10)
	cyc, err := o.Obfuscate(q, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range cyc.Queries {
		if i == cyc.UserIndex {
			continue
		}
		if len(g) < len(q) || len(g) > 2*len(q) {
			t.Errorf("ghost %d length %d outside [%d, %d]", i, len(g), len(q), 2*len(q))
		}
	}
}

func TestFixedGhostLenAblation(t *testing.T) {
	f := getFixture(t)
	o, err := NewObfuscator(f.eng, Params{Eps1: 0.04, Eps2: 0.015, FixedGhostLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := o.Obfuscate(f.topicQuery(0, 12), rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range cyc.Queries {
		if i != cyc.UserIndex && len(g) != 5 {
			t.Errorf("ghost %d length %d, want 5", i, len(g))
		}
	}
}

func TestGhostWordsSemanticCoherence(t *testing.T) {
	// Definition 3: a coherent ghost's words should concentrate on one
	// topic — verify most accepted ghosts have their plurality of words
	// among the masking topic's top terms.
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	q := f.topicQuery(2, 12)
	cyc, err := o.Obfuscate(q, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Len() < 2 {
		t.Skip("no ghosts generated")
	}
	m := f.eng.Model()
	coherent := 0
	ghosts := 0
	gi := 0
	for i, g := range cyc.Queries {
		if i == cyc.UserIndex {
			continue
		}
		// Masking topics are recorded in acceptance order but the cycle
		// is shuffled; check the ghost against *any* masking topic.
		ghosts++
		gi++
		best := 0
		for _, tm := range cyc.MaskingTopics {
			top := map[string]bool{}
			for _, tw := range m.TopWords(tm, 60) {
				top[tw.Term] = true
			}
			hits := 0
			for _, w := range g {
				if top[w] {
					hits++
				}
			}
			if hits > best {
				best = hits
			}
		}
		if best*2 >= len(g) { // at least half the words from one topic head
			coherent++
		}
	}
	if coherent < (ghosts+1)/2 {
		t.Errorf("only %d/%d ghosts look semantically coherent", coherent, ghosts)
	}
}

func TestUniformWordsAblationLessCoherent(t *testing.T) {
	f := getFixture(t)
	q := f.topicQuery(2, 12)
	biased, _ := NewObfuscator(f.eng, Params{Eps1: 0.04, Eps2: 0.015})
	uniform, _ := NewObfuscator(f.eng, Params{Eps1: 0.04, Eps2: 0.015, UniformWords: true})
	cohB := ghostCoherence(t, biased, q, 13)
	cohU := ghostCoherence(t, uniform, q, 13)
	if cohU > cohB {
		t.Errorf("uniform sampling more coherent (%v) than biased (%v)?", cohU, cohB)
	}
}

// ghostCoherence returns the mean fraction of ghost words that fall in
// some model topic's top-40 word list.
func ghostCoherence(t *testing.T, o *Obfuscator, q []string, seed int64) float64 {
	t.Helper()
	cyc, err := o.Obfuscate(q, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	m := o.Engine().Model()
	tops := make([]map[string]bool, m.K)
	for k := 0; k < m.K; k++ {
		tops[k] = map[string]bool{}
		for _, tw := range m.TopWords(k, 40) {
			tops[k][tw.Term] = true
		}
	}
	total, n := 0.0, 0
	for i, g := range cyc.Queries {
		if i == cyc.UserIndex || len(g) == 0 {
			continue
		}
		best := 0
		for k := 0; k < m.K; k++ {
			hits := 0
			for _, w := range g {
				if tops[k][w] {
					hits++
				}
			}
			if hits > best {
				best = hits
			}
		}
		total += float64(best) / float64(len(g))
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

func TestMaxCycleCap(t *testing.T) {
	f := getFixture(t)
	o, err := NewObfuscator(f.eng, Params{Eps1: 0.01, Eps2: 0.001, MaxCycle: 3})
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := o.Obfuscate(f.topicQuery(0, 12), rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Len() > 3 {
		t.Errorf("cycle length %d exceeds cap 3", cyc.Len())
	}
}

func TestTighterEps2NeedsMoreGhosts(t *testing.T) {
	// Figure 2c: cycle length grows as ε2 tightens.
	f := getFixture(t)
	loose, _ := NewObfuscator(f.eng, Params{Eps1: 0.04, Eps2: 0.04})
	tight, _ := NewObfuscator(f.eng, Params{Eps1: 0.04, Eps2: 0.005})
	looseLen, tightLen := 0, 0
	for topic := 0; topic < 8; topic++ {
		q := f.topicQuery(topic, 12)
		cl, err := loose.Obfuscate(q, rand.New(rand.NewSource(int64(300+topic))))
		if err != nil {
			t.Fatal(err)
		}
		ct, err := tight.Obfuscate(q, rand.New(rand.NewSource(int64(300+topic))))
		if err != nil {
			t.Fatal(err)
		}
		looseLen += cl.Len()
		tightLen += ct.Len()
	}
	if tightLen <= looseLen {
		t.Errorf("tight eps2 used %d total queries, loose used %d; expected more under tight",
			tightLen, looseLen)
	}
}

func TestCycleBoostConsistentWithBeliefEngine(t *testing.T) {
	// The Boost the cycle reports must equal recomputing Eq. 2 over its
	// queries (up to inference noise from different RNG draws).
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	q := f.topicQuery(4, 12)
	cyc, err := o.Obfuscate(q, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	recomputed := f.eng.CycleBoost(cyc.Queries, rand.New(rand.NewSource(16)))
	for t2 := range recomputed {
		diff := recomputed[t2] - cyc.Boost[t2]
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05 {
			t.Errorf("topic %d boost %v vs recomputed %v", t2, cyc.Boost[t2], recomputed[t2])
		}
	}
}

func TestCycleDiagnostics(t *testing.T) {
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	q := append(f.topicQuery(0, 8), f.topicQuery(1, 8)...)
	cyc, err := o.Obfuscate(q, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	k := f.eng.NumTopics()
	for _, topic := range cyc.Intention {
		if topic < 0 || topic >= k {
			t.Errorf("intention topic %d out of range", topic)
		}
	}
	if len(cyc.Boost) != k {
		t.Errorf("Boost has %d entries, want %d", len(cyc.Boost), k)
	}
	if cyc.GenTime <= 0 {
		t.Error("GenTime not recorded")
	}
}
