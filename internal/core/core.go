// Package core implements TopPriv — the paper's contribution: the
// (ε1, ε2)-privacy parameters and the topic-cognizant ghost-query
// generation algorithm of §IV-C. Given a user query, the Obfuscator
// determines the user intention U (topics whose boost in belief exceeds
// ε1), then injects ghost queries composed of semantically coherent
// words from masking topics until every topic of U is suppressed below
// ε2 in the cycle posterior, backtracking past masking topics that fail
// to help (the set X).
package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"toppriv/internal/belief"
)

// Params are the user-chosen privacy settings. The thresholds are the
// secret values ε1 and ε2 of the privacy model; they never leave the
// client.
type Params struct {
	// Eps1 is the relevance threshold: topics with boost > Eps1 are the
	// user intention (Definition 1/2). Paper default 5%.
	Eps1 float64
	// Eps2 is the exposure threshold the cycle must reach (Definition 4).
	// Must satisfy Eps2 <= Eps1. Paper default 1%.
	Eps2 float64
	// MinLenMult and MaxLenMult bound each ghost query's length as
	// multiples of |q_u| (Step 3a). Defaults 0.8 and 1.5.
	MinLenMult, MaxLenMult float64
	// MaxCycle caps the total number of queries in a cycle as a safety
	// valve. Zero means no cap beyond the algorithm's natural |T\U|
	// bound.
	MaxCycle int

	// UniformWords disables the Step 3(b) bias toward high-probability
	// words of the masking topic, sampling uniformly from the whole
	// vocabulary instead. Ablation only: it makes ghosts incoherent
	// (TrackMeNot-style).
	UniformWords bool
	// NoBacktrack disables the Step 3(c) ineffective-topic test: every
	// tentative ghost is kept. Ablation only.
	NoBacktrack bool
	// FixedGhostLen, when > 0, overrides the length multiples with a
	// constant ghost length. Ablation only.
	FixedGhostLen int
	// MimicProfile switches ghost-word sampling to depth-profile
	// mimicry: ghost words are drawn from the masking topic's ranked
	// vocabulary at the same depths as the genuine terms, closing the
	// feature gap a learned distinguisher exploits (see
	// internal/core/mimic.go). Extension beyond the paper; off by
	// default.
	MimicProfile bool
}

// DefaultParams returns the paper's default settings: ε1 = 5%, ε2 = 1%.
func DefaultParams() Params {
	return Params{Eps1: 0.05, Eps2: 0.01, MinLenMult: 0.8, MaxLenMult: 1.5}
}

func (p Params) withDefaults() Params {
	if p.MinLenMult == 0 {
		p.MinLenMult = 0.8
	}
	if p.MaxLenMult == 0 {
		p.MaxLenMult = 1.5
	}
	return p
}

// Validate checks the threshold discipline of the model (ε1 ≥ ε2 > 0).
func (p Params) Validate() error {
	if p.Eps1 <= 0 || p.Eps1 >= 1 {
		return fmt.Errorf("core: Eps1 = %v, need (0,1)", p.Eps1)
	}
	if p.Eps2 <= 0 || p.Eps2 > p.Eps1 {
		return fmt.Errorf("core: Eps2 = %v, need 0 < Eps2 <= Eps1 = %v", p.Eps2, p.Eps1)
	}
	if p.MinLenMult < 0 || (p.MaxLenMult != 0 && p.MaxLenMult < p.MinLenMult) {
		return fmt.Errorf("core: bad length multiples [%v, %v]", p.MinLenMult, p.MaxLenMult)
	}
	return nil
}

// Cycle is the output of one obfuscation: the user query mixed among
// ghost queries (shuffled, Step 4), plus the diagnostics experiments
// need. Only Queries is ever sent to the search engine; the rest stays
// client-side.
type Cycle struct {
	// Queries is the shuffled cycle C = {q1, …, q_υ}, each a bag of
	// analyzed terms.
	Queries [][]string
	// UserIndex locates the genuine query within Queries.
	UserIndex int
	// Intention is U, the relevant topics of the user query at ε1,
	// sorted by descending boost.
	Intention []int
	// MaskingTopics are the topics whose ghosts were accepted (Tm).
	MaskingTopics []int
	// RejectedTopics are the topics found ineffective (X).
	RejectedTopics []int
	// Boost is B(t|C) for every topic under the final cycle.
	Boost []float64
	// Exposure is max{B(t|C) : t ∈ U}; Mask is max over T\U.
	Exposure, Mask float64
	// Satisfied reports whether Exposure ≤ ε2 was reached.
	Satisfied bool
	// GenTime is the wall-clock cost of generating the cycle (the
	// client-side overhead of Figures 2d/3d).
	GenTime time.Duration
}

// Len returns υ, the cycle length.
func (c *Cycle) Len() int { return len(c.Queries) }

// UserQuery returns the genuine query's terms.
func (c *Cycle) UserQuery() []string { return c.Queries[c.UserIndex] }

// Obfuscator generates (ε1, ε2)-private query cycles over a belief
// engine. It is safe for concurrent use; all mutable state is local to
// each Obfuscate call and randomness comes from the caller's RNG.
type Obfuscator struct {
	eng    *belief.Engine
	params Params

	// mimic sampling caches (lazily built, see mimic.go).
	mimicOnce  sync.Once
	mimicCache *mimicState
}

// NewObfuscator validates params and builds an obfuscator.
func NewObfuscator(eng *belief.Engine, params Params) (*Obfuscator, error) {
	if eng == nil {
		return nil, fmt.Errorf("core: nil belief engine")
	}
	params = params.withDefaults()
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Obfuscator{eng: eng, params: params}, nil
}

// Params returns the obfuscator's settings.
func (o *Obfuscator) Params() Params { return o.params }

// Engine returns the underlying belief engine.
func (o *Obfuscator) Engine() *belief.Engine { return o.eng }

// Obfuscate runs the §IV-C algorithm on an analyzed user query and
// returns the cycle to submit. The caller's RNG drives every random
// choice, so identical inputs and seeds reproduce identical cycles.
func (o *Obfuscator) Obfuscate(userTerms []string, rng *rand.Rand) (*Cycle, error) {
	return o.ObfuscateSticky(userTerms, nil, rng)
}

// ObfuscateSticky is Obfuscate with a masking-topic preference: topics
// in prefer are tried first (in random order) when choosing masking
// topics. A Session uses it to keep one user's decoy profile stable
// across queries, which blunts cross-cycle intersection analysis (see
// adversary.IntersectionAttack).
func (o *Obfuscator) ObfuscateSticky(userTerms []string, prefer []int, rng *rand.Rand) (*Cycle, error) {
	if len(userTerms) == 0 {
		return nil, fmt.Errorf("core: empty user query")
	}
	start := time.Now()
	m := o.eng.Model()
	prior := o.eng.Prior()
	k := m.K

	// Step 1: infer Pr(t|q_u) and derive U.
	userPost := o.eng.Posterior(userTerms, rng)
	userBoost := belief.BoostOf(userPost, prior)
	u := belief.Intention(userBoost, o.params.Eps1)
	inU := make([]bool, k)
	for _, t := range u {
		inU[t] = true
	}

	// Step 2: initialize. postSum accumulates Σ Pr(t|q) over the cycle so
	// the Eq. 2 cycle posterior is (postSum / υ) without re-inference.
	postSum := make([]float64, k)
	copy(postSum, userPost)
	queries := [][]string{userTerms}
	var maskTopics, rejected []int
	inTm := make([]bool, k)
	inX := make([]bool, k)

	exposure := func(sum []float64, n int) float64 {
		mx := 0.0
		for i, t := range u {
			b := sum[t]/float64(n) - prior[t]
			if i == 0 || b > mx {
				mx = b
			}
		}
		return mx
	}

	// Step 3: repeat until every t ∈ U is suppressed to ε2.
	for len(u) > 0 && exposure(postSum, len(queries)) > o.params.Eps2 {
		if o.params.MaxCycle > 0 && len(queries) >= o.params.MaxCycle {
			break
		}
		// Step 3(b): candidate masking topics are T \ U \ Tm \ X,
		// preferred (sticky) topics first, each tier in random order.
		candidates := orderCandidates(k, inU, inTm, inX, prefer, rng)
		if len(candidates) == 0 {
			break
		}
		accepted := false
		for len(candidates) > 0 {
			tm := candidates[0]
			candidates = candidates[1:]

			// Step 3(a): ghost length as a random multiple of |q_u| —
			// except under profile mimicry, where the ghost matches the
			// genuine length exactly (length is itself a distinguishing
			// feature).
			var ghost []string
			if o.params.MimicProfile {
				ghost = o.sampleGhostWordsMimic(tm, len(userTerms), userTerms, rng)
			} else {
				ghost = o.sampleGhostWords(tm, o.ghostLen(len(userTerms), rng), rng)
			}
			if len(ghost) == 0 {
				inX[tm] = true
				rejected = append(rejected, tm)
				continue
			}

			// Step 3(c): accept only if the ghost reduces the exposure
			// of U (computed on the tentative cycle C ∪ {q_g}).
			ghostPost := o.eng.Posterior(ghost, rng)
			tentative := make([]float64, k)
			for t := 0; t < k; t++ {
				tentative[t] = postSum[t] + ghostPost[t]
			}
			if !o.params.NoBacktrack &&
				exposure(tentative, len(queries)+1) >= exposure(postSum, len(queries)) {
				inX[tm] = true
				rejected = append(rejected, tm)
				continue
			}

			// Step 3(d): commit.
			postSum = tentative
			queries = append(queries, ghost)
			inTm[tm] = true
			maskTopics = append(maskTopics, tm)
			accepted = true
			break
		}
		if !accepted {
			break // X ⊄ T\U\Tm no longer holds: every topic tried.
		}
	}

	// Step 4: shuffle the cycle.
	userIdx := 0
	perm := rng.Perm(len(queries))
	shuffled := make([][]string, len(queries))
	for to, from := range perm {
		shuffled[to] = queries[from]
		if from == 0 {
			userIdx = to
		}
	}

	cycleBoost := make([]float64, k)
	for t := 0; t < k; t++ {
		cycleBoost[t] = postSum[t]/float64(len(queries)) - prior[t]
	}
	cyc := &Cycle{
		Queries:        shuffled,
		UserIndex:      userIdx,
		Intention:      u,
		MaskingTopics:  maskTopics,
		RejectedTopics: rejected,
		Boost:          cycleBoost,
		Exposure:       belief.Exposure(cycleBoost, u),
		Mask:           belief.MaskLevel(cycleBoost, u),
		GenTime:        time.Since(start),
	}
	cyc.Satisfied = len(u) == 0 || cyc.Exposure <= o.params.Eps2
	return cyc, nil
}

// orderCandidates lists the legal masking topics with preferred ones
// first; each tier is shuffled by the caller's RNG.
func orderCandidates(k int, inU, inTm, inX []bool, prefer []int, rng *rand.Rand) []int {
	legal := func(t int) bool { return t >= 0 && t < k && !inU[t] && !inTm[t] && !inX[t] }
	used := make([]bool, k)
	var head, tail []int
	for _, t := range prefer {
		if legal(t) && !used[t] {
			used[t] = true
			head = append(head, t)
		}
	}
	for t := 0; t < k; t++ {
		if legal(t) && !used[t] {
			tail = append(tail, t)
		}
	}
	rng.Shuffle(len(head), func(i, j int) { head[i], head[j] = head[j], head[i] })
	rng.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
	return append(head, tail...)
}

// ghostLen draws the ghost length per Step 3(a) (or the ablation
// override), never below 1.
func (o *Obfuscator) ghostLen(userLen int, rng *rand.Rand) int {
	if o.params.FixedGhostLen > 0 {
		return o.params.FixedGhostLen
	}
	lo := int(o.params.MinLenMult * float64(userLen))
	hi := int(o.params.MaxLenMult * float64(userLen))
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// sampleGhostWords draws distinct words for a ghost query. The default
// draws proportionally to Pr(w|t_m) — a topic vector with Pr(t_m) = 1
// collapses Pr(w) = Σ_t Pr(w|t)Pr(t) to Φ[t_m] — so ghosts read as
// semantically coherent text on the masking topic. The UniformWords
// ablation draws uniformly from the vocabulary instead.
func (o *Obfuscator) sampleGhostWords(tm, n int, rng *rand.Rand) []string {
	m := o.eng.Model()
	if n > m.V {
		n = m.V
	}
	words := make([]string, 0, n)
	seen := make(map[int]struct{}, n)
	if o.params.UniformWords {
		for len(words) < n {
			w := rng.Intn(m.V)
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			words = append(words, m.Terms[w])
		}
		return words
	}
	dist := m.WordDistribution(tm)
	if dist == nil {
		return nil
	}
	maxAttempts := 50 * n
	for attempts := 0; len(words) < n && attempts < maxAttempts; attempts++ {
		w := sampleIndex(dist, rng)
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		words = append(words, m.Terms[w])
	}
	return words
}

// sampleIndex draws an index from an unnormalized non-negative weight
// vector.
func sampleIndex(weights []float64, rng *rand.Rand) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
