package core

import (
	"math/rand"
	"testing"
)

func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(nil); err == nil {
		t.Error("nil obfuscator must error")
	}
}

func TestSessionReusesMaskingTopics(t *testing.T) {
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	s, err := NewSession(o)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(401))

	// Ten different queries on the same interest (topic 0).
	var firstProfile []int
	for i := 0; i < 10; i++ {
		q := f.topicQuery(0, 8+i%5)
		cyc, err := s.Obfuscate(q, rng)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstProfile = append([]int{}, cyc.MaskingTopics...)
		}
		if len(s.History) != i+1 {
			t.Fatalf("history length %d after %d queries", len(s.History), i+1)
		}
	}
	if len(firstProfile) == 0 {
		t.Skip("first cycle produced no ghosts at these thresholds")
	}
	// Later cycles should predominantly reuse the established profile.
	sticky := map[int]bool{}
	for _, tm := range s.StickyTopics() {
		sticky[tm] = true
	}
	reused, total := 0, 0
	for _, cyc := range s.History[1:] {
		for _, tm := range cyc.MaskingTopics {
			total++
			if sticky[tm] {
				reused++
			}
		}
	}
	if total > 0 && reused*2 < total {
		t.Errorf("only %d/%d masking topics reused from the sticky profile", reused, total)
	}
}

func TestSessionMaxSticky(t *testing.T) {
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	s, _ := NewSession(o)
	s.MaxSticky = 2
	rng := rand.New(rand.NewSource(402))
	for i := 0; i < 5; i++ {
		if _, err := s.Obfuscate(f.topicQuery(i%4, 10), rng); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.StickyTopics()) > 2 {
		t.Errorf("sticky profile %v exceeds MaxSticky", s.StickyTopics())
	}
}

func TestSessionReset(t *testing.T) {
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	s, _ := NewSession(o)
	rng := rand.New(rand.NewSource(403))
	if _, err := s.Obfuscate(f.topicQuery(0, 10), rng); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if len(s.StickyTopics()) != 0 || len(s.History) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestObfuscateStickyPrefersGivenTopics(t *testing.T) {
	f := getFixture(t)
	o := defaultObfuscator(t, f)
	q := f.topicQuery(0, 12)
	// Find some legal masking topics by running once.
	probe, err := o.Obfuscate(q, rand.New(rand.NewSource(404)))
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.MaskingTopics) < 1 {
		t.Skip("no masking topics generated")
	}
	prefer := probe.MaskingTopics
	hits := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		cyc, err := o.ObfuscateSticky(q, prefer, rand.New(rand.NewSource(int64(500+i))))
		if err != nil {
			t.Fatal(err)
		}
		preferSet := map[int]bool{}
		for _, tm := range prefer {
			preferSet[tm] = true
		}
		for _, tm := range cyc.MaskingTopics {
			if preferSet[tm] {
				hits++
				break
			}
		}
	}
	if hits < trials {
		t.Errorf("preferred topics adopted in only %d/%d trials", hits, trials)
	}
}

func TestOrderCandidates(t *testing.T) {
	k := 6
	inU := make([]bool, k)
	inTm := make([]bool, k)
	inX := make([]bool, k)
	inU[0] = true
	inTm[1] = true
	inX[2] = true
	rng := rand.New(rand.NewSource(1))
	got := orderCandidates(k, inU, inTm, inX, []int{4, 0, 99, 4}, rng)
	if len(got) != 3 { // topics 3, 4, 5 are legal
		t.Fatalf("got %v", got)
	}
	if got[0] != 4 {
		t.Errorf("preferred legal topic should come first: %v", got)
	}
	seen := map[int]bool{}
	for _, t2 := range got {
		if seen[t2] {
			t.Fatalf("duplicate candidate in %v", got)
		}
		seen[t2] = true
		if t2 == 0 || t2 == 1 || t2 == 2 {
			t.Fatalf("illegal candidate in %v", got)
		}
	}
}
