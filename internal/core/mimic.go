package core

import (
	"math/rand"
	"sync"
)

// Profile-mimicking ghost-word sampling — the countermeasure to the
// learned-distinguisher attack (adversary.Distinguisher). Plain Step
// 3(b) sampling draws ghost words ∝ Pr(w|t_m), which concentrates on
// each masking topic's head; genuine queries, in contrast, carry
// deeper-ranked and more specific terms. A classifier trained on that
// gap identifies the genuine query well above chance. Mimic sampling
// removes the gap: each ghost word is drawn from the masking topic's
// rank-ordered vocabulary *at the same depth* as a randomly chosen
// genuine term, so the ghost's rank-depth profile matches the user
// query's by construction.
//
// Enabled with Params.MimicProfile; the default remains the paper's
// plain biased sampling.

// mimicState lazily caches the structures mimic sampling needs:
// per-topic rank-ordered vocabularies, and every term's best (smallest)
// rank across topics.
type mimicState struct {
	once sync.Once
	// ranked[t] is topic t's vocabulary in descending Pr(w|t) order,
	// truncated to rankDepth.
	ranked [][]string
	// bestRank[term] is the term's best rank across all topics; terms
	// absent from every truncated head are missing (treated as deep).
	bestRank map[string]int
}

// rankDepth bounds the per-topic rank tables. Deep enough to cover the
// specific terms real queries use, shallow enough to stay cheap.
const rankDepth = 300

func (o *Obfuscator) mimic() *mimicState {
	o.mimicOnce.Do(func() {
		m := o.eng.Model()
		depth := rankDepth
		if depth > m.V {
			depth = m.V
		}
		st := &mimicState{
			ranked:   make([][]string, m.K),
			bestRank: make(map[string]int, m.K*depth),
		}
		for t := 0; t < m.K; t++ {
			words := make([]string, depth)
			for rank, tw := range m.TopWords(t, depth) {
				words[rank] = tw.Term
				if old, ok := st.bestRank[tw.Term]; !ok || rank < old {
					st.bestRank[tw.Term] = rank
				}
			}
			st.ranked[t] = words
		}
		o.mimicCache = st
	})
	return o.mimicCache
}

// sampleGhostWordsMimic draws n distinct ghost words from masking topic
// tm whose rank depths mirror the user query's term depths.
func (o *Obfuscator) sampleGhostWordsMimic(tm, n int, userTerms []string, rng *rand.Rand) []string {
	st := o.mimic()
	ranked := st.ranked[tm]
	if len(ranked) == 0 {
		return nil
	}
	if n > len(ranked) {
		n = len(ranked)
	}
	// The user query's depth profile; terms beyond every head count as
	// maximally deep.
	depths := make([]int, 0, len(userTerms))
	for _, w := range userTerms {
		if r, ok := st.bestRank[w]; ok {
			depths = append(depths, r)
		} else {
			depths = append(depths, len(ranked)-1)
		}
	}
	words := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	maxAttempts := 30 * n
	for attempts := 0; len(words) < n && attempts < maxAttempts; attempts++ {
		target := depths[rng.Intn(len(depths))]
		// Jitter proportional to the target depth (min ±2) so repeated
		// cycles don't expose exact depths while preserving the profile.
		jitter := target / 5
		if jitter < 2 {
			jitter = 2
		}
		r := target + rng.Intn(2*jitter+1) - jitter
		if r < 0 {
			r = 0
		}
		if r >= len(ranked) {
			r = len(ranked) - 1
		}
		w := ranked[r]
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		words = append(words, w)
	}
	return words
}
