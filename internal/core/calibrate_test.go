package core

import (
	"testing"
)

func sampleQueries(f *fixture, n int) [][]string {
	var out [][]string
	for topic := 0; topic < n; topic++ {
		out = append(out, f.topicQuery(topic%8, 10+topic%6))
	}
	return out
}

func TestCalibrateEps2MeetsBudget(t *testing.T) {
	f := getFixture(t)
	sample := sampleQueries(f, 8)
	const eps1 = 0.04
	const budget = 4.0
	eps2, ups, err := CalibrateEps2(f.eng, eps1, budget, sample, 601)
	if err != nil {
		t.Fatal(err)
	}
	if eps2 <= 0 || eps2 > eps1 {
		t.Fatalf("calibrated eps2 = %v outside (0, eps1]", eps2)
	}
	if ups > budget {
		t.Errorf("calibrated mean upsilon %v exceeds budget %v", ups, budget)
	}
	// A generous budget must allow a tighter (smaller) eps2 than a tiny one.
	eps2Tight, _, err := CalibrateEps2(f.eng, eps1, 12, sample, 601)
	if err != nil {
		t.Fatal(err)
	}
	if eps2Tight > eps2 {
		t.Errorf("larger budget should calibrate tighter: %v vs %v", eps2Tight, eps2)
	}
}

func TestCalibrateEps2Validation(t *testing.T) {
	f := getFixture(t)
	sample := sampleQueries(f, 2)
	if _, _, err := CalibrateEps2(nil, 0.05, 4, sample, 1); err == nil {
		t.Error("nil engine must error")
	}
	if _, _, err := CalibrateEps2(f.eng, 0, 4, sample, 1); err == nil {
		t.Error("bad eps1 must error")
	}
	if _, _, err := CalibrateEps2(f.eng, 0.05, 0.5, sample, 1); err == nil {
		t.Error("budget < 1 must error")
	}
	if _, _, err := CalibrateEps2(f.eng, 0.05, 4, nil, 1); err == nil {
		t.Error("empty sample must error")
	}
}

func TestMeasureEpsUpsilonMonotone(t *testing.T) {
	f := getFixture(t)
	sample := sampleQueries(f, 6)
	points, err := MeasureEpsUpsilon(f.eng, 0.04, []float64{0.04, 0.01, 0.005}, sample, 603)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Sorted ascending by eps2; upsilon should be non-increasing in eps2
	// (tight thresholds cost more queries).
	for i := 1; i < len(points); i++ {
		if points[i-1].Eps2 >= points[i].Eps2 {
			t.Fatal("grid not sorted")
		}
	}
	if points[0].Upsilon < points[len(points)-1].Upsilon {
		t.Errorf("tightest eps2 should need the most queries: %+v", points)
	}
	// Points above eps1 are skipped.
	pts, err := MeasureEpsUpsilon(f.eng, 0.01, []float64{0.005, 0.05}, sample, 604)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Errorf("eps2 > eps1 should be skipped: %+v", pts)
	}
	if _, err := MeasureEpsUpsilon(f.eng, 0.01, nil, sample, 1); err == nil {
		t.Error("empty grid must error")
	}
}
