package core

import (
	"fmt"
	"math/rand"
	"sort"

	"toppriv/internal/belief"
)

// CalibrateEps2 inverts the threshold→effort relationship of §IV-A
// ("from the thresholds adjust υ to meet the user requirement"): given
// a fixed ε1 and a per-query budget of at most targetUpsilon queries,
// it finds the tightest ε2 whose mean cycle length over the sample
// workload stays within budget. The search is a bisection over ε2 in
// (0, ε1]; cycle length is monotonically non-increasing in ε2 on
// average, which bisection tolerates noise in via the sample mean.
//
// Returns the calibrated ε2 and the measured mean υ at that setting.
func CalibrateEps2(eng *belief.Engine, eps1 float64, targetUpsilon float64, sample [][]string, seed int64) (float64, float64, error) {
	if eng == nil {
		return 0, 0, fmt.Errorf("core: nil belief engine")
	}
	if eps1 <= 0 || eps1 >= 1 {
		return 0, 0, fmt.Errorf("core: eps1 = %v, need (0,1)", eps1)
	}
	if targetUpsilon < 1 {
		return 0, 0, fmt.Errorf("core: targetUpsilon = %v, need >= 1", targetUpsilon)
	}
	if len(sample) == 0 {
		return 0, 0, fmt.Errorf("core: empty sample workload")
	}

	meanUpsilon := func(eps2 float64) (float64, error) {
		obf, err := NewObfuscator(eng, Params{Eps1: eps1, Eps2: eps2})
		if err != nil {
			return 0, err
		}
		rng := rand.New(rand.NewSource(seed))
		total := 0.0
		for _, q := range sample {
			cyc, err := obf.Obfuscate(q, rng)
			if err != nil {
				return 0, err
			}
			total += float64(cyc.Len())
		}
		return total / float64(len(sample)), nil
	}

	// If even the loosest legal setting (ε2 = ε1) blows the budget,
	// report it with the measured effort so the caller can decide.
	loose, err := meanUpsilon(eps1)
	if err != nil {
		return 0, 0, err
	}
	if loose > targetUpsilon {
		return eps1, loose, nil
	}

	lo, hi := eps1/1000, eps1 // lo: tight (expensive), hi: loose (cheap)
	best, bestUps := hi, loose
	for iter := 0; iter < 12 && hi-lo > eps1/1000; iter++ {
		mid := (lo + hi) / 2
		ups, err := meanUpsilon(mid)
		if err != nil {
			return 0, 0, err
		}
		if ups <= targetUpsilon {
			// Budget holds: try tighter (smaller ε2).
			best, bestUps = mid, ups
			hi = mid
		} else {
			lo = mid
		}
	}
	return best, bestUps, nil
}

// EpsUpsilonCurve measures mean cycle length at each ε2 in the grid —
// the data behind calibration decisions (the paper's Figure 2c).
type EpsUpsilonPoint struct {
	Eps2    float64
	Upsilon float64
}

// MeasureEpsUpsilon evaluates the grid (sorted ascending) against the
// sample workload.
func MeasureEpsUpsilon(eng *belief.Engine, eps1 float64, grid []float64, sample [][]string, seed int64) ([]EpsUpsilonPoint, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("core: empty grid")
	}
	sorted := append([]float64{}, grid...)
	sort.Float64s(sorted)
	out := make([]EpsUpsilonPoint, 0, len(sorted))
	for _, eps2 := range sorted {
		if eps2 > eps1 {
			continue
		}
		obf, err := NewObfuscator(eng, Params{Eps1: eps1, Eps2: eps2})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		total := 0.0
		for _, q := range sample {
			cyc, err := obf.Obfuscate(q, rng)
			if err != nil {
				return nil, err
			}
			total += float64(cyc.Len())
		}
		out = append(out, EpsUpsilonPoint{Eps2: eps2, Upsilon: total / float64(len(sample))})
	}
	return out, nil
}
