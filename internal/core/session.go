package core

import (
	"fmt"
	"math/rand"
)

// Session obfuscates a sequence of queries from one user, keeping the
// user's decoy profile stable: masking topics accepted in earlier
// cycles are preferred in later ones. Without stickiness, a user who
// repeatedly queries the same interest is exposed to cross-cycle
// frequency analysis — her genuine topic recurs in every cycle while
// fresh random masks each appear only once (adversary.Intersection-
// Attack demonstrates this). With stickiness, the decoy topics recur
// exactly like the genuine one, so frequency analysis has nothing to
// separate them by.
//
// This extends the per-query algorithm of §IV-C to the query-log
// threat the paper's adversary actually mounts ("analyze the search
// activity of the users after the fact", §III-B).
//
// A Session is not safe for concurrent use; it models one user's
// client-side state.
type Session struct {
	obf *Obfuscator
	// sticky holds masking topics in order of first adoption.
	sticky []int
	inSet  map[int]bool
	// MaxSticky caps the remembered decoy profile (0 = unlimited).
	MaxSticky int
	// History of per-cycle diagnostics, in query order.
	History []*Cycle
}

// NewSession starts a session over an obfuscator.
func NewSession(obf *Obfuscator) (*Session, error) {
	if obf == nil {
		return nil, fmt.Errorf("core: nil obfuscator")
	}
	return &Session{obf: obf, inSet: make(map[int]bool)}, nil
}

// Obfuscate generates the next cycle, preferring the session's
// established masking topics, and records the cycle in History.
func (s *Session) Obfuscate(userTerms []string, rng *rand.Rand) (*Cycle, error) {
	cyc, err := s.obf.ObfuscateSticky(userTerms, s.sticky, rng)
	if err != nil {
		return nil, err
	}
	for _, tm := range cyc.MaskingTopics {
		if s.inSet[tm] {
			continue
		}
		if s.MaxSticky > 0 && len(s.sticky) >= s.MaxSticky {
			break
		}
		s.inSet[tm] = true
		s.sticky = append(s.sticky, tm)
	}
	s.History = append(s.History, cyc)
	return cyc, nil
}

// StickyTopics returns the session's current decoy profile (copy).
func (s *Session) StickyTopics() []int {
	out := make([]int, len(s.sticky))
	copy(out, s.sticky)
	return out
}

// Reset clears the decoy profile and history (e.g. on a new pseudonym).
func (s *Session) Reset() {
	s.sticky = nil
	s.inSet = make(map[int]bool)
	s.History = nil
}
