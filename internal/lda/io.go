package lda

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// modelWire is the gob wire form of a Model. Keeping it separate from
// the runtime type lets the in-memory layout evolve without breaking
// saved models.
type modelWire struct {
	Version     int
	K, V        int
	Alpha, Beta float64
	Phi         [][]float64
	Theta       [][]float64
	Prior       []float64
	Terms       []string
}

const modelWireVersion = 1

// Save serializes the model with gob.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	err := enc.Encode(modelWire{
		Version: modelWireVersion,
		K:       m.K, V: m.V,
		Alpha: m.Alpha, Beta: m.Beta,
		Phi: m.Phi, Theta: m.Theta, Prior: m.Prior, Terms: m.Terms,
	})
	if err != nil {
		return fmt.Errorf("lda: save: %w", err)
	}
	return bw.Flush()
}

// Load deserializes a model written by Save and validates it.
func Load(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("lda: load: %w", err)
	}
	if wire.Version != modelWireVersion {
		return nil, fmt.Errorf("lda: unsupported model version %d", wire.Version)
	}
	m := &Model{
		K: wire.K, V: wire.V,
		Alpha: wire.Alpha, Beta: wire.Beta,
		Phi: wire.Phi, Theta: wire.Theta, Prior: wire.Prior, Terms: wire.Terms,
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}
