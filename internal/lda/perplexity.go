package lda

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"toppriv/internal/corpus"
)

// Perplexity evaluates the model on held-out documents with the
// document-completion method: the first half of each document's tokens
// folds in to estimate its topic mixture, and the second half is scored
// under p(w|θ̂, Φ) = Σ_t θ̂_t · Φ[t][w]. Lower is better. Tokens whose
// surface form is outside the model vocabulary are skipped (standard
// practice). Returns an error if nothing was scorable.
func Perplexity(m *Model, spec InferSpec, held *corpus.Corpus, rng *rand.Rand) (float64, error) {
	if m == nil {
		return 0, fmt.Errorf("lda: nil model")
	}
	if held == nil || held.Vocab == nil {
		return 0, fmt.Errorf("lda: nil held-out corpus")
	}
	inf, err := NewInferencer(m, spec)
	if err != nil {
		return 0, err
	}
	logSum := 0.0
	tokens := 0
	for d := range held.Bags {
		// Map held-out token IDs into model word IDs by surface form.
		var ids []int
		for _, tid := range held.Bags[d] {
			if mid := m.TermID(held.Vocab.Term(tid)); mid >= 0 {
				ids = append(ids, mid)
			}
		}
		if len(ids) < 2 {
			continue
		}
		half := len(ids) / 2
		observed, eval := ids[:half], ids[half:]
		theta := inf.Posterior(observed, rng)
		for _, w := range eval {
			p := 0.0
			for t := 0; t < m.K; t++ {
				p += theta[t] * m.Phi[t][w]
			}
			if p <= 0 {
				continue
			}
			logSum += math.Log(p)
			tokens++
		}
	}
	if tokens == 0 {
		return 0, fmt.Errorf("lda: no scorable held-out tokens")
	}
	return math.Exp(-logSum / float64(tokens)), nil
}

// KScore is one model-selection measurement.
type KScore struct {
	K          int
	Perplexity float64
}

// SelectK answers the paper's model-sizing question ("we set this
// parameter to roughly the same magnitude as the expected topic
// coverage of the corpus", §IV-B) empirically: it trains one model per
// candidate K on a training split and scores each on held-out
// perplexity, returning the best K and the full curve sorted by K.
func SelectK(c *corpus.Corpus, candidates []int, heldFrac float64, base TrainSpec) (int, []KScore, error) {
	if len(candidates) == 0 {
		return 0, nil, fmt.Errorf("lda: no candidate K values")
	}
	train, held, err := corpus.Split(c, heldFrac, base.Seed+7919)
	if err != nil {
		return 0, nil, err
	}
	scores := make([]KScore, 0, len(candidates))
	bestK := 0
	bestP := math.Inf(1)
	for _, k := range candidates {
		spec := base
		spec.NumTopics = k
		m, _, err := Train(train, spec)
		if err != nil {
			return 0, nil, fmt.Errorf("lda: SelectK train K=%d: %w", k, err)
		}
		p, err := Perplexity(m, InferSpec{}, held, rand.New(rand.NewSource(base.Seed+int64(k))))
		if err != nil {
			return 0, nil, fmt.Errorf("lda: SelectK perplexity K=%d: %w", k, err)
		}
		scores = append(scores, KScore{K: k, Perplexity: p})
		if p < bestP {
			bestP = p
			bestK = k
		}
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].K < scores[j].K })
	return bestK, scores, nil
}
