package lda

import (
	"fmt"
	"math/rand"
)

// InferSpec configures query-time topic inference.
type InferSpec struct {
	// Iterations is the number of fold-in Gibbs sweeps over the query
	// tokens. Zero means 40.
	Iterations int
	// Samples is how many trailing sweeps are averaged to estimate
	// Pr(t|q); zero means 10. Averaging reduces sampling noise, which
	// matters because TopPriv compares boosts against small thresholds.
	Samples int
}

func (s InferSpec) withDefaults() InferSpec {
	if s.Iterations == 0 {
		s.Iterations = 40
	}
	if s.Samples == 0 {
		s.Samples = 10
	}
	return s
}

// Inferencer estimates Pr(t|q) for unseen word bags by folding them in
// against the trained Φ (topic-word distributions held fixed). This is
// the LDA "inference mode" the paper invokes on queries: the user passes
// q alone to the model and reads back the topic posterior.
//
// An Inferencer is safe for concurrent use; each call gets its own
// sampling state, and randomness comes from the caller's *rand.Rand.
type Inferencer struct {
	m    *Model
	spec InferSpec
}

// NewInferencer creates an inferencer over a trained model.
func NewInferencer(m *Model, spec InferSpec) (*Inferencer, error) {
	if m == nil {
		return nil, fmt.Errorf("lda: nil model")
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &Inferencer{m: m, spec: spec.withDefaults()}, nil
}

// Model returns the underlying model.
func (inf *Inferencer) Model() *Model { return inf.m }

// Posterior estimates Pr(t|·) for a bag of model word IDs. An empty bag
// (e.g. a query whose terms are all out of vocabulary) returns the
// model prior, which is the correct Bayesian answer absent evidence.
// The caller provides the RNG so experiments stay deterministic.
func (inf *Inferencer) Posterior(bag []int, rng *rand.Rand) []float64 {
	m := inf.m
	if len(bag) == 0 {
		out := make([]float64, m.K)
		copy(out, m.Prior)
		return out
	}
	k := m.K
	alpha := m.Alpha
	kalpha := float64(k) * alpha

	assign := make([]int, len(bag))
	counts := make([]float64, k)
	for i, w := range bag {
		// Initialize each token at its most compatible topic mixture by
		// sampling from Φ(·|w) ∝ Phi[t][w]; faster mixing than uniform.
		t := sampleTopicForWord(m, w, rng)
		assign[i] = t
		counts[t]++
	}

	probs := make([]float64, k)
	accum := make([]float64, k)
	sampleStart := inf.spec.Iterations - inf.spec.Samples
	if sampleStart < 0 {
		sampleStart = 0
	}
	samplesTaken := 0
	for sweep := 0; sweep < inf.spec.Iterations; sweep++ {
		for i, w := range bag {
			old := assign[i]
			counts[old]--
			total := 0.0
			for t := 0; t < k; t++ {
				p := m.Phi[t][w] * (counts[t] + alpha)
				probs[t] = p
				total += p
			}
			nu := k - 1
			u := rng.Float64() * total
			acc := 0.0
			for t := 0; t < k; t++ {
				acc += probs[t]
				if u < acc {
					nu = t
					break
				}
			}
			assign[i] = nu
			counts[nu]++
		}
		if sweep >= sampleStart {
			denom := float64(len(bag)) + kalpha
			for t := 0; t < k; t++ {
				accum[t] += (counts[t] + alpha) / denom
			}
			samplesTaken++
		}
	}
	out := make([]float64, k)
	for t := 0; t < k; t++ {
		out[t] = accum[t] / float64(samplesTaken)
	}
	return out
}

// PosteriorTerms is Posterior over raw surface terms.
func (inf *Inferencer) PosteriorTerms(terms []string, rng *rand.Rand) []float64 {
	return inf.Posterior(inf.m.BagFromTerms(terms), rng)
}

// sampleTopicForWord draws a topic proportional to Phi[t][w].
func sampleTopicForWord(m *Model, w int, rng *rand.Rand) int {
	total := 0.0
	for t := 0; t < m.K; t++ {
		total += m.Phi[t][w]
	}
	u := rng.Float64() * total
	acc := 0.0
	for t := 0; t < m.K; t++ {
		acc += m.Phi[t][w]
		if u < acc {
			return t
		}
	}
	return m.K - 1
}
