package lda

import (
	"math"
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
)

func TestTrainParallelDelegatesAtOneWorker(t *testing.T) {
	c, _, err := corpus.Synthesize(corpus.GenSpec{Seed: 201, NumDocs: 100, NumTopics: 4, DocLenMin: 30, DocLenMax: 50}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := Train(c, TrainSpec{NumTopics: 4, Iterations: 30, Seed: 201})
	if err != nil {
		t.Fatal(err)
	}
	par, err := TrainParallel(c, TrainSpec{NumTopics: 4, Iterations: 30, Seed: 201}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < seq.K; tt++ {
		for w := 0; w < seq.V; w++ {
			if seq.Phi[tt][w] != par.Phi[tt][w] {
				t.Fatal("workers=1 must be the exact sequential sampler")
			}
		}
	}
}

func TestTrainParallelValidation(t *testing.T) {
	if _, err := TrainParallel(nil, TrainSpec{NumTopics: 4}, 4); err == nil {
		t.Error("nil corpus must error")
	}
	c, _, _ := corpus.Synthesize(corpus.GenSpec{Seed: 1, NumDocs: 10, NumTopics: 3, DocLenMin: 10, DocLenMax: 20}, nil)
	if _, err := TrainParallel(c, TrainSpec{NumTopics: 1}, 4); err == nil {
		t.Error("K=1 must error")
	}
}

func TestTrainParallelQuality(t *testing.T) {
	// AD-LDA is approximate but must converge to a comparable model:
	// distributions valid, and the fitted topics must separate the
	// ground-truth themes about as well as sequential training.
	spec := corpus.GenSpec{Seed: 203, NumDocs: 300, NumTopics: 6, DocLenMin: 50, DocLenMax: 90}
	c, gt, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainParallel(c, TrainSpec{NumTopics: 6, Iterations: 80, Seed: 203}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < m.K; tt++ {
		sum := 0.0
		for w := 0; w < m.V; w++ {
			p := m.Phi[tt][w]
			if p < 0 || math.IsNaN(p) {
				t.Fatalf("invalid Phi[%d]", tt)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("Phi[%d] sums to %v", tt, sum)
		}
	}
	sum := 0.0
	for _, p := range m.Prior {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("Prior sums to %v", sum)
	}
	// Topic recovery: same criterion as the sequential test.
	matched := 0
	an := testAnalyzer()
	for g := 0; g < len(gt.TopicWords); g++ {
		seeds := map[string]bool{}
		for _, w := range gt.TopicWords[g][:15] {
			if term, ok := an.AnalyzeTerm(w); ok {
				seeds[term] = true
			}
		}
		best := 0
		for tt := 0; tt < m.K; tt++ {
			hits := 0
			for _, tw := range m.TopWords(tt, 15) {
				if seeds[tw.Term] {
					hits++
				}
			}
			if hits > best {
				best = hits
			}
		}
		if best >= 6 {
			matched++
		}
	}
	if matched < 4 {
		t.Errorf("parallel training recovered only %d/6 topics", matched)
	}
	// The parallel model must drive inference sensibly: a focused query
	// boosts some topic.
	inf, err := NewInferencer(m, InferSpec{})
	if err != nil {
		t.Fatal(err)
	}
	var terms []string
	for _, w := range gt.TopicWords[0][:16] {
		if term, ok := an.AnalyzeTerm(w); ok {
			terms = append(terms, term)
		}
	}
	post := inf.PosteriorTerms(terms, rand.New(rand.NewSource(1)))
	maxBoost := 0.0
	for tt := range post {
		if b := post[tt] - m.Prior[tt]; b > maxBoost {
			maxBoost = b
		}
	}
	if maxBoost < 0.05 {
		t.Errorf("parallel model inference too weak: max boost %v", maxBoost)
	}
}

func TestTrainParallelMassConservation(t *testing.T) {
	// After all sweeps, total topic assignments must still equal the
	// token count (no lost/duplicated counts across the merge barrier).
	spec := corpus.GenSpec{Seed: 205, NumDocs: 120, NumTopics: 5, DocLenMin: 30, DocLenMax: 60}
	c, _, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainParallel(c, TrainSpec{NumTopics: 5, Iterations: 25, Seed: 205}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Phi rows summing to 1 and Theta rows summing to 1 already depend
	// on count consistency; verify Theta too.
	for d := 0; d < len(m.Theta); d++ {
		sum := 0.0
		for _, p := range m.Theta[d] {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Theta[%d] sums to %v — counts corrupted in merge", d, sum)
		}
	}
}
