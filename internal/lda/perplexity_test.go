package lda

import (
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
)

func TestPerplexityBasics(t *testing.T) {
	c, _, err := corpus.Synthesize(corpus.GenSpec{Seed: 301, NumDocs: 200, NumTopics: 6, DocLenMin: 50, DocLenMax: 90}, nil)
	if err != nil {
		t.Fatal(err)
	}
	train, held, err := corpus.Split(c, 0.25, 301)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumDocs()+held.NumDocs() != c.NumDocs() {
		t.Fatalf("split lost documents: %d + %d != %d", train.NumDocs(), held.NumDocs(), c.NumDocs())
	}
	m, _, err := Train(train, TrainSpec{NumTopics: 6, Iterations: 60, Seed: 301})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Perplexity(m, InferSpec{}, held, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if p <= 1 {
		t.Fatalf("perplexity %v, must exceed 1", p)
	}
	// A uniform model over V words would score ≈ V; a fitted topical
	// model must do much better.
	if p > float64(m.V)/2 {
		t.Errorf("perplexity %v suspiciously close to vocabulary size %d", p, m.V)
	}
}

func TestPerplexityValidation(t *testing.T) {
	c, _, _ := corpus.Synthesize(corpus.GenSpec{Seed: 1, NumDocs: 20, NumTopics: 3, DocLenMin: 20, DocLenMax: 30}, nil)
	m, _, _ := Train(c, TrainSpec{NumTopics: 3, Iterations: 10, Seed: 1})
	if _, err := Perplexity(nil, InferSpec{}, c, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil model must error")
	}
	if _, err := Perplexity(m, InferSpec{}, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil corpus must error")
	}
}

func TestSelectKPrefersAdequateModels(t *testing.T) {
	// A K far below the ground truth must score worse than K near it —
	// the quantitative form of the paper's Table IV observation.
	c, _, err := corpus.Synthesize(corpus.GenSpec{Seed: 307, NumDocs: 300, NumTopics: 8, DocLenMin: 60, DocLenMax: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bestK, scores, err := SelectK(c, []int{2, 8}, 0.25, TrainSpec{Iterations: 60, Seed: 307})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("got %d scores", len(scores))
	}
	if scores[0].K != 2 || scores[1].K != 8 {
		t.Fatalf("scores not sorted by K: %v", scores)
	}
	if scores[0].Perplexity <= scores[1].Perplexity {
		t.Errorf("K=2 perplexity (%v) should exceed K=8 (%v)",
			scores[0].Perplexity, scores[1].Perplexity)
	}
	if bestK != 8 {
		t.Errorf("bestK = %d, want 8", bestK)
	}
}

func TestSelectKValidation(t *testing.T) {
	c, _, _ := corpus.Synthesize(corpus.GenSpec{Seed: 1, NumDocs: 20, NumTopics: 3, DocLenMin: 20, DocLenMax: 30}, nil)
	if _, _, err := SelectK(c, nil, 0.25, TrainSpec{}); err == nil {
		t.Error("no candidates must error")
	}
	if _, _, err := SelectK(c, []int{2}, 0, TrainSpec{}); err == nil {
		t.Error("bad heldFrac must error")
	}
}

func TestSplitProperties(t *testing.T) {
	c, _, err := corpus.Synthesize(corpus.GenSpec{Seed: 311, NumDocs: 100, NumTopics: 4, DocLenMin: 20, DocLenMax: 40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	train, held, err := corpus.Split(c, 0.3, 311)
	if err != nil {
		t.Fatal(err)
	}
	if held.NumDocs() != 30 {
		t.Errorf("held %d docs, want 30", held.NumDocs())
	}
	// Determinism.
	train2, held2, _ := corpus.Split(c, 0.3, 311)
	if train2.NumDocs() != train.NumDocs() || held2.Docs[0].Title != held.Docs[0].Title {
		t.Error("split not deterministic")
	}
	// Token mass conserved.
	if train.TotalTokens()+held.TotalTokens() != c.TotalTokens() {
		t.Error("split lost tokens")
	}
	// Invalid args.
	if _, _, err := corpus.Split(nil, 0.3, 1); err == nil {
		t.Error("nil corpus must error")
	}
	if _, _, err := corpus.Split(c, 1.5, 1); err == nil {
		t.Error("bad fraction must error")
	}
}
