package lda

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"toppriv/internal/corpus"
)

// TrainParallel fits an LDA model with approximate distributed Gibbs
// sampling (AD-LDA, Newman et al.): documents are partitioned across
// workers; within a sweep each worker samples its shard against a
// frozen snapshot of the global word-topic counts plus its local
// deltas, and the deltas merge at the sweep barrier.
//
// The paper notes (§V-A) that training time and memory are the only
// obstacle to scaling the topic model to the full corpus; this is the
// standard engineering answer. The result is statistically equivalent
// to sequential Gibbs but not bit-identical; pass workers = 1 for the
// exact sequential algorithm (it then delegates to Train).
func TrainParallel(c *corpus.Corpus, spec TrainSpec, workers int) (*Model, error) {
	if workers <= 1 {
		m, _, err := Train(c, spec)
		return m, err
	}
	if c == nil || c.Vocab == nil {
		return nil, fmt.Errorf("lda: nil corpus")
	}
	if spec.NumTopics < 2 {
		return nil, fmt.Errorf("lda: NumTopics = %d, need >= 2", spec.NumTopics)
	}
	spec = spec.withDefaults()
	if workers > runtime.NumCPU()*2 {
		workers = runtime.NumCPU() * 2
	}
	k := spec.NumTopics
	v := c.Vocab.Size()
	d := c.NumDocs()
	if v == 0 || d == 0 {
		return nil, fmt.Errorf("lda: empty corpus (docs=%d vocab=%d)", d, v)
	}
	if workers > d {
		workers = d
	}

	// Global state.
	nwt := make([]int32, k*v)
	ndt := make([]int32, d*k)
	nt := make([]int32, k)
	assign := make([][]int32, d)
	initRng := rand.New(rand.NewSource(spec.Seed))
	for di, bag := range c.Bags {
		assign[di] = make([]int32, len(bag))
		for i, w := range bag {
			t := int32(initRng.Intn(k))
			assign[di][i] = t
			nwt[int(t)*v+int(w)]++
			ndt[di*k+int(t)]++
			nt[t]++
		}
	}

	// Shard documents contiguously.
	type shard struct {
		lo, hi int
		rng    *rand.Rand
		// local deltas, reallocated per sweep
		dnwt []int32
		dnt  []int32
	}
	shards := make([]*shard, workers)
	per := (d + workers - 1) / workers
	for s := range shards {
		lo := s * per
		hi := lo + per
		if hi > d {
			hi = d
		}
		shards[s] = &shard{
			lo:   lo,
			hi:   hi,
			rng:  rand.New(rand.NewSource(spec.Seed + int64(s) + 1)),
			dnwt: make([]int32, k*v),
			dnt:  make([]int32, k),
		}
	}

	alpha, beta := spec.Alpha, spec.Beta
	vbeta := float64(v) * beta
	var wg sync.WaitGroup
	for sweep := 0; sweep < spec.Iterations; sweep++ {
		for _, sh := range shards {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				probs := make([]float64, k)
				for di := sh.lo; di < sh.hi; di++ {
					docBase := di * k
					bag := c.Bags[di]
					for i, w := range bag {
						old := assign[di][i]
						wi := int(w)
						// Remove from local view (global snapshot + delta).
						sh.dnwt[int(old)*v+wi]--
						sh.dnt[old]--
						ndt[docBase+int(old)]-- // doc-local: owned by this shard

						total := 0.0
						for t := 0; t < k; t++ {
							nw := float64(nwt[t*v+wi] + sh.dnwt[t*v+wi])
							ntt := float64(nt[t] + sh.dnt[t])
							p := (nw + beta) / (ntt + vbeta) *
								(float64(ndt[docBase+t]) + alpha)
							probs[t] = p
							total += p
						}
						u := sh.rng.Float64() * total
						acc := 0.0
						nu := int32(k - 1)
						for t := 0; t < k; t++ {
							acc += probs[t]
							if u < acc {
								nu = int32(t)
								break
							}
						}
						assign[di][i] = nu
						sh.dnwt[int(nu)*v+wi]++
						sh.dnt[nu]++
						ndt[docBase+int(nu)]++
					}
				}
			}(sh)
		}
		wg.Wait()
		// Merge deltas into the global counts at the sweep barrier.
		for _, sh := range shards {
			for i, delta := range sh.dnwt {
				if delta != 0 {
					nwt[i] += delta
					sh.dnwt[i] = 0
				}
			}
			for t, delta := range sh.dnt {
				if delta != 0 {
					nt[t] += delta
					sh.dnt[t] = 0
				}
			}
		}
	}

	m := &Model{
		K:     k,
		V:     v,
		Alpha: alpha,
		Beta:  beta,
		Phi:   make([][]float64, k),
		Theta: make([][]float64, d),
		Prior: make([]float64, k),
		Terms: c.Vocab.Terms(),
	}
	for t := 0; t < k; t++ {
		row := make([]float64, v)
		denom := float64(nt[t]) + vbeta
		for w := 0; w < v; w++ {
			row[w] = (float64(nwt[t*v+w]) + beta) / denom
		}
		m.Phi[t] = row
	}
	kalpha := float64(k) * alpha
	for di := 0; di < d; di++ {
		row := make([]float64, k)
		denom := float64(len(c.Bags[di])) + kalpha
		for t := 0; t < k; t++ {
			row[t] = (float64(ndt[di*k+t]) + alpha) / denom
			m.Prior[t] += row[t]
		}
		m.Theta[di] = row
	}
	for t := 0; t < k; t++ {
		m.Prior[t] /= float64(d)
	}
	return m, nil
}
