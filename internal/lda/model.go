// Package lda implements Latent Dirichlet Allocation with collapsed
// Gibbs sampling — the topic-model substrate of TopPriv (§IV-B of the
// paper). It substitutes for the GibbsLDA++ 0.2 library the authors
// used, keeping the same hyperparameter defaults (α = 50/K, β = 0.1)
// and the same two outputs:
//
//   - Pr(w|t) for every word w and topic t (which words describe a topic);
//   - Pr(t|d) for every topic t and document d (which topics dominate a
//     document), from which the prior Pr(t) = (1/|D|) Σ_d Pr(t|d) follows
//     (Eq. 1).
//
// A trained Model also supports inference mode: estimating Pr(t|q) for a
// query q that was not part of the training corpus, which is how both
// the TopPriv client and the adversary form topical beliefs.
package lda

import (
	"fmt"
	"sort"

	"toppriv/internal/textproc"
)

// Model is a trained LDA model. It is immutable after training and safe
// for concurrent readers.
type Model struct {
	// K is the number of topics; V the vocabulary size.
	K, V int
	// Alpha and Beta are the Dirichlet hyperparameters used in training.
	Alpha, Beta float64
	// Phi[t][w] = Pr(w|t), each row summing to 1.
	Phi [][]float64
	// Theta[d][t] = Pr(t|d) for the training documents.
	Theta [][]float64
	// Prior[t] = Pr(t), the corpus-wide topic prior of Eq. 1.
	Prior []float64
	// Terms[w] is the surface form of word ID w, aligned with the
	// corpus vocabulary the model was trained on.
	Terms []string

	// termID rebuilds the term -> ID map lazily on load.
	termID map[string]int
}

// TermID returns the model's word ID for a term, or -1 when the term is
// out of vocabulary.
func (m *Model) TermID(term string) int {
	if m.termID == nil {
		m.termID = make(map[string]int, len(m.Terms))
		for i, t := range m.Terms {
			m.termID[t] = i
		}
	}
	if id, ok := m.termID[term]; ok {
		return id
	}
	return -1
}

// BagFromTerms maps surface terms to model word IDs, dropping unknown
// terms. It is how raw query text enters inference.
func (m *Model) BagFromTerms(terms []string) []int {
	bag := make([]int, 0, len(terms))
	for _, t := range terms {
		if id := m.TermID(t); id >= 0 {
			bag = append(bag, id)
		}
	}
	return bag
}

// BagFromIDs converts corpus vocabulary IDs (which equal model word IDs
// when the model was trained on that corpus) into an inference bag.
func (m *Model) BagFromIDs(ids []textproc.TermID) []int {
	bag := make([]int, 0, len(ids))
	for _, id := range ids {
		if int(id) < m.V {
			bag = append(bag, int(id))
		}
	}
	return bag
}

// TermWeight is a word with its probability under some topic.
type TermWeight struct {
	Term   string
	Weight float64
}

// TopWords returns topic t's n most probable words in descending
// probability — the rows of the paper's Tables II–IV.
func (m *Model) TopWords(t, n int) []TermWeight {
	if t < 0 || t >= m.K {
		return nil
	}
	idx := make([]int, m.V)
	for i := range idx {
		idx[i] = i
	}
	row := m.Phi[t]
	sort.Slice(idx, func(a, b int) bool {
		if row[idx[a]] != row[idx[b]] {
			return row[idx[a]] > row[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]TermWeight, n)
	for i := 0; i < n; i++ {
		out[i] = TermWeight{Term: m.Terms[idx[i]], Weight: row[idx[i]]}
	}
	return out
}

// WordDistribution returns Pr(w) under a pure topic vector with
// Pr(t_m) = 1 — the distribution TopPriv's Step 3(b) samples ghost-query
// words from: Pr(w) = Σ_t Pr(w|t)·Pr(t) collapses to Phi[tm].
func (m *Model) WordDistribution(tm int) []float64 {
	if tm < 0 || tm >= m.K {
		return nil
	}
	return m.Phi[tm]
}

// SizeBytes reports the in-memory footprint of the model's numeric
// structures (Φ, Θ, prior) plus the dictionary — the quantity Figure 6
// plots against the inverted-index size. The Φ matrix (K × V float64)
// dominates, and its V dimension plateaus as the corpus grows, which is
// the paper's scaling argument.
func (m *Model) SizeBytes() int64 {
	var n int64
	n += int64(m.K) * int64(m.V) * 8 // Phi
	for _, row := range m.Theta {
		n += int64(len(row)) * 8
	}
	n += int64(len(m.Prior)) * 8
	for _, t := range m.Terms {
		n += int64(len(t)) + 8 // string bytes + map/slice overhead estimate
	}
	return n
}

// ClientSizeBytes reports the footprint of the structures the TopPriv
// client actually ships and holds: Φ (K × V), the prior Pr(t), and the
// dictionary. Θ stays server-side (it is only needed to derive the
// prior once), so the client cost plateaus with the vocabulary even as
// the corpus grows — the sublinear curve of Figure 6.
func (m *Model) ClientSizeBytes() int64 {
	var n int64
	n += int64(m.K) * int64(m.V) * 8 // Phi
	n += int64(m.K) * 8              // Prior
	for _, t := range m.Terms {
		n += int64(len(t)) + 8
	}
	return n
}

// validate checks internal consistency; used by Load and tests.
func (m *Model) validate() error {
	if m.K <= 0 || m.V <= 0 {
		return fmt.Errorf("lda: bad shape K=%d V=%d", m.K, m.V)
	}
	if len(m.Phi) != m.K {
		return fmt.Errorf("lda: Phi has %d rows, want %d", len(m.Phi), m.K)
	}
	for t, row := range m.Phi {
		if len(row) != m.V {
			return fmt.Errorf("lda: Phi[%d] has %d cols, want %d", t, len(row), m.V)
		}
	}
	if len(m.Prior) != m.K {
		return fmt.Errorf("lda: Prior has %d entries, want %d", len(m.Prior), m.K)
	}
	if len(m.Terms) != m.V {
		return fmt.Errorf("lda: Terms has %d entries, want %d", len(m.Terms), m.V)
	}
	return nil
}
