package lda

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
)

// trainSmall fits a model on a small synthetic corpus with clear topics.
func trainSmall(t *testing.T, k int, seed int64) (*Model, *corpus.Corpus, *corpus.GroundTruth) {
	t.Helper()
	spec := corpus.GenSpec{
		Seed:      seed,
		NumDocs:   300,
		NumTopics: 6,
		DocLenMin: 50,
		DocLenMax: 90,
	}
	c, gt, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Train(c, TrainSpec{NumTopics: k, Iterations: 80, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m, c, gt
}

func assertDistribution(t *testing.T, name string, p []float64) {
	t.Helper()
	sum := 0.0
	for i, v := range p {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("%s[%d] = %v", name, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("%s sums to %v", name, sum)
	}
}

func TestTrainShapesAndDistributions(t *testing.T) {
	m, c, _ := trainSmall(t, 6, 1)
	if m.K != 6 || m.V != c.VocabSize() {
		t.Fatalf("shape K=%d V=%d", m.K, m.V)
	}
	for tt := 0; tt < m.K; tt++ {
		assertDistribution(t, "Phi", m.Phi[tt])
	}
	for d := 0; d < 10; d++ {
		assertDistribution(t, "Theta", m.Theta[d])
	}
	assertDistribution(t, "Prior", m.Prior)
	// Paper defaults: alpha = 50/K, beta = 0.1.
	if math.Abs(m.Alpha-50.0/6.0) > 1e-12 || m.Beta != 0.1 {
		t.Errorf("hyperparameters alpha=%v beta=%v", m.Alpha, m.Beta)
	}
}

func TestTrainDeterministic(t *testing.T) {
	m1, _, _ := trainSmall(t, 4, 7)
	m2, _, _ := trainSmall(t, 4, 7)
	for tt := 0; tt < m1.K; tt++ {
		for w := 0; w < m1.V; w++ {
			if m1.Phi[tt][w] != m2.Phi[tt][w] {
				t.Fatalf("Phi differs at (%d,%d) for identical seeds", tt, w)
			}
		}
	}
}

func TestTrainRecoversTopics(t *testing.T) {
	// With K equal to the ground-truth topic count, the fitted topics
	// should separate the themes: for most ground-truth topics, some LDA
	// topic's top words should be dominated by that theme's seeds.
	m, c, gt := trainSmall(t, 6, 3)
	matched := 0
	for g := 0; g < len(gt.TopicWords); g++ {
		// Build the analyzed form of the theme's seed words.
		seeds := map[string]bool{}
		an := textproc.NewAnalyzer()
		for _, w := range gt.TopicWords[g][:15] {
			if term, ok := an.AnalyzeTerm(w); ok {
				seeds[term] = true
			}
		}
		best := 0
		for tt := 0; tt < m.K; tt++ {
			hits := 0
			for _, tw := range m.TopWords(tt, 15) {
				if seeds[tw.Term] {
					hits++
				}
			}
			if hits > best {
				best = hits
			}
		}
		if best >= 6 {
			matched++
		}
	}
	if matched < 4 {
		t.Errorf("only %d/6 ground-truth topics recovered by LDA", matched)
	}
	_ = c
}

func TestTrainLikelihoodImproves(t *testing.T) {
	spec := corpus.GenSpec{Seed: 5, NumDocs: 150, NumTopics: 5, DocLenMin: 40, DocLenMax: 70}
	c, _, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, trace, err := Train(c, TrainSpec{NumTopics: 5, Iterations: 60, Seed: 5, LogEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	ll := trace.LogLikelihood
	if len(ll) != 6 {
		t.Fatalf("expected 6 log points, got %d", len(ll))
	}
	if ll[len(ll)-1] <= ll[0] {
		t.Errorf("log-likelihood did not improve: first %v last %v", ll[0], ll[len(ll)-1])
	}
}

func TestTrainValidation(t *testing.T) {
	if _, _, err := Train(nil, TrainSpec{NumTopics: 4}); err == nil {
		t.Error("nil corpus must error")
	}
	c, _, _ := corpus.Synthesize(corpus.GenSpec{Seed: 1, NumDocs: 10, NumTopics: 3, DocLenMin: 10, DocLenMax: 20}, nil)
	if _, _, err := Train(c, TrainSpec{NumTopics: 1}); err == nil {
		t.Error("K=1 must error")
	}
}

func TestPriorMatchesThetaAverage(t *testing.T) {
	m, _, _ := trainSmall(t, 5, 11)
	for tt := 0; tt < m.K; tt++ {
		sum := 0.0
		for d := range m.Theta {
			sum += m.Theta[d][tt]
		}
		want := sum / float64(len(m.Theta))
		if math.Abs(m.Prior[tt]-want) > 1e-9 {
			t.Fatalf("Prior[%d] = %v, want Eq.1 average %v", tt, m.Prior[tt], want)
		}
	}
}

func TestTopWords(t *testing.T) {
	m, _, _ := trainSmall(t, 5, 13)
	top := m.TopWords(0, 20)
	if len(top) != 20 {
		t.Fatalf("TopWords returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Weight < top[i].Weight {
			t.Fatal("TopWords not sorted")
		}
	}
	if m.TopWords(-1, 5) != nil || m.TopWords(m.K, 5) != nil {
		t.Error("out-of-range topic should return nil")
	}
	if got := m.TopWords(0, m.V+100); len(got) != m.V {
		t.Errorf("oversized n should clamp to V, got %d", len(got))
	}
}

func TestInferencePicksRightTopic(t *testing.T) {
	m, _, gt := trainSmall(t, 6, 17)
	inf, err := NewInferencer(m, InferSpec{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	an := textproc.NewAnalyzer()
	// A query composed purely of finance head words must shift the
	// posterior strongly toward one (the finance-aligned) topic.
	// With the paper's α = 50/K smoothing, a bag of n tokens can shift
	// the posterior by at most n/(n+50); use a long query so the signal
	// clears the smoothing floor.
	var terms []string
	for _, w := range gt.TopicWords[0][:16] {
		if term, ok := an.AnalyzeTerm(w); ok {
			terms = append(terms, term)
		}
	}
	post := inf.PosteriorTerms(terms, rng)
	assertDistribution(t, "posterior", post)
	maxBoost := 0.0
	for tt := range post {
		if b := post[tt] - m.Prior[tt]; b > maxBoost {
			maxBoost = b
		}
	}
	if maxBoost < 0.05 {
		t.Errorf("focused query boosted no topic strongly: max boost %v", maxBoost)
	}
}

func TestInferenceEmptyBagReturnsPrior(t *testing.T) {
	m, _, _ := trainSmall(t, 4, 19)
	inf, _ := NewInferencer(m, InferSpec{})
	rng := rand.New(rand.NewSource(2))
	post := inf.Posterior(nil, rng)
	for tt := range post {
		if post[tt] != m.Prior[tt] {
			t.Fatal("empty bag must return the prior")
		}
	}
	// Unknown terms only -> also prior.
	post = inf.PosteriorTerms([]string{"zzzznotaword"}, rng)
	for tt := range post {
		if post[tt] != m.Prior[tt] {
			t.Fatal("OOV-only query must return the prior")
		}
	}
}

func TestInferenceDeterministicGivenRNG(t *testing.T) {
	m, _, gt := trainSmall(t, 4, 23)
	inf, _ := NewInferencer(m, InferSpec{})
	terms := gt.TopicWords[1][:4]
	p1 := inf.PosteriorTerms(terms, rand.New(rand.NewSource(99)))
	p2 := inf.PosteriorTerms(terms, rand.New(rand.NewSource(99)))
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("inference not deterministic under a fixed RNG")
		}
	}
}

func TestNewInferencerValidation(t *testing.T) {
	if _, err := NewInferencer(nil, InferSpec{}); err == nil {
		t.Error("nil model must error")
	}
	if _, err := NewInferencer(&Model{K: 0}, InferSpec{}); err == nil {
		t.Error("invalid model must error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, _, _ := trainSmall(t, 4, 29)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.K != m.K || m2.V != m.V || m2.Alpha != m.Alpha || m2.Beta != m.Beta {
		t.Fatal("scalar fields lost")
	}
	for tt := 0; tt < m.K; tt++ {
		for w := 0; w < m.V; w++ {
			if m.Phi[tt][w] != m2.Phi[tt][w] {
				t.Fatal("Phi lost in round trip")
			}
		}
	}
	if m2.TermID(m.Terms[0]) != 0 {
		t.Error("TermID lookup broken after load")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage must be rejected")
	}
}

func TestSizeBytesDominatedByPhi(t *testing.T) {
	m, _, _ := trainSmall(t, 6, 31)
	min := int64(m.K) * int64(m.V) * 8
	if m.SizeBytes() < min {
		t.Errorf("SizeBytes %d below Phi floor %d", m.SizeBytes(), min)
	}
}

func TestBagFromTermsAndIDs(t *testing.T) {
	m, c, _ := trainSmall(t, 4, 37)
	terms := []string{m.Terms[0], "zzz-not-present", m.Terms[1]}
	bag := m.BagFromTerms(terms)
	if len(bag) != 2 || bag[0] != 0 || bag[1] != 1 {
		t.Errorf("BagFromTerms = %v", bag)
	}
	ids := c.Bags[0]
	bag2 := m.BagFromIDs(ids)
	if len(bag2) != len(ids) {
		t.Errorf("BagFromIDs dropped in-vocabulary ids: %d vs %d", len(bag2), len(ids))
	}
}

// testAnalyzer returns the default analyzer for test helpers.
func testAnalyzer() *textproc.Analyzer { return textproc.NewAnalyzer() }
