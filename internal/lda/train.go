package lda

import (
	"fmt"
	"math"
	"math/rand"

	"toppriv/internal/corpus"
)

// TrainSpec configures collapsed Gibbs training.
type TrainSpec struct {
	// NumTopics is K, the number of latent topics (required).
	NumTopics int
	// Alpha is the document-topic Dirichlet hyperparameter. Zero means
	// the paper's default, 50/K.
	Alpha float64
	// Beta is the topic-word Dirichlet hyperparameter. Zero means the
	// paper's default, 0.1.
	Beta float64
	// Iterations is the number of full Gibbs sweeps. Zero means 150.
	Iterations int
	// Seed makes training deterministic.
	Seed int64
	// LogEvery, when > 0, records the corpus log-likelihood every that
	// many sweeps into the returned TrainTrace.
	LogEvery int
}

func (s TrainSpec) withDefaults() TrainSpec {
	if s.Alpha == 0 {
		s.Alpha = 50 / float64(s.NumTopics)
	}
	if s.Beta == 0 {
		s.Beta = 0.1
	}
	if s.Iterations == 0 {
		s.Iterations = 150
	}
	return s
}

// TrainTrace records training diagnostics.
type TrainTrace struct {
	// LogLikelihood holds the per-token log-likelihood at each logged
	// sweep (ascending is healthy).
	LogLikelihood []float64
}

// Train fits an LDA model to the corpus with collapsed Gibbs sampling.
// Φ and Θ are estimated from the final sample's counts, matching the
// GibbsLDA++ behaviour the paper relies on.
func Train(c *corpus.Corpus, spec TrainSpec) (*Model, *TrainTrace, error) {
	if c == nil || c.Vocab == nil {
		return nil, nil, fmt.Errorf("lda: nil corpus")
	}
	if spec.NumTopics < 2 {
		return nil, nil, fmt.Errorf("lda: NumTopics = %d, need >= 2", spec.NumTopics)
	}
	spec = spec.withDefaults()
	k := spec.NumTopics
	v := c.Vocab.Size()
	d := c.NumDocs()
	if v == 0 || d == 0 {
		return nil, nil, fmt.Errorf("lda: empty corpus (docs=%d vocab=%d)", d, v)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Gibbs state: topic assignment per token, plus count matrices.
	// nwt[t*v+w]: tokens of word w assigned topic t.
	// ndt[d*k+t]: tokens of doc d assigned topic t.
	// nt[t]: tokens assigned topic t.
	nwt := make([]int32, k*v)
	ndt := make([]int32, d*k)
	nt := make([]int32, k)

	assign := make([][]int32, d)
	for di, bag := range c.Bags {
		assign[di] = make([]int32, len(bag))
		for i, w := range bag {
			t := int32(rng.Intn(k))
			assign[di][i] = t
			nwt[int(t)*v+int(w)]++
			ndt[di*k+int(t)]++
			nt[t]++
		}
	}

	alpha, beta := spec.Alpha, spec.Beta
	vbeta := float64(v) * beta
	probs := make([]float64, k)
	trace := &TrainTrace{}

	for sweep := 0; sweep < spec.Iterations; sweep++ {
		for di, bag := range c.Bags {
			docBase := di * k
			for i, w := range bag {
				old := assign[di][i]
				wi := int(w)
				nwt[int(old)*v+wi]--
				ndt[docBase+int(old)]--
				nt[old]--

				total := 0.0
				for t := 0; t < k; t++ {
					p := (float64(nwt[t*v+wi]) + beta) / (float64(nt[t]) + vbeta) *
						(float64(ndt[docBase+t]) + alpha)
					probs[t] = p
					total += p
				}
				u := rng.Float64() * total
				acc := 0.0
				nu := int32(k - 1)
				for t := 0; t < k; t++ {
					acc += probs[t]
					if u < acc {
						nu = int32(t)
						break
					}
				}
				assign[di][i] = nu
				nwt[int(nu)*v+wi]++
				ndt[docBase+int(nu)]++
				nt[nu]++
			}
		}
		if spec.LogEvery > 0 && (sweep+1)%spec.LogEvery == 0 {
			trace.LogLikelihood = append(trace.LogLikelihood,
				logLikelihood(c, nwt, ndt, nt, k, v, alpha, beta))
		}
	}

	m := &Model{
		K:     k,
		V:     v,
		Alpha: alpha,
		Beta:  beta,
		Phi:   make([][]float64, k),
		Theta: make([][]float64, d),
		Prior: make([]float64, k),
		Terms: c.Vocab.Terms(),
	}
	for t := 0; t < k; t++ {
		row := make([]float64, v)
		denom := float64(nt[t]) + vbeta
		for w := 0; w < v; w++ {
			row[w] = (float64(nwt[t*v+w]) + beta) / denom
		}
		m.Phi[t] = row
	}
	kalpha := float64(k) * alpha
	for di := 0; di < d; di++ {
		row := make([]float64, k)
		denom := float64(len(c.Bags[di])) + kalpha
		for t := 0; t < k; t++ {
			row[t] = (float64(ndt[di*k+t]) + alpha) / denom
			m.Prior[t] += row[t]
		}
		m.Theta[di] = row
	}
	for t := 0; t < k; t++ {
		m.Prior[t] /= float64(d)
	}
	return m, trace, nil
}

// logLikelihood estimates the per-token log-likelihood of the corpus
// under the current Gibbs state.
func logLikelihood(c *corpus.Corpus, nwt, ndt []int32, nt []int32, k, v int, alpha, beta float64) float64 {
	vbeta := float64(v) * beta
	kalpha := float64(k) * alpha
	ll := 0.0
	tokens := 0
	for di, bag := range c.Bags {
		docBase := di * k
		docDenom := float64(len(bag)) + kalpha
		for _, w := range bag {
			wi := int(w)
			p := 0.0
			for t := 0; t < k; t++ {
				phi := (float64(nwt[t*v+wi]) + beta) / (float64(nt[t]) + vbeta)
				theta := (float64(ndt[docBase+t]) + alpha) / docDenom
				p += phi * theta
			}
			ll += math.Log(p)
			tokens++
		}
	}
	if tokens == 0 {
		return 0
	}
	return ll / float64(tokens)
}
