package cluster

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/search"
	"toppriv/internal/segment"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// synthDocs mirrors the segment package's test corpus: topic-skewed
// synthetic documents with enough vocabulary overlap to make ranking
// non-trivial.
func synthDocs(t testing.TB, n int, seed int64) []corpus.Document {
	t.Helper()
	c, _, err := corpus.Synthesize(corpus.GenSpec{
		Seed: seed, NumDocs: n, NumTopics: 6, DocLenMin: 30, DocLenMax: 60,
	}, textproc.NewAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	return c.Docs
}

// queryFrom builds a query from consecutive words of a document.
func queryFrom(doc corpus.Document, start, n int) string {
	fields := splitWords(doc.Text)
	if len(fields) == 0 {
		return ""
	}
	start %= len(fields)
	end := start + n
	if end > len(fields) {
		end = len(fields)
	}
	out := ""
	for _, w := range fields[start:end] {
		out += w + " "
	}
	return out
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' || r == '\n' || r == '\t' || r == '.' || r == ',' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// testCluster is an in-process cluster: n shard stores, each mounted
// on its own search.Server behind an httptest listener, fronted by a
// Router — real HTTP, real JSON, separate vocabularies.
type testCluster struct {
	router  *Router
	shards  []*Shard
	stores  []*segment.Store
	servers []*httptest.Server
}

func newTestCluster(t testing.TB, scoring vsm.Scoring, n int, cfg Config) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		st, err := segment.Open(segment.Config{
			Scoring:  scoring,
			Analyzer: textproc.NewAnalyzer(),
			// Tiny threshold so even small corpora exercise sealed
			// segments and merges inside each shard.
			SealThreshold:     6,
			DisableCompaction: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		sh := NewShard(st)
		srv, err := search.NewServer(st, nil)
		if err != nil {
			t.Fatal(err)
		}
		sh.Mount(srv)
		ts := httptest.NewServer(srv)
		tc.stores = append(tc.stores, st)
		tc.shards = append(tc.shards, sh)
		tc.servers = append(tc.servers, ts)
		urls[i] = ts.URL
	}
	t.Cleanup(tc.close)
	cfg.Shards = urls
	if cfg.Analyzer == nil {
		cfg.Analyzer = textproc.NewAnalyzer()
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = 10 * time.Second
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = r
	return tc
}

func (tc *testCluster) close() {
	for _, ts := range tc.servers {
		ts.Close()
	}
	for _, st := range tc.stores {
		st.Close()
	}
}

// TestClusterEquivalenceProperty is the distributed tier's correctness
// anchor, the cross-process form of the segment store's merge
// equivalence property: for random interleavings of routed adds,
// routed deletes, and shard-local flush/compact, every query against a
// 3-shard cluster must return exactly the documents — and the same
// scores to within 1e-9 — as a from-scratch single index.Build over
// the survivors. Checked for both scorers, all three execution modes,
// full retrieval and top-k.
func TestClusterEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial HTTP property test")
	}
	for _, scoring := range []vsm.Scoring{vsm.Cosine, vsm.BM25} {
		scoring := scoring
		t.Run(scoring.String(), func(t *testing.T) {
			for trial := int64(0); trial < 2; trial++ {
				runClusterTrial(t, scoring, trial)
			}
		})
	}
}

func runClusterTrial(t *testing.T, scoring vsm.Scoring, trial int64) {
	t.Helper()
	tc := newTestCluster(t, scoring, 3, Config{})
	r := tc.router
	an := textproc.NewAnalyzer()
	docs := synthDocs(t, 60, 300+trial)
	rng := rand.New(rand.NewSource(9000 + trial))

	type entry struct {
		gid corpus.DocID
		doc corpus.Document
	}
	var alive []entry
	i := 0
	for i < len(docs) {
		// Routed batch add of 1–3 documents.
		n := 1 + rng.Intn(3)
		if i+n > len(docs) {
			n = len(docs) - i
		}
		gids, err := r.Add(docs[i : i+n]...)
		if err != nil {
			t.Fatalf("trial %d: add: %v", trial, err)
		}
		for j, gid := range gids {
			alive = append(alive, entry{gid: gid, doc: docs[i+j]})
		}
		i += n
		for rng.Float64() < 0.25 && len(alive) > 1 {
			j := rng.Intn(len(alive))
			if err := r.Delete(alive[j].gid); err != nil {
				t.Fatalf("trial %d: delete %d: %v", trial, alive[j].gid, err)
			}
			alive = append(alive[:j], alive[j+1:]...)
		}
		if rng.Intn(10) == 0 {
			// Shard-local segment churn: results must be layout-invariant.
			st := tc.stores[rng.Intn(len(tc.stores))]
			if rng.Intn(2) == 0 {
				if err := st.Flush(); err != nil {
					t.Fatal(err)
				}
			} else if err := st.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(alive) < 10 {
		t.Fatalf("trial %d: only %d survivors", trial, len(alive))
	}

	// Reference: one index over the survivors in global-ID order.
	refDocs := make([]corpus.Document, len(alive))
	gidToRef := make(map[corpus.DocID]corpus.DocID, len(alive))
	for j, e := range alive {
		refDocs[j] = corpus.Document{Title: e.doc.Title, Text: e.doc.Text}
		gidToRef[e.gid] = corpus.DocID(j)
	}
	refCorpus, err := corpus.Build(refDocs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	refIdx, err := index.Build(refCorpus)
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := vsm.NewEngine(refIdx, an, scoring)
	if err != nil {
		t.Fatal(err)
	}

	queries := make([]string, 0, 12)
	for q := 0; q < 10; q++ {
		queries = append(queries, queryFrom(docs[rng.Intn(len(docs))], rng.Intn(25), 3+rng.Intn(4)))
	}
	queries = append(queries, "zzzzunseenterm", "")

	modes := []vsm.ExecMode{vsm.ExecExhaustive, vsm.ExecMaxScore, vsm.ExecBlockMax}
	for _, q := range queries {
		terms := an.Analyze(q)
		for _, mode := range modes {
			for _, k := range []int{5, len(alive) + 5} {
				resp, err := r.SearchRequest(context.Background(),
					vsm.Request{Terms: terms, K: k, Mode: mode})
				if err != nil {
					t.Fatalf("trial %d query %q mode %s: %v", trial, q, mode, err)
				}
				if resp.Degraded {
					t.Fatalf("trial %d query %q: degraded with all shards healthy: %+v",
						trial, q, resp.Shards)
				}
				want := refEng.SearchTerms(terms, k)
				got := resp.Hits
				if len(got) != len(want) {
					t.Fatalf("trial %d query %q mode %s k=%d: cluster %d docs, reference %d",
						trial, q, mode, k, len(got), len(want))
				}
				if k > len(alive) {
					// Full retrieval: exact document-set and per-document
					// score agreement.
					gotScores := make(map[corpus.DocID]float64, len(got))
					for _, res := range got {
						ref, ok := gidToRef[res.Doc]
						if !ok {
							t.Fatalf("trial %d query %q: cluster returned dead/unknown doc %d",
								trial, q, res.Doc)
						}
						gotScores[ref] = res.Score
					}
					for _, res := range want {
						gs, ok := gotScores[res.Doc]
						if !ok {
							t.Fatalf("trial %d query %q: reference doc %d missing from cluster results",
								trial, q, res.Doc)
						}
						if math.Abs(gs-res.Score) > 1e-9 {
							t.Fatalf("trial %d query %q doc %d: cluster %.12f, reference %.12f",
								trial, q, res.Doc, gs, res.Score)
						}
					}
				} else {
					// Top-k: rank-by-rank score agreement (exact FP ties
					// may order differently across placements).
					for j := range got {
						if math.Abs(got[j].Score-want[j].Score) > 1e-9 {
							t.Fatalf("trial %d query %q mode %s rank %d: cluster %.12f, reference %.12f",
								trial, q, mode, j, got[j].Score, want[j].Score)
						}
					}
				}
			}
		}
	}

	// The aggregate stats surface must agree with the reference on the
	// collection-level numbers.
	stats := r.ComputeStats()
	if stats.NumDocs != len(alive) {
		t.Fatalf("trial %d: cluster reports %d docs, %d survive", trial, stats.NumDocs, len(alive))
	}
}

// TestClusterDocRoundTrip: routed fetch, title resolution (cache and
// cold-miss paths), and delete-then-404.
func TestClusterDocRoundTrip(t *testing.T) {
	tc := newTestCluster(t, vsm.Cosine, 3, Config{})
	r := tc.router
	docs := synthDocs(t, 12, 42)
	gids, err := r.Add(docs...)
	if err != nil {
		t.Fatal(err)
	}
	for i, gid := range gids {
		got, ok := r.Doc(gid)
		if !ok {
			t.Fatalf("doc %d not found after add", gid)
		}
		if got.ID != gid || got.Text != docs[i].Text {
			t.Fatalf("doc %d round-trip mismatch", gid)
		}
		title, ok := r.Title(gid)
		if !ok || title != docs[i].Title {
			t.Fatalf("title %d: got %q ok=%v, want %q", gid, title, ok, docs[i].Title)
		}
	}
	// A fresh router over the same shards starts with a cold title
	// cache; Title must fall back to the owning shard.
	r2, err := New(Config{Shards: routerShardNames(r), Analyzer: textproc.NewAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	if title, ok := r2.Title(gids[0]); !ok || title != docs[0].Title {
		t.Fatalf("cold title: got %q ok=%v, want %q", title, ok, docs[0].Title)
	}
	// And it must resume gid assignment above the existing high-water.
	more, err := r2.Add(docs[0])
	if err != nil {
		t.Fatal(err)
	}
	if more[0] != gids[len(gids)-1]+1 {
		t.Fatalf("restarted router assigned gid %d, want %d", more[0], gids[len(gids)-1]+1)
	}

	if err := r.Delete(gids[3]); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Doc(gids[3]); ok {
		t.Fatalf("doc %d still fetchable after delete", gids[3])
	}
	if err := r.Delete(gids[3]); err == nil {
		t.Fatal("double delete did not error")
	}
	if err := r.Delete(99999); err == nil {
		t.Fatal("deleting unknown gid did not error")
	}
}

func routerShardNames(r *Router) []string {
	names := make([]string, len(r.shards))
	for i, c := range r.shards {
		names[i] = c.name
	}
	return names
}

// TestClusterRejectsMixedScoring: a router must refuse a cluster whose
// shards disagree on the scoring function — merged statistics cannot
// make a bm25 shard and a cosine shard comparable.
func TestClusterRejectsMixedScoring(t *testing.T) {
	tcA := newTestCluster(t, vsm.Cosine, 1, Config{})
	tcB := newTestCluster(t, vsm.BM25, 1, Config{})
	_, err := New(Config{
		Shards:   []string{tcA.servers[0].URL, tcB.servers[0].URL},
		Analyzer: textproc.NewAnalyzer(),
	})
	if err == nil {
		t.Fatal("mixed-scoring cluster accepted")
	}
}
