package cluster

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"toppriv/internal/corpus"
)

// jdoc builds a small ingest record payload.
func jdoc(gid corpus.DocID, shard, title string) ingestDoc {
	return ingestDoc{Gid: gid, Doc: corpus.Document{Title: title, Text: "text of " + title}}
}

func appendRecords(t *testing.T, j *journal, recs []journalRecord) []journalRecord {
	t.Helper()
	out := make([]journalRecord, len(recs))
	for i, rec := range recs {
		if err := j.Append(&rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		out[i] = rec
	}
	return out
}

func sampleRecords() []journalRecord {
	return []journalRecord{
		{Base: 0, Burn: 3, Places: []placeEntry{
			{Shard: "http://a", Docs: []ingestDoc{jdoc(0, "a", "alpha"), jdoc(2, "a", "gamma")}},
			{Shard: "http://b", Docs: []ingestDoc{jdoc(1, "b", "beta")}},
		}},
		{Delete: &deleteEntry{Shard: "http://b", Gid: 1}},
		{Base: 3, Burn: 1, Places: []placeEntry{
			{Shard: "http://b", Docs: []ingestDoc{jdoc(3, "b", "delta")}},
		}},
	}
}

func recJSON(t *testing.T, rec journalRecord) string {
	t.Helper()
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, st, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.NextSeq != 1 || len(st.Pending) != 0 {
		t.Fatalf("fresh journal state: %+v", st)
	}
	want := appendRecords(t, j, sampleRecords())
	if want[0].Seq != 1 || want[2].Seq != 3 {
		t.Fatalf("seq assignment: %d, %d, %d", want[0].Seq, want[1].Seq, want[2].Seq)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, st2, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st2.TornBytes != 0 {
		t.Fatalf("clean journal reports %d torn bytes", st2.TornBytes)
	}
	if st2.NextSeq != 4 {
		t.Fatalf("NextSeq = %d, want 4", st2.NextSeq)
	}
	if st2.NextGid != 4 {
		t.Fatalf("NextGid = %d, want 4", st2.NextGid)
	}
	if len(st2.Pending) != len(want) {
		t.Fatalf("replayed %d pending, want %d", len(st2.Pending), len(want))
	}
	for i := range want {
		if recJSON(t, st2.Pending[i]) != recJSON(t, want[i]) {
			t.Fatalf("record %d changed across replay:\n got %s\nwant %s",
				i, recJSON(t, st2.Pending[i]), recJSON(t, want[i]))
		}
	}
	// Titles fold from placements, deletes evict.
	if st2.Titles[0] != "alpha" || st2.Titles[3] != "delta" {
		t.Fatalf("titles: %+v", st2.Titles)
	}
	if _, ok := st2.Titles[1]; ok {
		t.Fatal("deleted gid 1 still has a title")
	}
	// Seq continuity: the next append must not reuse a sequence number.
	rec := journalRecord{Delete: &deleteEntry{Shard: "http://a", Gid: 0}}
	if err := j2.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 4 {
		t.Fatalf("post-replay append got seq %d, want 4", rec.Seq)
	}
}

func TestJournalTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := appendRecords(t, j, sampleRecords())
	j.Close()

	path := filepath.Join(dir, journalName)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A torn frame: a plausible header promising more payload than the
	// file holds, as a crash mid-append leaves behind.
	torn := append(append([]byte{}, clean...), 0xEE, 0x01, 0x00, 0x00, 0xde, 0xad)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, st, err := openJournal(dir)
	if err != nil {
		t.Fatalf("torn tail must replay, got %v", err)
	}
	if st.TornBytes != 6 {
		t.Fatalf("TornBytes = %d, want 6", st.TornBytes)
	}
	if len(st.Pending) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(st.Pending), len(want))
	}
	j2.Close()
	// Reopen truncated the tail: the file is byte-identical to the
	// clean journal again.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, clean) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", len(after), len(clean))
	}
}

// TestJournalByteFlipSweep is the satellite's corruption oracle: for
// every byte of a saved journal, flipping one bit must either (a) fail
// replay loudly, or (b) replay a strict prefix of the original records
// with the cut reported as torn bytes. A record that differs from what
// was appended must never come back.
func TestJournalByteFlipSweep(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := appendRecords(t, j, sampleRecords())
	j.Close()
	wantJSON := make([]string, len(want))
	for i := range want {
		wantJSON[i] = recJSON(t, want[i])
	}
	clean, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}

	for off := 0; off < len(clean); off++ {
		fdir := t.TempDir()
		mut := append([]byte{}, clean...)
		mut[off] ^= 0x10
		if err := os.WriteFile(filepath.Join(fdir, journalName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, st, err := openJournal(fdir)
		if err != nil {
			// Loud failure is a correct outcome — but it must mention the
			// journal, not be some incidental I/O error.
			if !strings.Contains(err.Error(), "journal") {
				t.Fatalf("offset %d: unexpected error shape: %v", off, err)
			}
			continue
		}
		// Replay succeeded: every recovered record must be byte-identical
		// to the original at its position — a prefix, possibly with a
		// reported torn tail, never a mutated or reordered record.
		if len(st.Pending) > len(want) {
			j2.Close()
			t.Fatalf("offset %d: replayed %d records from a %d-record journal", off, len(st.Pending), len(want))
		}
		for i := range st.Pending {
			if got := recJSON(t, st.Pending[i]); got != wantJSON[i] {
				j2.Close()
				t.Fatalf("offset %d: record %d corrupted silently:\n got %s\nwant %s", off, i, got, wantJSON[i])
			}
		}
		if len(st.Pending) < len(want) && st.TornBytes == 0 {
			j2.Close()
			t.Fatalf("offset %d: dropped %d record(s) silently (no torn-tail report)",
				off, len(want)-len(st.Pending))
		}
		j2.Close()
	}
}

// TestJournalTruncationSweep cuts the WAL at every possible length:
// replay must always recover the longest clean prefix and report any
// mid-frame cut, never error (truncation is exactly what a crash
// produces) and never resurrect a cut record.
func TestJournalTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := appendRecords(t, j, sampleRecords())
	j.Close()
	wantJSON := make([]string, len(want))
	for i := range want {
		wantJSON[i] = recJSON(t, want[i])
	}
	clean, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}

	prevReplayed := 0
	for cut := 0; cut <= len(clean); cut++ {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, journalName), clean[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, st, err := openJournal(fdir)
		if err != nil {
			t.Fatalf("cut %d: truncated journal must replay, got %v", cut, err)
		}
		for i := range st.Pending {
			if got := recJSON(t, st.Pending[i]); got != wantJSON[i] {
				t.Fatalf("cut %d: record %d corrupted: %s", cut, i, got)
			}
		}
		if cut == len(clean) && len(st.Pending) != len(want) {
			t.Fatalf("full-length file replayed %d of %d records", len(st.Pending), len(want))
		}
		if len(st.Pending) < prevReplayed {
			t.Fatalf("cut %d: replayed %d records, shorter than cut %d's %d", cut, len(st.Pending), cut-1, prevReplayed)
		}
		prevReplayed = len(st.Pending)
		j2.Close()
	}
}

func TestJournalCompactionAndSeqDedup(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := appendRecords(t, j, sampleRecords())
	// Records 1 and 2 are shard-durable; record 3 stays pending.
	carried := []journalRecord{recs[2]}
	titles := map[corpus.DocID]string{0: "alpha", 2: "gamma", 3: "delta"}
	if err := j.Compact(4, carried, titles); err != nil {
		t.Fatal(err)
	}
	if j.Size() != int64(len(journalMagic)) {
		t.Fatalf("WAL not reset after compaction: %d bytes", j.Size())
	}
	// More traffic after the snapshot.
	tail := appendRecords(t, j, []journalRecord{
		{Base: 4, Burn: 1, Places: []placeEntry{{Shard: "http://a", Docs: []ingestDoc{jdoc(4, "a", "epsilon")}}}},
	})
	j.Close()

	j2, st, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st.NextGid != 5 {
		t.Fatalf("NextGid = %d, want 5", st.NextGid)
	}
	if len(st.Pending) != 2 {
		t.Fatalf("pending = %d records, want 2 (snapshot carry + tail)", len(st.Pending))
	}
	if recJSON(t, st.Pending[0]) != recJSON(t, recs[2]) || recJSON(t, st.Pending[1]) != recJSON(t, tail[0]) {
		t.Fatalf("pending mismatch: %+v", st.Pending)
	}
	if st.NextSeq != 5 {
		t.Fatalf("NextSeq = %d, want 5", st.NextSeq)
	}
	if st.Titles[3] != "delta" || st.Titles[4] != "epsilon" {
		t.Fatalf("titles across compaction: %+v", st.Titles)
	}
}

// TestJournalCrashHook drives the kill-after-N-bytes hook: the append
// is cut mid-frame, the journal poisons itself, and reopen recovers
// everything durable with the partial frame reported and truncated.
func TestJournalCrashHook(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := appendRecords(t, j, sampleRecords()[:2])
	j.CrashAfter(j.Size() + 7) // mid-frame of the next append
	rec := sampleRecords()[2]
	if err := j.Append(&rec); err != errJournalCrash {
		t.Fatalf("append past crash point: err = %v, want errJournalCrash", err)
	}
	if err := j.Append(&rec); err != errJournalCrash {
		t.Fatalf("poisoned journal accepted an append: %v", err)
	}
	j.Close()

	j2, st, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st.TornBytes != 7 {
		t.Fatalf("TornBytes = %d, want 7", st.TornBytes)
	}
	if len(st.Pending) != 2 {
		t.Fatalf("replayed %d records, want the 2 durable ones", len(st.Pending))
	}
	for i := range want {
		if recJSON(t, st.Pending[i]) != recJSON(t, want[i]) {
			t.Fatalf("record %d mismatch after crash", i)
		}
	}
	// The crashed record was never acknowledged; its seq is reusable.
	if st.NextSeq != 3 {
		t.Fatalf("NextSeq = %d, want 3", st.NextSeq)
	}
}
