package cluster

import (
	"context"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/search"
	"toppriv/internal/segment"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// pShard is a persistent shard a test can crash and restart while its
// HTTP address stays stable: the httptest server delegates to whatever
// Shard currently backs it, so a "process restart" is a handler swap
// plus a fresh OpenShard over the same directory.
type pShard struct {
	t       testing.TB
	dir     string
	scoring vsm.Scoring

	mu      sync.Mutex
	shard   *Shard
	handler http.Handler
	down    bool

	ts *httptest.Server
}

func newPShard(t testing.TB, scoring vsm.Scoring) *pShard {
	t.Helper()
	p := &pShard{t: t, dir: t.TempDir(), scoring: scoring}
	p.start()
	p.ts = httptest.NewServer(p)
	t.Cleanup(func() {
		p.ts.Close()
		p.mu.Lock()
		sh := p.shard
		p.mu.Unlock()
		if sh != nil {
			crashShard(sh)
		}
	})
	return p
}

func (p *pShard) storeCfg() segment.Config {
	return segment.Config{
		Scoring:           p.scoring,
		Analyzer:          textproc.NewAnalyzer(),
		SealThreshold:     6,
		DisableCompaction: true,
	}
}

// start opens (or recovers) the shard from p.dir. The background saver
// is effectively disabled so tests control durability points exactly.
func (p *pShard) start() {
	sh, err := OpenShard(p.storeCfg(), ShardConfig{
		Dir:          p.dir,
		SaveEvery:    1 << 30,
		SaveInterval: time.Hour,
	})
	if err != nil {
		p.t.Fatalf("open shard in %s: %v", p.dir, err)
	}
	srv, err := search.NewServer(sh.Store(), nil)
	if err != nil {
		p.t.Fatal(err)
	}
	sh.Mount(srv)
	p.mu.Lock()
	p.shard = sh
	p.handler = srv
	p.down = false
	p.mu.Unlock()
}

func (p *pShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	h, down := p.handler, p.down
	p.mu.Unlock()
	if down || h == nil {
		http.Error(w, "shard down", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// crashShard abandons a shard kill -9 style: the saver goroutine stops
// but nothing is flushed — whatever the last Save captured is all that
// survives.
func crashShard(s *Shard) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.closeCh)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// crash kills the shard process without saving and marks it down.
func (p *pShard) crash() {
	p.mu.Lock()
	sh := p.shard
	p.shard = nil
	p.handler = nil
	p.down = true
	p.mu.Unlock()
	if sh != nil {
		crashShard(sh)
	}
}

// save takes an explicit durability point.
func (p *pShard) save() {
	p.mu.Lock()
	sh := p.shard
	p.mu.Unlock()
	if sh == nil {
		p.t.Fatal("save on crashed shard")
	}
	if err := sh.Save(); err != nil {
		p.t.Fatalf("shard save: %v", err)
	}
}

func (p *pShard) isDown() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// pCluster is the crashable cluster: persistent shards plus a
// journaled router the test can also crash and rebuild from disk.
type pCluster struct {
	t          testing.TB
	shards     []*pShard
	journalDir string
	cfg        Config
	router     *Router
}

func newPCluster(t testing.TB, scoring vsm.Scoring, n int, cfg Config) *pCluster {
	t.Helper()
	pc := &pCluster{t: t, journalDir: t.TempDir()}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		p := newPShard(t, scoring)
		pc.shards = append(pc.shards, p)
		urls[i] = p.ts.URL
	}
	cfg.Shards = urls
	cfg.JournalDir = pc.journalDir
	cfg.DisableHealthLoop = true
	if cfg.Analyzer == nil {
		cfg.Analyzer = textproc.NewAnalyzer()
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = 5 * time.Second
	}
	cfg.Logf = t.Logf
	pc.cfg = cfg
	pc.router = pc.openRouter()
	t.Cleanup(func() { pc.router.Close() })
	return pc
}

func (pc *pCluster) openRouter() *Router {
	r, err := New(pc.cfg)
	if err != nil {
		pc.t.Fatalf("open router: %v", err)
	}
	return r
}

// crashRouter abandons the router kill -9 style and rebuilds a fresh
// one from the journal directory.
func (pc *pCluster) crashRouter() {
	pc.router.journal.Close() // release the fd; contents are as the crash left them
	pc.router = pc.openRouter()
}

// settle restarts anything down and drives catch-up until no shard
// lags the journal.
func (pc *pCluster) settle() {
	for _, p := range pc.shards {
		if p.isDown() {
			p.start()
		}
	}
	r := pc.router
	for i := 0; i < 50; i++ {
		r.Probe()
		r.ingestMu.Lock()
		lag := false
		for _, c := range r.shards {
			if r.shardLagsLocked(c) {
				lag = true
			}
		}
		r.ingestMu.Unlock()
		if !lag {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	pc.t.Fatal("cluster did not settle: shards still lag the journal")
}

// TestClusterCrashAnywhereProperty is the PR's acceptance anchor: a
// randomized schedule of journaled ingests and deletes interleaved
// with shard kill -9s (with and without prior saves), shard downtime
// windows, router crashes, injected journal crash points, and a seeded
// fault transport (resets, delays, cut acknowledgements, blackholes).
// After recovery the cluster must hold every acknowledged document
// under its exact gid with its exact content, hold nothing it
// acknowledged deleting, and score every query within 1e-9 of a
// never-crashed single-index rebuild over the survivors.
func TestClusterCrashAnywhereProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial crash-recovery property test")
	}
	for _, scoring := range []vsm.Scoring{vsm.Cosine, vsm.BM25} {
		scoring := scoring
		t.Run(scoring.String(), func(t *testing.T) {
			for trial := int64(0); trial < 2; trial++ {
				runCrashTrial(t, scoring, trial)
			}
		})
	}
}

func runCrashTrial(t *testing.T, scoring vsm.Scoring, trial int64) {
	t.Helper()
	ft := NewFaultTransport(nil, FaultPlan{
		Seed:     7100 + trial,
		Reset:    0.04,
		Delay:    0.03,
		Partial:  0.03,
		DelayFor: 5 * time.Millisecond,
	})
	pc := newPCluster(t, scoring, 3, Config{
		Deadline:         2 * time.Second,
		MutationDeadline: 2 * time.Second,
		HTTPClient:       &http.Client{Transport: ft},
	})
	rng := rand.New(rand.NewSource(4200 + trial))
	docs := synthDocs(t, 70, 500+trial)

	acked := make(map[corpus.DocID]corpus.Document)
	deleted := make(map[corpus.DocID]bool)
	var order []corpus.DocID

	crashes, routerCrashes := 0, 0
	i := 0
	for i < len(docs) {
		n := 1 + rng.Intn(3)
		if i+n > len(docs) {
			n = len(docs) - i
		}
		gids, err := pc.router.Add(docs[i : i+n]...)
		if err != nil {
			// Journal append failed (an injected crash point): the batch
			// was never acknowledged. The router process is dead — rebuild
			// it from disk and move on; the batch may be retried later by
			// virtue of the loop not advancing i.
			t.Logf("trial %d: add not acked (%v); rebuilding router", trial, err)
			pc.crashRouter()
			routerCrashes++
			continue
		}
		for j, gid := range gids {
			acked[gid] = docs[i+j]
			order = append(order, gid)
		}
		i += n

		if rng.Float64() < 0.2 && len(order) > 1 {
			gid := order[rng.Intn(len(order))]
			if !deleted[gid] {
				if err := pc.router.Delete(gid); err != nil {
					t.Logf("trial %d: delete %d not acked (%v); rebuilding router", trial, gid, err)
					pc.crashRouter()
					routerCrashes++
				} else {
					deleted[gid] = true
				}
			}
		}

		switch ev := rng.Float64(); {
		case ev < 0.10:
			// Durability point on a random live shard.
			p := pc.shards[rng.Intn(len(pc.shards))]
			if !p.isDown() {
				p.save()
			}
		case ev < 0.18:
			// kill -9 a shard; sometimes it saved recently, sometimes not.
			p := pc.shards[rng.Intn(len(pc.shards))]
			if !p.isDown() {
				if rng.Intn(2) == 0 {
					p.save()
				}
				p.crash()
				crashes++
				if rng.Intn(2) == 0 {
					p.start() // immediate restart; else a downtime window
				}
			}
		case ev < 0.23:
			// kill -9 the router between mutations.
			pc.crashRouter()
			routerCrashes++
		case ev < 0.27:
			// Arm a journal crash point a few bytes into a future append.
			pc.router.journal.CrashAfter(pc.router.journal.Size() + int64(3+rng.Intn(40)))
		}

		if rng.Float64() < 0.3 {
			for _, p := range pc.shards {
				if p.isDown() && rng.Intn(2) == 0 {
					p.start()
				}
			}
			pc.router.Probe()
		}
	}

	// Final recovery: faults off, one more router restart from disk,
	// everything restarted, full catch-up. (The harness stays armed only
	// for the chaos phase — verification must read the real state.)
	ft.Disarm()
	pc.crashRouter()
	routerCrashes++
	pc.settle()
	r := pc.router

	// Survivor bookkeeping.
	type entry struct {
		gid corpus.DocID
		doc corpus.Document
	}
	var alive []entry
	for _, gid := range order {
		if !deleted[gid] {
			alive = append(alive, entry{gid: gid, doc: acked[gid]})
		}
	}
	sort.Slice(alive, func(a, b int) bool { return alive[a].gid < alive[b].gid })
	if len(alive) < 10 {
		t.Fatalf("trial %d: only %d survivors", trial, len(alive))
	}
	t.Logf("trial %d: %d acked, %d deleted, %d shard crashes, %d router rebuilds",
		trial, len(acked), len(deleted), crashes, routerCrashes)

	// No acked document lost, none aliased: every surviving gid resolves
	// to exactly the content acknowledged under it.
	for _, e := range alive {
		got, ok := r.Doc(e.gid)
		if !ok {
			t.Fatalf("trial %d: acked doc %d lost after recovery", trial, e.gid)
		}
		if got.Text != e.doc.Text || got.Title != e.doc.Title {
			t.Fatalf("trial %d: gid %d aliased: got title %q, acked %q", trial, e.gid, got.Title, e.doc.Title)
		}
	}
	for gid := range deleted {
		if _, ok := r.Doc(gid); ok {
			t.Fatalf("trial %d: gid %d still resolves after acked delete", trial, gid)
		}
	}

	// Score equality with a never-crashed rebuild over the survivors.
	an := textproc.NewAnalyzer()
	refDocs := make([]corpus.Document, len(alive))
	gidToRef := make(map[corpus.DocID]corpus.DocID, len(alive))
	for j, e := range alive {
		refDocs[j] = corpus.Document{Title: e.doc.Title, Text: e.doc.Text}
		gidToRef[e.gid] = corpus.DocID(j)
	}
	refCorpus, err := corpus.Build(refDocs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	refIdx, err := index.Build(refCorpus)
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := vsm.NewEngine(refIdx, an, scoring)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 8; q++ {
		terms := an.Analyze(queryFrom(docs[rng.Intn(len(docs))], rng.Intn(25), 3+rng.Intn(4)))
		for _, k := range []int{5, len(alive) + 5} {
			resp, err := r.SearchRequest(context.Background(), vsm.Request{Terms: terms, K: k})
			if err != nil {
				t.Fatalf("trial %d: search: %v", trial, err)
			}
			if resp.Degraded {
				t.Fatalf("trial %d: degraded search after full recovery: %+v", trial, resp.Shards)
			}
			want := refEng.SearchTerms(terms, k)
			if len(resp.Hits) != len(want) {
				t.Fatalf("trial %d k=%d: cluster %d hits, reference %d", trial, k, len(resp.Hits), len(want))
			}
			if k > len(alive) {
				gotScores := make(map[corpus.DocID]float64, len(resp.Hits))
				for _, res := range resp.Hits {
					ref, ok := gidToRef[res.Doc]
					if !ok {
						t.Fatalf("trial %d: cluster returned dead/unknown doc %d", trial, res.Doc)
					}
					gotScores[ref] = res.Score
				}
				for _, res := range want {
					gs, ok := gotScores[res.Doc]
					if !ok {
						t.Fatalf("trial %d: reference doc %d missing from recovered cluster", trial, res.Doc)
					}
					if math.Abs(gs-res.Score) > 1e-9 {
						t.Fatalf("trial %d doc %d: cluster %.12f, reference %.12f", trial, res.Doc, gs, res.Score)
					}
				}
			} else {
				for j := range resp.Hits {
					if math.Abs(resp.Hits[j].Score-want[j].Score) > 1e-9 {
						t.Fatalf("trial %d rank %d: cluster %.12f, reference %.12f",
							trial, j, resp.Hits[j].Score, want[j].Score)
					}
				}
			}
		}
	}

	h := r.ClusterHealth()
	if !h.Journaled {
		t.Fatalf("trial %d: health does not report journaling", trial)
	}
	if crashes > 0 {
		total := uint64(0)
		for _, sh := range h.Shards {
			total += sh.Restarts
		}
		// The final router rebuild resets per-process counters, so only
		// restarts observed by the *current* router process are counted
		// here — crashes during its lifetime may be zero. The stats
		// surface itself must still be wired.
		t.Logf("trial %d: current router observed %d shard restarts, %d recoveries, journal %d bytes",
			trial, total, h.Recoveries, h.JournalBytes)
	}
}

// TestShardPersistRestartEquivalence pins the persistent-shard half in
// isolation: save, kill -9, reopen — the recovered shard must answer
// stats, fetches, and searches exactly like its never-crashed self.
func TestShardPersistRestartEquivalence(t *testing.T) {
	pc := newPCluster(t, vsm.BM25, 3, Config{})
	r := pc.router
	docs := synthDocs(t, 40, 911)
	gids, err := r.Add(docs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(gids[5]); err != nil {
		t.Fatal(err)
	}

	terms := textproc.NewAnalyzer().Analyze(queryFrom(docs[3], 2, 4))
	before, err := r.SearchRequest(context.Background(), vsm.Request{Terms: terms, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	beforeStats := r.ComputeStats()

	// Save everything, kill every shard, restart from disk.
	for _, p := range pc.shards {
		p.save()
		p.crash()
		p.start()
	}
	pc.settle()

	after, err := r.SearchRequest(context.Background(), vsm.Request{Terms: terms, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Hits) != len(before.Hits) {
		t.Fatalf("hits changed across restart: %d -> %d", len(before.Hits), len(after.Hits))
	}
	for i := range after.Hits {
		if after.Hits[i].Doc != before.Hits[i].Doc || math.Abs(after.Hits[i].Score-before.Hits[i].Score) > 1e-12 {
			t.Fatalf("rank %d changed across restart: %+v -> %+v", i, before.Hits[i], after.Hits[i])
		}
	}
	afterStats := r.ComputeStats()
	if afterStats.NumDocs != beforeStats.NumDocs {
		t.Fatalf("doc count changed across restart: %d -> %d", beforeStats.NumDocs, afterStats.NumDocs)
	}
	for i, gid := range gids {
		if gid == gids[5] {
			continue
		}
		got, ok := r.Doc(gid)
		if !ok || got.Text != docs[i].Text {
			t.Fatalf("doc %d wrong after restart (ok=%v)", gid, ok)
		}
	}
	if _, ok := r.Doc(gids[5]); ok {
		t.Fatal("deleted doc resurrected by restart")
	}
}

// TestShardMetaLagRecovery reproduces the one crash window the shard
// save order leaves open: the store saved but the gid-table write was
// lost, so the store holds documents the mapping does not. Recovery
// must tombstone the unmapped tail and the router must re-drive it.
func TestShardMetaLagRecovery(t *testing.T) {
	pc := newPCluster(t, vsm.Cosine, 1, Config{})
	r := pc.router
	p := pc.shards[0]
	docs := synthDocs(t, 12, 77)

	if _, err := r.Add(docs[:6]...); err != nil {
		t.Fatal(err)
	}
	p.save()
	stale, err := os.ReadFile(filepath.Join(p.dir, shardMetaName))
	if err != nil {
		t.Fatal(err)
	}
	gids2, err := r.Add(docs[6:]...)
	if err != nil {
		t.Fatal(err)
	}
	p.save()
	// Rewind the meta one save: the store now runs ahead of the mapping.
	if err := os.WriteFile(filepath.Join(p.dir, shardMetaName), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	p.crash()
	p.start()
	pc.settle()

	for i, gid := range gids2 {
		got, ok := r.Doc(gid)
		if !ok {
			t.Fatalf("doc %d lost to the meta-lag crash window", gid)
		}
		if got.Text != docs[6+i].Text {
			t.Fatalf("doc %d aliased after meta-lag recovery", gid)
		}
	}
	st := r.ComputeStats()
	if st.NumDocs != len(docs) {
		t.Fatalf("cluster reports %d docs, want %d", st.NumDocs, len(docs))
	}
}

// TestRouterTitleCacheBounded pins the satellite: the gid → title
// cache evicts past its cap and evicted titles still resolve through
// the owning shard.
func TestRouterTitleCacheBounded(t *testing.T) {
	pc := newPCluster(t, vsm.Cosine, 2, Config{TitleCacheSize: 8})
	r := pc.router
	docs := synthDocs(t, 30, 55)
	gids, err := r.Add(docs...)
	if err != nil {
		t.Fatal(err)
	}
	r.titleMu.RLock()
	size := len(r.titles)
	_, oldestCached := r.titles[gids[0]]
	r.titleMu.RUnlock()
	if size > 8 {
		t.Fatalf("title cache holds %d entries, cap 8", size)
	}
	if oldestCached {
		t.Fatal("lowest gid survived eviction")
	}
	// Evicted titles resolve via the shard fetch fallback — and Doc()
	// always resolves regardless of the cache.
	title, ok := r.Title(gids[0])
	if !ok || title != docs[0].Title {
		t.Fatalf("evicted title: got %q ok=%v, want %q", title, ok, docs[0].Title)
	}
	if _, ok := r.Doc(gids[0]); !ok {
		t.Fatal("Doc() failed for evicted gid")
	}
}

// TestRouterStartsWithShardDown: with a journal, a down shard at
// startup is tolerated; mutations to it are journaled and applied when
// it rejoins, counting a recovery.
func TestRouterStartsWithShardDown(t *testing.T) {
	pc := newPCluster(t, vsm.BM25, 2, Config{})
	docs := synthDocs(t, 16, 33)
	if _, err := pc.router.Add(docs[:8]...); err != nil {
		t.Fatal(err)
	}
	pc.shards[1].crash() // down, unsaved: everything must come back from the journal
	pc.crashRouter()     // router restart with a shard down must succeed

	gids, err := pc.router.Add(docs[8:]...)
	if err != nil {
		t.Fatalf("journaled add with a shard down: %v", err)
	}
	pc.settle()
	for i, gid := range gids {
		got, ok := pc.router.Doc(gid)
		if !ok || got.Text != docs[8+i].Text {
			t.Fatalf("doc %d not recovered on rejoined shard (ok=%v)", gid, ok)
		}
	}
	st := pc.router.ComputeStats()
	if st.NumDocs != len(docs) {
		t.Fatalf("cluster reports %d docs, want %d", st.NumDocs, len(docs))
	}
	h := pc.router.ClusterHealth()
	if h.Recoveries == 0 {
		t.Fatal("no recovery counted after shard rejoin")
	}
	if h.PendingRecords == 0 {
		// In-memory durability never confirms for unsaved shards, but
		// these shards are persistent: after a save the records prune.
		for _, p := range pc.shards {
			p.save()
		}
		pc.router.Probe()
	}
}
