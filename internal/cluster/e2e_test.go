package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/search"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// TestClusterEndToEnd drives the real binary: three searchd -shard
// processes and one -router process, a routed corpus split, the
// store-vs-rebuild score-equality oracle over plain HTTP, and a
// kill-one-shard degradation check. It is the CI integration job's
// workload; set TOPPRIV_CLUSTER_E2E=1 to run it (it builds the binary
// and forks four processes, too heavy for every `go test`).
func TestClusterEndToEnd(t *testing.T) {
	if os.Getenv("TOPPRIV_CLUSTER_E2E") != "1" {
		t.Skip("set TOPPRIV_CLUSTER_E2E=1 to run the multi-process cluster test")
	}

	bin := filepath.Join(t.TempDir(), "searchd")
	build := exec.Command("go", "build", "-o", bin, "toppriv/cmd/searchd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building searchd: %v", err)
	}

	addrs := make([]string, 4)
	for i := range addrs {
		addrs[i] = freeAddr(t)
	}
	shardURLs := []string{"http://" + addrs[0], "http://" + addrs[1], "http://" + addrs[2]}
	routerURL := "http://" + addrs[3]

	var procs []*exec.Cmd
	startProc := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %v: %v", args, err)
		}
		procs = append(procs, cmd)
		return cmd
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	})

	for i := 0; i < 3; i++ {
		startProc("-shard", "-bm25", "-addr", addrs[i])
	}
	for _, u := range shardURLs {
		waitReady(t, u+"/cluster/stats")
	}
	startProc("-router", "-shards", shardURLs[0]+","+shardURLs[1]+","+shardURLs[2],
		"-addr", addrs[3], "-shard-deadline", "2s", "-shard-retries", "2")
	waitReady(t, routerURL+"/stats")

	// Ingest through the router (which splits the corpus across the
	// shards by ring placement), with a few deletes for tombstones.
	an := textproc.NewAnalyzer()
	docs := synthDocs(t, 60, 20)
	var ir search.IndexResponse
	postJSON(t, routerURL+"/index", search.IndexRequest{Docs: docs}, &ir)
	if len(ir.IDs) != len(docs) {
		t.Fatalf("ingest assigned %d ids for %d docs", len(ir.IDs), len(docs))
	}
	type entry struct {
		gid corpus.DocID
		doc corpus.Document
	}
	var alive []entry
	for i, gid := range ir.IDs {
		alive = append(alive, entry{gid: gid, doc: docs[i]})
	}
	for _, drop := range []int{3, 17, 31, 44} {
		req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/doc/%d", routerURL, alive[drop].gid), nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete %d: status %d", alive[drop].gid, resp.StatusCode)
		}
		alive = append(alive[:drop], alive[drop+1:]...)
	}

	// Reference: a single from-scratch index over the survivors.
	refDocs := make([]corpus.Document, len(alive))
	gidToRef := make(map[corpus.DocID]corpus.DocID, len(alive))
	for i, e := range alive {
		refDocs[i] = corpus.Document{Title: e.doc.Title, Text: e.doc.Text}
		gidToRef[e.gid] = corpus.DocID(i)
	}
	refCorpus, err := corpus.Build(refDocs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	refIdx, err := index.Build(refCorpus)
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := vsm.NewEngine(refIdx, an, vsm.BM25)
	if err != nil {
		t.Fatal(err)
	}

	queries := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		queries = append(queries, queryFrom(docs[i*7], i*3, 4))
	}

	const k = 10
	full := make(map[string][]search.SearchHit, len(queries))
	for _, q := range queries {
		for _, mode := range []string{"exhaustive", "maxscore", "blockmax"} {
			var sr search.SearchResponse
			postJSON(t, routerURL+"/search", search.SearchRequest{Query: q, K: len(alive), Exec: mode}, &sr)
			if sr.Degraded {
				t.Fatalf("query %q degraded with all shards up: %+v", q, sr.Shards)
			}
			want := refEng.SearchTerms(an.Analyze(q), len(alive))
			if len(sr.Hits) != len(want) {
				t.Fatalf("query %q mode %s: cluster %d hits, rebuild %d", q, mode, len(sr.Hits), len(want))
			}
			// Full retrieval: exact document-set and per-document score
			// agreement (rank order on exact FP ties may differ).
			gotScores := make(map[corpus.DocID]float64, len(sr.Hits))
			for _, hit := range sr.Hits {
				ref, ok := gidToRef[hit.Doc]
				if !ok {
					t.Fatalf("query %q: dead/unknown doc %d in results", q, hit.Doc)
				}
				gotScores[ref] = hit.Score
			}
			for _, res := range want {
				gs, ok := gotScores[res.Doc]
				if !ok {
					t.Fatalf("query %q mode %s: rebuild doc %d missing from cluster results", q, mode, res.Doc)
				}
				if math.Abs(gs-res.Score) > 1e-9 {
					t.Fatalf("query %q mode %s doc %d: cluster %.12f, rebuild %.12f",
						q, mode, res.Doc, gs, res.Score)
				}
			}
			if mode == "exhaustive" {
				full[q] = sr.Hits
			}
		}
	}

	// Kill shard 1 outright and query again: merged survivor results,
	// Degraded set, within the router's deadline, never an error.
	procs[1].Process.Kill()
	procs[1].Wait()
	time.Sleep(100 * time.Millisecond)

	r := newRing(shardURLs)
	for _, q := range queries {
		start := time.Now()
		var sr search.SearchResponse
		postJSON(t, routerURL+"/search", search.SearchRequest{Query: q, K: k}, &sr)
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("degraded query %q took %v", q, elapsed)
		}
		if !sr.Degraded {
			t.Fatalf("query %q not degraded after shard kill", q)
		}
		want := make([]search.SearchHit, 0, k)
		for _, hit := range full[q] {
			if r.place(hit.Doc) == 1 {
				continue
			}
			want = append(want, hit)
			if len(want) == k {
				break
			}
		}
		if len(sr.Hits) != len(want) {
			t.Fatalf("degraded query %q: %d hits, want %d survivors", q, len(sr.Hits), len(want))
		}
		for i := range want {
			if sr.Hits[i].Doc != want[i].Doc || sr.Hits[i].Score != want[i].Score {
				t.Fatalf("degraded query %q rank %d: doc %d score %.12f, want doc %d score %.12f",
					q, i, sr.Hits[i].Doc, sr.Hits[i].Score, want[i].Doc, want[i].Score)
			}
		}
	}

	// The router's stats surface reports the kill.
	var stats search.StatsResponse
	getJSON(t, routerURL+"/stats", &stats)
	if stats.Cluster == nil {
		t.Fatal("router /stats has no cluster section")
	}
	downs := 0
	for _, sh := range stats.Cluster.Shards {
		if !sh.Up {
			downs++
		}
	}
	if downs != 1 || stats.Cluster.Degraded == 0 {
		t.Fatalf("cluster health after kill: %d down, %d degraded cycles", downs, stats.Cluster.Degraded)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s not ready after 10s", url)
}

func postJSON(t *testing.T, url string, in, out interface{}) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, msg.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
}

func getJSON(t *testing.T, url string, out interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
