package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/search"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// TestClusterEndToEnd drives the real binary: three searchd -shard
// processes and one -router process, a routed corpus split, the
// store-vs-rebuild score-equality oracle over plain HTTP, and a
// kill-one-shard degradation check. It is the CI integration job's
// workload; set TOPPRIV_CLUSTER_E2E=1 to run it (it builds the binary
// and forks four processes, too heavy for every `go test`).
func TestClusterEndToEnd(t *testing.T) {
	if os.Getenv("TOPPRIV_CLUSTER_E2E") != "1" {
		t.Skip("set TOPPRIV_CLUSTER_E2E=1 to run the multi-process cluster test")
	}

	bin := filepath.Join(t.TempDir(), "searchd")
	build := exec.Command("go", "build", "-o", bin, "toppriv/cmd/searchd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building searchd: %v", err)
	}

	addrs := make([]string, 4)
	for i := range addrs {
		addrs[i] = freeAddr(t)
	}
	shardURLs := []string{"http://" + addrs[0], "http://" + addrs[1], "http://" + addrs[2]}
	routerURL := "http://" + addrs[3]

	var procs []*exec.Cmd
	startProc := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %v: %v", args, err)
		}
		procs = append(procs, cmd)
		return cmd
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	})

	for i := 0; i < 3; i++ {
		startProc("-shard", "-bm25", "-addr", addrs[i])
	}
	for _, u := range shardURLs {
		waitReady(t, u+"/cluster/stats")
	}
	startProc("-router", "-shards", shardURLs[0]+","+shardURLs[1]+","+shardURLs[2],
		"-addr", addrs[3], "-shard-deadline", "2s", "-shard-retries", "2")
	waitReady(t, routerURL+"/stats")

	// Ingest through the router (which splits the corpus across the
	// shards by ring placement), with a few deletes for tombstones.
	an := textproc.NewAnalyzer()
	docs := synthDocs(t, 60, 20)
	var ir search.IndexResponse
	postJSON(t, routerURL+"/index", search.IndexRequest{Docs: docs}, &ir)
	if len(ir.IDs) != len(docs) {
		t.Fatalf("ingest assigned %d ids for %d docs", len(ir.IDs), len(docs))
	}
	type entry struct {
		gid corpus.DocID
		doc corpus.Document
	}
	var alive []entry
	for i, gid := range ir.IDs {
		alive = append(alive, entry{gid: gid, doc: docs[i]})
	}
	for _, drop := range []int{3, 17, 31, 44} {
		req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/doc/%d", routerURL, alive[drop].gid), nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete %d: status %d", alive[drop].gid, resp.StatusCode)
		}
		alive = append(alive[:drop], alive[drop+1:]...)
	}

	// Reference: a single from-scratch index over the survivors.
	refDocs := make([]corpus.Document, len(alive))
	gidToRef := make(map[corpus.DocID]corpus.DocID, len(alive))
	for i, e := range alive {
		refDocs[i] = corpus.Document{Title: e.doc.Title, Text: e.doc.Text}
		gidToRef[e.gid] = corpus.DocID(i)
	}
	refCorpus, err := corpus.Build(refDocs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	refIdx, err := index.Build(refCorpus)
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := vsm.NewEngine(refIdx, an, vsm.BM25)
	if err != nil {
		t.Fatal(err)
	}

	queries := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		queries = append(queries, queryFrom(docs[i*7], i*3, 4))
	}

	const k = 10
	full := make(map[string][]search.SearchHit, len(queries))
	for _, q := range queries {
		for _, mode := range []string{"exhaustive", "maxscore", "blockmax"} {
			var sr search.SearchResponse
			postJSON(t, routerURL+"/search", search.SearchRequest{Query: q, K: len(alive), Exec: mode}, &sr)
			if sr.Degraded {
				t.Fatalf("query %q degraded with all shards up: %+v", q, sr.Shards)
			}
			want := refEng.SearchTerms(an.Analyze(q), len(alive))
			if len(sr.Hits) != len(want) {
				t.Fatalf("query %q mode %s: cluster %d hits, rebuild %d", q, mode, len(sr.Hits), len(want))
			}
			// Full retrieval: exact document-set and per-document score
			// agreement (rank order on exact FP ties may differ).
			gotScores := make(map[corpus.DocID]float64, len(sr.Hits))
			for _, hit := range sr.Hits {
				ref, ok := gidToRef[hit.Doc]
				if !ok {
					t.Fatalf("query %q: dead/unknown doc %d in results", q, hit.Doc)
				}
				gotScores[ref] = hit.Score
			}
			for _, res := range want {
				gs, ok := gotScores[res.Doc]
				if !ok {
					t.Fatalf("query %q mode %s: rebuild doc %d missing from cluster results", q, mode, res.Doc)
				}
				if math.Abs(gs-res.Score) > 1e-9 {
					t.Fatalf("query %q mode %s doc %d: cluster %.12f, rebuild %.12f",
						q, mode, res.Doc, gs, res.Score)
				}
			}
			if mode == "exhaustive" {
				full[q] = sr.Hits
			}
		}
	}

	// Kill shard 1 outright and query again: merged survivor results,
	// Degraded set, within the router's deadline, never an error.
	procs[1].Process.Kill()
	procs[1].Wait()
	time.Sleep(100 * time.Millisecond)

	r := newRing(shardURLs)
	for _, q := range queries {
		start := time.Now()
		var sr search.SearchResponse
		postJSON(t, routerURL+"/search", search.SearchRequest{Query: q, K: k}, &sr)
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("degraded query %q took %v", q, elapsed)
		}
		if !sr.Degraded {
			t.Fatalf("query %q not degraded after shard kill", q)
		}
		want := make([]search.SearchHit, 0, k)
		for _, hit := range full[q] {
			if r.place(hit.Doc) == 1 {
				continue
			}
			want = append(want, hit)
			if len(want) == k {
				break
			}
		}
		if len(sr.Hits) != len(want) {
			t.Fatalf("degraded query %q: %d hits, want %d survivors", q, len(sr.Hits), len(want))
		}
		for i := range want {
			if sr.Hits[i].Doc != want[i].Doc || sr.Hits[i].Score != want[i].Score {
				t.Fatalf("degraded query %q rank %d: doc %d score %.12f, want doc %d score %.12f",
					q, i, sr.Hits[i].Doc, sr.Hits[i].Score, want[i].Doc, want[i].Score)
			}
		}
	}

	// The router's stats surface reports the kill.
	var stats search.StatsResponse
	getJSON(t, routerURL+"/stats", &stats)
	if stats.Cluster == nil {
		t.Fatal("router /stats has no cluster section")
	}
	downs := 0
	for _, sh := range stats.Cluster.Shards {
		if !sh.Up {
			downs++
		}
	}
	if downs != 1 || stats.Cluster.Degraded == 0 {
		t.Fatalf("cluster health after kill: %d down, %d degraded cycles", downs, stats.Cluster.Degraded)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s not ready after 10s", url)
}

func postJSON(t *testing.T, url string, in, out interface{}) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, msg.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
}

func getJSON(t *testing.T, url string, out interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestClusterCrashRecoveryE2E is the durability half of the CI
// integration job: three persistent searchd -shard processes and a
// journaled -router, with SIGKILL delivered to one shard and to the
// router mid-ingest. Both come back from disk and the test asserts
// the three recovery guarantees end to end: document counts, gid
// stability (every acked gid still resolves to its exact document,
// every acked delete stays deleted), and store-vs-rebuild score
// equality over the survivors. It also exercises the graceful path:
// SIGTERM must drain, save, and exit 0. Set TOPPRIV_CLUSTER_E2E=1 to
// run it.
func TestClusterCrashRecoveryE2E(t *testing.T) {
	if os.Getenv("TOPPRIV_CLUSTER_E2E") != "1" {
		t.Skip("set TOPPRIV_CLUSTER_E2E=1 to run the multi-process crash-recovery test")
	}

	bin := filepath.Join(t.TempDir(), "searchd")
	build := exec.Command("go", "build", "-o", bin, "toppriv/cmd/searchd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building searchd: %v", err)
	}

	root := t.TempDir()
	dataDirs := make([]string, 3)
	addrs := make([]string, 4)
	for i := range addrs {
		addrs[i] = freeAddr(t)
	}
	shardURLs := make([]string, 3)
	for i := range dataDirs {
		dataDirs[i] = filepath.Join(root, fmt.Sprintf("shard%d", i))
		shardURLs[i] = "http://" + addrs[i]
	}
	journalDir := filepath.Join(root, "journal")
	routerURL := "http://" + addrs[3]

	procs := make(map[string]*exec.Cmd)
	start := func(role string, args ...string) {
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s %v: %v", role, args, err)
		}
		procs[role] = cmd
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	})
	shardArgs := func(i int) []string {
		return []string{"-shard", "-bm25", "-data", dataDirs[i], "-addr", addrs[i]}
	}
	routerArgs := []string{"-router", "-shards", strings.Join(shardURLs, ","),
		"-addr", addrs[3], "-journal", journalDir,
		"-probe-interval", "150ms", "-shard-deadline", "2s", "-shard-retries", "2"}

	for i := 0; i < 3; i++ {
		start(fmt.Sprintf("shard%d", i), shardArgs(i)...)
	}
	for _, u := range shardURLs {
		waitReady(t, u+"/cluster/stats")
	}
	start("router", routerArgs...)
	waitReady(t, routerURL+"/stats")

	docs := synthDocs(t, 90, 41)
	type entry struct {
		gid corpus.DocID
		doc corpus.Document
	}
	alive := make(map[corpus.DocID]corpus.Document)
	ingest := func(batch []corpus.Document) []corpus.DocID {
		var ir search.IndexResponse
		postJSON(t, routerURL+"/index", search.IndexRequest{Docs: batch}, &ir)
		if len(ir.IDs) != len(batch) {
			t.Fatalf("ingest assigned %d ids for %d docs", len(ir.IDs), len(batch))
		}
		for i, gid := range ir.IDs {
			alive[gid] = batch[i]
		}
		return ir.IDs
	}

	gids1 := ingest(docs[:30])

	// Graceful path: SIGTERM shard 2, which must drain, save its
	// segments and gid table, and exit 0; then restart it from disk.
	// The router observes the instance change and counts a restart.
	sh2 := procs["shard2"]
	if err := sh2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM shard2: %v", err)
	}
	if err := sh2.Wait(); err != nil {
		t.Fatalf("shard2 did not exit cleanly on SIGTERM: %v", err)
	}
	start("shard2", shardArgs(2)...)
	waitReady(t, shardURLs[2]+"/cluster/stats")

	ingest(docs[30:60])

	// The router's health loop observes shard2's instance change and
	// reports it as a restart, with a fresh last-seen stamp (the
	// counter is this router process's observation, so check it before
	// the router itself gets killed below).
	restartSeen := false
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); {
		var st search.StatsResponse
		getJSON(t, routerURL+"/stats", &st)
		if st.Cluster != nil {
			for _, sh := range st.Cluster.Shards {
				if sh.Restarts > 0 && sh.LastSeenUnix > 0 {
					restartSeen = true
				}
			}
		}
		if restartSeen {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !restartSeen {
		t.Fatal("router never reported shard2's restart on /stats")
	}

	// Two acked deletes before any crash: they are journaled and must
	// stay deleted through every restart below.
	dropped := []corpus.DocID{gids1[4], gids1[19]}
	for _, gid := range dropped {
		req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/doc/%d", routerURL, gid), nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete %d: status %d", gid, resp.StatusCode)
		}
		delete(alive, gid)
	}

	// Crash path. SIGKILL shard 1 (no flush, no save), then keep
	// ingesting through the router: acks are journal-first, so the
	// batch must be accepted and survive even though one of its target
	// shards is dead. Then SIGKILL the router itself.
	procs["shard1"].Process.Kill()
	procs["shard1"].Wait()
	batch3 := ingest(docs[60:80])
	maxAcked := batch3[len(batch3)-1]

	// One more batch races the router kill: fire the POST and SIGKILL
	// the router while it may still be in flight. Journal appends are
	// all-or-nothing per batch, so after recovery either every batch4
	// document exists (contiguous gids after maxAcked) or none do; we
	// resolve which below and fold the answer into the oracle.
	batch4 := docs[80:]
	postDone := make(chan error, 1)
	go func() {
		body, _ := json.Marshal(search.IndexRequest{Docs: batch4})
		resp, err := http.Post(routerURL+"/index", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		postDone <- err
	}()
	time.Sleep(5 * time.Millisecond)
	procs["router"].Process.Kill()
	procs["router"].Wait()
	<-postDone // outcome intentionally ignored: the journal decides

	// Restart both casualties from disk: the shard recovers its saved
	// segments plus gid table, the router replays the placement journal
	// and re-drives whatever the dead shard missed.
	start("shard1", shardArgs(1)...)
	waitReady(t, shardURLs[1]+"/cluster/stats")
	start("router", routerArgs...)
	waitReady(t, routerURL+"/stats")

	// Did the racing batch make it into the journal? Probe the first
	// gid it would have been assigned.
	probeURL := fmt.Sprintf("%s/doc/%d", routerURL, maxAcked+1)
	deadline := time.Now().Add(15 * time.Second)
	batch4In := false
	for time.Now().Before(deadline) {
		resp, err := http.Get(probeURL)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				batch4In = true
				break
			}
		}
		// Fresh struct each poll: omitempty fields (PendingRecords
		// reaching 0) would otherwise leave stale values behind.
		var stats search.StatsResponse
		getJSON(t, routerURL+"/stats", &stats)
		if stats.Cluster != nil && stats.Cluster.PendingRecords == 0 && stats.NumDocs >= len(alive) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if batch4In {
		for i, doc := range batch4 {
			alive[maxAcked+1+corpus.DocID(i)] = doc
		}
	}

	// Wait for full catch-up: every shard up, every journaled mutation
	// confirmed durable by its target shards, counts settled.
	var stats search.StatsResponse
	for time.Now().Before(deadline) {
		stats = search.StatsResponse{}
		getJSON(t, routerURL+"/stats", &stats)
		downs := 0
		if stats.Cluster != nil {
			for _, sh := range stats.Cluster.Shards {
				if !sh.Up {
					downs++
				}
			}
		}
		if stats.Cluster != nil && downs == 0 && stats.Cluster.PendingRecords == 0 &&
			stats.NumDocs == len(alive) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if stats.Cluster == nil {
		t.Fatal("router /stats has no cluster section after restart")
	}
	if !stats.Cluster.Journaled {
		t.Fatal("restarted router does not report a journal")
	}
	if stats.NumDocs != len(alive) {
		t.Fatalf("document count after recovery: %d, want %d (pending=%d)",
			stats.NumDocs, len(alive), stats.Cluster.PendingRecords)
	}
	if stats.Cluster.PendingRecords != 0 {
		for _, u := range shardURLs {
			var ss struct {
				AppliedSeq uint64 `json:"applied_seq"`
				DurableSeq uint64 `json:"durable_seq"`
				Persistent bool   `json:"persistent"`
				Docs       int    `json:"docs"`
			}
			getJSON(t, u+"/cluster/stats", &ss)
			t.Logf("shard %s: applied=%d durable=%d persistent=%v docs=%d", u, ss.AppliedSeq, ss.DurableSeq, ss.Persistent, ss.Docs)
		}
		t.Fatalf("journal still holds %d pending records after catch-up", stats.Cluster.PendingRecords)
	}
	if stats.Cluster.ReplayedEntries == 0 {
		t.Fatal("restarted router reports zero replayed journal entries")
	}
	for _, sh := range stats.Cluster.Shards {
		if sh.LastSeenUnix == 0 {
			t.Fatalf("shard %s has no last-seen stamp after recovery", sh.Shard)
		}
	}

	// Gid stability: every acked surviving gid resolves to its exact
	// document; every acked delete stays a 404.
	for gid, want := range alive {
		var got corpus.Document
		getJSON(t, fmt.Sprintf("%s/doc/%d", routerURL, gid), &got)
		if got.Title != want.Title || got.Text != want.Text {
			t.Fatalf("gid %d resolves to %q, want %q (aliasing or loss)", gid, got.Title, want.Title)
		}
	}
	for _, gid := range dropped {
		resp, err := http.Get(fmt.Sprintf("%s/doc/%d", routerURL, gid))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("deleted gid %d resurrected with status %d", gid, resp.StatusCode)
		}
	}

	// Score equality: full retrieval against a from-scratch rebuild of
	// the survivors, exact document sets, per-document scores within
	// 1e-9 — the recovered cluster is indistinguishable from one that
	// never crashed.
	ordered := make([]entry, 0, len(alive))
	for gid, doc := range alive {
		ordered = append(ordered, entry{gid: gid, doc: doc})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].gid < ordered[j].gid })
	refDocs := make([]corpus.Document, len(ordered))
	gidToRef := make(map[corpus.DocID]corpus.DocID, len(ordered))
	for i, e := range ordered {
		refDocs[i] = corpus.Document{Title: e.doc.Title, Text: e.doc.Text}
		gidToRef[e.gid] = corpus.DocID(i)
	}
	an := textproc.NewAnalyzer()
	refCorpus, err := corpus.Build(refDocs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	refIdx, err := index.Build(refCorpus)
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := vsm.NewEngine(refIdx, an, vsm.BM25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		q := queryFrom(docs[i*11], i*3, 4)
		var sr search.SearchResponse
		postJSON(t, routerURL+"/search", search.SearchRequest{Query: q, K: len(ordered), Exec: "exhaustive"}, &sr)
		if sr.Degraded {
			t.Fatalf("query %q degraded after full recovery: %+v", q, sr.Shards)
		}
		want := refEng.SearchTerms(an.Analyze(q), len(ordered))
		if len(sr.Hits) != len(want) {
			t.Fatalf("query %q: recovered cluster %d hits, rebuild %d", q, len(sr.Hits), len(want))
		}
		gotScores := make(map[corpus.DocID]float64, len(sr.Hits))
		for _, hit := range sr.Hits {
			ref, ok := gidToRef[hit.Doc]
			if !ok {
				t.Fatalf("query %q: dead/unknown doc %d in recovered results", q, hit.Doc)
			}
			gotScores[ref] = hit.Score
		}
		for _, res := range want {
			gs, ok := gotScores[res.Doc]
			if !ok {
				t.Fatalf("query %q: rebuild doc %d missing from recovered cluster", q, res.Doc)
			}
			if math.Abs(gs-res.Score) > 1e-9 {
				t.Fatalf("query %q doc %d: recovered %.12f, rebuild %.12f", q, res.Doc, gs, res.Score)
			}
		}
	}

	// Graceful router shutdown: SIGTERM drains, compacts the journal,
	// and exits 0.
	rt := procs["router"]
	if err := rt.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM router: %v", err)
	}
	if err := rt.Wait(); err != nil {
		t.Fatalf("router did not exit cleanly on SIGTERM: %v", err)
	}
	delete(procs, "router")
}
