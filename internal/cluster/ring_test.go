package cluster

import (
	"testing"

	"toppriv/internal/corpus"
)

// TestRingPlacementIgnoresListOrder: placement hashes shard names, so
// two routers configured with the same shards in different order must
// route every document identically.
func TestRingPlacementIgnoresListOrder(t *testing.T) {
	a := []string{"http://s0:7", "http://s1:7", "http://s2:7"}
	b := []string{"http://s2:7", "http://s0:7", "http://s1:7"}
	ra, rb := newRing(a), newRing(b)
	for gid := corpus.DocID(0); gid < 5000; gid++ {
		if a[ra.place(gid)] != b[rb.place(gid)] {
			t.Fatalf("gid %d placed on %s vs %s under reordered shard list",
				gid, a[ra.place(gid)], b[rb.place(gid)])
		}
	}
}

// TestRingDistribution: with 64 vnodes per shard, no shard's share of
// a large gid range should collapse or balloon.
func TestRingDistribution(t *testing.T) {
	names := []string{"http://s0:7", "http://s1:7", "http://s2:7"}
	r := newRing(names)
	counts := make([]int, len(names))
	const n = 30000
	for gid := corpus.DocID(0); gid < n; gid++ {
		counts[r.place(gid)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.60 {
			t.Fatalf("shard %d holds %.1f%% of documents (counts %v)", i, 100*frac, counts)
		}
	}
}

// TestRingDistributionSmallSequentialBatch: sequential gids from a
// single small ingest must still spread across the cluster. Raw FNV-1a
// over inputs differing in one byte forms a lattice that once put 82
// of 90 sequential gids on one shard of three; the mix32 avalanche
// finalizer is what this test holds in place. Names mirror a real
// deployment (URLs differing only in the port digit).
func TestRingDistributionSmallSequentialBatch(t *testing.T) {
	names := []string{
		"http://127.0.0.1:18091",
		"http://127.0.0.1:18092",
		"http://127.0.0.1:18093",
	}
	r := newRing(names)
	counts := make([]int, len(names))
	const n = 90
	for gid := corpus.DocID(0); gid < n; gid++ {
		counts[r.place(gid)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.60 {
			t.Fatalf("shard %d holds %.1f%% of a %d-doc sequential ingest (counts %v)",
				i, 100*frac, n, counts)
		}
	}
}

// TestRingStability: growing the cluster by one shard must move only a
// minority of documents — the property consistent hashing buys over
// mod-N placement (which moves nearly everything).
func TestRingStability(t *testing.T) {
	small := []string{"http://s0:7", "http://s1:7", "http://s2:7"}
	grown := append(append([]string(nil), small...), "http://s3:7")
	rs, rg := newRing(small), newRing(grown)
	moved := 0
	const n = 30000
	for gid := corpus.DocID(0); gid < n; gid++ {
		from, to := rs.place(gid), rg.place(gid)
		if small[from] != grown[to] {
			if grown[to] != "http://s3:7" {
				t.Fatalf("gid %d moved between pre-existing shards (%s → %s)",
					gid, small[from], grown[to])
			}
			moved++
		}
	}
	if frac := float64(moved) / n; frac > 0.5 {
		t.Fatalf("adding one shard moved %.1f%% of documents", 100*frac)
	}
}
