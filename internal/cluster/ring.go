// Package cluster is the distributed search tier: shard servers that
// serve the vsm.Request/Response schema over HTTP for a subset of
// documents, and a scatter-gather router that fans each obfuscation
// cycle out to every shard, injects cluster-merged collection
// statistics so every shard scores exactly as a single index over all
// documents would, and merges the per-shard top-k.
//
// The design extends the segment store's global-statistics discipline
// (store-wide N, df, avgdl over shard-local postings) across process
// boundaries: shards report their local statistics, the router sums
// them, and every query carries the merged numbers — so the merged
// ranking is score-identical to a single-node rebuild, which keeps the
// adversary-visible query log and result filtering exactly as the
// paper models them (conf_icde_PangXS12 §II, Fig. 1).
package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"toppriv/internal/corpus"
)

// vnodesPerShard is how many virtual points each shard contributes to
// the hash ring. 64 keeps the per-shard document share within a few
// percent of uniform while the ring stays a few KiB.
const vnodesPerShard = 64

// ring is a consistent-hash ring placing documents on shards by global
// ID. Placement is a pure function of (shard set, gid): every router
// over the same shard list routes POST /index and DELETE /doc/{id}
// identically, and adding a shard moves only ~1/n of the documents.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint32
	shard int
}

// mix32 is the murmur3 finalizer. FNV-1a alone under-disperses short
// near-identical inputs — sequential gids differ in one byte, and the
// raw hashes form a lattice that can land almost entirely inside one
// shard's arcs (observed: 82 of 90 sequential gids on one shard of
// three). Full avalanche on the final value restores uniformity.
func mix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// newRing builds the ring over n shards, each identified by its stable
// name (the shard's base URL). Names, not indices, feed the hash, so
// reordering the shard list does not reshuffle placement.
func newRing(names []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(names)*vnodesPerShard)}
	for i, name := range names {
		for v := 0; v < vnodesPerShard; v++ {
			h := fnv.New32a()
			h.Write([]byte(name))
			var vb [4]byte
			binary.LittleEndian.PutUint32(vb[:], uint32(v))
			h.Write(vb[:])
			r.points = append(r.points, ringPoint{hash: mix32(h.Sum32()), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// place returns the shard index owning gid: the first ring point at or
// after the document's hash, wrapping around.
func (r *ring) place(gid corpus.DocID) int {
	var gb [4]byte
	binary.LittleEndian.PutUint32(gb[:], uint32(gid))
	h := fnv.New32a()
	h.Write(gb[:])
	key := mix32(h.Sum32())
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
