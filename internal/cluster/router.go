package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/search"
	"toppriv/internal/telemetry"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// Config parameterizes a Router.
type Config struct {
	// Shards are the shard base URLs ("http://host:port"). Order is
	// irrelevant to placement (the ring hashes names, not indices) but
	// fixed for the life of the router.
	Shards []string
	// Deadline bounds one shard's share of one query cycle, retries
	// included. A shard that misses it is reported down for that cycle
	// and the survivors' merged results return with Degraded set.
	// Defaults to 2s.
	Deadline time.Duration
	// MutationDeadline bounds one shard's ingest or delete exchange,
	// retries included. Mutations serialize under the router's ingest
	// lock, so without a deadline one hung shard would stall every
	// subsequent mutation forever. Defaults to 5× Deadline — mutations
	// tolerate more latency than a query cycle, but not infinity.
	MutationDeadline time.Duration
	// Retry is the per-shard transport retry budget. The zero value
	// retries nothing; a Max of 1–2 rides out a shard restart's
	// connection resets without inflating tail latency.
	Retry search.RetryPolicy
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// Analyzer processes raw query text exactly once, at the router;
	// shards only ever see analyzed terms. It must match the analyzer
	// the documents were indexed with. Defaults to textproc.NewAnalyzer.
	Analyzer *textproc.Analyzer
	// JournalDir enables the placement journal: mutations are
	// acknowledged once fsynced to the journal, shards that miss them
	// are caught up by the health loop, and a restarted router replays
	// its placement state from disk. Empty disables journaling and
	// restores the PR 9 memory-only semantics (mutation failures are
	// caller errors, restarts lose placement state).
	JournalDir string
	// SnapshotBytes triggers journal compaction once the WAL grows past
	// this many bytes. Defaults to 4 MiB.
	SnapshotBytes int64
	// ProbeInterval is the health loop's probe period. The loop probes
	// every shard's /cluster/stats, detects restarts, re-drives pending
	// mutations, and compacts the journal. Defaults to 1s. The loop
	// only runs when journaling is enabled.
	ProbeInterval time.Duration
	// DisableHealthLoop suppresses the background health loop (tests
	// drive recovery deterministically via Probe). Startup replay and
	// synchronous catch-up still run.
	DisableHealthLoop bool
	// TitleCacheSize bounds the in-memory gid → title cache; the lowest
	// (oldest) gids are evicted past the cap. Evicted titles still
	// resolve through the owning shard (and the journal snapshot
	// carries the cache across restarts). 0 means 65536; negative means
	// unbounded.
	TitleCacheSize int
	// Logf receives recovery-path diagnostics (nil = silent).
	Logf func(format string, args ...interface{})
}

// Router is the scatter-gather front of the distributed tier. It
// implements the same surfaces segment.Store offers search.NewServer —
// vsm.Searcher, vsm.RequestSearcher, search.LiveIndex, stats, titles —
// so a router process serves the standard API unchanged while fanning
// every obfuscation cycle out to the shards.
//
// Correctness contract: every query carries the cluster-merged
// collection statistics (N, total length, per-term df summed across
// the shards' last-reported tables), so each shard weighs query terms
// exactly as a single index over the whole corpus would, and the
// merged top-k is score-identical to a single-node rebuild. The tables
// refresh synchronously on every mutation (shards return their updated
// stats in the mutation reply), never on the query path — and a down
// shard's last-known table keeps contributing, so the survivors'
// scores during degradation equal their non-degraded values.
type Router struct {
	shards      []*shardConn
	byName      map[string]*shardConn
	ring        *ring
	an          *textproc.Analyzer
	deadline    time.Duration
	mutDeadline time.Duration
	logf        func(format string, args ...interface{})

	// scoringMu guards scoring, which is learned lazily when journaling
	// lets the router start with every shard down.
	scoringMu sync.Mutex
	scoring   string

	// ingestMu serializes mutations: gid assignment must be sequential
	// and each shard must receive its documents in ascending gid order.
	// It also guards pending — the journaled mutations not yet durable
	// on every target shard, in ascending Seq order.
	ingestMu sync.Mutex
	nextGid  corpus.DocID
	pending  []journalRecord

	// journal, when non-nil, is the durability point: Add/Delete return
	// success once their record is fsynced, and delivery failures leave
	// the record pending for the health loop to re-drive.
	journal   *journal
	snapBytes int64

	// titles caches gid → title at ingest time so result rendering
	// needs no per-hit shard round-trip, bounded to titleCap entries
	// (lowest gids evicted first). Misses — eviction, or a router
	// restart — fall back to fetching the document from its shard.
	titleMu  sync.RWMutex
	titles   map[corpus.DocID]string
	titleCap int

	probeEvery time.Duration
	stopCh     chan struct{}
	stopOnce   sync.Once
	loopWG     sync.WaitGroup

	degraded   atomic.Uint64
	recoveries atomic.Uint64
	replayed   atomic.Uint64

	mDegraded   *telemetry.Counter
	mRecoveries *telemetry.Counter
	mReplayed   *telemetry.Counter
}

// latRingSize bounds the per-shard latency sample window the p99
// health figure is computed over.
const latRingSize = 256

// shardConn is the router's view of one shard: transport, last-known
// statistics, and health counters.
type shardConn struct {
	name  string
	httpc *http.Client
	retry search.RetryPolicy

	mu      sync.Mutex
	up      bool
	lastErr string
	stats   shardStats // last-known; DF map is replaced wholesale, never mutated
	lat     [latRingSize]float64
	latN    int // total samples ever; ring index = latN % latRingSize
	reqs    uint64
	errs    uint64
	// lastSeen is the wall time of the last successful exchange.
	lastSeen time.Time
	// instance is the shard's last-reported process nonce; a change
	// means the shard restarted, bumping restarts and flagging the
	// shard for catch-up.
	instance      uint64
	restarts      uint64
	needsRecovery bool

	// Metric handles, nil until EnableMetrics.
	mReqs     *telemetry.Counter
	mErrs     *telemetry.Counter
	mUp       *telemetry.Gauge
	mLat      *telemetry.Histogram
	mRestarts *telemetry.Counter
}

// observe records one exchange's outcome under c.mu.
func (c *shardConn) observe(seconds float64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqs++
	if c.mReqs != nil {
		c.mReqs.Inc()
	}
	if err != nil {
		c.errs++
		c.up = false
		c.lastErr = err.Error()
		if c.mErrs != nil {
			c.mErrs.Inc()
		}
		if c.mUp != nil {
			c.mUp.Set(0)
		}
		return
	}
	c.up = true
	c.lastErr = ""
	c.lastSeen = time.Now()
	c.lat[c.latN%latRingSize] = seconds
	c.latN++
	if c.mUp != nil {
		c.mUp.Set(1)
	}
	if c.mLat != nil {
		c.mLat.Observe(seconds)
	}
}

// p99Locked computes the 99th-percentile latency (milliseconds) over
// the sample window. Caller holds c.mu.
func (c *shardConn) p99Locked() float64 {
	n := c.latN
	if n > latRingSize {
		n = latRingSize
	}
	if n == 0 {
		return 0
	}
	samples := append([]float64(nil), c.lat[:n]...)
	sort.Float64s(samples)
	idx := (99*n + 99) / 100 // ceil(0.99 n)
	if idx > 0 {
		idx--
	}
	return samples[idx] * 1000
}

// exchange POSTs (or GETs, body nil) one wire call and decodes the
// reply, recording health and latency. Non-2xx replies become errors
// carrying the shard's message.
func (c *shardConn) exchange(ctx context.Context, method, path string, body []byte, out interface{}) error {
	start := time.Now()
	err := c.exchangeRaw(ctx, method, path, body, out)
	c.observe(time.Since(start).Seconds(), err)
	return err
}

func (c *shardConn) exchangeRaw(ctx context.Context, method, path string, body []byte, out interface{}) error {
	build := func() (*http.Request, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.name+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, nil
	}
	resp, err := c.retry.Do(c.httpc, build)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &statusError{code: resp.StatusCode, msg: string(bytes.TrimSpace(msg))}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// statusError is a non-2xx shard reply. It is not transient: the shard
// is up and answered; retrying the identical request cannot help.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("shard returned %d: %s", e.code, e.msg)
}

// setStats installs a freshly decoded stats snapshot, watching the
// shard's instance nonce: a change means the shard process restarted,
// so it is counted and the shard flagged for catch-up. Returns whether
// a restart was detected.
func (c *shardConn) setStats(st shardStats) (restarted bool) {
	c.mu.Lock()
	if c.instance != 0 && st.Instance != 0 && st.Instance != c.instance {
		restarted = true
		c.restarts++
		c.needsRecovery = true
		if c.mRestarts != nil {
			c.mRestarts.Inc()
		}
	}
	if st.Instance != 0 {
		c.instance = st.Instance
	}
	c.stats = st
	c.mu.Unlock()
	return restarted
}

// snapStats returns the last-known snapshot. The DF map inside is safe
// to read after the lock drops because updates replace it wholesale.
func (c *shardConn) snapStats() shardStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// New connects to every shard, verifies the cluster is coherent (all
// on one scoring function), seeds the statistics tables, and resumes
// global-ID assignment above the cluster-wide high-water mark. Without
// a journal every shard must be reachable; with one, down shards are
// tolerated — the replayed journal knows the gid high-water and the
// health loop re-admits them when they return.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	seen := make(map[string]bool, len(cfg.Shards))
	for _, s := range cfg.Shards {
		if seen[s] {
			return nil, fmt.Errorf("cluster: duplicate shard %q", s)
		}
		seen[s] = true
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 2 * time.Second
	}
	if cfg.MutationDeadline <= 0 {
		cfg.MutationDeadline = 5 * cfg.Deadline
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.Analyzer == nil {
		cfg.Analyzer = textproc.NewAnalyzer()
	}
	if cfg.SnapshotBytes <= 0 {
		cfg.SnapshotBytes = 4 << 20
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	titleCap := cfg.TitleCacheSize
	switch {
	case titleCap == 0:
		titleCap = 65536
	case titleCap < 0:
		titleCap = 0 // unbounded
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	r := &Router{
		byName:      make(map[string]*shardConn, len(cfg.Shards)),
		ring:        newRing(cfg.Shards),
		an:          cfg.Analyzer,
		deadline:    cfg.Deadline,
		mutDeadline: cfg.MutationDeadline,
		logf:        logf,
		titles:      make(map[corpus.DocID]string),
		titleCap:    titleCap,
		snapBytes:   cfg.SnapshotBytes,
		probeEvery:  cfg.ProbeInterval,
		stopCh:      make(chan struct{}),
	}
	for _, name := range cfg.Shards {
		c := &shardConn{
			name:  name,
			httpc: cfg.HTTPClient,
			retry: cfg.Retry,
		}
		r.shards = append(r.shards, c)
		r.byName[name] = c
	}

	journaledGid := corpus.DocID(-1)
	if cfg.JournalDir != "" {
		j, jst, err := openJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		r.journal = j
		r.pending = jst.Pending
		r.replayed.Add(uint64(jst.Replayed))
		if jst.NextGid > 0 {
			journaledGid = jst.NextGid - 1
		}
		if jst.TornBytes > 0 {
			logf("cluster: journal had a torn tail (%d bytes truncated); the cut record was never acknowledged", jst.TornBytes)
		}
		if len(jst.Pending) > 0 {
			logf("cluster: journal replayed %d record(s), %d still pending shard durability", jst.Replayed, len(jst.Pending))
		}
		r.titleMu.Lock()
		for gid, title := range jst.Titles {
			r.titles[gid] = title
		}
		r.boundTitlesLocked()
		r.titleMu.Unlock()
	}

	maxGid := journaledGid
	for _, c := range r.shards {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Deadline)
		var st shardStats
		err := c.exchange(ctx, http.MethodGet, "/cluster/stats", nil, &st)
		cancel()
		if err != nil {
			if r.journal == nil {
				return nil, fmt.Errorf("cluster: shard %s unreachable: %w", c.name, err)
			}
			logf("cluster: shard %s unreachable at startup (%v); health loop will re-admit it", c.name, err)
			continue
		}
		if err := r.noteScoring(c.name, st.Scoring); err != nil {
			r.closeJournal()
			return nil, err
		}
		c.setStats(st)
		if st.MaxGid > maxGid {
			maxGid = st.MaxGid
		}
	}
	r.nextGid = maxGid + 1

	if r.journal != nil {
		// Startup catch-up: re-drive whatever the journal says the shards
		// may have missed, then keep doing so in the background.
		r.ingestMu.Lock()
		for _, c := range r.shards {
			if r.shardLagsLocked(c) {
				c.mu.Lock()
				c.needsRecovery = true
				c.mu.Unlock()
				if err := r.driveShardLocked(c, 0); err != nil {
					logf("cluster: startup catch-up for %s: %v (health loop will retry)", c.name, err)
				}
			}
		}
		r.pruneLocked()
		r.ingestMu.Unlock()
		if !cfg.DisableHealthLoop {
			r.loopWG.Add(1)
			go r.healthLoop()
		}
	}
	return r, nil
}

// noteScoring records or checks the cluster scoring function; shards
// are checked lazily because a journaled router may start before any
// shard is reachable.
func (r *Router) noteScoring(shard, scoring string) error {
	if scoring == "" {
		return nil
	}
	r.scoringMu.Lock()
	defer r.scoringMu.Unlock()
	if r.scoring == "" {
		r.scoring = scoring
		return nil
	}
	if scoring != r.scoring {
		return fmt.Errorf("cluster: shard %s scores with %s, cluster uses %s", shard, scoring, r.scoring)
	}
	return nil
}

// Scoring reports the cluster's scoring function name ("" until any
// shard has been reached on a journaled router that started all-down).
func (r *Router) Scoring() string {
	r.scoringMu.Lock()
	defer r.scoringMu.Unlock()
	return r.scoring
}

// closeJournal releases the journal during failed construction.
func (r *Router) closeJournal() {
	if r.journal != nil {
		r.journal.Close()
	}
}

// Close stops the health loop and, when journaling, compacts what it
// can into the snapshot and closes the WAL — the graceful-drain path.
// A closed router must not be used for further mutations.
func (r *Router) Close() error {
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.loopWG.Wait()
	if r.journal == nil {
		return nil
	}
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	r.pruneLocked()
	if err := r.compactLocked(); err != nil && err != errJournalCrash {
		r.logf("cluster: final journal compaction: %v", err)
	}
	return r.journal.Close()
}

// healthLoop probes every shard on a fixed period, re-drives pending
// mutations to shards that lag the journal, and compacts the WAL.
func (r *Router) healthLoop() {
	defer r.loopWG.Done()
	t := time.NewTicker(r.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-t.C:
			r.Probe()
		}
	}
}

// Probe runs one health-loop iteration synchronously: probe every
// shard's stats, catch up lagging shards, prune shard-durable records,
// and compact the journal past the size threshold. Tests that disable
// the background loop call it directly.
func (r *Router) Probe() {
	for _, c := range r.shards {
		ctx, cancel := context.WithTimeout(context.Background(), r.deadline)
		var st shardStats
		err := c.exchange(ctx, http.MethodGet, "/cluster/stats", nil, &st)
		cancel()
		if err != nil {
			continue
		}
		if err := r.noteScoring(c.name, st.Scoring); err != nil {
			r.logf("%v", err)
			continue
		}
		if c.setStats(st) {
			r.logf("cluster: shard %s restarted (instance %x)", c.name, st.Instance)
		}
	}
	if r.journal == nil {
		return
	}
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	for _, c := range r.shards {
		c.mu.Lock()
		needs := c.needsRecovery
		c.mu.Unlock()
		if !needs && !r.shardLagsLocked(c) {
			continue
		}
		if err := r.driveShardLocked(c, 0); err != nil {
			r.logf("cluster: catch-up for %s: %v", c.name, err)
		}
	}
	r.pruneLocked()
	if r.journal.Size() > r.snapBytes {
		if err := r.compactLocked(); err != nil {
			r.logf("cluster: journal compaction: %v", err)
		}
	}
}

// shardLagsLocked reports whether any pending record targets c beyond
// its last-reported applied sequence. Caller holds ingestMu.
func (r *Router) shardLagsLocked(c *shardConn) bool {
	st := c.snapStats()
	for i := range r.pending {
		rec := &r.pending[i]
		if rec.rejected {
			continue
		}
		if rec.Seq > st.AppliedSeq && rec.targets(c.name) {
			return true
		}
	}
	return false
}

// driveShardLocked delivers, in sequence order, every pending record
// targeting c that its current instance has not yet applied. Delivery
// is conditional on the shard's instance nonce: a shard that restarted
// in between rejects with 412, and the drive refreshes its view and
// starts over from the new instance's durable baseline — which is what
// makes a stale cached applied-sequence harmless (over-delivery is
// idempotent; under-delivery can only follow a restart, and the nonce
// check catches every restart). freshSeq, when nonzero, marks the
// record whose first delivery this is; everything else delivered here
// counts as a replayed entry. Caller holds ingestMu.
func (r *Router) driveShardLocked(c *shardConn, freshSeq uint64) error {
	for attempt := 0; ; attempt++ {
		st := c.snapStats()
		if st.Instance == 0 || attempt > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), r.deadline)
			var fresh shardStats
			err := c.exchange(ctx, http.MethodGet, "/cluster/stats", nil, &fresh)
			cancel()
			if err != nil {
				return err
			}
			if err := r.noteScoring(c.name, fresh.Scoring); err != nil {
				return err
			}
			c.setStats(fresh)
			st = fresh
		}
		err := r.sendPendingLocked(c, st, freshSeq)
		if err == nil {
			c.mu.Lock()
			recovered := c.needsRecovery
			c.needsRecovery = false
			c.mu.Unlock()
			if recovered {
				r.recoveries.Add(1)
				if r.mRecoveries != nil {
					r.mRecoveries.Inc()
				}
				r.logf("cluster: shard %s caught up with the journal", c.name)
			}
			return nil
		}
		var se *statusError
		if errors.As(err, &se) && se.code == http.StatusPreconditionFailed && attempt < 3 {
			// The shard restarted mid-drive; refresh and restart from its
			// new durable baseline.
			continue
		}
		return err
	}
}

// sendPendingLocked walks the pending records in sequence order and
// delivers c's share of each one the shard has not applied. Caller
// holds ingestMu.
func (r *Router) sendPendingLocked(c *shardConn, st shardStats, freshSeq uint64) error {
	for i := range r.pending {
		rec := &r.pending[i]
		if rec.rejected || rec.Seq <= st.AppliedSeq || !rec.targets(c.name) {
			continue
		}
		var reply shardStats
		if del := rec.Delete; del != nil && del.Shard == c.name {
			var dr deleteResponse
			ctx, cancel := context.WithTimeout(context.Background(), r.mutDeadline)
			err := c.exchange(ctx, http.MethodDelete,
				fmt.Sprintf("/cluster/doc/%d?seq=%d&instance=%d", del.Gid, rec.Seq, st.Instance), nil, &dr)
			cancel()
			if err != nil {
				var se *statusError
				if errors.As(err, &se) && se.code == http.StatusNotFound {
					// The document does not exist on the current, in-sync
					// instance: the delete can never succeed. Retire it.
					rec.rejected = true
					continue
				}
				return err
			}
			reply = dr.Stats
		} else {
			var docs []ingestDoc
			for _, p := range rec.Places {
				if p.Shard == c.name {
					docs = p.Docs
					break
				}
			}
			if len(docs) == 0 {
				continue
			}
			body, err := json.Marshal(ingestRequest{Docs: docs, Seq: rec.Seq, IfInstance: st.Instance})
			if err != nil {
				return err
			}
			var ir ingestResponse
			ctx, cancel := context.WithTimeout(context.Background(), r.mutDeadline)
			err = c.exchange(ctx, http.MethodPost, "/cluster/index", body, &ir)
			cancel()
			if err != nil {
				return err
			}
			reply = ir.Stats
		}
		c.setStats(reply)
		st = reply
		if rec.Seq != freshSeq {
			r.replayed.Add(1)
			if r.mReplayed != nil {
				r.mReplayed.Inc()
			}
		}
	}
	return nil
}

// pruneLocked drops pending records every target shard has made
// durable (and retired records). In-memory shards report durable
// sequence 0 forever, so their records — by design — never prune: the
// journal is the only durable copy. Caller holds ingestMu.
func (r *Router) pruneLocked() {
	keep := r.pending[:0]
	for i := range r.pending {
		rec := &r.pending[i]
		if rec.rejected {
			continue
		}
		durable := true
		for _, name := range rec.shardNames() {
			c := r.byName[name]
			if c == nil || c.snapStats().DurableSeq < rec.Seq {
				durable = false
				break
			}
		}
		if !durable {
			keep = append(keep, *rec)
		}
	}
	tail := r.pending[len(keep):]
	for i := range tail {
		tail[i] = journalRecord{}
	}
	r.pending = keep
}

// compactLocked snapshots the journal: next gid, pending records, and
// the title cache, then resets the WAL. Caller holds ingestMu.
func (r *Router) compactLocked() error {
	r.titleMu.RLock()
	titles := make(map[corpus.DocID]string, len(r.titles))
	for gid, t := range r.titles {
		titles[gid] = t
	}
	r.titleMu.RUnlock()
	pending := make([]journalRecord, 0, len(r.pending))
	for i := range r.pending {
		if !r.pending[i].rejected {
			pending = append(pending, r.pending[i])
		}
	}
	return r.journal.Compact(r.nextGid, pending, titles)
}

// mergedStats sums the shards' last-known tables into one query's
// GlobalStats. DF aligns with terms, repeats repeating their df, the
// exact shape vsm.Request.Global requires.
func (r *Router) mergedStats(terms []string) *vsm.GlobalStats {
	g := &vsm.GlobalStats{DF: make([]int, len(terms))}
	for _, c := range r.shards {
		st := c.snapStats()
		g.Docs += st.Docs
		g.TotalLen += st.TotalLen
		if st.DF == nil {
			continue
		}
		for i, t := range terms {
			g.DF[i] += st.DF[t]
		}
	}
	return g
}

// SearchRequest executes one request through the full scatter-gather
// path (it is a one-member batch; the shards treat it identically).
func (r *Router) SearchRequest(ctx context.Context, req vsm.Request) (vsm.Response, error) {
	resps, err := r.SearchBatch(ctx, []vsm.Request{req})
	if err != nil {
		return vsm.Response{}, err
	}
	return resps[0], nil
}

// SearchBatch fans one cycle out to every shard in a single per-shard
// round-trip, merges each member's per-shard top-k lists, and reports
// per-shard outcomes. Shard failure degrades the response — merged
// survivor results plus Degraded and ShardStatus — and is never a
// whole-query error; only a dead parent context or a malformed request
// returns one.
func (r *Router) SearchBatch(ctx context.Context, reqs []vsm.Request) ([]vsm.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	wire := batchRequest{Queries: make([]wireQuery, len(reqs))}
	for i, req := range reqs {
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: batch member %d: %w", i, err)
		}
		if req.Keep != nil {
			return nil, fmt.Errorf("cluster: batch member %d: keep predicates cannot cross the wire", i)
		}
		if req.Global != nil {
			return nil, fmt.Errorf("cluster: batch member %d: global stats are router-assigned", i)
		}
		terms := req.Terms
		if terms == nil {
			terms = r.an.Analyze(req.Query)
		}
		mode := ""
		if req.Mode != vsm.ExecAuto {
			mode = req.Mode.String()
		}
		wire.Queries[i] = wireQuery{
			Terms:  terms,
			K:      req.K,
			Mode:   mode,
			Global: r.mergedStats(terms),
		}
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, err
	}

	type shardOut struct {
		resps []wireResponse
		err   error
	}
	outs := make([]shardOut, len(r.shards))
	var wg sync.WaitGroup
	for i, c := range r.shards {
		wg.Add(1)
		go func(i int, c *shardConn) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, r.deadline)
			defer cancel()
			var br batchResponse
			if err := c.exchange(sctx, http.MethodPost, "/cluster/batch", body, &br); err != nil {
				outs[i].err = err
				return
			}
			if len(br.Responses) != len(reqs) {
				outs[i].err = fmt.Errorf("shard answered %d members for %d queries", len(br.Responses), len(reqs))
				return
			}
			outs[i].resps = br.Responses
		}(i, c)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The caller's context died; the partial results are not a
		// degradation signal, they are an abandoned query.
		return nil, err
	}

	degraded := false
	status := make([]vsm.ShardStatus, len(r.shards))
	for i, c := range r.shards {
		status[i] = vsm.ShardStatus{Shard: c.name, OK: outs[i].err == nil}
		if outs[i].err != nil {
			status[i].Err = outs[i].err.Error()
			degraded = true
		}
	}
	if degraded {
		r.degraded.Add(1)
		if r.mDegraded != nil {
			r.mDegraded.Inc()
		}
	}

	resps := make([]vsm.Response, len(reqs))
	lists := make([][]vsm.Result, 0, len(r.shards))
	for j := range reqs {
		lists = lists[:0]
		for i := range outs {
			if outs[i].err != nil {
				continue
			}
			wr := &outs[i].resps[j]
			hits := make([]vsm.Result, len(wr.Hits))
			for h, wh := range wr.Hits {
				hits[h] = vsm.Result{Doc: wh.Gid, Score: wh.Score}
			}
			lists = append(lists, hits)
			resps[j].Stats.Add(wr.Stats)
		}
		resps[j].Hits = vsm.MergeTopK(lists, wire.Queries[j].K)
		resps[j].Degraded = degraded
		resps[j].Shards = status
	}
	return resps, nil
}

// Search analyzes and runs one query — the legacy vsm.Searcher
// surface, kept so the router drops into search.NewServer unchanged.
func (r *Router) Search(query string, k int) []vsm.Result {
	return r.SearchTerms(r.an.Analyze(query), k)
}

// SearchTerms runs one pre-analyzed query.
func (r *Router) SearchTerms(terms []string, k int) []vsm.Result {
	if k <= 0 || len(terms) == 0 {
		return nil
	}
	resp, err := r.SearchRequest(context.Background(), vsm.Request{Terms: terms, K: k})
	if err != nil {
		return nil
	}
	return resp.Hits
}

// SearchMode runs one query under an explicit execution mode.
func (r *Router) SearchMode(query string, k int, mode vsm.ExecMode) []vsm.Result {
	if k <= 0 {
		return nil
	}
	resp, err := r.SearchRequest(context.Background(), vsm.Request{Query: query, K: k, Mode: mode})
	if err != nil {
		return nil
	}
	return resp.Hits
}

// Add ingests documents: sequential global IDs, ring placement, one
// POST per involved shard with its documents in ascending gid order.
// Unlike queries, mutations never degrade — a failed shard fails the
// call. The gid range is committed before any shard is contacted: a
// shard that accepts maps its gids immediately, so after a partial
// failure the range is spent either way, and reusing it would bind the
// same gid to different documents (the accepting shard's idempotency
// check would silently drop the replacements). On error the documents
// already applied to other shards stay applied under their unreturned
// gids; retrying via a fresh Add assigns fresh IDs and at worst
// duplicates content, never corrupts placement.
// With a journal the contract strengthens: the record — gid burn and
// full placements — is fsynced before anything is delivered, success
// means journal-durable (not necessarily shard-delivered), and a
// delivery that fails leaves the record pending for the health loop to
// re-drive through the same idempotent path. No acknowledged document
// can be lost while the journal directory survives.
func (r *Router) Add(docs ...corpus.Document) ([]corpus.DocID, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()

	gids := make([]corpus.DocID, len(docs))
	perShard := make([][]ingestDoc, len(r.shards))
	for i, d := range docs {
		gid := r.nextGid + corpus.DocID(i)
		gids[i] = gid
		owner := r.ring.place(gid)
		d.ID = gid
		perShard[owner] = append(perShard[owner], ingestDoc{Gid: gid, Doc: d})
	}

	if r.journal != nil {
		rec := journalRecord{Base: r.nextGid, Burn: len(docs)}
		for i, batch := range perShard {
			if len(batch) > 0 {
				rec.Places = append(rec.Places, placeEntry{Shard: r.shards[i].name, Docs: batch})
			}
		}
		if err := r.journal.Append(&rec); err != nil {
			// Nothing durable, nothing delivered: the mutation never
			// happened and the gid range is not burned.
			return nil, fmt.Errorf("cluster: journal: %w", err)
		}
		r.nextGid += corpus.DocID(len(docs))
		r.pending = append(r.pending, rec)
		r.cacheTitles(docs, gids)
		for i, batch := range perShard {
			if len(batch) == 0 {
				continue
			}
			c := r.shards[i]
			if err := r.driveShardLocked(c, rec.Seq); err != nil {
				r.logf("cluster: ingest to %s deferred: %v (journaled, will re-drive)", c.name, err)
			}
		}
		r.pruneLocked()
		if r.journal.Size() > r.snapBytes {
			if err := r.compactLocked(); err != nil {
				r.logf("cluster: journal compaction: %v", err)
			}
		}
		return gids, nil
	}

	// Burn the range up front — see the contract above.
	r.nextGid += corpus.DocID(len(docs))
	for i, batch := range perShard {
		if len(batch) == 0 {
			continue
		}
		body, err := json.Marshal(ingestRequest{Docs: batch})
		if err != nil {
			return nil, err
		}
		c := r.shards[i]
		var ir ingestResponse
		ctx, cancel := context.WithTimeout(context.Background(), r.mutDeadline)
		err = c.exchange(ctx, http.MethodPost, "/cluster/index", body, &ir)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("cluster: ingest to %s: %w", c.name, err)
		}
		c.setStats(ir.Stats)
	}
	r.cacheTitles(docs, gids)
	return gids, nil
}

// cacheTitles inserts the batch's titles into the bounded cache.
func (r *Router) cacheTitles(docs []corpus.Document, gids []corpus.DocID) {
	r.titleMu.Lock()
	for i, d := range docs {
		if d.Title != "" {
			r.titles[gids[i]] = d.Title
		}
	}
	r.boundTitlesLocked()
	r.titleMu.Unlock()
}

// boundTitlesLocked evicts the lowest (oldest) gids down to the cap.
// Evicted titles still resolve: Title falls back to a shard fetch, and
// the journal snapshot carries the surviving cache across restarts.
// Caller holds titleMu.
func (r *Router) boundTitlesLocked() {
	if r.titleCap <= 0 || len(r.titles) <= r.titleCap {
		return
	}
	gids := make([]corpus.DocID, 0, len(r.titles))
	for gid := range r.titles {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids[:len(gids)-r.titleCap] {
		delete(r.titles, gid)
	}
}

// Delete tombstones one document on its owning shard. With a journal
// the delete is durable once journaled: if the shard is down the call
// succeeds and the health loop applies it on rejoin; only a reachable,
// in-sync shard answering "no such document" fails the call.
func (r *Router) Delete(id corpus.DocID) error {
	if id < 0 {
		return fmt.Errorf("cluster: no document %d", id)
	}
	c := r.shards[r.ring.place(id)]
	if r.journal != nil {
		r.ingestMu.Lock()
		defer r.ingestMu.Unlock()
		if id >= r.nextGid {
			return fmt.Errorf("cluster: no document %d", id)
		}
		rec := journalRecord{Delete: &deleteEntry{Shard: c.name, Gid: id}}
		if err := r.journal.Append(&rec); err != nil {
			return fmt.Errorf("cluster: journal: %w", err)
		}
		r.pending = append(r.pending, rec)
		if err := r.driveShardLocked(c, rec.Seq); err != nil {
			r.logf("cluster: delete %d on %s deferred: %v (journaled, will re-drive)", id, c.name, err)
		}
		// The drive retires a delete the shard rejected as unknown; that
		// is the one case the caller must hear about.
		rejected := false
		for i := range r.pending {
			if r.pending[i].Seq == rec.Seq {
				rejected = r.pending[i].rejected
				break
			}
		}
		r.pruneLocked()
		r.titleMu.Lock()
		delete(r.titles, id)
		r.titleMu.Unlock()
		if rejected {
			return fmt.Errorf("cluster: no document %d", id)
		}
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.mutDeadline)
	defer cancel()
	var dr deleteResponse
	err := c.exchange(ctx, http.MethodDelete, fmt.Sprintf("/cluster/doc/%d", id), nil, &dr)
	if err != nil {
		var se *statusError
		if errors.As(err, &se) && se.code == http.StatusNotFound {
			return fmt.Errorf("cluster: no document %d", id)
		}
		return fmt.Errorf("cluster: delete on %s: %w", c.name, err)
	}
	c.setStats(dr.Stats)
	r.titleMu.Lock()
	delete(r.titles, id)
	r.titleMu.Unlock()
	return nil
}

// Doc fetches one document from its owning shard.
func (r *Router) Doc(id corpus.DocID) (corpus.Document, bool) {
	if id < 0 {
		return corpus.Document{}, false
	}
	c := r.shards[r.ring.place(id)]
	ctx, cancel := context.WithTimeout(context.Background(), r.deadline)
	defer cancel()
	var doc corpus.Document
	if err := c.exchange(ctx, http.MethodGet, fmt.Sprintf("/cluster/doc/%d", id), nil, &doc); err != nil {
		return corpus.Document{}, false
	}
	return doc, true
}

// Title resolves a document title from the ingest-time cache, falling
// back to a shard fetch (and re-caching) on miss — e.g. for documents
// ingested before this router process started.
func (r *Router) Title(id corpus.DocID) (string, bool) {
	r.titleMu.RLock()
	t, ok := r.titles[id]
	r.titleMu.RUnlock()
	if ok {
		return t, true
	}
	doc, ok := r.Doc(id)
	if !ok {
		return "", false
	}
	if doc.Title != "" {
		r.titleMu.Lock()
		r.titles[id] = doc.Title
		r.boundTitlesLocked()
		r.titleMu.Unlock()
	}
	return doc.Title, doc.Title != ""
}

// ComputeStats aggregates the shards' last-reported index shapes.
// Additive fields sum; NumTerms is the size of the union of the
// shards' live vocabularies (shards index independent term sets, so
// summing would overcount shared terms); derived ratios recompute.
func (r *Router) ComputeStats() index.Stats {
	var out index.Stats
	terms := make(map[string]struct{})
	for _, c := range r.shards {
		st := c.snapStats()
		out.NumDocs += st.Docs
		out.NumPostings += st.Index.NumPostings
		if st.Index.MaxListLen > out.MaxListLen {
			out.MaxListLen = st.Index.MaxListLen
		}
		out.SizeBytes += st.Index.SizeBytes
		out.PostingsBytes += st.Index.PostingsBytes
		out.ResidentBytes += st.Index.ResidentBytes
		out.PaddedPIRBytes += st.Index.PaddedPIRBytes
		for t := range st.DF {
			terms[t] = struct{}{}
		}
	}
	out.NumTerms = len(terms)
	if out.NumTerms > 0 {
		out.MeanListLen = float64(out.NumPostings) / float64(out.NumTerms)
	}
	if out.NumDocs > 0 {
		out.BytesPerDoc = float64(out.PostingsBytes) / float64(out.NumDocs)
		out.ResidentPerDoc = float64(out.ResidentBytes) / float64(out.NumDocs)
	}
	return out
}

// ClusterHealth snapshots per-shard health for GET /stats.
func (r *Router) ClusterHealth() search.ClusterHealth {
	h := search.ClusterHealth{
		Shards:   make([]search.ShardHealth, len(r.shards)),
		Degraded: r.degraded.Load(),
	}
	for i, c := range r.shards {
		c.mu.Lock()
		h.Shards[i] = search.ShardHealth{
			Shard:     c.name,
			Up:        c.up,
			Docs:      c.stats.Docs,
			LastError: c.lastErr,
			Requests:  c.reqs,
			Errors:    c.errs,
			P99Millis: c.p99Locked(),
			Restarts:  c.restarts,
		}
		if !c.lastSeen.IsZero() {
			h.Shards[i].LastSeenUnix = c.lastSeen.Unix()
		}
		c.mu.Unlock()
	}
	h.Recoveries = r.recoveries.Load()
	h.ReplayedEntries = r.replayed.Load()
	if r.journal != nil {
		h.Journaled = true
		h.JournalBytes = r.journal.Size()
		r.ingestMu.Lock()
		h.PendingRecords = len(r.pending)
		r.ingestMu.Unlock()
	}
	return h
}

// EnableMetrics registers the router's cluster metrics: per-shard
// request/error counters, an up/down gauge, a shard-exchange latency
// histogram, and the degraded-query counter. Implements
// search.MetricsBackend, so search.NewServer wires it automatically.
func (r *Router) EnableMetrics(reg *telemetry.Registry, _ *telemetry.TraceRing) {
	reqs := reg.CounterVec("toppriv_cluster_shard_requests_total",
		"Wire exchanges attempted per shard (queries and mutations).", "shard")
	errs := reg.CounterVec("toppriv_cluster_shard_errors_total",
		"Failed wire exchanges per shard (transport failure, deadline, or non-2xx).", "shard")
	up := reg.GaugeVec("toppriv_cluster_shard_up",
		"Whether the shard's most recent exchange succeeded (1) or failed (0).", "shard")
	lat := reg.HistogramVec("toppriv_cluster_shard_seconds",
		"Latency of successful shard exchanges.", telemetry.DefaultLatencyBuckets, "shard")
	restarts := reg.CounterVec("toppriv_cluster_shard_restarts_total",
		"Shard process restarts observed (instance nonce changes between stats reports).", "shard")
	for _, c := range r.shards {
		c.mu.Lock()
		c.mReqs = reqs.With(c.name)
		c.mErrs = errs.With(c.name)
		c.mUp = up.With(c.name)
		c.mLat = lat.With(c.name)
		c.mRestarts = restarts.With(c.name)
		c.mRestarts.Add(c.restarts)
		if c.up {
			c.mUp.Set(1)
		}
		c.mu.Unlock()
	}
	r.mDegraded = reg.Counter("toppriv_cluster_degraded_queries_total",
		"Query cycles answered without every shard (merged survivor results).")
	r.mRecoveries = reg.Counter("toppriv_cluster_recoveries_total",
		"Completed shard catch-ups: restarted or rejoined shards reconciled with the placement journal.")
	r.mRecoveries.Add(r.recoveries.Load())
	r.mReplayed = reg.Counter("toppriv_cluster_replayed_entries_total",
		"Journal records replayed at startup plus records re-driven to shards during catch-up.")
	r.mReplayed.Add(r.replayed.Load())
	if r.journal != nil {
		reg.GaugeFunc("toppriv_cluster_journal_bytes",
			"Placement journal WAL size in bytes (resets at snapshot compaction).", func() float64 {
				return float64(r.journal.Size())
			})
	}
	reg.GaugeFunc("toppriv_cluster_shards",
		"Number of shards this router scatters to.", func() float64 {
			return float64(len(r.shards))
		})
}
