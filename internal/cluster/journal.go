package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"toppriv/internal/corpus"
)

// The placement journal is the router's durability point: a mutation is
// acknowledged to the caller only after its record is appended to the
// write-ahead log and fsynced. Shard delivery happens afterwards and may
// fail or be lost to a crash — the record stays pending until the target
// shard confirms it has made the mutation *durable* (its persisted
// applied-sequence high-water covers the record), and until then the
// router can re-drive it through the idempotent gid-addressed ingest.
//
// On-disk layout in the journal directory:
//
//	journal.wal    — magic header, then length-prefixed CRC-framed records
//	SNAPSHOT.json  — periodic compaction point (atomic rename)
//
// Wire framing per record: a uint32 little-endian payload length, a
// uint32 little-endian CRC-32 (IEEE) over the length bytes followed by
// the payload, then the JSON payload. Covering the length field by the
// checksum means a corrupted length can never silently re-frame the
// stream: any complete frame that fails its CRC is rejected.
//
// Recovery semantics, the contract the byte-flip sweep tests pin down:
//
//   - A frame cut short by EOF (crash mid-append) is a torn tail: replay
//     succeeds, the torn bytes are reported and truncated on reopen, and
//     the dropped record was by definition never acknowledged.
//   - A complete frame with a bad CRC is interior corruption: replay
//     fails loudly. A corrupted placement is never replayed.
//   - A corrupted length that points past EOF is indistinguishable from
//     a torn tail; the replay result then reports the (possibly large)
//     truncated byte count so the operator sees exactly what was cut.

const (
	journalMagic    = "TPJW1\n"
	journalName     = "journal.wal"
	snapshotName    = "SNAPSHOT.json"
	snapshotVersion = 1
	// journalMaxRecord bounds one record's payload; a length beyond it is
	// treated as corruption, not an allocation request.
	journalMaxRecord = 64 << 20
)

// errJournalCrash is returned by appends after an injected crash point
// fired: the journal is poisoned exactly as a killed process would
// leave it, and the router built over it must be thrown away.
var errJournalCrash = errors.New("cluster: journal crash point fired")

// journalRecord is one durable mutation. Exactly one of the mutation
// shapes is set: an ingest record carries the gid-range burn plus the
// per-shard placements (with full document content, so a shard that
// lost its memtable can be re-fed), a delete record carries the target.
type journalRecord struct {
	// Seq is the record's monotone sequence number, the unit of shard
	// reconciliation: a shard that reports durable sequence s has made
	// every record with Seq <= s addressed to it durable.
	Seq uint64 `json:"seq"`
	// Base/Burn record a gid-range burn: gids [Base, Base+Burn) are
	// spent whether or not delivery succeeds, so a replayed router can
	// never re-bind them to different documents.
	Base corpus.DocID `json:"base,omitempty"`
	Burn int          `json:"burn,omitempty"`
	// Places carries the ingest payload per target shard.
	Places []placeEntry `json:"places,omitempty"`
	// Delete tombstones one gid on its owning shard.
	Delete *deleteEntry `json:"delete,omitempty"`

	// rejected is router-runtime state, never serialized: the target
	// shard, reachable and in sync, answered that the mutation can
	// never apply (a delete of an unknown gid). Retired at next prune.
	rejected bool
}

type placeEntry struct {
	Shard string      `json:"shard"`
	Docs  []ingestDoc `json:"docs"`
}

type deleteEntry struct {
	Shard string       `json:"shard"`
	Gid   corpus.DocID `json:"gid"`
}

// targets reports whether the record carries a mutation for shard name.
func (r *journalRecord) targets(name string) bool {
	for _, p := range r.Places {
		if p.Shard == name {
			return true
		}
	}
	return r.Delete != nil && r.Delete.Shard == name
}

// shardNames lists the shards the record mutates.
func (r *journalRecord) shardNames() []string {
	var names []string
	for _, p := range r.Places {
		names = append(names, p.Shard)
	}
	if r.Delete != nil {
		names = append(names, r.Delete.Shard)
	}
	return names
}

// snapshot is the journal's compaction point: everything replay needs
// that is not in the WAL tail. Pending records (not yet shard-durable)
// are carried forward verbatim; everything older is dropped, which is
// what bounds the journal to the shards' save lag rather than the
// corpus size.
type snapshot struct {
	Version int          `json:"version"`
	NextSeq uint64       `json:"next_seq"`
	NextGid corpus.DocID `json:"next_gid"`
	// Pending are the records whose target shards had not confirmed
	// durability when the snapshot was cut, in ascending Seq order.
	Pending []journalRecord `json:"pending,omitempty"`
	// Titles is the gid -> title table at snapshot time, capped by the
	// router's title-cache bound; it is what lets the router evict its
	// in-memory cache without losing cheap title resolution across a
	// restart (misses still fall back to a shard fetch).
	Titles map[corpus.DocID]string `json:"titles,omitempty"`
}

// journalState is the result of replaying a journal directory.
type journalState struct {
	NextSeq uint64
	NextGid corpus.DocID
	// Pending holds every record not yet known shard-durable, ascending
	// by Seq: the snapshot's carry-forwards plus the whole WAL tail.
	Pending []journalRecord
	Titles  map[corpus.DocID]string
	// TornBytes counts bytes truncated off the WAL tail (0 for a clean
	// shutdown). Nonzero is loud in the router's log: it means the final
	// append was cut by a crash and its record was never acknowledged.
	TornBytes int64
	// Replayed counts records recovered from snapshot + WAL.
	Replayed int
}

// journal is the live append handle. Appends are group-committed: every
// Append blocks until its record is durable, but concurrent appends
// share fsyncs via the sync cursor.
type journal struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	size    int64 // bytes in journal.wal, header included
	synced  int64 // high-water of fsynced bytes
	nextSeq uint64
	dead    error // set once the journal is unusable (crash hook fired)

	// crashAfter, when >= 0, is a fault-injection hook: the next append
	// that would push the file past this many total bytes writes only up
	// to the limit — a genuine torn record — and poisons the journal, as
	// kill -9 mid-write would. Tests drive it via CrashAfter.
	crashAfter int64
}

// openJournal opens (creating if needed) the journal in dir and replays
// snapshot + WAL. The WAL is truncated past any torn tail so appends
// resume at a clean frame boundary.
func openJournal(dir string) (*journal, *journalState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("cluster: journal: %w", err)
	}
	st := &journalState{Titles: make(map[corpus.DocID]string)}
	if err := loadSnapshot(dir, st); err != nil {
		return nil, nil, err
	}
	walPath := filepath.Join(dir, journalName)
	goodBytes, err := replayWAL(walPath, st)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: journal: %w", err)
	}
	if goodBytes == 0 {
		// Fresh (or fully torn-at-header) WAL: start from the magic.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("cluster: journal: %w", err)
		}
		if _, err := f.Write([]byte(journalMagic)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("cluster: journal: %w", err)
		}
		goodBytes = int64(len(journalMagic))
	} else if err := f.Truncate(goodBytes); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("cluster: journal: %w", err)
	}
	if _, err := f.Seek(goodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("cluster: journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("cluster: journal: %w", err)
	}
	j := &journal{dir: dir, f: f, size: goodBytes, synced: goodBytes, nextSeq: st.NextSeq, crashAfter: -1}
	if j.nextSeq == 0 {
		j.nextSeq = 1
	}
	st.NextSeq = j.nextSeq
	return j, st, nil
}

func loadSnapshot(dir string, st *journalState) error {
	f, err := os.Open(filepath.Join(dir, snapshotName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("cluster: journal snapshot: %w", err)
	}
	defer f.Close()
	var snap snapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return fmt.Errorf("cluster: journal snapshot corrupt: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("cluster: journal snapshot: unsupported version %d", snap.Version)
	}
	st.NextSeq = snap.NextSeq
	st.NextGid = snap.NextGid
	st.Pending = append(st.Pending, snap.Pending...)
	st.Replayed += len(snap.Pending)
	for gid, title := range snap.Titles {
		st.Titles[gid] = title
	}
	return nil
}

// replayWAL folds the WAL's records into st and returns the byte offset
// of the last whole, valid frame — the reopen truncation point.
func replayWAL(path string, st *journalState) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("cluster: journal: %w", err)
	}
	if len(data) == 0 {
		return 0, nil
	}
	if len(data) < len(journalMagic) {
		if string(data) == journalMagic[:len(data)] {
			// Crash during the very first header write: an empty journal
			// with a torn header, not corruption.
			st.TornBytes = int64(len(data))
			return 0, nil
		}
		return 0, fmt.Errorf("cluster: journal: bad magic header")
	}
	if string(data[:len(journalMagic)]) != journalMagic {
		return 0, fmt.Errorf("cluster: journal: bad magic header")
	}
	off := int64(len(journalMagic))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, nil
		}
		if len(rest) < 8 {
			// Header cut by EOF: torn tail.
			st.TornBytes = int64(len(rest))
			return off, nil
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if length > journalMaxRecord || int64(length) > int64(len(rest))-8 {
			// Payload extends past EOF — a crash-torn final record, or a
			// corrupted length field that is indistinguishable from one.
			// Either way nothing past this offset is trustworthy as a
			// frame boundary; report the cut loudly and stop.
			st.TornBytes = int64(len(rest))
			return off, nil
		}
		payload := rest[8 : 8+length]
		crc := crc32.NewIEEE()
		crc.Write(rest[:4])
		crc.Write(payload)
		if crc.Sum32() != sum {
			// A complete frame that fails its checksum is interior
			// corruption (bit rot, tampering) — never replay past it,
			// never drop it silently.
			return 0, fmt.Errorf("cluster: journal: record at offset %d fails checksum — refusing to replay a corrupted journal", off)
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return 0, fmt.Errorf("cluster: journal: record at offset %d undecodable: %w", off, err)
		}
		applyRecord(st, rec)
		off += 8 + int64(length)
	}
}

// applyRecord folds one replayed record into the recovery state,
// skipping records the snapshot already covers.
func applyRecord(st *journalState, rec journalRecord) {
	if rec.Seq < st.NextSeq {
		// Already folded into the snapshot (crash between snapshot rename
		// and WAL reset leaves such duplicates in the tail).
		return
	}
	st.NextSeq = rec.Seq + 1
	if top := rec.Base + corpus.DocID(rec.Burn); rec.Burn > 0 && top > st.NextGid {
		st.NextGid = top
	}
	for _, p := range rec.Places {
		for _, d := range p.Docs {
			if d.Doc.Title != "" {
				st.Titles[d.Gid] = d.Doc.Title
			}
		}
	}
	if rec.Delete != nil {
		delete(st.Titles, rec.Delete.Gid)
	}
	st.Pending = append(st.Pending, rec)
	st.Replayed++
}

// Append assigns the record its sequence number, frames it, writes and
// fsyncs. It returns only after the record is durable (group-committed:
// a concurrent append may have synced past this record already, in
// which case the fsync is skipped).
func (j *journal) Append(rec *journalRecord) error {
	j.mu.Lock()
	if j.dead != nil {
		err := j.dead
		j.mu.Unlock()
		return err
	}
	// Seq assignment under the lock keeps the on-disk order equal to the
	// seq order, which is what per-shard reconciliation relies on.
	rec.Seq = j.nextSeq
	j.nextSeq++
	payload, err := json.Marshal(rec)
	if err != nil {
		j.nextSeq--
		j.mu.Unlock()
		return err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	copy(frame[8:], payload)
	crc := crc32.NewIEEE()
	crc.Write(frame[:4])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc.Sum32())

	if j.crashAfter >= 0 && j.size+int64(len(frame)) > j.crashAfter {
		// Injected crash: write only the bytes that "made it to disk"
		// before the kill, then poison the handle. The partial frame is
		// exactly the torn tail recovery must tolerate.
		keep := j.crashAfter - j.size
		if keep < 0 {
			keep = 0
		}
		if keep > 0 {
			j.f.Write(frame[:keep])
			j.f.Sync()
		}
		j.dead = errJournalCrash
		j.mu.Unlock()
		return errJournalCrash
	}

	if _, err := j.f.Write(frame); err != nil {
		j.dead = fmt.Errorf("cluster: journal append: %w", err)
		err := j.dead
		j.mu.Unlock()
		return err
	}
	j.size += int64(len(frame))
	target := j.size
	if err := j.syncToLocked(target); err != nil {
		j.mu.Unlock()
		return err
	}
	j.mu.Unlock()
	return nil
}

// syncToLocked makes bytes [0, target) durable, skipping the fsync when
// a concurrent append already carried the cursor past target. Caller
// holds j.mu.
func (j *journal) syncToLocked(target int64) error {
	if j.synced >= target {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		j.dead = fmt.Errorf("cluster: journal sync: %w", err)
		return j.dead
	}
	j.synced = j.size
	return nil
}

// Size reports the WAL's current byte size (the journal_bytes metric).
func (j *journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// CrashAfter arms the kill-after-N-bytes fault hook: the append that
// would push the WAL past n total bytes is cut short and the journal
// poisoned. n < 0 disarms.
func (j *journal) CrashAfter(n int64) {
	j.mu.Lock()
	j.crashAfter = n
	j.mu.Unlock()
}

// Compact writes a snapshot carrying the still-pending records and the
// title table, renames it into place, and resets the WAL. A crash at
// any point leaves either the old snapshot plus the full WAL or the new
// snapshot plus a WAL whose records the snapshot duplicates — replay
// dedupes by sequence number.
func (j *journal) Compact(nextGid corpus.DocID, pending []journalRecord, titles map[corpus.DocID]string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead != nil {
		return j.dead
	}
	snap := snapshot{
		Version: snapshotVersion,
		NextSeq: j.nextSeq,
		NextGid: nextGid,
		Pending: pending,
		Titles:  titles,
	}
	tmp := filepath.Join(j.dir, snapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cluster: journal snapshot: %w", err)
	}
	if err := json.NewEncoder(f).Encode(&snap); err != nil {
		f.Close()
		return fmt.Errorf("cluster: journal snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("cluster: journal snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cluster: journal snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapshotName)); err != nil {
		return fmt.Errorf("cluster: journal snapshot: %w", err)
	}
	if err := syncJournalDir(j.dir); err != nil {
		return err
	}
	// The snapshot is durable; the WAL's contents are now redundant.
	if err := j.f.Truncate(int64(len(journalMagic))); err != nil {
		j.dead = fmt.Errorf("cluster: journal reset: %w", err)
		return j.dead
	}
	if _, err := j.f.Seek(int64(len(journalMagic)), io.SeekStart); err != nil {
		j.dead = fmt.Errorf("cluster: journal reset: %w", err)
		return j.dead
	}
	if err := j.f.Sync(); err != nil {
		j.dead = fmt.Errorf("cluster: journal reset: %w", err)
		return j.dead
	}
	j.size = int64(len(journalMagic))
	j.synced = j.size
	return nil
}

// Close fsyncs and closes the WAL. Further appends fail.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	if j.dead == nil {
		j.dead = errors.New("cluster: journal closed")
	}
	return err
}

func syncJournalDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("cluster: journal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("cluster: journal: %w", err)
	}
	return nil
}
