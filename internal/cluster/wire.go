package cluster

import (
	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/vsm"
)

// The /cluster/* wire schema. Shards speak pre-analyzed terms, global
// document IDs and cluster-merged statistics; raw query text never
// reaches a shard (the router analyzes once), and store-local document
// IDs never leave one.

// batchRequest is the POST /cluster/batch payload: one obfuscation
// cycle, every member carrying the identical merged statistics.
type batchRequest struct {
	Queries []wireQuery `json:"queries"`
}

// wireQuery is one cycle member as a shard executes it.
type wireQuery struct {
	// Terms is the analyzed query in wire order; Global.DF aligns with
	// it, and cosine shards derive the query norm from it, so every
	// shard of a cycle computes the identical norm.
	Terms []string `json:"terms"`
	K     int      `json:"k"`
	// Mode names the execution strategy ("" = auto). Results are
	// identical across modes.
	Mode string `json:"mode,omitempty"`
	// Global is the router's merged N/totalLen/df for this query.
	Global *vsm.GlobalStats `json:"global"`
}

// batchResponse is the POST /cluster/batch reply; Responses align with
// the request's Queries.
type batchResponse struct {
	Responses []wireResponse `json:"responses"`
}

// wireResponse is one member's shard-local result: hits carry global
// document IDs and raw scores. Titles stay off this path — the router
// resolves display titles from its ingest-time cache.
type wireResponse struct {
	Hits  []wireHit     `json:"hits"`
	Stats vsm.ExecStats `json:"stats"`
}

type wireHit struct {
	Gid   corpus.DocID `json:"gid"`
	Score float64      `json:"score"`
}

// shardStats is the GET /cluster/stats reply and the refreshed-stats
// section of every mutation reply: the shard's live collection
// statistics, keyed by term string because shards have independent
// vocabularies. Mutation replies carry it synchronously so the
// router's merged tables are exact without extra round-trips.
type shardStats struct {
	// Docs and TotalLen are the shard's live document count and
	// analyzed token count.
	Docs     int   `json:"docs"`
	TotalLen int64 `json:"total_len"`
	// DF maps term → live document frequency (zero-df terms omitted).
	DF map[string]int `json:"df"`
	// MaxGid is the largest global ID ever ingested on this shard (-1
	// when empty); a restarting router resumes gid assignment above the
	// cluster-wide maximum.
	MaxGid corpus.DocID `json:"max_gid"`
	// AppliedSeq is the highest router journal sequence number this
	// shard has applied (in memory); DurableSeq is the highest it had
	// applied as of its last completed save — the high-water the router
	// prunes journaled mutations against. An in-memory shard reports
	// DurableSeq 0 forever: it can lose everything, so the journal must
	// retain everything.
	AppliedSeq uint64 `json:"applied_seq"`
	DurableSeq uint64 `json:"durable_seq"`
	// Instance is a random nonce drawn at shard process start. A change
	// between two stats reports is how the router counts shard restarts.
	Instance uint64 `json:"instance"`
	// Persistent reports whether the shard saves to disk at all.
	Persistent bool `json:"persistent"`
	// Scoring is the shard's scoring function; the router refuses
	// mixed-scoring clusters.
	Scoring string `json:"scoring"`
	// Index is the shard's index-shape statistics, for aggregation.
	Index index.Stats `json:"index"`
}

// ingestRequest is the POST /cluster/index payload: documents with
// router-assigned global IDs, in ascending gid order. Ascending order
// is load-bearing — the shard's store assigns dense local IDs in
// arrival order, and local order mirroring gid order is what keeps
// shard-local score tie-breaks identical to a single index's.
type ingestRequest struct {
	Docs []ingestDoc `json:"docs"`
	// Seq is the router's journal sequence number for this mutation
	// (0 = unjournaled). The shard tracks the high-water of applied
	// seqs and persists it with each save, so the router can tell
	// exactly which journal records a restarted shard still needs.
	Seq uint64 `json:"seq,omitempty"`
	// IfInstance, when nonzero, makes the ingest conditional on the
	// shard's process nonce: a shard whose instance differs rejects
	// with 412. That closes the restart race — the router's in-order
	// catch-up baseline is only valid for the instance it was read
	// from, so delivery to any other instance must bounce back to a
	// fresh reconciliation instead of applying out of order.
	IfInstance uint64 `json:"if_instance,omitempty"`
}

type ingestDoc struct {
	Gid corpus.DocID    `json:"gid"`
	Doc corpus.Document `json:"doc"`
}

// ingestResponse acknowledges an ingest with the shard's refreshed
// statistics.
type ingestResponse struct {
	Stats shardStats `json:"stats"`
}

// deleteResponse acknowledges a DELETE /cluster/doc/{gid} with the
// shard's refreshed statistics.
type deleteResponse struct {
	Stats shardStats `json:"stats"`
}
