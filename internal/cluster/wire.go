package cluster

import (
	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/vsm"
)

// The /cluster/* wire schema. Shards speak pre-analyzed terms, global
// document IDs and cluster-merged statistics; raw query text never
// reaches a shard (the router analyzes once), and store-local document
// IDs never leave one.

// batchRequest is the POST /cluster/batch payload: one obfuscation
// cycle, every member carrying the identical merged statistics.
type batchRequest struct {
	Queries []wireQuery `json:"queries"`
}

// wireQuery is one cycle member as a shard executes it.
type wireQuery struct {
	// Terms is the analyzed query in wire order; Global.DF aligns with
	// it, and cosine shards derive the query norm from it, so every
	// shard of a cycle computes the identical norm.
	Terms []string `json:"terms"`
	K     int      `json:"k"`
	// Mode names the execution strategy ("" = auto). Results are
	// identical across modes.
	Mode string `json:"mode,omitempty"`
	// Global is the router's merged N/totalLen/df for this query.
	Global *vsm.GlobalStats `json:"global"`
}

// batchResponse is the POST /cluster/batch reply; Responses align with
// the request's Queries.
type batchResponse struct {
	Responses []wireResponse `json:"responses"`
}

// wireResponse is one member's shard-local result: hits carry global
// document IDs and raw scores. Titles stay off this path — the router
// resolves display titles from its ingest-time cache.
type wireResponse struct {
	Hits  []wireHit     `json:"hits"`
	Stats vsm.ExecStats `json:"stats"`
}

type wireHit struct {
	Gid   corpus.DocID `json:"gid"`
	Score float64      `json:"score"`
}

// shardStats is the GET /cluster/stats reply and the refreshed-stats
// section of every mutation reply: the shard's live collection
// statistics, keyed by term string because shards have independent
// vocabularies. Mutation replies carry it synchronously so the
// router's merged tables are exact without extra round-trips.
type shardStats struct {
	// Docs and TotalLen are the shard's live document count and
	// analyzed token count.
	Docs     int   `json:"docs"`
	TotalLen int64 `json:"total_len"`
	// DF maps term → live document frequency (zero-df terms omitted).
	DF map[string]int `json:"df"`
	// MaxGid is the largest global ID ever ingested on this shard (-1
	// when empty); a restarting router resumes gid assignment above the
	// cluster-wide maximum.
	MaxGid corpus.DocID `json:"max_gid"`
	// Scoring is the shard's scoring function; the router refuses
	// mixed-scoring clusters.
	Scoring string `json:"scoring"`
	// Index is the shard's index-shape statistics, for aggregation.
	Index index.Stats `json:"index"`
}

// ingestRequest is the POST /cluster/index payload: documents with
// router-assigned global IDs, in ascending gid order. Ascending order
// is load-bearing — the shard's store assigns dense local IDs in
// arrival order, and local order mirroring gid order is what keeps
// shard-local score tie-breaks identical to a single index's.
type ingestRequest struct {
	Docs []ingestDoc `json:"docs"`
}

type ingestDoc struct {
	Gid corpus.DocID    `json:"gid"`
	Doc corpus.Document `json:"doc"`
}

// ingestResponse acknowledges an ingest with the shard's refreshed
// statistics.
type ingestResponse struct {
	Stats shardStats `json:"stats"`
}

// deleteResponse acknowledges a DELETE /cluster/doc/{gid} with the
// shard's refreshed statistics.
type deleteResponse struct {
	Stats shardStats `json:"stats"`
}
