package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"toppriv/internal/corpus"
	"toppriv/internal/search"
	"toppriv/internal/segment"
	"toppriv/internal/vsm"
)

// Shard serves one slice of the corpus over the /cluster/* wire
// schema, backed by an ordinary segment.Store. The shard is oblivious
// to the ring — the router decides placement — but it owns the
// gid↔local-ID translation: the store assigns its own dense IDs in
// arrival order, and because the router ingests each shard's documents
// in ascending global-ID order, local ID order mirrors global order.
// That mirroring is what keeps shard-local score tie-breaks (ascending
// local ID) identical to a single index's (ascending global ID) after
// the merge.
type Shard struct {
	store *segment.Store

	mu    sync.RWMutex
	gids  []corpus.DocID                // store-local dense ID → global ID
	byGid map[corpus.DocID]corpus.DocID // global ID → store-local ID
}

// NewShard wraps a live store in the shard wire surface.
func NewShard(store *segment.Store) *Shard {
	return &Shard{store: store, byGid: make(map[corpus.DocID]corpus.DocID)}
}

// Store exposes the backing store (for the standard search surface the
// shard process also serves).
func (s *Shard) Store() *segment.Store { return s.store }

// Mount attaches the shard's wire endpoints to a search server, beside
// the standard surface, sharing its HTTP instrumentation.
func (s *Shard) Mount(srv *search.Server) {
	srv.Handle("/cluster/batch", http.HandlerFunc(s.handleBatch))
	srv.Handle("/cluster/stats", http.HandlerFunc(s.handleStats))
	srv.Handle("/cluster/index", http.HandlerFunc(s.handleIngest))
	srv.Handle("/cluster/doc/", http.HandlerFunc(s.handleDoc))
}

// localStats snapshots the shard's live statistics for the router's
// merge. maxGid is passed in because callers hold s.mu in different
// modes; it is the last entry of s.gids, or -1 when empty.
func (s *Shard) localStats(maxGid corpus.DocID) shardStats {
	docs, totalLen, df := s.store.LocalStats()
	return shardStats{
		Docs:     docs,
		TotalLen: totalLen,
		DF:       df,
		MaxGid:   maxGid,
		Scoring:  s.store.Scoring().String(),
		Index:    s.store.ComputeStats(),
	}
}

// maxGid reads the ingest high-water mark.
func (s *Shard) maxGid() corpus.DocID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.gids) == 0 {
		return -1
	}
	return s.gids[len(s.gids)-1]
}

func (s *Shard) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.localStats(s.maxGid()))
}

// handleBatch executes one cycle against the local store. Every member
// carries the router's merged statistics, so the store's engines weigh
// query terms with cluster-wide N/df/avgdl while traversing only local
// postings.
func (s *Shard) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var br batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&br); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	reqs := make([]vsm.Request, len(br.Queries))
	for i, q := range br.Queries {
		mode, err := vsm.ParseExecMode(q.Mode)
		if err != nil {
			http.Error(w, fmt.Sprintf("member %d: %v", i, err), http.StatusBadRequest)
			return
		}
		terms := q.Terms
		if terms == nil {
			terms = []string{}
		}
		reqs[i] = vsm.Request{Terms: terms, K: q.K, Mode: mode, Global: q.Global}
	}
	resps, err := s.store.SearchBatch(r.Context(), reqs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := batchResponse{Responses: make([]wireResponse, len(resps))}
	s.mu.RLock()
	for i := range resps {
		hits := make([]wireHit, len(resps[i].Hits))
		for j, h := range resps[i].Hits {
			hits[j] = wireHit{Gid: s.gids[h.Doc], Score: h.Score}
		}
		out.Responses[i] = wireResponse{Hits: hits, Stats: resps[i].Stats}
	}
	s.mu.RUnlock()
	writeJSON(w, out)
}

// handleIngest adds router-placed documents. Replayed documents (gids
// already mapped — a router retry after a lost response) are skipped,
// making ingest idempotent; a never-seen gid at or below the current
// high-water mark is refused because mapping it would break the
// local-order-mirrors-global-order invariant.
func (s *Shard) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var ir ingestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20)).Decode(&ir); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	maxGid := corpus.DocID(-1)
	if len(s.gids) > 0 {
		maxGid = s.gids[len(s.gids)-1]
	}
	fresh := make([]corpus.Document, 0, len(ir.Docs))
	freshGids := make([]corpus.DocID, 0, len(ir.Docs))
	last := maxGid
	for _, d := range ir.Docs {
		if _, known := s.byGid[d.Gid]; known {
			continue
		}
		if d.Gid <= last {
			http.Error(w, fmt.Sprintf("gid %d arrives out of order (high-water %d)", d.Gid, last), http.StatusConflict)
			return
		}
		last = d.Gid
		fresh = append(fresh, d.Doc)
		freshGids = append(freshGids, d.Gid)
	}
	if len(fresh) > 0 {
		locals, err := s.store.Add(fresh...)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for i, local := range locals {
			if int(local) != len(s.gids) {
				// The store assigns dense sequential IDs; anything else
				// breaks the gid translation table.
				http.Error(w, fmt.Sprintf("store assigned non-dense id %d", local), http.StatusInternalServerError)
				return
			}
			s.gids = append(s.gids, freshGids[i])
			s.byGid[freshGids[i]] = local
		}
	}
	maxGid = -1
	if len(s.gids) > 0 {
		maxGid = s.gids[len(s.gids)-1]
	}
	writeJSON(w, ingestResponse{Stats: s.localStats(maxGid)})
}

// handleDoc serves GET (fetch) and DELETE (tombstone) for one global
// document ID.
func (s *Shard) handleDoc(w http.ResponseWriter, r *http.Request) {
	gidStr := strings.TrimPrefix(r.URL.Path, "/cluster/doc/")
	gid64, err := strconv.ParseInt(gidStr, 10, 32)
	if err != nil || gid64 < 0 {
		http.Error(w, "no such document", http.StatusNotFound)
		return
	}
	gid := corpus.DocID(gid64)
	s.mu.RLock()
	local, ok := s.byGid[gid]
	s.mu.RUnlock()
	if !ok {
		http.Error(w, "no such document", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		doc, ok := s.store.Doc(local)
		if !ok {
			http.Error(w, "no such document", http.StatusNotFound)
			return
		}
		doc.ID = gid
		writeJSON(w, doc)
	case http.MethodDelete:
		if err := s.store.Delete(local); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, deleteResponse{Stats: s.localStats(s.maxGid())})
	default:
		http.Error(w, "GET or DELETE required", http.StatusMethodNotAllowed)
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
