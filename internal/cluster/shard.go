package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"toppriv/internal/corpus"
	"toppriv/internal/search"
	"toppriv/internal/segment"
	"toppriv/internal/vsm"
)

// Shard serves one slice of the corpus over the /cluster/* wire
// schema, backed by an ordinary segment.Store. The shard is oblivious
// to the ring — the router decides placement — but it owns the
// gid↔local-ID translation: the store assigns its own dense IDs in
// arrival order, and because the router ingests each shard's documents
// in ascending global-ID order, local ID order mirrors global order.
// That mirroring is what keeps shard-local score tie-breaks (ascending
// local ID) identical to a single index's (ascending global ID) after
// the merge.
//
// A shard opened with OpenShard is persistent: the gid table and the
// applied journal sequence are saved atomically beside the store's
// crash-safe generation-numbered manifest, and recovered on restart.
// The title table needs no file of its own — titles live inside the
// documents the store already persists. Anything ingested after the
// last save is lost by kill -9 by design: the shard's durable sequence
// tells the router exactly which journaled mutations to re-drive.
type Shard struct {
	store *segment.Store
	cfg   ShardConfig

	// instance is a process-lifetime nonce; the router detects shard
	// restarts by watching it change across stats reports.
	instance uint64

	// mutMu serializes mutations and saves against each other, so a
	// save's store snapshot and its gid-table snapshot always describe
	// the same state. Queries never take it. Ordered before mu.
	mutMu sync.Mutex

	mu    sync.RWMutex
	gids  []corpus.DocID                // store-local dense ID → global ID (-1: recovered hole)
	byGid map[corpus.DocID]corpus.DocID // global ID → store-local ID
	// hwm is the largest gid ever mapped (-1 when none): the ingest
	// ordering check, kept as a field because recovery can leave holes
	// at the tail of gids.
	hwm corpus.DocID
	// appliedSeq is the highest journal sequence applied; durableSeq is
	// its value as of the last completed save.
	appliedSeq uint64
	durableSeq uint64
	// dirty counts mutations since the last save.
	dirty int

	saveCh  chan struct{}
	closeCh chan struct{}
	wg      sync.WaitGroup
	closed  bool
}

// ShardConfig parameterizes a persistent shard.
type ShardConfig struct {
	// Dir is the persistence directory (store segments + SHARD.json).
	// Empty means in-memory only.
	Dir string
	// SaveEvery triggers a background save after this many mutations
	// (ingest batches and deletes). Zero means 32.
	SaveEvery int
	// SaveInterval is the background saver's poll interval; a save runs
	// on the tick whenever unsaved mutations exist. Zero means 5s.
	SaveInterval time.Duration
	// Logf receives save-path diagnostics (nil = silent).
	Logf func(format string, args ...interface{})
}

func (c ShardConfig) withDefaults() ShardConfig {
	if c.SaveEvery == 0 {
		c.SaveEvery = 32
	}
	if c.SaveInterval == 0 {
		c.SaveInterval = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

const (
	shardMetaName    = "SHARD.json"
	shardMetaVersion = 1
)

// shardMeta is the gid-table sidecar, written atomically after each
// store save. It always describes a state at or before the saved
// store's: a crash between store save and meta write leaves the meta
// one save behind, which recovery repairs by tombstoning the store's
// unmapped tail documents (the router re-drives them afterwards).
type shardMeta struct {
	Version    int            `json:"version"`
	Gids       []corpus.DocID `json:"gids"`
	AppliedSeq uint64         `json:"applied_seq"`
}

// NewShard wraps a live store in the shard wire surface, in-memory
// only: nothing survives a restart, and the shard reports durable
// sequence 0 so a journaling router retains every mutation for replay.
func NewShard(store *segment.Store) *Shard {
	return &Shard{
		store:    store,
		cfg:      ShardConfig{}.withDefaults(),
		instance: rand.Uint64() | 1,
		byGid:    make(map[corpus.DocID]corpus.DocID),
		hwm:      -1,
		saveCh:   make(chan struct{}, 1),
		closeCh:  make(chan struct{}),
	}
}

// OpenShard opens a persistent shard in cfg.Dir: an existing store
// manifest and SHARD.json are recovered (a never-crashed and a crashed-
// and-recovered shard answer identically for everything durable), an
// empty directory starts a fresh shard. The background saver starts
// immediately.
func OpenShard(storeCfg segment.Config, cfg ShardConfig) (*Shard, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: OpenShard requires a directory (use NewShard for in-memory)")
	}
	var store *segment.Store
	var err error
	haveManifest := false
	if _, serr := os.Stat(filepath.Join(cfg.Dir, "MANIFEST.json")); serr == nil {
		haveManifest = true
		store, err = segment.Load(cfg.Dir, storeCfg)
	} else {
		store, err = segment.Open(storeCfg)
	}
	if err != nil {
		return nil, err
	}
	s := NewShard(store)
	s.cfg = cfg
	if err := s.recover(haveManifest); err != nil {
		store.Close()
		return nil, err
	}
	s.wg.Add(1)
	go s.saveLoop()
	return s, nil
}

// recover reconciles the store's document count with the persisted gid
// table. The meta is written after the store save, so the only crash
// inconsistency is a store one save ahead of its meta: documents exist
// whose gid mapping was lost. Those tail documents are tombstoned —
// they are unreachable by gid and were never shard-durable in the
// journal's eyes, so the router re-drives them as fresh ingests.
func (s *Shard) recover(haveManifest bool) error {
	var meta shardMeta
	metaPath := filepath.Join(s.cfg.Dir, shardMetaName)
	f, err := os.Open(metaPath)
	switch {
	case err == nil:
		derr := json.NewDecoder(f).Decode(&meta)
		f.Close()
		if derr != nil {
			return fmt.Errorf("cluster: shard meta corrupt: %w", derr)
		}
		if meta.Version != shardMetaVersion {
			return fmt.Errorf("cluster: shard meta: unsupported version %d", meta.Version)
		}
		if !haveManifest && len(meta.Gids) > 0 {
			return fmt.Errorf("cluster: shard meta present but store manifest missing in %s", s.cfg.Dir)
		}
	case os.IsNotExist(err):
		if haveManifest {
			// A store without a gid table is a -live directory, not a
			// shard's; serving it would invent gid mappings.
			return fmt.Errorf("cluster: %s holds a store but no %s — not a shard directory", s.cfg.Dir, shardMetaName)
		}
	default:
		return fmt.Errorf("cluster: shard meta: %w", err)
	}

	total := int(s.store.Stats().NextID) // dense local IDs: total docs ever, dead included
	if len(meta.Gids) > total {
		return fmt.Errorf("cluster: shard meta maps %d docs but store holds %d", len(meta.Gids), total)
	}
	s.gids = append(s.gids, meta.Gids...)
	for local, gid := range s.gids {
		if gid < 0 {
			continue
		}
		s.byGid[gid] = corpus.DocID(local)
		if gid > s.hwm {
			s.hwm = gid
		}
	}
	// Store ahead of meta: tombstone the unmapped tail and record holes.
	for local := len(meta.Gids); local < total; local++ {
		if err := s.store.Delete(corpus.DocID(local)); err != nil && err != segment.ErrNotFound {
			return fmt.Errorf("cluster: shard recovery: tombstoning unmapped doc %d: %w", local, err)
		}
		s.gids = append(s.gids, -1)
	}
	if dropped := total - len(meta.Gids); dropped > 0 {
		s.cfg.Logf("cluster: shard recovery dropped %d unmapped tail document(s); the router will re-drive them", dropped)
	}
	s.appliedSeq = meta.AppliedSeq
	s.durableSeq = meta.AppliedSeq
	return nil
}

// Store exposes the backing store (for the standard search surface the
// shard process also serves).
func (s *Shard) Store() *segment.Store { return s.store }

// Persistent reports whether the shard saves to disk.
func (s *Shard) Persistent() bool { return s.cfg.Dir != "" }

// Mount attaches the shard's wire endpoints to a search server, beside
// the standard surface, sharing its HTTP instrumentation.
func (s *Shard) Mount(srv *search.Server) {
	srv.Handle("/cluster/batch", http.HandlerFunc(s.handleBatch))
	srv.Handle("/cluster/stats", http.HandlerFunc(s.handleStats))
	srv.Handle("/cluster/index", http.HandlerFunc(s.handleIngest))
	srv.Handle("/cluster/doc/", http.HandlerFunc(s.handleDoc))
}

// saveLoop is the background saver: it saves when kicked past the
// mutation threshold and on every interval tick with unsaved work.
func (s *Shard) saveLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.SaveInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.closeCh:
			return
		case <-s.saveCh:
		case <-tick.C:
			s.mu.RLock()
			dirty := s.dirty
			s.mu.RUnlock()
			if dirty == 0 {
				continue
			}
		}
		if err := s.Save(); err != nil {
			s.cfg.Logf("cluster: shard background save: %v", err)
		}
	}
}

// noteMutation bumps the dirty counter (caller holds s.mu) and returns
// whether the save threshold tripped.
func (s *Shard) noteMutationLocked() bool {
	s.dirty++
	return s.cfg.Dir != "" && s.dirty >= s.cfg.SaveEvery
}

func (s *Shard) kickSave() {
	select {
	case s.saveCh <- struct{}{}:
	default:
	}
}

// Save persists the store (segments + manifest, the existing
// generation-numbered crash-safe path) and then the gid table
// atomically. Mutations are held off for the duration so both files
// describe one state; queries proceed throughout. No-op without a
// persistence directory.
func (s *Shard) Save() error {
	if s.cfg.Dir == "" {
		return nil
	}
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	if err := s.store.Save(s.cfg.Dir); err != nil {
		return err
	}
	s.mu.RLock()
	meta := shardMeta{
		Version:    shardMetaVersion,
		Gids:       append([]corpus.DocID(nil), s.gids...),
		AppliedSeq: s.appliedSeq,
	}
	s.mu.RUnlock()
	tmp := filepath.Join(s.cfg.Dir, shardMetaName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cluster: shard meta: %w", err)
	}
	if err := json.NewEncoder(f).Encode(&meta); err != nil {
		f.Close()
		return fmt.Errorf("cluster: shard meta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("cluster: shard meta: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cluster: shard meta: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.cfg.Dir, shardMetaName)); err != nil {
		return fmt.Errorf("cluster: shard meta: %w", err)
	}
	if err := syncJournalDir(s.cfg.Dir); err != nil {
		return err
	}
	s.mu.Lock()
	s.durableSeq = meta.AppliedSeq
	s.dirty = 0
	s.mu.Unlock()
	return nil
}

// Close stops the background saver, closes the store against further
// mutations, and takes a final save — the graceful-drain order, so
// nothing acknowledged before Close can miss the disk.
func (s *Shard) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.closeCh)
	s.wg.Wait()
	s.store.Close()
	return s.Save()
}

// localStats snapshots the shard's live statistics for the router's
// merge.
func (s *Shard) localStats() shardStats {
	docs, totalLen, df := s.store.LocalStats()
	s.mu.RLock()
	maxGid := s.hwm
	applied := s.appliedSeq
	durable := s.durableSeq
	s.mu.RUnlock()
	if !s.Persistent() {
		durable = 0
	}
	return shardStats{
		Docs:       docs,
		TotalLen:   totalLen,
		DF:         df,
		MaxGid:     maxGid,
		AppliedSeq: applied,
		DurableSeq: durable,
		Instance:   s.instance,
		Persistent: s.Persistent(),
		Scoring:    s.store.Scoring().String(),
		Index:      s.store.ComputeStats(),
	}
}

func (s *Shard) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.localStats())
}

// handleBatch executes one cycle against the local store. Every member
// carries the router's merged statistics, so the store's engines weigh
// query terms with cluster-wide N/df/avgdl while traversing only local
// postings.
func (s *Shard) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var br batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&br); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	reqs := make([]vsm.Request, len(br.Queries))
	for i, q := range br.Queries {
		mode, err := vsm.ParseExecMode(q.Mode)
		if err != nil {
			http.Error(w, fmt.Sprintf("member %d: %v", i, err), http.StatusBadRequest)
			return
		}
		terms := q.Terms
		if terms == nil {
			terms = []string{}
		}
		reqs[i] = vsm.Request{Terms: terms, K: q.K, Mode: mode, Global: q.Global}
	}
	resps, err := s.store.SearchBatch(r.Context(), reqs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := batchResponse{Responses: make([]wireResponse, len(resps))}
	s.mu.RLock()
	for i := range resps {
		hits := make([]wireHit, len(resps[i].Hits))
		for j, h := range resps[i].Hits {
			hits[j] = wireHit{Gid: s.gids[h.Doc], Score: h.Score}
		}
		out.Responses[i] = wireResponse{Hits: hits, Stats: resps[i].Stats}
	}
	s.mu.RUnlock()
	writeJSON(w, out)
}

// handleIngest adds router-placed documents. Replayed documents (gids
// already mapped — a router retry after a lost response, or a journal
// re-drive after a crash) are skipped, making ingest idempotent; a
// never-seen gid at or below the current high-water mark is refused
// because mapping it would break the local-order-mirrors-global-order
// invariant. The request's journal sequence advances the applied
// high-water even when every document is a replay.
func (s *Shard) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var ir ingestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20)).Decode(&ir); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if ir.IfInstance != 0 && ir.IfInstance != s.instance {
		http.Error(w, fmt.Sprintf("instance mismatch: request for %x, shard is %x", ir.IfInstance, s.instance), http.StatusPreconditionFailed)
		return
	}
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	s.mu.RLock()
	last := s.hwm
	fresh := make([]corpus.Document, 0, len(ir.Docs))
	freshGids := make([]corpus.DocID, 0, len(ir.Docs))
	conflict := corpus.DocID(-1)
	for _, d := range ir.Docs {
		if _, known := s.byGid[d.Gid]; known {
			continue
		}
		if d.Gid <= last {
			conflict = d.Gid
			break
		}
		last = d.Gid
		fresh = append(fresh, d.Doc)
		freshGids = append(freshGids, d.Gid)
	}
	s.mu.RUnlock()
	if conflict >= 0 {
		http.Error(w, fmt.Sprintf("gid %d arrives out of order (high-water %d)", conflict, last), http.StatusConflict)
		return
	}
	if len(fresh) > 0 {
		locals, err := s.store.Add(fresh...)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.mu.Lock()
		for i, local := range locals {
			if int(local) != len(s.gids) {
				// The store assigns dense sequential IDs; anything else
				// breaks the gid translation table.
				s.mu.Unlock()
				http.Error(w, fmt.Sprintf("store assigned non-dense id %d", local), http.StatusInternalServerError)
				return
			}
			s.gids = append(s.gids, freshGids[i])
			s.byGid[freshGids[i]] = local
			if freshGids[i] > s.hwm {
				s.hwm = freshGids[i]
			}
		}
		s.mu.Unlock()
	}
	s.finishMutation(ir.Seq)
	writeJSON(w, ingestResponse{Stats: s.localStats()})
}

// finishMutation advances the applied journal sequence and the dirty
// counter after a successful mutation, kicking the saver at threshold.
// Caller holds mutMu.
func (s *Shard) finishMutation(seq uint64) {
	s.mu.Lock()
	if seq > s.appliedSeq {
		s.appliedSeq = seq
	}
	kick := s.noteMutationLocked()
	s.mu.Unlock()
	if kick {
		s.kickSave()
	}
}

// handleDoc serves GET (fetch) and DELETE (tombstone) for one global
// document ID. Journaled deletes carry their sequence number in the
// ?seq query parameter.
func (s *Shard) handleDoc(w http.ResponseWriter, r *http.Request) {
	gidStr := strings.TrimPrefix(r.URL.Path, "/cluster/doc/")
	gid64, err := strconv.ParseInt(gidStr, 10, 32)
	if err != nil || gid64 < 0 {
		http.Error(w, "no such document", http.StatusNotFound)
		return
	}
	gid := corpus.DocID(gid64)
	s.mu.RLock()
	local, ok := s.byGid[gid]
	s.mu.RUnlock()
	switch r.Method {
	case http.MethodGet:
		if !ok {
			http.Error(w, "no such document", http.StatusNotFound)
			return
		}
		doc, ok := s.store.Doc(local)
		if !ok {
			http.Error(w, "no such document", http.StatusNotFound)
			return
		}
		doc.ID = gid
		writeJSON(w, doc)
	case http.MethodDelete:
		var seq uint64
		if v := r.URL.Query().Get("seq"); v != "" {
			seq, _ = strconv.ParseUint(v, 10, 64)
		}
		if v := r.URL.Query().Get("instance"); v != "" {
			want, _ := strconv.ParseUint(v, 10, 64)
			if want != 0 && want != s.instance {
				http.Error(w, fmt.Sprintf("instance mismatch: request for %x, shard is %x", want, s.instance), http.StatusPreconditionFailed)
				return
			}
		}
		s.mutMu.Lock()
		defer s.mutMu.Unlock()
		if !ok {
			http.Error(w, "no such document", http.StatusNotFound)
			return
		}
		if err := s.store.Delete(local); err != nil {
			if seq > 0 && err == segment.ErrNotFound {
				// A journal re-drive of a delete that already applied:
				// idempotent, advance the sequence and acknowledge.
				s.finishMutation(seq)
				writeJSON(w, deleteResponse{Stats: s.localStats()})
				return
			}
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		s.finishMutation(seq)
		writeJSON(w, deleteResponse{Stats: s.localStats()})
	default:
		http.Error(w, "GET or DELETE required", http.StatusMethodNotAllowed)
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
