package cluster

import (
	"bytes"
	"context"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"toppriv/internal/corpus"
	"toppriv/internal/search"
	"toppriv/internal/telemetry"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// ownedBy returns the survivor gids the ring places on shard i.
func ownedBy(r *Router, gids []corpus.DocID, i int) map[corpus.DocID]bool {
	owned := make(map[corpus.DocID]bool)
	for _, gid := range gids {
		if r.ring.place(gid) == i {
			owned[gid] = true
		}
	}
	return owned
}

// degradedWant cuts the healthy full-retrieval result down to what the
// survivors can serve: drop the dead shard's documents, keep order,
// truncate to k. Because the router scores with cached full-cluster
// statistics, survivor scores must be bit-identical to the healthy
// run's.
func degradedWant(full []vsm.Result, dead map[corpus.DocID]bool, k int) []vsm.Result {
	out := make([]vsm.Result, 0, k)
	for _, res := range full {
		if dead[res.Doc] {
			continue
		}
		out = append(out, res)
		if len(out) == k {
			break
		}
	}
	return out
}

func checkDegradedResults(t *testing.T, resp vsm.Response, want []vsm.Result, deadName string) {
	t.Helper()
	if !resp.Degraded {
		t.Fatal("response from partial cluster not marked Degraded")
	}
	okShards, failShards := 0, 0
	for _, st := range resp.Shards {
		if st.OK {
			okShards++
			continue
		}
		failShards++
		if st.Shard != deadName {
			t.Fatalf("healthy shard %s reported failed: %s", st.Shard, st.Err)
		}
		if st.Err == "" {
			t.Fatal("failed shard carries no error")
		}
	}
	if failShards != 1 {
		t.Fatalf("%d shards reported failed, want exactly the dead one", failShards)
	}
	if len(resp.Hits) != len(want) {
		t.Fatalf("degraded merge returned %d hits, want %d", len(resp.Hits), len(want))
	}
	for i := range want {
		if resp.Hits[i].Doc != want[i].Doc || math.Abs(resp.Hits[i].Score-want[i].Score) > 0 {
			t.Fatalf("degraded rank %d: got doc %d score %.12f, want doc %d score %.12f",
				i, resp.Hits[i].Doc, resp.Hits[i].Score, want[i].Doc, want[i].Score)
		}
	}
}

// TestClusterDegradesOnDeadShard: killing a shard process must never
// fail a query — the survivors' merged results come back flagged, with
// scores unchanged from the healthy run, within the shard deadline.
func TestClusterDegradesOnDeadShard(t *testing.T) {
	tc := newTestCluster(t, vsm.BM25, 3, Config{Deadline: 2 * time.Second})
	r := tc.router
	docs := synthDocs(t, 50, 77)
	gids, err := r.Add(docs...)
	if err != nil {
		t.Fatal(err)
	}

	queries := make([][]string, 0, 6)
	an := textproc.NewAnalyzer()
	for i := 0; i < 6; i++ {
		queries = append(queries, an.Analyze(queryFrom(docs[i*7], i*5, 4)))
	}

	// Healthy baseline at full retrieval.
	full := make([][]vsm.Result, len(queries))
	for i, terms := range queries {
		resp, err := r.SearchRequest(context.Background(), vsm.Request{Terms: terms, K: len(gids)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Degraded {
			t.Fatalf("healthy cluster degraded: %+v", resp.Shards)
		}
		full[i] = resp.Hits
	}

	const victim = 1
	dead := ownedBy(r, gids, victim)
	if len(dead) == 0 || len(dead) == len(gids) {
		t.Fatalf("degenerate placement: victim owns %d of %d docs", len(dead), len(gids))
	}
	tc.servers[victim].Close()

	const k = 10
	for i, terms := range queries {
		resp, err := r.SearchRequest(context.Background(), vsm.Request{Terms: terms, K: k})
		if err != nil {
			t.Fatalf("query against partial cluster errored: %v", err)
		}
		checkDegradedResults(t, resp, degradedWant(full[i], dead, k), r.shards[victim].name)
	}

	// Health surface: the victim is down with an error recorded, the
	// survivors are up, and the degraded-cycle counter moved.
	h := r.ClusterHealth()
	if h.Degraded == 0 {
		t.Fatal("degraded counter did not move")
	}
	for i, sh := range h.Shards {
		if i == victim {
			if sh.Up || sh.LastError == "" || sh.Errors == 0 {
				t.Fatalf("victim health not reported: %+v", sh)
			}
		} else if !sh.Up {
			t.Fatalf("survivor %s reported down: %+v", sh.Shard, sh)
		}
	}

	// All shards down: still no error — empty, fully degraded response.
	for _, ts := range tc.servers {
		ts.Close()
	}
	resp, err := r.SearchRequest(context.Background(), vsm.Request{Terms: queries[0], K: k})
	if err != nil {
		t.Fatalf("query against fully-dead cluster errored: %v", err)
	}
	if !resp.Degraded || len(resp.Hits) != 0 {
		t.Fatalf("fully-dead cluster: degraded=%v hits=%d", resp.Degraded, len(resp.Hits))
	}
	// Mutations are the opposite contract: they must error.
	if _, err := r.Add(docs[0]); err == nil {
		t.Fatal("ingest into dead cluster did not error")
	}
	if err := r.Delete(gids[0]); err == nil {
		t.Fatal("delete against dead cluster did not error")
	}
}

// TestClusterDeadlineBoundsSlowShard: a shard that stalls past its
// deadline is cut off — the query returns promptly with survivor
// results, and the stall does not leak goroutines.
func TestClusterDeadlineBoundsSlowShard(t *testing.T) {
	const deadline = 150 * time.Millisecond
	var stall atomic.Bool
	tc := newTestCluster(t, vsm.Cosine, 3, Config{Deadline: deadline})
	// Re-front shard 2 with a stalling proxy: same backing server, but
	// /cluster/batch hangs far past the router deadline when tripped.
	inner := tc.servers[2]
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stall.Load() && r.URL.Path == "/cluster/batch" {
			time.Sleep(10 * deadline)
		}
		proxyTo(t, inner.URL, w, r)
	}))
	defer slow.Close()
	shardURLs := []string{tc.servers[0].URL, tc.servers[1].URL, slow.URL}
	r, err := New(Config{Shards: shardURLs, Deadline: deadline, Analyzer: textproc.NewAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}

	docs := synthDocs(t, 40, 5)
	gids, err := r.Add(docs...)
	if err != nil {
		t.Fatal(err)
	}
	an := textproc.NewAnalyzer()
	terms := an.Analyze(queryFrom(docs[3], 2, 4))
	fullResp, err := r.SearchRequest(context.Background(), vsm.Request{Terms: terms, K: len(gids)})
	if err != nil || fullResp.Degraded {
		t.Fatalf("healthy baseline failed: err=%v degraded=%v", err, fullResp.Degraded)
	}

	before := runtime.NumGoroutine()
	stall.Store(true)
	const k = 10
	start := time.Now()
	resp, err := r.SearchRequest(context.Background(), vsm.Request{Terms: terms, K: k})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("slow shard failed the query: %v", err)
	}
	if elapsed > 6*deadline {
		t.Fatalf("query took %v, deadline %v not enforced", elapsed, deadline)
	}
	dead := ownedBy(r, gids, 2)
	checkDegradedResults(t, resp, degradedWant(fullResp.Hits, dead, k), slow.URL)
	for _, st := range resp.Shards {
		if !st.OK && !strings.Contains(st.Err, "deadline") {
			t.Fatalf("slow shard error does not name the deadline: %q", st.Err)
		}
	}
	stall.Store(false)

	// The stalled exchanges' goroutines must drain once their sleeps
	// and contexts unwind — no per-degraded-query leak.
	deadlineAt := time.Now().Add(15 * deadline)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadlineAt) {
			t.Fatalf("goroutines leaked: %d before stall, %d after settle", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// proxyTo forwards one request to a backing server, streaming status,
// headers and body — a minimal fault-injection seam.
func proxyTo(t testing.TB, base string, w http.ResponseWriter, r *http.Request) {
	var body bytes.Buffer
	if r.Body != nil {
		body.ReadFrom(r.Body)
	}
	req, err := http.NewRequest(r.Method, base+r.URL.Path, &body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for key, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(key, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	w.Write(out.Bytes())
}

// rstListener RST-kills the first n accepted connections — a shard
// mid-restart as the router's transport sees it.
type rstListener struct {
	net.Listener
	kills atomic.Int32
}

func (l *rstListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.kills.Load() <= 0 {
			return c, nil
		}
		l.kills.Add(-1)
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.Close()
	}
}

// TestClusterRetryRidesOutFlakyShard: with a retry budget, connection
// resets from a restarting shard do not degrade the query; without
// one, they do.
func TestClusterRetryRidesOutFlakyShard(t *testing.T) {
	tc := newTestCluster(t, vsm.Cosine, 2, Config{})
	docs := synthDocs(t, 30, 9)
	if _, err := tc.router.Add(docs...); err != nil {
		t.Fatal(err)
	}

	// Re-front shard 1 through a flaky listener proxying to the real
	// shard. Keep-alives are disabled on the router's client so every
	// exchange dials the flaky listener fresh.
	inner := tc.servers[1]
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &rstListener{Listener: ln}
	proxy := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		proxyTo(t, inner.URL, w, r)
	})}
	go proxy.Serve(fl)
	defer proxy.Close()

	noKeepAlive := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	shardURLs := []string{tc.servers[0].URL, "http://" + ln.Addr().String()}
	an := textproc.NewAnalyzer()
	terms := an.Analyze(queryFrom(docs[2], 0, 4))

	// Without retries the reset degrades the cycle.
	bare, err := New(Config{Shards: shardURLs, HTTPClient: noKeepAlive, Analyzer: textproc.NewAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	fl.kills.Store(1)
	resp, err := bare.SearchRequest(context.Background(), vsm.Request{Terms: terms, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("reset without retry budget did not degrade")
	}

	// With a budget the same fault is invisible.
	retrying, err := New(Config{
		Shards:     shardURLs,
		HTTPClient: noKeepAlive,
		Retry:      search.RetryPolicy{Max: 2, Base: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Analyzer:   textproc.NewAnalyzer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fl.kills.Store(2)
	resp, err = retrying.SearchRequest(context.Background(), vsm.Request{Terms: terms, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Fatalf("retry budget did not ride out resets: %+v", resp.Shards)
	}
	if len(resp.Hits) == 0 {
		t.Fatal("no hits after recovery")
	}
}

// TestClusterPartialIngestBurnsGidRange: when one shard rejects its
// slice of an Add after another shard already accepted, the failed
// batch's gid range must be burned — a fresh Add assigns strictly
// higher gids. Reusing the range would bind the same gid to different
// documents: the shard that accepted would silently skip the replayed
// gids (idempotency check) while other shards indexed the new
// documents under them.
func TestClusterPartialIngestBurnsGidRange(t *testing.T) {
	var failIngest atomic.Bool
	tc := newTestCluster(t, vsm.Cosine, 2, Config{})
	inner := tc.servers[1]
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failIngest.Load() && r.URL.Path == "/cluster/index" {
			http.Error(w, "injected ingest failure", http.StatusInternalServerError)
			return
		}
		proxyTo(t, inner.URL, w, r)
	}))
	defer proxy.Close()
	r, err := New(Config{
		Shards:   []string{tc.servers[0].URL, proxy.URL},
		Analyzer: textproc.NewAnalyzer(),
	})
	if err != nil {
		t.Fatal(err)
	}

	docs := synthDocs(t, 40, 21)
	base, err := r.Add(docs[:4]...)
	if err != nil {
		t.Fatal(err)
	}

	// The failed batch must straddle both shards: shard 0 has to accept
	// part of it (so its gids get mapped) and the proxied shard 1 has to
	// own part of it (so the injected failure fires at all).
	failed := docs[4:20]
	burnedTop := base[len(base)-1] + corpus.DocID(len(failed))
	owned := [2]int{}
	for gid := base[len(base)-1] + 1; gid <= burnedTop; gid++ {
		owned[r.ring.place(gid)]++
	}
	if owned[0] == 0 || owned[1] == 0 {
		t.Fatalf("degenerate placement: failed range splits %d/%d across the shards", owned[0], owned[1])
	}

	failIngest.Store(true)
	if _, err := r.Add(failed...); err == nil {
		t.Fatal("partial ingest did not error")
	}
	failIngest.Store(false)

	fresh, err := r.Add(docs[20:]...)
	if err != nil {
		t.Fatal(err)
	}
	if fresh[0] <= burnedTop {
		t.Fatalf("fresh Add reused gid %d from the failed range (burned through %d)", fresh[0], burnedTop)
	}
	// Every fresh gid must resolve to exactly the document it was
	// assigned to — no silent idempotency drops, no cross-shard aliasing.
	for i, gid := range fresh {
		got, ok := r.Doc(gid)
		if !ok {
			t.Fatalf("gid %d reported ingested but not fetchable", gid)
		}
		if got.Text != docs[20+i].Text {
			t.Fatalf("gid %d names the wrong document", gid)
		}
	}
	// A router restarted against these shards resumes above everything
	// any shard has mapped, burned holes included.
	r2, err := New(Config{
		Shards:   []string{tc.servers[0].URL, proxy.URL},
		Analyzer: textproc.NewAnalyzer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	again, err := r2.Add(docs[0])
	if err != nil {
		t.Fatal(err)
	}
	if again[0] <= fresh[len(fresh)-1] {
		t.Fatalf("restarted router assigned gid %d at or below high-water %d", again[0], fresh[len(fresh)-1])
	}
}

// TestClusterMetricsExposition: EnableMetrics registers the per-shard
// health families and they appear in the text exposition.
func TestClusterMetricsExposition(t *testing.T) {
	tc := newTestCluster(t, vsm.Cosine, 2, Config{})
	docs := synthDocs(t, 10, 3)
	if _, err := tc.router.Add(docs...); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tc.router.EnableMetrics(reg, nil)
	if _, err := tc.router.Search("topic", 3), error(nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"toppriv_cluster_shard_requests_total",
		"toppriv_cluster_shard_up",
		"toppriv_cluster_shard_seconds",
		"toppriv_cluster_degraded_queries_total",
		"toppriv_cluster_shards 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}
