package cluster

import (
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"syscall"
	"time"
)

// FaultTransport is the deterministic fault-injection harness for the
// distributed tier: an http.RoundTripper wrapper that injects the
// failure modes a real network produces — connection resets, delays,
// responses cut mid-body, and blackholed exchanges — from a seeded
// source, so a failing trial replays exactly from its seed. It pairs
// with the journal writer's kill-after-N-bytes crash hook to drive the
// crash-anywhere recovery property tests.
//
// The errors it fabricates are shaped like the real thing: a reset
// surfaces as a *net.OpError wrapping syscall.ECONNRESET, so
// search.RetryPolicy classifies injected faults exactly as it would
// classify the genuine article.
type FaultTransport struct {
	// Base performs the real exchange (nil = http.DefaultTransport).
	Base http.RoundTripper

	mu    sync.Mutex
	rng   *rand.Rand
	plan  FaultPlan
	queue []FaultKind
	armed bool
	count map[FaultKind]uint64
}

// FaultKind names one injectable transport fault.
type FaultKind int

const (
	// FaultNone passes the exchange through untouched.
	FaultNone FaultKind = iota
	// FaultReset fails the exchange with a connection reset before the
	// request reaches the shard (the shard never sees it).
	FaultReset
	// FaultDelay delays the exchange by the plan's DelayFor, then
	// delivers it normally.
	FaultDelay
	// FaultPartial delivers the request but cuts the response body
	// after a few bytes — the shard applied the mutation, the caller
	// never saw the acknowledgement.
	FaultPartial
	// FaultBlackhole swallows the exchange until the caller's context
	// deadline; neither side hears anything.
	FaultBlackhole
)

// FaultPlan sets the per-exchange probability of each fault. The
// probabilities are evaluated in order (reset, delay, partial,
// blackhole) from one seeded stream, so a plan plus a serialized
// request sequence replays identically.
type FaultPlan struct {
	Seed      int64
	Reset     float64
	Delay     float64
	Partial   float64
	Blackhole float64
	// DelayFor is the FaultDelay duration (default 50ms).
	DelayFor time.Duration
}

// NewFaultTransport wraps base with an armed plan.
func NewFaultTransport(base http.RoundTripper, plan FaultPlan) *FaultTransport {
	ft := &FaultTransport{Base: base, count: make(map[FaultKind]uint64)}
	ft.Arm(plan)
	return ft
}

// Arm (re)seeds the probabilistic plan and enables injection.
func (ft *FaultTransport) Arm(plan FaultPlan) {
	if plan.DelayFor <= 0 {
		plan.DelayFor = 50 * time.Millisecond
	}
	ft.mu.Lock()
	ft.plan = plan
	ft.rng = rand.New(rand.NewSource(plan.Seed))
	ft.armed = true
	ft.mu.Unlock()
}

// Disarm stops all injection (queued one-shots included).
func (ft *FaultTransport) Disarm() {
	ft.mu.Lock()
	ft.armed = false
	ft.queue = nil
	ft.mu.Unlock()
}

// Inject queues exact one-shot faults, consumed in order by the next
// exchanges ahead of any probabilistic draw — the fully deterministic
// mode for pinning one failure to one request.
func (ft *FaultTransport) Inject(kinds ...FaultKind) {
	ft.mu.Lock()
	ft.queue = append(ft.queue, kinds...)
	ft.armed = true
	ft.mu.Unlock()
}

// Injected reports how many faults of kind have fired.
func (ft *FaultTransport) Injected(kind FaultKind) uint64 {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.count[kind]
}

// next draws the fault for one exchange.
func (ft *FaultTransport) next() (FaultKind, time.Duration) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if !ft.armed {
		return FaultNone, 0
	}
	if len(ft.queue) > 0 {
		k := ft.queue[0]
		ft.queue = ft.queue[1:]
		ft.count[k]++
		return k, ft.plan.DelayFor
	}
	var k FaultKind
	switch draw := ft.rng.Float64(); {
	case draw < ft.plan.Reset:
		k = FaultReset
	case draw < ft.plan.Reset+ft.plan.Delay:
		k = FaultDelay
	case draw < ft.plan.Reset+ft.plan.Delay+ft.plan.Partial:
		k = FaultPartial
	case draw < ft.plan.Reset+ft.plan.Delay+ft.plan.Partial+ft.plan.Blackhole:
		k = FaultBlackhole
	default:
		return FaultNone, 0
	}
	ft.count[k]++
	return k, ft.plan.DelayFor
}

func (ft *FaultTransport) base() http.RoundTripper {
	if ft.Base != nil {
		return ft.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper with the armed faults.
func (ft *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	kind, delay := ft.next()
	switch kind {
	case FaultReset:
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	case FaultDelay:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	case FaultBlackhole:
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	resp, err := ft.base().RoundTrip(req)
	if err != nil || kind != FaultPartial {
		return resp, err
	}
	// Cut the response a few bytes in: the exchange happened on the
	// server, the client's read of the acknowledgement fails.
	resp.Body = &partialBody{rc: resp.Body, remaining: 8}
	return resp, nil
}

// partialBody yields at most remaining bytes, then fails the read the
// way a connection dropped mid-response does.
type partialBody struct {
	rc        io.ReadCloser
	remaining int
}

func (p *partialBody) Read(b []byte) (int, error) {
	if p.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(b) > p.remaining {
		b = b[:p.remaining]
	}
	n, err := p.rc.Read(b)
	p.remaining -= n
	if err != nil {
		return n, err
	}
	if p.remaining <= 0 {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

func (p *partialBody) Close() error { return p.rc.Close() }
