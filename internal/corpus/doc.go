// Package corpus provides the document-collection substrate: a document
// model, a deterministic generative corpus that substitutes for the
// paper's Wall Street Journal collection, and a query workload that
// substitutes for the TREC-1/2 ad-hoc queries (see DESIGN.md §3 for the
// substitution argument).
package corpus

import (
	"encoding/json"
	"fmt"
	"io"

	"toppriv/internal/textproc"
)

// DocID identifies a document within a corpus. IDs are dense from 0.
type DocID int32

// Document is one text document. Text holds the raw article body;
// TrueTopics records the generative ground-truth mixture (empty for
// documents ingested from external sources), which experiments use for
// diagnostics only — the search engine and TopPriv never see it.
type Document struct {
	ID         DocID     `json:"id"`
	Title      string    `json:"title"`
	Text       string    `json:"text"`
	TrueTopics []float64 `json:"true_topics,omitempty"`
}

// Corpus is a collection of documents together with the analyzed
// bag-of-words form of each and the shared vocabulary. It corresponds to
// D (δ documents over ω terms) in the paper.
type Corpus struct {
	Docs  []Document
	Vocab *textproc.Vocab
	// Bags[d] is the analyzed term-ID sequence of document d, aligned
	// with Docs.
	Bags [][]textproc.TermID
	// GroundTruthTopics is the number of generative topics (0 when
	// unknown, e.g. for ingested corpora).
	GroundTruthTopics int
}

// NumDocs returns δ, the number of documents.
func (c *Corpus) NumDocs() int { return len(c.Docs) }

// VocabSize returns ω, the number of distinct terms.
func (c *Corpus) VocabSize() int { return c.Vocab.Size() }

// TotalTokens returns the number of term occurrences across all bags.
func (c *Corpus) TotalTokens() int {
	n := 0
	for _, bag := range c.Bags {
		n += len(bag)
	}
	return n
}

// AvgDocLen returns the mean analyzed document length.
func (c *Corpus) AvgDocLen() float64 {
	if len(c.Bags) == 0 {
		return 0
	}
	return float64(c.TotalTokens()) / float64(len(c.Bags))
}

// Build analyzes raw documents into a Corpus using the given analyzer,
// then prunes the vocabulary per spec and remaps the bags. It is the
// ingestion path for external document sets; Synthesize uses it too so
// synthetic and ingested corpora share one code path.
func Build(docs []Document, an *textproc.Analyzer, spec textproc.PruneSpec) (*Corpus, error) {
	if an == nil {
		return nil, fmt.Errorf("corpus: nil analyzer")
	}
	vocab := textproc.NewVocab()
	bags := make([][]textproc.TermID, len(docs))
	for i := range docs {
		docs[i].ID = DocID(i)
		terms := an.Analyze(docs[i].Text)
		bag := make([]textproc.TermID, len(terms))
		for j, term := range terms {
			bag[j] = vocab.Add(term)
		}
		vocab.ObserveDoc(bag)
		bags[i] = bag
	}
	if spec != (textproc.PruneSpec{}) {
		if spec.MaxDocRatio > 0 && spec.TotalDocs == 0 {
			spec.TotalDocs = len(docs)
		}
		pruned, remap, err := vocab.Prune(spec)
		if err != nil {
			return nil, fmt.Errorf("corpus: prune: %w", err)
		}
		newBags := make([][]textproc.TermID, len(bags))
		for i, bag := range bags {
			nb := make([]textproc.TermID, 0, len(bag))
			for _, id := range bag {
				if nid := remap[id]; nid != textproc.InvalidTerm {
					nb = append(nb, nid)
				}
			}
			newBags[i] = nb
		}
		vocab = pruned
		bags = newBags
	}
	return &Corpus{Docs: docs, Vocab: vocab, Bags: bags}, nil
}

// corpusJSON is the on-disk representation written by WriteJSON.
type corpusJSON struct {
	GroundTruthTopics int        `json:"ground_truth_topics"`
	Docs              []Document `json:"docs"`
}

// WriteJSON serializes the raw documents (not the analyzed bags; those
// are cheap to recompute and depend on the analyzer configuration).
func (c *Corpus) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(corpusJSON{GroundTruthTopics: c.GroundTruthTopics, Docs: c.Docs})
}

// ReadJSON loads documents written by WriteJSON and re-analyzes them
// with the given analyzer and prune spec.
func ReadJSON(r io.Reader, an *textproc.Analyzer, spec textproc.PruneSpec) (*Corpus, error) {
	var cj corpusJSON
	if err := json.NewDecoder(r).Decode(&cj); err != nil {
		return nil, fmt.Errorf("corpus: decode: %w", err)
	}
	c, err := Build(cj.Docs, an, spec)
	if err != nil {
		return nil, err
	}
	c.GroundTruthTopics = cj.GroundTruthTopics
	return c, nil
}
