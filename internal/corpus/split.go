package corpus

import (
	"fmt"
	"math/rand"

	"toppriv/internal/textproc"
)

// Split partitions the corpus's documents into a training part and a
// held-out part (heldFrac of the documents, at least 1 and at most
// NumDocs-1), deterministically under seed. Each part is rebuilt as an
// independent corpus with its own dense vocabulary; evaluation code
// maps terms across parts by surface form.
func Split(c *Corpus, heldFrac float64, seed int64) (train, held *Corpus, err error) {
	if c == nil || c.Vocab == nil {
		return nil, nil, fmt.Errorf("corpus: Split of nil corpus")
	}
	if heldFrac <= 0 || heldFrac >= 1 {
		return nil, nil, fmt.Errorf("corpus: heldFrac = %v, need (0,1)", heldFrac)
	}
	n := c.NumDocs()
	if n < 2 {
		return nil, nil, fmt.Errorf("corpus: need >= 2 docs to split, have %d", n)
	}
	nHeld := int(heldFrac * float64(n))
	if nHeld < 1 {
		nHeld = 1
	}
	if nHeld >= n {
		nHeld = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	heldSet := make(map[int]bool, nHeld)
	for _, d := range perm[:nHeld] {
		heldSet[d] = true
	}
	build := func(keep func(int) bool) *Corpus {
		vocab := textproc.NewVocab()
		remap := make(map[textproc.TermID]textproc.TermID)
		var docs []Document
		var bags [][]textproc.TermID
		for d := 0; d < n; d++ {
			if !keep(d) {
				continue
			}
			doc := c.Docs[d]
			doc.ID = DocID(len(docs))
			bag := make([]textproc.TermID, 0, len(c.Bags[d]))
			for _, id := range c.Bags[d] {
				nid, ok := remap[id]
				if !ok {
					nid = vocab.Add(c.Vocab.Term(id))
					remap[id] = nid
				}
				bag = append(bag, nid)
			}
			vocab.ObserveDoc(bag)
			docs = append(docs, doc)
			bags = append(bags, bag)
		}
		return &Corpus{Docs: docs, Vocab: vocab, Bags: bags, GroundTruthTopics: c.GroundTruthTopics}
	}
	train = build(func(d int) bool { return !heldSet[d] })
	held = build(func(d int) bool { return heldSet[d] })
	return train, held, nil
}
