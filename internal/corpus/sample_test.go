package corpus

import (
	"testing"

	"toppriv/internal/textproc"
)

func sampleFixture(t *testing.T) *Corpus {
	t.Helper()
	c, _, err := Synthesize(GenSpec{Seed: 101, NumDocs: 200, NumTopics: 8, DocLenMin: 40, DocLenMax: 80}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSampleDocFraction(t *testing.T) {
	c := sampleFixture(t)
	s, err := Sample(c, SampleSpec{DocFraction: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDocs() != 50 {
		t.Errorf("sampled %d docs, want 50", s.NumDocs())
	}
	// IDs must be dense from 0.
	for i, d := range s.Docs {
		if d.ID != DocID(i) {
			t.Fatalf("doc %d has ID %d", i, d.ID)
		}
	}
	// Vocabulary must only contain terms that occur in the sample.
	for w := 0; w < s.Vocab.Size(); w++ {
		if s.Vocab.CollFreq(textproc.TermID(w)) == 0 {
			t.Fatalf("term %q has zero collection frequency", s.Vocab.Term(textproc.TermID(w)))
		}
	}
	if s.GroundTruthTopics != c.GroundTruthTopics {
		t.Error("GroundTruthTopics lost in sampling")
	}
}

func TestSampleWordFraction(t *testing.T) {
	c := sampleFixture(t)
	s, err := Sample(c, SampleSpec{TopWordFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDocs() != c.NumDocs() {
		t.Errorf("word-only sampling dropped docs: %d vs %d", s.NumDocs(), c.NumDocs())
	}
	if s.Vocab.Size() >= c.Vocab.Size() {
		t.Errorf("vocab not reduced: %d vs %d", s.Vocab.Size(), c.Vocab.Size())
	}
	// The kept words carry more TF-IDF mass per term than the corpus
	// average — they are the impactful head.
	if s.TotalTokens() < c.TotalTokens()/4 {
		t.Errorf("top 30%% of terms should retain most token mass: %d of %d",
			s.TotalTokens(), c.TotalTokens())
	}
}

func TestSampleBothReductions(t *testing.T) {
	c := sampleFixture(t)
	s, err := Sample(c, SampleSpec{DocFraction: 0.5, TopWordFraction: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDocs() != 100 {
		t.Errorf("docs = %d", s.NumDocs())
	}
	if s.Vocab.Size() >= c.Vocab.Size()/2+1 {
		t.Errorf("vocab = %d, want <= half of %d", s.Vocab.Size(), c.Vocab.Size())
	}
	// Frequencies must be internally consistent after remapping.
	for d, bag := range s.Bags {
		if len(bag) == 0 {
			continue
		}
		for _, id := range bag {
			if int(id) >= s.Vocab.Size() {
				t.Fatalf("doc %d references out-of-range term %d", d, id)
			}
		}
	}
}

func TestSampleIdentity(t *testing.T) {
	c := sampleFixture(t)
	s, err := Sample(c, SampleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDocs() != c.NumDocs() || s.TotalTokens() != c.TotalTokens() {
		t.Error("zero-valued spec must be the identity")
	}
}

func TestSampleDeterministic(t *testing.T) {
	c := sampleFixture(t)
	a, _ := Sample(c, SampleSpec{DocFraction: 0.3, Seed: 5})
	b, _ := Sample(c, SampleSpec{DocFraction: 0.3, Seed: 5})
	if a.NumDocs() != b.NumDocs() {
		t.Fatal("nondeterministic sampling")
	}
	for i := range a.Docs {
		if a.Docs[i].Title != b.Docs[i].Title {
			t.Fatal("nondeterministic document selection")
		}
	}
}

func TestSampleValidation(t *testing.T) {
	c := sampleFixture(t)
	if _, err := Sample(nil, SampleSpec{}); err == nil {
		t.Error("nil corpus must error")
	}
	if _, err := Sample(c, SampleSpec{DocFraction: -0.5}); err == nil {
		t.Error("negative fraction must error")
	}
	if _, err := Sample(c, SampleSpec{TopWordFraction: 1.5}); err == nil {
		t.Error("fraction > 1 must error")
	}
}
