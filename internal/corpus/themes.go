package corpus

// Theme is a named ground-truth topic with seed vocabulary. Seed words
// occupy the top Zipf ranks of the topic's word distribution, so a
// trained LDA model recovers recognizably "WSJ-like" topics (finance,
// technology, education, medicine, …), which is what the paper's
// Tables II–IV display.
type Theme struct {
	Name  string
	Words []string
}

// Themes returns the built-in theme catalogue. The first len(result)
// themes of a generated corpus use these in order; corpora with more
// ground-truth topics than themes fill the remainder with synthesized
// topical vocabularies.
func Themes() []Theme {
	return []Theme{
		{"finance", []string{
			"stock", "shares", "market", "investors", "dow", "jones", "index",
			"trading", "volume", "rose", "fell", "points", "composite", "nasdaq",
			"exchange", "securities", "broker", "dividend", "portfolio", "equity",
			"bullish", "bearish", "rally", "futures",
		}},
		{"technology", []string{
			"computer", "software", "ibm", "apple", "machines", "systems",
			"digital", "technology", "personal", "computers", "microsoft",
			"hardware", "workstation", "mainframe", "chips", "processor",
			"semiconductor", "intel", "memory", "network", "data", "product",
			"lotus", "sun",
		}},
		{"education", []string{
			"school", "university", "students", "education", "college",
			"teachers", "professor", "public", "student", "schools", "harvard",
			"class", "tuition", "campus", "faculty", "curriculum", "parents",
			"children", "educational", "degree", "scholarship", "enrollment",
			"graduate", "academic",
		}},
		{"medicine", []string{
			"aids", "cancer", "patients", "disease", "drug", "doctors", "blood",
			"heart", "virus", "treatment", "hospital", "clinical", "fda",
			"researchers", "testing", "cells", "medical", "symptoms", "vaccine",
			"therapy", "diagnosis", "infection", "surgery", "immune",
		}},
		{"military", []string{
			"army", "tank", "abrams", "apache", "helicopter", "missile",
			"patriot", "blackhawk", "weapons", "defense", "pentagon", "troops",
			"combat", "armor", "artillery", "battalion", "radar", "stealth",
			"bomber", "navy", "marines", "brigade", "munitions", "warfare",
		}},
		{"aviation", []string{
			"airline", "airport", "flight", "boeing", "aircraft", "passengers",
			"pilots", "runway", "carrier", "fares", "routes", "jet", "airbus",
			"terminal", "aviation", "hub", "cockpit", "fleet", "turbine",
			"takeoff", "landing", "airways", "cargo", "charter",
		}},
		{"energy", []string{
			"oil", "crude", "barrel", "opec", "gasoline", "refinery", "drilling",
			"petroleum", "gas", "pipeline", "wells", "exploration", "saudi",
			"texaco", "exxon", "fuel", "reserves", "rig", "offshore", "diesel",
			"kerosene", "output", "barrels", "crudeoil",
		}},
		{"law", []string{
			"court", "judge", "ruling", "lawsuit", "attorney", "trial", "jury",
			"appeal", "plaintiff", "defendant", "verdict", "litigation",
			"justice", "supreme", "federal", "statute", "copyright", "patent",
			"infringement", "settlement", "damages", "counsel", "testimony",
			"indictment",
		}},
		{"politics", []string{
			"president", "congress", "senate", "house", "administration",
			"republican", "democrat", "election", "campaign", "votes",
			"legislation", "bill", "governor", "senator", "white", "washington",
			"policy", "lawmakers", "veto", "budget", "committee", "cabinet",
			"nominee", "partisan",
		}},
		{"realestate", []string{
			"estate", "property", "rental", "tenants", "lease", "commercial",
			"building", "office", "square", "footage", "landlord", "developer",
			"construction", "mortgage", "housing", "apartments", "vacancy",
			"zoning", "realty", "condominium", "skyscraper", "renovation",
			"plaza", "downtown",
		}},
		{"banking", []string{
			"bank", "loans", "deposits", "credit", "interest", "rates",
			"lending", "savings", "branches", "bancorp", "thrift", "regulators",
			"capital", "reserve", "fdic", "insolvency", "depositors",
			"vault", "teller", "overdraft", "collateral", "borrowers",
			"refinance", "underwriting",
		}},
		{"autos", []string{
			"cars", "ford", "chrysler", "automobile", "vehicles", "dealers",
			"models", "chevrolet", "toyota", "honda", "sedan", "trucks",
			"assembly", "automotive", "motors", "dealership", "horsepower",
			"engine", "transmission", "chassis", "recall", "warranty",
			"showroom", "import",
		}},
		{"agriculture", []string{
			"farmers", "crop", "wheat", "corn", "soybeans", "grain", "harvest",
			"livestock", "cattle", "acres", "farm", "agriculture", "drought",
			"irrigation", "fertilizer", "bushels", "dairy", "poultry",
			"commodity", "silo", "planting", "yield", "orchard", "ranch",
		}},
		{"retail", []string{
			"stores", "retailer", "sales", "shoppers", "merchandise", "chain",
			"mall", "discount", "walmart", "sears", "apparel", "inventory",
			"holiday", "customers", "outlets", "catalog", "grocery",
			"supermarket", "checkout", "pricing", "markdown", "boutique",
			"franchise", "wholesale",
		}},
		{"telecom", []string{
			"telephone", "phone", "calls", "cellular", "wireless", "bell",
			"longdistance", "fiber", "switching", "subscribers", "telephony",
			"tariff", "fcc", "modem", "satellite", "broadband", "telegraph",
			"handset", "paging", "dialing", "switchboard", "trunk", "dialtone",
			"telecom",
		}},
		{"entertainment", []string{
			"film", "movie", "studio", "hollywood", "television", "actors",
			"producer", "director", "boxoffice", "theater", "audiences",
			"primetime", "broadcast", "celebrity", "premiere", "script",
			"screenplay", "sitcom", "ratings", "cable", "cinema", "sequel",
			"blockbuster", "animation",
		}},
		{"sports", []string{
			"team", "game", "season", "players", "league", "coach", "baseball",
			"football", "basketball", "playoffs", "stadium", "championship",
			"score", "pitcher", "quarterback", "tournament", "olympic",
			"athletes", "ballpark", "roster", "innings", "touchdown",
			"referee", "draft",
		}},
		{"food", []string{
			"restaurant", "chef", "menu", "cuisine", "dining", "recipes",
			"beverage", "brewery", "wine", "coffee", "snack", "cereal",
			"flavors", "nutrition", "calories", "organic", "bakery", "dessert",
			"gourmet", "catering", "kitchen", "ingredients", "seafood",
			"vineyard",
		}},
		{"chemicals", []string{
			"chemical", "plastics", "polymer", "resin", "dupont", "compounds",
			"solvent", "ethylene", "ammonia", "chlorine", "synthetic",
			"catalyst", "reagent", "toxic", "emissions", "epa", "pesticide",
			"herbicide", "refining", "laboratory", "formula", "industrial",
			"monomer", "additive",
		}},
		{"shipping", []string{
			"freighter", "freight", "port", "vessel", "container", "shipping",
			"dock", "tanker", "maritime", "harbor", "longshoremen", "tonnage",
			"hull", "barge", "canal", "customs", "export", "imports",
			"logistics", "warehouse", "stevedore", "manifest", "berth",
			"drydock",
		}},
		{"insurance", []string{
			"insurance", "insurer", "premiums", "claims", "policyholders",
			"underwriter", "actuary", "casualty", "lloyds", "reinsurance",
			"annuity", "coverage", "deductible", "aetna", "prudential",
			"indemnity", "payout", "risk", "catastrophe", "policies", "brokerage",
			"solvency", "adjuster", "hazard",
		}},
		{"labor", []string{
			"union", "workers", "strike", "wages", "contract", "employees",
			"negotiations", "layoffs", "pension", "benefits", "bargaining",
			"grievance", "picket", "overtime", "seniority", "apprentice",
			"payroll", "staffing", "walkout", "arbitration", "lockout",
			"organizer", "steward", "workforce",
		}},
		{"science", []string{
			"research", "scientists", "physics", "physicist", "experiment",
			"particle", "telescope", "genome", "molecular", "quantum",
			"astronomy", "geology", "biology", "spacecraft", "nasa", "orbit",
			"specimen", "hypothesis", "journal", "discovery", "fossil",
			"climate", "neutrino", "reactor",
		}},
		{"fashion", []string{
			"fashion", "designer", "chic", "catwalk", "couture", "fabric",
			"textile", "garment", "atelier", "cosmetics", "fragrance",
			"jewelry", "accessories", "milan", "paris", "collection", "vogue",
			"tailoring", "denim", "silk", "leather", "footwear", "lingerie",
			"knitwear",
		}},
	}
}

// genericWords are corpus-wide high-frequency words that belong to no
// particular theme. They model the "generic" LDA topics the paper shows
// in Table II (Topic 46) and Table IV, and give every document a shared
// background so that topic inference is non-trivial.
var genericWords = []string{
	"said", "year", "new", "company", "million", "people", "time", "way",
	"week", "month", "report", "group", "part", "number", "state", "world",
	"day", "work", "plan", "change", "business", "officials", "program",
	"system", "government", "city", "country", "service", "issue", "area",
	"made", "make", "take", "come", "know", "say", "see", "want", "use",
	"find", "give", "tell", "ask", "seem", "feel", "try", "leave", "call",
	"good", "high", "small", "large", "next", "early", "young", "important",
	"recent", "bad", "same", "able",
}
