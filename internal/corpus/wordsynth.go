package corpus

import (
	"math/rand"
	"strings"
)

// wordSynth generates pronounceable pseudo-words to fill out topic
// vocabularies beyond the curated seed words. Each synthesized word is
// deterministic for a given RNG stream and guaranteed unique within a
// synthesis session. Pseudo-words stand in for the long tail of the WSJ
// vocabulary (the real corpus has ~182k terms; the seeds cover only the
// heads of the topic distributions).
type wordSynth struct {
	rng  *rand.Rand
	seen map[string]struct{}
}

var (
	synthOnsets = []string{
		"b", "br", "c", "cr", "d", "dr", "f", "fl", "g", "gl", "gr", "h",
		"j", "k", "kl", "l", "m", "n", "p", "pl", "pr", "qu", "r", "s",
		"sc", "sh", "sk", "sl", "sm", "sn", "sp", "st", "str", "t", "th",
		"tr", "v", "w", "z",
	}
	synthNuclei = []string{"a", "e", "i", "o", "u", "ae", "ai", "ea", "ee", "io", "ou", "oa"}
	synthCodas  = []string{"", "b", "ck", "d", "g", "l", "ll", "m", "n", "nd", "ng", "nt", "p", "r", "rd", "rm", "rn", "s", "st", "t", "x"}
)

func newWordSynth(rng *rand.Rand) *wordSynth {
	return &wordSynth{rng: rng, seen: make(map[string]struct{})}
}

// next returns a fresh pseudo-word of 2–4 syllables that has not been
// produced before in this session and is not in the avoid set.
func (ws *wordSynth) next(avoid map[string]struct{}) string {
	for {
		var b strings.Builder
		syllables := 2 + ws.rng.Intn(3)
		for i := 0; i < syllables; i++ {
			b.WriteString(synthOnsets[ws.rng.Intn(len(synthOnsets))])
			b.WriteString(synthNuclei[ws.rng.Intn(len(synthNuclei))])
			// Only the final syllable takes a coda, keeping words readable.
			if i == syllables-1 {
				b.WriteString(synthCodas[ws.rng.Intn(len(synthCodas))])
			}
		}
		w := b.String()
		if _, dup := ws.seen[w]; dup {
			continue
		}
		if avoid != nil {
			if _, bad := avoid[w]; bad {
				continue
			}
		}
		ws.seen[w] = struct{}{}
		return w
	}
}

// batch returns n fresh pseudo-words.
func (ws *wordSynth) batch(n int, avoid map[string]struct{}) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = ws.next(avoid)
	}
	return out
}
