package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// QuerySpec is one benchmark query: its raw terms and the ground-truth
// topics it targets. It substitutes for a TREC-1/2 ad-hoc query — the
// paper's workload has 150 queries of 2–20 terms, each with a clearly
// defined topical intent (§V-A).
type QuerySpec struct {
	// ID numbers the query within its workload (0-based).
	ID int
	// Terms is the raw query text, space-joinable.
	Terms []string
	// TargetTopics are the ground-truth topic indices the query is about
	// (1 or 2 topics, dominant first).
	TargetTopics []int
}

// Text returns the query as a single string.
func (q QuerySpec) Text() string { return strings.Join(q.Terms, " ") }

// WorkloadSpec configures query-workload generation.
type WorkloadSpec struct {
	// Seed makes the workload deterministic (independent of the corpus seed).
	Seed int64
	// NumQueries defaults to 150, matching the TREC-1/2 ad-hoc set.
	NumQueries int
	// MinTerms and MaxTerms bound query length; defaults 2 and 20,
	// matching the paper.
	MinTerms, MaxTerms int
	// TwoTopicFrac is the fraction of queries spanning two topics
	// (default 0.2): TREC topics occasionally straddle areas.
	TwoTopicFrac float64
	// HeadBias is the Zipf exponent used when drawing terms from a
	// topic's rank-ordered vocabulary; higher values favor the most
	// characteristic words. Default 0.7 (milder than document text, so
	// queries include mid-rank, higher-specificity terms too).
	HeadBias float64
}

func (w WorkloadSpec) withDefaults() WorkloadSpec {
	if w.NumQueries == 0 {
		w.NumQueries = 150
	}
	if w.MinTerms == 0 {
		w.MinTerms = 2
	}
	if w.MaxTerms == 0 {
		w.MaxTerms = 20
	}
	if w.TwoTopicFrac == 0 {
		w.TwoTopicFrac = 0.2
	}
	if w.HeadBias == 0 {
		w.HeadBias = 0.7
	}
	return w
}

// Workload generates queries against the ground truth of a synthetic
// corpus. Each query draws its terms from the head of its target
// topics' vocabularies without replacement, yielding semantically
// coherent, clearly-intentioned queries.
func Workload(gt *GroundTruth, spec WorkloadSpec) ([]QuerySpec, error) {
	spec = spec.withDefaults()
	if gt == nil || len(gt.TopicWords) == 0 {
		return nil, fmt.Errorf("corpus: Workload requires ground truth")
	}
	if spec.MinTerms < 1 || spec.MinTerms > spec.MaxTerms {
		return nil, fmt.Errorf("corpus: bad term bounds [%d,%d]", spec.MinTerms, spec.MaxTerms)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	numTopics := len(gt.TopicWords)
	queries := make([]QuerySpec, 0, spec.NumQueries)
	for i := 0; i < spec.NumQueries; i++ {
		targets := []int{rng.Intn(numTopics)}
		if numTopics > 1 && rng.Float64() < spec.TwoTopicFrac {
			second := rng.Intn(numTopics - 1)
			if second >= targets[0] {
				second++
			}
			targets = append(targets, second)
		}
		n := spec.MinTerms + rng.Intn(spec.MaxTerms-spec.MinTerms+1)
		terms := drawQueryTerms(rng, gt, targets, n, spec.HeadBias)
		queries = append(queries, QuerySpec{ID: i, Terms: terms, TargetTopics: targets})
	}
	return queries, nil
}

// drawQueryTerms samples n distinct terms across the target topics with
// a Zipfian bias toward each topic's head words. The dominant topic
// contributes at least half the terms.
func drawQueryTerms(rng *rand.Rand, gt *GroundTruth, targets []int, n int, bias float64) []string {
	perTopic := make([]int, len(targets))
	perTopic[0] = (n + len(targets) - 1) / len(targets)
	remaining := n - perTopic[0]
	for i := 1; i < len(targets); i++ {
		share := remaining / (len(targets) - i)
		perTopic[i] = share
		remaining -= share
	}
	var terms []string
	seen := make(map[string]struct{})
	for ti, topic := range targets {
		vocab := gt.TopicWords[topic]
		weights := zipfWeights(len(vocab), bias)
		picked := 0
		for attempts := 0; picked < perTopic[ti] && attempts < 20*perTopic[ti]; attempts++ {
			w := vocab[sampleCategorical(rng, weights)]
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			terms = append(terms, w)
			picked++
		}
	}
	return terms
}

// WorkloadStats summarizes a workload for reporting.
type WorkloadStats struct {
	NumQueries   int
	MinLen       int
	MaxLen       int
	MeanLen      float64
	TopicSpread  int // distinct topics targeted across the workload
	TwoTopicPart int // queries targeting two topics
}

// Stats computes summary statistics over queries.
func Stats(queries []QuerySpec) WorkloadStats {
	s := WorkloadStats{NumQueries: len(queries)}
	if len(queries) == 0 {
		return s
	}
	s.MinLen = len(queries[0].Terms)
	topics := map[int]struct{}{}
	total := 0
	for _, q := range queries {
		n := len(q.Terms)
		total += n
		if n < s.MinLen {
			s.MinLen = n
		}
		if n > s.MaxLen {
			s.MaxLen = n
		}
		for _, t := range q.TargetTopics {
			topics[t] = struct{}{}
		}
		if len(q.TargetTopics) > 1 {
			s.TwoTopicPart++
		}
	}
	s.MeanLen = float64(total) / float64(len(queries))
	s.TopicSpread = len(topics)
	return s
}

// SortByID orders queries by ID in place (useful after filtering).
func SortByID(queries []QuerySpec) {
	sort.Slice(queries, func(i, j int) bool { return queries[i].ID < queries[j].ID })
}
