package corpus

import (
	"bytes"
	"testing"

	"toppriv/internal/textproc"
)

func testGroundTruth(t *testing.T) *GroundTruth {
	t.Helper()
	_, gt, err := Synthesize(smallSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return gt
}

func TestWorkloadShape(t *testing.T) {
	gt := testGroundTruth(t)
	qs, err := Workload(gt, WorkloadSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 150 {
		t.Fatalf("got %d queries, want 150", len(qs))
	}
	for _, q := range qs {
		if len(q.Terms) < 2 || len(q.Terms) > 20 {
			t.Errorf("query %d has %d terms, want 2..20", q.ID, len(q.Terms))
		}
		if len(q.TargetTopics) < 1 || len(q.TargetTopics) > 2 {
			t.Errorf("query %d targets %d topics", q.ID, len(q.TargetTopics))
		}
		for _, topic := range q.TargetTopics {
			if topic < 0 || topic >= len(gt.TopicWords) {
				t.Errorf("query %d targets out-of-range topic %d", q.ID, topic)
			}
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	gt := testGroundTruth(t)
	q1, _ := Workload(gt, WorkloadSpec{Seed: 7})
	q2, _ := Workload(gt, WorkloadSpec{Seed: 7})
	for i := range q1 {
		if q1[i].Text() != q2[i].Text() {
			t.Fatalf("query %d differs across identical seeds", i)
		}
	}
	q3, _ := Workload(gt, WorkloadSpec{Seed: 8})
	same := 0
	for i := range q1 {
		if q1[i].Text() == q3[i].Text() {
			same++
		}
	}
	if same == len(q1) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestWorkloadTermsComeFromTargets(t *testing.T) {
	gt := testGroundTruth(t)
	qs, err := Workload(gt, WorkloadSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		allowed := map[string]struct{}{}
		for _, topic := range q.TargetTopics {
			for _, w := range gt.TopicWords[topic] {
				allowed[w] = struct{}{}
			}
		}
		for _, term := range q.Terms {
			if _, ok := allowed[term]; !ok {
				t.Errorf("query %d term %q not in target topics %v", q.ID, term, q.TargetTopics)
			}
		}
	}
}

func TestWorkloadNoDuplicateTerms(t *testing.T) {
	gt := testGroundTruth(t)
	qs, _ := Workload(gt, WorkloadSpec{Seed: 7})
	for _, q := range qs {
		seen := map[string]struct{}{}
		for _, term := range q.Terms {
			if _, dup := seen[term]; dup {
				t.Errorf("query %d has duplicate term %q", q.ID, term)
			}
			seen[term] = struct{}{}
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := Workload(nil, WorkloadSpec{}); err == nil {
		t.Error("nil ground truth should error")
	}
	gt := testGroundTruth(t)
	if _, err := Workload(gt, WorkloadSpec{MinTerms: 10, MaxTerms: 5}); err == nil {
		t.Error("inverted term bounds should error")
	}
}

func TestWorkloadStats(t *testing.T) {
	gt := testGroundTruth(t)
	qs, _ := Workload(gt, WorkloadSpec{Seed: 7})
	s := Stats(qs)
	if s.NumQueries != 150 {
		t.Errorf("NumQueries = %d", s.NumQueries)
	}
	if s.MinLen < 2 || s.MaxLen > 20 || s.MeanLen < float64(s.MinLen) || s.MeanLen > float64(s.MaxLen) {
		t.Errorf("implausible stats %+v", s)
	}
	if s.TopicSpread < 2 {
		t.Errorf("workload covers only %d topics", s.TopicSpread)
	}
	if s.TwoTopicPart == 0 {
		t.Error("expected some two-topic queries at default TwoTopicFrac")
	}
	if empty := Stats(nil); empty.NumQueries != 0 {
		t.Error("Stats(nil) should be zero-valued")
	}
}

func TestCorpusJSONRoundTrip(t *testing.T) {
	spec := smallSpec()
	spec.NumDocs = 20
	c, _, err := Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	an := textproc.NewAnalyzer()
	c2, err := ReadJSON(&buf, an, textproc.PruneSpec{MinDocFreq: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumDocs() != c.NumDocs() {
		t.Errorf("round trip lost documents: %d vs %d", c2.NumDocs(), c.NumDocs())
	}
	if c2.GroundTruthTopics != c.GroundTruthTopics {
		t.Error("round trip lost GroundTruthTopics")
	}
	if c2.VocabSize() != c.VocabSize() {
		t.Errorf("round trip vocab mismatch: %d vs %d", c2.VocabSize(), c.VocabSize())
	}
}

func TestBuildNilAnalyzer(t *testing.T) {
	if _, err := Build(nil, nil, textproc.PruneSpec{}); err == nil {
		t.Error("Build with nil analyzer should error")
	}
}
