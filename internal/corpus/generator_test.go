package corpus

import (
	"math"
	"math/rand"
	"testing"

	"toppriv/internal/textproc"
)

func smallSpec() GenSpec {
	return GenSpec{
		Seed:      42,
		NumDocs:   200,
		NumTopics: 8,
		DocLenMin: 40,
		DocLenMax: 80,
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	c1, gt1, err := Synthesize(smallSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, gt2, err := Synthesize(smallSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c1.NumDocs() != c2.NumDocs() || c1.VocabSize() != c2.VocabSize() {
		t.Fatal("same seed produced different corpora")
	}
	for d := range c1.Docs {
		if c1.Docs[d].Text != c2.Docs[d].Text {
			t.Fatalf("doc %d text differs across identical seeds", d)
		}
	}
	for g := range gt1.TopicWords {
		for i := range gt1.TopicWords[g] {
			if gt1.TopicWords[g][i] != gt2.TopicWords[g][i] {
				t.Fatalf("ground truth differs at topic %d word %d", g, i)
			}
		}
	}
}

func TestSynthesizeSeedsDiffer(t *testing.T) {
	spec := smallSpec()
	c1, _, _ := Synthesize(spec, nil)
	spec.Seed = 43
	c2, _, _ := Synthesize(spec, nil)
	same := true
	for d := range c1.Docs {
		if c1.Docs[d].Text != c2.Docs[d].Text {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestSynthesizeShape(t *testing.T) {
	spec := smallSpec()
	c, gt, err := Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != spec.NumDocs {
		t.Errorf("NumDocs = %d, want %d", c.NumDocs(), spec.NumDocs)
	}
	if c.GroundTruthTopics != spec.NumTopics {
		t.Errorf("GroundTruthTopics = %d, want %d", c.GroundTruthTopics, spec.NumTopics)
	}
	if len(gt.TopicNames) != spec.NumTopics || len(gt.TopicWords) != spec.NumTopics {
		t.Fatal("ground truth shape mismatch")
	}
	for g, words := range gt.TopicWords {
		if len(words) != 60 { // default WordsPerTopic
			t.Errorf("topic %d has %d words, want 60", g, len(words))
		}
	}
	if got := c.AvgDocLen(); got < 20 || got > 80 {
		t.Errorf("AvgDocLen = %v, outside plausible range", got)
	}
	for d, doc := range c.Docs {
		if len(doc.TrueTopics) != spec.NumTopics {
			t.Fatalf("doc %d TrueTopics len = %d", d, len(doc.TrueTopics))
		}
		sum := 0.0
		for _, p := range doc.TrueTopics {
			if p < 0 {
				t.Fatalf("doc %d negative topic prob", d)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("doc %d mixture sums to %v", d, sum)
		}
	}
}

func TestSynthesizeUsesThemeNames(t *testing.T) {
	_, gt, err := Synthesize(smallSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if gt.TopicNames[0] != "finance" || gt.TopicNames[1] != "technology" {
		t.Errorf("expected theme names, got %v", gt.TopicNames[:2])
	}
	if gt.TopicByName("finance") != 0 {
		t.Error("TopicByName lookup failed")
	}
	if gt.TopicByName("nonexistent") != -1 {
		t.Error("TopicByName should return -1 for unknown names")
	}
}

func TestSynthesizeMoreTopicsThanThemes(t *testing.T) {
	spec := smallSpec()
	spec.NumTopics = len(Themes()) + 4
	spec.NumDocs = 50
	_, gt, err := Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := gt.TopicNames[len(gt.TopicNames)-1]
	if last == "" || gt.TopicByName(last) != spec.NumTopics-1 {
		t.Errorf("synthetic topic naming broken: %q", last)
	}
	// Synthetic topics must still have a full vocabulary.
	if len(gt.TopicWords[spec.NumTopics-1]) != 60 {
		t.Error("synthetic topic vocabulary incomplete")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	bad := []GenSpec{
		{NumDocs: -1},
		{NumTopics: 1, NumDocs: 10},
		{NumDocs: 10, DocLenMin: 100, DocLenMax: 50},
		{NumDocs: 10, BackgroundFrac: 1.5},
	}
	for i, spec := range bad {
		if _, _, err := Synthesize(spec, nil); err == nil {
			t.Errorf("spec %d: expected validation error", i)
		}
	}
}

func TestTopicWordsDistinctHeads(t *testing.T) {
	// The head (top 10) of each topic should be mostly exclusive to it,
	// otherwise queries cannot have a clear topical intent.
	_, gt, err := Synthesize(smallSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, words := range gt.TopicWords {
		for _, w := range words[:10] {
			seen[w]++
		}
	}
	for w, n := range seen {
		if n > 1 {
			t.Errorf("head word %q appears in %d topics", w, n)
		}
	}
}

func TestDirichletProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, alpha := range []float64{0.05, 0.5, 1, 5} {
		for trial := 0; trial < 50; trial++ {
			v := randDirichlet(rng, alpha, 10)
			sum := 0.0
			for _, p := range v {
				if p < 0 || p > 1 {
					t.Fatalf("alpha=%v: component %v out of range", alpha, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("alpha=%v: sum %v", alpha, sum)
			}
		}
	}
}

func TestDirichletSparsity(t *testing.T) {
	// Small alpha should concentrate mass: max component typically large.
	rng := rand.New(rand.NewSource(2))
	bigMax := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		v := randDirichlet(rng, 0.05, 20)
		mx := 0.0
		for _, p := range v {
			if p > mx {
				mx = p
			}
		}
		if mx > 0.5 {
			bigMax++
		}
	}
	if bigMax < trials/2 {
		t.Errorf("sparse Dirichlet not concentrating: only %d/%d draws had max > 0.5", bigMax, trials)
	}
}

func TestGammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range []float64{0.3, 1, 2.5, 10} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += randGamma(rng, shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.15*shape+0.05 {
			t.Errorf("shape %v: sample mean %v too far from %v", shape, mean, shape)
		}
	}
}

func TestSampleCategorical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[sampleCategorical(rng, weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("weight ratio = %v, want ≈3", ratio)
	}
}

func TestWordSynthUnique(t *testing.T) {
	ws := newWordSynth(rand.New(rand.NewSource(5)))
	avoid := map[string]struct{}{}
	batch := ws.batch(500, avoid)
	seen := map[string]struct{}{}
	for _, w := range batch {
		if _, dup := seen[w]; dup {
			t.Fatalf("duplicate synthesized word %q", w)
		}
		seen[w] = struct{}{}
		if len(w) < 3 {
			t.Errorf("implausibly short word %q", w)
		}
	}
}

func TestBuildPrunesHapax(t *testing.T) {
	docs := []Document{
		{Text: "alpha beta alpha"},
		{Text: "alpha gamma"},
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false))
	c, err := Build(docs, an, textproc.PruneSpec{MinDocFreq: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Vocab.ID("alpha") == textproc.InvalidTerm {
		t.Error("alpha should survive pruning")
	}
	if c.Vocab.ID("beta") != textproc.InvalidTerm {
		t.Error("beta (df=1) should be pruned")
	}
	// Bags must be remapped consistently.
	for _, bag := range c.Bags {
		for _, id := range bag {
			if int(id) >= c.Vocab.Size() {
				t.Fatal("bag references out-of-range term after prune")
			}
		}
	}
}
