package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"toppriv/internal/textproc"
)

// GenSpec configures the synthetic corpus generator. The defaults
// produce a corpus that stands in for the paper's WSJ collection at
// laptop scale: multi-topic, Zipfian within-topic word distributions,
// sparse per-document topic mixtures, and a generic background shared by
// every document (see DESIGN.md §3).
type GenSpec struct {
	// Seed makes generation deterministic. Same spec + seed => same corpus.
	Seed int64
	// NumDocs is δ, the number of documents. Default 2000.
	NumDocs int
	// NumTopics is G, the ground-truth topic count. The first topics use
	// the curated theme vocabularies; any excess beyond the catalogue is
	// synthesized. Default 32.
	NumTopics int
	// WordsPerTopic is the vocabulary size of each topic (seed words plus
	// synthesized fill). Default 60.
	WordsPerTopic int
	// SharedWords is the size of the generic background vocabulary.
	// Default 80.
	SharedWords int
	// DocLenMin and DocLenMax bound the raw token count per document.
	// Defaults 80 and 160.
	DocLenMin, DocLenMax int
	// TopicAlpha is the symmetric Dirichlet concentration for document
	// topic mixtures; small values give sparse, clearly-themed documents
	// like news articles. Default 0.08.
	TopicAlpha float64
	// BackgroundFrac is the per-token probability of drawing from the
	// generic background instead of a topical distribution. Default 0.25.
	BackgroundFrac float64
	// ZipfS is the Zipf exponent for within-topic word ranks. Default 1.1.
	ZipfS float64
}

// withDefaults fills zero fields with the documented defaults.
func (s GenSpec) withDefaults() GenSpec {
	if s.NumDocs == 0 {
		s.NumDocs = 2000
	}
	if s.NumTopics == 0 {
		s.NumTopics = 32
	}
	if s.WordsPerTopic == 0 {
		s.WordsPerTopic = 60
	}
	if s.SharedWords == 0 {
		s.SharedWords = 80
	}
	if s.DocLenMin == 0 {
		s.DocLenMin = 80
	}
	if s.DocLenMax == 0 {
		s.DocLenMax = 160
	}
	if s.TopicAlpha == 0 {
		s.TopicAlpha = 0.08
	}
	if s.BackgroundFrac == 0 {
		s.BackgroundFrac = 0.25
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.1
	}
	return s
}

func (s GenSpec) validate() error {
	if s.NumDocs < 1 {
		return fmt.Errorf("corpus: NumDocs = %d, need >= 1", s.NumDocs)
	}
	if s.NumTopics < 2 {
		return fmt.Errorf("corpus: NumTopics = %d, need >= 2", s.NumTopics)
	}
	if s.DocLenMin > s.DocLenMax {
		return fmt.Errorf("corpus: DocLenMin %d > DocLenMax %d", s.DocLenMin, s.DocLenMax)
	}
	if s.BackgroundFrac < 0 || s.BackgroundFrac >= 1 {
		return fmt.Errorf("corpus: BackgroundFrac = %v, need [0,1)", s.BackgroundFrac)
	}
	return nil
}

// GroundTruth records the generative model behind a synthetic corpus.
// Experiments use it to pose topically-focused queries and to sanity-
// check the LDA fit; the privacy mechanism itself never reads it.
type GroundTruth struct {
	// TopicNames[g] names ground-truth topic g ("finance", …; synthetic
	// topics are named "synthNN").
	TopicNames []string
	// TopicWords[g] lists topic g's raw vocabulary in rank order (most
	// probable first).
	TopicWords [][]string
	// BackgroundWords lists the generic vocabulary in rank order.
	BackgroundWords []string
	// Spec echoes the generator configuration.
	Spec GenSpec
}

// Synthesize generates a corpus from spec and analyzes it with an.
// A nil analyzer gets the repository default.
func Synthesize(spec GenSpec, an *textproc.Analyzer) (*Corpus, *GroundTruth, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, nil, err
	}
	if an == nil {
		an = textproc.NewAnalyzer()
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	gt := buildGroundTruth(spec, rng)

	topicWeights := zipfWeights(spec.WordsPerTopic, spec.ZipfS)
	bgWeights := zipfWeights(len(gt.BackgroundWords), spec.ZipfS)

	docs := make([]Document, spec.NumDocs)
	for d := range docs {
		theta := randDirichlet(rng, spec.TopicAlpha, spec.NumTopics)
		length := spec.DocLenMin
		if spec.DocLenMax > spec.DocLenMin {
			length += rng.Intn(spec.DocLenMax - spec.DocLenMin + 1)
		}
		words := make([]string, 0, length)
		for i := 0; i < length; i++ {
			if rng.Float64() < spec.BackgroundFrac {
				words = append(words, gt.BackgroundWords[sampleCategorical(rng, bgWeights)])
				continue
			}
			z := sampleCategorical(rng, theta)
			w := gt.TopicWords[z][sampleCategorical(rng, topicWeights)]
			words = append(words, w)
		}
		dominant := 0
		for g := range theta {
			if theta[g] > theta[dominant] {
				dominant = g
			}
		}
		docs[d] = Document{
			Title:      fmt.Sprintf("%s article %d", gt.TopicNames[dominant], d),
			Text:       strings.Join(words, " "),
			TrueTopics: theta,
		}
	}

	c, err := Build(docs, an, textproc.PruneSpec{MinDocFreq: 2})
	if err != nil {
		return nil, nil, err
	}
	c.GroundTruthTopics = spec.NumTopics
	return c, gt, nil
}

// buildGroundTruth assembles the per-topic vocabularies: curated theme
// seeds first, synthesized fill after, with cross-topic duplicates
// avoided so each topic has a distinctive head.
func buildGroundTruth(spec GenSpec, rng *rand.Rand) *GroundTruth {
	themes := Themes()
	synth := newWordSynth(rng)
	used := make(map[string]struct{})
	for _, th := range themes {
		for _, w := range th.Words {
			used[w] = struct{}{}
		}
	}
	for _, w := range genericWords {
		used[w] = struct{}{}
	}

	gt := &GroundTruth{Spec: spec}
	for g := 0; g < spec.NumTopics; g++ {
		var name string
		var words []string
		if g < len(themes) {
			name = themes[g].Name
			words = append(words, themes[g].Words...)
		} else {
			name = fmt.Sprintf("synth%02d", g)
		}
		if len(words) > spec.WordsPerTopic {
			words = words[:spec.WordsPerTopic]
		}
		words = append(words, synth.batch(spec.WordsPerTopic-len(words), used)...)
		gt.TopicNames = append(gt.TopicNames, name)
		gt.TopicWords = append(gt.TopicWords, words)
	}
	bg := append([]string{}, genericWords...)
	if len(bg) > spec.SharedWords {
		bg = bg[:spec.SharedWords]
	}
	bg = append(bg, synth.batch(spec.SharedWords-len(bg), used)...)
	gt.BackgroundWords = bg
	return gt
}

// TopicByName returns the index of the named ground-truth topic, or -1.
func (gt *GroundTruth) TopicByName(name string) int {
	for i, n := range gt.TopicNames {
		if n == name {
			return i
		}
	}
	return -1
}
