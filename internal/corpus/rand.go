package corpus

import (
	"math"
	"math/rand"
)

// randGamma draws from Gamma(shape, 1) using Marsaglia–Tsang, with the
// standard boost for shape < 1. Panics on non-positive shape.
func randGamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		panic("corpus: randGamma requires shape > 0")
	}
	if shape < 1 {
		// G(a) = G(a+1) * U^{1/a}
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return randGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u == 0 {
			continue
		}
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return d * v
		}
		if math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// randDirichlet draws a probability vector from a symmetric
// Dirichlet(alpha) of the given dimension.
func randDirichlet(rng *rand.Rand, alpha float64, dim int) []float64 {
	out := make([]float64, dim)
	sum := 0.0
	for i := range out {
		out[i] = randGamma(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate draw (possible for tiny alpha under floating-point
		// underflow): fall back to a single spike.
		out[rng.Intn(dim)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// sampleCategorical draws an index proportional to weights (which need
// not be normalized). The caller guarantees a positive total weight.
func sampleCategorical(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// zipfWeights returns unnormalized Zipf weights 1/(rank+1)^s for n ranks.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}
