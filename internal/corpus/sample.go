package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"toppriv/internal/textproc"
)

// SampleSpec configures representative-subset extraction. The paper
// (§V-A) leaves "training the LDA model on a representative dataset,
// comprising documents sampled from the corpus and/or only the more
// impactful words (e.g., as determined by TF-IDF values)" as future
// work; this implements both reductions.
type SampleSpec struct {
	// DocFraction keeps this fraction of documents, sampled uniformly
	// without replacement. 0 or 1 keeps all documents.
	DocFraction float64
	// TopWordFraction keeps only the most impactful fraction of the
	// vocabulary, ranked by a TF-IDF mass score. 0 or 1 keeps all terms.
	TopWordFraction float64
	// Seed drives the document sampling.
	Seed int64
}

// Sample extracts a reduced training corpus per spec. Document IDs are
// renumbered densely; the vocabulary contains only terms that survive
// both reductions and still occur in the sampled documents.
func Sample(c *Corpus, spec SampleSpec) (*Corpus, error) {
	if c == nil || c.Vocab == nil {
		return nil, fmt.Errorf("corpus: Sample of nil corpus")
	}
	if spec.DocFraction < 0 || spec.DocFraction > 1 {
		return nil, fmt.Errorf("corpus: DocFraction = %v, need [0,1]", spec.DocFraction)
	}
	if spec.TopWordFraction < 0 || spec.TopWordFraction > 1 {
		return nil, fmt.Errorf("corpus: TopWordFraction = %v, need [0,1]", spec.TopWordFraction)
	}

	// 1. Choose documents.
	docIdx := make([]int, c.NumDocs())
	for i := range docIdx {
		docIdx[i] = i
	}
	if spec.DocFraction > 0 && spec.DocFraction < 1 {
		rng := rand.New(rand.NewSource(spec.Seed))
		rng.Shuffle(len(docIdx), func(i, j int) { docIdx[i], docIdx[j] = docIdx[j], docIdx[i] })
		keep := int(spec.DocFraction * float64(len(docIdx)))
		if keep < 1 {
			keep = 1
		}
		docIdx = docIdx[:keep]
		sort.Ints(docIdx)
	}

	// 2. Choose impactful words by TF-IDF mass: cf(w) · ln(1 + N/df(w)).
	keepWord := make([]bool, c.Vocab.Size())
	if spec.TopWordFraction > 0 && spec.TopWordFraction < 1 {
		type scored struct {
			id    textproc.TermID
			score float64
		}
		scores := make([]scored, c.Vocab.Size())
		n := float64(c.NumDocs())
		for w := 0; w < c.Vocab.Size(); w++ {
			id := textproc.TermID(w)
			df := float64(c.Vocab.DocFreq(id))
			score := 0.0
			if df > 0 {
				score = float64(c.Vocab.CollFreq(id)) * math.Log(1+n/df)
			}
			scores[w] = scored{id: id, score: score}
		}
		sort.Slice(scores, func(i, j int) bool {
			if scores[i].score != scores[j].score {
				return scores[i].score > scores[j].score
			}
			return scores[i].id < scores[j].id
		})
		keep := int(spec.TopWordFraction * float64(len(scores)))
		if keep < 1 {
			keep = 1
		}
		for _, s := range scores[:keep] {
			keepWord[s.id] = true
		}
	} else {
		for w := range keepWord {
			keepWord[w] = true
		}
	}

	// 3. Rebuild the reduced corpus through the shared Build path so
	// vocabulary IDs are dense and frequencies consistent.
	newVocab := textproc.NewVocab()
	remap := make([]textproc.TermID, c.Vocab.Size())
	for w := range remap {
		remap[w] = textproc.InvalidTerm
	}
	docs := make([]Document, 0, len(docIdx))
	bags := make([][]textproc.TermID, 0, len(docIdx))
	for newID, old := range docIdx {
		src := c.Docs[old]
		src.ID = DocID(newID)
		var bag []textproc.TermID
		for _, id := range c.Bags[old] {
			if !keepWord[id] {
				continue
			}
			nid := remap[id]
			if nid == textproc.InvalidTerm {
				nid = newVocab.Add(c.Vocab.Term(id))
				remap[id] = nid
			}
			bag = append(bag, nid)
		}
		newVocab.ObserveDoc(bag)
		docs = append(docs, src)
		bags = append(bags, bag)
	}
	return &Corpus{
		Docs:              docs,
		Vocab:             newVocab,
		Bags:              bags,
		GroundTruthTopics: c.GroundTruthTopics,
	}, nil
}
