package corpus

import (
	"encoding/json"
	"fmt"
	"io"

	"toppriv/internal/textproc"
)

// DecodeDocs reads raw documents from JSON in either accepted shape: a
// bare array (`[{"title":...,"text":...}, ...]`) or a corpusgen file
// (`{"docs":[...]}`). No analysis happens — this is the ingestion
// format shared by searchd's live seeding and topprivctl's -add-docs.
func DecodeDocs(r io.Reader) ([]Document, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("corpus: decode docs: %w", err)
	}
	var docs []Document
	if err := json.Unmarshal(raw, &docs); err == nil {
		return docs, nil
	}
	var wrapped struct {
		Docs []Document `json:"docs"`
	}
	if err := json.Unmarshal(raw, &wrapped); err != nil || wrapped.Docs == nil {
		return nil, fmt.Errorf("corpus: decode docs: neither a document array nor a {\"docs\": [...]} file")
	}
	return wrapped.Docs, nil
}

// AnalyzeInto analyzes one document's text against a shared, growing
// vocabulary: every term is interned into vocab (never pruned — a live
// index cannot retract IDs), document/collection frequencies are
// observed, and the analyzed bag is returned. It is the single-document
// ingestion path of the live segment store, mirroring what Build does
// corpus-wide.
//
// The vocabulary is append-only and not safe for concurrent mutation;
// callers serialize AnalyzeInto under their own lock.
func AnalyzeInto(doc Document, an *textproc.Analyzer, vocab *textproc.Vocab) []textproc.TermID {
	terms := an.Analyze(doc.Text)
	bag := make([]textproc.TermID, len(terms))
	for i, term := range terms {
		bag[i] = vocab.Add(term)
	}
	vocab.ObserveDoc(bag)
	return bag
}
