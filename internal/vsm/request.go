package vsm

import (
	"context"
	"fmt"

	"toppriv/internal/corpus"
	"toppriv/internal/telemetry"
)

// Request is one structured similarity query — the unit the engine,
// the live store, the HTTP server and the trusted client all speak
// since the query-API redesign. The paper's system model (§III,
// Fig. 1) submits each obfuscation cycle's υ queries together; Request
// is the per-member shape and SearchBatch the cycle-at-a-time entry
// point.
type Request struct {
	// Query is the raw query text, analyzed by the engine's analyzer
	// when Terms is nil. Ignored when Terms is set.
	Query string
	// Terms is the query already analyzed into index terms; takes
	// precedence over Query. Callers that analyzed once (the trusted
	// client canonicalizes word order before submission) pass Terms so
	// the text pipeline runs exactly once per query.
	Terms []string
	// K is the number of results wanted. Must be positive; the
	// validation that used to be scattered across callers now lives
	// here.
	K int
	// Mode selects the execution strategy for this request. ExecAuto
	// (the zero value) defers to the engine or store default. Results
	// are identical across modes.
	Mode ExecMode
	// Keep, when non-nil, restricts results to documents for which it
	// returns true, consulted before a document is scored. Live stores
	// use it to hide tombstones; it is an in-process knob and never
	// crosses the HTTP surface.
	Keep func(corpus.DocID) bool
	// Trace asks for the per-phase timing breakdown of this request in
	// Response.Trace. It works with or without engine-level metrics and
	// costs a handful of monotonic clock reads. The trace carries no
	// query content — term count and work counters only.
	Trace bool
	// Global, when non-nil, overrides the collection statistics this
	// request scores with: a scatter-gather router injects the merged
	// statistics of the whole cluster so every shard scores exactly as
	// a single index over all documents would, while postings, norms
	// and impact bounds stay shard-local. Requires Terms (DF aligns
	// with it); in-process engines and stores leave it nil.
	Global *GlobalStats
}

// GlobalStats carries cluster-merged collection statistics for one
// request — the distributed form of the segment store's global-
// statistics discipline (store-wide N, df, avgdl over shard-local
// postings). The router computes them from the shards' reported local
// statistics; every shard of a cycle receives the identical struct, so
// query-side weights and the cosine query norm agree across shards and
// the merged ranking equals a single-node build's.
type GlobalStats struct {
	// Docs is the merged live document count N.
	Docs int `json:"docs"`
	// TotalLen is the merged analyzed token count; the scorer derives
	// avgdl as TotalLen/Docs, the same division a single index performs.
	TotalLen int64 `json:"total_len"`
	// DF aligns with Request.Terms: DF[i] is the merged live document
	// frequency of Terms[i] (repeated terms repeat their df).
	DF []int `json:"df"`
}

// Validate rejects malformed requests. Empty queries are not an
// error — a fully-stopworded query legitimately matches nothing and
// returns an empty Response — but a non-positive K is a caller bug the
// old int-parameter surface silently swallowed. Every execution layer
// (engine, store, HTTP server) applies the same check.
func (r *Request) Validate() error {
	if r.K <= 0 {
		return fmt.Errorf("vsm: request k = %d, must be positive", r.K)
	}
	if g := r.Global; g != nil {
		if r.Terms == nil {
			return fmt.Errorf("vsm: global stats require pre-analyzed Terms")
		}
		if len(g.DF) != len(r.Terms) {
			return fmt.Errorf("vsm: global df has %d entries for %d terms", len(g.DF), len(r.Terms))
		}
		if g.Docs < 0 || g.TotalLen < 0 {
			return fmt.Errorf("vsm: negative global stats")
		}
	}
	return nil
}

// Response is the engine's reply to one Request: the ranked hits plus
// the execution counters that previously could not cross API
// boundaries at all.
type Response struct {
	// Hits are the top-k documents, best first (descending score,
	// ascending DocID on ties).
	Hits []Result
	// Stats counts the work this query performed (documents scored,
	// pruned, filtered; block skips). Always populated.
	Stats ExecStats
	// Trace is the per-phase timing breakdown, populated only when the
	// request set Trace. Batch members served by the shared traversal
	// receive the cycle-level trace (Batch > 0) since their phases
	// cannot be attributed individually.
	Trace *telemetry.PhaseTrace
	// Degraded reports that a distributed deployment assembled these
	// hits without every shard: at least one shard was down or missed
	// its deadline, so the ranking covers the surviving shards only.
	// Always false from in-process engines and stores.
	Degraded bool
	// Shards is the per-shard outcome of a scatter-gather execution,
	// populated by a router (nil everywhere else) so callers can tell
	// exactly which part of the corpus a degraded response is missing.
	Shards []ShardStatus
}

// ShardStatus is one shard's outcome within a routed response.
type ShardStatus struct {
	// Shard is the shard's base URL.
	Shard string `json:"shard"`
	// OK reports whether the shard answered within its deadline.
	OK bool `json:"ok"`
	// Err is the failure, present when OK is false.
	Err string `json:"err,omitempty"`
}

// RequestSearcher is the structured query surface shared by the static
// Engine and the live segment.Store: context-aware, error-returning,
// with per-request knobs and execution stats. The string-and-int
// Searcher methods remain as thin wrappers over it for incremental
// migration.
type RequestSearcher interface {
	// SearchRequest executes one request. The context cancels
	// mid-execution between postings blocks.
	SearchRequest(ctx context.Context, req Request) (Response, error)
	// SearchBatch executes a batch — typically one obfuscation
	// cycle — sharing term resolution and postings buffers across
	// members. Responses align with reqs by index, and each member's
	// hits are bit-identical to what SearchRequest would return for it
	// alone.
	SearchBatch(ctx context.Context, reqs []Request) ([]Response, error)
}
