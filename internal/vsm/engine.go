// Package vsm implements the similarity search engine of the paper's
// system model (§III-A): vector-space-model retrieval over the inverted
// index, returning the documents most similar to a bag-of-words query.
// Two scoring functions are provided — tf-idf cosine (the classical VSM
// of Baeza-Yates & Ribeiro-Neto, the paper's reference [7]) and Okapi
// BM25 — selected per Engine.
//
// TopPriv deliberately requires no changes to this engine; the privacy
// machinery lives entirely client-side.
package vsm

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/textproc"
)

// Scoring selects the document-scoring function.
type Scoring int

const (
	// Cosine is lnc.ltc tf-idf cosine similarity (default).
	Cosine Scoring = iota
	// BM25 is Okapi BM25 with k1 = 1.2, b = 0.75.
	BM25
)

// String implements fmt.Stringer.
func (s Scoring) String() string {
	switch s {
	case Cosine:
		return "cosine"
	case BM25:
		return "bm25"
	default:
		return fmt.Sprintf("Scoring(%d)", int(s))
	}
}

const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// Result is one retrieved document with its similarity score.
type Result struct {
	Doc   corpus.DocID
	Score float64
}

// Searcher is the query surface shared by the static Engine and live
// index stores (segment.Store): analyze-and-rank, returning the top-k
// documents. Server and facade code should depend on this interface so
// either backend can serve it.
type Searcher interface {
	Search(query string, k int) []Result
	SearchTerms(terms []string, k int) []Result
}

// Source is the postings-and-statistics surface the engine scores over.
// *index.Index satisfies it directly; a live segmented store wraps each
// of its shards in a Source whose collection statistics (NumDocs,
// DocFreq, IDF, AvgDocLen) are global across shards while postings stay
// shard-local, so distributed scoring matches a single-index build.
type Source interface {
	Vocab() *textproc.Vocab
	NumDocs() int
	NumTerms() int
	Postings(id textproc.TermID) index.PostingList
	DocFreq(id textproc.TermID) int
	IDF(id textproc.TermID) float64
	DocLen(d corpus.DocID) int
	AvgDocLen() float64
}

// NormSource is an optional Source extension supplying per-document lnc
// vector norms. Sources whose document set can grow after engine
// construction (a memtable) must implement it; for static sources the
// engine precomputes norms once with DocNorms.
type NormSource interface {
	DocNorm(d corpus.DocID) float64
}

// Engine executes similarity queries against a Source. Built over a
// static index it is immutable and safe for concurrent use; built over
// a live source its safety follows the source's locking discipline.
type Engine struct {
	src     Source
	idx     *index.Index // non-nil when built over a concrete index
	an      *textproc.Analyzer
	scoring Scoring
	docNorm []float64  // cosine: precomputed norms (static sources)
	normSrc NormSource // cosine: dynamic norms (live sources)
	// prior, when non-nil, is a static per-document score multiplier in
	// (0, 1], derived from link analysis (see NewEngineWithPrior).
	prior       []float64
	priorWeight float64
}

// NewEngine builds a search engine over idx. The analyzer must be the
// one the corpus was built with so query terms normalize identically.
func NewEngine(idx *index.Index, an *textproc.Analyzer, scoring Scoring) (*Engine, error) {
	if idx == nil {
		return nil, fmt.Errorf("vsm: nil index")
	}
	e, err := NewEngineOver(idx, an, scoring)
	if err != nil {
		return nil, err
	}
	e.idx = idx
	return e, nil
}

// NewEngineOver builds an engine over any Source. When the source does
// not implement NormSource, cosine norms are precomputed here, so the
// source's document set must already be final.
func NewEngineOver(src Source, an *textproc.Analyzer, scoring Scoring) (*Engine, error) {
	if src == nil {
		return nil, fmt.Errorf("vsm: nil source")
	}
	if an == nil {
		an = textproc.NewAnalyzer()
	}
	e := &Engine{src: src, an: an, scoring: scoring}
	if scoring == Cosine {
		if ns, ok := src.(NormSource); ok {
			e.normSrc = ns
		} else {
			e.docNorm = DocNorms(src)
		}
	}
	return e, nil
}

// NewEngineWithPrior builds an engine that folds a static document
// prior (e.g. PageRank or HITS authority from internal/linkrank) into
// its ranking, the way the paper's system model allows (§III-A: the
// engine may combine the VSM "in conjunction with Web link analysis
// techniques"). Each similarity score is multiplied by
//
//	(1 − weight) + weight · prior[d]/max(prior)
//
// so weight = 0 is pure similarity and weight = 1 ranks by
// prior-modulated similarity. TopPriv's privacy layer is independent of
// this choice — it never sees document scores.
func NewEngineWithPrior(idx *index.Index, an *textproc.Analyzer, scoring Scoring, prior []float64, weight float64) (*Engine, error) {
	e, err := NewEngine(idx, an, scoring)
	if err != nil {
		return nil, err
	}
	if len(prior) != idx.NumDocs() {
		return nil, fmt.Errorf("vsm: prior has %d entries for %d docs", len(prior), idx.NumDocs())
	}
	if weight < 0 || weight > 1 {
		return nil, fmt.Errorf("vsm: prior weight = %v, need [0,1]", weight)
	}
	mx := 0.0
	for _, p := range prior {
		if p < 0 {
			return nil, fmt.Errorf("vsm: negative prior %v", p)
		}
		if p > mx {
			mx = p
		}
	}
	if mx == 0 {
		return nil, fmt.Errorf("vsm: all-zero prior")
	}
	scaled := make([]float64, len(prior))
	for d, p := range prior {
		scaled[d] = (1 - weight) + weight*p/mx
	}
	e.prior = scaled
	e.priorWeight = weight
	return e, nil
}

// DocNorms accumulates, per document, the L2 norm of its lnc weight
// vector: weight = 1 + ln(tf). Exported so live stores can precompute
// norms for a sealed shard once instead of per engine construction.
func DocNorms(src Source) []float64 {
	norms := make([]float64, maxPostingDoc(src)+1)
	for id := 0; id < src.NumTerms(); id++ {
		for _, p := range src.Postings(textproc.TermID(id)) {
			w := 1 + math.Log(float64(p.TF))
			norms[p.Doc] += w * w
		}
	}
	for d := range norms {
		norms[d] = math.Sqrt(norms[d])
	}
	return norms
}

// maxPostingDoc returns the largest document ID appearing in any
// postings list (-1 when empty). For a plain index this equals
// NumDocs()-1; for a shard source NumDocs() reports the global
// collection size, which may differ from the local document range.
func maxPostingDoc(src Source) corpus.DocID {
	mx := corpus.DocID(-1)
	for id := 0; id < src.NumTerms(); id++ {
		pl := src.Postings(textproc.TermID(id))
		if n := len(pl); n > 0 && pl[n-1].Doc > mx {
			mx = pl[n-1].Doc
		}
	}
	return mx
}

// Index exposes the underlying index when the engine was built over a
// concrete *index.Index (nil for engines over other sources).
func (e *Engine) Index() *index.Index { return e.idx }

// ComputeStats summarizes the underlying index. Engines built over
// non-index sources return zero stats.
func (e *Engine) ComputeStats() index.Stats {
	if e.idx == nil {
		return index.Stats{}
	}
	return e.idx.ComputeStats()
}

// Analyzer exposes the engine's analyzer.
func (e *Engine) Analyzer() *textproc.Analyzer { return e.an }

// Search analyzes the raw query text and returns the top-k documents by
// descending score. Ties break by ascending DocID for determinism.
// An empty or fully-stopworded query returns no results.
func (e *Engine) Search(query string, k int) []Result {
	return e.SearchTerms(e.an.Analyze(query), k)
}

// SearchTerms runs a query that is already analyzed into terms.
func (e *Engine) SearchTerms(terms []string, k int) []Result {
	return e.SearchTermsFiltered(terms, k, nil)
}

// SearchTermsFiltered runs an analyzed query and returns the top-k
// among documents for which keep returns true (nil keeps everything).
// Live stores use the filter to hide tombstoned documents without
// rebuilding the shard.
func (e *Engine) SearchTermsFiltered(terms []string, k int, keep func(corpus.DocID) bool) []Result {
	if k <= 0 || len(terms) == 0 {
		return nil
	}
	// Bag the query: term -> tf.
	qtf := make(map[textproc.TermID]int, len(terms))
	for _, term := range terms {
		id := e.src.Vocab().ID(term)
		if id == textproc.InvalidTerm {
			continue
		}
		qtf[id]++
	}
	if len(qtf) == 0 {
		return nil
	}
	scores := make(map[corpus.DocID]float64, 256)
	switch e.scoring {
	case Cosine:
		e.scoreCosine(qtf, scores)
	case BM25:
		e.scoreBM25(qtf, scores)
	default:
		e.scoreCosine(qtf, scores)
	}
	if e.prior != nil {
		for d := range scores {
			scores[d] *= e.prior[d]
		}
	}
	if keep != nil {
		for d := range scores {
			if !keep(d) {
				delete(scores, d)
			}
		}
	}
	return topK(scores, k)
}

// scoreCosine implements lnc.ltc: query weights (1+ln tf)·idf, document
// weights 1+ln tf, both L2-normalized.
func (e *Engine) scoreCosine(qtf map[textproc.TermID]int, scores map[corpus.DocID]float64) {
	qnorm := 0.0
	qw := make(map[textproc.TermID]float64, len(qtf))
	for id, tf := range qtf {
		w := (1 + math.Log(float64(tf))) * e.src.IDF(id)
		qw[id] = w
		qnorm += w * w
	}
	qnorm = math.Sqrt(qnorm)
	if qnorm == 0 {
		return
	}
	for id, w := range qw {
		for _, p := range e.src.Postings(id) {
			dw := 1 + math.Log(float64(p.TF))
			scores[p.Doc] += w * dw
		}
	}
	for d := range scores {
		if n := e.norm(d); n > 0 {
			scores[d] /= n * qnorm
		}
	}
}

// norm returns document d's lnc vector norm from whichever norm source
// the engine was constructed with.
func (e *Engine) norm(d corpus.DocID) float64 {
	if e.normSrc != nil {
		return e.normSrc.DocNorm(d)
	}
	if int(d) < len(e.docNorm) {
		return e.docNorm[d]
	}
	return 0
}

// scoreBM25 implements Okapi BM25 with standard parameters. Collection
// statistics (N, df, avgdl) are read from the source per query so live
// sources can keep them current.
func (e *Engine) scoreBM25(qtf map[textproc.TermID]int, scores map[corpus.DocID]float64) {
	n := float64(e.src.NumDocs())
	avgLen := e.src.AvgDocLen()
	for id := range qtf {
		df := float64(e.src.DocFreq(id))
		if df == 0 {
			continue
		}
		idf := math.Log(1 + (n-df+0.5)/(df+0.5))
		for _, p := range e.src.Postings(id) {
			tf := float64(p.TF)
			dl := float64(e.src.DocLen(p.Doc))
			denom := tf + bm25K1*(1-bm25B+bm25B*dl/avgLen)
			scores[p.Doc] += idf * tf * (bm25K1 + 1) / denom
		}
	}
}

// resultHeap is a min-heap over scores (ties: larger DocID is "smaller"
// so that smaller DocIDs win final ranking).
type resultHeap []Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Doc > h[j].Doc
}
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// topK selects the k best results from the accumulator.
func topK(scores map[corpus.DocID]float64, k int) []Result {
	h := make(resultHeap, 0, k+1)
	heap.Init(&h)
	for d, s := range scores {
		if len(h) < k {
			heap.Push(&h, Result{Doc: d, Score: s})
			continue
		}
		if top := h[0]; s > top.Score || (s == top.Score && d < top.Doc) {
			heap.Pop(&h)
			heap.Push(&h, Result{Doc: d, Score: s})
		}
	}
	out := make([]Result, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}
