// Package vsm implements the similarity search engine of the paper's
// system model (§III-A): vector-space-model retrieval over the inverted
// index, returning the documents most similar to a bag-of-words query.
// Two scoring functions are provided — tf-idf cosine (the classical VSM
// of Baeza-Yates & Ribeiro-Neto, the paper's reference [7]) and Okapi
// BM25 — selected per Engine.
//
// Query execution is document-at-a-time over postings iterators, in
// one of three strategies (see ExecMode): MaxScore pruning with
// per-term max-impact bounds — once the running k-th best score
// exceeds what a term's best posting could contribute, that term's
// list stops driving candidates and is consulted only by skipping —
// block-max WAND, which re-checks each pivot against per-block
// (index.BlockSize postings) maxima and skips whole blocks that
// cannot compete, and an exhaustive scorer over flat accumulators
// that remains as the reference oracle. All paths accumulate
// contributions in the same canonical term order, so their results —
// documents, ranks, and floating-point scores — are identical.
//
// TopPriv deliberately requires no changes to this engine; the privacy
// machinery lives entirely client-side.
package vsm

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/telemetry"
	"toppriv/internal/textproc"
)

// Scoring selects the document-scoring function.
type Scoring int

const (
	// Cosine is lnc.ltc tf-idf cosine similarity (default).
	Cosine Scoring = iota
	// BM25 is Okapi BM25 with k1 = 1.2, b = 0.75.
	BM25
)

// String implements fmt.Stringer.
func (s Scoring) String() string {
	switch s {
	case Cosine:
		return "cosine"
	case BM25:
		return "bm25"
	default:
		return fmt.Sprintf("Scoring(%d)", int(s))
	}
}

// BM25 parameters are shared with the index package, whose persisted
// max-impact bounds must use the same constants the scorer does.
const (
	bm25K1 = index.BM25K1
	bm25B  = index.BM25B
)

// Result is one retrieved document with its similarity score.
type Result struct {
	Doc   corpus.DocID
	Score float64
}

// Searcher is the query surface shared by the static Engine and live
// index stores (segment.Store): analyze-and-rank, returning the top-k
// documents. Server and facade code should depend on this interface so
// either backend can serve it.
type Searcher interface {
	Search(query string, k int) []Result
	SearchTerms(terms []string, k int) []Result
}

// Source is the postings-and-statistics surface the engine scores over.
// *index.Index satisfies it directly; a live segmented store wraps each
// of its shards in a Source whose collection statistics (NumDocs,
// DocFreq, IDF, AvgDocLen) are global across shards while postings stay
// shard-local, so distributed scoring matches a single-index build.
//
// Postings are consumed exclusively through iterators: an index-backed
// source hands out decode-on-traversal cursors over block-compressed
// lists, a memtable hands out plain slice cursors, and every execution
// path walks them through the same API without materializing
// []Posting.
type Source interface {
	Vocab() *textproc.Vocab
	NumDocs() int
	NumTerms() int
	// IterInto repositions it over the term's postings, on the first
	// posting (exhausted for absent terms). In-place so pooled
	// iterators — which embed a block-decode buffer — are never
	// cleared or copied on the query path.
	IterInto(id textproc.TermID, it *index.Iterator)
	// DocFreq is the term's postings-list length.
	DocFreq(id textproc.TermID) int
	IDF(id textproc.TermID) float64
	DocLen(d corpus.DocID) int
	AvgDocLen() float64
}

// NormSource is an optional Source extension supplying per-document lnc
// vector norms. Sources whose document set can grow after engine
// construction (a memtable) must implement it; for static sources the
// engine precomputes norms once with DocNorms.
type NormSource interface {
	DocNorm(d corpus.DocID) float64
}

// Engine executes similarity queries against a Source. Built over a
// static index it is immutable and safe for concurrent use; built over
// a live source its safety follows the source's locking discipline.
type Engine struct {
	src     Source
	idx     *index.Index // non-nil when built over a concrete index
	an      *textproc.Analyzer
	scoring Scoring
	docNorm []float64  // cosine: precomputed norms (static sources)
	normSrc NormSource // cosine: dynamic norms (live sources)
	// impacts is the source's max-impact surface (nil when the source
	// offers none); required for MaxScore and block-max execution.
	impacts ImpactSource
	// blockSrc is the source's per-block iterator surface (nil when
	// the source offers none); block-max WAND uses it for block-level
	// skipping and otherwise degrades to term-level bounds.
	blockSrc BlockSource
	// mode is the default execution strategy; set before serving.
	mode ExecMode
	// states pools per-query scratch (term bags, flat accumulators,
	// heaps) across queries and goroutines.
	states sync.Pool
	// batches pools per-batch scratch (the term-union plan and the
	// postings-reuse cache) across SearchBatch calls.
	batches sync.Pool
	// prior, when non-nil, is a static per-document score multiplier in
	// (0, 1], derived from link analysis (see NewEngineWithPrior).
	prior       []float64
	priorWeight float64
	// metrics, when non-nil, carries the pre-resolved telemetry handles
	// every query updates (see EnableMetrics). Set before serving.
	metrics *engineMetrics
}

// NewEngine builds a search engine over idx. The analyzer must be the
// one the corpus was built with so query terms normalize identically.
func NewEngine(idx *index.Index, an *textproc.Analyzer, scoring Scoring) (*Engine, error) {
	if idx == nil {
		return nil, fmt.Errorf("vsm: nil index")
	}
	e, err := NewEngineOver(idx, an, scoring)
	if err != nil {
		return nil, err
	}
	e.idx = idx
	return e, nil
}

// NewEngineOver builds an engine over any Source. When the source does
// not implement NormSource, cosine norms are precomputed here, so the
// source's document set must already be final.
func NewEngineOver(src Source, an *textproc.Analyzer, scoring Scoring) (*Engine, error) {
	if src == nil {
		return nil, fmt.Errorf("vsm: nil source")
	}
	if an == nil {
		an = textproc.NewAnalyzer()
	}
	e := &Engine{src: src, an: an, scoring: scoring}
	e.states.New = func() interface{} { return &queryState{} }
	e.batches.New = func() interface{} { return newBatchState() }
	if imp, ok := src.(ImpactSource); ok {
		e.impacts = imp
	}
	if bs, ok := src.(BlockSource); ok {
		e.blockSrc = bs
	}
	if scoring == Cosine {
		if ns, ok := src.(NormSource); ok {
			e.normSrc = ns
		} else {
			e.docNorm = DocNorms(src)
		}
	}
	return e, nil
}

// SetExecMode selects the engine's default execution strategy. Call
// before serving queries; per-query overrides go through
// SearchTermsExec or SearchMode.
func (e *Engine) SetExecMode(mode ExecMode) { e.mode = mode }

// ExecModeValue reports the configured default execution mode.
func (e *Engine) ExecModeValue() ExecMode { return e.mode }

// NewEngineWithPrior builds an engine that folds a static document
// prior (e.g. PageRank or HITS authority from internal/linkrank) into
// its ranking, the way the paper's system model allows (§III-A: the
// engine may combine the VSM "in conjunction with Web link analysis
// techniques"). Each similarity score is multiplied by
//
//	(1 − weight) + weight · prior[d]/max(prior)
//
// so weight = 0 is pure similarity and weight = 1 ranks by
// prior-modulated similarity. TopPriv's privacy layer is independent of
// this choice — it never sees document scores.
func NewEngineWithPrior(idx *index.Index, an *textproc.Analyzer, scoring Scoring, prior []float64, weight float64) (*Engine, error) {
	e, err := NewEngine(idx, an, scoring)
	if err != nil {
		return nil, err
	}
	if len(prior) != idx.NumDocs() {
		return nil, fmt.Errorf("vsm: prior has %d entries for %d docs", len(prior), idx.NumDocs())
	}
	if weight < 0 || weight > 1 {
		return nil, fmt.Errorf("vsm: prior weight = %v, need [0,1]", weight)
	}
	mx := 0.0
	for _, p := range prior {
		if p < 0 {
			return nil, fmt.Errorf("vsm: negative prior %v", p)
		}
		if p > mx {
			mx = p
		}
	}
	if mx == 0 {
		return nil, fmt.Errorf("vsm: all-zero prior")
	}
	scaled := make([]float64, len(prior))
	for d, p := range prior {
		scaled[d] = (1 - weight) + weight*p/mx
	}
	e.prior = scaled
	e.priorWeight = weight
	return e, nil
}

// DocNorms accumulates, per document, the L2 norm of its lnc weight
// vector: weight = 1 + ln(tf). Exported so live stores can precompute
// norms for a sealed shard once instead of per engine construction.
// One block-at-a-time pass over the postings: the norm array grows to
// each list's last (largest) document ID as it is encountered, so no
// separate max-doc-ID scan is needed, and no list is ever
// materialized. For a plain index the resulting length is NumDocs();
// for a shard source it is the local document range, which may differ
// from the global NumDocs().
func DocNorms(src Source) []float64 {
	var norms []float64
	var it index.Iterator
	for id := 0; id < src.NumTerms(); id++ {
		src.IterInto(textproc.TermID(id), &it)
		if !it.Valid() {
			continue
		}
		if need := int(it.LastDoc()) + 1; need > len(norms) {
			if need <= cap(norms) {
				norms = norms[:need]
			} else {
				grown := make([]float64, need, need+need/2)
				copy(grown, norms)
				norms = grown
			}
		}
		for {
			docs, tfs := it.Window()
			for i, d := range docs {
				w := 1 + math.Log(float64(tfs[i]))
				norms[d] += w * w
			}
			if !it.NextWindow() {
				break
			}
		}
	}
	for d := range norms {
		norms[d] = math.Sqrt(norms[d])
	}
	return norms
}

// Index exposes the underlying index when the engine was built over a
// concrete *index.Index (nil for engines over other sources).
func (e *Engine) Index() *index.Index { return e.idx }

// ComputeStats summarizes the underlying index. Engines built over
// non-index sources return zero stats.
func (e *Engine) ComputeStats() index.Stats {
	if e.idx == nil {
		return index.Stats{}
	}
	return e.idx.ComputeStats()
}

// Analyzer exposes the engine's analyzer.
func (e *Engine) Analyzer() *textproc.Analyzer { return e.an }

// SearchRequest executes one structured request: analyze (when Terms
// is unset), resolve, and run under the requested execution mode,
// returning the ranked hits together with the execution counters. The
// context cancels mid-execution between postings blocks. This is the
// primary query entry point; the string-and-int methods below are thin
// wrappers kept for incremental migration.
func (e *Engine) SearchRequest(ctx context.Context, req Request) (Response, error) {
	if err := req.Validate(); err != nil {
		return Response{}, err
	}
	terms := req.Terms
	if terms == nil {
		terms = e.an.Analyze(req.Query)
	}
	var resp Response
	if req.Trace {
		resp.Trace = &telemetry.PhaseTrace{}
	}
	hits, err := e.searchTermsCtx(ctx, terms, req.K, req.Keep, req.Mode, req.Global, &resp.Stats, resp.Trace)
	if err != nil {
		return Response{}, err
	}
	resp.Hits = hits
	return resp, nil
}

// Search analyzes the raw query text and returns the top-k documents by
// descending score. Ties break by ascending DocID for determinism.
// An empty or fully-stopworded query returns no results.
//
// Search is the legacy string-and-int surface, retained as a thin
// wrapper; new code should use SearchRequest, which adds context
// cancellation, error returns and execution stats.
func (e *Engine) Search(query string, k int) []Result {
	return e.SearchTerms(e.an.Analyze(query), k)
}

// SearchTerms runs a query that is already analyzed into terms. Legacy
// wrapper; new code should use SearchRequest with Request.Terms.
func (e *Engine) SearchTerms(terms []string, k int) []Result {
	return e.SearchTermsFiltered(terms, k, nil)
}

// SearchTermsFiltered runs an analyzed query and returns the top-k
// among documents for which keep returns true (nil keeps everything).
// Live stores use the filter to hide tombstoned documents without
// rebuilding the shard; the filter is consulted before a document is
// scored, so tombstoned postings cost no arithmetic. Legacy wrapper;
// new code should use SearchRequest with Request.Keep.
func (e *Engine) SearchTermsFiltered(terms []string, k int, keep func(corpus.DocID) bool) []Result {
	return e.SearchTermsExec(terms, k, keep, e.mode, nil)
}

// SearchMode analyzes and runs a query under an explicit execution
// mode, overriding the engine default. Legacy wrapper; new code should
// use SearchRequest with Request.Mode.
func (e *Engine) SearchMode(query string, k int, mode ExecMode) []Result {
	return e.SearchTermsExec(e.an.Analyze(query), k, nil, mode, nil)
}

// SearchTermsExec is the uncancellable full-control entry point:
// analyzed terms, a tombstone filter, an explicit execution mode
// (ExecAuto defers to the engine default, then to metadata
// availability), and an optional work-counter sink. MaxScore and
// exhaustive execution return identical results; the property tests in
// this package assert it. Legacy wrapper over the context-aware path;
// new code should use SearchRequest.
func (e *Engine) SearchTermsExec(terms []string, k int, keep func(corpus.DocID) bool, mode ExecMode, stats *ExecStats) []Result {
	res, _ := e.searchTermsCtx(context.Background(), terms, k, keep, mode, nil, stats, nil)
	return res
}

// searchTermsCtx resolves and executes one analyzed query — the shared
// core under SearchRequest and the legacy wrappers. The only possible
// error is the context's. When the engine is instrumented or the
// caller wants an inline trace, the phases are timed and the query is
// closed out through finishQuery.
func (e *Engine) searchTermsCtx(ctx context.Context, terms []string, k int, keep func(corpus.DocID) bool, mode ExecMode, g *GlobalStats, stats *ExecStats, trace *telemetry.PhaseTrace) ([]Result, error) {
	if k <= 0 || len(terms) == 0 {
		return nil, nil
	}
	m := e.metrics
	qs := e.states.Get().(*queryState)
	defer e.states.Put(qs)
	qs.reset()
	qs.clock.enabled = m != nil || trace != nil
	if qs.clock.enabled && stats == nil {
		// Traces carry the work counters; collect them locally when the
		// caller did not ask for any.
		var local ExecStats
		stats = &local
	}
	qs.clock.start()
	if !e.resolveTerms(qs, terms) {
		return nil, nil
	}
	qnorm := 0.0
	if g != nil {
		qnorm = e.weighTermsGlobal(qs, terms, g)
	} else {
		qnorm = e.weighTerms(qs)
	}
	if qnorm == 0 {
		return nil, nil
	}
	qs.clock.mark(&qs.clock.resolve)
	res, err := e.execResolved(ctx, qs, k, qnorm, keep, mode, stats)
	if err != nil {
		return nil, err
	}
	e.finishQuery(qs, len(qs.terms), k, stats, trace)
	return res, nil
}

// effectiveMode resolves the strategy a query will actually run under:
// ExecAuto defers to the engine default, then to metadata availability
// and the retrieval-size heuristic.
func (e *Engine) effectiveMode(mode ExecMode, k int) ExecMode {
	if mode == ExecAuto {
		mode = e.mode
	}
	switch {
	case mode == ExecExhaustive || e.impacts == nil:
		return ExecExhaustive
	case mode == ExecAuto && 4*k >= e.src.NumDocs():
		// Near-full retrieval: pruning cannot skip much, so the flat
		// scan's lower per-posting cost wins. An explicit pruned mode
		// overrides this heuristic.
		return ExecExhaustive
	case mode == ExecMaxScore:
		return ExecMaxScore
	case mode == ExecBlockMax:
		return ExecBlockMax
	default:
		// ExecAuto on a selective query: cosine's normalized term
		// bounds are loose enough that MaxScore's candidate stream
		// stays wide, so block-level skipping wins there; BM25's
		// tighter saturation bounds already shrink MaxScore's
		// essential set below what WAND's per-pivot bookkeeping
		// costs. Recalibrated with the specialized decode kernels and
		// head priming (one coherent run behind BENCH_search.json):
		// cosine blockmax 36.3 µs vs maxscore 42.0 µs — block skips
		// also skip block decodes, and priming tightens θ before the
		// first pivot — while BM25 maxscore 24.6 µs vs blockmax
		// 43.9 µs keeps MaxScore. See README "Choosing an execution
		// mode"; per-(list-length, k) calibration remains the
		// ROADMAP's auto exec-mode item.
		if e.blockSrc != nil && e.blockSrc.HasBlocks() && e.scoring != BM25 {
			return ExecBlockMax
		}
		return ExecMaxScore
	}
}

// execResolved dispatches a resolved, weighted query state to an
// execution strategy. SearchBatch calls it directly for batch members
// that cannot join the shared traversal, so resolution is never
// repeated. The effective mode is recorded on the state for telemetry
// labeling.
func (e *Engine) execResolved(ctx context.Context, qs *queryState, k int, qnorm float64, keep func(corpus.DocID) bool, mode ExecMode, stats *ExecStats) ([]Result, error) {
	eff := e.effectiveMode(mode, k)
	qs.effMode = eff
	switch eff {
	case ExecMaxScore:
		return e.searchMaxScore(ctx, qs, k, qnorm, keep, stats)
	case ExecBlockMax:
		return e.searchBlockMax(ctx, qs, k, qnorm, keep, stats)
	default:
		return e.searchExhaustive(ctx, qs, k, qnorm, keep, stats)
	}
}

// norm returns document d's lnc vector norm from whichever norm source
// the engine was constructed with.
func (e *Engine) norm(d corpus.DocID) float64 {
	if e.normSrc != nil {
		return e.normSrc.DocNorm(d)
	}
	if int(d) < len(e.docNorm) {
		return e.docNorm[d]
	}
	return 0
}

// resultHeap is a min-heap over scores (ties: larger DocID is "worse"
// so that smaller DocIDs win final ranking). The sift operations are
// hand-rolled rather than container/heap so pushing a Result never
// boxes it into an interface — the hot path stays allocation-free.
type resultHeap []Result

// worseThan reports whether a ranks strictly below b in the final
// ordering (lower score, or equal score with larger DocID).
func worseThan(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

func siftUp(h []Result, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worseThan(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDown(h []Result, i int) {
	n := len(h)
	for {
		m := i
		if l := 2*i + 1; l < n && worseThan(h[l], h[m]) {
			m = l
		}
		if r := 2*i + 2; r < n && worseThan(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// pushTopK offers one result to a size-k min-heap: below capacity it
// always enters; at capacity it replaces the current worst only when
// strictly better (ties prefer the smaller document ID).
func pushTopK(h *resultHeap, k int, r Result) {
	hs := *h
	if len(hs) < k {
		hs = append(hs, r)
		siftUp(hs, len(hs)-1)
		*h = hs
		return
	}
	if worseThan(hs[0], r) {
		hs[0] = r
		siftDown(hs, 0)
	}
}

// byRank orders results best-first: descending score, ascending DocID
// on ties — the rule every ranked surface in the system shares.
type byRank []Result

func (s byRank) Len() int      { return len(s) }
func (s byRank) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s byRank) Less(i, j int) bool {
	if s[i].Score != s[j].Score {
		return s[i].Score > s[j].Score
	}
	return s[i].Doc < s[j].Doc
}

// drainTopK copies the heap into a freshly allocated, rank-ordered
// result slice (the heap itself is pooled scratch and must not escape).
func drainTopK(h *resultHeap) []Result {
	out := make([]Result, len(*h))
	copy(out, *h)
	sort.Sort(byRank(out))
	return out
}
