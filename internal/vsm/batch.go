package vsm

import (
	"context"
	"fmt"
	"sort"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/telemetry"
	"toppriv/internal/textproc"
)

// batchShareNum/batchShareDen gate the cycle-at-a-time shared
// traversal: auto-mode members join it only when the distinct postings
// across the batch are at most batchShareNum/batchShareDen of the
// per-member sum — i.e. the cycle's term overlap repays the shared
// scan with at least a 20% postings saving. Below that the batch runs
// member-at-a-time under the usual auto heuristic. Like the single
// query auto crossover, the exact boundary is a calibration candidate
// (see the ROADMAP auto exec-mode item).
const (
	batchShareNum = 4
	batchShareDen = 5
)

// batchMember is one request's resolved execution state inside a
// batch.
type batchMember struct {
	qs    *queryState
	qnorm float64
	req   *Request
	stats *ExecStats
	// live is false when the member resolved to nothing (no indexable
	// terms, or zero query norm) and owns no pooled state.
	live bool
}

// batchRef fans one distinct term out to a member containing it, with
// the member's query-side weight for that term.
type batchRef struct {
	member int
	w      float64
}

// unionTerm is one distinct term across the batch with its postings
// iterator (created once — each distinct list is decoded exactly one
// time for the whole batch) and the slice of members containing it.
type unionTerm struct {
	id       textproc.TermID
	it       index.Iterator
	from, to int // refs[from:to]
}

// batchState is the pooled per-batch scratch: the member table, the
// TermID-sorted union plan, the flattened member references, and the
// per-term impact buffer the shared traversal fills once per distinct
// list.
type batchState struct {
	members []batchMember
	union   []unionTerm
	refs    []batchRef
	impacts []float64
	// denoms caches each document's BM25 length normalization
	// k1·(1−b+b·dl/avgdl) across the whole union — documents recur in
	// a cycle's term lists, and the factor is query-independent. Zero
	// means "not computed yet" (the real factor is always positive).
	denoms []float64
}

func newBatchState() *batchState { return &batchState{} }

func (bs *batchState) reset() {
	bs.members = bs.members[:0]
	bs.union = bs.union[:0]
	bs.refs = bs.refs[:0]
}

// SearchBatch executes a batch of requests — typically the υ queries
// of one obfuscation cycle, submitted together as the paper's system
// model does (§III, Fig. 1). Terms are resolved in one pass and each
// distinct term's postings are fetched once for the whole batch; when
// the members' term overlap makes it profitable, all auto-mode members
// are evaluated in a single cycle-at-a-time traversal that walks each
// distinct postings list once and fans every posting's shared impact
// factor out to the members containing the term. Members with an
// explicit execution mode run member-at-a-time with the shared
// resolution. Either way each member's hits are bit-identical to what
// SearchRequest would return for it alone; the property tests assert
// it.
//
// Responses align with reqs by index. The context cancels
// mid-execution between postings blocks; on cancellation the whole
// batch fails.
func (e *Engine) SearchBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return nil, fmt.Errorf("vsm: batch member %d: %w", i, err)
		}
	}
	resps := make([]Response, len(reqs))
	m := e.metrics
	// bc times the batch-level phases: the shared resolution pass, the
	// union fetch, the cycle-at-a-time traversal and the drains. Members
	// the shared traversal serves get this cycle-level trace; members
	// running member-at-a-time get their own per-member clocks.
	var bc phaseClock
	bc.enabled = m != nil
	for i := range reqs {
		if reqs[i].Trace {
			bc.enabled = true
			resps[i].Trace = &telemetry.PhaseTrace{}
		}
	}
	bc.start()
	bs := e.batches.Get().(*batchState)
	bs.reset()
	defer func() {
		for i := range bs.members {
			if bs.members[i].live {
				e.states.Put(bs.members[i].qs)
			}
			bs.members[i] = batchMember{}
		}
		for i := range bs.union {
			bs.union[i].it = index.Iterator{}
		}
		e.batches.Put(bs)
	}()

	// One term-resolution pass across the batch.
	for i := range reqs {
		req := &reqs[i]
		m := batchMember{req: req, stats: &resps[i].Stats}
		terms := req.Terms
		if terms == nil {
			terms = e.an.Analyze(req.Query)
		}
		if len(terms) > 0 {
			qs := e.states.Get().(*queryState)
			qs.reset()
			if e.resolveTerms(qs, terms) {
				qnorm := 0.0
				if req.Global != nil {
					qnorm = e.weighTermsGlobal(qs, terms, req.Global)
				} else {
					qnorm = e.weighTerms(qs)
				}
				if qnorm != 0 {
					m.qs, m.qnorm, m.live = qs, qnorm, true
				}
			}
			if !m.live {
				e.states.Put(qs)
			}
		}
		bs.members = append(bs.members, m)
	}
	bc.mark(&bc.resolve)

	// Plan: auto-mode members may join the shared traversal when the
	// engine itself is not pinned to a pruned strategy; explicit-mode
	// members (and pinned engines) keep their member-at-a-time path.
	sharable := e.mode == ExecAuto || e.mode == ExecExhaustive
	var shared []int
	totalPostings := 0
	for i := range bs.members {
		m := &bs.members[i]
		// Members with injected global statistics stay member-at-a-time:
		// the shared traversal reads the source's own avgdl.
		if !m.live || m.req.Mode != ExecAuto || !sharable || m.req.Global != nil {
			continue
		}
		for j := range m.qs.terms {
			totalPostings += e.src.DocFreq(m.qs.terms[j].id)
		}
		shared = append(shared, i)
	}
	if len(shared) >= 2 {
		distinct := e.buildUnion(bs, shared)
		bc.mark(&bc.fetch)
		if e.mode == ExecExhaustive || distinct*batchShareDen <= totalPostings*batchShareNum {
			if err := e.batchExhaustive(ctx, bs); err != nil {
				return nil, err
			}
			bc.mark(&bc.traverse)
			for _, i := range shared {
				resps[i].Hits = drainTopK(&bs.members[i].qs.heap)
			}
			bc.mark(&bc.merge)
			e.finishBatch(&bc, bs, shared, resps)
		}
	}

	// Member-at-a-time for everyone left: explicit modes, unprofitable
	// sharing, and engines pinned to a pruned strategy. Members the
	// shared traversal served have non-nil (possibly empty) hit
	// slices; dead members keep nil hits and zero stats. Resolution was
	// shared, so per-member clocks carry fetch/traverse/merge only.
	for i := range bs.members {
		bm := &bs.members[i]
		if !bm.live || resps[i].Hits != nil {
			continue
		}
		bm.qs.clock.enabled = m != nil || resps[i].Trace != nil
		bm.qs.clock.start()
		hits, err := e.execResolved(ctx, bm.qs, bm.req.K, bm.qnorm, bm.req.Keep, bm.req.Mode, bm.stats)
		if err != nil {
			return nil, err
		}
		resps[i].Hits = hits
		e.finishQuery(bm.qs, len(bm.qs.terms), bm.req.K, bm.stats, resps[i].Trace)
	}
	return resps, nil
}

// finishBatch closes out one shared traversal: the cycle-level trace
// aggregates the served members' work counters, is recorded once in
// the ring and observed once in the latency histogram (mode "batch"),
// and is copied to every served member that asked for an inline trace.
func (e *Engine) finishBatch(bc *phaseClock, bs *batchState, shared []int, resps []Response) {
	if !bc.enabled {
		return
	}
	t := telemetry.PhaseTrace{
		Scorer:     e.scoring.String(),
		Mode:       "batch",
		Terms:      len(bs.union),
		Batch:      len(shared),
		ResolveNS:  bc.resolve,
		FetchNS:    bc.fetch,
		TraverseNS: bc.traverse,
		MergeNS:    bc.merge,
		TotalNS:    bc.total(),
	}
	for _, i := range shared {
		st := &resps[i].Stats
		t.DocsScored += st.DocsScored
		t.Postings += st.Postings
		t.BlocksDecoded += st.BlocksDecoded
	}
	if m := e.metrics; m != nil {
		m.batchLat.ObserveSeconds(t.TotalNS)
		m.batchQ.Add(uint64(len(shared)))
		for _, i := range shared {
			st := resps[i].Stats
			m.addStats(&st)
		}
		if m.ring != nil {
			t.Seq = m.ring.Record(t)
		}
	}
	for _, i := range shared {
		if resps[i].Trace != nil {
			*resps[i].Trace = t
		}
	}
}

// buildUnion assembles the TermID-sorted union plan over the given
// members, fetching each distinct term's postings exactly once.
// Returns the number of distinct postings across the union.
func (e *Engine) buildUnion(bs *batchState, members []int) int {
	type triple struct {
		id textproc.TermID
		batchRef
	}
	var triples []triple
	for _, i := range members {
		m := &bs.members[i]
		for j := range m.qs.terms {
			t := &m.qs.terms[j]
			if t.w == 0 {
				continue
			}
			triples = append(triples, triple{id: t.id, batchRef: batchRef{member: i, w: t.w}})
		}
	}
	sort.Slice(triples, func(a, b int) bool {
		if triples[a].id != triples[b].id {
			return triples[a].id < triples[b].id
		}
		return triples[a].member < triples[b].member
	})
	distinct := 0
	for _, tr := range triples {
		n := len(bs.union)
		if n == 0 || bs.union[n-1].id != tr.id {
			bs.union = append(bs.union, unionTerm{id: tr.id, from: len(bs.refs)})
			n++
			ut := &bs.union[n-1]
			e.src.IterInto(tr.id, &ut.it)
			distinct += ut.it.Len()
		}
		bs.refs = append(bs.refs, tr.batchRef)
		bs.union[n-1].to = len(bs.refs)
	}
	return distinct
}

// batchExhaustive is the cycle-at-a-time traversal: one pass over each
// distinct term's postings (ascending TermID), fanning the shared
// impact factor of every posting out to the members containing the
// term. Per member, the sequence of accumulator updates — terms in
// ascending TermID order, postings in ascending document order, the
// identical weight-times-impact product — matches searchExhaustive
// exactly, so scores, ranks and stats are bit-identical to
// member-at-a-time execution. Top-k heaps are filled here; the caller
// drains them.
func (e *Engine) batchExhaustive(ctx context.Context, bs *batchState) error {
	done := ctx.Done()
	var avgLen float64
	// Size each member's accumulator off its own lists' final entries
	// (block metadata — no decoding), as the single-query path does.
	maxDoc := corpus.DocID(-1)
	for ui := range bs.union {
		ut := &bs.union[ui]
		if !ut.it.Valid() {
			continue
		}
		last := ut.it.LastDoc()
		if last > maxDoc {
			maxDoc = last
		}
		for _, rf := range bs.refs[ut.from:ut.to] {
			bs.members[rf.member].qs.ensureDoc(last)
		}
	}
	var denoms []float64
	if e.scoring == BM25 {
		avgLen = e.src.AvgDocLen()
		if need := int(maxDoc) + 1; cap(bs.denoms) < need {
			bs.denoms = make([]float64, need)
		} else {
			bs.denoms = bs.denoms[:need]
			for i := range bs.denoms {
				bs.denoms[i] = 0
			}
		}
		denoms = bs.denoms
	}
	if cap(bs.impacts) < index.BlockSize {
		bs.impacts = make([]float64, index.BlockSize)
	}
	for ui := range bs.union {
		ut := &bs.union[ui]
		refs := bs.refs[ut.from:ut.to]
		if !ut.it.Valid() {
			continue
		}
		if canceled(done) {
			return ctx.Err()
		}
		sinceCancel := 0
		for {
			docs, tfs := ut.it.Window()
			if sinceCancel += len(docs); sinceCancel >= cancelStride {
				sinceCancel = 0
				if canceled(done) {
					return ctx.Err()
				}
			}
			impacts := bs.impacts[:len(docs)]
			// Pass 1, once per distinct term and block: the
			// query-independent impact factor of every posting — the
			// arithmetic every member containing the term would
			// otherwise redo. The BM25 branch mirrors sharedImpact
			// exactly, with the per-document length factor cached
			// across the union's lists.
			if e.scoring == BM25 {
				for i, d := range docs {
					dn := denoms[d]
					if dn == 0 {
						dn = bm25K1 * (1 - bm25B + bm25B*float64(e.src.DocLen(d))/avgLen)
						denoms[d] = dn
					}
					ftf := float64(tfs[i])
					impacts[i] = ftf * (bm25K1 + 1) / (ftf + dn)
				}
			} else {
				for i := range docs {
					impacts[i] = docWeight(tfs[i])
				}
			}
			// Pass 2, per member: a tight accumulate loop over this
			// member's own arrays, the same update sequence as the
			// single-query exhaustive scan.
			for _, rf := range refs {
				m := &bs.members[rf.member]
				qs := m.qs
				genAlive, genDead := qs.gen, qs.gen+1
				w, keep := rf.w, m.req.Keep
				stamp, score, touched := qs.stamp, qs.score, qs.touched
				if keep == nil {
					// Without a filter a stamp is either genAlive or
					// stale (genDead only ever marks filtered docs), so
					// first touch can write the contribution directly:
					// contributions are positive, making x and 0+x the
					// same float64.
					for i, d := range docs {
						if stamp[d] == genAlive {
							score[d] += w * impacts[i]
							continue
						}
						stamp[d] = genAlive
						score[d] = w * impacts[i]
						touched = append(touched, d)
					}
					qs.touched = touched
					continue
				}
				for i, d := range docs {
					st := stamp[d]
					if st == genDead {
						continue
					}
					if st != genAlive {
						if !keep(d) {
							stamp[d] = genDead
							m.stats.DocsFiltered++
							continue
						}
						stamp[d] = genAlive
						score[d] = 0
						touched = append(touched, d)
					}
					score[d] += w * impacts[i]
				}
				qs.touched = touched
			}
			if !ut.it.NextWindow() {
				break
			}
		}
		for _, rf := range refs {
			st := bs.members[rf.member].stats
			st.Postings += ut.it.Len()
			st.BlocksDecoded += ut.it.BlocksDecoded()
		}
	}
	// Finalize per member: same normalization, same heap discipline as
	// the single-query exhaustive tail.
	seen := make(map[int]bool, len(bs.members))
	for _, rf := range bs.refs {
		if seen[rf.member] {
			continue
		}
		seen[rf.member] = true
		m := &bs.members[rf.member]
		qs := m.qs
		m.stats.DocsScored += len(qs.touched)
		for _, d := range qs.touched {
			s := e.finalizeScore(qs.score[d], d, m.qnorm)
			pushTopK(&qs.heap, m.req.K, Result{Doc: d, Score: s})
		}
	}
	return nil
}
