package vsm

import (
	"context"
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/textproc"
)

// cycleQueries builds a batch of queries shaped like an obfuscation
// cycle: members drawn from a couple of shared topics, so terms repeat
// across members the way a cycle's ghosts share masking topics.
func cycleQueries(gt *corpus.GroundTruth, an *textproc.Analyzer, rng *rand.Rand, n int) [][]string {
	// Sample from each topic's head — topical word distributions are
	// peaked, so a cycle's members keep drawing the same few words.
	pool := func(words []string) []string {
		if len(words) > 8 {
			return words[:8]
		}
		return words
	}
	a := pool(gt.TopicWords[rng.Intn(len(gt.TopicWords))])
	b := pool(gt.TopicWords[rng.Intn(len(gt.TopicWords))])
	queries := make([][]string, n)
	for i := range queries {
		src := a
		if i%2 == 1 {
			src = b
		}
		q := make([]string, 0, 6)
		for j := 0; j < 2+rng.Intn(4); j++ {
			q = append(q, src[rng.Intn(len(src))])
		}
		queries[i] = analyzeTerms(an, q)
	}
	return queries
}

// TestSearchBatchMatchesSingle is the batch path's correctness anchor:
// over random corpora, both scorings, mixed per-member modes and k,
// with and without tombstone filters, every batch member's hits must
// be bit-identical — documents, ranks, and float64 scores — to running
// the same Request alone through SearchRequest.
func TestSearchBatchMatchesSingle(t *testing.T) {
	ctx := context.Background()
	for _, scoring := range []Scoring{Cosine, BM25} {
		scoring := scoring
		t.Run(scoring.String(), func(t *testing.T) {
			for trial := int64(0); trial < 4; trial++ {
				rng := rand.New(rand.NewSource(7100 + trial))
				c, gt, err := corpus.Synthesize(corpus.GenSpec{
					Seed:    300 + trial,
					NumDocs: 150 + int(trial)*60, NumTopics: 5,
					DocLenMin: 15, DocLenMax: 60,
				}, nil)
				if err != nil {
					t.Fatal(err)
				}
				idx, err := index.Build(c)
				if err != nil {
					t.Fatal(err)
				}
				an := textproc.NewAnalyzer()
				eng, err := NewEngine(idx, an, scoring)
				if err != nil {
					t.Fatal(err)
				}

				dead := make([]bool, c.NumDocs())
				for d := range dead {
					dead[d] = rng.Float64() < 0.15
				}
				keep := func(d corpus.DocID) bool { return !dead[d] }

				queries := cycleQueries(gt, an, rng, 8)
				modes := []ExecMode{ExecAuto, ExecAuto, ExecAuto, ExecMaxScore, ExecBlockMax, ExecExhaustive, ExecAuto, ExecAuto}
				ks := []int{10, 10, 1, 10, 25, 10, 100, 10}
				reqs := make([]Request, len(queries))
				for i, q := range queries {
					reqs[i] = Request{Terms: q, K: ks[i], Mode: modes[i]}
					if i%3 == 2 {
						reqs[i].Keep = keep
					}
				}
				// One member that resolves to nothing.
				reqs = append(reqs, Request{Terms: []string{"zzzznotaword"}, K: 5})

				batch, err := eng.SearchBatch(ctx, reqs)
				if err != nil {
					t.Fatal(err)
				}
				if len(batch) != len(reqs) {
					t.Fatalf("%d responses for %d requests", len(batch), len(reqs))
				}
				for i, req := range reqs {
					single, err := eng.SearchRequest(ctx, req)
					if err != nil {
						t.Fatal(err)
					}
					if len(batch[i].Hits) != len(single.Hits) {
						t.Fatalf("trial %d member %d: batch %d hits, single %d",
							trial, i, len(batch[i].Hits), len(single.Hits))
					}
					for j := range single.Hits {
						if batch[i].Hits[j] != single.Hits[j] {
							t.Fatalf("trial %d member %d rank %d: batch %+v vs single %+v",
								trial, i, j, batch[i].Hits[j], single.Hits[j])
						}
					}
					if batch[i].Stats.DocsScored != single.Stats.DocsScored &&
						req.Mode != ExecAuto {
						// Explicit modes take the identical member-at-a-time
						// path, so even the work counters must agree; auto
						// members may legitimately run a different (shared)
						// plan.
						t.Errorf("trial %d member %d: batch scored %d docs, single %d",
							trial, i, batch[i].Stats.DocsScored, single.Stats.DocsScored)
					}
				}
			}
		})
	}
}

// TestSearchBatchSharesTraversal pins the planner: a cycle of
// overlapping auto-mode queries on an auto-mode engine runs the shared
// exhaustive traversal (no pruning counters), not υ pruned scans — and
// still returns the pruned path's exact results (checked above).
func TestSearchBatchSharesTraversal(t *testing.T) {
	c, gt, err := corpus.Synthesize(corpus.GenSpec{
		Seed: 11, NumDocs: 600, NumTopics: 6, DocLenMin: 30, DocLenMax: 70,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	an := textproc.NewAnalyzer()
	eng, err := NewEngine(idx, an, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	queries := cycleQueries(gt, an, rng, 8)
	reqs := make([]Request, len(queries))
	for i, q := range queries {
		reqs[i] = Request{Terms: q, K: 10}
	}
	batch, err := eng.SearchBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	singlePruned := 0
	for i := range batch {
		if batch[i].Stats.Postings == 0 {
			t.Errorf("member %d: no postings counted — not the exhaustive traversal?", i)
		}
		if batch[i].Stats.DocsPruned != 0 {
			t.Errorf("member %d: %d docs pruned — batch ran a pruned scan instead of the shared traversal", i, batch[i].Stats.DocsPruned)
		}
		single, err := eng.SearchRequest(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		singlePruned += single.Stats.DocsPruned
	}
	// Single-query auto on this corpus prunes; the tell that the batch
	// really chose a different, shared plan.
	if singlePruned == 0 {
		t.Error("single-query auto never pruned — test premise broken")
	}
}

// TestSearchBatchValidation pins the error surface: non-positive k
// fails the whole batch naming the offending member; an empty batch is
// a no-op.
func TestSearchBatchValidation(t *testing.T) {
	eng, _ := testEngine(t)
	if _, err := eng.SearchBatch(context.Background(), []Request{
		{Terms: []string{"alpha"}, K: 5},
		{Terms: []string{"beta"}, K: 0},
	}); err == nil {
		t.Error("k = 0 batch member must error")
	}
	resps, err := eng.SearchBatch(context.Background(), nil)
	if err != nil || resps != nil {
		t.Errorf("empty batch = %v, %v; want nil, nil", resps, err)
	}
	if _, err := eng.SearchRequest(context.Background(), Request{Query: "alpha", K: -1}); err == nil {
		t.Error("negative k request must error")
	}
}

// TestSearchCancellation pins context handling: an already-canceled
// context aborts single and batch execution with the context's error,
// for every execution mode.
func TestSearchCancellation(t *testing.T) {
	eng, gt := testEngine(t)
	q := analyzeTerms(eng.Analyzer(), gt.TopicWords[0][:3])
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []ExecMode{ExecAuto, ExecMaxScore, ExecBlockMax, ExecExhaustive} {
		if _, err := eng.SearchRequest(ctx, Request{Terms: q, K: 10, Mode: mode}); err != context.Canceled {
			t.Errorf("%v: canceled request returned %v, want context.Canceled", mode, err)
		}
	}
	q2 := analyzeTerms(eng.Analyzer(), gt.TopicWords[1][:3])
	if _, err := eng.SearchBatch(ctx, []Request{
		{Terms: q, K: 10},
		{Terms: q2, K: 10},
	}); err != context.Canceled {
		t.Errorf("canceled batch returned %v, want context.Canceled", err)
	}
}

// testEngine builds a small engine over a synthetic corpus for API
// surface tests.
func testEngine(t *testing.T) (*Engine, *corpus.GroundTruth) {
	t.Helper()
	c, gt, err := corpus.Synthesize(corpus.GenSpec{
		Seed: 21, NumDocs: 300, NumTopics: 5, DocLenMin: 20, DocLenMax: 50,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(idx, textproc.NewAnalyzer(), Cosine)
	if err != nil {
		t.Fatal(err)
	}
	return eng, gt
}
