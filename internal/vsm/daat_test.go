package vsm

import (
	"math"
	"math/rand"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/linkrank"
	"toppriv/internal/textproc"
)

// TestMaxScoreMatchesExhaustive is the pruned paths' correctness
// anchor: over random synthetic corpora, for both scoring functions,
// with and without tombstone filters and priors, and for k spanning
// "selective" to "nearly everything", DAAT/MaxScore and block-max
// WAND must each return exactly the documents and order of the
// exhaustive oracle, with scores within 1e-9 (in fact all paths share
// their accumulation order, so scores are expected bit-identical).
func TestMaxScoreMatchesExhaustive(t *testing.T) {
	for _, scoring := range []Scoring{Cosine, BM25} {
		scoring := scoring
		t.Run(scoring.String(), func(t *testing.T) {
			for trial := int64(0); trial < 6; trial++ {
				runMaxScoreTrial(t, scoring, trial)
			}
		})
	}
}

func runMaxScoreTrial(t *testing.T, scoring Scoring, trial int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(4200 + trial))
	spec := corpus.GenSpec{
		Seed:      900 + trial,
		NumDocs:   120 + int(trial)*40,
		NumTopics: 4 + int(trial%3),
		DocLenMin: 15, DocLenMax: 60,
	}
	c, gt, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	an := textproc.NewAnalyzer()

	// Engine variants: plain, and (cosine/bm25 alike) prior-modulated.
	engines := map[string]*Engine{}
	plain, err := NewEngine(idx, an, scoring)
	if err != nil {
		t.Fatal(err)
	}
	engines["plain"] = plain
	topics := make([][]float64, c.NumDocs())
	for d := range topics {
		topics[d] = c.Docs[d].TrueTopics
	}
	g, err := linkrank.SyntheticGraph(topics, 3, 77+trial)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := linkrank.PageRank(g, 0.85, 50, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	withPrior, err := NewEngineWithPrior(idx, an, scoring, pr, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	engines["prior"] = withPrior

	// Random tombstone sets: none, sparse, heavy.
	keeps := map[string]func(corpus.DocID) bool{
		"nokeep": nil,
	}
	for name, frac := range map[string]float64{"sparse": 0.1, "heavy": 0.6} {
		dead := make([]bool, c.NumDocs())
		for d := range dead {
			if rng.Float64() < frac {
				dead[d] = true
			}
		}
		keeps[name] = func(d corpus.DocID) bool { return !dead[d] }
	}

	queries := make([][]string, 0, 24)
	for i := 0; i < 10; i++ {
		topic := gt.TopicWords[rng.Intn(len(gt.TopicWords))]
		q := make([]string, 0, 4)
		for j := 0; j < 1+rng.Intn(4); j++ {
			q = append(q, topic[rng.Intn(len(topic))])
		}
		queries = append(queries, q)
	}
	// Multi-topic queries and repeated-term queries.
	for i := 0; i < 8; i++ {
		a := gt.TopicWords[rng.Intn(len(gt.TopicWords))]
		b := gt.TopicWords[rng.Intn(len(gt.TopicWords))]
		queries = append(queries, []string{
			a[rng.Intn(len(a))], b[rng.Intn(len(b))],
			a[rng.Intn(len(a))], a[rng.Intn(len(a))],
		})
	}

	for engName, eng := range engines {
		for keepName, keep := range keeps {
			for _, k := range []int{1, 10, 100} {
				for qi, q := range queries {
					var ex ExecStats
					terms := analyzeTerms(an, q)
					oracle := eng.SearchTermsExec(terms, k, keep, ExecExhaustive, &ex)
					for _, mode := range []ExecMode{ExecMaxScore, ExecBlockMax} {
						var ms ExecStats
						pruned := eng.SearchTermsExec(terms, k, keep, mode, &ms)
						if len(pruned) != len(oracle) {
							t.Fatalf("%s/%s/%s/%s k=%d q%d %v: %d results vs oracle %d",
								scoring, engName, keepName, mode, k, qi, q, len(pruned), len(oracle))
						}
						for i := range pruned {
							if pruned[i].Doc != oracle[i].Doc {
								t.Fatalf("%s/%s/%s/%s k=%d q%d %v rank %d: doc %d vs oracle %d\npruned: %v\noracle: %v",
									scoring, engName, keepName, mode, k, qi, q, i, pruned[i].Doc, oracle[i].Doc, pruned, oracle)
							}
							if math.Abs(pruned[i].Score-oracle[i].Score) > 1e-9 {
								t.Fatalf("%s/%s/%s/%s k=%d q%d %v rank %d: score %.15f vs oracle %.15f",
									scoring, engName, keepName, mode, k, qi, q, i, pruned[i].Score, oracle[i].Score)
							}
						}
					}
				}
			}
		}
	}
}

// analyzeTerms runs each raw query word through the analyzer (the
// synthesized topic words are already normalized, but stemming must
// match the corpus pipeline).
func analyzeTerms(an *textproc.Analyzer, words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		out = append(out, an.Analyze(w)...)
	}
	return out
}

// TestMaxScorePrunesWork asserts the point of the whole exercise: for
// selective top-k queries the pruned path fully scores far fewer
// documents than the oracle.
func TestMaxScorePrunesWork(t *testing.T) {
	c, gt, err := corpus.Synthesize(corpus.GenSpec{
		Seed: 5, NumDocs: 1500, NumTopics: 8, DocLenMin: 30, DocLenMax: 80,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	an := textproc.NewAnalyzer()
	rng := rand.New(rand.NewSource(6))
	for _, scoring := range []Scoring{Cosine, BM25} {
		eng, err := NewEngine(idx, an, scoring)
		if err != nil {
			t.Fatal(err)
		}
		var ms, bm, ex ExecStats
		for i := 0; i < 20; i++ {
			topic := gt.TopicWords[rng.Intn(len(gt.TopicWords))]
			q := analyzeTerms(an, []string{topic[0], topic[1], topic[2]})
			eng.SearchTermsExec(q, 10, nil, ExecMaxScore, &ms)
			eng.SearchTermsExec(q, 10, nil, ExecBlockMax, &bm)
			eng.SearchTermsExec(q, 10, nil, ExecExhaustive, &ex)
		}
		if ms.DocsScored*2 > ex.DocsScored {
			t.Errorf("%v: MaxScore fully scored %d docs, exhaustive %d — expected ≥2× reduction",
				scoring, ms.DocsScored, ex.DocsScored)
		}
		if bm.DocsScored*2 > ex.DocsScored {
			t.Errorf("%v: block-max fully scored %d docs, exhaustive %d — expected ≥2× reduction",
				scoring, bm.DocsScored, ex.DocsScored)
		}
		if bm.BlockSkips == 0 {
			t.Errorf("%v: block-max WAND never skipped on a block bound", scoring)
		}
		if ms.HeadBlocksPrimed == 0 || bm.HeadBlocksPrimed == 0 {
			t.Errorf("%v: pruned modes never primed from the impact-ordered heads (maxscore=%d blockmax=%d)",
				scoring, ms.HeadBlocksPrimed, bm.HeadBlocksPrimed)
		}
		if ex.HeadBlocksPrimed != 0 {
			t.Errorf("%v: exhaustive mode primed %d head blocks, want 0", scoring, ex.HeadBlocksPrimed)
		}
		t.Logf("%v: docs scored maxscore=%d blockmax=%d exhaustive=%d pruned=%d/%d blockskips=%d primed=%d/%d",
			scoring, ms.DocsScored, bm.DocsScored, ex.DocsScored, ms.DocsPruned, bm.DocsPruned, bm.BlockSkips,
			ms.HeadBlocksPrimed, bm.HeadBlocksPrimed)
	}
}

// TestExecModeParsing pins the flag/API surface.
func TestExecModeParsing(t *testing.T) {
	for s, want := range map[string]ExecMode{
		"": ExecAuto, "auto": ExecAuto, "maxscore": ExecMaxScore,
		"exhaustive": ExecExhaustive, "blockmax": ExecBlockMax,
	} {
		got, err := ParseExecMode(s)
		if err != nil || got != want {
			t.Errorf("ParseExecMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseExecMode("bogus"); err == nil {
		t.Error("bogus mode must error")
	}
	if ExecMaxScore.String() != "maxscore" || ExecExhaustive.String() != "exhaustive" ||
		ExecAuto.String() != "auto" || ExecBlockMax.String() != "blockmax" {
		t.Error("ExecMode.String broken")
	}
}
