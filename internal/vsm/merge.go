package vsm

import (
	"container/heap"
	"sort"
)

// MergeTopK merges per-shard top-k result lists into the global top-k
// with a size-bounded min-heap. Ties break by ascending document ID —
// the same rule every ranked surface in the system uses — so a merged
// ranking over shards equals a single-index ranking over the union, as
// long as every shard scored with the same global statistics. Both the
// in-process segment store and the cluster router merge through this
// one function, so their tie-breaking can never drift apart.
func MergeTopK(lists [][]Result, k int) []Result {
	h := make(minHeap, 0, k+1)
	heap.Init(&h)
	for _, list := range lists {
		for _, r := range list {
			if len(h) < k {
				heap.Push(&h, r)
				continue
			}
			if top := h[0]; r.Score > top.Score || (r.Score == top.Score && r.Doc < top.Doc) {
				heap.Pop(&h)
				heap.Push(&h, r)
			}
		}
	}
	out := make([]Result, len(h))
	copy(out, h)
	sort.Sort(byRank(out))
	return out
}

// minHeap orders results worst-first (ties: larger doc ID is worse).
type minHeap []Result

func (h minHeap) Len() int { return len(h) }
func (h minHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Doc > h[j].Doc
}
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
