package vsm

import (
	"toppriv/internal/telemetry"
)

// Telemetry metric family names published by the engine (and by
// segment.Store, which reuses the same families so a deployment's
// dashboards are backend-agnostic).
const (
	MetricQuerySeconds      = "toppriv_query_seconds"
	MetricQueryPhaseSeconds = "toppriv_query_phase_seconds"
	MetricQueriesTotal      = "toppriv_queries_total"
)

// engineMetrics holds the telemetry handles an instrumented engine
// updates per query. Every child is resolved once at EnableMetrics
// time — the hot path does array indexing and atomic adds, never a
// label lookup.
type engineMetrics struct {
	ring *telemetry.TraceRing
	// lat is indexed by effective ExecMode (ExecMaxScore,
	// ExecExhaustive, ExecBlockMax); batchLat covers the cycle-at-a-time
	// shared traversal, which has no single-member mode.
	lat      [4]*telemetry.Histogram
	batchLat *telemetry.Histogram
	queries  [4]*telemetry.Counter
	batchQ   *telemetry.Counter
	// phase is indexed resolve, fetch, traverse, merge.
	phase [4]*telemetry.Histogram

	docsScored    *telemetry.Counter
	docsPruned    *telemetry.Counter
	docsFiltered  *telemetry.Counter
	postings      *telemetry.Counter
	blockSkips    *telemetry.Counter
	seekProbes    *telemetry.Counter
	blocksDecoded *telemetry.Counter
	headPrimed    *telemetry.Counter
}

// newEngineMetrics resolves every family and child the query path
// needs. scorer labels the engine's scoring function; the same
// registry can carry several scorers (a store with mixed engines would
// simply resolve more children).
func newEngineMetrics(reg *telemetry.Registry, ring *telemetry.TraceRing, scorer string) *engineMetrics {
	m := &engineMetrics{ring: ring}
	lat := reg.HistogramVec(MetricQuerySeconds,
		"Query latency by scorer and effective execution mode.",
		telemetry.DefaultLatencyBuckets, "scorer", "mode")
	q := reg.CounterVec(MetricQueriesTotal,
		"Queries executed by scorer and effective execution mode.",
		"scorer", "mode")
	for _, md := range []ExecMode{ExecMaxScore, ExecExhaustive, ExecBlockMax} {
		m.lat[md] = lat.With(scorer, md.String())
		m.queries[md] = q.With(scorer, md.String())
	}
	m.batchLat = lat.With(scorer, "batch")
	m.batchQ = q.With(scorer, "batch")
	ph := reg.HistogramVec(MetricQueryPhaseSeconds,
		"Per-phase query latency (resolve, fetch, traverse, merge).",
		telemetry.DefaultLatencyBuckets, "scorer", "phase")
	for i, name := range [...]string{"resolve", "fetch", "traverse", "merge"} {
		m.phase[i] = ph.With(scorer, name)
	}
	m.docsScored = reg.Counter("toppriv_docs_scored_total",
		"Documents fully scored across all queries.")
	m.docsPruned = reg.Counter("toppriv_docs_pruned_total",
		"Candidate documents abandoned on a bound check before full scoring.")
	m.docsFiltered = reg.Counter("toppriv_docs_filtered_total",
		"Documents rejected by the keep predicate (tombstones) before scoring.")
	m.postings = reg.Counter("toppriv_postings_total",
		"Postings visited by exhaustive traversals.")
	m.blockSkips = reg.Counter("toppriv_block_skips_total",
		"Pivots discarded by block-max WAND on the per-block bound alone.")
	m.seekProbes = reg.Counter("toppriv_seek_probes_total",
		"Document comparisons made by iterator seeks.")
	m.blocksDecoded = reg.Counter("toppriv_blocks_decoded_total",
		"Compressed postings blocks decoded.")
	m.headPrimed = reg.Counter("toppriv_head_blocks_primed_total",
		"Impact-ordered head blocks decoded to seed top-k thresholds.")
	return m
}

// addStats folds one query's work counters into the running totals.
func (m *engineMetrics) addStats(stats *ExecStats) {
	if stats == nil {
		return
	}
	m.docsScored.Add(uint64(stats.DocsScored))
	m.docsPruned.Add(uint64(stats.DocsPruned))
	m.docsFiltered.Add(uint64(stats.DocsFiltered))
	m.postings.Add(uint64(stats.Postings))
	m.blockSkips.Add(uint64(stats.BlockSkips))
	m.seekProbes.Add(uint64(stats.SeekProbes))
	m.blocksDecoded.Add(uint64(stats.BlocksDecoded))
	m.headPrimed.Add(uint64(stats.HeadBlocksPrimed))
}

// EnableMetrics wires the engine to a telemetry registry (histograms
// and counters) and, optionally, a trace ring that retains each
// query's phase breakdown. Call once, before serving: the handle is
// read without synchronization on the query path. A nil registry is a
// no-op; tracing via Request.Trace works with or without metrics.
func (e *Engine) EnableMetrics(reg *telemetry.Registry, ring *telemetry.TraceRing) {
	if reg == nil {
		return
	}
	e.metrics = newEngineMetrics(reg, ring, e.scoring.String())
}

// finishQuery closes out one instrumented query: it builds the phase
// trace from the state's clock and counters, observes the latency and
// phase histograms, bumps the aggregate counters, records the trace in
// the ring, and copies it to the caller's inline sink. No-op when
// neither telemetry nor an inline trace was requested.
func (e *Engine) finishQuery(qs *queryState, terms, k int, stats *ExecStats, trace *telemetry.PhaseTrace) {
	c := &qs.clock
	if !c.enabled {
		return
	}
	t := telemetry.PhaseTrace{
		Scorer:     e.scoring.String(),
		Mode:       qs.effMode.String(),
		Terms:      terms,
		K:          k,
		ResolveNS:  c.resolve,
		FetchNS:    c.fetch,
		TraverseNS: c.traverse,
		MergeNS:    c.merge,
		TotalNS:    c.total(),
	}
	if stats != nil {
		t.DocsScored = stats.DocsScored
		t.DocsPruned = stats.DocsPruned
		t.Postings = stats.Postings
		t.BlockSkips = stats.BlockSkips
		t.SeekProbes = stats.SeekProbes
		t.BlocksDecoded = stats.BlocksDecoded
	}
	if m := e.metrics; m != nil {
		if h := m.lat[qs.effMode]; h != nil {
			h.ObserveSeconds(t.TotalNS)
			m.queries[qs.effMode].Inc()
		}
		m.phase[0].ObserveSeconds(c.resolve)
		m.phase[1].ObserveSeconds(c.fetch)
		m.phase[2].ObserveSeconds(c.traverse)
		m.phase[3].ObserveSeconds(c.merge)
		m.addStats(stats)
		if m.ring != nil {
			t.Seq = m.ring.Record(t)
		}
	}
	if trace != nil {
		*trace = t
	}
}
