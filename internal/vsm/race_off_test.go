//go:build !race

package vsm

// raceEnabled reports whether the race detector instruments this
// build; allocation budgets are not meaningful under it.
const raceEnabled = false
